// Command chexperf is the host-throughput regression gate: it measures
// Kinst/s and allocs/instruction for a set of (workload, variant) pairs,
// normalizes by a host-speed calibration score, and compares against a
// committed baseline with a tolerance band. CI fails the build when
// normalized throughput regresses beyond the tolerance or allocations
// per instruction increase.
//
// Usage:
//
//	chexperf -write-baseline                # regenerate bench_baseline.json
//	chexperf                                # gate against bench_baseline.json
//	chexperf -baseline b.json -o BENCH.json # explicit paths (CI)
//	chexperf -tolerance 0.25 -runs 5        # wider band, more samples
//
// Measurement noise is handled two ways: each pair is measured -runs
// times and the fastest sample kept (minimum wall time is the standard
// low-noise estimator for benchmark gating), and throughput is divided by
// the calibration score measured in the same process, so a slower CI
// runner does not read as a regression.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chex86/internal/decode"
	"chex86/internal/faultinject"
	"chex86/internal/hostperf"
	"chex86/internal/workload"
)

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "committed baseline report to gate against")
	outPath := flag.String("o", "", "write the measured report to this file (CI uploads it as an artifact)")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional drop in host-normalized Kinst/s")
	writeBaseline := flag.Bool("write-baseline", false, "measure and overwrite -baseline instead of gating")
	runs := flag.Int("runs", 3, "samples per (workload, variant) pair; the fastest is kept")
	benches := flag.String("benches", "mcf,gcc,lbm,xalancbmk", "comma-separated workloads to measure")
	variants := flag.String("variants", "baseline,always-on,prediction", "comma-separated protection variants to measure")
	scale := flag.Float64("scale", 0.25, "workload scale factor")
	insts := flag.Uint64("insts", 200_000, "instructions to retire per measurement after warmup")
	allowNew := flag.Bool("allow-new", false, "permit measured benchmarks that are missing from the baseline (new benchmarks landing before their baseline is regenerated)")
	flag.Parse()

	clock := func() int64 { return time.Now().UnixNano() } //determinism:ok — CLI wall-time probe

	rep, err := measureAll(clock, *benches, *variants, *scale, *insts, *runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chexperf:", err)
		os.Exit(1)
	}
	fmt.Print(hostperf.Format(rep))

	data, err := hostperf.MarshalReport(rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chexperf:", err)
		os.Exit(1)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chexperf:", err)
			os.Exit(1)
		}
		fmt.Println("report written to", *outPath)
	}

	if *writeBaseline {
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chexperf:", err)
			os.Exit(1)
		}
		fmt.Println("baseline written to", *baselinePath)
		return
	}

	baseData, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chexperf: %v (run with -write-baseline to create it)\n", err)
		os.Exit(1)
	}
	baseline, err := hostperf.UnmarshalReport(baseData)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chexperf: %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}

	problems := hostperf.Compare(baseline, rep, *tolerance, *allowNew)
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "chexperf: %d regression(s) against %s:\n", len(problems), *baselinePath)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, " ", p)
		}
		os.Exit(1)
	}
	fmt.Printf("gate passed: %d samples within %.0f%% of %s\n", len(rep.Samples), *tolerance*100, *baselinePath)
}

// measureAll runs the benchmark matrix, keeping the fastest of -runs
// samples per pair.
func measureAll(clock hostperf.Clock, benches, variants string, scale float64, insts uint64, runs int) (*hostperf.Report, error) {
	if runs < 1 {
		runs = 1
	}
	var vs []decode.Variant
	for _, name := range strings.Split(variants, ",") {
		v, ok := faultinject.VariantByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown variant %q", name)
		}
		vs = append(vs, v)
	}
	rep := &hostperf.Report{HostScore: hostperf.Calibrate(clock)}
	for _, name := range strings.Split(benches, ",") {
		p := workload.ByName(strings.TrimSpace(name))
		if p == nil {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		for _, v := range vs {
			var best hostperf.Sample
			for r := 0; r < runs; r++ {
				s, err := hostperf.Measure(clock, p, v, hostperf.MeasureOpts{Scale: scale, MaxInsts: insts})
				if err != nil {
					return nil, err
				}
				if r == 0 || s.WallNS < best.WallNS {
					best = s
				}
			}
			rep.Samples = append(rep.Samples, best)
		}
	}
	return rep, nil
}
