// Command chexfault runs a seeded fault-injection campaign against the
// CHEx86 security substrate and emits a JSON resilience report.
//
// A campaign simulates every workload × variant combination once per
// injection site, corrupting capability metadata, dropping metadata cache
// lines, poisoning the pointer-reload predictor, flipping DIFT taint tags,
// and forcing context-switch state loss — then classifies each run against
// the fail-closed contract (detected / degraded / perf-only; silent
// outcomes and panics fail the campaign and the exit status).
//
// Usage:
//
//	chexfault -seed 42
//	chexfault -workloads mcf,xalancbmk -variants always-on,prediction -faults 15
//	chexfault -sites cap-table,dift-tag -o report.json
//	chexfault -pool -cache-dir .chexcampaign   # sharded + memoized cells
//
// With -pool, the campaign's workload × variant × site cells run
// concurrently on the campaign worker pool and are memoized in the
// content-addressed result cache; per-run RNG seeds derive from the run's
// coordinates, never execution order, so the merged report is
// byte-identical to the sequential one.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"chex86/internal/campaign"
	"chex86/internal/faultinject"
)

func main() {
	seed := flag.Uint64("seed", 1, "campaign seed (equal seeds produce byte-identical reports)")
	workloads := flag.String("workloads", "mcf,xalancbmk", "comma-separated benchmark names")
	variantsFlag := flag.String("variants", "always-on,prediction", "comma-separated protection variants")
	sitesFlag := flag.String("sites", "", "comma-separated injection sites (default: all)")
	faults := flag.Int("faults", 15, "fault quota per run")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	insts := flag.Uint64("insts", 40000, "post-warmup instruction budget per run")
	maxCycles := flag.Uint64("max-cycles", 5000000, "watchdog cycle budget per run")
	out := flag.String("o", "", "write the JSON report to this file (default: stdout)")
	quiet := flag.Bool("q", false, "suppress the summary line on stderr")
	pool := flag.Bool("pool", false, "run campaign cells concurrently on the sharded campaign worker pool")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory for -pool (empty disables caching)")
	workers := flag.Int("workers", 0, "pool shards for -pool (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := faultinject.Config{
		Seed:         *seed,
		Workloads:    split(*workloads),
		Variants:     split(*variantsFlag),
		FaultsPerRun: *faults,
		Scale:        *scale,
		MaxInsts:     *insts,
		MaxCycles:    *maxCycles,
	}
	for _, s := range split(*sitesFlag) {
		cfg.Sites = append(cfg.Sites, faultinject.Site(s))
	}

	run := faultinject.Run
	if *pool {
		run = func(cfg faultinject.Config) (*faultinject.Report, error) {
			return runPooled(cfg, *cacheDir, *workers)
		}
	}
	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chexfault:", err)
		os.Exit(2)
	}
	data, err := rep.JSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chexfault:", err)
		os.Exit(2)
	}
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "chexfault:", err)
		os.Exit(2)
	}

	t := rep.Totals
	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"chexfault: %d runs, %d faults: %d detected, %d degraded, %d perf-only, %d silent, %d panics, %d errors — %s\n",
			t.Runs, t.Faults, t.Detected, t.Degraded, t.PerfOnly, t.Silent, t.Panics, t.Errors, passFail(rep.Pass))
	}
	if !rep.Pass {
		os.Exit(1)
	}
}

// runPooled shards the campaign into cells, executes them on the campaign
// worker pool (memoized when a cache directory is given), and merges the
// per-cell reports back into the sequential report's byte-identical form.
func runPooled(cfg faultinject.Config, cacheDir string, workers int) (*faultinject.Report, error) {
	var cache *campaign.Cache
	if cacheDir != "" {
		var err error
		if cache, err = campaign.OpenCache(cacheDir); err != nil {
			return nil, err
		}
	}
	opts := campaign.Options{Workers: workers}
	if cache != nil {
		// Assign only when present: a typed-nil *Cache in the interface
		// field would read as "cache configured".
		opts.Cache = cache
	}
	p := campaign.NewPool(opts)
	defer p.Close()

	var jobs []*campaign.Job
	for _, cell := range cfg.Cells() {
		j, err := p.Submit(campaign.FaultSpec(cell))
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	var cells []*faultinject.Report
	for _, j := range jobs {
		res, err := j.Wait(context.Background())
		if err != nil {
			return nil, fmt.Errorf("cell %s: %w", j.Status().Workload, err)
		}
		cells = append(cells, res.Fault)
	}
	return faultinject.Merge(cfg, cells), nil
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

func split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
