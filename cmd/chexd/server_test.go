package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"chex86/internal/campaign"
	"chex86/internal/fabric"
)

// newTestServer spins up a chexd handler over a tiny-workload pool.
func newTestServer(t *testing.T) (*httptest.Server, *campaign.Pool) {
	t.Helper()
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := campaign.NewPool(campaign.Options{
		Workers: 2,
		Cache:   cache,
		Clock:   func() int64 { return time.Now().UnixNano() },
	})
	t.Cleanup(pool.Close)
	srv := &server{pool: pool, cache: cache, defScale: 0.1, defMaxInsts: 2000}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, pool
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) jobResponse {
	t.Helper()
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

func TestSubmitWaitAndCacheHit(t *testing.T) {
	ts, _ := newTestServer(t)

	resp := postJSON(t, ts.URL+"/api/v1/jobs", `{"workload":"mcf"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	jr := decodeJob(t, resp)
	if jr.ID != 1 || jr.Mode != campaign.ModeBench || jr.Workload != "mcf" {
		t.Fatalf("unexpected job response: %+v", jr)
	}

	// Block until done, then check the result rode along.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/1?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	done := decodeJob(t, resp)
	if done.State != campaign.JobDone {
		t.Fatalf("state after wait = %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Bench == nil || done.Result.Bench.Cycles == 0 {
		t.Fatalf("no result attached: %+v", done)
	}
	if done.Cached {
		t.Fatal("cold-cache run reported cached")
	}

	// Identical resubmission: a cache hit, visible in the job record and
	// the metrics endpoint.
	jr2 := decodeJob(t, postJSON(t, ts.URL+"/api/v1/jobs", `{"workload":"mcf"}`))
	if !jr2.Cached {
		t.Fatalf("resubmission not served from cache: %+v", jr2)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	resp.Body.Close()
	metrics := sb.String()
	if !strings.Contains(metrics, "campaign_cache_hits 1") {
		t.Fatalf("metrics missing cache hit:\n%s", metrics)
	}

	// The cached result is addressable by key.
	resp, err = http.Get(ts.URL + "/api/v1/results/" + jr2.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results lookup status = %d", resp.StatusCode)
	}
}

func TestCampaignBatchSubmit(t *testing.T) {
	ts, pool := newTestServer(t)
	resp := postJSON(t, ts.URL+"/api/v1/campaign", `{"workloads":["mcf","lbm"],"maxInsts":2000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("campaign status = %d", resp.StatusCode)
	}
	var batch struct {
		Jobs []jobResponse `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Jobs) != 2 {
		t.Fatalf("campaign submitted %d jobs, want 2", len(batch.Jobs))
	}
	for _, jr := range batch.Jobs {
		j := pool.Job(jr.ID)
		if j == nil {
			t.Fatalf("job %d missing from pool", jr.ID)
		}
		if _, err := http.Get(ts.URL + "/api/v1/jobs/" + itoa(jr.ID) + "?wait=1"); err != nil {
			t.Fatal(err)
		}
	}

	// List shows both jobs terminal.
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobResponse `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 2 {
		t.Fatalf("list = %d jobs, want 2", len(list.Jobs))
	}
	for _, jr := range list.Jobs {
		if jr.State != campaign.JobDone {
			t.Fatalf("job %d state = %s", jr.ID, jr.State)
		}
	}
}

func TestStreamEmitsTerminalEvent(t *testing.T) {
	ts, _ := newTestServer(t)
	jr := decodeJob(t, postJSON(t, ts.URL+"/api/v1/jobs", `{"workload":"mcf"}`))

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + itoa(jr.ID) + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	var sawTerminal bool
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line, isData := strings.CutPrefix(sc.Text(), "data: ")
		if !isData {
			continue
		}
		var ev jobResponse
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		if ev.State == campaign.JobDone {
			sawTerminal = true
			if ev.Result == nil {
				t.Fatal("terminal event carried no result")
			}
			break
		}
		if ev.State == campaign.JobFailed {
			t.Fatalf("job failed: %s", ev.Error)
		}
	}
	if !sawTerminal {
		t.Fatal("stream ended without a terminal event")
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, tc := range map[string]struct {
		method, path, body string
		want               int
	}{
		"bad-json":         {"POST", "/api/v1/jobs", "{nope", http.StatusBadRequest},
		"unknown-workload": {"POST", "/api/v1/jobs", `{"workload":"nonesuch"}`, http.StatusBadRequest},
		"unknown-variant":  {"POST", "/api/v1/jobs", `{"workload":"mcf","variant":"nope"}`, http.StatusBadRequest},
		"unknown-mode":     {"POST", "/api/v1/jobs", `{"mode":"mystery"}`, http.StatusBadRequest},
		"missing-job":      {"GET", "/api/v1/jobs/99", "", http.StatusNotFound},
		"bad-job-id":       {"GET", "/api/v1/jobs/xyz", "", http.StatusBadRequest},
		"missing-result":   {"GET", "/api/v1/results/" + strings.Repeat("00", 32), "", http.StatusNotFound},
	} {
		var resp *http.Response
		var err error
		if tc.method == "POST" {
			resp = postJSON(t, ts.URL+tc.path, tc.body)
		} else if resp, err = http.Get(ts.URL + tc.path); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

// TestPprofEndpoints pins the observability surface: the daemon's mux
// must expose the pprof index and heap profile for live host-side
// performance debugging.
func TestPprofEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// newFabricTestServer is newTestServer plus a coordinator in local-
// fallback mode (no workers registered → cells run on the chexd pool).
func newFabricTestServer(t *testing.T, maxQueue int) (*httptest.Server, *server) {
	t.Helper()
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := campaign.NewPool(campaign.Options{
		Workers: 2,
		Cache:   cache,
		Clock:   func() int64 { return time.Now().UnixNano() },
	})
	t.Cleanup(pool.Close)
	srv := &server{pool: pool, cache: cache, defScale: 0.1, defMaxInsts: 2000}
	srv.coord = fabric.NewCoordinator(fabric.CoordinatorOptions{
		Clock:    wallClock{},
		MaxQueue: maxQueue,
		Cache:    cache,
		Local:    pool,
	})
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestFabricCampaignLocalFallback: with zero workers registered, a fabric
// campaign degrades to coordinator-local execution and still completes,
// with the merged fault report served byte-for-byte.
func TestFabricCampaignLocalFallback(t *testing.T) {
	ts, _ := newFabricTestServer(t, 0)

	body := `{"fault":{"seed":5,"workloads":["mcf"],"variants":["prediction"],` +
		`"faultsPerRun":5,"maxInsts":4000,"sites":["cap-table","dift-tag"]}}`
	resp := postJSON(t, ts.URL+"/api/v1/fabric/campaign", body)
	var fr fabricCampaignResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if fr.Cells != 2 {
		t.Fatalf("cells = %d, want workloads × variants × sites = 2", fr.Cells)
	}

	get, err := http.Get(ts.URL + "/api/v1/fabric/campaigns/" + strconv.Itoa(fr.ID) + "?wait=1&detail=1")
	if err != nil {
		t.Fatal(err)
	}
	var done fabricCampaignResponse
	if err := json.NewDecoder(get.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if done.State != fabric.CampaignDone || !done.Local {
		t.Fatalf("campaign = %+v, want done via local degradation", done.CampaignStatus)
	}
	if done.Report == nil {
		t.Fatal("completed fault campaign has no merged report")
	}
	for _, cell := range done.Detail {
		if cell.By != "local" {
			t.Fatalf("cell %d executed by %q, want local", cell.Index, cell.By)
		}
	}

	// The report endpoint serves the merged report's canonical bytes.
	rget, err := http.Get(ts.URL + "/api/v1/fabric/campaigns/" + strconv.Itoa(fr.ID) + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer rget.Body.Close()
	if rget.StatusCode != http.StatusOK {
		t.Fatalf("report status = %d", rget.StatusCode)
	}
	var rep struct {
		Schema string `json:"schema"`
	}
	if err := json.NewDecoder(rget.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema == "" {
		t.Fatal("report body has no schema field")
	}

	// Fabric metrics joined the exposition endpoint without displacing the
	// pool's (the CI smoke greps campaign_cache_hits).
	mget, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mget.Body.Close()
	var metrics strings.Builder
	if _, err := io.Copy(&metrics, mget.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"campaign_cache_hits ", "fabric_campaigns_done 1", "fabric_cells_local 2"} {
		if !strings.Contains(metrics.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics.String())
		}
	}
}

// TestFabricBackpressure: admission control surfaces ErrQueueFull as
// HTTP 429 with a Retry-After hint.
func TestFabricBackpressure(t *testing.T) {
	ts, srv := newFabricTestServer(t, 1)
	// A registered (fake) worker keeps the local-fallback rung off so the
	// queue actually fills.
	if _, err := srv.coord.Register(context.Background(), fabric.WorkerInfo{ID: "w1"}); err != nil {
		t.Fatal(err)
	}

	ok := postJSON(t, ts.URL+"/api/v1/fabric/campaign", `{"workloads":["mcf"]}`)
	ok.Body.Close()
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d", ok.StatusCode)
	}
	full := postJSON(t, ts.URL+"/api/v1/fabric/campaign", `{"workloads":["xalancbmk"]}`)
	defer full.Body.Close()
	if full.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status = %d, want 429", full.StatusCode)
	}
	if full.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After hint")
	}
	var he errorResponse
	if err := json.NewDecoder(full.Body).Decode(&he); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(he.Error, "queue full") {
		t.Fatalf("429 body = %q", he.Error)
	}
}

// TestFabricWorkersEndpoint lists registered workers.
func TestFabricWorkersEndpoint(t *testing.T) {
	ts, srv := newFabricTestServer(t, 0)
	if _, err := srv.coord.Register(context.Background(), fabric.WorkerInfo{ID: "node-a", Addr: "10.0.0.2"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/api/v1/fabric/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Workers []fabric.WorkerStatus `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Workers) != 1 || out.Workers[0].ID != "node-a" {
		t.Fatalf("workers = %+v", out.Workers)
	}
}

// TestSubmitLockstepJob: a lockstep sweep shard rides the same job API as
// bench and fault cells, and its counters surface on /metrics.
func TestSubmitLockstepJob(t *testing.T) {
	ts, _ := newTestServer(t)

	resp := postJSON(t, ts.URL+"/api/v1/jobs",
		`{"mode":"lockstep","lockstep":{"seed":5,"programs":2,"crosscheckEvery":-1}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	jr := decodeJob(t, resp)
	if jr.Mode != campaign.ModeLockstep {
		t.Fatalf("job mode = %s", jr.Mode)
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + strconv.Itoa(jr.ID) + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	done := decodeJob(t, resp)
	if done.State != campaign.JobDone {
		t.Fatalf("state after wait = %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Lockstep == nil {
		t.Fatalf("no lockstep report attached: %+v", done)
	}
	if done.Result.Lockstep.Failed() {
		t.Fatalf("sweep failed:\n%s", done.Result.Lockstep.JSON())
	}
	if done.Result.Lockstep.Programs != 2 {
		t.Fatalf("programs = %d, want 2", done.Result.Lockstep.Programs)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "lockstep_programs_total") {
		t.Fatalf("/metrics missing lockstep counters:\n%s", body)
	}

	// Missing spec body is a client error, not a pool submission.
	resp = postJSON(t, ts.URL+"/api/v1/jobs", `{"mode":"lockstep"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing lockstep spec: status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}
