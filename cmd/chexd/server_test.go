package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"chex86/internal/campaign"
)

// newTestServer spins up a chexd handler over a tiny-workload pool.
func newTestServer(t *testing.T) (*httptest.Server, *campaign.Pool) {
	t.Helper()
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := campaign.NewPool(campaign.Options{
		Workers: 2,
		Cache:   cache,
		Clock:   func() int64 { return time.Now().UnixNano() },
	})
	t.Cleanup(pool.Close)
	srv := &server{pool: pool, cache: cache, defScale: 0.1, defMaxInsts: 2000}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return ts, pool
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) jobResponse {
	t.Helper()
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return jr
}

func TestSubmitWaitAndCacheHit(t *testing.T) {
	ts, _ := newTestServer(t)

	resp := postJSON(t, ts.URL+"/api/v1/jobs", `{"workload":"mcf"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	jr := decodeJob(t, resp)
	if jr.ID != 1 || jr.Mode != campaign.ModeBench || jr.Workload != "mcf" {
		t.Fatalf("unexpected job response: %+v", jr)
	}

	// Block until done, then check the result rode along.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/1?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	done := decodeJob(t, resp)
	if done.State != campaign.JobDone {
		t.Fatalf("state after wait = %s (%s)", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Bench == nil || done.Result.Bench.Cycles == 0 {
		t.Fatalf("no result attached: %+v", done)
	}
	if done.Cached {
		t.Fatal("cold-cache run reported cached")
	}

	// Identical resubmission: a cache hit, visible in the job record and
	// the metrics endpoint.
	jr2 := decodeJob(t, postJSON(t, ts.URL+"/api/v1/jobs", `{"workload":"mcf"}`))
	if !jr2.Cached {
		t.Fatalf("resubmission not served from cache: %+v", jr2)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	resp.Body.Close()
	metrics := sb.String()
	if !strings.Contains(metrics, "campaign_cache_hits 1") {
		t.Fatalf("metrics missing cache hit:\n%s", metrics)
	}

	// The cached result is addressable by key.
	resp, err = http.Get(ts.URL + "/api/v1/results/" + jr2.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results lookup status = %d", resp.StatusCode)
	}
}

func TestCampaignBatchSubmit(t *testing.T) {
	ts, pool := newTestServer(t)
	resp := postJSON(t, ts.URL+"/api/v1/campaign", `{"workloads":["mcf","lbm"],"maxInsts":2000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("campaign status = %d", resp.StatusCode)
	}
	var batch struct {
		Jobs []jobResponse `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Jobs) != 2 {
		t.Fatalf("campaign submitted %d jobs, want 2", len(batch.Jobs))
	}
	for _, jr := range batch.Jobs {
		j := pool.Job(jr.ID)
		if j == nil {
			t.Fatalf("job %d missing from pool", jr.ID)
		}
		if _, err := http.Get(ts.URL + "/api/v1/jobs/" + itoa(jr.ID) + "?wait=1"); err != nil {
			t.Fatal(err)
		}
	}

	// List shows both jobs terminal.
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobResponse `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 2 {
		t.Fatalf("list = %d jobs, want 2", len(list.Jobs))
	}
	for _, jr := range list.Jobs {
		if jr.State != campaign.JobDone {
			t.Fatalf("job %d state = %s", jr.ID, jr.State)
		}
	}
}

func TestStreamEmitsTerminalEvent(t *testing.T) {
	ts, _ := newTestServer(t)
	jr := decodeJob(t, postJSON(t, ts.URL+"/api/v1/jobs", `{"workload":"mcf"}`))

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + itoa(jr.ID) + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type = %q", ct)
	}
	var sawTerminal bool
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line, isData := strings.CutPrefix(sc.Text(), "data: ")
		if !isData {
			continue
		}
		var ev jobResponse
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		if ev.State == campaign.JobDone {
			sawTerminal = true
			if ev.Result == nil {
				t.Fatal("terminal event carried no result")
			}
			break
		}
		if ev.State == campaign.JobFailed {
			t.Fatalf("job failed: %s", ev.Error)
		}
	}
	if !sawTerminal {
		t.Fatal("stream ended without a terminal event")
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, tc := range map[string]struct {
		method, path, body string
		want               int
	}{
		"bad-json":         {"POST", "/api/v1/jobs", "{nope", http.StatusBadRequest},
		"unknown-workload": {"POST", "/api/v1/jobs", `{"workload":"nonesuch"}`, http.StatusBadRequest},
		"unknown-variant":  {"POST", "/api/v1/jobs", `{"workload":"mcf","variant":"nope"}`, http.StatusBadRequest},
		"unknown-mode":     {"POST", "/api/v1/jobs", `{"mode":"mystery"}`, http.StatusBadRequest},
		"missing-job":      {"GET", "/api/v1/jobs/99", "", http.StatusNotFound},
		"bad-job-id":       {"GET", "/api/v1/jobs/xyz", "", http.StatusBadRequest},
		"missing-result":   {"GET", "/api/v1/results/" + strings.Repeat("00", 32), "", http.StatusNotFound},
	} {
		var resp *http.Response
		var err error
		if tc.method == "POST" {
			resp = postJSON(t, ts.URL+tc.path, tc.body)
		} else if resp, err = http.Get(ts.URL + tc.path); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

// TestPprofEndpoints pins the observability surface: the daemon's mux
// must expose the pprof index and heap profile for live host-side
// performance debugging.
func TestPprofEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
