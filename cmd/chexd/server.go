package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"chex86/internal/campaign"
	"chex86/internal/faultinject"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// server wires the campaign pool and cache into the HTTP API.
type server struct {
	pool  *campaign.Pool
	cache *campaign.Cache

	// Request defaults (flag-configurable).
	defScale     float64
	defMaxInsts  uint64
	defMaxCycles uint64
}

// jobRequest is the submission body for POST /api/v1/jobs.
type jobRequest struct {
	Mode      string              `json:"mode,omitempty"` // "bench" (default) or "fault"
	Workload  string              `json:"workload,omitempty"`
	Variant   string              `json:"variant,omitempty"` // "prediction" (default), "baseline", ...
	Scale     float64             `json:"scale,omitempty"`
	MaxInsts  uint64              `json:"maxInsts,omitempty"`
	MaxCycles uint64              `json:"maxCycles,omitempty"`
	TimeoutMS int64               `json:"timeoutMS,omitempty"`
	Fault     *faultinject.Config `json:"fault,omitempty"`
}

// campaignRequest is the batch body for POST /api/v1/campaign: one bench
// job per workload (empty = the full 14-workload catalog).
type campaignRequest struct {
	Workloads []string `json:"workloads,omitempty"`
	Variant   string   `json:"variant,omitempty"`
	Scale     float64  `json:"scale,omitempty"`
	MaxInsts  uint64   `json:"maxInsts,omitempty"`
	MaxCycles uint64   `json:"maxCycles,omitempty"`
}

// jobResponse is a job status, plus the result once terminal.
type jobResponse struct {
	campaign.JobStatus
	Result *campaign.Result `json:"result,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) spec(req *jobRequest) (campaign.Spec, error) {
	mode := campaign.Mode(req.Mode)
	if req.Mode == "" {
		mode = campaign.ModeBench
	}
	switch mode {
	case campaign.ModeFault:
		if req.Fault == nil {
			return campaign.Spec{}, errors.New("fault mode needs a fault config")
		}
		spec := campaign.FaultSpec(*req.Fault)
		spec.TimeoutMS = req.TimeoutMS
		return spec, nil
	case campaign.ModeBench:
		cfg := pipeline.DefaultConfig()
		if req.Variant != "" {
			v, ok := campaign.VariantByName(req.Variant)
			if !ok {
				return campaign.Spec{}, fmt.Errorf("unknown variant %q", req.Variant)
			}
			cfg.Variant = v
		}
		scale := req.Scale
		if scale <= 0 {
			scale = s.defScale
		}
		maxInsts := req.MaxInsts
		if maxInsts == 0 {
			maxInsts = s.defMaxInsts
		}
		maxCycles := req.MaxCycles
		if maxCycles == 0 {
			maxCycles = s.defMaxCycles
		}
		spec := campaign.BenchSpec(req.Workload, cfg, scale, maxInsts, maxCycles)
		spec.TimeoutMS = req.TimeoutMS
		return spec, nil
	}
	return campaign.Spec{}, fmt.Errorf("unknown mode %q", req.Mode)
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /api/v1/campaign", s.handleCampaign)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /api/v1/results/{key}", s.handleResult)
	// Live profiling of a serving daemon: `go tool pprof
	// http://host/debug/pprof/profile` captures the campaign workers' hot
	// loop under real job load (README "Host throughput" has a quickstart).
	// Registered explicitly because this mux is not http.DefaultServeMux.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.pool.Metrics().Snapshot().Render())
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := s.spec(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.pool.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobResponse(job))
}

func (s *server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	names := req.Workloads
	if len(names) == 0 {
		names = workload.Names()
	}
	var jobs []jobResponse
	for _, name := range names {
		jr := jobRequest{
			Workload:  name,
			Variant:   req.Variant,
			Scale:     req.Scale,
			MaxInsts:  req.MaxInsts,
			MaxCycles: req.MaxCycles,
		}
		spec, err := s.spec(&jr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%s: %w", name, err))
			return
		}
		j, err := s.pool.Submit(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%s: %w", name, err))
			return
		}
		jobs = append(jobs, s.jobResponse(j))
	}
	writeJSON(w, http.StatusAccepted, struct {
		Jobs []jobResponse `json:"jobs"`
	}{jobs})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	var out []jobResponse
	for _, j := range s.pool.Jobs() {
		out = append(out, jobResponse{JobStatus: j.Status()})
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobResponse `json:"jobs"`
	}{out})
}

// jobByID resolves the {id} path value.
func (s *server) jobByID(w http.ResponseWriter, r *http.Request) *campaign.Job {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return nil
	}
	j := s.pool.Job(id)
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return nil
	}
	return j
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	if r.URL.Query().Get("wait") != "" {
		if _, err := j.Wait(r.Context()); err != nil && r.Context().Err() != nil {
			writeError(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
	}
	writeJSON(w, http.StatusOK, s.jobResponse(j))
}

// handleStream serves server-sent events: one status snapshot per event
// while the job runs, then a final event carrying the result.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	for {
		resp := s.jobResponse(j)
		data, err := json.Marshal(resp)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
		if resp.State == campaign.JobDone || resp.State == campaign.JobFailed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			// Loop once more to emit the terminal event.
		case <-ticker.C:
		}
	}
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeError(w, http.StatusNotFound, errors.New("no result cache configured"))
		return
	}
	key := r.PathValue("key")
	res, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", key))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// jobResponse renders a job's status, attaching the result when terminal.
func (s *server) jobResponse(j *campaign.Job) jobResponse {
	resp := jobResponse{JobStatus: j.Status()}
	if resp.State == campaign.JobDone {
		resp.Result, _ = j.Result()
	}
	return resp
}
