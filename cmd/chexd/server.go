package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"chex86/internal/campaign"
	"chex86/internal/fabric"
	"chex86/internal/faultinject"
	"chex86/internal/lockstep"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// server wires the campaign pool, cache, and (optionally) the fabric
// coordinator into the HTTP API.
type server struct {
	pool  *campaign.Pool
	cache *campaign.Cache
	coord *fabric.Coordinator // nil = fabric disabled

	// Request defaults (flag-configurable).
	defScale     float64
	defMaxInsts  uint64
	defMaxCycles uint64
}

// jobRequest is the submission body for POST /api/v1/jobs.
type jobRequest struct {
	Mode      string              `json:"mode,omitempty"` // "bench" (default), "fault", or "lockstep"
	Workload  string              `json:"workload,omitempty"`
	Variant   string              `json:"variant,omitempty"` // "prediction" (default), "baseline", ...
	Scale     float64             `json:"scale,omitempty"`
	MaxInsts  uint64              `json:"maxInsts,omitempty"`
	MaxCycles uint64              `json:"maxCycles,omitempty"`
	TimeoutMS int64               `json:"timeoutMS,omitempty"`
	Fault     *faultinject.Config `json:"fault,omitempty"`
	Lockstep  *lockstep.SweepSpec `json:"lockstep,omitempty"`
}

// campaignRequest is the batch body for POST /api/v1/campaign: one bench
// job per workload (empty = the full 14-workload catalog).
type campaignRequest struct {
	Workloads []string `json:"workloads,omitempty"`
	Variant   string   `json:"variant,omitempty"`
	Scale     float64  `json:"scale,omitempty"`
	MaxInsts  uint64   `json:"maxInsts,omitempty"`
	MaxCycles uint64   `json:"maxCycles,omitempty"`
}

// jobResponse is a job status, plus the result once terminal.
type jobResponse struct {
	campaign.JobStatus
	Result *campaign.Result `json:"result,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) spec(req *jobRequest) (campaign.Spec, error) {
	mode := campaign.Mode(req.Mode)
	if req.Mode == "" {
		mode = campaign.ModeBench
	}
	switch mode {
	case campaign.ModeFault:
		if req.Fault == nil {
			return campaign.Spec{}, errors.New("fault mode needs a fault config")
		}
		spec := campaign.FaultSpec(*req.Fault)
		spec.TimeoutMS = req.TimeoutMS
		return spec, nil
	case campaign.ModeLockstep:
		if req.Lockstep == nil {
			return campaign.Spec{}, errors.New("lockstep mode needs a lockstep sweep spec")
		}
		spec := campaign.LockstepSpec(*req.Lockstep)
		spec.TimeoutMS = req.TimeoutMS
		return spec, nil
	case campaign.ModeBench:
		cfg := pipeline.DefaultConfig()
		if req.Variant != "" {
			v, ok := campaign.VariantByName(req.Variant)
			if !ok {
				return campaign.Spec{}, fmt.Errorf("unknown variant %q", req.Variant)
			}
			cfg.Variant = v
		}
		scale := req.Scale
		if scale <= 0 {
			scale = s.defScale
		}
		maxInsts := req.MaxInsts
		if maxInsts == 0 {
			maxInsts = s.defMaxInsts
		}
		maxCycles := req.MaxCycles
		if maxCycles == 0 {
			maxCycles = s.defMaxCycles
		}
		spec := campaign.BenchSpec(req.Workload, cfg, scale, maxInsts, maxCycles)
		spec.TimeoutMS = req.TimeoutMS
		return spec, nil
	}
	return campaign.Spec{}, fmt.Errorf("unknown mode %q", req.Mode)
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /api/v1/campaign", s.handleCampaign)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /api/v1/results/{key}", s.handleResult)
	if s.coord != nil {
		// Distributed campaign fabric: the operator-facing campaign API
		// plus the worker wire protocol (register/heartbeat/lease/
		// complete/cache) under /fabric/v1/.
		mux.HandleFunc("POST /api/v1/fabric/campaign", s.handleFabricSubmit)
		mux.HandleFunc("GET /api/v1/fabric/campaigns", s.handleFabricList)
		mux.HandleFunc("GET /api/v1/fabric/campaigns/{id}", s.handleFabricCampaign)
		mux.HandleFunc("GET /api/v1/fabric/campaigns/{id}/report", s.handleFabricReport)
		mux.HandleFunc("GET /api/v1/fabric/workers", s.handleFabricWorkers)
		mux.Handle("/fabric/v1/", s.coord.Handler())
	}
	// Live profiling of a serving daemon: `go tool pprof
	// http://host/debug/pprof/profile` captures the campaign workers' hot
	// loop under real job load (README "Host throughput" has a quickstart).
	// Registered explicitly because this mux is not http.DefaultServeMux.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.pool.Metrics().Snapshot().Render())
	if s.coord != nil {
		fmt.Fprint(w, s.coord.Metrics().Snapshot().Render())
	}
	fmt.Fprint(w, lockstep.SharedMetrics.Snapshot().Render())
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := s.spec(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.pool.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobResponse(job))
}

func (s *server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	names := req.Workloads
	if len(names) == 0 {
		names = workload.Names()
	}
	var jobs []jobResponse
	for _, name := range names {
		jr := jobRequest{
			Workload:  name,
			Variant:   req.Variant,
			Scale:     req.Scale,
			MaxInsts:  req.MaxInsts,
			MaxCycles: req.MaxCycles,
		}
		spec, err := s.spec(&jr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%s: %w", name, err))
			return
		}
		j, err := s.pool.Submit(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("%s: %w", name, err))
			return
		}
		jobs = append(jobs, s.jobResponse(j))
	}
	writeJSON(w, http.StatusAccepted, struct {
		Jobs []jobResponse `json:"jobs"`
	}{jobs})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	var out []jobResponse
	for _, j := range s.pool.Jobs() {
		out = append(out, jobResponse{JobStatus: j.Status()})
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobResponse `json:"jobs"`
	}{out})
}

// jobByID resolves the {id} path value.
func (s *server) jobByID(w http.ResponseWriter, r *http.Request) *campaign.Job {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
		return nil
	}
	j := s.pool.Job(id)
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return nil
	}
	return j
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	if r.URL.Query().Get("wait") != "" {
		if _, err := j.Wait(r.Context()); err != nil && r.Context().Err() != nil {
			writeError(w, http.StatusRequestTimeout, r.Context().Err())
			return
		}
	}
	writeJSON(w, http.StatusOK, s.jobResponse(j))
}

// handleStream serves server-sent events: one status snapshot per event
// while the job runs, then a final event carrying the result.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	for {
		resp := s.jobResponse(j)
		data, err := json.Marshal(resp)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
		if resp.State == campaign.JobDone || resp.State == campaign.JobFailed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			// Loop once more to emit the terminal event.
		case <-ticker.C:
		}
	}
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeError(w, http.StatusNotFound, errors.New("no result cache configured"))
		return
	}
	key := r.PathValue("key")
	res, ok := s.cache.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", key))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// jobResponse renders a job's status, attaching the result when terminal.
func (s *server) jobResponse(j *campaign.Job) jobResponse {
	resp := jobResponse{JobStatus: j.Status()}
	if resp.State == campaign.JobDone {
		resp.Result, _ = j.Result()
	}
	return resp
}

// fabricCampaignRequest submits a distributed campaign. Fault mode shards
// a fault-injection configuration into its workload × variant × site
// cells; bench mode shards a workload list into one bench cell per
// workload.
type fabricCampaignRequest struct {
	Mode     string              `json:"mode,omitempty"` // "fault" (default when fault set) or "bench"
	Fault    *faultinject.Config `json:"fault,omitempty"`
	Priority int                 `json:"priority,omitempty"`

	// Bench mode.
	Workloads []string `json:"workloads,omitempty"`
	Variant   string   `json:"variant,omitempty"`
	Scale     float64  `json:"scale,omitempty"`
	MaxInsts  uint64   `json:"maxInsts,omitempty"`
	MaxCycles uint64   `json:"maxCycles,omitempty"`
}

// fabricCampaignResponse is a campaign's status, plus results and (for
// fault mode) the merged report once terminal.
type fabricCampaignResponse struct {
	fabric.CampaignStatus
	Results []*campaign.Result  `json:"results,omitempty"`
	Report  *faultinject.Report `json:"report,omitempty"`
}

func (s *server) handleFabricSubmit(w http.ResponseWriter, r *http.Request) {
	var req fabricCampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var camp *fabric.Campaign
	var err error
	switch {
	case req.Fault != nil:
		camp, err = s.coord.SubmitFault(*req.Fault, req.Priority)
	default:
		names := req.Workloads
		if len(names) == 0 {
			names = workload.Names()
		}
		var cells []campaign.Spec
		for _, name := range names {
			jr := jobRequest{
				Workload:  name,
				Variant:   req.Variant,
				Scale:     req.Scale,
				MaxInsts:  req.MaxInsts,
				MaxCycles: req.MaxCycles,
			}
			spec, serr := s.spec(&jr)
			if serr != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("%s: %w", name, serr))
				return
			}
			cells = append(cells, spec)
		}
		camp, err = s.coord.Submit(cells, req.Priority)
	}
	if err != nil {
		if errors.Is(err, fabric.ErrQueueFull) {
			// Backpressure: admission control refused the campaign. The
			// client should retry after a short backoff.
			w.Header().Set("Retry-After", "2")
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.fabricResponse(camp, false))
}

// fabricCampaignByID resolves the {id} path value.
func (s *server) fabricCampaignByID(w http.ResponseWriter, r *http.Request) *fabric.Campaign {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad campaign id %q", r.PathValue("id")))
		return nil
	}
	camp := s.coord.Campaign(id)
	if camp == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no campaign %d", id))
		return nil
	}
	return camp
}

func (s *server) handleFabricCampaign(w http.ResponseWriter, r *http.Request) {
	camp := s.fabricCampaignByID(w, r)
	if camp == nil {
		return
	}
	if r.URL.Query().Get("wait") != "" {
		if err := camp.Wait(r.Context()); err != nil {
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, s.fabricResponse(camp, r.URL.Query().Get("detail") != ""))
}

// handleFabricReport serves the merged fault report's canonical bytes —
// exactly what a single-node sequential `chexfault` run writes, so a
// distributed campaign can be diffed against a sequential one with cmp.
func (s *server) handleFabricReport(w http.ResponseWriter, r *http.Request) {
	camp := s.fabricCampaignByID(w, r)
	if camp == nil {
		return
	}
	if r.URL.Query().Get("wait") != "" {
		if err := camp.Wait(r.Context()); err != nil {
			writeError(w, http.StatusRequestTimeout, err)
			return
		}
	}
	rep := camp.Report()
	if rep == nil {
		writeError(w, http.StatusNotFound, errors.New("no merged report (campaign unfinished, failed, or not fault mode)"))
		return
	}
	data, err := rep.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *server) handleFabricList(w http.ResponseWriter, r *http.Request) {
	var out []fabricCampaignResponse
	for _, camp := range s.coord.Campaigns() {
		out = append(out, fabricCampaignResponse{CampaignStatus: camp.Status(false)})
	}
	writeJSON(w, http.StatusOK, struct {
		Campaigns []fabricCampaignResponse `json:"campaigns"`
	}{out})
}

func (s *server) handleFabricWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Workers []fabric.WorkerStatus `json:"workers"`
	}{s.coord.Workers()})
}

// fabricResponse renders a campaign's status, attaching results and the
// merged report when terminal.
func (s *server) fabricResponse(camp *fabric.Campaign, detail bool) fabricCampaignResponse {
	resp := fabricCampaignResponse{CampaignStatus: camp.Status(detail)}
	if resp.State == fabric.CampaignDone {
		resp.Results = camp.Results()
		resp.Report = camp.Report()
	}
	return resp
}
