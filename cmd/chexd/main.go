// Command chexd serves the campaign orchestration subsystem over HTTP:
// submit simulation jobs, watch their progress, and read memoized results
// from the content-addressed cache. It is the service front-end to
// internal/campaign — the same pool and cache that back `chexbench
// -campaign` and `chexfault -pool` — and, since PR 6, the coordinator of
// the distributed campaign fabric (internal/fabric): chexworker nodes
// register here, lease campaign cells under time-bounded leases, and feed
// results back into the shared content-addressed store.
//
// Usage:
//
//	chexd                                  # listen on :8086, cache in .chexcampaign
//	chexd -addr 127.0.0.1:9000 -cache-dir /var/cache/chex -workers 8
//	chexd -lease-ttl 30s -heartbeat-ttl 10s -max-queue 1024
//
// API (see README.md for curl examples):
//
//	POST /api/v1/jobs                    submit one job (local pool)
//	POST /api/v1/campaign                submit one bench job per workload (default: full catalog)
//	GET  /api/v1/jobs                    list jobs
//	GET  /api/v1/jobs/{id}               job status (+result when done); ?wait=1 blocks
//	GET  /api/v1/jobs/{id}/stream        server-sent-event progress stream
//	GET  /api/v1/results/{key}           cached result by content address
//	POST /api/v1/fabric/campaign         submit a distributed campaign (429 + Retry-After under backpressure)
//	GET  /api/v1/fabric/campaigns        list distributed campaigns
//	GET  /api/v1/fabric/campaigns/{id}   campaign status (+results when done); ?wait=1 blocks, ?detail=1 per-cell
//	GET  /api/v1/fabric/campaigns/{id}/report  merged fault report (byte-identical to a sequential run)
//	GET  /api/v1/fabric/workers          registered worker nodes
//	POST /fabric/v1/...                  worker wire protocol (register/heartbeat/lease/complete/cache)
//	GET  /metrics                        pool + fabric counters (text exposition format)
//	GET  /healthz                        liveness
//
// The server carries read/write/idle timeouts and shuts down gracefully:
// SIGINT/SIGTERM stops accepting connections, drains in-flight HTTP
// requests and pool jobs for -drain, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chex86/internal/campaign"
	"chex86/internal/fabric"
	"chex86/internal/lockstep"
)

// wallClock adapts the host clock to fabric.Clock. It lives here in the
// CLI — internal/fabric never reads the wall clock, so the chexvet
// determinism gate holds there with zero waivers.
type wallClock struct{}

func (wallClock) Now() int64 { return time.Now().UnixNano() } //determinism:ok — service-level wall clock

func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	cacheDir := flag.String("cache-dir", ".chexcampaign", "content-addressed result cache directory (empty disables caching)")
	workers := flag.Int("workers", 0, "worker pool shards (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1.0, "default workload scale for requests that omit one")
	insts := flag.Uint64("insts", 0, "default per-run macro-instruction budget (0 = completion)")
	maxCycles := flag.Uint64("max-cycles", 0, "default per-run simulated-cycle budget (0 = none)")
	fabricOn := flag.Bool("fabric", true, "serve the distributed campaign fabric (coordinator mode)")
	leaseTTL := flag.Duration("lease-ttl", 60*time.Second, "fabric cell lease TTL before reassignment")
	heartbeatTTL := flag.Duration("heartbeat-ttl", 15*time.Second, "fabric worker heartbeat TTL before deregistration")
	maxQueue := flag.Int("max-queue", 4096, "fabric admission control: max pending cells before 429")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "HTTP server read timeout")
	writeTimeout := flag.Duration("write-timeout", 10*time.Minute, "HTTP server write timeout (bounds long waits and SSE streams)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "HTTP server idle connection timeout")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget for in-flight requests and jobs")
	flag.Parse()

	var cache *campaign.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = campaign.OpenCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "chexd:", err)
			os.Exit(1)
		}
	}

	poolOpts := campaign.Options{
		Workers: *workers,
		// The wall clock lives here in the CLI, injected into the pool, so
		// internal/campaign stays free of time.Now and the chexvet
		// determinism gate holds with zero waivers; per-job wall time is a
		// runtime observation, never part of the cached payload.
		Clock: func() int64 { return time.Now().UnixNano() }, //determinism:ok — service-level wall-time probe
	}
	if cache != nil {
		poolOpts.Cache = cache
	}
	pool := campaign.NewPool(poolOpts)
	defer pool.Close()

	// Same injection for the lockstep shrink-duration metric: the counter
	// lives in internal/lockstep (zero waivers), the clock lives here.
	lockstep.SharedMetrics.SetClock(func() int64 { return time.Now().UnixNano() }) //determinism:ok — service-level wall-time probe

	srv := &server{
		pool:         pool,
		cache:        cache,
		defScale:     *scale,
		defMaxInsts:  *insts,
		defMaxCycles: *maxCycles,
	}

	if *fabricOn {
		srv.coord = fabric.NewCoordinator(fabric.CoordinatorOptions{
			Clock:        wallClock{},
			LeaseTTL:     *leaseTTL,
			HeartbeatTTL: *heartbeatTTL,
			MaxQueue:     *maxQueue,
			Cache:        cache,
			// The coordinator's own pool is the bottom rung of the
			// degradation ladder: with zero workers registered, campaigns
			// execute locally and chexd keeps serving.
			Local: pool,
		})
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic fabric tick: reap silent workers and expired leases even
	// when no traffic arrives to do it reactively.
	if srv.coord != nil {
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					srv.coord.Tick()
				}
			}
		}()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "chexd: listening on %s (workers=%d, cache=%s, fabric=%v)\n",
		*addr, pool.Workers(), *cacheDir, srv.coord != nil)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "chexd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "chexd: shutting down (draining up to %v)\n", *drain)
		deadline := time.Now().Add(*drain) //determinism:ok — CLI shutdown budget
		sctx, cancel := context.WithDeadline(context.Background(), deadline)
		if err := httpSrv.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "chexd: shutdown:", err)
		}
		cancel()
		drainJobs(pool, deadline)
	}
}

// drainJobs waits for every in-flight pool job to reach a terminal state,
// up to the deadline, so SIGTERM does not abandon work mid-simulation.
func drainJobs(pool *campaign.Pool, deadline time.Time) {
	dctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	for _, j := range pool.Jobs() {
		select {
		case <-j.Done():
		case <-dctx.Done():
			fmt.Fprintln(os.Stderr, "chexd: drain budget exhausted; abandoning remaining jobs")
			return
		}
	}
}
