// Command chexd serves the campaign orchestration subsystem over HTTP:
// submit simulation jobs, watch their progress, and read memoized results
// from the content-addressed cache. It is the service front-end to
// internal/campaign — the same pool and cache that back `chexbench
// -campaign` and `chexfault -pool`.
//
// Usage:
//
//	chexd                                  # listen on :8086, cache in .chexcampaign
//	chexd -addr 127.0.0.1:9000 -cache-dir /var/cache/chex -workers 8
//
// API (see README.md for curl examples):
//
//	POST /api/v1/jobs            submit one job
//	POST /api/v1/campaign        submit one bench job per workload (default: full catalog)
//	GET  /api/v1/jobs            list jobs
//	GET  /api/v1/jobs/{id}       job status (+result when done); ?wait=1 blocks
//	GET  /api/v1/jobs/{id}/stream  server-sent-event progress stream
//	GET  /api/v1/results/{key}   cached result by content address
//	GET  /metrics                pool counters (text exposition format)
//	GET  /healthz                liveness
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"chex86/internal/campaign"
)

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	cacheDir := flag.String("cache-dir", ".chexcampaign", "content-addressed result cache directory (empty disables caching)")
	workers := flag.Int("workers", 0, "worker pool shards (0 = GOMAXPROCS)")
	scale := flag.Float64("scale", 1.0, "default workload scale for requests that omit one")
	insts := flag.Uint64("insts", 0, "default per-run macro-instruction budget (0 = completion)")
	maxCycles := flag.Uint64("max-cycles", 0, "default per-run simulated-cycle budget (0 = none)")
	flag.Parse()

	var cache *campaign.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = campaign.OpenCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "chexd:", err)
			os.Exit(1)
		}
	}

	pool := campaign.NewPool(campaign.Options{
		Workers: *workers,
		Cache:   cache,
		// The wall clock lives here in the CLI, injected into the pool, so
		// internal/campaign stays free of time.Now and the chexvet
		// determinism gate holds with zero waivers; per-job wall time is a
		// runtime observation, never part of the cached payload.
		Clock: func() int64 { return time.Now().UnixNano() }, //determinism:ok — service-level wall-time probe
	})
	defer pool.Close()

	srv := &server{
		pool:         pool,
		cache:        cache,
		defScale:     *scale,
		defMaxInsts:  *insts,
		defMaxCycles: *maxCycles,
	}
	fmt.Fprintf(os.Stderr, "chexd: listening on %s (workers=%d, cache=%s)\n", *addr, pool.Workers(), *cacheDir)
	if err := http.ListenAndServe(*addr, srv.handler()); err != nil {
		fmt.Fprintln(os.Stderr, "chexd:", err)
		os.Exit(1)
	}
}
