// Command chexfuzz runs the lockstep differential-fuzzing harness: seeded
// random guest programs executed under the full protection-variant ×
// elision × μop-cache condition matrix, with every pipeline commit diffed
// against the reference emulator, capability-table/quarantine/tag-lattice
// invariants audited at configurable commit strides, and ground-truth
// labels checked on programs carrying injected violations.
//
// Every program derives from -seed and its global index, so a campaign is
// reproducible bit for bit; failures are minimized with a ddmin-style
// shrinker and persisted as content-addressed reproducers under the
// corpus directory.
//
// Usage:
//
//	chexfuzz -seed 1 -programs 10000            # bounded, cacheable sweep
//	chexfuzz -seed 1 -budget 30s -corpus ci     # CI gate: run until budget
//	chexfuzz -programs 64 -shard 3/8            # fabric-style index shard
//	chexfuzz -mutations 100 -steps 200 -v       # all-mutant stress, chatty
//
// Exit status: 0 on a clean sweep, 1 when the harness found a divergence,
// invariant violation, report mismatch, false positive, missed label, or
// crosscheck false negative (the report's failures carry shrunk genomes),
// 2 on usage or I/O errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"chex86/internal/lockstep"
)

func main() {
	seed := flag.Uint64("seed", 1, "sweep seed (equal seeds produce byte-identical reports)")
	programs := flag.Int("programs", 0, "bounded program count (0 with -budget = run until budget)")
	budget := flag.Duration("budget", 0, "wall-clock budget (with -programs 0: open-ended until exhausted)")
	shard := flag.String("shard", "", "index shard i/n (1-based) of the bounded program range")
	steps := flag.Int("steps", 0, "generator steps per program (0 = 40)")
	bufs := flag.Int("bufs", 0, "heap buffers per program (0 = 4, max 4)")
	bufBytes := flag.Int64("buf-bytes", 0, "bytes per buffer (0 = 128)")
	funcs := flag.Int("funcs", 0, "call-tree depth for the context fold (0 = 3, max 8)")
	mutations := flag.Int("mutations", 0, "percent of programs carrying an injected labeled violation (0 = 40, -1 = none)")
	stride := flag.Uint64("stride", 0, "invariant-audit commit stride (0 = 64)")
	insts := flag.Uint64("insts", 0, "macro-op budget per program per condition (0 = 500k)")
	crosscheck := flag.Int("crosscheck-every", 0, "ptrflow-crosscheck every Nth safe program (0 = 16, -1 = off)")
	corpusDir := flag.String("corpus", "", "corpus directory for shrunk reproducers (empty = in-report only)")
	out := flag.String("o", "", "write the JSON sweep report to this file (default: stdout)")
	maxFailures := flag.Int("max-failures", 0, "stop after this many failing programs (0 = 8)")
	verbose := flag.Bool("v", false, "log per-failure progress to stderr")
	quiet := flag.Bool("q", false, "suppress the summary line on stderr")
	flag.Parse()

	spec := lockstep.SweepSpec{
		Seed:            *seed,
		Programs:        *programs,
		Steps:           *steps,
		Bufs:            *bufs,
		BufBytes:        *bufBytes,
		Funcs:           *funcs,
		MutationPct:     *mutations,
		Stride:          *stride,
		MaxInsts:        *insts,
		CrosscheckEvery: *crosscheck,
	}
	if *programs == 0 && *budget == 0 {
		spec.Programs = 200
	}
	if *shard != "" {
		if err := applyShard(&spec, *shard); err != nil {
			fmt.Fprintln(os.Stderr, "chexfuzz:", err)
			os.Exit(2)
		}
	}

	opt := lockstep.SweepOptions{
		Metrics:     lockstep.SharedMetrics,
		MaxFailures: *maxFailures,
	}
	// The shrink-duration counter wants wall time; the clock is injected
	// here so internal/lockstep stays on the zero-waiver determinism gate.
	lockstep.SharedMetrics.SetClock(func() int64 { return time.Now().UnixNano() }) //determinism:ok — CLI-level wall-time probe
	if *verbose {
		opt.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "chexfuzz: "+format+"\n", args...)
		}
	}
	if *corpusDir != "" {
		c, err := lockstep.OpenCorpus(*corpusDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chexfuzz:", err)
			os.Exit(2)
		}
		opt.Corpus = c
	}

	ctx := context.Background()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	rep, err := lockstep.Sweep(ctx, spec, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chexfuzz:", err)
		os.Exit(2)
	}

	data := rep.JSON()
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "chexfuzz:", err)
		os.Exit(2)
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr,
			"chexfuzz: %d programs (%d safe, %d mutated, %d detected), %d commits diffed, %d elided sites, %d crosschecks: %d divergences, %d invariant hits, %d report mismatches, %d false positives, %d missed labels, %d errors — %s\n",
			rep.Programs, rep.Safe, rep.Mutated, rep.Detected, rep.Commits, rep.ElidedSites,
			rep.Crosschecks, rep.Divergences, rep.InvariantViolations, rep.ReportMismatches,
			rep.FalsePositives, rep.LabelMisses, rep.Errors, passFail(!rep.Failed()))
	}
	if rep.Failed() {
		os.Exit(1)
	}
}

// applyShard rewrites the spec's program range to the i-th of n equal
// index shards (1-based "i/n"), the same split campaign.LockstepShards
// hands to the fabric. Parsing is strict — trailing junk, signs baked
// into garbage, zero or negative components and out-of-range indices all
// fail loudly, and a shard that would receive zero programs is an error
// rather than a silent switch into open-ended budget mode.
func applyShard(spec *lockstep.SweepSpec, s string) error {
	is, ns, ok := strings.Cut(strings.TrimSpace(s), "/")
	if !ok {
		return fmt.Errorf("bad -shard %q: want i/n with 1 <= i <= n", s)
	}
	i, ierr := strconv.Atoi(is)
	n, nerr := strconv.Atoi(ns)
	if ierr != nil || nerr != nil || i < 1 || n < 1 || i > n {
		return fmt.Errorf("bad -shard %q: want i/n with 1 <= i <= n", s)
	}
	if spec.Programs <= 0 {
		return fmt.Errorf("-shard needs a bounded -programs count")
	}
	total := spec.Programs
	per := total / n
	extra := total % n
	first := spec.FirstProgram
	for k := 1; k < i; k++ {
		first += per
		if k <= extra {
			first++
		}
	}
	spec.FirstProgram = first
	spec.Programs = per
	if i <= extra {
		spec.Programs++
	}
	if spec.Programs == 0 {
		return fmt.Errorf("-shard %d/%d is empty: only %d program(s) to split across %d shards", i, n, total, n)
	}
	return nil
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
