package main

import (
	"strings"
	"testing"

	"chex86/internal/lockstep"
)

func TestApplyShardSplitsRange(t *testing.T) {
	// 10 programs over 3 shards: 4 + 3 + 3, contiguous and exhaustive.
	var first, total int
	for i := 1; i <= 3; i++ {
		spec := lockstep.SweepSpec{Programs: 10}
		if err := applyShard(&spec, strings.Repeat(" ", i%2)+itoa(i)+"/3"); err != nil {
			t.Fatalf("shard %d/3: %v", i, err)
		}
		if spec.FirstProgram != first {
			t.Errorf("shard %d/3 first = %d, want %d", i, spec.FirstProgram, first)
		}
		first += spec.Programs
		total += spec.Programs
	}
	if total != 10 {
		t.Errorf("shards cover %d programs, want 10", total)
	}
}

func TestApplyShardRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, shard string
		programs    int
		wantErr     string
	}{
		{"zero shards", "1/0", 10, "bad -shard"},
		{"zero index", "0/4", 10, "bad -shard"},
		{"negative index", "-1/4", 10, "bad -shard"},
		{"negative count", "2/-4", 10, "bad -shard"},
		{"index past count", "5/4", 10, "bad -shard"},
		{"missing slash", "3", 10, "bad -shard"},
		{"empty", "", 10, "bad -shard"},
		{"trailing junk", "3/8x", 64, "bad -shard"},
		{"junk index", "3y/8", 64, "bad -shard"},
		{"float", "1.5/8", 64, "bad -shard"},
		{"inner space", "3 /8", 64, "bad -shard"},
		{"unbounded sweep", "1/4", 0, "bounded -programs"},
		{"empty shard", "4/4", 3, "is empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := lockstep.SweepSpec{Programs: tc.programs}
			err := applyShard(&spec, tc.shard)
			if err == nil {
				t.Fatalf("applyShard(%q) with %d programs succeeded; want error containing %q (spec now %+v)",
					tc.shard, tc.programs, tc.wantErr, spec)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestApplyShardAcceptsWhitespacePadding(t *testing.T) {
	// Outer whitespace is shell noise and is tolerated; anything inside
	// the i/n pair is not.
	spec := lockstep.SweepSpec{Programs: 64}
	if err := applyShard(&spec, "  3/8  "); err != nil {
		t.Fatalf("padded shard rejected: %v", err)
	}
	if spec.Programs != 8 || spec.FirstProgram != 16 {
		t.Errorf("3/8 of 64 gave first=%d n=%d, want first=16 n=8", spec.FirstProgram, spec.Programs)
	}
}

func itoa(i int) string { return string(rune('0' + i)) }
