// Command chexsec runs the security evaluation of Section VII-A: the
// RIPE-style sweep, the ASan-test-style suite, the How2Heap-style exploit
// collection, and the Section VII-B false-positive probes.
//
// Usage:
//
//	chexsec                       # all suites, prediction-driven variant
//	chexsec -suite How2Heap -v    # one suite, per-exploit output
//	chexsec -variant baseline     # demonstrate the unprotected baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chex86/internal/decode"
	"chex86/internal/security"
)

var variants = map[string]decode.Variant{
	"baseline":   decode.VariantInsecure,
	"hardware":   decode.VariantHardwareOnly,
	"bintrans":   decode.VariantBinaryTranslation,
	"always-on":  decode.VariantMicrocodeAlwaysOn,
	"prediction": decode.VariantMicrocodePrediction,
	"watchdog":   decode.VariantWatchdog,
}

func main() {
	suite := flag.String("suite", "", "restrict to one suite: RIPE | 'ASan tests' | How2Heap | 'False positives'")
	variant := flag.String("variant", "prediction", "protection variant")
	verbose := flag.Bool("v", false, "print every exploit outcome")
	jsonPath := flag.String("json", "", "write per-exploit outcomes as JSON to this file")
	flag.Parse()

	v, ok := variants[strings.ToLower(*variant)]
	if !ok {
		fmt.Fprintf(os.Stderr, "chexsec: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	bySuite := map[string][]*security.Outcome{}
	order := []string{}
	for _, e := range security.All() {
		if *suite != "" && !strings.EqualFold(e.Suite, *suite) {
			continue
		}
		if _, seen := bySuite[e.Suite]; !seen {
			order = append(order, e.Suite)
		}
		out := security.Run(e, v)
		bySuite[e.Suite] = append(bySuite[e.Suite], out)
		if *verbose {
			fmt.Println(out)
		}
	}

	if *jsonPath != "" {
		type row struct {
			Suite, Name, Expect, Got string
			Correct                  bool
		}
		var rows []row
		for _, outs := range bySuite {
			for _, o := range outs {
				got := "none"
				if o.Violation != nil {
					got = o.Violation.Kind.String()
				}
				rows = append(rows, row{o.Exploit.Suite, o.Exploit.Name,
					o.Exploit.Expect.String(), got, o.Correct()})
			}
		}
		data, err := json.MarshalIndent(rows, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "chexsec:", err)
			os.Exit(1)
		}
	}

	exit := 0
	fmt.Printf("\nSecurity evaluation under %q:\n", v)
	for _, s := range order {
		sum := security.Summarize(bySuite[s])
		fmt.Printf("  %-16s %3d/%3d as expected", s, sum.Correct, sum.Total)
		if len(sum.ByClass) > 0 {
			fmt.Print("  [")
			first := true
			for k, n := range sum.ByClass {
				if !first {
					fmt.Print(", ")
				}
				fmt.Printf("%s: %d", k, n)
				first = false
			}
			fmt.Print("]")
		}
		fmt.Println()
		if v == decode.VariantMicrocodePrediction && sum.Correct != sum.Total {
			exit = 1
			for _, f := range sum.Failures {
				fmt.Printf("    FAILURE %s\n", f)
			}
		}
	}
	os.Exit(exit)
}
