// Command chexworker is a fabric execution node: it registers with a
// chexd coordinator, heartbeats, leases campaign cells, executes them on
// a local campaign pool behind the two-tier content-addressed cache
// (local disk, then the coordinator's store, then recompute), and
// reports completions.
//
// Usage:
//
//	chexworker -coordinator http://127.0.0.1:8086
//	chexworker -coordinator http://coord:8086 -id node-a -concurrency 4 \
//	    -cache-dir /var/cache/chexworker
//
// Workers are disposable by design: kill one mid-cell and its leases
// expire at the coordinator, which reassigns the cells to surviving
// workers (or runs them locally when none remain). SIGINT/SIGTERM
// deregisters gracefully so the coordinator requeues without waiting out
// the lease TTL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chex86/internal/campaign"
	"chex86/internal/fabric"
)

// wallClock adapts the host clock to fabric.Clock. It lives here in the
// CLI — internal/fabric never reads the wall clock, so the chexvet
// determinism gate holds there with zero waivers.
type wallClock struct{}

func (wallClock) Now() int64 { return time.Now().UnixNano() } //determinism:ok — service-level wall clock

func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func main() {
	coordURL := flag.String("coordinator", "http://127.0.0.1:8086", "coordinator base URL")
	id := flag.String("id", "", "worker identity (default: host:pid)")
	cacheDir := flag.String("cache-dir", "", "local result cache directory (empty disables the local tier)")
	workers := flag.Int("workers", 0, "pool shards for cell execution (0 = GOMAXPROCS)")
	concurrency := flag.Int("concurrency", 1, "cells to lease and execute in parallel")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle sleep between lease attempts")
	peerTimeout := flag.Duration("peer-timeout", 2*time.Second, "peer cache fetch timeout before falling back to recompute")
	flag.Parse()

	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}

	var local *campaign.Cache
	if *cacheDir != "" {
		var err error
		if local, err = campaign.OpenCache(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "chexworker:", err)
			os.Exit(1)
		}
	}

	client := fabric.NewClient(*coordURL, nil)
	tiered := fabric.NewTieredCache(local, client, wallClock{}, *peerTimeout)

	pool := campaign.NewPool(campaign.Options{
		Workers: *workers,
		Cache:   tiered,
		Clock:   func() int64 { return time.Now().UnixNano() }, //determinism:ok — service-level wall-time probe
	})
	defer pool.Close()

	w, err := fabric.NewWorker(fabric.WorkerOptions{
		ID:           *id,
		Addr:         *coordURL,
		Transport:    client,
		Pool:         pool,
		Clock:        wallClock{},
		PollInterval: *poll,
		Concurrency:  *concurrency,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chexworker:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "chexworker: %s serving %s (concurrency=%d, cache=%q)\n",
		*id, *coordURL, *concurrency, *cacheDir)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "chexworker:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "chexworker: shut down")
}
