// Command chexvet runs the determinism lint suite over simulator
// packages. It forbids wall-clock reads (time.Now/Since/Until), draws
// from the global math/rand stream, unsorted map iteration that feeds
// output or serialization, and %p format verbs (runtime addresses differ
// on every run) — the hazards that break the simulator's
// byte-identical-reruns contract. A finding is waived by a
// //determinism:ok comment on the same line or the line above.
//
// With no arguments it audits the four core packages:
// internal/pipeline, internal/tracker, internal/faultinject, and
// internal/experiments. Arguments are package directories; the pattern
// "./..." walks the whole tree. Findings are printed one per line and
// make the exit status non-zero, so it slots into CI next to go vet.
//
// Usage:
//
//	chexvet
//	chexvet ./...
//	chexvet internal/pipeline internal/tracker
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"chex86/internal/lint/determinism"
)

// auditedPackages is the default lint surface: the packages whose outputs
// (reports, traces, campaign JSON) must be byte-stable across reruns.
var auditedPackages = []string{
	"internal/pipeline",
	"internal/tracker",
	"internal/faultinject",
	"internal/experiments",
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = auditedPackages
	}

	var dirs []string
	for _, a := range args {
		if strings.HasSuffix(a, "...") {
			root := strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/")
			if root == "" || root == "." {
				root = "."
			}
			expanded, err := walkPackages(root)
			if err != nil {
				fail(err)
			}
			dirs = append(dirs, expanded...)
		} else {
			dirs = append(dirs, filepath.Clean(a))
		}
	}
	sort.Strings(dirs)
	dirs = dedup(dirs)

	total := 0
	for _, dir := range dirs {
		findings, err := determinism.LintDir(dir)
		if err != nil {
			fail(fmt.Errorf("%s: %w", dir, err))
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "chexvet: %d finding(s)\n", total)
		os.Exit(1)
	}
}

// walkPackages collects directories under root containing non-test Go
// files, skipping hidden directories and testdata.
func walkPackages(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []string
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chexvet:", err)
	os.Exit(2)
}
