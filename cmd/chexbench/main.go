// Command chexbench regenerates the tables and figures of the paper's
// evaluation (Section VII) on the simulated machine.
//
// Usage:
//
//	chexbench -all                 # everything (the full harness)
//	chexbench -fig 6               # one figure
//	chexbench -table 1             # one table
//	chexbench -fig 6 -scale 0.25   # quicker, scaled run
//	chexbench -benches mcf,lbm     # restrict the benchmark set
//	chexbench -campaign            # run the catalog through the sharded
//	                               # campaign pool with result caching
//	chexbench -kinst               # measure host throughput (Kinst/s and
//	                               # allocs/instruction) per workload
//	chexbench -fig 6 -cpuprofile cpu.pprof   # profile the host hot loop
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"chex86/internal/campaign"
	"chex86/internal/cvedata"
	"chex86/internal/decode"
	"chex86/internal/experiments"
	"chex86/internal/hostperf"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// stopProfiles flushes any active -cpuprofile/-memprofile capture; exit
// routes every termination path through it so a profiled run that fails
// still leaves a usable profile behind.
var stopProfiles = func() {}

func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1, 3, 6, 7, 8, 9)")
	table := flag.Int("table", 0, "table to regenerate (1, 2, 3, 4; 5 = the §VII-C Watchdog comparison)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	insts := flag.Uint64("insts", 0, "macro-instruction budget per run (0 = completion)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline per simulation run (0 = none); expiry is a non-zero exit")
	maxCycles := flag.Uint64("max-cycles", 0, "simulated-cycle budget per run (0 = none); exceeding it reports a structured livelock error")
	benches := flag.String("benches", "", "comma-separated benchmark subset")
	jsonDir := flag.String("json", "", "also write results as JSON into this directory")
	contextBench := flag.String("context", "", "run the context-sensitivity sweep for this benchmark")
	sweepBench := flag.String("sweep", "", "run the structure-sizing sweeps (cap cache / alias cache / predictor) for this benchmark")
	report := flag.String("report", "", "write a complete markdown report to this file (runs everything)")
	stamp := flag.String("stamp", "", "run identifier embedded in the report header (default: current time; pass a fixed stamp for byte-reproducible reports)")
	coverage := flag.Bool("coverage", false, "run the static pointer-flow cross-check and report tracker coverage")
	elideMode := flag.Bool("elide", false, "run proof-carrying check elision: analyze, verify proofs, replay with the elision map, report elision rate and speedup")
	hoistMode := flag.Bool("hoist", false, "run dominator-based guard hoisting: verify fused block-guard claims, replay with the guard map, report the subsumed-check fraction")
	campaignMode := flag.Bool("campaign", false, "run the benchmark catalog through the sharded campaign worker pool with content-addressed result caching")
	campaignVariants := flag.String("campaign-variants", "prediction", "comma-separated protection variants for -campaign")
	cacheDir := flag.String("cache-dir", ".chexcampaign", "campaign result cache directory (empty disables caching)")
	workers := flag.Int("workers", 0, "campaign pool shards (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the run to this file")
	kinst := flag.Bool("kinst", false, "measure host throughput: Kinst/s and allocs/instruction per workload")
	kinstVariants := flag.String("kinst-variants", "baseline,always-on,prediction", "comma-separated protection variants for -kinst")
	ctxK := flag.Int("ctxk", 0, "call-string depth for -elide proofs (0 = default k=2, -1 = context-insensitive)")
	superblocks := flag.String("superblocks", "on", "superblock replay: on (default) or off — the escape hatch cannot change results, only host throughput")
	flag.Parse()

	var noSuperblocks bool
	switch *superblocks {
	case "on":
	case "off":
		noSuperblocks = true
	default:
		fmt.Fprintf(os.Stderr, "chexbench: -superblocks must be on or off, got %q\n", *superblocks)
		exit(2)
	}

	if *cpuprofile != "" || *memprofile != "" {
		stop, err := startProfiles(*cpuprofile, *memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chexbench:", err)
			exit(1)
		}
		stopProfiles = stop
		defer stopProfiles()
	}

	if *kinst {
		if err := runKinst(*benches, *kinstVariants, *scale, *insts, noSuperblocks); err != nil {
			fmt.Fprintln(os.Stderr, "chexbench:", err)
			exit(1)
		}
		return
	}

	// The wall-clock read lives here, in the CLI, not in
	// internal/experiments: the library's outputs stay byte-stable and
	// the determinism linter (chexvet) keeps it that way.
	if *stamp == "" {
		*stamp = time.Now().Format(time.RFC3339) //determinism:ok — CLI-level stamp, overridable with -stamp
	}

	if *campaignMode {
		err := runCampaign(campaignFlags{
			benches:   *benches,
			variants:  *campaignVariants,
			scale:     *scale,
			insts:     *insts,
			maxCycles: *maxCycles,
			timeout:   *timeout,
			cacheDir:  *cacheDir,
			workers:   *workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "chexbench:", err)
			exit(1)
		}
		return
	}

	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chexbench:", err)
			exit(1)
		}
		defer f.Close()
		ro := experiments.Options{Scale: *scale, MaxInsts: *insts, MaxCycles: *maxCycles,
			Timeout: *timeout, NoSuperblocks: noSuperblocks}
		if *benches != "" {
			ro.Benches = strings.Split(*benches, ",")
		}
		if err := experiments.Report(f, ro, *stamp); err != nil {
			fmt.Fprintln(os.Stderr, "chexbench:", err)
			exit(1)
		}
		fmt.Println("report written to", *report)
		return
	}

	o := experiments.Options{Scale: *scale, MaxInsts: *insts, MaxCycles: *maxCycles,
		Timeout: *timeout, ContextK: *ctxK, NoSuperblocks: noSuperblocks}
	if *benches != "" {
		o.Benches = strings.Split(*benches, ",")
	}

	dump := func(name string, v any) {
		if *jsonDir == "" {
			return
		}
		if err := experiments.WriteJSON(*jsonDir, name, v); err != nil {
			fmt.Fprintf(os.Stderr, "chexbench: %v\n", err)
			exit(1)
		}
	}

	run := func(name string, f func() error) {
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "chexbench: %s: %v\n", name, err)
			exit(1)
		}
		fmt.Println()
	}

	want := func(f, t int) bool {
		if *all {
			return true
		}
		return (*fig != 0 && *fig == f) || (*table != 0 && *table == t)
	}
	if *contextBench != "" {
		run("Context-sensitivity sweep", func() error {
			rows, err := experiments.RunContextSweep(*contextBench, o)
			if err != nil {
				return err
			}
			dump("context", rows)
			fmt.Print(experiments.FormatContextSweep(*contextBench, rows))
			return nil
		})
		if !*all && *fig == 0 && *table == 0 && *sweepBench == "" {
			return
		}
	}
	if *sweepBench != "" {
		run("Structure-sizing sweeps", func() error {
			for _, k := range []experiments.SweepKind{
				experiments.SweepCapCache, experiments.SweepAliasCache, experiments.SweepPredictor,
			} {
				rows, err := experiments.RunSweep(*sweepBench, k, o)
				if err != nil {
					return err
				}
				dump(fmt.Sprintf("sweep-%d", int(k)), rows)
				fmt.Print(experiments.FormatSweep(*sweepBench, k, rows))
				fmt.Println()
			}
			return nil
		})
		if !*all && *fig == 0 && *table == 0 {
			return
		}
	}

	if *coverage {
		run("Tracker coverage", func() error {
			rows, err := experiments.RunCoverage(o)
			if err != nil {
				return err
			}
			dump("coverage", rows)
			fmt.Print(experiments.FormatCoverage(rows))
			return nil
		})
		if !*all && *fig == 0 && *table == 0 {
			return
		}
	}

	if *elideMode {
		run("Check elision", func() error {
			rows, err := experiments.RunElision(o)
			if err != nil {
				return err
			}
			dump("elision", rows)
			fmt.Print(experiments.FormatElision(rows))
			return nil
		})
		if !*all && *fig == 0 && *table == 0 && !*hoistMode {
			return
		}
	}

	if *hoistMode {
		run("Guard hoisting", func() error {
			rows, err := experiments.RunHoist(o)
			if err != nil {
				return err
			}
			dump("hoist", rows)
			fmt.Print(experiments.FormatHoist(rows))
			return nil
		})
		if !*all && *fig == 0 && *table == 0 {
			return
		}
	}

	if !*all && *fig == 0 && *table == 0 {
		flag.Usage()
		exit(2)
	}

	if want(1, 0) {
		run("Figure 1", func() error {
			fmt.Print(cvedata.Format())
			return nil
		})
	}
	if want(0, 1) {
		run("Table I", func() error {
			rs, err := experiments.RunTable1(o)
			if err != nil {
				return err
			}
			dump("table1", rs)
			fmt.Print(experiments.FormatTable1(rs))
			return nil
		})
	}
	if want(0, 2) {
		run("Table II", func() error {
			rs, err := experiments.RunTable2(o)
			if err != nil {
				return err
			}
			dump("table2", rs)
			fmt.Print(experiments.FormatTable2(rs))
			return nil
		})
	}
	if want(0, 3) {
		run("Table III", func() error {
			fmt.Print(experiments.FormatTable3())
			return nil
		})
	}
	if want(3, 0) {
		run("Figure 3", func() error {
			rs, err := experiments.RunFig3(o)
			if err != nil {
				return err
			}
			dump("fig3", rs)
			fmt.Print(experiments.FormatFig3(rs))
			return nil
		})
	}
	if want(0, 4) {
		run("Table IV", func() error {
			rs, err := experiments.RunTable4(o)
			if err != nil {
				return err
			}
			dump("table4", rs)
			fmt.Print(experiments.FormatTable4(rs))
			return nil
		})
	}
	if want(6, 0) {
		run("Figure 6", func() error {
			rs, err := experiments.RunFig6(o)
			if err != nil {
				return err
			}
			dump("fig6", rs)
			fmt.Print(experiments.FormatFig6(rs))
			fmt.Println()
			fmt.Print(experiments.ChartFig6(rs))
			return nil
		})
	}
	if want(7, 0) {
		run("Figure 7", func() error {
			rs, err := experiments.RunFig7(o)
			if err != nil {
				return err
			}
			dump("fig7", rs)
			fmt.Print(experiments.FormatFig7(rs))
			fmt.Println()
			fmt.Print(experiments.ChartFig7(rs))
			return nil
		})
	}
	if want(8, 0) {
		run("Figure 8", func() error {
			rs, err := experiments.RunFig8(o)
			if err != nil {
				return err
			}
			dump("fig8", rs)
			fmt.Print(experiments.FormatFig8(rs))
			fmt.Println()
			fmt.Print(experiments.ChartFig8(rs))
			return nil
		})
	}
	if *all || *table == 5 {
		run("Section VII-C (Watchdog comparison)", func() error {
			rs, err := experiments.RunWatchdog(o)
			if err != nil {
				return err
			}
			dump("watchdog", rs)
			fmt.Print(experiments.FormatWatchdog(rs))
			return nil
		})
	}
	if want(9, 0) {
		run("Figure 9", func() error {
			rs, err := experiments.RunFig9(o)
			if err != nil {
				return err
			}
			dump("fig9", rs)
			fmt.Print(experiments.FormatFig9(rs))
			return nil
		})
	}
}

type campaignFlags struct {
	benches   string
	variants  string
	scale     float64
	insts     uint64
	maxCycles uint64
	timeout   time.Duration
	cacheDir  string
	workers   int
}

// runCampaign routes the benchmark catalog through the campaign worker
// pool: every (workload, variant) pair becomes a job, the pool executes
// them on GOMAXPROCS shards, and the content-addressed cache serves
// repeated configurations without re-simulating. The report's wall-time
// and Kinst/s columns make cache hits (source=cache, ~0 wall, no IPS)
// distinguishable from real runs.
func runCampaign(f campaignFlags) error {
	var cache *campaign.Cache
	if f.cacheDir != "" {
		var err error
		if cache, err = campaign.OpenCache(f.cacheDir); err != nil {
			return err
		}
	}
	poolOpts := campaign.Options{
		Workers: f.workers,
		// Wall-clock reads stay in the CLI: the pool measures per-job wall
		// time through this injected probe, and internal/campaign passes
		// the chexvet determinism gate with zero waivers.
		Clock: func() int64 { return time.Now().UnixNano() }, //determinism:ok — CLI wall-time probe
	}
	if cache != nil {
		// Assign only when present: a typed-nil *Cache in the interface
		// field would read as "cache configured".
		poolOpts.Cache = cache
	}
	pool := campaign.NewPool(poolOpts)
	defer pool.Close()

	names := workload.Names()
	if f.benches != "" {
		names = strings.Split(f.benches, ",")
	}

	start := time.Now() //determinism:ok — CLI wall-time probe
	var jobs []*campaign.Job
	for _, vname := range strings.Split(f.variants, ",") {
		vname = strings.TrimSpace(vname)
		v, ok := campaign.VariantByName(vname)
		if !ok {
			return fmt.Errorf("unknown variant %q", vname)
		}
		for _, name := range names {
			cfg := pipeline.DefaultConfig()
			cfg.Variant = v
			spec := campaign.BenchSpec(name, cfg, f.scale, f.insts, f.maxCycles)
			spec.TimeoutMS = f.timeout.Milliseconds()
			j, err := pool.Submit(spec)
			if err != nil {
				return err
			}
			jobs = append(jobs, j)
		}
	}

	failed := 0
	for _, j := range jobs {
		if _, err := j.Wait(context.Background()); err != nil {
			failed++
		}
	}
	elapsed := time.Since(start) //determinism:ok — CLI wall-time probe

	fmt.Printf("==== Campaign (%d jobs on %d workers) ====\n", len(jobs), pool.Workers())
	fmt.Print(campaign.FormatReport(jobs))
	var simNS int64
	for _, j := range jobs {
		simNS += j.WallNS()
	}
	if sec := elapsed.Seconds(); sec > 0 && simNS > 0 {
		fmt.Printf("campaign wall-clock %.3fs; aggregate simulation time %.3fs (%.2fx parallel speedup over the sequential path)\n",
			sec, float64(simNS)/1e9, float64(simNS)/1e9/sec)
	}
	fmt.Println()
	fmt.Print(pool.Metrics().Snapshot().Render())
	if failed > 0 {
		return fmt.Errorf("%d of %d campaign jobs failed", failed, len(jobs))
	}
	return nil
}

// startProfiles begins CPU and/or heap profiling. The returned stop
// function is idempotent and must run before the process exits; exit()
// guarantees that on error paths.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintln(os.Stderr, "cpu profile written to", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "chexbench:", err)
				return
			}
			runtime.GC() // flush dead objects so the profile shows live + cumulative allocation sites
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "chexbench:", err)
			}
			f.Close()
			fmt.Fprintln(os.Stderr, "alloc profile written to", memPath)
		}
	}, nil
}

// runKinst measures host-side throughput — Kinst/s and allocs per
// simulated instruction — for each (workload, variant) pair, normalized
// by a host-speed calibration score so numbers are comparable across
// machines. This is the interactive face of the CI benchmark gate
// (cmd/chexperf); both share internal/hostperf.
func runKinst(benches, variants string, scale float64, insts uint64, noSuperblocks bool) error {
	clock := func() int64 { return time.Now().UnixNano() } //determinism:ok — CLI wall-time probe
	names := workload.Names()
	if benches != "" {
		names = strings.Split(benches, ",")
	}
	var vs []decode.Variant
	for _, vname := range strings.Split(variants, ",") {
		v, ok := campaign.VariantByName(strings.TrimSpace(vname))
		if !ok {
			return fmt.Errorf("unknown variant %q", vname)
		}
		vs = append(vs, v)
	}
	rep := &hostperf.Report{HostScore: hostperf.Calibrate(clock)}
	for _, name := range names {
		p := workload.ByName(strings.TrimSpace(name))
		if p == nil {
			return fmt.Errorf("unknown workload %q", name)
		}
		for _, v := range vs {
			s, err := hostperf.Measure(clock, p, v, hostperf.MeasureOpts{Scale: scale, MaxInsts: insts, NoSuperblocks: noSuperblocks})
			if err != nil {
				return err
			}
			rep.Samples = append(rep.Samples, s)
		}
	}
	fmt.Print(hostperf.Format(rep))
	return nil
}
