// Command chexsim runs one synthetic benchmark on the simulated CHEx86
// machine under a chosen protection variant and prints the run's
// statistics.
//
// Usage:
//
//	chexsim -bench mcf -variant prediction
//	chexsim -bench canneal -variant asan -scale 0.5
//	chexsim -bench mcf -save mcf.chx     # serialize to an object image
//	chexsim -obj mcf.chx                 # simulate a saved image
//	chexsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/objfile"
	"chex86/internal/patterns"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

var variants = map[string]decode.Variant{
	"baseline":   decode.VariantInsecure,
	"hardware":   decode.VariantHardwareOnly,
	"bintrans":   decode.VariantBinaryTranslation,
	"always-on":  decode.VariantMicrocodeAlwaysOn,
	"prediction": decode.VariantMicrocodePrediction,
	"asan":       decode.VariantASan,
	"watchdog":   decode.VariantWatchdog,
}

func main() {
	bench := flag.String("bench", "perlbench", "benchmark name (see -list)")
	variant := flag.String("variant", "prediction", "protection variant: baseline|hardware|bintrans|always-on|prediction|asan")
	scale := flag.Float64("scale", 1.0, "workload scale factor (round-count multiplier)")
	insts := flag.Uint64("insts", 0, "macro-instruction budget (0 = run to completion)")
	checker := flag.Bool("checker", false, "enable the hardware checker co-processor")
	trace := flag.Int("trace", 0, "dump pipeline timestamps for the first N micro-ops")
	pats := flag.Bool("patterns", false, "classify temporal pointer access patterns per reload site (Table II)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the run (0 = none); expiry is a non-zero exit")
	maxCycles := flag.Uint64("max-cycles", 0, "simulated-cycle budget (0 = none); exceeding it reports a structured livelock error")
	savePath := flag.String("save", "", "write the built benchmark as a CHEx86 object image and exit")
	objPath := flag.String("obj", "", "simulate a saved object image instead of building a benchmark")
	list := flag.Bool("list", false, "list available benchmarks and exit")
	flag.Parse()

	if *list {
		for _, p := range workload.Catalog() {
			fmt.Printf("%-14s %-12s threads=%d  %s\n", p.Name, p.Suite, max(1, p.Threads), p.About)
		}
		return
	}

	v, ok := variants[strings.ToLower(*variant)]
	if !ok {
		fmt.Fprintf(os.Stderr, "chexsim: unknown variant %q\n", *variant)
		os.Exit(2)
	}

	var (
		prog  *asm.Program
		err   error
		name  = *bench
		suite = "object image"
		harts = 1
	)
	cfg := pipeline.DefaultConfig()
	if *objPath != "" {
		// Simulate a previously saved image: the loader re-seeds
		// capabilities and alias entries from its .symtab/.reloc sections
		// exactly as it does for a built benchmark.
		prog, err = objfile.Load(*objPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chexsim:", err)
			os.Exit(1)
		}
		name = *objPath
	} else {
		p := workload.ByName(*bench)
		if p == nil {
			fmt.Fprintf(os.Stderr, "chexsim: unknown benchmark %q (try -list)\n", *bench)
			os.Exit(2)
		}
		prog, err = p.Build(*scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chexsim:", err)
			os.Exit(1)
		}
		if *savePath != "" {
			if err := objfile.Save(*savePath, prog); err != nil {
				fmt.Fprintln(os.Stderr, "chexsim:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: %s\n", *savePath, objfile.Summarize(prog))
			return
		}
		suite = p.Suite
		cfg.WarmupInsts = p.SetupInsts()
		if p.Threads > 0 {
			harts = p.Threads
		}
	}
	cfg.Variant = v
	cfg.MaxInsts = *insts
	if cfg.MaxInsts > 0 {
		cfg.MaxInsts += cfg.WarmupInsts
	}
	cfg.EnableChecker = *checker
	cfg.MaxCycles = *maxCycles
	sim, err := pipeline.NewSim(prog, cfg, harts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chexsim:", err)
		os.Exit(1)
	}
	var col *patterns.Collector
	if *pats {
		col = patterns.NewCollector(0)
		sim.SetReloadHook(func(pc uint64, pid core.PID) { col.Observe(pc, pid) })
	}
	if *trace > 0 {
		left := *trace
		fmt.Printf("%-8s %-10s %-30s %8s %8s %8s %8s %8s\n",
			"core", "rip", "uop", "fetch", "disp", "issue", "done", "commit")
		sim.TraceUop = func(t pipeline.UopTrace) {
			if left <= 0 {
				return
			}
			left--
			fmt.Printf("%-8d %-10s %-30s %8d %8d %8d %8d %8d\n",
				t.Core, fmt.Sprintf("%#x", t.RIP), t.Uop, t.Fetch, t.Dispatch, t.Issue, t.Done, t.Commit)
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := sim.RunContext(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chexsim:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark        %s (%s, %d hart(s))\n", name, suite, harts)
	fmt.Printf("variant          %s\n", v)
	fmt.Printf("instructions     %d (after %d warmup)\n", res.MacroInsts, cfg.WarmupInsts)
	fmt.Printf("cycles           %d (IPC %.2f, %.3f ms simulated)\n", res.Cycles, res.IPC(), res.Seconds()*1e3)
	fmt.Printf("micro-ops        %d native + %d injected (expansion %.2f)\n",
		res.NativeUops, res.InjectedUops, res.UopExpansion())
	fmt.Printf("cap cache        %.2f%% miss (%d checks)\n", 100*res.CapCache.MissRate(), res.ChecksRun)
	fmt.Printf("alias cache      %.2f%% miss, predictor %.2f%% mispredict (PNA0 %d / P0AN %d / PMAN %d)\n",
		100*res.AliasCache.MissRate(), 100*res.Predictor.MispredictionRate(),
		res.Predictor.PNA0, res.Predictor.P0AN, res.Predictor.PMAN)
	fmt.Printf("branches         %.2f%% mispredict, %.2f%% of time squashing\n",
		100*res.Branch.MispredictRate(), res.SquashPct())
	fmt.Printf("memory           L1D %.1f%% / L2 %.1f%% / LLC %.1f%% miss, %.1f MB/s DRAM\n",
		100*res.L1D.MissRate(), 100*res.L2.MissRate(), 100*res.LLC.MissRate(), res.BandwidthMBs())
	fmt.Printf("footprint        user %s + shadow %s\n", kb(res.UserRSS), kb(res.ShadowRSS))
	if *checker {
		fmt.Printf("checker          %d validations, %d mismatches\n",
			res.Checker.Validations, res.Checker.Mismatches)
	}
	if n := len(res.Violations); n > 0 {
		fmt.Printf("VIOLATIONS       %d (first: %v)\n", n, res.Violations[0])
	}
	if col != nil {
		fmt.Println()
		fmt.Println("Temporal pointer access patterns (Table II), per reload site:")
		for _, pc := range col.PCs() {
			seq := col.Seq(pc)
			if len(seq) < 4 {
				continue
			}
			fmt.Printf("  rip=%#-10x %6d reloads  %s\n", pc, len(seq), patterns.Classify(seq))
		}
		fmt.Println()
		fmt.Print(col.Format())
	}
}

func kb(b uint64) string { return fmt.Sprintf("%.1fKB", float64(b)/1024) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
