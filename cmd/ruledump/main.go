// Command ruledump prints the pointer-tracking rule database (Table I)
// and optionally validates it with the hardware checker co-processor over
// the workload suite — the offline rule-construction loop of Section V-A.
//
// Usage:
//
//	ruledump                       # print the rule database
//	ruledump -json                 # machine-readable (byte-stable) form
//	ruledump -validate             # and validate it over all workloads
//	ruledump -validate -benches mcf,perlbench
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chex86/internal/experiments"
	"chex86/internal/tracker"
)

func main() {
	validate := flag.Bool("validate", false, "validate the rules with the hardware checker over the workloads")
	benches := flag.String("benches", "", "comma-separated benchmark subset for validation")
	scale := flag.Float64("scale", 0.5, "workload scale for validation")
	jsonOut := flag.Bool("json", false, "emit the rule database as JSON (database order, byte-stable)")
	flag.Parse()

	db := tracker.NewRuleDB()
	if *jsonOut {
		data, err := json.MarshalIndent(db.Export(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ruledump:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(data, '\n'))
		if !*validate {
			return
		}
	} else {
		fmt.Println("Table I: Pointer Tracking Rule Database")
		fmt.Println()
		fmt.Print(db.Format())
	}

	if !*validate {
		return
	}
	o := experiments.Options{Scale: *scale}
	if *benches != "" {
		o.Benches = strings.Split(*benches, ",")
	}
	results, err := experiments.RunTable1(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ruledump:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("Hardware-checker validation:")
	// Two severities. A *wrong-PID* disagreement means an implemented rule
	// produced the wrong capability — a rule bug, exit 1. A *gap* (tracker
	// says untagged, value coincides with a live block) is the
	// rule-extension candidate stream of Section V-A: the checker surfaces
	// the instruction so an architect can decide whether Table I needs a
	// new rule or the value is an integer-provenance coincidence the paper
	// leaves to the compiler (fadd/xor hashing is the usual source).
	wrongPID, gaps := false, 0
	for _, r := range results {
		fmt.Printf("  %-14s %8d validations, %d disagreements\n", r.Bench, r.Validations, r.Mismatches)
		for _, m := range r.Mismatch {
			if m.Tracked != 0 {
				fmt.Printf("    WRONG-PID (rule bug): %s\n", m)
				wrongPID = true
			} else {
				fmt.Printf("    extension candidate:  %s\n", m)
				gaps++
			}
		}
	}
	if wrongPID {
		fmt.Println("implemented rules produced wrong PIDs: the rule database is broken")
		os.Exit(1)
	}
	if gaps > 0 {
		fmt.Printf("rule database explains all tracked pointer activity; %d extension candidates surfaced (untracked-op provenance coincidences)\n", gaps)
		return
	}
	fmt.Println("rule database fully explains observed pointer activity")
}
