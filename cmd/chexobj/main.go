// Command chexobj inspects CHEx86 object images the way objdump/readelf
// inspect ELF binaries: section summary, symbol table, relocations, and a
// disassembly listing of .text.
//
// Usage:
//
//	chexsim -bench mcf -save mcf.chx   # produce an image
//	chexobj mcf.chx                    # section summary
//	chexobj -d mcf.chx                 # disassemble .text
//	chexobj -s -r mcf.chx              # symbols and relocations
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"chex86/internal/asm"
	"chex86/internal/objfile"
)

func main() {
	dis := flag.Bool("d", false, "disassemble .text")
	syms := flag.Bool("s", false, "print the symbol table")
	rels := flag.Bool("r", false, "print relocation entries")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: chexobj [-d] [-s] [-r] <image>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	p, err := objfile.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chexobj:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %s\n", path, objfile.Summarize(p))
	fmt.Printf("text base %#x, end %#x\n", p.TextBase, p.End())

	if *syms {
		printSymbols(p)
	}
	if *rels {
		printRelocs(p)
	}
	if *dis {
		disassemble(p)
	}
}

func printSymbols(p *asm.Program) {
	fmt.Println("\nSYMBOL TABLE:")
	for _, g := range p.SortedGlobals() {
		perm := "rw"
		if g.ReadOnly {
			perm = "r-"
		}
		fmt.Printf("  %#012x %8d %s  %s\n", g.Addr, g.Size, perm, g.Name)
	}
}

func printRelocs(p *asm.Program) {
	fmt.Println("\nRELOCATION RECORDS:")
	rs := append([]asm.Reloc(nil), p.Relocs...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Slot < rs[j].Slot })
	for _, r := range rs {
		fmt.Printf("  %#012x  R_CHX86_64  %s\n", r.Slot, r.Target)
	}
}

func disassemble(p *asm.Program) {
	// Invert the label map so the listing annotates branch targets.
	byAddr := map[uint64]string{}
	for name, addr := range p.Labels {
		byAddr[addr] = name
	}
	fmt.Println("\nDisassembly of section .text:")
	for i := range p.Insts {
		in := &p.Insts[i]
		if name, ok := byAddr[in.Addr]; ok {
			fmt.Printf("\n%#012x <%s>:\n", in.Addr, name)
		}
		fmt.Printf("  %#012x:  %s\n", in.Addr, in)
	}
}
