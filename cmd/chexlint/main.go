// Command chexlint statically analyzes the pointer flow of guest
// workloads and, with -crosscheck, replays them through the simulated
// pipeline to diff the speculative pointer tracker's runtime tag stream
// against the static verdicts.
//
// The static analyzer (internal/ptrflow) abstractly interprets the
// tracker's Table-I rule database over a control-flow graph of the
// decoded program, producing a per-dereference verdict: statically
// pointer, statically not-pointer, or unknown. The cross-check proves
// tracker false negatives (a dereference the analysis shows must carry a
// pointer, executed untagged) and over-tagging, and measures tracker
// coverage. Proven, untriaged false negatives make the exit status
// non-zero, so the tool doubles as a CI gate for tracker-rule
// regressions.
//
// With -elide, the analyzer additionally emits per-dereference safety
// proofs, the independent checker (internal/elide) verifies them, and
// the tool prints the resulting proof table: which capability checks are
// provably elidable, with bounds and justification chains.
//
// With -guards, the tool verifies the analyzer's hoisted block-guard
// claims (dominator-anchored fused bounds checks, DESIGN.md §16)
// fail-closed against the elision map and prints each guard decision;
// -json renders the decisions as byte-stable JSON.
//
// Usage:
//
//	chexlint -workloads all
//	chexlint -crosscheck -workloads mcf,leela -o report.json
//	chexlint -elide -workloads freqmine
//	chexlint -elide -json -o proofs.json
//	chexlint -guards -workloads mcf
//	chexlint -guards -json -o guards.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chex86/internal/elide"
	"chex86/internal/faultinject"
	"chex86/internal/ptrflow"
	"chex86/internal/workload"
)

func main() {
	workloads := flag.String("workloads", "all", "comma-separated benchmark names, or \"all\"")
	crosscheck := flag.Bool("crosscheck", false, "replay workloads dynamically and diff tracker tags against static verdicts")
	elideMode := flag.Bool("elide", false, "verify capability-check elision proofs and print the proof table")
	guardsMode := flag.Bool("guards", false, "verify hoisted block-guard claims (DESIGN.md §16) and print the guard table")
	jsonOut := flag.Bool("json", false, "emit the -elide/-guards reports as byte-stable JSON (crosscheck reports are always JSON)")
	ctxK := flag.Int("ctxk", 0, "call-string depth for -elide proofs (0 = default k=2, -1 = context-insensitive)")
	contexts := flag.Int("contexts", 0, "cap the per-context verdict rows printed per site in -elide output (0 = all)")
	variantFlag := flag.String("variant", "prediction", "protection variant for the dynamic replay")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	insts := flag.Uint64("insts", 0, "instruction budget for the dynamic replay (0 = run to completion)")
	maxCycles := flag.Uint64("max-cycles", 20_000_000, "watchdog cycle budget for the dynamic replay")
	timeout := flag.Duration("timeout", 5*time.Minute, "wall-clock budget per dynamic replay")
	out := flag.String("o", "", "write the crosscheck JSON report to this file (default: stdout when -crosscheck)")
	quiet := flag.Bool("q", false, "suppress per-workload summaries on stderr")
	flag.Parse()

	profiles, err := selectProfiles(*workloads)
	if err != nil {
		fail(err)
	}
	variant, ok := faultinject.VariantByName(*variantFlag)
	if !ok {
		fail(fmt.Errorf("unknown variant %q", *variantFlag))
	}

	if *guardsMode {
		if err := runGuards(profiles, *scale, *ctxK, *jsonOut, *out, *quiet); err != nil {
			fail(err)
		}
		return
	}

	if *elideMode {
		if err := runElide(profiles, *scale, *ctxK, *contexts, *jsonOut, *out, *quiet); err != nil {
			fail(err)
		}
		return
	}

	if !*crosscheck {
		for _, p := range profiles {
			if err := staticOnly(p, *scale); err != nil {
				fail(err)
			}
		}
		return
	}

	var reports []*ptrflow.Report
	falseNegatives := 0
	for _, p := range profiles {
		prog, err := p.Build(*scale)
		if err != nil {
			fail(fmt.Errorf("%s: %w", p.Name, err))
		}
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		rep, err := ptrflow.Crosscheck(ctx, prog, ptrflow.CheckOptions{
			Harts:     harts(p),
			Variant:   variant,
			MaxInsts:  *insts,
			MaxCycles: *maxCycles,
		})
		cancel()
		if err != nil {
			fail(fmt.Errorf("%s: %w", p.Name, err))
		}
		rep.Workload = p.Name
		reports = append(reports, rep)
		falseNegatives += rep.FalseNegatives
		if !*quiet {
			fmt.Fprint(os.Stderr, rep.Format())
		}
	}

	data, err := json.MarshalIndent(struct {
		Pass    bool              `json:"pass"`
		Reports []*ptrflow.Report `json:"reports"`
	}{falseNegatives == 0, reports}, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	if falseNegatives > 0 {
		fmt.Fprintf(os.Stderr, "chexlint: %d proven tracker false negative(s)\n", falseNegatives)
		os.Exit(1)
	}
}

// runElide analyzes each workload, verifies its proof bundle with the
// independent checker, and renders the proof table (or, with jsonOut,
// a byte-stable JSON report including the per-context verdict table).
func runElide(profiles []*workload.Profile, scale float64, ctxK, contexts int, jsonOut bool, outPath string, quiet bool) error {
	type ctxVerdict struct {
		Addr     uint64 `json:"addr"`
		MacroIdx uint8  `json:"macroIdx"`
		Ctx      string `json:"ctx"`
		Verdict  string `json:"verdict"`
		Proof    string `json:"proof"` // elide | keep | none
	}
	type elideReport struct {
		Workload string `json:"workload"`
		*elide.Report
		Contexts []ctxVerdict `json:"contexts,omitempty"`
	}
	var reports []elideReport
	for _, p := range profiles {
		prog, err := p.Build(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		an, err := ptrflow.Analyze(prog, ptrflow.Options{Harts: harts(p), ContextK: ctxK})
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		rep := elide.FromAnalysis(prog, an, elide.Options{Harts: harts(p), ContextK: ctxK})

		// Join checker decisions onto the analyzer's per-context
		// verdicts: proof status is the decision at the exact context,
		// falling back to a context-free ("any") elision that already
		// covers every context of the site.
		type decKey struct {
			addr uint64
			idx  uint8
			ctx  string
		}
		status := make(map[decKey]string, len(rep.Decisions))
		for i := range rep.Decisions {
			d := &rep.Decisions[i]
			c := d.Ctx
			if c == "" {
				c = "any"
			}
			status[decKey{d.Addr, d.MacroIdx, c}] = d.Status
		}
		var ctxRows []ctxVerdict
		for _, s := range an.SortedSites() {
			printed := 0
			for _, sc := range s.SortedCtxs() {
				if contexts > 0 && printed >= contexts {
					break
				}
				name := sc.Ctx.String()
				proof, ok := status[decKey{s.Addr, s.MacroIdx, name}]
				if !ok {
					if status[decKey{s.Addr, s.MacroIdx, "any"}] == "elide" {
						proof = "elide"
					} else {
						proof = "none"
					}
				}
				ctxRows = append(ctxRows, ctxVerdict{
					Addr:     s.Addr,
					MacroIdx: s.MacroIdx,
					Ctx:      name,
					Verdict:  sc.Verdict.String(),
					Proof:    proof,
				})
				printed++
			}
		}
		reports = append(reports, elideReport{Workload: p.Name, Report: rep, Contexts: ctxRows})
		if !jsonOut && !quiet {
			fmt.Printf("%s:\n%s", p.Name, rep.Format())
		}
	}
	if !jsonOut {
		return nil
	}
	data, err := json.MarshalIndent(struct {
		Reports []elideReport `json:"reports"`
	}{reports}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(outPath, data, 0o644)
}

// runGuards verifies each workload's hoisted block-guard claims against
// the independently re-verified elision map and renders the guard table
// (or, with jsonOut, a byte-stable JSON report of every guard decision).
func runGuards(profiles []*workload.Profile, scale float64, ctxK int, jsonOut bool, outPath string, quiet bool) error {
	type guardReport struct {
		Workload string `json:"workload"`
		elide.GuardReport
	}
	var reports []guardReport
	for _, p := range profiles {
		prog, err := p.Build(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		rep, err := elide.ForProgram(prog, elide.Options{Harts: harts(p), ContextK: ctxK})
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		g := rep.Guards
		reports = append(reports, guardReport{Workload: p.Name, GuardReport: g})
		if jsonOut || quiet {
			continue
		}
		fmt.Printf("%s:\n  guard check: verified=%v guards=%d covered=%d rejected=%d",
			p.Name, g.Verified, g.Stats.Guards, g.Stats.Covered, g.Stats.Rejected)
		if g.Reason != "" {
			fmt.Printf("  (%s)", g.Reason)
		}
		fmt.Println()
		for _, d := range g.Decisions {
			if d.Status == "hoist" {
				fmt.Printf("  guard %#08x block %d ctx=%s %s+[%d,%d) covers %d\n",
					d.Addr, d.Block, d.Ctx, d.Region, d.Lo, d.End, d.Covered)
			} else {
				fmt.Printf("  guard %#08x block %d ctx=%s reject  %s\n", d.Addr, d.Block, d.Ctx, d.Reason)
			}
		}
		fmt.Printf("  digest: %s\n", g.Digest)
	}
	if !jsonOut {
		return nil
	}
	data, err := json.MarshalIndent(struct {
		Reports []guardReport `json:"reports"`
	}{reports}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "" {
		os.Stdout.Write(data)
		return nil
	}
	return os.WriteFile(outPath, data, 0o644)
}

// staticOnly analyzes one workload without a dynamic replay and prints a
// summary listing.
func staticOnly(p *workload.Profile, scale float64) error {
	prog, err := p.Build(scale)
	if err != nil {
		return fmt.Errorf("%s: %w", p.Name, err)
	}
	an, err := ptrflow.Analyze(prog, ptrflow.Options{Harts: harts(p)})
	if err != nil {
		return fmt.Errorf("%s: %w", p.Name, err)
	}
	fmt.Printf("%s:\n%s", p.Name, an.Format())
	return nil
}

func selectProfiles(names string) ([]*workload.Profile, error) {
	if names == "" || names == "all" {
		return workload.Catalog(), nil
	}
	var out []*workload.Profile
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		p := workload.ByName(n)
		if p == nil {
			return nil, fmt.Errorf("unknown workload %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}

func harts(p *workload.Profile) int {
	if p.Threads > 0 {
		return p.Threads
	}
	return 1
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chexlint:", err)
	os.Exit(2)
}
