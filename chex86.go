// Package chex86 is a simulation-based reproduction of the CHEx86
// processor architecture (Sharifi and Venkat, "CHEx86: Context-Sensitive
// Enforcement of Memory Safety via Microcode-Enabled Capabilities",
// ISCA 2020): transparent capability-based memory-safety enforcement for
// unmodified x86-style binaries via microcode-level instrumentation and
// speculative pointer tracking.
//
// The package exposes the full stack: a guest-program assembler, the
// functional emulator with heap-routine interception, the out-of-order
// timing model of the Table III machine, the CHEx86 protection variants
// (hardware-only, binary-translation, microcode always-on, microcode
// prediction-driven) plus an AddressSanitizer model and an insecure
// baseline, the synthetic SPEC CPU2017 / PARSEC 2.1 workload suite, the
// security exploit suites, and the harness that regenerates every table
// and figure of the paper's evaluation.
//
// Quick start:
//
//	b := chex86.NewProgramBuilder()
//	b.MovRI(chex86.RDI, 64)
//	b.CallAddr(chex86.MallocEntry)
//	b.MovRR(chex86.RBX, chex86.RAX)
//	b.MovRI(chex86.RDX, 1)
//	b.Store(chex86.RBX, 64, chex86.RDX) // one past the end
//	b.Hlt()
//	prog, _ := b.Build()
//
//	cfg := chex86.DefaultConfig()
//	cfg.StopOnViolation = true
//	_, err := chex86.Run(prog, cfg, 1)
//	// err is a *chex86.Violation: out-of-bounds at the offending RIP.
package chex86

import (
	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/experiments"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
	"chex86/internal/security"
	"chex86/internal/workload"
)

// Re-exported configuration and result types.
type (
	// Config describes the simulated machine and protection scheme.
	Config = pipeline.Config
	// Result aggregates a simulation run's statistics.
	Result = pipeline.Result
	// Sim is a configured simulation instance.
	Sim = pipeline.Sim
	// Variant selects the protection scheme.
	Variant = decode.Variant
	// Violation is a detected memory-safety violation; it implements error.
	Violation = core.Violation
	// ViolationKind classifies violations.
	ViolationKind = core.ViolationKind
	// Program is an assembled guest program.
	Program = asm.Program
	// ProgramBuilder assembles guest programs.
	ProgramBuilder = asm.Builder
	// WorkloadProfile parameterizes a synthetic benchmark.
	WorkloadProfile = workload.Profile
	// Exploit is one security-evaluation case.
	Exploit = security.Exploit
	// ContextPolicy selects the code regions that receive capability
	// checks (context-sensitive enforcement).
	ContextPolicy = core.ContextPolicy
	// Region is a half-open RIP range for context policies.
	Region = core.Region
	// ExperimentOptions scales the paper-evaluation harness.
	ExperimentOptions = experiments.Options
	// Reg names an architectural register of the simulated machine.
	Reg = isa.Reg
	// Cond is a branch condition code.
	Cond = isa.Cond
	// SimError is a structured simulator error (configuration, watchdog,
	// cancellation); it carries a pipeline Snapshot when one is available.
	SimError = pipeline.SimError
	// Snapshot is the per-hart pipeline state attached to watchdog and
	// cancellation errors.
	Snapshot = pipeline.Snapshot
)

// Structured simulator error kinds.
const (
	ErrConfig     = pipeline.ErrConfig
	ErrHang       = pipeline.ErrHang
	ErrCycleLimit = pipeline.ErrCycleLimit
	ErrCanceled   = pipeline.ErrCanceled
	ErrDeadline   = pipeline.ErrDeadline
)

// Architectural registers, in x86-64 encoding order.
const (
	RAX = isa.RAX
	RCX = isa.RCX
	RDX = isa.RDX
	RBX = isa.RBX
	RSP = isa.RSP
	RBP = isa.RBP
	RSI = isa.RSI
	RDI = isa.RDI
	R8  = isa.R8
	R9  = isa.R9
	R10 = isa.R10
	R11 = isa.R11
	R12 = isa.R12
	R13 = isa.R13
	R14 = isa.R14
	R15 = isa.R15

	// RNone marks an absent register operand (e.g. an absolute-address
	// load with no base register).
	RNone = isa.RNone
)

// Address-space layout constants of the simulated process.
const (
	// GlobalBase is where the global data section starts.
	GlobalBase uint64 = 0x0000_0000_0060_0000
)

// Branch condition codes.
const (
	CondE  = isa.CondE
	CondNE = isa.CondNE
	CondL  = isa.CondL
	CondLE = isa.CondLE
	CondG  = isa.CondG
	CondGE = isa.CondGE
)

// Protection variants (Figure 6's configurations).
const (
	VariantInsecure            = decode.VariantInsecure
	VariantHardwareOnly        = decode.VariantHardwareOnly
	VariantBinaryTranslation   = decode.VariantBinaryTranslation
	VariantMicrocodeAlwaysOn   = decode.VariantMicrocodeAlwaysOn
	VariantMicrocodePrediction = decode.VariantMicrocodePrediction
	VariantASan                = decode.VariantASan
)

// Violation kinds.
const (
	ViolationNone               = core.VNone
	ViolationOutOfBounds        = core.VOutOfBounds
	ViolationUseAfterFree       = core.VUseAfterFree
	ViolationDoubleFree         = core.VDoubleFree
	ViolationInvalidFree        = core.VInvalidFree
	ViolationWildDereference    = core.VWildDereference
	ViolationResourceExhaustion = core.VResourceExhaustion
)

// Heap-management routine entry points, pre-registered in the simulated
// machine's MSRs; guest programs call them with CallAddr.
const (
	MallocEntry  = heap.MallocEntry
	CallocEntry  = heap.CallocEntry
	ReallocEntry = heap.ReallocEntry
	FreeEntry    = heap.FreeEntry
)

// DefaultConfig returns the Table III machine configured as the default
// CHEx86 design (microcode prediction-driven variant, 64-entry capability
// cache, 256+32-entry alias cache, 512-entry pointer-reload predictor).
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// NewProgramBuilder returns a builder assembling guest programs at the
// conventional text base.
func NewProgramBuilder() *ProgramBuilder { return asm.NewBuilder() }

// NewSim constructs a simulation of prog under cfg with the given hart
// count (one core per hart). Invalid configurations are reported as a
// *SimError with kind ErrConfig.
func NewSim(prog *Program, cfg Config, harts int) (*Sim, error) {
	return pipeline.NewSim(prog, cfg, harts)
}

// MustSim is NewSim for known-good configurations: it panics on a
// configuration error.
func MustSim(prog *Program, cfg Config, harts int) *Sim {
	return pipeline.New(prog, cfg, harts)
}

// Run simulates prog to completion under cfg and returns the aggregated
// result. With cfg.StopOnViolation set, the first detected capability
// violation is returned as a *Violation error; configuration problems,
// watchdog trips (cfg.MaxCycles / cfg.StallCycles), and cancellations
// surface as *SimError.
func Run(prog *Program, cfg Config, harts int) (*Result, error) {
	sim, err := pipeline.NewSim(prog, cfg, harts)
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// Always returns the context policy that instruments every code region.
func Always() ContextPolicy { return core.Always() }

// Only returns the context-sensitive policy instrumenting just the given
// RIP regions; allocations are still tracked globally (Section VII-D).
func Only(regions ...Region) ContextPolicy { return core.Only(regions...) }

// Workloads returns the synthetic benchmark catalog standing in for the
// paper's SPEC CPU2017 and PARSEC 2.1 subsets, in Figure 6 order.
func Workloads() []*WorkloadProfile { return workload.Catalog() }

// WorkloadByName returns the named benchmark profile, or nil.
func WorkloadByName(name string) *WorkloadProfile { return workload.ByName(name) }

// Exploits returns every security-evaluation case: the RIPE-style sweep,
// the ASan-test-style suite, the 18 How2Heap-style exploits, and the
// Section VII-B false-positive probes.
func Exploits() []*Exploit { return security.All() }

// RunExploit executes one exploit under the given variant.
func RunExploit(e *Exploit, v Variant) *security.Outcome { return security.Run(e, v) }

// TimeShare runs several processes round-robin on the simulated hardware
// with OS context switching: sliceRecs macro-ops per quantum, kernelCost
// cycles per switch, and cold per-process security structures after each
// switch-in (Section IV-C's MSR save/restore semantics).
func TimeShare(sims []*Sim, sliceRecs int, kernelCost uint64) (*pipeline.TimeShareResult, error) {
	return pipeline.TimeShare(sims, sliceRecs, kernelCost)
}
