// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark reports the paper's metric via
// b.ReportMetric so `go test -bench=. -benchmem` regenerates the rows and
// series the paper reports (scaled; see EXPERIMENTS.md for the
// paper-vs-measured record).
package chex86

import (
	"fmt"
	"testing"

	"chex86/internal/cvedata"
	"chex86/internal/decode"
	"chex86/internal/experiments"
	"chex86/internal/memprof"
	"chex86/internal/pipeline"
	"chex86/internal/security"
	"chex86/internal/workload"
)

// benchOpts keeps the full -bench=. sweep to a few minutes.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.25, MaxInsts: 200_000}
}

func benchRun(b *testing.B, p *workload.Profile, cfg pipeline.Config) *pipeline.Result {
	b.Helper()
	o := benchOpts()
	prog, err := p.Build(o.Scale)
	if err != nil {
		b.Fatal(err)
	}
	cfg.WarmupInsts = p.SetupInsts()
	cfg.MaxInsts = o.MaxInsts + cfg.WarmupInsts
	harts := p.Threads
	if harts == 0 {
		harts = 1
	}
	res, err := pipeline.New(prog, cfg, harts).Run()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig1CVEData regenerates the Figure 1 dataset.
func BenchmarkFig1CVEData(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(cvedata.Format())
	}
	if n == 0 {
		b.Fatal("empty dataset")
	}
	last := cvedata.Data()[len(cvedata.Data())-1]
	b.ReportMetric(last.MemorySafetyShare(), "memsafety-share-2018-%")
}

// BenchmarkFig3AllocBehavior profiles allocation behavior (Figure 3) for a
// representative benchmark per iteration.
func BenchmarkFig3AllocBehavior(b *testing.B) {
	p := workload.ByName("xalancbmk")
	var st *memprof.Stats
	for i := 0; i < b.N; i++ {
		prog, err := p.Build(0.25)
		if err != nil {
			b.Fatal(err)
		}
		st, err = memprof.Profile(prog, 1, 50_000, 300_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.TotalAllocs), "total-allocs")
	b.ReportMetric(float64(st.MaxLive), "max-live")
	b.ReportMetric(st.AvgInUse, "in-use-per-interval")
}

// BenchmarkTable1RuleChecker measures the hardware checker validating the
// rule database (Table I) over a pointer-intensive workload.
func BenchmarkTable1RuleChecker(b *testing.B) {
	p := workload.ByName("canneal")
	var res *pipeline.Result
	for i := 0; i < b.N; i++ {
		cfg := pipeline.DefaultConfig()
		cfg.EnableChecker = true
		res = benchRun(b, p, cfg)
	}
	if res.Checker.Validations == 0 {
		b.Fatal("checker validated nothing")
	}
	b.ReportMetric(100*(1-res.Checker.MismatchRate()), "rule-agreement-%")
}

// BenchmarkTable2Patterns classifies the temporal pointer access patterns
// (Table II) observed on a batch-striding workload.
func BenchmarkTable2Patterns(b *testing.B) {
	o := benchOpts()
	o.Benches = []string{"perlbench"}
	var rs []experiments.Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		rs, err = experiments.RunTable2(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	total := 0
	for _, n := range rs[0].Summary {
		total += n
	}
	b.ReportMetric(float64(total), "reload-PCs")
}

// BenchmarkTable4Comparison measures the CHEx86 row of Table IV (SPEC
// performance and storage overheads).
func BenchmarkTable4Comparison(b *testing.B) {
	o := benchOpts()
	o.Benches = []string{"perlbench", "mcf", "lbm"}
	var rows []experiments.Table4Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunTable4(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	if rows[len(rows)-1].Proposal != "CHEx86" {
		b.Fatal("measured row missing")
	}
}

// BenchmarkFig6Performance runs every benchmark under every protection
// variant (Figure 6, top and bottom). Sub-benchmarks report the normalized
// performance and micro-op expansion per cell.
func BenchmarkFig6Performance(b *testing.B) {
	for _, p := range workload.Catalog() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var base *pipeline.Result
			for v := decode.Variant(0); v < decode.NumVariants; v++ {
				v := v
				b.Run(fmt.Sprintf("%d", v), func(b *testing.B) {
					var res *pipeline.Result
					for i := 0; i < b.N; i++ {
						cfg := pipeline.DefaultConfig()
						cfg.Variant = v
						res = benchRun(b, p, cfg)
					}
					if v == decode.VariantInsecure {
						base = res
					} else if base != nil {
						b.ReportMetric(float64(base.Cycles)/float64(res.Cycles), "norm-perf")
					}
					b.ReportMetric(res.UopExpansion(), "uop-expansion")
				})
			}
		})
	}
}

// BenchmarkFig7CacheMissRates sweeps the capability cache (64 vs 128) and
// alias cache (256 vs 512) sizes.
func BenchmarkFig7CacheMissRates(b *testing.B) {
	p := workload.ByName("xalancbmk")
	for _, cc := range []int{64, 128} {
		cc := cc
		b.Run(fmt.Sprintf("capcache-%d", cc), func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				cfg := pipeline.DefaultConfig()
				cfg.CapCacheEntries = cc
				res = benchRun(b, p, cfg)
			}
			b.ReportMetric(100*res.CapCache.MissRate(), "cap-miss-%")
		})
	}
	for _, ac := range []int{256, 512} {
		ac := ac
		b.Run(fmt.Sprintf("aliascache-%d", ac), func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				cfg := pipeline.DefaultConfig()
				cfg.AliasCacheEntries = ac
				res = benchRun(b, p, cfg)
			}
			b.ReportMetric(100*res.AliasCache.MissRate(), "alias-miss-%")
		})
	}
}

// BenchmarkFig8Misprediction sweeps the pointer-reload predictor size and
// reports misprediction rate and squash time.
func BenchmarkFig8Misprediction(b *testing.B) {
	p := workload.ByName("perlbench")
	for _, entries := range []int{512, 1024, 2048} {
		entries := entries
		b.Run(fmt.Sprintf("predictor-%d", entries), func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				cfg := pipeline.DefaultConfig()
				cfg.PredictorEntries = entries
				res = benchRun(b, p, cfg)
			}
			b.ReportMetric(100*res.Predictor.MispredictionRate(), "mispredict-%")
			b.ReportMetric(res.SquashPct(), "squash-%")
		})
	}
}

// BenchmarkFig9MemoryOverhead reports storage and bandwidth impact.
func BenchmarkFig9MemoryOverhead(b *testing.B) {
	p := workload.ByName("xalancbmk")
	var base, chex *pipeline.Result
	for i := 0; i < b.N; i++ {
		cfg := pipeline.DefaultConfig()
		cfg.Variant = decode.VariantInsecure
		base = benchRun(b, p, cfg)
		chex = benchRun(b, p, pipeline.DefaultConfig())
	}
	b.ReportMetric(float64(chex.UserRSS+chex.ShadowRSS)/float64(base.UserRSS), "rss-ratio")
	b.ReportMetric(chex.BandwidthMBs()/base.BandwidthMBs(), "bandwidth-ratio")
}

// BenchmarkSecuritySuites runs the full security evaluation (Section
// VII-A) per iteration.
func BenchmarkSecuritySuites(b *testing.B) {
	var correct, total int
	for i := 0; i < b.N; i++ {
		correct, total = 0, 0
		for _, e := range security.All() {
			out := security.Run(e, decode.VariantMicrocodePrediction)
			total++
			if out.Correct() {
				correct++
			}
		}
	}
	if correct != total {
		b.Fatalf("security regression: %d/%d", correct, total)
	}
	b.ReportMetric(float64(correct), "exploits-handled")
}

// --- Ablation benches (design choices called out in DESIGN.md §5). ---

func benchAblation(b *testing.B, mod func(*pipeline.Config)) {
	p := workload.ByName("canneal")
	var on, off *pipeline.Result
	for i := 0; i < b.N; i++ {
		on = benchRun(b, p, pipeline.DefaultConfig())
		cfg := pipeline.DefaultConfig()
		mod(&cfg)
		off = benchRun(b, p, cfg)
	}
	b.ReportMetric(float64(off.Cycles)/float64(on.Cycles), "ablated-vs-default")
}

// BenchmarkAblationShadowLatency removes shadow capability-table latency:
// the cost of capability-cache misses going to memory.
func BenchmarkAblationShadowLatency(b *testing.B) {
	benchAblation(b, func(c *pipeline.Config) { c.IdealShadowLatency = true })
}

// BenchmarkAblationAliasWalks removes shadow alias-table walks: the cost
// of misprediction detection on alias-cache misses.
func BenchmarkAblationAliasWalks(b *testing.B) {
	benchAblation(b, func(c *pipeline.Config) { c.NoAliasWalks = true })
}

// BenchmarkAblationPrefetch disables the streaming prefetcher (a baseline
// machine property the relative results depend on).
func BenchmarkAblationPrefetch(b *testing.B) {
	benchAblation(b, func(c *pipeline.Config) { c.NoPrefetch = true })
}

// BenchmarkAblationWalkerCache removes the dedicated alias-walker cache.
func BenchmarkAblationWalkerCache(b *testing.B) {
	benchAblation(b, func(c *pipeline.Config) { c.ShadowCacheKB = 0 })
}

// BenchmarkAblationContextSensitive compares surgical (no regions
// configured, so zero checks) against always-on injection — the upper
// bound of the context-sensitivity win.
func BenchmarkAblationContextSensitive(b *testing.B) {
	benchAblation(b, func(c *pipeline.Config) { c.Context = pipeline.DefaultConfig().Context; c.Context.All = false })
}

// BenchmarkSimulatorThroughput measures raw simulation speed in guest
// macro-instructions per second (not a paper figure; a harness property).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := workload.ByName("gcc")
	prog, err := p.Build(0.25)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		cfg := pipeline.DefaultConfig()
		cfg.MaxInsts = 200_000
		res, err := pipeline.New(prog, cfg, 1).Run()
		if err != nil {
			b.Fatal(err)
		}
		insts += res.MacroInsts
	}
	b.SetBytes(0)
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "guest-insts/s")
}

// BenchmarkWatchdogComparison reproduces the Section VII-C measurement:
// Watchdog-style conservative instrumentation of every 64-bit load/store
// vs CHEx86's prediction-driven scheme.
func BenchmarkWatchdogComparison(b *testing.B) {
	o := benchOpts()
	o.Benches = []string{"xalancbmk"}
	var rows []experiments.WatchdogRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunWatchdog(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].WatchdogSlowdownPct, "watchdog-slowdown-%")
	b.ReportMetric(rows[0].CHExSlowdownPct, "chex86-slowdown-%")
	b.ReportMetric(rows[0].MemRefRatio, "memref-ratio")
}

// BenchmarkContextSweep measures the context-sensitivity design space
// (§VII-D): overhead as a function of the covered-text fraction.
func BenchmarkContextSweep(b *testing.B) {
	o := benchOpts()
	var rows []experiments.ContextRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunContextSweep("xalancbmk", o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].SlowdownPct, "slowdown-0pct-%")
	b.ReportMetric(rows[len(rows)-1].SlowdownPct, "slowdown-100pct-%")
}

// BenchmarkStructureSweep traces the capability-cache sizing curve the
// 64-entry design point of Table III sits on (§VII-B knee audit).
func BenchmarkStructureSweep(b *testing.B) {
	o := benchOpts()
	var rows []experiments.SweepRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunSweep("xalancbmk", experiments.SweepCapCache, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MissPct, "miss-16ent-%")
	b.ReportMetric(rows[2].MissPct, "miss-64ent-%")
	b.ReportMetric(rows[len(rows)-1].MissPct, "miss-256ent-%")
}
