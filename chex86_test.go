package chex86

import (
	"errors"
	"testing"
)

// TestPublicAPIRoundTrip exercises the package through its public surface
// only: build a program, run it under two variants, and observe both the
// silent baseline and the CHEx86 detection.
func TestPublicAPIRoundTrip(t *testing.T) {
	b := NewProgramBuilder()
	b.MovRI(RDI, 64)
	b.CallAddr(MallocEntry)
	b.MovRR(RBX, RAX)
	b.MovRI(RDX, 1)
	b.Store(RBX, 64, RDX) // one past the end
	b.Hlt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	base := DefaultConfig()
	base.Variant = VariantInsecure
	base.StopOnViolation = true
	if _, err := Run(prog, base, 1); err != nil {
		t.Fatalf("baseline must run silently: %v", err)
	}

	cfg := DefaultConfig()
	cfg.StopOnViolation = true
	_, err = Run(prog, cfg, 1)
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected a *Violation, got %v", err)
	}
	if v.Kind != ViolationOutOfBounds {
		t.Fatalf("expected out-of-bounds, got %v", v.Kind)
	}
}

func TestWorkloadCatalogExposed(t *testing.T) {
	ws := Workloads()
	if len(ws) != 14 {
		t.Fatalf("14 benchmarks expected, got %d", len(ws))
	}
	if WorkloadByName("mcf") == nil || WorkloadByName("nope") != nil {
		t.Fatal("lookup broken")
	}
}

func TestExploitsExposed(t *testing.T) {
	es := Exploits()
	if len(es) < 90 {
		t.Fatalf("expected the full exploit battery, got %d", len(es))
	}
	var uaf *Exploit
	for _, e := range es {
		if e.Name == "heap-use-after-free-read" {
			uaf = e
		}
	}
	if uaf == nil {
		t.Fatal("representative exploit missing")
	}
	out := RunExploit(uaf, VariantMicrocodePrediction)
	if !out.Correct() || out.Violation.Kind != ViolationUseAfterFree {
		t.Fatalf("exploit outcome: %v", out)
	}
}

func TestContextPolicyExposed(t *testing.T) {
	if !Always().Covers(1) {
		t.Fatal("Always() broken")
	}
	p := Only(Region{Lo: 10, Hi: 20})
	if !p.Covers(15) || p.Covers(25) {
		t.Fatal("Only() broken")
	}
}
