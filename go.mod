module chex86

go 1.22
