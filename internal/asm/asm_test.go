package asm

import (
	"testing"
	"testing/quick"

	"chex86/internal/isa"
)

func TestLabelResolution(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Label("target")
	b.AddRI(isa.RAX, 1)
	b.Jmp("target")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := p.MustLookup("target")
	if p.Insts[2].Target != want {
		t.Fatalf("jump target %#x, want %#x", p.Insts[2].Target, want)
	}
	if want != p.TextBase+4 {
		t.Fatalf("label after one instruction should sit at base+4, got %#x", want)
	}
}

func TestForwardAndBackwardBranches(t *testing.T) {
	b := NewBuilder()
	b.Jmp("fwd") // forward reference
	b.Label("back")
	b.Nop()
	b.Label("fwd")
	b.Jcc(isa.CondE, "back") // backward reference
	p := b.MustBuild()
	if p.Insts[0].Target != p.MustLookup("fwd") {
		t.Error("forward reference unresolved")
	}
	if p.Insts[2].Target != p.MustLookup("back") {
		t.Error("backward reference unresolved")
	}
}

func TestBuildErrors(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Error("undefined label must fail the build")
	}

	b = NewBuilder()
	b.Label("x")
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label must fail the build")
	}

	b = NewBuilder()
	b.Mov(isa.MemOp(isa.RAX, 0), isa.MemOp(isa.RBX, 0))
	if _, err := b.Build(); err == nil {
		t.Error("mov mem,mem is unencodable and must fail")
	}

	b = NewBuilder()
	b.Lea(isa.RAX, isa.RegOp(isa.RBX))
	if _, err := b.Build(); err == nil {
		t.Error("lea requires a memory operand")
	}

	b = NewBuilder()
	b.Alu(isa.MOV, isa.RegOp(isa.RAX), isa.RegOp(isa.RBX))
	if _, err := b.Build(); err == nil {
		t.Error("Alu must reject non-ALU opcodes")
	}
}

func TestAddressAssignment(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 100; i++ {
		b.Nop()
	}
	p := b.MustBuild()
	prev := p.TextBase
	for i := range p.Insts {
		in := &p.Insts[i]
		if i > 0 && in.Addr != prev {
			t.Fatalf("instruction %d at %#x, expected contiguous %#x", i, in.Addr, prev)
		}
		prev = in.NextAddr()
		if p.At(in.Addr) != in {
			t.Fatalf("At(%#x) does not resolve to instruction %d", in.Addr, i)
		}
	}
	if p.End() != prev {
		t.Fatalf("End() %#x, want %#x", p.End(), prev)
	}
	if p.At(p.TextBase+1) != nil {
		t.Error("mid-instruction address must not resolve")
	}
}

func TestGlobalsRelocsData(t *testing.T) {
	b := NewBuilderAt(0x1000)
	b.Global("g1", 0x600000, 64)
	b.Global("g0", 0x5ff000, 32)
	b.Reloc(0x600100, "g1")
	b.DataU64(0x600108, 0xdeadbeef)
	b.Nop()
	p := b.MustBuild()
	if len(p.Globals) != 2 || len(p.Relocs) != 1 || len(p.Data) != 1 {
		t.Fatalf("metadata lost: %d globals %d relocs %d data", len(p.Globals), len(p.Relocs), len(p.Data))
	}
	sorted := p.SortedGlobals()
	if sorted[0].Name != "g0" || sorted[1].Name != "g1" {
		t.Error("SortedGlobals must order by address")
	}
	if p.TextBase != 0x1000 {
		t.Error("custom text base ignored")
	}
}

// TestBuilderChains verifies the fluent helpers emit the operand shapes
// the decoder expects.
func TestBuilderChains(t *testing.T) {
	b := NewBuilder()
	b.MovRI(isa.RAX, 7)
	b.MovRR(isa.RBX, isa.RAX)
	b.Load(isa.RCX, isa.RBX, 8)
	b.LoadIdx(isa.RDX, isa.RBX, isa.RCX, 8, 0)
	b.Store(isa.RBX, 0, isa.RAX)
	b.StoreIdx(isa.RBX, isa.RCX, 1, 4, isa.RAX)
	b.StoreImm(isa.RBX, 8, 42)
	b.Push(isa.RAX)
	b.Pop(isa.RBX)
	b.CallReg(isa.RAX)
	b.JmpReg(isa.RBX)
	b.Ret()
	b.Hlt()
	p := b.MustBuild()
	if p.Insts[0].Src.Kind != isa.OpImm || p.Insts[0].Dst.Kind != isa.OpReg {
		t.Error("MovRI operand shape wrong")
	}
	if p.Insts[3].Src.Mem.Index != isa.RCX || p.Insts[3].Src.Mem.Scale != 8 {
		t.Error("LoadIdx addressing mode wrong")
	}
	if p.Insts[6].Src.Kind != isa.OpImm || p.Insts[6].Dst.Kind != isa.OpMem {
		t.Error("StoreImm operand shape wrong")
	}
	if p.Insts[9].Dst.Kind != isa.OpReg {
		t.Error("CallReg must carry the register")
	}
}

// TestAddressesAlwaysMonotonic is a property test: for any program length,
// instruction addresses are strictly increasing and uniformly decodable.
func TestAddressesAlwaysMonotonic(t *testing.T) {
	f := func(n uint8) bool {
		b := NewBuilder()
		for i := 0; i < int(n)+1; i++ {
			b.AddRI(isa.RAX, int64(i))
		}
		p, err := b.Build()
		if err != nil {
			return false
		}
		for i := 1; i < len(p.Insts); i++ {
			if p.Insts[i].Addr <= p.Insts[i-1].Addr {
				return false
			}
			if p.At(p.Insts[i].Addr) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelAtEnd(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Label("end")
	p := b.MustBuild()
	if p.MustLookup("end") != p.End() {
		t.Error("trailing label should resolve to the end of text")
	}
}
