// Package asm provides a small label-resolving assembler used to build
// guest programs for the simulator. Workload generators and the security
// exploit suites construct their guest code through this builder.
//
// The builder produces a Program: a contiguous sequence of isa.Inst values
// laid out at virtual addresses starting at the text base, with direct
// branch targets resolved from symbolic labels.
package asm

import (
	"fmt"
	"sort"

	"chex86/internal/isa"
)

// DefaultTextBase is the load address of program text, mirroring the
// conventional x86-64 small-code-model layout.
const DefaultTextBase = 0x400000

// avgEncLen is the synthetic encoded length assigned to instructions for
// I-cache modeling. Real x86 averages ~3.7 bytes per instruction; we use 4.
const avgEncLen = 4

// Program is an assembled guest program.
type Program struct {
	TextBase uint64
	Insts    []isa.Inst
	Labels   map[string]uint64 // label -> resolved virtual address

	// Globals lists symbol-table entries (global data objects) that the OS
	// loader hands to CHEx86 at program load so the shadow capability table
	// can be initialized with a capability per global (Section IV-C).
	Globals []Global

	// Relocs lists data relocations applied by the loader.
	Relocs []Reloc

	// Data lists initialized data words applied by the loader.
	Data []DataInit

	byAddr map[uint64]int // address -> instruction index
}

// Global is a symbol-table entry for a global data object. ReadOnly marks
// .rodata objects: the loader grants their capabilities no write
// permission, so stray writes are flagged as permission violations.
type Global struct {
	Name     string
	Addr     uint64
	Size     uint64
	ReadOnly bool
}

// DataInit is an initialized 8-byte data word the loader writes at program
// load (the guest image's .data contents).
type DataInit struct {
	Addr uint64
	Val  uint64
}

// Reloc is a data relocation: the loader writes the address of the target
// global into the 8-byte slot at Slot. Relocation entries are the "limited
// source-level symbol information" that lets CHEx86 track global addresses
// materialized through constant pools: the OS seeds the shadow alias table
// for each relocated pointer slot at program load.
type Reloc struct {
	Slot   uint64
	Target string
}

// At returns the instruction at virtual address addr, or nil if addr does
// not map to an instruction boundary. The builder lays text out densely
// at avgEncLen strides, so the common case is pure arithmetic (this sits
// on the emulator's per-instruction fetch path); the address tag check
// keeps other layouts correct via the map fallback.
func (p *Program) At(addr uint64) *isa.Inst {
	if addr >= p.TextBase {
		if i := (addr - p.TextBase) / avgEncLen; i < uint64(len(p.Insts)) {
			if in := &p.Insts[i]; in.Addr == addr {
				return in
			}
		}
	}
	if i, ok := p.byAddr[addr]; ok {
		return &p.Insts[i]
	}
	return nil
}

// Lookup resolves a label to its address.
func (p *Program) Lookup(label string) (uint64, bool) {
	a, ok := p.Labels[label]
	return a, ok
}

// MustLookup resolves a label or panics; for use in tests and generators
// where the label is known to exist.
func (p *Program) MustLookup(label string) uint64 {
	a, ok := p.Labels[label]
	if !ok {
		panic("asm: unknown label " + label)
	}
	return a
}

// End returns the first address past program text.
func (p *Program) End() uint64 {
	if len(p.Insts) == 0 {
		return p.TextBase
	}
	last := &p.Insts[len(p.Insts)-1]
	return last.NextAddr()
}

// SortedGlobals returns the globals sorted by address.
func (p *Program) SortedGlobals() []Global {
	gs := append([]Global(nil), p.Globals...)
	sort.Slice(gs, func(i, j int) bool { return gs[i].Addr < gs[j].Addr })
	return gs
}

// fixup records a pending reference from instruction index to a label.
type fixup struct {
	inst  int
	label string
}

// Builder assembles a Program incrementally.
type Builder struct {
	textBase uint64
	insts    []isa.Inst
	labels   map[string]int // label -> instruction index it precedes
	fixups   []fixup
	immFixes []fixup // MovLabel sites: Src.Imm receives the label address
	globals  []Global
	relocs   []Reloc
	data     []DataInit
	err      error
}

// NewBuilder returns a Builder emitting text at DefaultTextBase.
func NewBuilder() *Builder { return NewBuilderAt(DefaultTextBase) }

// NewBuilderAt returns a Builder emitting text at the given base address.
func NewBuilderAt(base uint64) *Builder {
	return &Builder{textBase: base, labels: make(map[string]int)}
}

// Err returns the first error recorded during building, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("asm: "+format, args...)
	}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.insts)
	return b
}

// Global registers a global data object for the symbol table.
func (b *Builder) Global(name string, addr, size uint64) *Builder {
	b.globals = append(b.globals, Global{Name: name, Addr: addr, Size: size})
	return b
}

// GlobalRO registers a read-only (.rodata) global data object.
func (b *Builder) GlobalRO(name string, addr, size uint64) *Builder {
	b.globals = append(b.globals, Global{Name: name, Addr: addr, Size: size, ReadOnly: true})
	return b
}

// Reloc registers a data relocation: at load time the 8-byte slot at slot
// receives the address of the named global.
func (b *Builder) Reloc(slot uint64, target string) *Builder {
	b.relocs = append(b.relocs, Reloc{Slot: slot, Target: target})
	return b
}

// DataU64 registers an initialized 8-byte data word at addr.
func (b *Builder) DataU64(addr, val uint64) *Builder {
	b.data = append(b.data, DataInit{Addr: addr, Val: val})
	return b
}

// Globals returns the globals registered so far (build-time introspection
// for generators that need symbol addresses before Build).
func (b *Builder) Globals() []Global { return b.globals }

func (b *Builder) emit(in isa.Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(isa.Inst{Op: isa.NOP}) }

// Hlt emits a halt, terminating the current hart.
func (b *Builder) Hlt() *Builder { return b.emit(isa.Inst{Op: isa.HLT}) }

// Mov emits mov dst, src for arbitrary operand combinations.
func (b *Builder) Mov(dst, src isa.Operand) *Builder {
	if dst.Kind == isa.OpMem && src.Kind == isa.OpMem {
		b.fail("mov mem,mem is not encodable")
		return b
	}
	return b.emit(isa.Inst{Op: isa.MOV, Dst: dst, Src: src})
}

// MovRR emits mov dst, src between registers.
func (b *Builder) MovRR(dst, src isa.Reg) *Builder {
	return b.Mov(isa.RegOp(dst), isa.RegOp(src))
}

// MovRI emits mov dst, $imm.
func (b *Builder) MovRI(dst isa.Reg, imm int64) *Builder {
	return b.Mov(isa.RegOp(dst), isa.ImmOp(imm))
}

// MovLabel emits mov dst, $label: the immediate is patched to the
// label's resolved address at Build time. This is how generated guests
// materialize function pointers for indirect calls and jump tables.
func (b *Builder) MovLabel(dst isa.Reg, label string) *Builder {
	b.immFixes = append(b.immFixes, fixup{len(b.insts), label})
	return b.emit(isa.Inst{Op: isa.MOV, Dst: isa.RegOp(dst), Src: isa.ImmOp(0)})
}

// Load emits mov dst, [base+disp].
func (b *Builder) Load(dst, base isa.Reg, disp int64) *Builder {
	return b.Mov(isa.RegOp(dst), isa.MemOp(base, disp))
}

// LoadIdx emits mov dst, [base+index*scale+disp].
func (b *Builder) LoadIdx(dst, base, index isa.Reg, scale uint8, disp int64) *Builder {
	return b.Mov(isa.RegOp(dst), isa.MemOpIdx(base, index, scale, disp))
}

// Store emits mov [base+disp], src.
func (b *Builder) Store(base isa.Reg, disp int64, src isa.Reg) *Builder {
	return b.Mov(isa.MemOp(base, disp), isa.RegOp(src))
}

// StoreIdx emits mov [base+index*scale+disp], src.
func (b *Builder) StoreIdx(base, index isa.Reg, scale uint8, disp int64, src isa.Reg) *Builder {
	return b.Mov(isa.MemOpIdx(base, index, scale, disp), isa.RegOp(src))
}

// StoreImm emits mov [base+disp], $imm.
func (b *Builder) StoreImm(base isa.Reg, disp int64, imm int64) *Builder {
	return b.Mov(isa.MemOp(base, disp), isa.ImmOp(imm))
}

// LoadB emits movb dst, [base+disp] (zero-extending byte load).
func (b *Builder) LoadB(dst, base isa.Reg, disp int64) *Builder {
	return b.emit(isa.Inst{Op: isa.MOVB, Dst: isa.RegOp(dst), Src: isa.MemOp(base, disp)})
}

// StoreB emits movb [base+disp], src (low-byte store).
func (b *Builder) StoreB(base isa.Reg, disp int64, src isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.MOVB, Dst: isa.MemOp(base, disp), Src: isa.RegOp(src)})
}

// Lea emits lea dst, [base+index*scale+disp].
func (b *Builder) Lea(dst isa.Reg, mem isa.Operand) *Builder {
	if mem.Kind != isa.OpMem {
		b.fail("lea requires a memory operand")
		return b
	}
	return b.emit(isa.Inst{Op: isa.LEA, Dst: isa.RegOp(dst), Src: mem})
}

// Alu emits a two-operand ALU macro-op (op dst, src).
func (b *Builder) Alu(op isa.MacroOpcode, dst, src isa.Operand) *Builder {
	switch op {
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.IMUL, isa.SHL, isa.SHR,
		isa.CMP, isa.TEST, isa.FADD, isa.FMUL, isa.FDIV:
	default:
		b.fail("not an ALU macro-op: %s", op)
		return b
	}
	if dst.Kind == isa.OpMem && src.Kind == isa.OpMem {
		b.fail("%s mem,mem is not encodable", op)
		return b
	}
	return b.emit(isa.Inst{Op: op, Dst: dst, Src: src})
}

// AddRI emits add dst, $imm.
func (b *Builder) AddRI(dst isa.Reg, imm int64) *Builder {
	return b.Alu(isa.ADD, isa.RegOp(dst), isa.ImmOp(imm))
}

// AddRR emits add dst, src.
func (b *Builder) AddRR(dst, src isa.Reg) *Builder {
	return b.Alu(isa.ADD, isa.RegOp(dst), isa.RegOp(src))
}

// SubRI emits sub dst, $imm.
func (b *Builder) SubRI(dst isa.Reg, imm int64) *Builder {
	return b.Alu(isa.SUB, isa.RegOp(dst), isa.ImmOp(imm))
}

// SubRR emits sub dst, src.
func (b *Builder) SubRR(dst, src isa.Reg) *Builder {
	return b.Alu(isa.SUB, isa.RegOp(dst), isa.RegOp(src))
}

// CmpRI emits cmp dst, $imm.
func (b *Builder) CmpRI(dst isa.Reg, imm int64) *Builder {
	return b.Alu(isa.CMP, isa.RegOp(dst), isa.ImmOp(imm))
}

// CmpRR emits cmp dst, src.
func (b *Builder) CmpRR(dst, src isa.Reg) *Builder {
	return b.Alu(isa.CMP, isa.RegOp(dst), isa.RegOp(src))
}

// TestRR emits test dst, src.
func (b *Builder) TestRR(dst, src isa.Reg) *Builder {
	return b.Alu(isa.TEST, isa.RegOp(dst), isa.RegOp(src))
}

// Inc emits inc reg.
func (b *Builder) Inc(r isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.INC, Dst: isa.RegOp(r)})
}

// Dec emits dec reg.
func (b *Builder) Dec(r isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.DEC, Dst: isa.RegOp(r)})
}

// Neg emits neg reg.
func (b *Builder) Neg(r isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.NEG, Dst: isa.RegOp(r)})
}

// Not emits not reg.
func (b *Builder) Not(r isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.NOT, Dst: isa.RegOp(r)})
}

// Xchg emits xchg dst, src between two registers.
func (b *Builder) Xchg(dst, src isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.XCHG, Dst: isa.RegOp(dst), Src: isa.RegOp(src)})
}

// XchgMem emits xchg [base+disp], reg (the memory-register swap form).
func (b *Builder) XchgMem(base isa.Reg, disp int64, r isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.XCHG, Dst: isa.MemOp(base, disp), Src: isa.RegOp(r)})
}

// Push emits push reg.
func (b *Builder) Push(r isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.PUSH, Dst: isa.RegOp(r)})
}

// Pop emits pop reg.
func (b *Builder) Pop(r isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.POP, Dst: isa.RegOp(r)})
}

// Call emits a direct call to a label.
func (b *Builder) Call(label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	return b.emit(isa.Inst{Op: isa.CALL})
}

// CallAddr emits a direct call to an absolute address (used for routines,
// such as the heap allocator entry points, that live outside this text).
func (b *Builder) CallAddr(addr uint64) *Builder {
	return b.emit(isa.Inst{Op: isa.CALL, Target: addr})
}

// CallReg emits an indirect call through a register.
func (b *Builder) CallReg(r isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.CALL, Dst: isa.RegOp(r)})
}

// Ret emits a return.
func (b *Builder) Ret() *Builder { return b.emit(isa.Inst{Op: isa.RET}) }

// Jmp emits a direct jump to a label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	return b.emit(isa.Inst{Op: isa.JMP})
}

// JmpReg emits an indirect jump through a register.
func (b *Builder) JmpReg(r isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.JMP, Dst: isa.RegOp(r)})
}

// Jcc emits a conditional branch to a label.
func (b *Builder) Jcc(c isa.Cond, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	return b.emit(isa.Inst{Op: isa.JCC, Cond: c})
}

// Build resolves labels and returns the assembled program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := &Program{
		TextBase: b.textBase,
		Insts:    b.insts,
		Labels:   make(map[string]uint64, len(b.labels)),
		Globals:  b.globals,
		Relocs:   b.relocs,
		Data:     b.data,
		byAddr:   make(map[uint64]int, len(b.insts)),
	}
	addr := b.textBase
	for i := range p.Insts {
		p.Insts[i].Addr = addr
		p.Insts[i].EncLen = avgEncLen
		p.byAddr[addr] = i
		addr += avgEncLen
	}
	for name, idx := range b.labels {
		if idx >= len(p.Insts) {
			p.Labels[name] = addr // label at end of text
		} else {
			p.Labels[name] = p.Insts[idx].Addr
		}
	}
	for _, f := range b.fixups {
		target, ok := p.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		p.Insts[f.inst].Target = target
	}
	for _, f := range b.immFixes {
		target, ok := p.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		p.Insts[f.inst].Src.Imm = int64(target)
	}
	return p, nil
}

// Reindex installs a new address→instruction index into p (used by
// program-rewriting passes such as the binary translator after they have
// re-laid-out the instruction stream).
func Reindex(p *Program, byAddr map[uint64]int) error {
	if len(byAddr) != len(p.Insts) {
		return fmt.Errorf("asm: index covers %d of %d instructions", len(byAddr), len(p.Insts))
	}
	p.byAddr = byAddr
	return nil
}

// MustBuild builds the program or panics; for generators with static code.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
