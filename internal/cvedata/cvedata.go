// Package cvedata re-creates the dataset behind Figure 1: the root causes
// of CVEs by patch year since 2006, as reported in the Microsoft and
// Google vulnerability-landscape studies the paper cites ([30], [47]).
// The paper itself re-creates the figure from those studies; the values
// here are the same re-creation (approximate percentage shares per year).
// The figure's headline: memory safety violations consistently account
// for about 70% of patched vulnerabilities.
package cvedata

import (
	"fmt"
	"strings"
)

// Category is a CVE root-cause class from Figure 1.
type Category uint8

const (
	StackCorruption Category = iota
	HeapCorruption
	UseAfterFree
	HeapOOBRead
	UninitializedUse
	TypeConfusion
	Other // XSS/zone elevation, DLL planting, canonicalization/symlink issues
	NumCategories
)

var categoryNames = [NumCategories]string{
	"Stack Corruption",
	"Heap Corruption",
	"Use After Free",
	"Heap OOB Read",
	"Uninitialized Use",
	"Type Confusion",
	"Other",
}

// String names the category as in the figure legend.
func (c Category) String() string {
	if c < NumCategories {
		return categoryNames[c]
	}
	return "category?"
}

// MemorySafety reports whether the category is a memory-safety violation.
func (c Category) MemorySafety() bool { return c != Other }

// YearShare is one patch year's root-cause percentage breakdown.
type YearShare struct {
	Year   int
	Shares [NumCategories]float64 // percentages summing to ~100
}

// MemorySafetyShare returns the memory-safety percentage for the year.
func (y *YearShare) MemorySafetyShare() float64 {
	var s float64
	for c := Category(0); c < NumCategories; c++ {
		if c.MemorySafety() {
			s += y.Shares[c]
		}
	}
	return s
}

// Data returns the 2006-2018 root-cause shares (percent).
func Data() []YearShare {
	mk := func(year int, stack, heap, uaf, oob, uninit, typec, other float64) YearShare {
		return YearShare{Year: year, Shares: [NumCategories]float64{stack, heap, uaf, oob, uninit, typec, other}}
	}
	return []YearShare{
		mk(2006, 23, 12, 6, 5, 2, 2, 50),
		mk(2007, 21, 14, 7, 6, 3, 3, 46),
		mk(2008, 20, 15, 8, 7, 4, 3, 43),
		mk(2009, 18, 16, 10, 8, 5, 4, 39),
		mk(2010, 16, 17, 13, 9, 6, 4, 35),
		mk(2011, 14, 17, 16, 10, 7, 5, 31),
		mk(2012, 12, 17, 19, 11, 8, 5, 28),
		mk(2013, 10, 17, 22, 12, 8, 6, 25),
		mk(2014, 9, 16, 24, 13, 9, 6, 23),
		mk(2015, 8, 16, 23, 14, 10, 7, 22),
		mk(2016, 7, 15, 22, 15, 11, 8, 22),
		mk(2017, 6, 15, 21, 16, 12, 9, 21),
		mk(2018, 5, 14, 20, 17, 13, 10, 21),
	}
}

// Format renders the dataset as a Figure 1-style table with the
// memory-safety share per year.
func Format() string {
	var b strings.Builder
	b.WriteString("Figure 1: Root Cause of CVEs by Patch Year (re-created from the cited studies)\n")
	fmt.Fprintf(&b, "%-6s", "Year")
	for c := Category(0); c < NumCategories; c++ {
		fmt.Fprintf(&b, "%-19s", c)
	}
	fmt.Fprintf(&b, "%s\n", "MemSafety")
	for _, y := range Data() {
		fmt.Fprintf(&b, "%-6d", y.Year)
		for c := Category(0); c < NumCategories; c++ {
			fmt.Fprintf(&b, "%-19s", fmt.Sprintf("%.0f%%", y.Shares[c]))
		}
		fmt.Fprintf(&b, "%.0f%%\n", y.MemorySafetyShare())
	}
	return b.String()
}
