package cvedata

import (
	"strings"
	"testing"
)

func TestDataCoversTheStudyYears(t *testing.T) {
	d := Data()
	if d[0].Year != 2006 || d[len(d)-1].Year != 2018 {
		t.Fatalf("Figure 1 spans 2006-2018, got %d-%d", d[0].Year, d[len(d)-1].Year)
	}
	for i := 1; i < len(d); i++ {
		if d[i].Year != d[i-1].Year+1 {
			t.Fatal("years must be consecutive")
		}
	}
}

func TestSharesSumToOneHundred(t *testing.T) {
	for _, y := range Data() {
		var sum float64
		for c := Category(0); c < NumCategories; c++ {
			if y.Shares[c] < 0 {
				t.Fatalf("%d: negative share for %v", y.Year, c)
			}
			sum += y.Shares[c]
		}
		if sum < 99 || sum > 101 {
			t.Errorf("%d: shares sum to %.0f%%", y.Year, sum)
		}
	}
}

// TestMemorySafetyShare reproduces the figure's headline: memory safety
// violations consistently account for about 70% of patched CVEs in the
// later years of the study.
func TestMemorySafetyShare(t *testing.T) {
	for _, y := range Data() {
		if y.Year >= 2014 {
			if s := y.MemorySafetyShare(); s < 65 || s > 85 {
				t.Errorf("%d: memory-safety share %.0f%%, expected ~70%%", y.Year, s)
			}
		}
	}
}

func TestCategoryClassification(t *testing.T) {
	if Other.MemorySafety() {
		t.Error("the Other bucket is not memory safety")
	}
	for c := StackCorruption; c < Other; c++ {
		if !c.MemorySafety() {
			t.Errorf("%v is a memory-safety class", c)
		}
	}
}

func TestFormat(t *testing.T) {
	s := Format()
	for _, frag := range []string{"Use After Free", "2018", "MemSafety"} {
		if !strings.Contains(s, frag) {
			t.Errorf("formatted table missing %q", frag)
		}
	}
}
