// Package cache provides the cache models used by the simulator: a
// line-granular set-associative cache with LRU replacement, write-back and
// write-allocate policies for the memory hierarchy (L1I/L1D/L2/LLC), and a
// key-granular cache used to model the CHEx86 in-processor capability cache
// and spilled-pointer alias cache (with its victim cache).
package cache

import (
	"fmt"
	"math/bits"

	"chex86/internal/mem"
)

// Stats aggregates cache behavior.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Invals     uint64
}

// Accesses returns total lookups.
func (s *Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns the fraction of lookups that missed (0 if no accesses).
func (s *Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses) / float64(a)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	pf    bool // filled by the prefetcher and not yet demand-hit
	lru   uint64
}

// LineCache is a set-associative, write-back, write-allocate cache over
// memory lines.
type LineCache struct {
	Name     string
	LineSize uint64
	Latency  uint64 // hit latency in cycles

	sets  int
	ways  int
	lines []line // flat set-major array: set s occupies lines[s*ways : (s+1)*ways]
	clock uint64
	hitPF bool // last Access hit a prefetched line
	Stats Stats

	// lineShift/setMask are the fast-path index parameters, valid when
	// LineSize and sets are powers of two (every stock configuration):
	// index() is then a shift and a mask instead of two hardware
	// divisions — it runs several times per simulated memory access.
	lineShift int // log2(LineSize), or -1 when not a power of two
	setMask   int // sets-1, or -1 when not a power of two
}

// NewLineCache constructs a cache of sizeBytes capacity with the given
// associativity, line size and hit latency.
func NewLineCache(name string, sizeBytes, ways int, lineSize, latency uint64) *LineCache {
	nlines := sizeBytes / int(lineSize)
	if nlines%ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", name, nlines, ways))
	}
	sets := nlines / ways
	c := &LineCache{Name: name, LineSize: lineSize, Latency: latency, sets: sets, ways: ways}
	c.lines = make([]line, sets*ways)
	c.lineShift, c.setMask = -1, -1
	if lineSize > 0 && lineSize&(lineSize-1) == 0 {
		c.lineShift = bits.TrailingZeros64(lineSize)
	}
	if sets > 0 && sets&(sets-1) == 0 {
		c.setMask = sets - 1
	}
	return c
}

func (c *LineCache) index(addr uint64) (set int, tag uint64) {
	var lineAddr uint64
	if c.lineShift >= 0 {
		lineAddr = addr >> uint(c.lineShift)
	} else {
		lineAddr = addr / c.LineSize
	}
	if c.setMask >= 0 {
		return int(lineAddr) & c.setMask, lineAddr
	}
	return int(lineAddr % uint64(c.sets)), lineAddr
}

// Access looks up addr; write marks the line dirty on hit or fill.
// It returns whether the access hit and, if a dirty line was evicted to
// make room, the evicted line's address and true.
func (c *LineCache) Access(addr uint64, write bool) (hit bool, wbAddr uint64, wb bool) {
	set, tag := c.index(addr)
	c.clock++
	ws := c.lines[set*c.ways : set*c.ways+c.ways]
	for w := range ws {
		if ws[w].valid && ws[w].tag == tag {
			ws[w].lru = c.clock
			c.hitPF = ws[w].pf
			ws[w].pf = false
			if write {
				ws[w].dirty = true
			}
			c.Stats.Hits++
			return true, 0, false
		}
	}
	c.hitPF = false
	c.Stats.Misses++
	// Fill: choose invalid way or LRU victim.
	victim := -1
	for w := range ws {
		if !ws[w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = 0
		for w := 1; w < len(ws); w++ {
			if ws[w].lru < ws[victim].lru {
				victim = w
			}
		}
		c.Stats.Evictions++
		if ws[victim].dirty {
			c.Stats.Writebacks++
			wb = true
			wbAddr = ws[victim].tag * c.LineSize
		}
	}
	ws[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return false, wbAddr, wb
}

// HitPrefetched reports whether the most recent Access hit a line that the
// prefetcher brought in (used to sustain streams).
func (c *LineCache) HitPrefetched() bool { return c.hitPF }

// MarkPrefetched flags the resident line containing addr as
// prefetcher-filled.
func (c *LineCache) MarkPrefetched(addr uint64) {
	set, tag := c.index(addr)
	ws := c.lines[set*c.ways : set*c.ways+c.ways]
	for w := range ws {
		if ws[w].valid && ws[w].tag == tag {
			ws[w].pf = true
		}
	}
}

// Contains reports whether addr is resident without updating LRU or stats.
func (c *LineCache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.lines[set*c.ways : set*c.ways+c.ways] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr if resident.
func (c *LineCache) Invalidate(addr uint64) {
	set, tag := c.index(addr)
	ws := c.lines[set*c.ways : set*c.ways+c.ways]
	for w := range ws {
		if ws[w].valid && ws[w].tag == tag {
			ws[w].valid = false
			c.Stats.Invals++
		}
	}
}

// Hierarchy composes the per-core memory hierarchy. L2 and LLC may be
// shared between cores in multicore simulations (accesses are not
// concurrency-safe; the multicore pipeline steps cores in lockstep).
type Hierarchy struct {
	L1I *LineCache
	L1D *LineCache
	L2  *LineCache
	LLC *LineCache
	Ram *mem.DRAM

	// Lane is this hierarchy's DRAM requestor lane (core id).
	Lane int

	// Shadow is a small dedicated cache for privileged shadow-structure
	// lines (capability table, alias table) — the "shadow caches" the
	// paper lists among its microarchitectural optimizations. Without it,
	// streaming workload data keeps evicting the hot shadow lines from
	// the L2. Nil disables it.
	Shadow *LineCache

	// NoPrefetch disables the next-line prefetcher (modeled after the L1
	// streamer: a demand miss also pulls the following line, charging
	// traffic but not demand latency).
	NoPrefetch bool

	Prefetches uint64
}

// AccessData performs a data access and returns its total latency in
// cycles, charging DRAM traffic for LLC misses and dirty writebacks. A
// streaming prefetcher (modeled after the L1 streamer) starts a stream on
// a demand miss and sustains it while demand accesses keep landing on
// prefetched lines; fills run off the demand path.
func (h *Hierarchy) AccessData(addr uint64, write bool) uint64 {
	return h.AccessDataAt(addr, write, 0)
}

// AccessDataAt is AccessData with the requesting cycle, for DRAM
// channel-occupancy modeling.
func (h *Hierarchy) AccessDataAt(addr uint64, write bool, now uint64) uint64 {
	lat := h.access(h.L1D, addr, write, now)
	if h.NoPrefetch {
		return lat
	}
	ls := h.L1D.LineSize
	if lat > h.L1D.Latency {
		h.pfFill(h.L1D, addr+ls, now)
		h.pfFill(h.L1D, addr+2*ls, now)
	} else if h.L1D.HitPrefetched() {
		h.pfFill(h.L1D, addr+2*ls, now)
		h.pfFill(h.L1D, addr+3*ls, now)
	}
	return lat
}

// pfFill brings a line into the cache on behalf of the prefetcher.
func (h *Hierarchy) pfFill(c *LineCache, addr uint64, now uint64) {
	if c.Contains(addr) {
		return
	}
	h.Prefetches++
	h.access(c, addr, false, now)
	c.MarkPrefetched(addr)
}

// AccessInst performs an instruction fetch access.
func (h *Hierarchy) AccessInst(addr uint64) uint64 {
	return h.AccessInstAt(addr, 0)
}

// AccessInstAt is AccessInst with the requesting cycle.
func (h *Hierarchy) AccessInstAt(addr uint64, now uint64) uint64 {
	lat := h.access(h.L1I, addr, false, now)
	if h.NoPrefetch {
		return lat
	}
	ls := h.L1I.LineSize
	if lat > h.L1I.Latency {
		h.pfFill(h.L1I, addr+ls, now)
		h.pfFill(h.L1I, addr+2*ls, now)
	} else if h.L1I.HitPrefetched() {
		h.pfFill(h.L1I, addr+2*ls, now)
	}
	return lat
}

// AccessShadow performs a privileged capability-table access (see
// AccessShadowAt).
func (h *Hierarchy) AccessShadow(addr uint64, write bool) uint64 {
	return h.AccessShadowAt(addr, write, false, 0)
}

// AccessShadowAt is AccessShadow with the requesting cycle. Alias-table
// accesses are served by the dedicated walker cache when configured (like
// a page-walk cache); capability-table accesses take the regular L2→LLC
// path. Either way the DRAM traffic rides the sideband: shadow volume is
// a few percent of demand and its requests come from dedicated engines,
// so it does not occupy a demand lane.
func (h *Hierarchy) AccessShadowAt(addr uint64, write bool, isAlias bool, now uint64) uint64 {
	lat := uint64(2) // shadow access port
	if h.Shadow != nil && isAlias {
		hit, _, _ := h.Shadow.Access(addr, write)
		lat += h.Shadow.Latency
		if hit {
			return lat
		}
		lat += h.LLC.Latency
		llcHit, _, llcWb := h.LLC.Access(addr, write)
		if llcWb {
			h.Ram.AccessSideband(h.LLC.LineSize, true)
		}
		if !llcHit {
			lat += h.Ram.AccessSideband(h.LLC.LineSize, false)
		}
		return lat
	}
	hit, wbAddr, wb := h.L2.Access(addr, write)
	if wb {
		h.wbBelow(h.L2, wbAddr, now)
	}
	lat += h.L2.Latency
	if hit {
		return lat
	}
	lat += h.LLC.Latency
	llcHit, _, llcWb := h.LLC.Access(addr, write)
	if llcWb {
		h.Ram.AccessSideband(h.LLC.LineSize, true)
	}
	if !llcHit {
		lat += h.Ram.AccessSideband(h.LLC.LineSize, false)
	}
	return lat
}

func (h *Hierarchy) access(l1 *LineCache, addr uint64, write bool, now uint64) uint64 {
	lat := l1.Latency
	hit, wbAddr, wb := l1.Access(addr, write)
	if wb {
		h.wbBelow(l1, wbAddr, now)
	}
	if hit {
		return lat
	}
	lat += h.L2.Latency
	hit, wbAddr, wb = h.L2.Access(addr, false)
	if wb {
		h.wbBelow(h.L2, wbAddr, now)
	}
	if hit {
		return lat
	}
	return lat + h.llcAndBelow(addr, false, now)
}

func (h *Hierarchy) llcAndBelow(addr uint64, write bool, now uint64) uint64 {
	lat := h.LLC.Latency
	hit, wbAddr, wb := h.LLC.Access(addr, write)
	if wb {
		h.Ram.AccessLane(h.LLC.LineSize, true, now, h.Lane)
	}
	_ = wbAddr
	if hit {
		return lat
	}
	return lat + h.Ram.AccessLane(h.LLC.LineSize, false, now, h.Lane)
}

// wbBelow propagates a dirty writeback into the next level down.
func (h *Hierarchy) wbBelow(from *LineCache, addr uint64, now uint64) {
	switch from {
	case h.L1I, h.L1D:
		_, wbAddr, wb := h.L2.Access(addr, true)
		if wb {
			h.wbBelow(h.L2, wbAddr, now)
		}
	case h.L2:
		_, _, wb := h.LLC.Access(addr, true)
		if wb {
			h.Ram.AccessLane(h.LLC.LineSize, true, now, h.Lane)
		}
	default:
		h.Ram.AccessLane(h.LLC.LineSize, true, now, h.Lane)
	}
}

// KeyCache is a set-associative cache over opaque 64-bit keys, used to model
// the in-processor capability cache (keyed by PID) and the alias cache
// (keyed by spilled-pointer address). It models hit/miss timing and
// invalidation only; the authoritative data lives in the shadow tables.
// keyEntry is one KeyCache way: key, recency, and validity packed
// together so a set probe touches one contiguous run instead of three
// parallel arrays.
type keyEntry struct {
	key   uint64
	lru   uint64
	valid bool
}

type KeyCache struct {
	Name string

	sets    int
	ways    int
	ents    []keyEntry // flat set-major: set s is ents[s*ways : (s+1)*ways]
	setMask int        // sets-1 when sets is a power of two, else -1
	clock   uint64
	victim  *victimCache
	Stats   Stats
}

// NewKeyCache constructs a key cache with entries/ways geometry and an
// optional fully-associative victim cache of victimEntries (0 disables it).
func NewKeyCache(name string, entries, ways, victimEntries int) *KeyCache {
	if entries%ways != 0 {
		panic(fmt.Sprintf("cache %s: %d entries not divisible by %d ways", name, entries, ways))
	}
	sets := entries / ways
	c := &KeyCache{Name: name, sets: sets, ways: ways}
	c.ents = make([]keyEntry, sets*ways)
	c.setMask = -1
	if sets > 0 && sets&(sets-1) == 0 {
		c.setMask = sets - 1
	}
	if victimEntries > 0 {
		c.victim = newVictimCache(victimEntries)
	}
	return c
}

func (c *KeyCache) set(key uint64) int {
	// Mix the key so sequentially allocated PIDs/addresses spread across sets.
	h := key * 0x9E3779B97F4A7C15
	if c.setMask >= 0 {
		return int(h) & c.setMask
	}
	return int(h % uint64(c.sets))
}

// Access looks up key, filling on miss (evicting into the victim cache when
// one is configured). It reports whether the lookup hit in either the main
// array or the victim cache.
func (c *KeyCache) Access(key uint64) bool {
	c.clock++
	set := c.set(key)
	ws := c.ents[set*c.ways : set*c.ways+c.ways]
	for w := range ws {
		if ws[w].valid && ws[w].key == key {
			ws[w].lru = c.clock
			c.Stats.Hits++
			return true
		}
	}
	if c.victim != nil && c.victim.remove(key) {
		// Victim hit: swap back into the main array.
		c.Stats.Hits++
		c.fill(set, key)
		return true
	}
	c.Stats.Misses++
	c.fill(set, key)
	return false
}

// Probe reports residency without updating state or stats.
func (c *KeyCache) Probe(key uint64) bool {
	set := c.set(key)
	ws := c.ents[set*c.ways : set*c.ways+c.ways]
	for w := range ws {
		if ws[w].valid && ws[w].key == key {
			return true
		}
	}
	return c.victim != nil && c.victim.contains(key)
}

func (c *KeyCache) fill(set int, key uint64) {
	ws := c.ents[set*c.ways : set*c.ways+c.ways]
	victim := -1
	for w := range ws {
		if !ws[w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = 0
		for w := 1; w < len(ws); w++ {
			if ws[w].lru < ws[victim].lru {
				victim = w
			}
		}
		c.Stats.Evictions++
		if c.victim != nil {
			c.victim.insert(ws[victim].key)
		}
	}
	ws[victim] = keyEntry{key: key, valid: true, lru: c.clock}
}

// ValidCount returns the number of live entries in the main array (victim
// cache excluded).
func (c *KeyCache) ValidCount() int {
	n := 0
	for i := range c.ents {
		if c.ents[i].valid {
			n++
		}
	}
	return n
}

// DropNth drops the n-th live entry (set-major order, n taken modulo the
// live count) without touching statistics-relevant state beyond an
// invalidation — the fault-injection hook modeling a spontaneous line
// loss in the capability or alias cache. Because the authoritative data
// lives in the shadow tables, a drop is performance-only: the next access
// re-misses and refills. It returns the dropped key and whether any live
// entry existed.
func (c *KeyCache) DropNth(n int) (uint64, bool) {
	total := c.ValidCount()
	if total == 0 {
		return 0, false
	}
	n %= total
	for i := range c.ents {
		if !c.ents[i].valid {
			continue
		}
		if n == 0 {
			c.ents[i].valid = false
			c.Stats.Invals++
			return c.ents[i].key, true
		}
		n--
	}
	return 0, false
}

// Invalidate removes key from the cache and victim cache if present,
// modeling the cross-core invalidation requests sent on capability frees
// and alias updates (Sections IV-C, V-C).
func (c *KeyCache) Invalidate(key uint64) {
	set := c.set(key)
	ws := c.ents[set*c.ways : set*c.ways+c.ways]
	for w := range ws {
		if ws[w].valid && ws[w].key == key {
			ws[w].valid = false
			c.Stats.Invals++
		}
	}
	if c.victim != nil && c.victim.remove(key) {
		c.Stats.Invals++
	}
}

// Flush invalidates every entry (a context switch: the cache holds
// another process's metadata) while preserving accumulated statistics.
func (c *KeyCache) Flush() {
	for i := range c.ents {
		c.ents[i].valid = false
	}
	if c.victim != nil {
		for i := range c.victim.used {
			c.victim.used[i] = false
		}
	}
}

// victimCache is a small fully-associative FIFO victim buffer.
type victimCache struct {
	keys []uint64
	used []bool
	next int
}

func newVictimCache(entries int) *victimCache {
	return &victimCache{keys: make([]uint64, entries), used: make([]bool, entries)}
}

func (v *victimCache) insert(key uint64) {
	v.keys[v.next] = key
	v.used[v.next] = true
	v.next = (v.next + 1) % len(v.keys)
}

func (v *victimCache) contains(key uint64) bool {
	for i, k := range v.keys {
		if v.used[i] && k == key {
			return true
		}
	}
	return false
}

func (v *victimCache) remove(key uint64) bool {
	for i, k := range v.keys {
		if v.used[i] && k == key {
			v.used[i] = false
			return true
		}
	}
	return false
}
