package cache

import (
	"testing"
	"testing/quick"

	"chex86/internal/mem"
)

func TestLineCacheHitMiss(t *testing.T) {
	c := NewLineCache("t", 1024, 2, 64, 4) // 16 lines, 8 sets, 2 ways
	if hit, _, _ := c.Access(0, false); hit {
		t.Fatal("cold cache cannot hit")
	}
	if hit, _, _ := c.Access(0, false); !hit {
		t.Fatal("second access must hit")
	}
	if hit, _, _ := c.Access(32, false); !hit {
		t.Fatal("same-line access must hit")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestLineCacheLRUAndWriteback(t *testing.T) {
	c := NewLineCache("t", 2*64, 2, 64, 1) // one set, two ways
	c.Access(0, true)                      // dirty
	c.Access(1<<12, false)
	c.Access(0, false) // refresh line 0's LRU
	// Fill a third line: evicts the LRU (the clean one at 1<<12).
	if _, _, wb := c.Access(2<<12, false); wb {
		t.Fatal("clean eviction must not write back")
	}
	if !c.Contains(0) {
		t.Fatal("recently-used dirty line evicted prematurely")
	}
	// Now evict the dirty line.
	hit, wbAddr, wb := c.Access(3<<12, false)
	if hit {
		t.Fatal("unexpected hit")
	}
	if !wb || wbAddr != 0 {
		t.Fatalf("dirty eviction must report writeback of line 0 (got %v %#x)", wb, wbAddr)
	}
}

func TestLineCacheInvalidate(t *testing.T) {
	c := NewLineCache("t", 1024, 2, 64, 1)
	c.Access(128, true)
	c.Invalidate(128)
	if c.Contains(128) {
		t.Fatal("invalidated line still resident")
	}
}

func TestKeyCacheLRUVictim(t *testing.T) {
	c := NewKeyCache("t", 2, 2, 1) // one set of 2 + 1 victim entry
	c.Access(10)
	c.Access(20)
	c.Access(30) // evicts key 10 into the victim cache
	if !c.Probe(10) {
		t.Fatal("evicted key must be found in the victim cache")
	}
	if !c.Access(10) {
		t.Fatal("victim hit must count as a hit")
	}
	c.Invalidate(20)
	if c.Probe(20) {
		t.Fatal("invalidated key still present")
	}
}

func TestKeyCacheMissRate(t *testing.T) {
	c := NewKeyCache("t", 64, 2, 0)
	for i := 0; i < 1000; i++ {
		c.Access(uint64(i % 8)) // working set of 8 in a 64-entry cache
	}
	if r := c.Stats.MissRate(); r > 0.01 {
		t.Fatalf("tiny working set should hit ~always, miss rate %f", r)
	}
}

// TestLineCacheAlwaysFindsAfterFill is a property test: any address is
// resident immediately after being accessed.
func TestLineCacheAlwaysFindsAfterFill(t *testing.T) {
	c := NewLineCache("t", 32*1024, 8, 64, 4)
	f := func(addr uint64) bool {
		addr %= 1 << 40
		c.Access(addr, false)
		return c.Contains(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newHierarchy() *Hierarchy {
	return &Hierarchy{
		L1I: NewLineCache("l1i", 32*1024, 8, 64, 4),
		L1D: NewLineCache("l1d", 32*1024, 8, 64, 4),
		L2:  NewLineCache("l2", 256*1024, 8, 64, 12),
		LLC: NewLineCache("llc", 8*1024*1024, 16, 64, 40),
		Ram: mem.NewDRAM(200),
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := newHierarchy()
	cold := h.AccessData(0x10000, false)
	if cold != 4+12+40+200 {
		t.Fatalf("cold access should traverse all levels: got %d", cold)
	}
	warm := h.AccessData(0x10000, false)
	if warm != 4 {
		t.Fatalf("L1 hit should cost the L1 latency: got %d", warm)
	}
	if h.Ram.BytesRead == 0 {
		t.Fatal("cold miss must charge DRAM traffic")
	}
}

func TestHierarchyStreamPrefetch(t *testing.T) {
	h := newHierarchy()
	misses := 0
	for i := uint64(0); i < 64; i++ { // stream 64 lines
		if lat := h.AccessData(0x100000+i*64, false); lat > h.L1D.Latency {
			misses++
		}
	}
	// The streamer should cover the stream after the first few lines.
	if misses > 4 {
		t.Fatalf("streaming should be covered by the prefetcher; %d demand misses", misses)
	}
	if h.Prefetches == 0 {
		t.Fatal("prefetcher never fired")
	}

	h2 := newHierarchy()
	h2.NoPrefetch = true
	misses = 0
	for i := uint64(0); i < 64; i++ {
		if lat := h2.AccessData(0x100000+i*64, false); lat > h2.L1D.Latency {
			misses++
		}
	}
	if misses != 64 {
		t.Fatalf("without prefetch every line is a compulsory miss, got %d", misses)
	}
}

func TestHierarchyShadowPath(t *testing.T) {
	h := newHierarchy()
	h.Shadow = NewLineCache("shadow", 32*1024, 8, 64, 4)
	const aliasAddr = mem.AliasBase + 0x1000
	cold := h.AccessShadowAt(aliasAddr, false, true, 0)
	warm := h.AccessShadowAt(aliasAddr, false, true, 0)
	if warm >= cold {
		t.Fatalf("walker-cache hit (%d) must beat the cold fill (%d)", warm, cold)
	}
	if warm != 2+4 {
		t.Fatalf("shadow hit should cost port+cache latency, got %d", warm)
	}
	// Capability-table accesses bypass the walker cache and go to L2.
	capCold := h.AccessShadowAt(mem.ShadowBase+64, false, false, 0)
	if capCold < 2+12 {
		t.Fatalf("capability-table access must include the L2 path, got %d", capCold)
	}
	if h.Shadow.Stats.Accesses() != 2 {
		t.Fatalf("capability path must not touch the walker cache (%d accesses)", h.Shadow.Stats.Accesses())
	}
}

// TestKeyCacheResidencyProperty: any key is resident immediately after an
// access, and invalidation always removes it.
func TestKeyCacheResidencyProperty(t *testing.T) {
	c := NewKeyCache("t", 64, 2, 8)
	f := func(key uint64, invalidate bool) bool {
		c.Access(key)
		if !c.Probe(key) {
			return false
		}
		if invalidate {
			c.Invalidate(key)
			if c.Probe(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyCacheFlushKeepsStats(t *testing.T) {
	c := NewKeyCache("t", 8, 2, 2)
	for i := uint64(0); i < 20; i++ {
		c.Access(i)
	}
	misses := c.Stats.Misses
	c.Flush()
	if c.Stats.Misses != misses {
		t.Fatal("flush must preserve statistics")
	}
	for i := uint64(0); i < 20; i++ {
		if c.Probe(i) {
			t.Fatalf("key %d survived the flush", i)
		}
	}
}
