// Package campaign is the shared execution substrate for the paper's
// evaluation sweeps: it turns any (workload, SimConfig, mode) tuple into a
// schedulable Job, executes jobs on a sharded worker pool sized to
// GOMAXPROCS with per-job panic isolation, retry-with-backoff for
// transient simulator errors, and context cancellation — and memoizes
// completed results in a content-addressed cache keyed by a stable hash of
// (workload program bytes, machine configuration, rule-database export),
// so repeated sweeps over unchanged configurations are near-free.
//
// The paper's evaluation (Section VII) is a large campaign of independent
// simulations: 14 workloads × protection variants × Table-III/IV parameter
// sweeps. chexbench -campaign, chexfault -pool, and the chexd HTTP service
// all route through this package instead of looping one goroutine over the
// catalog.
//
// Determinism contract: everything this package serializes — Spec, Result,
// cache entries — is byte-stable (struct fields in declaration order, no
// map iteration feeding a writer, no wall-clock reads). The chexvet
// determinism linter gates the package with zero waivers; wall-time
// measurement is injected by the CLIs through Options.Clock and lives in
// the runtime Job record, never in the cached payload.
package campaign

import (
	"fmt"

	"chex86/internal/decode"
	"chex86/internal/faultinject"
	"chex86/internal/lockstep"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// Mode selects a job's executor.
type Mode string

const (
	// ModeBench runs one workload under one machine configuration with the
	// experiment harness's measurement policy and records timing results.
	ModeBench Mode = "bench"
	// ModeFault runs one fault-injection campaign cell (workload × variant
	// × site) and records its resilience report.
	ModeFault Mode = "fault"
	// ModeLockstep runs one lockstep differential-fuzzing sweep shard
	// (internal/lockstep): generated programs diffed against the reference
	// emulator across the condition matrix, with invariant audits.
	ModeLockstep Mode = "lockstep"
)

// Spec is the content of a job: what to simulate. Everything that changes
// the simulation outcome is part of the cache key; Timeout is the one
// exception (a wall-clock bound changes whether a run finishes, never what
// a finished run produced, and only finished runs are cached).
type Spec struct {
	Mode Mode `json:"mode"`

	// Bench mode.
	Workload  string           `json:"workload,omitempty"`
	Config    *pipeline.Config `json:"config,omitempty"` // nil = pipeline.DefaultConfig
	Scale     float64          `json:"scale,omitempty"`  // 0 = 1.0
	MaxInsts  uint64           `json:"maxInsts,omitempty"`
	MaxCycles uint64           `json:"maxCycles,omitempty"`

	// Fault mode: one campaign cell (see faultinject.Config.Cells).
	Fault *faultinject.Config `json:"fault,omitempty"`

	// Lockstep mode: one differential-fuzzing sweep shard. The spec is
	// fully deterministic (per-program seeds derive from Seed and the
	// global program index), so shards cache and merge like any cell.
	Lockstep *lockstep.SweepSpec `json:"lockstep,omitempty"`

	// TimeoutMS bounds the run in host milliseconds (0 = none). Excluded
	// from the cache key.
	TimeoutMS int64 `json:"timeoutMS,omitempty"`
}

// BenchSpec builds a bench-mode spec for one workload under one config.
func BenchSpec(workloadName string, cfg pipeline.Config, scale float64, maxInsts, maxCycles uint64) Spec {
	c := cfg
	return Spec{
		Mode:      ModeBench,
		Workload:  workloadName,
		Config:    &c,
		Scale:     scale,
		MaxInsts:  maxInsts,
		MaxCycles: maxCycles,
	}
}

// FaultSpec builds a fault-mode spec for one campaign cell.
func FaultSpec(cell faultinject.Config) Spec {
	c := cell.Normalized()
	return Spec{Mode: ModeFault, Fault: &c}
}

// LockstepSpec builds a lockstep-mode spec for one sweep shard.
func LockstepSpec(sweep lockstep.SweepSpec) Spec {
	s := sweep.Normalized()
	return Spec{Mode: ModeLockstep, Lockstep: &s}
}

// LockstepShards splits a sweep into n index-range shards that together
// reproduce exactly the sequential sweep's programs (per-program seeds
// are functions of the global index) — the unit the fabric distributes.
func LockstepShards(sweep lockstep.SweepSpec, n int) []Spec {
	sweep = sweep.Normalized()
	if n <= 1 || sweep.Programs <= 1 {
		return []Spec{LockstepSpec(sweep)}
	}
	if n > sweep.Programs {
		n = sweep.Programs
	}
	out := make([]Spec, 0, n)
	per := sweep.Programs / n
	extra := sweep.Programs % n
	next := sweep.FirstProgram
	for i := 0; i < n; i++ {
		shard := sweep
		shard.FirstProgram = next
		shard.Programs = per
		if i < extra {
			shard.Programs++
		}
		next += shard.Programs
		if shard.Programs > 0 {
			out = append(out, LockstepSpec(shard))
		}
	}
	return out
}

// validate rejects specs the executors could not run.
func (s *Spec) validate() error {
	switch s.Mode {
	case ModeBench:
		if s.Workload == "" {
			return fmt.Errorf("campaign: bench spec needs a workload")
		}
		if workload.ByName(s.Workload) == nil {
			return fmt.Errorf("campaign: unknown workload %q", s.Workload)
		}
	case ModeFault:
		if s.Fault == nil {
			return fmt.Errorf("campaign: fault spec needs a fault config")
		}
	case ModeLockstep:
		if s.Lockstep == nil {
			return fmt.Errorf("campaign: lockstep spec needs a sweep spec")
		}
		if err := s.Lockstep.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("campaign: unknown mode %q", s.Mode)
	}
	return nil
}

// config resolves the effective machine configuration of a bench spec.
func (s *Spec) config() pipeline.Config {
	if s.Config != nil {
		return *s.Config
	}
	return pipeline.DefaultConfig()
}

// scale resolves the effective workload scale.
func (s *Spec) scale() float64 {
	if s.Scale > 0 {
		return s.Scale
	}
	return 1.0
}

// Result is a job's cached payload: the deterministic outcome of the
// simulation, and nothing else. Runtime facts — wall time, attempt count,
// whether the result came from the cache — live on the Job, because two
// executions of the same Spec must produce byte-identical Results for the
// content-addressed cache to be sound.
type Result struct {
	Schema   string `json:"schema"` // "chex-campaign-result/v1"
	Mode     Mode   `json:"mode"`
	Workload string `json:"workload,omitempty"`
	Variant  string `json:"variant,omitempty"`

	Bench    *BenchResult          `json:"bench,omitempty"`
	Fault    *faultinject.Report   `json:"fault,omitempty"`
	Lockstep *lockstep.SweepReport `json:"lockstep,omitempty"`
}

// ResultSchema versions the cached-result payload.
const ResultSchema = "chex-campaign-result/v1"

// BenchResult is the byte-stable extract of one pipeline run: the scalar
// statistics every report and sweep consumes. Fields marshal in
// declaration order; there are no maps.
type BenchResult struct {
	Cycles       uint64  `json:"cycles"`
	Insts        uint64  `json:"insts"` // measured macro-ops (post-warmup)
	NativeUops   uint64  `json:"nativeUops"`
	InjectedUops uint64  `json:"injectedUops"`
	IPC          float64 `json:"ipc"`
	UopExpansion float64 `json:"uopExpansion"`

	CapMissRate   float64 `json:"capMissRate"`
	AliasMissRate float64 `json:"aliasMissRate"`
	MispredRate   float64 `json:"mispredRate"`
	SquashPct     float64 `json:"squashPct"`

	DRAMBytes  uint64 `json:"dramBytes"`
	UserRSS    uint64 `json:"userRSS"`
	ShadowRSS  uint64 `json:"shadowRSS"`
	Violations int    `json:"violations"`
}

// benchResult extracts the stable scalars from a pipeline result.
func benchResult(r *pipeline.Result) *BenchResult {
	b := &BenchResult{
		Cycles:        r.Cycles,
		Insts:         r.MacroInsts,
		NativeUops:    r.NativeUops,
		InjectedUops:  r.InjectedUops,
		UopExpansion:  r.UopExpansion(),
		CapMissRate:   r.CapCache.MissRate(),
		AliasMissRate: r.AliasCache.MissRate(),
		MispredRate:   r.Predictor.MispredictionRate(),
		SquashPct:     r.SquashPct(),
		DRAMBytes:     r.DRAMBytes,
		UserRSS:       r.UserRSS,
		ShadowRSS:     r.ShadowRSS,
		Violations:    len(r.Violations),
	}
	if r.Cycles > 0 {
		b.IPC = float64(r.MacroInsts) / float64(r.Cycles)
	}
	return b
}

// variantName names a spec's protection variant for reports.
func (s *Spec) variantName() string {
	switch s.Mode {
	case ModeBench:
		return VariantName(s.config().Variant)
	case ModeFault:
		if len(s.Fault.Variants) == 1 {
			return s.Fault.Variants[0]
		}
	}
	return ""
}

// VariantByName resolves a protection-variant name ("prediction",
// "baseline", "asan", ...) for service front-ends; it accepts the same
// names as chexfault.
func VariantByName(name string) (decode.Variant, bool) {
	return faultinject.VariantByName(name)
}

// VariantName is VariantByName's inverse: the short canonical name used in
// specs, reports, and the chexd API (Variant.String() is the long display
// name).
func VariantName(v decode.Variant) string {
	switch v {
	case decode.VariantInsecure:
		return "baseline"
	case decode.VariantHardwareOnly:
		return "hardware"
	case decode.VariantBinaryTranslation:
		return "bintrans"
	case decode.VariantMicrocodeAlwaysOn:
		return "always-on"
	case decode.VariantMicrocodePrediction:
		return "prediction"
	case decode.VariantASan:
		return "asan"
	case decode.VariantWatchdog:
		return "watchdog"
	}
	return v.String()
}
