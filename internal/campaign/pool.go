package campaign

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"chex86/internal/pipeline"
)

// ExecFunc executes one spec. The default is Execute (exec.go); tests and
// embedders substitute their own.
type ExecFunc func(ctx context.Context, spec *Spec) (*Result, error)

// ResultCache memoizes completed results by content address. *Cache is
// the on-disk implementation; the distributed fabric plugs in a two-tier
// cache (local disk, then peer fetch) through the same interface.
// Implementations must be safe for concurrent use; Lookup failures are
// misses, and Store failures only degrade future lookups.
type ResultCache interface {
	Lookup(spec Spec, key string) (*Result, bool)
	Store(spec Spec, key string, r *Result) error
}

// Options configures a Pool. The zero value is usable: GOMAXPROCS
// workers, no cache, the default executor, two retries with 50 ms initial
// backoff capped at 5 s, and no wall-clock probe.
type Options struct {
	// Workers is the shard count (one worker goroutine per shard).
	// Defaults to GOMAXPROCS — the pool runs compute-bound simulations, so
	// more workers than processors only adds contention.
	Workers int

	// Cache memoizes completed results by content address (nil = off).
	Cache ResultCache

	// Exec runs one spec (nil = Execute).
	Exec ExecFunc

	// Retries is how many times a run failing with a *transient* simulator
	// error (wall-clock deadline expiry, or any error exposing
	// `Transient() bool` = true) is retried before the job fails.
	// Deterministic failures — bad configuration, livelock, watchdog trips
	// — are never retried: they would fail identically again.
	Retries int

	// Backoff is the sleep before the first retry; it doubles per attempt
	// up to MaxBackoff.
	Backoff time.Duration

	// MaxBackoff caps the exponential growth so a long retry chain never
	// sleeps unboundedly (default 5s).
	MaxBackoff time.Duration

	// JitterSeed derives the deterministic retry jitter (default 1). Each
	// (job key, attempt) gets an independent point in [backoff/2, backoff]
	// from an xorshift stream seeded by (JitterSeed, key, attempt), so
	// synchronized transient failures fan out instead of stampeding in
	// lockstep — with no global PRNG state and full reproducibility.
	JitterSeed uint64

	// Clock is the host wall-clock probe in nanoseconds, injected by CLIs
	// (the campaign package itself never reads the wall clock — the chexvet
	// determinism gate holds it to that). nil disables per-job wall-time
	// measurement; job WallNS stays zero.
	Clock func() int64
}

func (o *Options) setDefaults() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Exec == nil {
		o.Exec = Execute
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.MaxBackoff < o.Backoff {
		o.MaxBackoff = o.Backoff
	}
	if o.JitterSeed == 0 {
		o.JitterSeed = 1
	}
	if o.Clock == nil {
		o.Clock = func() int64 { return 0 }
	}
}

// retryDelay computes the sleep before retry `attempt` (0-based): the base
// backoff doubled per attempt, capped at MaxBackoff, then decorrelated
// into [d/2, d] by a deterministic xorshift draw keyed on (JitterSeed, job
// key, attempt). Identical inputs always produce identical delays; jobs
// with different keys desynchronize.
func (o *Options) retryDelay(key string, attempt int) time.Duration {
	d := o.Backoff
	for i := 0; i < attempt && d < o.MaxBackoff; i++ {
		d *= 2
	}
	if d > o.MaxBackoff {
		d = o.MaxBackoff
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	fmt.Fprintf(h, "|%d", attempt)
	x := h.Sum64() ^ o.JitterSeed
	// xorshift64 mix so adjacent attempts land far apart.
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return half + time.Duration(x%uint64(half)+1)
}

// JobState is a job's lifecycle position.
type JobState string

const (
	JobPending JobState = "pending"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// Job is one scheduled simulation. Identical specs submitted while a job
// is in flight coalesce onto the same Job (singleflight), so a Job may
// have many waiters but runs at most one simulation.
type Job struct {
	ID   int
	Key  string
	Spec Spec

	done chan struct{}

	mu       sync.Mutex
	state    JobState
	attempts int
	cached   bool
	wallNS   int64
	result   *Result
	err      error
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes or ctx is cancelled.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Result returns the terminal result and error (nil, nil while running).
func (j *Job) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// JobStatus is a point-in-time, JSON-ready view of a job.
type JobStatus struct {
	ID       int      `json:"id"`
	Key      string   `json:"key"`
	Mode     Mode     `json:"mode"`
	Workload string   `json:"workload,omitempty"`
	Variant  string   `json:"variant,omitempty"`
	State    JobState `json:"state"`
	Cached   bool     `json:"cached"`
	Attempts int      `json:"attempts"`
	WallMS   float64  `json:"wallMS"`
	Error    string   `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.ID,
		Key:      j.Key,
		Mode:     j.Spec.Mode,
		Workload: j.Spec.Workload,
		Variant:  j.Spec.variantName(),
		State:    j.state,
		Cached:   j.cached,
		Attempts: j.attempts,
		WallMS:   float64(j.wallNS) / 1e6,
	}
	if j.Spec.Mode == ModeFault && j.Spec.Fault != nil && len(j.Spec.Fault.Workloads) == 1 {
		st.Workload = j.Spec.Fault.Workloads[0]
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// WallNS returns the accumulated host execution time (0 for cache hits or
// when the pool has no clock).
func (j *Job) WallNS() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wallNS
}

// Cached reports whether the result came from the content-addressed cache.
func (j *Job) Cached() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cached
}

// shard is one worker's job queue. Jobs are routed round-robin at
// submission; an idle worker steals the oldest job from a sibling shard,
// so an unlucky routing never leaves a processor idle while work queues.
type shard struct {
	mu sync.Mutex
	q  []*Job
}

func (s *shard) push(j *Job) {
	s.mu.Lock()
	s.q = append(s.q, j)
	s.mu.Unlock()
}

func (s *shard) pop() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.q) == 0 {
		return nil
	}
	j := s.q[0]
	s.q = s.q[1:]
	return j
}

// Pool executes jobs on sharded workers with singleflight dedup,
// content-addressed memoization, per-job panic isolation, and
// retry-with-backoff for transient simulator errors.
type Pool struct {
	opts    Options
	metrics Metrics

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	notify chan struct{}
	shards []*shard

	mu       sync.Mutex
	closed   bool
	nextID   int
	rr       int             // round-robin shard cursor
	inflight map[string]*Job // key → pending/running job (singleflight)
	jobs     []*Job          // every job ever submitted, by ID
}

// NewPool starts a pool and its workers.
func NewPool(opts Options) *Pool {
	opts.setDefaults()
	p := &Pool{
		opts:     opts,
		notify:   make(chan struct{}, opts.Workers),
		inflight: make(map[string]*Job),
	}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	for i := 0; i < opts.Workers; i++ {
		p.shards = append(p.shards, &shard{})
	}
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// Workers returns the shard/worker count.
func (p *Pool) Workers() int { return len(p.shards) }

// Metrics exposes the pool's counters.
func (p *Pool) Metrics() *Metrics { return &p.metrics }

// Submit schedules a spec and returns its job. If an identical spec (same
// content address) is already pending or running, its Job is returned
// instead of starting a second simulation; if the cache already holds the
// result, the returned job is complete before Submit returns, marked
// cached.
func (p *Pool) Submit(spec Spec) (*Job, error) {
	key, err := spec.Key()
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("campaign: pool is closed")
	}
	p.metrics.Submitted.Add(1)
	if j := p.inflight[key]; j != nil {
		p.mu.Unlock()
		p.metrics.Deduped.Add(1)
		return j, nil
	}
	p.nextID++
	j := &Job{ID: p.nextID, Key: key, Spec: spec, state: JobPending, done: make(chan struct{})}
	p.jobs = append(p.jobs, j)
	p.inflight[key] = j
	p.mu.Unlock()

	if p.opts.Cache != nil {
		if res, ok := p.opts.Cache.Lookup(spec, key); ok {
			p.metrics.CacheHits.Add(1)
			j.mu.Lock()
			j.cached = true
			j.mu.Unlock()
			p.finish(j, res, nil)
			return j, nil
		}
		p.metrics.CacheMisses.Add(1)
	}

	p.mu.Lock()
	sh := p.shards[p.rr%len(p.shards)]
	p.rr++
	p.mu.Unlock()
	sh.push(j)
	select {
	case p.notify <- struct{}{}:
	default:
	}
	return j, nil
}

// Job returns the job with the given ID, or nil.
func (p *Pool) Job(id int) *Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 1 || id > len(p.jobs) {
		return nil
	}
	return p.jobs[id-1]
}

// Jobs snapshots every job submitted so far, in submission order.
func (p *Pool) Jobs() []*Job {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Job, len(p.jobs))
	copy(out, p.jobs)
	return out
}

// Close stops the workers and fails every job that has not finished with a
// cancellation error. It is safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.mu.Unlock()

	p.cancel()
	p.wg.Wait()

	// Workers are gone; anything still queued or mid-flight bookkeeping
	// gets a terminal cancellation so waiters unblock.
	for _, j := range p.Jobs() {
		select {
		case <-j.done:
		default:
			p.finish(j, nil, &pipeline.SimError{Kind: pipeline.ErrCanceled, Msg: "campaign pool closed"})
		}
	}
}

// worker is one shard's goroutine: drain the own queue, steal when idle.
func (p *Pool) worker(self int) {
	defer p.wg.Done()
	for {
		j := p.next(self)
		if j == nil {
			select {
			case <-p.ctx.Done():
				return
			case <-p.notify:
				continue
			}
		}
		if p.ctx.Err() != nil {
			p.finish(j, nil, &pipeline.SimError{Kind: pipeline.ErrCanceled, Msg: "campaign pool closed"})
			continue
		}
		p.runJob(j)
	}
}

// next pops from the worker's own shard, then steals round-robin.
func (p *Pool) next(self int) *Job {
	n := len(p.shards)
	for i := 0; i < n; i++ {
		if j := p.shards[(self+i)%n].pop(); j != nil {
			return j
		}
	}
	return nil
}

// runJob executes one job with retry-with-backoff, records wall time, and
// publishes the result (to waiters and, on success, the cache).
func (p *Pool) runJob(j *Job) {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()

	var res *Result
	var err error
	for attempt := 0; ; attempt++ {
		p.metrics.Started.Add(1)
		j.mu.Lock()
		j.attempts++
		j.mu.Unlock()

		start := p.opts.Clock()
		res, err = p.execOne(j)
		elapsed := p.opts.Clock() - start
		j.mu.Lock()
		j.wallNS += elapsed
		j.mu.Unlock()

		if err == nil || attempt >= p.opts.Retries || !Transient(err) {
			break
		}
		p.metrics.Retried.Add(1)
		select {
		case <-p.ctx.Done():
			err = &pipeline.SimError{Kind: pipeline.ErrCanceled, Msg: "campaign pool closed", Err: err}
		case <-time.After(p.opts.retryDelay(j.Key, attempt)):
			continue
		}
		break
	}

	if err != nil {
		p.finish(j, nil, err)
		return
	}
	if p.opts.Cache != nil {
		// A cache-write failure degrades future runs, not this one: the
		// result is still correct, so the job succeeds and the miss is
		// simply paid again next sweep.
		_ = p.opts.Cache.Store(j.Spec, j.Key, res)
	}
	p.finish(j, res, nil)
}

// execOne runs the executor once with panic isolation: a panic anywhere in
// the simulator becomes this job's error, never the pool's crash.
func (p *Pool) execOne(j *Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.metrics.Panics.Add(1)
			err = fmt.Errorf("campaign: job %d (%s %s) panicked: %v", j.ID, j.Spec.Mode, j.Spec.Workload, r)
		}
	}()
	ctx := p.ctx
	if j.Spec.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.Spec.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	return p.opts.Exec(ctx, &j.Spec)
}

// finish moves a job to its terminal state exactly once.
func (p *Pool) finish(j *Job, res *Result, err error) {
	j.mu.Lock()
	select {
	case <-j.done:
		j.mu.Unlock()
		return
	default:
	}
	j.result, j.err = res, err
	if err != nil {
		j.state = JobFailed
		p.metrics.Failed.Add(1)
	} else {
		j.state = JobDone
		p.metrics.Completed.Add(1)
	}
	close(j.done)
	j.mu.Unlock()

	p.mu.Lock()
	if p.inflight[j.Key] == j {
		delete(p.inflight, j.Key)
	}
	p.mu.Unlock()
}

// Transient reports whether an error is worth retrying: wall-clock
// deadline expiry (host scheduling jitter can starve a run that would
// otherwise finish) or anything implementing `Transient() bool`.
// Deterministic simulator failures — config rejection, livelock, watchdog
// hangs, cancellation — re-fail identically and are permanent.
func Transient(err error) bool {
	var se *pipeline.SimError
	if errors.As(err, &se) {
		return se.Kind == pipeline.ErrDeadline
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
