package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chex86/internal/faultinject"
	"chex86/internal/lint/determinism"
	"chex86/internal/pipeline"
)

func TestKeyStability(t *testing.T) {
	s1 := BenchSpec("mcf", pipeline.DefaultConfig(), 0.25, 20000, 0)
	s2 := BenchSpec("mcf", pipeline.DefaultConfig(), 0.25, 20000, 0)
	k1, err := s1.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("identical specs produced different keys:\n%s\n%s", k1, k2)
	}
	if !validKey(k1) {
		t.Fatalf("key %q is not a sha256 hex digest", k1)
	}

	// Every content-relevant change must move the key.
	distinct := map[string]string{"base": k1}
	check := func(name string, s Spec) {
		k, err := s.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for prev, pk := range distinct {
			if pk == k {
				t.Errorf("%s collides with %s", name, prev)
			}
		}
		distinct[name] = k
	}
	check("other-workload", BenchSpec("lbm", pipeline.DefaultConfig(), 0.25, 20000, 0))
	check("other-insts", BenchSpec("mcf", pipeline.DefaultConfig(), 0.25, 30000, 0))
	check("other-scale", BenchSpec("mcf", pipeline.DefaultConfig(), 0.5, 20000, 0))
	bigCap := pipeline.DefaultConfig()
	bigCap.CapCacheEntries = 128
	check("other-config", BenchSpec("mcf", bigCap, 0.25, 20000, 0))
	check("fault-mode", FaultSpec(faultinject.Config{
		Workloads: []string{"mcf"}, Variants: []string{"prediction"},
		Sites: []faultinject.Site{faultinject.AllSites()[0]},
	}))
}

func TestKeyTracksElisionConfig(t *testing.T) {
	// Satellite of the proof-carrying elision work (DESIGN.md §11): a
	// cached result obtained with capability checks elided must never be
	// served for a run with checks enforced, and vice versa — the knob
	// and the installed map's digest are both part of the content
	// address.
	base := BenchSpec("mcf", pipeline.DefaultConfig(), 0.25, 20000, 0)
	k0, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}

	elided := pipeline.DefaultConfig()
	elided.ElideChecks = true
	s1 := BenchSpec("mcf", elided, 0.25, 20000, 0)
	k1, err := s1.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k0 {
		t.Fatal("flipping Config.ElideChecks must change the content address")
	}

	digested := elided
	digested.ElisionDigest = "deadbeef"
	s2 := BenchSpec("mcf", digested, 0.25, 20000, 0)
	k2, err := s2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k2 == k1 || k2 == k0 {
		t.Fatal("changing Config.ElisionDigest must change the content address")
	}

	other := elided
	other.ElisionDigest = "cafef00d"
	s3 := BenchSpec("mcf", other, 0.25, 20000, 0)
	k3, err := s3.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k2 {
		t.Fatal("distinct elision maps must have distinct content addresses")
	}
}

func TestKeyTracksGuardConfig(t *testing.T) {
	// Guard hoisting (DESIGN.md §16) is the same contract one layer up: a
	// cached result must key on whether the verified guard map was
	// installed and on exactly which guard set it was.
	elided := pipeline.DefaultConfig()
	elided.ElideChecks = true
	elided.ElisionDigest = "deadbeef"
	base := BenchSpec("mcf", elided, 0.25, 20000, 0)
	k0, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}

	hoisted := elided
	hoisted.HoistGuards = true
	s1 := BenchSpec("mcf", hoisted, 0.25, 20000, 0)
	k1, err := s1.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k0 {
		t.Fatal("flipping Config.HoistGuards must change the content address")
	}

	digested := hoisted
	digested.GuardDigest = "0ddba11"
	s2 := BenchSpec("mcf", digested, 0.25, 20000, 0)
	k2, err := s2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k2 == k1 || k2 == k0 {
		t.Fatal("changing Config.GuardDigest must change the content address")
	}
}

func TestKeyIgnoresTimeout(t *testing.T) {
	s1 := BenchSpec("mcf", pipeline.DefaultConfig(), 0.25, 20000, 0)
	s2 := s1
	s2.TimeoutMS = 5000
	k1, _ := s1.Key()
	k2, err := s2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("wall-clock timeout must not change the content address")
	}
}

// TestKeyIgnoresHostReplayKnobs pins that host-side replay knobs —
// the μop cache and superblock switches, which cannot change result
// bytes — never reach the content address: toggling them must not
// invalidate cached campaign results.
func TestKeyIgnoresHostReplayKnobs(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	s1 := BenchSpec("mcf", cfg, 0.25, 20000, 0)
	k1, err := s1.Key()
	if err != nil {
		t.Fatal(err)
	}
	cfg.NoUopCache = true
	cfg.NoSuperblocks = true
	cfg.SuperblockChainLen = 2
	s2 := BenchSpec("mcf", cfg, 0.25, 20000, 0)
	k2, err := s2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("host replay knobs must not change the content address")
	}
}

func TestKeyNormalizesFaultDefaults(t *testing.T) {
	// An explicit default and an elided default are the same campaign.
	a := FaultSpec(faultinject.Config{Workloads: []string{"mcf"}, Variants: []string{"prediction"}, Sites: faultinject.AllSites()[:1]})
	b := FaultSpec(faultinject.Config{Workloads: []string{"mcf"}, Variants: []string{"prediction"}, Sites: faultinject.AllSites()[:1], Scale: 1.0, FaultsPerRun: 15})
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatal("normalized fault configs must share a key")
	}
}

func TestKeyRejectsInvalidSpecs(t *testing.T) {
	for name, s := range map[string]Spec{
		"no-mode":          {},
		"unknown-mode":     {Mode: "mystery"},
		"unknown-workload": {Mode: ModeBench, Workload: "nonesuch"},
		"fault-no-config":  {Mode: ModeFault},
	} {
		if _, err := s.Key(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func fakeResult(workloadName string) *Result {
	return &Result{
		Schema:   ResultSchema,
		Mode:     ModeBench,
		Workload: workloadName,
		Variant:  "prediction",
		Bench:    &BenchResult{Cycles: 1234, Insts: 567, IPC: 0.459},
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := BenchSpec("mcf", pipeline.DefaultConfig(), 0.25, 20000, 0)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	want := fakeResult("mcf")
	if err := c.Put(key, spec, want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after put")
	}
	if got.Bench.Cycles != want.Bench.Cycles || got.Workload != "mcf" {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}

	// A second cache instance over the same dir must see the entry (the
	// on-disk store, not the in-memory index, is authoritative).
	c2, err := OpenCache(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key); !ok {
		t.Fatal("fresh cache instance missed the on-disk entry")
	}
	n, err := c2.Len()
	if err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

func TestCacheEntryBytesStable(t *testing.T) {
	spec := BenchSpec("mcf", pipeline.DefaultConfig(), 0.25, 20000, 0)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{Schema: EntrySchema, Key: key, Spec: spec, Result: fakeResult("mcf")}
	b1, err := MarshalEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := MarshalEntry(e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("entry marshaling is not byte-stable")
	}

	// Writing the same result twice leaves the file byte-identical.
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, spec, e.Result); err != nil {
		t.Fatal(err)
	}
	f1, err := os.ReadFile(filepath.Join(c.Dir(), key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, spec, e.Result); err != nil {
		t.Fatal(err)
	}
	f2, err := os.ReadFile(filepath.Join(c.Dir(), key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1, f2) {
		t.Fatal("re-putting an identical result changed the cache file bytes")
	}
}

func TestCacheRejectsCorruptAndForeignEntries(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if err := os.WriteFile(filepath.Join(c.Dir(), key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, ok := c.Get("../../etc/passwd"); ok {
		t.Fatal("path-traversal key served as a hit")
	}
	if err := c.Put("../escape", Spec{}, fakeResult("x")); err == nil {
		t.Fatal("Put accepted a non-digest key")
	}
}

// TestDeterminismGate holds the campaign package to the chexvet contract
// with zero waivers: byte-stable serialization cannot coexist with
// wall-clock reads, global rand, or map-iteration feeding writers — and a
// waiver comment here would hide exactly the bug class the
// content-addressed cache cannot tolerate.
func TestDeterminismGate(t *testing.T) {
	findings, err := determinism.LintDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("determinism hazard: %s", f)
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(e.Name())
		if err != nil {
			t.Fatal(err)
		}
		waiver := "//determinism" + ":ok" // split so this file doesn't match itself
		if strings.Contains(string(src), waiver) {
			t.Errorf("%s: campaign sources must pass the determinism lint without waivers", e.Name())
		}
	}
}
