package campaign

import (
	"bytes"
	"context"
	"testing"
	"time"

	"chex86/internal/faultinject"
	"chex86/internal/lockstep"
	"chex86/internal/pipeline"
)

// TestBenchJobEndToEnd runs a real (tiny) simulation through the pool
// twice and checks that the second pass is a pure cache hit with an
// identical payload.
func TestBenchJobEndToEnd(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := BenchSpec("mcf", pipeline.DefaultConfig(), 0.1, 5000, 0)

	pool := NewPool(Options{Workers: 2, Cache: cache})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	j1, err := pool.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if j1.Cached() {
		t.Fatal("first run reported a cache hit on a cold cache")
	}
	if r1.Bench == nil || r1.Bench.Cycles == 0 || r1.Bench.Insts == 0 {
		t.Fatalf("degenerate bench result: %+v", r1.Bench)
	}
	if r1.Workload != "mcf" || r1.Variant != "prediction" {
		t.Fatalf("result labels: workload=%q variant=%q", r1.Workload, r1.Variant)
	}
	pool.Close()

	pool2 := NewPool(Options{Workers: 2, Cache: cache})
	defer pool2.Close()
	j2, err := pool2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Cached() {
		t.Fatal("second identical run was not served from the cache")
	}
	if r2.Bench.Cycles != r1.Bench.Cycles || r2.Bench.Insts != r1.Bench.Insts {
		t.Fatalf("cached result diverged: %+v vs %+v", r2.Bench, r1.Bench)
	}
	m := pool2.Metrics().Snapshot()
	if m.CacheHits != 1 || m.Started != 0 {
		t.Fatalf("second pool: hits=%d started=%d, want 1/0", m.CacheHits, m.Started)
	}
}

// TestFaultCellsMatchSequential is the determinism contract that makes
// fault campaigns shardable job types: cells executed through the pool and
// merged must reproduce faultinject.Run's sequential report byte for byte.
func TestFaultCellsMatchSequential(t *testing.T) {
	cfg := faultinject.Config{
		Seed:         7,
		Workloads:    []string{"mcf"},
		Variants:     []string{"prediction"},
		Sites:        faultinject.AllSites()[:2],
		FaultsPerRun: 5,
		Scale:        0.25,
		MaxInsts:     4000,
	}
	seq, err := faultinject.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqJSON, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}

	pool := NewPool(Options{Workers: 4})
	defer pool.Close()
	var jobs []*Job
	for _, cell := range cfg.Cells() {
		j, err := pool.Submit(FaultSpec(cell))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var cells []*faultinject.Report
	for _, j := range jobs {
		res, err := j.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fault == nil {
			t.Fatal("fault job returned no fault report")
		}
		cells = append(cells, res.Fault)
	}
	merged := faultinject.Merge(cfg, cells)
	mergedJSON, err := merged.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, mergedJSON) {
		t.Fatalf("pooled fault campaign diverged from sequential run:\n--- sequential ---\n%s\n--- merged ---\n%s", seqJSON, mergedJSON)
	}
}

// TestBenchMatchesSequentialHarness: a campaign bench job must report the
// same simulated machine behaviour as the sequential experiments path —
// the pool changes scheduling, never results.
func TestBenchMatchesSequentialHarness(t *testing.T) {
	spec := BenchSpec("lbm", pipeline.DefaultConfig(), 0.1, 5000, 0)
	ctx := context.Background()
	r1, err := Execute(ctx, &spec)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(Options{Workers: 2})
	defer pool.Close()
	j, err := pool.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	r2, err := j.Wait(wctx)
	if err != nil {
		t.Fatal(err)
	}
	if *r1.Bench != *r2.Bench {
		t.Fatalf("pooled result diverged from direct execution:\n%+v\n%+v", r1.Bench, r2.Bench)
	}
}

// TestLockstepShardsMatchSequential: lockstep sweep shards executed
// through the pool must together reproduce the sequential sweep's
// accounting, and an identical shard resubmitted against the cache must
// be a pure hit with a byte-identical report.
func TestLockstepShardsMatchSequential(t *testing.T) {
	sweep := lockstep.SweepSpec{Seed: 11, Programs: 4, CrosscheckEvery: -1}
	whole, err := lockstep.Sweep(context.Background(), sweep, lockstep.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(Options{Workers: 2, Cache: cache})
	defer pool.Close()
	shards := LockstepShards(sweep, 2)
	if len(shards) != 2 {
		t.Fatalf("expected 2 shards, got %d", len(shards))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var commits uint64
	var programs, mutated, detected int
	for _, spec := range shards {
		j, err := pool.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Lockstep == nil {
			t.Fatal("lockstep job returned no sweep report")
		}
		if res.Lockstep.Failed() {
			t.Fatalf("shard failed:\n%s", res.Lockstep.JSON())
		}
		commits += res.Lockstep.Commits
		programs += res.Lockstep.Programs
		mutated += res.Lockstep.Mutated
		detected += res.Lockstep.Detected
	}
	if commits != whole.Commits || programs != whole.Programs ||
		mutated != whole.Mutated || detected != whole.Detected {
		t.Fatalf("shards(commits=%d programs=%d mutated=%d detected=%d) != whole(commits=%d programs=%d mutated=%d detected=%d)",
			commits, programs, mutated, detected,
			whole.Commits, whole.Programs, whole.Mutated, whole.Detected)
	}

	// Resubmitting the first shard must hit the cache byte for byte.
	j1, err := pool.Submit(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !j1.Cached() {
		t.Fatal("identical lockstep shard was not served from the cache")
	}
	direct, err := lockstep.Sweep(context.Background(), *shards[0].Lockstep, lockstep.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Lockstep.JSON(), direct.JSON()) {
		t.Fatalf("cached lockstep report diverged:\n%s\nvs\n%s", r1.Lockstep.JSON(), direct.JSON())
	}
}
