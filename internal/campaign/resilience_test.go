package campaign

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chex86/internal/pipeline"
)

// TestRetryDelayDeterministicAndCapped: retry sleeps are a pure function
// of (seed, key, attempt) — reproducible, jittered into [base/2, base],
// and capped at MaxBackoff no matter how long the retry chain runs.
func TestRetryDelayDeterministicAndCapped(t *testing.T) {
	o := Options{Backoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond, JitterSeed: 7}
	o.setDefaults()

	for attempt := 0; attempt < 10; attempt++ {
		base := o.Backoff << attempt
		if base > o.MaxBackoff {
			base = o.MaxBackoff
		}
		d := o.retryDelay("key-a", attempt)
		if d != o.retryDelay("key-a", attempt) {
			t.Fatalf("attempt %d: same inputs produced different delays", attempt)
		}
		if d < base/2 || d > base {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base/2, base)
		}
	}

	// Different keys desynchronize: a fleet of jobs failing together must
	// not retry in lockstep.
	keys := []string{"key-a", "key-b", "key-c", "key-d"}
	distinct := make(map[time.Duration]bool)
	for _, k := range keys {
		distinct[o.retryDelay(k, 1)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d keys drew the same jitter %v — no decorrelation", len(keys), keys[0])
	}

	// A different seed moves the whole schedule.
	o2 := o
	o2.JitterSeed = 8
	same := 0
	for _, k := range keys {
		if o.retryDelay(k, 1) == o2.retryDelay(k, 1) {
			same++
		}
	}
	if same == len(keys) {
		t.Fatal("changing JitterSeed left every delay unchanged")
	}
}

// TestCloseCancelsRetrySleep: a job parked in its retry backoff must not
// hold Close hostage for the backoff duration — cancellation preempts the
// sleep and the job fails with a canceled SimError that still wraps the
// transient cause.
func TestCloseCancelsRetrySleep(t *testing.T) {
	firstFailure := make(chan struct{})
	var attempts atomic.Int64
	pool := NewPool(Options{
		Workers: 1,
		Retries: 3,
		Backoff: time.Hour, // deliberately absurd: only cancellation can end the sleep
		Exec: func(_ context.Context, _ *Spec) (*Result, error) {
			if attempts.Add(1) == 1 {
				defer close(firstFailure)
			}
			return nil, &pipeline.SimError{Kind: pipeline.ErrDeadline, Msg: "synthetic deadline"}
		},
	})

	j, err := pool.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-firstFailure // the job is failing transiently and about to sleep

	done := make(chan struct{})
	go func() {
		pool.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close blocked on a retry sleep")
	}

	_, jerr := j.Result()
	var se *pipeline.SimError
	if !errors.As(jerr, &se) || se.Kind != pipeline.ErrCanceled {
		t.Fatalf("job error = %v, want canceled SimError", jerr)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (retry preempted)", got)
	}
}

// TestSingleflightErrorPropagation: when the one shared execution fails,
// every submitter that coalesced onto it must observe that same error —
// no waiter can hang or see a partial result.
func TestSingleflightErrorPropagation(t *testing.T) {
	release := make(chan struct{})
	execErr := errors.New("simulator exploded")
	var execs atomic.Int64
	pool := NewPool(Options{
		Workers: 2,
		Exec: func(_ context.Context, _ *Spec) (*Result, error) {
			execs.Add(1)
			<-release
			return nil, execErr
		},
	})
	defer pool.Close()

	first, err := pool.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	// Coalesce every submission while the one execution is still parked on
	// the release channel — it cannot finish, so dedup is guaranteed.
	const waiters = 8
	for i := 0; i < waiters; i++ {
		j, err := pool.Submit(testSpec(1))
		if err != nil {
			t.Fatal(err)
		}
		if j != first {
			t.Fatalf("waiter %d did not coalesce onto the in-flight job", i)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-first.Done()
			_, errs[i] = first.Result()
		}(i)
	}
	close(release)
	wg.Wait()

	for i, werr := range errs {
		if !errors.Is(werr, execErr) {
			t.Fatalf("waiter %d got %v, want the shared execution error", i, werr)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions for %d coalesced submissions, want 1", got, waiters+1)
	}
}

// TestCacheTruncatedEntryIsMiss: an entry truncated mid-write (host crash
// during Put before the fsync barrier) must read as a miss — and a fresh
// Put must heal it.
func TestCacheTruncatedEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(1)
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	res := fakeResult(spec.Workload)
	if err := cache.Put(key, spec, res); err != nil {
		t.Fatal(err)
	}

	// Truncate the entry to half its bytes — valid JSON prefix of an
	// Entry, invalid document.
	path := cache.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh Cache (no in-memory index) must treat it as a miss.
	reopened, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reopened.Get(key); ok {
		t.Fatal("truncated entry served as a hit")
	}

	// Healing: a new Put overwrites the torn file and restores the hit.
	if err := reopened.Put(key, spec, res); err != nil {
		t.Fatal(err)
	}
	healed, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := healed.Get(key); !ok {
		t.Fatal("re-Put did not heal the truncated entry")
	}

	// The canonical bytes round-tripped: the healed file equals the
	// original pre-truncation content.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(data) {
		t.Fatal("healed entry differs from the original canonical bytes")
	}
}
