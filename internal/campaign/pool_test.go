package campaign

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chex86/internal/pipeline"
)

// testSpec returns a cheap-but-real bench spec; vary n for distinct keys.
func testSpec(n uint64) Spec {
	return BenchSpec("mcf", pipeline.DefaultConfig(), 0.1, 1000+n, 0)
}

// TestSingleflightDedup is the concurrency contract of the cache: many
// identical jobs submitted in parallel must collapse to ONE simulation.
// Run under -race (CI does), this also exercises the pool's locking.
func TestSingleflightDedup(t *testing.T) {
	var execs atomic.Int64
	release := make(chan struct{})
	pool := NewPool(Options{
		Workers: 4,
		Exec: func(ctx context.Context, spec *Spec) (*Result, error) {
			execs.Add(1)
			<-release // hold the job in flight while the others submit
			return fakeResult(spec.Workload), nil
		},
	})
	defer pool.Close()

	const submitters = 16
	var wg sync.WaitGroup
	jobs := make([]*Job, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := pool.Submit(testSpec(1))
			if err != nil {
				t.Error(err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, j := range jobs {
		if j == nil {
			t.Fatalf("submitter %d got no job", i)
		}
		if j != jobs[0] {
			t.Fatalf("submitter %d got a distinct job: singleflight broken", i)
		}
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d identical submissions ran %d simulations, want 1", submitters, got)
	}
	m := pool.Metrics().Snapshot()
	if m.Submitted != submitters || m.Deduped != submitters-1 {
		t.Fatalf("metrics: submitted=%d deduped=%d, want %d/%d", m.Submitted, m.Deduped, submitters, submitters-1)
	}
}

// TestSingleflightWithCache: parallel identical submissions against a real
// cache still simulate once, and a post-completion resubmission is a pure
// cache hit (no execution at all).
func TestSingleflightWithCache(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	exec := func(ctx context.Context, spec *Spec) (*Result, error) {
		execs.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the submission race window
		return fakeResult(spec.Workload), nil
	}
	pool := NewPool(Options{Workers: 4, Cache: cache, Exec: exec})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := pool.Submit(testSpec(2))
			if err != nil {
				t.Error(err)
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := j.Wait(ctx); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("parallel identical jobs ran %d simulations, want 1", got)
	}

	// Resubmit after completion: must be served from the cache.
	j, err := pool.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("cache-hit job not complete at submit return")
	}
	if !j.Cached() {
		t.Fatal("resubmission after completion was not marked cached")
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("cache hit re-ran the simulation (%d executions)", got)
	}
	pool.Close()

	// And a brand-new pool over the same directory hits too.
	pool2 := NewPool(Options{Workers: 2, Cache: cache, Exec: exec})
	defer pool2.Close()
	j2, err := pool2.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Cached() {
		t.Fatal("fresh pool over a warm cache dir missed")
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("fresh pool re-ran the simulation (%d executions)", got)
	}
}

func TestPanicIsolation(t *testing.T) {
	pool := NewPool(Options{
		Workers: 2,
		Exec: func(ctx context.Context, spec *Spec) (*Result, error) {
			if spec.MaxInsts == 1001 {
				panic("synthetic simulator bug")
			}
			return fakeResult(spec.Workload), nil
		},
	})
	defer pool.Close()

	bad, err := pool.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	good, err := pool.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := bad.Wait(ctx); err == nil {
		t.Fatal("panicking job reported success")
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("unexpected error shape: %v", err)
	}
	if _, err := good.Wait(ctx); err != nil {
		t.Fatalf("pool did not survive a sibling job's panic: %v", err)
	}
	if pool.Metrics().Panics.Load() != 1 {
		t.Fatalf("panic not counted")
	}
	if bad.Status().State != JobFailed {
		t.Fatalf("panicked job state = %s, want failed", bad.Status().State)
	}
}

func TestRetryTransientErrors(t *testing.T) {
	var attempts atomic.Int64
	pool := NewPool(Options{
		Workers: 1,
		Retries: 2,
		Backoff: time.Millisecond,
		Exec: func(ctx context.Context, spec *Spec) (*Result, error) {
			if attempts.Add(1) < 3 {
				return nil, &pipeline.SimError{Kind: pipeline.ErrDeadline, Msg: "synthetic deadline"}
			}
			return fakeResult(spec.Workload), nil
		},
	})
	defer pool.Close()

	j, err := pool.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err != nil {
		t.Fatalf("transient failures not retried to success: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("executions = %d, want 3 (1 + 2 retries)", got)
	}
	if pool.Metrics().Retried.Load() != 2 {
		t.Fatalf("retries = %d, want 2", pool.Metrics().Retried.Load())
	}
	if st := j.Status(); st.Attempts != 3 {
		t.Fatalf("job attempts = %d, want 3", st.Attempts)
	}
}

func TestPermanentErrorsNotRetried(t *testing.T) {
	var attempts atomic.Int64
	pool := NewPool(Options{
		Workers: 1,
		Retries: 3,
		Backoff: time.Millisecond,
		Exec: func(ctx context.Context, spec *Spec) (*Result, error) {
			attempts.Add(1)
			return nil, &pipeline.SimError{Kind: pipeline.ErrCycleLimit, Msg: "livelock"}
		},
	})
	defer pool.Close()

	j, err := pool.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err == nil {
		t.Fatal("deterministic failure reported success")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("deterministic failure executed %d times, want 1", got)
	}
}

func TestCloseCancelsPendingJobs(t *testing.T) {
	started := make(chan struct{})
	block := make(chan struct{})
	pool := NewPool(Options{
		Workers: 1,
		Exec: func(ctx context.Context, spec *Spec) (*Result, error) {
			close(started)
			select {
			case <-ctx.Done():
				return nil, &pipeline.SimError{Kind: pipeline.ErrCanceled, Msg: "ctx", Err: ctx.Err()}
			case <-block:
				return fakeResult(spec.Workload), nil
			}
		},
	})

	running, err := pool.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := pool.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	pool.Close()
	close(block)

	for _, j := range []*Job{running, queued} {
		<-j.Done()
		_, err := j.Result()
		var se *pipeline.SimError
		if !errors.As(err, &se) || se.Kind != pipeline.ErrCanceled {
			t.Fatalf("job %d after Close: err = %v, want canceled SimError", j.ID, err)
		}
	}
	if _, err := pool.Submit(testSpec(3)); err == nil {
		t.Fatal("Submit accepted work on a closed pool")
	}
}

func TestPoolParallelism(t *testing.T) {
	// With W workers and W long jobs, all W must be in flight at once —
	// the sharded queues plus work stealing may not serialize them.
	const workers = 4
	var inflight, peak atomic.Int64
	release := make(chan struct{})
	pool := NewPool(Options{
		Workers: workers,
		Exec: func(ctx context.Context, spec *Spec) (*Result, error) {
			cur := inflight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			<-release
			inflight.Add(-1)
			return fakeResult(spec.Workload), nil
		},
	})
	defer pool.Close()

	var jobs []*Job
	for i := 0; i < workers; i++ {
		j, err := pool.Submit(testSpec(uint64(10 + i)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	deadline := time.After(30 * time.Second)
	for peak.Load() < workers {
		select {
		case <-deadline:
			t.Fatalf("peak parallelism %d never reached %d workers", peak.Load(), workers)
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJobLookup(t *testing.T) {
	pool := NewPool(Options{Workers: 1, Exec: func(ctx context.Context, spec *Spec) (*Result, error) {
		return fakeResult(spec.Workload), nil
	}})
	defer pool.Close()
	j, err := pool.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if pool.Job(j.ID) != j {
		t.Fatal("Job(id) did not return the submitted job")
	}
	if pool.Job(0) != nil || pool.Job(99) != nil {
		t.Fatal("out-of-range lookup returned a job")
	}
	if got := len(pool.Jobs()); got != 1 {
		t.Fatalf("Jobs() = %d entries, want 1", got)
	}
}

func TestFormatReportDistinguishesCacheHits(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var now atomic.Int64
	pool := NewPool(Options{
		Workers: 2,
		Cache:   cache,
		Clock:   func() int64 { return now.Add(1e6) }, // 1ms per probe
		Exec: func(ctx context.Context, spec *Spec) (*Result, error) {
			return fakeResult(spec.Workload), nil
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j1, err := pool.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	j2, err := pool.Submit(testSpec(1)) // identical: cache hit
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	rep := FormatReport(pool.Jobs())
	pool.Close()
	if !contains(rep, "cache") || !contains(rep, "run") {
		t.Fatalf("report does not distinguish cache hits from runs:\n%s", rep)
	}
	if !contains(rep, "1 cache hits") || !contains(rep, "1 simulated") {
		t.Fatalf("report summary wrong:\n%s", rep)
	}
	if !contains(rep, "Kinst/s") || !contains(rep, "wall(s)") {
		t.Fatalf("report missing wall-time/IPS columns:\n%s", rep)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
