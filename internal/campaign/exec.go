package campaign

import (
	"context"
	"fmt"

	"chex86/internal/experiments"
	"chex86/internal/faultinject"
	"chex86/internal/lockstep"
	"chex86/internal/workload"
)

// Execute is the default ExecFunc: it dispatches a spec to the simulator.
func Execute(ctx context.Context, spec *Spec) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	switch spec.Mode {
	case ModeBench:
		return execBench(ctx, spec)
	case ModeFault:
		return execFault(ctx, spec)
	case ModeLockstep:
		return execLockstep(ctx, spec)
	}
	return nil, fmt.Errorf("campaign: unknown mode %q", spec.Mode)
}

// execBench runs one workload under one machine configuration with the
// experiment harness's measurement policy (the same warmup and budget
// handling the figure runners use), so a campaign bench result is
// interchangeable with a sequential chexbench run.
func execBench(ctx context.Context, spec *Spec) (*Result, error) {
	p := workload.ByName(spec.Workload)
	o := &experiments.Options{
		Scale:     spec.scale(),
		MaxInsts:  spec.MaxInsts,
		MaxCycles: spec.MaxCycles,
	}
	res, err := experiments.RunOne(ctx, p, spec.config(), o)
	if err != nil {
		return nil, err
	}
	return &Result{
		Schema:   ResultSchema,
		Mode:     ModeBench,
		Workload: spec.Workload,
		Variant:  VariantName(spec.config().Variant),
		Bench:    benchResult(res),
	}, nil
}

// execFault runs one fault-injection campaign cell. faultinject.Run is
// already deterministic and panic-isolated per run; per-run RNG seeds
// derive from (seed, workload, variant, site), so cells executed here —
// concurrently, out of order, or recalled from the cache — merge back into
// the byte-identical sequential report.
func execFault(ctx context.Context, spec *Spec) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep, err := faultinject.Run(*spec.Fault)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Schema:  ResultSchema,
		Mode:    ModeFault,
		Variant: spec.variantName(),
		Fault:   rep,
	}
	if len(spec.Fault.Workloads) == 1 {
		r.Workload = spec.Fault.Workloads[0]
	}
	return r, nil
}

// execLockstep runs one differential-fuzzing sweep shard. The report is a
// pure function of the spec (per-program seeds derive from the sweep seed
// and the global program index), so shards cache, shard, and merge like
// any other cell; interrupted sweeps propagate the context error and are
// never cached. Counters land on the process-wide lockstep metrics that
// chexd exposes on /metrics.
func execLockstep(ctx context.Context, spec *Spec) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep, err := lockstep.Sweep(ctx, *spec.Lockstep, lockstep.SweepOptions{
		Metrics: lockstep.SharedMetrics,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Schema:   ResultSchema,
		Mode:     ModeLockstep,
		Lockstep: rep,
	}, nil
}
