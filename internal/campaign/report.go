package campaign

import (
	"fmt"
	"strings"
)

// FormatReport renders a per-job campaign report. Wall-time and
// instructions-per-second come from the host clock the pool was given, so
// cache hits are visibly distinguishable from real simulations: a served
// hit shows `cache` as its source, ~0 wall time, and no IPS (nothing was
// simulated), while a real run shows its measured simulation throughput.
func FormatReport(jobs []*Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s%-14s%-11s%-8s%-7s%12s%12s%8s%10s%12s\n",
		"id", "workload", "variant", "state", "source", "cycles", "insts", "IPC", "wall(s)", "Kinst/s")
	var wallNS int64
	var hits, runs, failed int
	for _, j := range jobs {
		st := j.Status()
		source := "run"
		if st.Cached {
			source = "cache"
			hits++
		} else if st.State == JobDone {
			runs++
		}
		wallNS += j.WallNS()

		cycles, insts, ipc := "-", "-", "-"
		if res, _ := j.Result(); res != nil && res.Bench != nil {
			cycles = fmt.Sprintf("%d", res.Bench.Cycles)
			insts = fmt.Sprintf("%d", res.Bench.Insts)
			ipc = fmt.Sprintf("%.3f", res.Bench.IPC)
		}
		wall, ips := "-", "-"
		if ns := j.WallNS(); ns > 0 {
			wall = fmt.Sprintf("%.3f", float64(ns)/1e9)
			if res, _ := j.Result(); res != nil && res.Bench != nil && !st.Cached {
				ips = fmt.Sprintf("%.1f", float64(res.Bench.Insts)/(float64(ns)/1e9)/1e3)
			}
		} else if st.Cached {
			wall = "0.000"
		}
		state := string(st.State)
		if st.State == JobFailed {
			failed++
			state = "FAILED"
		}
		fmt.Fprintf(&b, "%-4d%-14s%-11s%-8s%-7s%12s%12s%8s%10s%12s\n",
			st.ID, st.Workload, st.Variant, state, source, cycles, insts, ipc, wall, ips)
		if st.Error != "" {
			fmt.Fprintf(&b, "     error: %s\n", st.Error)
		}
	}
	fmt.Fprintf(&b, "\n%d jobs: %d simulated, %d cache hits, %d failed; total simulation wall time %.3fs\n",
		len(jobs), runs, hits, failed, float64(wallNS)/1e9)
	return b.String()
}
