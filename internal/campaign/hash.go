package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"chex86/internal/faultinject"
	"chex86/internal/lockstep"
	"chex86/internal/tracker"
	"chex86/internal/workload"
)

// Key computes the spec's content address: a SHA-256 over labeled,
// length-delimited sections so no two distinct inputs can collide by
// concatenation:
//
//   - "spec": the key-relevant spec fields in canonical JSON — mode,
//     workload name, scale, instruction/cycle budgets, and the fully
//     resolved machine configuration (bench) or normalized fault campaign
//     configuration (fault). TimeoutMS is deliberately excluded.
//   - "workload": the deterministic object-file bytes of every program the
//     job simulates, at the job's scale. A catalog edit changes the bytes
//     and therefore the key.
//   - "rules": the rule-database export (the same byte-stable form
//     `ruledump -json` emits). A Table-I change invalidates everything, as
//     it must — every capability decision flows through the rules.
//
// Equal specs yield equal keys across processes and machines; the key is
// the cache filename.
func (s *Spec) Key() (string, error) {
	if err := s.validate(); err != nil {
		return "", err
	}
	h := sha256.New()
	section := func(label string, data []byte) {
		fmt.Fprintf(h, "%s:%d\n", label, len(data))
		h.Write(data)
	}

	spec, err := s.canonicalSpec()
	if err != nil {
		return "", err
	}
	section("spec", spec)

	progs, err := s.programBytes()
	if err != nil {
		return "", err
	}
	for _, pb := range progs {
		section("workload", pb)
	}

	section("rules", ruleBytes())
	return hex.EncodeToString(h.Sum(nil)), nil
}

// canonicalSpec renders the key-relevant spec fields deterministically.
func (s *Spec) canonicalSpec() ([]byte, error) {
	switch s.Mode {
	case ModeBench:
		cfg := s.config()
		return json.Marshal(struct {
			Mode      Mode            `json:"mode"`
			Workload  string          `json:"workload"`
			Scale     float64         `json:"scale"`
			MaxInsts  uint64          `json:"maxInsts"`
			MaxCycles uint64          `json:"maxCycles"`
			Config    json.RawMessage `json:"config"`
		}{s.Mode, s.Workload, s.scale(), s.MaxInsts, s.MaxCycles, cfg.CanonicalJSON()})
	case ModeFault:
		return json.Marshal(struct {
			Mode  Mode               `json:"mode"`
			Fault faultinject.Config `json:"fault"`
		}{s.Mode, s.Fault.Normalized()})
	case ModeLockstep:
		return json.Marshal(struct {
			Mode     Mode               `json:"mode"`
			Lockstep lockstep.SweepSpec `json:"lockstep"`
		}{s.Mode, s.Lockstep.Normalized()})
	}
	return nil, fmt.Errorf("campaign: unknown mode %q", s.Mode)
}

// programBytes returns the deterministic encodings of every guest program
// the spec simulates, in a fixed order.
func (s *Spec) programBytes() ([][]byte, error) {
	switch s.Mode {
	case ModeBench:
		b, err := workload.ByName(s.Workload).ProgramBytes(s.scale())
		if err != nil {
			return nil, err
		}
		return [][]byte{b}, nil
	case ModeFault:
		cfg := s.Fault.Normalized()
		var out [][]byte
		for _, w := range cfg.Workloads {
			p := workload.ByName(w)
			if p == nil {
				return nil, fmt.Errorf("campaign: unknown workload %q", w)
			}
			b, err := p.ProgramBytes(cfg.Scale)
			if err != nil {
				return nil, err
			}
			out = append(out, b)
		}
		return out, nil
	case ModeLockstep:
		// Lockstep programs are generated, not cataloged: every guest
		// program derives from the sweep seed already hashed in the spec
		// section, so there are no workload bytes to fold in.
		return nil, nil
	}
	return nil, fmt.Errorf("campaign: unknown mode %q", s.Mode)
}

// ruleBytes returns the byte-stable rule-database export, computed once:
// the database is a process-wide constant (NewRuleDB always returns the
// built-in Table-I rules).
var ruleBytes = sync.OnceValue(func() []byte {
	data, err := json.Marshal(tracker.NewRuleDB().Export())
	if err != nil {
		panic(fmt.Sprintf("campaign: rule export marshal: %v", err))
	}
	return data
})
