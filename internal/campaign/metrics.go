package campaign

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Metrics counts pool activity. All counters are monotonic and safe for
// concurrent update; Snapshot gives a consistent-enough read for reports
// and the chexd /metrics endpoint.
type Metrics struct {
	Submitted   atomic.Int64 // jobs accepted by Submit
	Deduped     atomic.Int64 // submissions coalesced onto an in-flight job
	CacheHits   atomic.Int64 // submissions satisfied from the result cache
	CacheMisses atomic.Int64 // submissions that had to simulate
	Started     atomic.Int64 // executions begun (retries count again)
	Completed   atomic.Int64 // jobs finished successfully
	Failed      atomic.Int64 // jobs finished in error
	Retried     atomic.Int64 // transient-error retries
	Panics      atomic.Int64 // executor panics caught by the isolation guard
}

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	Submitted   int64 `json:"submitted"`
	Deduped     int64 `json:"deduped"`
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Started     int64 `json:"started"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Retried     int64 `json:"retried"`
	Panics      int64 `json:"panics"`
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Submitted:   m.Submitted.Load(),
		Deduped:     m.Deduped.Load(),
		CacheHits:   m.CacheHits.Load(),
		CacheMisses: m.CacheMisses.Load(),
		Started:     m.Started.Load(),
		Completed:   m.Completed.Load(),
		Failed:      m.Failed.Load(),
		Retried:     m.Retried.Load(),
		Panics:      m.Panics.Load(),
	}
}

// Render writes the counters in the text exposition format scrapers
// expect: one `name value` line per counter, in fixed order.
func (s MetricsSnapshot) Render() string {
	var b strings.Builder
	row := func(name string, v int64) {
		fmt.Fprintf(&b, "campaign_%s %d\n", name, v)
	}
	row("jobs_submitted", s.Submitted)
	row("jobs_deduped", s.Deduped)
	row("cache_hits", s.CacheHits)
	row("cache_misses", s.CacheMisses)
	row("runs_started", s.Started)
	row("jobs_completed", s.Completed)
	row("jobs_failed", s.Failed)
	row("runs_retried", s.Retried)
	row("panics_caught", s.Panics)
	return b.String()
}
