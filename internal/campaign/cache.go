package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Entry is the on-disk form of one cached result. The file is canonical
// JSON (struct fields in declaration order, two-space indent, trailing
// newline): writing the same result twice produces byte-identical files,
// so sweeps can diff cache directories across runs.
type Entry struct {
	Schema string  `json:"schema"` // "chex-campaign-cache/v1"
	Key    string  `json:"key"`
	Spec   Spec    `json:"spec"` // provenance: what produced the result
	Result *Result `json:"result"`
}

// EntrySchema versions the on-disk cache format. Bump it to orphan (not
// corrupt) old caches: entries with a different schema are treated as
// misses.
const EntrySchema = "chex-campaign-cache/v1"

// Cache is a content-addressed result store: one JSON file per key under a
// directory, with an in-memory read-through index. Safe for concurrent use
// by multiple goroutines; concurrent use of one directory by multiple
// processes is safe too (writes are atomic rename, losers of a racing
// write overwrite with identical bytes).
type Cache struct {
	dir string

	mu  sync.Mutex
	mem map[string]*Result
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("campaign: empty cache dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open cache: %w", err)
	}
	return &Cache{dir: dir, mem: make(map[string]*Result)}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// validKey rejects anything that is not a lowercase hex digest, so a
// malicious or corrupted key can never escape the cache directory.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// Get returns the cached result for key, or (nil, false) on a miss.
// Unreadable, corrupt, or wrong-schema entries are misses, not errors: the
// cache is a pure accelerator and the simulation can always be re-run.
func (c *Cache) Get(key string) (*Result, bool) {
	if !validKey(key) {
		return nil, false
	}
	c.mu.Lock()
	if r, ok := c.mem[key]; ok {
		c.mu.Unlock()
		return r, true
	}
	c.mu.Unlock()

	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != EntrySchema || e.Key != key || e.Result == nil {
		return nil, false
	}
	c.mu.Lock()
	c.mem[key] = e.Result
	c.mu.Unlock()
	return e.Result, true
}

// Put stores a result under key, atomically and crash-safely: the entry
// is written to a temporary file in the same directory, fsynced, renamed
// into place, and the parent directory is fsynced — so readers never
// observe a torn entry and a host crash right after Put returns cannot
// lose or truncate it. (A crash *during* Put can at worst leave a stale
// tmp file or a truncated entry, and truncated/corrupt entries are read
// as misses, never as errors.)
func (c *Cache) Put(key string, spec Spec, r *Result) error {
	if !validKey(key) {
		return fmt.Errorf("campaign: invalid cache key %q", key)
	}
	data, err := MarshalEntry(&Entry{Schema: EntrySchema, Key: key, Spec: spec, Result: r})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("campaign: cache put: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("campaign: cache put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("campaign: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: cache put: %w", err)
	}
	if err := os.Rename(tmpName, c.path(key)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("campaign: cache put: %w", err)
	}
	if err := c.syncDir(); err != nil {
		return err
	}
	c.mu.Lock()
	c.mem[key] = r
	c.mu.Unlock()
	return nil
}

// syncDir fsyncs the cache directory so a completed rename is durable.
func (c *Cache) syncDir() error {
	d, err := os.Open(c.dir)
	if err != nil {
		return fmt.Errorf("campaign: cache sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("campaign: cache sync dir: %w", err)
	}
	return nil
}

// Lookup implements ResultCache over the on-disk store (the spec is not
// needed for lookups; the key is the content address).
func (c *Cache) Lookup(_ Spec, key string) (*Result, bool) { return c.Get(key) }

// Store implements ResultCache over the on-disk store.
func (c *Cache) Store(spec Spec, key string, r *Result) error { return c.Put(key, spec, r) }

// Keys lists every key present on disk, sorted.
func (c *Cache) Keys() ([]string, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		key, isJSON := strings.CutSuffix(name, ".json")
		if isJSON && validKey(key) {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Len counts on-disk entries.
func (c *Cache) Len() (int, error) {
	keys, err := c.Keys()
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	return len(keys), nil
}

// MarshalEntry renders a cache entry in its canonical byte form.
func MarshalEntry(e *Entry) ([]byte, error) {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: marshal entry: %w", err)
	}
	return append(data, '\n'), nil
}
