package objfile

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"chex86/internal/asm"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/mem"
)

// sampleProgram builds a program exercising every section: text with all
// operand kinds, globals (rw + ro), relocations, data words, labels.
func sampleProgram(t *testing.T) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	g := uint64(mem.GlobalBase)
	b.Global("table", g, 256)
	b.GlobalRO("konst", g+256, 64)
	b.Global("ptr", g+320, 8)
	b.Reloc(g+320, "table")
	b.DataU64(g+256, 0xDEADBEEF)

	b.MovRI(isa.RDI, 64)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.RBX, isa.RAX)
	b.Label("loop")
	b.StoreIdx(isa.RBX, isa.RCX, 8, 0, isa.RCX)
	b.AddRI(isa.RCX, 1)
	b.CmpRI(isa.RCX, 8)
	b.Jcc(isa.CondL, "loop")
	b.LoadB(isa.RDX, isa.RBX, 3)
	b.StoreB(isa.RBX, 4, isa.RDX)
	b.Lea(isa.RSI, isa.MemOp(isa.RBX, 16))
	b.Hlt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestRoundTrip(t *testing.T) {
	p := sampleProgram(t)
	q, err := Decode(Encode(p))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if q.TextBase != p.TextBase {
		t.Errorf("TextBase %#x != %#x", q.TextBase, p.TextBase)
	}
	if !reflect.DeepEqual(q.Insts, p.Insts) {
		t.Errorf("instruction streams differ")
	}
	if !reflect.DeepEqual(q.Globals, p.Globals) {
		t.Errorf("symbol tables differ: %+v vs %+v", q.Globals, p.Globals)
	}
	if !reflect.DeepEqual(q.Relocs, p.Relocs) {
		t.Errorf("relocation sections differ")
	}
	if !reflect.DeepEqual(q.Data, p.Data) {
		t.Errorf("data sections differ")
	}
	if !reflect.DeepEqual(q.Labels, p.Labels) {
		t.Errorf("label sections differ")
	}
	// The address index must be rebuilt: every instruction reachable.
	for i := range q.Insts {
		if q.At(q.Insts[i].Addr) == nil {
			t.Fatalf("decoded program lost address index at %#x", q.Insts[i].Addr)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	p := sampleProgram(t)
	a, b := Encode(p), Encode(p)
	if !bytes.Equal(a, b) {
		t.Fatal("Encode is not deterministic (label ordering?)")
	}
}

func TestSaveLoad(t *testing.T) {
	p := sampleProgram(t)
	path := filepath.Join(t.TempDir(), "prog.chx")
	if err := Save(path, p); err != nil {
		t.Fatalf("save: %v", err)
	}
	q, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(q.Insts) != len(p.Insts) || len(q.Globals) != len(p.Globals) {
		t.Fatalf("loaded program lost content: %d/%d insts, %d/%d globals",
			len(q.Insts), len(p.Insts), len(q.Globals), len(p.Globals))
	}
}

// TestCorruptionDetected: flipping any single byte of the image must fail
// decoding (the CRC catches it), never yield a silently different program.
func TestCorruptionDetected(t *testing.T) {
	img := Encode(sampleProgram(t))
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 64; trial++ {
		bad := append([]byte(nil), img...)
		i := rng.Intn(len(bad))
		bad[i] ^= 1 << uint(rng.Intn(8))
		if _, err := Decode(bad); err == nil {
			t.Fatalf("flip at byte %d decoded without error", i)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	img := Encode(sampleProgram(t))
	for _, n := range []int{0, 1, len(Magic), len(img) / 2, len(img) - 1} {
		if _, err := Decode(img[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", n)
		}
	}
}

func TestVersionRejected(t *testing.T) {
	p := sampleProgram(t)
	img := Encode(p)
	// Byte right after the magic is the (single-byte) version varint.
	img[len(Magic)] = Version + 1
	// Re-seal the CRC so only the version check can object.
	img = reseal(img)
	if _, err := Decode(img); err == nil {
		t.Fatal("future format version decoded without error")
	}
}

func TestImplausibleCountRejected(t *testing.T) {
	// A huge instruction count with a valid CRC must be rejected before
	// any allocation of that size is attempted.
	var w imageWriter
	w.raw(Magic)
	w.uvar(Version)
	w.uvar(0x400000)
	w.uvar(1 << 40) // .text claims 2^40 instructions
	img := reseal(append(w.buf.Bytes(), 0, 0, 0, 0))
	if _, err := Decode(img); err == nil {
		t.Fatal("implausible count decoded without error")
	}
}

// reseal recomputes the trailing CRC of a (possibly modified) image.
func reseal(img []byte) []byte {
	body := img[:len(img)-4]
	out := append([]byte(nil), body...)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(body))
	return append(out, tail[:]...)
}

// TestOperandPropertyRoundTrip: arbitrary operand encodings survive the
// codec (property-based, all four kinds, full value ranges).
func TestOperandPropertyRoundTrip(t *testing.T) {
	f := func(kind uint8, reg uint8, imm int64, base, index uint8, scale uint8, disp int64) bool {
		o := isa.Operand{Kind: isa.OperandKind(kind % 4)}
		switch o.Kind {
		case isa.OpReg:
			o.Reg = isa.Reg(reg)
		case isa.OpImm:
			o.Imm = imm
		case isa.OpMem:
			o.Mem = isa.MemRef{Base: isa.Reg(base), Index: isa.Reg(index), Scale: scale, Disp: disp}
		}
		var w imageWriter
		w.operand(&o)
		r := &imageReader{buf: w.buf.Bytes()}
		var got isa.Operand
		r.operand(&got)
		return r.err == nil && reflect.DeepEqual(got, o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsString is a smoke test for the tooling summary.
func TestStatsString(t *testing.T) {
	s := Summarize(sampleProgram(t))
	if s.Insts == 0 || s.Globals != 3 || s.Relocs != 1 || s.Bytes == 0 {
		t.Fatalf("unexpected stats: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}
