package objfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"chex86/internal/isa"
)

// imageWriter builds the object image. All integers are varints; strings
// are length-prefixed UTF-8.
type imageWriter struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (w *imageWriter) raw(s string)  { w.buf.WriteString(s) }
func (w *imageWriter) byte(b byte)   { w.buf.WriteByte(b) }
func (w *imageWriter) uvar(v uint64) { w.buf.Write(w.tmp[:binary.PutUvarint(w.tmp[:], v)]) }
func (w *imageWriter) svar(v int64)  { w.buf.Write(w.tmp[:binary.PutVarint(w.tmp[:], v)]) }

func (w *imageWriter) str(s string) {
	w.uvar(uint64(len(s)))
	w.buf.WriteString(s)
}

func (w *imageWriter) operand(o *isa.Operand) {
	w.byte(byte(o.Kind))
	switch o.Kind {
	case isa.OpReg:
		w.byte(byte(o.Reg))
	case isa.OpImm:
		w.svar(o.Imm)
	case isa.OpMem:
		w.byte(byte(o.Mem.Base))
		w.byte(byte(o.Mem.Index))
		w.byte(o.Mem.Scale)
		w.svar(o.Mem.Disp)
	}
}

func (w *imageWriter) inst(in *isa.Inst) {
	w.byte(byte(in.Op))
	w.byte(byte(in.Cond))
	w.byte(in.EncLen)
	w.uvar(in.Addr)
	w.uvar(in.Target)
	w.operand(&in.Dst)
	w.operand(&in.Src)
}

// imageReader parses the object image. The first malformed field latches
// err; subsequent reads return zero values so callers can decode a whole
// section and check err once.
type imageReader struct {
	buf []byte
	pos int
	err error
}

func (r *imageReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("objfile: "+format, args...)
	}
}

func (r *imageReader) rawN(n int) []byte {
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail("truncated at byte %d (need %d more)", r.pos, n)
		return make([]byte, n)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *imageReader) byte() byte {
	return r.rawN(1)[0]
}

func (r *imageReader) uvar() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("bad varint at byte %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *imageReader) svar() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("bad signed varint at byte %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *imageReader) str() string {
	n := r.uvar()
	if n > uint64(len(r.buf)-r.pos) {
		r.fail("string length %d exceeds remaining image", n)
		return ""
	}
	return string(r.rawN(int(n)))
}

// count reads a section element count, rejecting values that could not fit
// in the remaining image (corruption defense ahead of the allocation).
func (r *imageReader) count(what string) uint64 {
	n := r.uvar()
	if n > maxSaneCount || n > uint64(len(r.buf)-r.pos) {
		r.fail("implausible %s count %d", what, n)
		return 0
	}
	return n
}

func (r *imageReader) operand(o *isa.Operand) {
	o.Kind = isa.OperandKind(r.byte())
	switch o.Kind {
	case isa.OpNone:
	case isa.OpReg:
		o.Reg = isa.Reg(r.byte())
	case isa.OpImm:
		o.Imm = r.svar()
	case isa.OpMem:
		o.Mem.Base = isa.Reg(r.byte())
		o.Mem.Index = isa.Reg(r.byte())
		o.Mem.Scale = r.byte()
		o.Mem.Disp = r.svar()
	default:
		r.fail("unknown operand kind %d", o.Kind)
	}
}

func (r *imageReader) inst(in *isa.Inst) {
	in.Op = isa.MacroOpcode(r.byte())
	in.Cond = isa.Cond(r.byte())
	in.EncLen = r.byte()
	in.Addr = r.uvar()
	in.Target = r.uvar()
	r.operand(&in.Dst)
	r.operand(&in.Src)
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
