// Package objfile serializes guest programs to a compact on-disk object
// format and loads them back.
//
// CHEx86 bootstraps its shadow capability table from exactly the metadata a
// stripped-but-relocatable binary still carries: the symbol table (one
// capability per global data object, Section IV-C) and the relocation
// entries (shadow-alias seeds for pointer slots materialized through
// constant pools, Section V-B). The container therefore mirrors the
// sections a loader would hand to the CHEx86 microcode engine:
//
//	.text    the instruction stream (variable-length encoded)
//	.symtab  global objects: name, address, size, writability
//	.reloc   pointer slots the loader fills with a global's address
//	.data    initialized data words
//	.labels  resolved code labels (debug aid; not needed to execute)
//
// The format is deliberately simple — little-endian, varint-packed, with a
// trailing CRC-32 over the whole image — so a round trip is cheap to verify
// and corruption is detected at load rather than as a mystery crash inside
// the simulated machine.
package objfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"chex86/internal/asm"
	"chex86/internal/isa"
)

// Magic identifies a CHEx86 object image.
const Magic = "CHX86OBJ"

// Version is the current format version. Readers reject images written by
// a different major version.
const Version = 1

// maxSaneCount bounds per-section element counts while decoding so a
// corrupt or adversarial length field cannot drive allocation to OOM
// before the CRC check is reached.
const maxSaneCount = 1 << 26

// Encode serializes the program to its object-image byte form.
func Encode(p *asm.Program) []byte {
	var w imageWriter
	w.raw(Magic)
	w.uvar(Version)
	w.uvar(p.TextBase)

	// .text
	w.uvar(uint64(len(p.Insts)))
	for i := range p.Insts {
		w.inst(&p.Insts[i])
	}

	// .symtab
	w.uvar(uint64(len(p.Globals)))
	for _, g := range p.Globals {
		w.str(g.Name)
		w.uvar(g.Addr)
		w.uvar(g.Size)
		var flags byte
		if g.ReadOnly {
			flags |= 1
		}
		w.byte(flags)
	}

	// .reloc
	w.uvar(uint64(len(p.Relocs)))
	for _, r := range p.Relocs {
		w.uvar(r.Slot)
		w.str(r.Target)
	}

	// .data
	w.uvar(uint64(len(p.Data)))
	for _, d := range p.Data {
		w.uvar(d.Addr)
		w.uvar(d.Val)
	}

	// .labels
	w.uvar(uint64(len(p.Labels)))
	for _, name := range sortedKeys(p.Labels) {
		w.str(name)
		w.uvar(p.Labels[name])
	}

	sum := crc32.ChecksumIEEE(w.buf.Bytes())
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	w.buf.Write(tail[:])
	return w.buf.Bytes()
}

// Decode parses an object image produced by Encode and reconstructs the
// runnable program, including the address index used by the front end.
func Decode(img []byte) (*asm.Program, error) {
	if len(img) < len(Magic)+4 {
		return nil, fmt.Errorf("objfile: image truncated (%d bytes)", len(img))
	}
	body, tail := img[:len(img)-4], img[len(img)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("objfile: checksum mismatch (image %#x, computed %#x)", want, got)
	}
	r := &imageReader{buf: body}
	if string(r.rawN(len(Magic))) != Magic {
		return nil, fmt.Errorf("objfile: bad magic")
	}
	if v := r.uvar(); v != Version {
		return nil, fmt.Errorf("objfile: unsupported format version %d (have %d)", v, Version)
	}

	p := &asm.Program{TextBase: r.uvar()}

	n := r.count("instruction")
	p.Insts = make([]isa.Inst, n)
	for i := range p.Insts {
		r.inst(&p.Insts[i])
	}

	n = r.count("symbol")
	p.Globals = make([]asm.Global, n)
	for i := range p.Globals {
		g := &p.Globals[i]
		g.Name = r.str()
		g.Addr = r.uvar()
		g.Size = r.uvar()
		g.ReadOnly = r.byte()&1 != 0
	}

	n = r.count("relocation")
	p.Relocs = make([]asm.Reloc, n)
	for i := range p.Relocs {
		p.Relocs[i].Slot = r.uvar()
		p.Relocs[i].Target = r.str()
	}

	n = r.count("data word")
	p.Data = make([]asm.DataInit, n)
	for i := range p.Data {
		p.Data[i].Addr = r.uvar()
		p.Data[i].Val = r.uvar()
	}

	n = r.count("label")
	p.Labels = make(map[string]uint64, n)
	for i := 0; i < int(n); i++ {
		name := r.str()
		p.Labels[name] = r.uvar()
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.buf) {
		return nil, fmt.Errorf("objfile: %d trailing bytes after last section", len(r.buf)-r.pos)
	}

	byAddr := make(map[uint64]int, len(p.Insts))
	for i := range p.Insts {
		byAddr[p.Insts[i].Addr] = i
	}
	if err := asm.Reindex(p, byAddr); err != nil {
		return nil, fmt.Errorf("objfile: %w", err)
	}
	return p, nil
}

// Write streams the encoded image to w.
func Write(w io.Writer, p *asm.Program) error {
	_, err := w.Write(Encode(p))
	return err
}

// Read consumes r to EOF and decodes the image.
func Read(r io.Reader) (*asm.Program, error) {
	img, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(img)
}

// Save writes the program image to path.
func Save(path string, p *asm.Program) error {
	return os.WriteFile(path, Encode(p), 0o644)
}

// Load reads and decodes the program image at path.
func Load(path string) (*asm.Program, error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(img)
}

// Stats summarizes an encoded image for tooling output.
type Stats struct {
	Bytes   int
	Insts   int
	Globals int
	Relocs  int
	Data    int
	Labels  int
}

// Summarize reports section element counts and total image size.
func Summarize(p *asm.Program) Stats {
	return Stats{
		Bytes:   len(Encode(p)),
		Insts:   len(p.Insts),
		Globals: len(p.Globals),
		Relocs:  len(p.Relocs),
		Data:    len(p.Data),
		Labels:  len(p.Labels),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%d bytes: %d insts, %d symbols, %d relocs, %d data words, %d labels",
		s.Bytes, s.Insts, s.Globals, s.Relocs, s.Data, s.Labels)
}
