// External tests: everything here goes through the exported Encode/Decode
// API against real cataloged workloads. Kept in a separate test package so
// internal/workload may depend on objfile without a test-only import cycle.
package objfile_test

import (
	"reflect"
	"testing"

	"chex86/internal/asm"
	"chex86/internal/decode"
	"chex86/internal/objfile"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// TestWorkloadRoundTrip: every cataloged benchmark survives a round trip
// bit-exactly — the loader path chexsim -obj uses.
func TestWorkloadRoundTrip(t *testing.T) {
	for _, prof := range workload.Catalog() {
		p, err := prof.Build(0.05)
		if err != nil {
			t.Fatalf("%s: build: %v", prof.Name, err)
		}
		q, err := objfile.Decode(objfile.Encode(p))
		if err != nil {
			t.Fatalf("%s: decode: %v", prof.Name, err)
		}
		if !reflect.DeepEqual(q.Insts, p.Insts) || !reflect.DeepEqual(q.Globals, p.Globals) ||
			!reflect.DeepEqual(q.Relocs, p.Relocs) || !reflect.DeepEqual(q.Data, p.Data) {
			t.Errorf("%s: round trip not bit-exact", prof.Name)
		}
	}
}

// TestDecodedProgramSimulatesIdentically: the decoded image must be
// indistinguishable from the in-memory program to the whole machine —
// same cycles, same committed instructions, same injected µops.
func TestDecodedProgramSimulatesIdentically(t *testing.T) {
	prof := workload.ByName("mcf")
	p, err := prof.Build(0.05)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	q, err := objfile.Decode(objfile.Encode(p))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	run := func(prog *asm.Program) *pipeline.Result {
		cfg := pipeline.DefaultConfig()
		cfg.Variant = decode.VariantMicrocodePrediction
		cfg.MaxInsts = 150_000
		sim := pipeline.New(prog, cfg, 1)
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a, b := run(p), run(q)
	if a.Cycles != b.Cycles || a.MacroInsts != b.MacroInsts || a.InjectedUops != b.InjectedUops {
		t.Fatalf("decoded image diverges: cycles %d vs %d, insts %d vs %d, injected %d vs %d",
			a.Cycles, b.Cycles, a.MacroInsts, b.MacroInsts, a.InjectedUops, b.InjectedUops)
	}
}
