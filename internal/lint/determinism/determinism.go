// Package determinism lints simulator packages for nondeterminism
// hazards. The simulator's contract is that equal seeds and equal
// configurations produce byte-identical outputs (reports, traces, JSON) —
// fault-injection campaigns, the experiment harness, and the ptrflow
// cross-check all diff outputs across runs, so a wall-clock read or an
// unsorted map walk that feeds a writer silently breaks them.
//
// Five checks:
//
//   - time-now: calls to (or references of) time.Now, time.Since, or
//     time.Until. Simulated time must come from the cycle counter;
//     wall-clock values embedded in output change every run.
//
//   - global-rand: use of math/rand's package-level functions (rand.Intn,
//     rand.Shuffle, rand.Seed, ...), whose stream is shared, racy, and —
//     since Go 1.20 — auto-seeded. Constructing explicit seeded
//     generators with rand.New(rand.NewSource(seed)) is allowed.
//
//   - map-range-output: a `for ... range m` over a map whose body calls
//     an output or serialization sink (fmt printing, Write*, json
//     Marshal/Encode). Go randomizes map iteration order, so such loops
//     emit differently ordered bytes on every run; iterate a sorted key
//     slice instead.
//
//   - map-format: a map-typed value passed to a %v (or %+v) verb of a
//     Printf-family formatter. fmt orders map keys with an internal
//     comparator that falls back to pointer order for reference-typed
//     keys, so the rendered bytes can differ across runs; render sorted
//     keys explicitly instead.
//
//   - pointer-format: a %p verb in a Printf-family format string. %p
//     renders a runtime address, which changes with every process (ASLR,
//     allocator layout), so any output it feeds diverges run to run;
//     print a stable identifier, index, or content digest instead.
//
// A finding is waived by a `//determinism:ok` comment on the same line
// (or the line above) — the waiver is for call sites that are provably
// order-insensitive or deliberately wall-clock-bound.
//
// The linter is purely stdlib (go/ast + go/types with a stub importer),
// so it runs in hermetic build environments with no module cache. Types
// are resolved best-effort: identifiers whose types come from other
// packages degrade to "unknown" and are skipped, which keeps the checks
// conservative (no false positives from partial information).
package determinism

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Check names.
const (
	CheckTimeNow        = "time-now"
	CheckGlobalRand     = "global-rand"
	CheckMapRangeOutput = "map-range-output"
	CheckMapFormat      = "map-format"
	CheckPointerFormat  = "pointer-format"
)

// Finding is one determinism hazard.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Msg)
}

// randAllowed lists the math/rand selectors that construct explicit
// generators instead of using the shared global stream.
var randAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// Types and interfaces, not stream draws.
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
}

// sinkNames are method/function selectors treated as output or
// serialization sinks inside a map-range body.
var sinkNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Marshal": true, "MarshalIndent": true, "Encode": true,
}

// formatArgIdx maps Printf-family selector names to the position of
// their format-string argument; operands follow it.
var formatArgIdx = map[string]int{
	"Printf": 0, "Sprintf": 0, "Errorf": 0, "Logf": 0, "Fatalf": 0, "Panicf": 0,
	"Fprintf": 1, "Appendf": 1,
}

// LintDir lints the non-test Go files of one package directory.
func LintDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Best-effort typecheck with stub imports: local types resolve fully,
	// cross-package types degrade to invalid (and are skipped).
	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
	conf := types.Config{
		Error:            func(error) {}, // partial information is fine
		Importer:         stubImporter{},
		FakeImportC:      true,
		IgnoreFuncBodies: false,
	}
	conf.Check(dir, fset, files, info) //determinism best-effort: errors ignored

	var out []Finding
	for _, f := range files {
		out = append(out, lintFile(fset, f, info)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// stubImporter satisfies imports with empty packages so typechecking can
// proceed without a module cache.
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	return pkg, nil
}

func lintFile(fset *token.FileSet, f *ast.File, info *types.Info) []Finding {
	waived := waivedLines(fset, f)
	timeName := importName(f, "time")
	randName := importName(f, "math/rand")

	var out []Finding
	report := func(pos token.Pos, check, msg string) {
		p := fset.Position(pos)
		if waived[p.Line] {
			return
		}
		out = append(out, Finding{Pos: p, Check: check, Msg: msg})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			x, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			if timeName != "" && x.Name == timeName {
				switch n.Sel.Name {
				case "Now", "Since", "Until":
					report(n.Pos(), CheckTimeNow,
						fmt.Sprintf("wall-clock read time.%s breaks run-to-run reproducibility; derive timing from the cycle counter or inject the stamp from the caller", n.Sel.Name))
				}
			}
			if randName != "" && x.Name == randName && !randAllowed[n.Sel.Name] {
				report(n.Pos(), CheckGlobalRand,
					fmt.Sprintf("global math/rand stream rand.%s is auto-seeded and shared; use rand.New(rand.NewSource(seed))", n.Sel.Name))
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fi, ok := formatArgIdx[sel.Sel.Name]
			if !ok || len(n.Args) <= fi {
				return true
			}
			lit, ok := n.Args[fi].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			for vi, spec := range verbSpecs(format) {
				if spec == "%p" || spec == "%+p" {
					// The %p verb is a hazard regardless of its operand —
					// report it even when the operand list runs short.
					report(lit.Pos(), CheckPointerFormat,
						"%p renders a runtime address, which differs on every run (ASLR, allocator layout); print a stable identifier, index, or content digest instead")
					continue
				}
				argIdx := fi + 1 + vi
				if argIdx >= len(n.Args) {
					break
				}
				if (spec == "%v" || spec == "%+v") && isMapType(info, n.Args[argIdx]) {
					report(n.Args[argIdx].Pos(), CheckMapFormat,
						fmt.Sprintf("map-typed operand formatted with %s: fmt's key ordering falls back to pointer order for reference-typed keys; render sorted keys explicitly", spec))
				}
			}
		case *ast.RangeStmt:
			if !isMapType(info, n.X) {
				return true
			}
			if sink := findSink(n.Body); sink != nil {
				sel := sink.Fun.(*ast.SelectorExpr)
				report(n.Pos(), CheckMapRangeOutput,
					fmt.Sprintf("map iteration order is randomized but this loop feeds %s (line %d); iterate a sorted key slice", sel.Sel.Name, fset.Position(sink.Pos()).Line))
			}
		}
		return true
	})
	return out
}

// waivedLines collects the lines covered by //determinism:ok comments:
// the comment's own line and the line below it (for stand-alone waiver
// comments above the offending statement).
func waivedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	waived := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, "determinism:ok") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			waived[line] = true
			waived[line+1] = true
		}
	}
	return waived
}

// importName returns the file-local name of an imported package path, or
// "" if the file does not import it.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		if i := strings.LastIndexByte(p, '/'); i >= 0 {
			return p[i+1:]
		}
		return p
	}
	return ""
}

// verbSpecs parses a Printf-style format string into the normalized
// verb of each operand-consuming directive, in operand order: "%v",
// "%+v", "%d", ... A '*' width or precision consumes an operand of its
// own ("*"). Explicit operand indexes (%[1]v) abort parsing to nil —
// mis-mapping operands would misreport, so the check stays silent.
func verbSpecs(format string) []string {
	var out []string
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++ // literal %%
			continue
		}
		hasPlus := false
	directive:
		for i < len(format) {
			switch c := format[i]; {
			case c == '[':
				return nil
			case c == '*':
				out = append(out, "*")
				i++
			case c == '+':
				hasPlus = true
				i++
			case strings.IndexByte("-# 0123456789.", c) >= 0:
				i++
			default:
				v := "%"
				if hasPlus {
					v = "%+"
				}
				out = append(out, v+string(c))
				i++
				break directive
			}
		}
	}
	return out
}

// isMapType reports whether expr's resolved type is a map. Unresolved
// (cross-package) types return false — conservative, no false positives.
func isMapType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// findSink returns the first output/serialization call inside body, not
// descending into nested function literals (a deferred or stored closure
// does not emit during the iteration).
func findSink(body *ast.BlockStmt) *ast.CallExpr {
	var sink *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sinkNames[sel.Sel.Name] {
			sink = call
			return false
		}
		return true
	})
	return sink
}
