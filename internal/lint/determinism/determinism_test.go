package determinism

import (
	"os"
	"path/filepath"
	"testing"
)

// lintSource writes src as a single-file package in a temp dir and lints it.
func lintSource(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := LintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func checks(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Check)
	}
	return out
}

func TestTimeNow(t *testing.T) {
	fs := lintSource(t, `package p
import "time"
func f() time.Time { return time.Now() }
func g(t0 time.Time) time.Duration { return time.Since(t0) }
func h(d time.Duration) time.Time { return time.Now().Add(d) }
`)
	if len(fs) != 3 {
		t.Fatalf("want 3 time findings, got %v", fs)
	}
	for _, f := range fs {
		if f.Check != CheckTimeNow {
			t.Errorf("want %s, got %s", CheckTimeNow, f.Check)
		}
	}
}

func TestTimeAllowed(t *testing.T) {
	fs := lintSource(t, `package p
import "time"
const tick = 10 * time.Millisecond
func f(s string) (time.Time, error) { return time.Parse(time.RFC3339, s) }
func g() *time.Timer { return time.NewTimer(tick) }
`)
	if len(fs) != 0 {
		t.Fatalf("non-clock time uses must pass, got %v", fs)
	}
}

func TestGlobalRand(t *testing.T) {
	fs := lintSource(t, `package p
import "math/rand"
func f() int { return rand.Intn(10) }
func g() { rand.Seed(42) }
func h() float64 { return rand.Float64() }
`)
	if len(fs) != 3 {
		t.Fatalf("want 3 rand findings, got %v", fs)
	}
	for _, f := range fs {
		if f.Check != CheckGlobalRand {
			t.Errorf("want %s, got %s", CheckGlobalRand, f.Check)
		}
	}
}

func TestSeededRandAllowed(t *testing.T) {
	fs := lintSource(t, `package p
import "math/rand"
func f(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
func g(r *rand.Rand) int { return r.Intn(10) }
`)
	if len(fs) != 0 {
		t.Fatalf("seeded generators must pass, got %v", fs)
	}
}

func TestMapRangeOutput(t *testing.T) {
	fs := lintSource(t, `package p
import "fmt"
func f(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`)
	if len(fs) != 1 || fs[0].Check != CheckMapRangeOutput {
		t.Fatalf("want one %s finding, got %v", CheckMapRangeOutput, fs)
	}
}

func TestMapRangeLocalType(t *testing.T) {
	// The map type flows through a locally declared struct field.
	fs := lintSource(t, `package p
import "fmt"
type tally struct{ counts map[string]int }
func f(t *tally) {
	for k := range t.counts {
		fmt.Println(k)
	}
}
`)
	if len(fs) != 1 || fs[0].Check != CheckMapRangeOutput {
		t.Fatalf("want one %s finding, got %v", CheckMapRangeOutput, fs)
	}
}

func TestMapRangeWithoutSink(t *testing.T) {
	fs := lintSource(t, `package p
import "sort"
func f(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`)
	if len(fs) != 0 {
		t.Fatalf("sort-the-keys idiom must pass, got %v", fs)
	}
}

func TestSliceRangeWithSink(t *testing.T) {
	fs := lintSource(t, `package p
import "fmt"
func f(xs []int) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("slice iteration must pass, got %v", fs)
	}
}

func TestSinkInsideFuncLitIgnored(t *testing.T) {
	// A closure stored during iteration does not emit during iteration.
	fs := lintSource(t, `package p
import "fmt"
func f(m map[string]int) []func() {
	var fns []func()
	for k := range m {
		k := k
		fns = append(fns, func() { fmt.Println(k) })
	}
	return fns
}
`)
	if len(fs) != 0 {
		t.Fatalf("sinks inside stored closures must pass, got %v", fs)
	}
}

func TestWaiver(t *testing.T) {
	fs := lintSource(t, `package p
import "fmt"
func f(m map[string]bool) {
	// Iteration order does not reach the output: counts only.
	n := 0
	for range m { //determinism:ok
		fmt.Print()
		n++
	}
	_ = n
}
func g() {
	//determinism:ok — waiver on the line above the statement
	for range map[int]bool{} {
		fmt.Print()
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("waived findings must pass, got %v", fs)
	}
}

func TestMapFormat(t *testing.T) {
	fs := lintSource(t, `package p
import "fmt"
func f(m map[string]int) string { return fmt.Sprintf("%v", m) }
func g(m map[*int]bool) { fmt.Printf("state: %+v\n", m) }
`)
	if len(fs) != 2 {
		t.Fatalf("want 2 map-format findings, got %v", fs)
	}
	for _, f := range fs {
		if f.Check != CheckMapFormat {
			t.Errorf("want %s, got %s", CheckMapFormat, f.Check)
		}
	}
}

func TestMapFormatOperandMapping(t *testing.T) {
	// Only the %v verb bound to the map operand fires — the scalar
	// operands around it must not confuse the operand mapping, and
	// Fprintf's writer argument shifts the format index by one.
	fs := lintSource(t, `package p
import (
	"fmt"
	"os"
)
func f(n int, m map[string]int) {
	fmt.Printf("%d then %v and %s\n", n, m, "x")
	fmt.Fprintf(os.Stderr, "%v first, %d after\n", m, n)
}
`)
	if len(fs) != 2 {
		t.Fatalf("want 2 map-format findings, got %v", fs)
	}
}

func TestMapFormatNonMapAllowed(t *testing.T) {
	fs := lintSource(t, `package p
import "fmt"
type cfg struct{ n int }
func f(c cfg, xs []int, n int, m map[string]int) {
	fmt.Printf("%v %v %d\n", c, xs, n)
	fmt.Printf("%d\n", len(m))
	fmt.Printf("%q\n", "str")
}
`)
	if len(fs) != 0 {
		t.Fatalf("non-map %%v operands must pass, got %v", fs)
	}
}

func TestMapFormatExplicitIndexSkipped(t *testing.T) {
	// Explicit operand indexes abort verb parsing: mis-mapping operands
	// would misreport, so the check stays conservative.
	fs := lintSource(t, `package p
import "fmt"
func f(m map[string]int) string { return fmt.Sprintf("%[1]v", m) }
`)
	if len(fs) != 0 {
		t.Fatalf("explicit-index format must be skipped, got %v", fs)
	}
}

func TestMapFormatWaiver(t *testing.T) {
	fs := lintSource(t, `package p
import "fmt"
func f(m map[string]int) {
	fmt.Printf("%v\n", m) //determinism:ok
	//determinism:ok — sorted upstream
	fmt.Printf("%+v\n", m)
}
`)
	if len(fs) != 0 {
		t.Fatalf("waived map-format findings must pass, got %v", fs)
	}
}

func TestRenamedImports(t *testing.T) {
	fs := lintSource(t, `package p
import (
	clock "time"
	mrand "math/rand"
)
func f() int64 { return clock.Now().UnixNano() }
func g() int { return mrand.Int() }
`)
	if len(fs) != 2 {
		t.Fatalf("renamed imports must still be caught, got %v", fs)
	}
}

func TestTestFilesSkipped(t *testing.T) {
	dir := t.TempDir()
	src := `package p
import "time"
func f() time.Time { return time.Now() }
`
	if err := os.WriteFile(filepath.Join(dir, "x_test.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := LintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("_test.go files must be skipped, got %v", fs)
	}
}

func TestFindingsSorted(t *testing.T) {
	fs := lintSource(t, `package p
import "time"
func a() time.Time { return time.Now() }
func b() time.Time { return time.Now() }
`)
	if len(fs) != 2 {
		t.Fatalf("want 2 findings, got %v", fs)
	}
	if fs[0].Pos.Line > fs[1].Pos.Line {
		t.Fatalf("findings not sorted: %v", checks(fs))
	}
}

func TestPointerFormat(t *testing.T) {
	fs := lintSource(t, `package p
import "fmt"
func f(x *int) string { return fmt.Sprintf("at %p", x) }
func g(x *int) { fmt.Printf("node %p -> %d\n", x, *x) }
func h(w interface{ Write([]byte) (int, error) }, x *int) { fmt.Fprintf(w, "%p", x) }
`)
	if len(fs) != 3 {
		t.Fatalf("want 3 pointer-format findings, got %v", fs)
	}
	for _, f := range fs {
		if f.Check != CheckPointerFormat {
			t.Errorf("want %s, got %s", CheckPointerFormat, f.Check)
		}
	}
}

func TestPointerFormatMissingOperandStillFlagged(t *testing.T) {
	// The hazard is the verb itself; a short operand list must not hide it.
	fs := lintSource(t, `package p
import "fmt"
func f() string { return fmt.Sprintf("dangling %p") }
`)
	if len(fs) != 1 || fs[0].Check != CheckPointerFormat {
		t.Fatalf("want 1 pointer-format finding, got %v", fs)
	}
}

func TestPointerFormatLiteralPercentAllowed(t *testing.T) {
	fs := lintSource(t, `package p
import "fmt"
func f(n int) string { return fmt.Sprintf("%d%% passed", n) }
func g() string { return fmt.Sprintf("100%%p is not a verb") }
`)
	if len(fs) != 0 {
		t.Fatalf("escaped %%%% must not flag, got %v", fs)
	}
}

func TestPointerFormatWaiver(t *testing.T) {
	fs := lintSource(t, `package p
import "fmt"
func f(x *int) string { return fmt.Sprintf("at %p", x) } //determinism:ok — debug-only path
func g(x *int) string {
	//determinism:ok — identity log diffed within one process only
	return fmt.Sprintf("id %p", x)
}
`)
	if len(fs) != 0 {
		t.Fatalf("waived %%p uses must pass, got %v", fs)
	}
}
