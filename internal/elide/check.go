package elide

import (
	"fmt"
	"sort"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
	"chex86/internal/ptrflow"
	"chex86/internal/tracker"
)

// The checker verifies a proof bundle without trusting the analyzer that
// produced it. It re-implements only the *local* pieces — the abstract
// transfer of one micro-op, conditional-edge refinement, region metadata
// recovered from the program image — and verifies that the bundle's
// per-block invariants are inductive under that transfer: entry states
// are covered, and every block's edge-out state is contained in the
// successor's invariant. The analyzer's fixpoint engine, widening,
// worklist and region-restart machinery (where an analysis bug would
// live) never participate; if the invariants are wrong the induction
// check fails and every proof is rejected. Shared leaf code is limited
// to interval arithmetic, CFG carving for direct branches, and µop
// decoding — and the checker's hardcoded tag semantics are themselves
// validated against the tracker's live rule database at init.

// fact is the checker's own abstract value: a tag name (the Fact tag
// constants of internal/ptrflow), the owning region for pointers, and
// the interval (numeric range, or region-relative offset range). The
// analyzer's init-order taint is deliberately absent: it qualifies
// cross-check verdicts, not safety proofs (an untagged value gets no
// capability check with or without elision).
type fact struct {
	tag    string
	region string
	rng    ptrflow.Interval
}

var (
	cNegInf = ptrflow.FullRange().Lo
	cPosInf = ptrflow.FullRange().Hi

	botF    = fact{tag: ptrflow.FactBot, rng: ptrflow.EmptyRange()}
	notPtrF = fact{tag: ptrflow.FactNotPtr, rng: ptrflow.FullRange()}
	topF    = fact{tag: ptrflow.FactTop, rng: ptrflow.FullRange()}
	zeroF   = fact{tag: ptrflow.FactNotPtr, rng: ptrflow.Const(0)}
)

func numF(iv ptrflow.Interval) fact { return fact{tag: ptrflow.FactNotPtr, rng: iv} }
func ptrF(region string, off ptrflow.Interval) fact {
	return fact{tag: ptrflow.FactPtr, region: region, rng: off}
}

func numericTag(t string) bool { return t == ptrflow.FactNotPtr || t == ptrflow.FactWild }

// meaningful reports whether the fact's interval carries a defined
// meaning (mirrors the ptrflow Value invariant).
func (f fact) meaningful() bool {
	return numericTag(f.tag) || (f.tag == ptrflow.FactPtr && f.region != "")
}

// numRngF is the sound numeric range of a fact: its interval for plain
// numbers and wild integers, unbounded for everything else.
func numRngF(f fact) ptrflow.Interval {
	if numericTag(f.tag) {
		return f.rng
	}
	return ptrflow.FullRange()
}

func joinFact(a, b fact) fact {
	if a.tag == ptrflow.FactBot {
		return b
	}
	if b.tag == ptrflow.FactBot {
		return a
	}
	out := fact{tag: ptrflow.FactTop}
	if a.tag == b.tag {
		out.tag = a.tag
	}
	if out.tag == ptrflow.FactPtr && a.region == b.region {
		out.region = a.region
	}
	switch {
	case numericTag(a.tag) && numericTag(b.tag):
		out.rng = a.rng.Join(b.rng)
	case a.tag == ptrflow.FactPtr && b.tag == ptrflow.FactPtr &&
		a.region == b.region && a.region != "":
		out.rng = a.rng.Join(b.rng)
	default:
		out.rng = ptrflow.FullRange()
	}
	if !out.meaningful() {
		out.rng = ptrflow.FullRange()
	}
	return out
}

// factLE is the checker's abstraction order: a ⊑ b means every concrete
// tracker state described by a is also described by b.
func factLE(a, b fact) bool {
	if a.tag == ptrflow.FactBot {
		return true
	}
	if b.tag == ptrflow.FactTop {
		return true
	}
	if a.tag != b.tag {
		return false
	}
	if a.tag == ptrflow.FactPtr {
		if b.region == "" {
			return true // region-less pointer: offset range is meaningless
		}
		if a.region != b.region {
			return false
		}
		return b.rng.Contains(a.rng)
	}
	if numericTag(a.tag) {
		return b.rng.Contains(a.rng)
	}
	return true // top ⊑ top handled above; bot handled first
}

// cstate is the checker's dataflow state (mirror of the analyzer's, with
// the checker's own fact domain).
type cstate struct {
	regs  [isa.NumRegs]fact
	rsp   int64
	rspOK bool
	frame map[int64]fact // nil = slot addressing lost
	free  bool
}

func newEntryCState() *cstate {
	s := &cstate{rspOK: true, frame: map[int64]fact{}}
	for i := range s.regs {
		s.regs[i] = notPtrF
	}
	return s
}

func (s *cstate) clone() *cstate {
	c := *s
	c.frame = make(map[int64]fact, len(s.frame))
	for k, v := range s.frame {
		c.frame[k] = v
	}
	return &c
}

func (s *cstate) reg(r isa.Reg) fact {
	if !r.Valid() {
		return notPtrF
	}
	return s.regs[r]
}

// invariant is a decoded block invariant claim.
type invariant struct {
	regs    [isa.NumRegs]fact
	rspOK   bool
	rsp     int64
	frameOK bool
	frame   map[int64]fact
	free    bool
}

// stateLE checks containment of a computed state in a claimed invariant.
func stateLE(s *cstate, inv *invariant) error {
	for i := range s.regs {
		if !factLE(s.regs[i], inv.regs[i]) {
			return fmt.Errorf("reg %s: %v ⋢ %v", isa.Reg(i), s.regs[i], inv.regs[i])
		}
	}
	if inv.rspOK && (!s.rspOK || s.rsp != inv.rsp) {
		return fmt.Errorf("rsp claim %d not established", inv.rsp)
	}
	if inv.frameOK {
		if s.frame == nil {
			return fmt.Errorf("frame claimed but slot addressing lost")
		}
		for off, fv := range inv.frame {
			sv, ok := s.frame[off]
			if !ok || !factLE(sv, fv) {
				return fmt.Errorf("frame slot %d: claim not established", off)
			}
		}
	}
	if s.free && !inv.free {
		return fmt.Errorf("heap-release fact not admitted by invariant")
	}
	return nil
}

// regionMeta is region metadata the checker recovers from the program
// image itself (never from the bundle).
type regionMeta struct {
	size     uint64
	readOnly bool
	covered  bool
	isGlobal bool
	init     fact
}

// cmpRec is the checker's block-local compare fact.
type cmpRec struct {
	ok     bool
	r1, r2 isa.Reg
	imm    int64
	hasImm bool
}

func (c *cmpRec) invalidateOnWrite(dst isa.Reg) {
	if c.ok && dst.Valid() && (dst == c.r1 || dst == c.r2) {
		c.ok = false
	}
}

// checker holds everything a bundle verification run needs.
type checker struct {
	prog   *asm.Program
	cfg    *ptrflow.CFG
	db     *tracker.RuleDB
	bundle *ptrflow.Bundle
	harts  int

	globals   []asm.Global
	regions   map[string]*regionMeta
	relocSlot map[uint64]string
	claims    map[string]fact // claimed region store summaries
	poison    fact            // claimed unknown-EA store contribution
	invs      map[int]*invariant

	// Context-sensitive layer claims: per-(block, call-string) invariants
	// and the deterministic order they were decoded in (the bundle's
	// canonical sorted order), which the per-context induction iterates.
	ctxInvs  map[ctxInvKey]*invariant
	ctxOrder []ctxInvKey

	anyFree     bool  // checker-derived release reachability
	heapMin     int64 // checker-derived min allocation lower bound (-1 unset)
	heapUnknown bool  // an allocation size could not be bounded below
	storeErr    error // first store-subsumption failure
	dec         decode.Decoder
	uopBuf      []isa.Uop
}

// newChecker builds the checker's own view of the program and decodes
// the bundle's claims. It returns an error for global preconditions that
// reject the whole bundle up front.
func newChecker(prog *asm.Program, b *ptrflow.Bundle, harts int, hints map[uint64][]uint64) (*checker, error) {
	ck := &checker{
		prog:      prog,
		db:        tracker.NewRuleDB(),
		bundle:    b,
		harts:     harts,
		globals:   prog.SortedGlobals(),
		regions:   map[string]*regionMeta{},
		relocSlot: map[uint64]string{},
		claims:    map[string]fact{},
		invs:      map[int]*invariant{},
		ctxInvs:   map[ctxInvKey]*invariant{},
		heapMin:   -1,
	}
	if ck.harts <= 0 {
		ck.harts = 1
	}

	// Control flow must be fully resolved: an indirect branch can leave
	// the CFG the invariants describe, voiding the induction.
	for i := range prog.Insts {
		in := &prog.Insts[i]
		if (in.Op == isa.JMP || in.Op == isa.CALL) && in.Dst.Kind == isa.OpReg {
			return nil, fmt.Errorf("indirect branch at %#x", in.Addr)
		}
	}
	ck.cfg = ptrflow.BuildCFG(prog, ck.harts, hints)
	if len(ck.cfg.Unresolved) > 0 {
		return nil, fmt.Errorf("%d unresolved indirect branches", len(ck.cfg.Unresolved))
	}

	if err := ck.validateTrackerAssumptions(); err != nil {
		return nil, err
	}
	ck.recoverRegions()
	if err := ck.decodeClaims(); err != nil {
		return nil, err
	}
	return ck, nil
}

// validateTrackerAssumptions tests the class-abstraction assumptions the
// checker's tag transfer rests on against the live tracker semantics:
// (1) the dereference-capability selection falls back from an untagged
// base to the index, and (2) every register rule's propagation depends
// only on the {zero, wild, positive} class of each operand and selects
// one of the operands (or a fixed class) — which is what makes sampling
// with class representatives exhaustive.
func (ck *checker) validateTrackerAssumptions() error {
	reps := []core.PID{0, core.WildPID, 11}
	for _, x := range reps {
		if tracker.DerefSelect(0, x) != x {
			return fmt.Errorf("deref selection: untagged base must fall back to index")
		}
		if tracker.DerefSelect(11, x) != 11 || tracker.DerefSelect(core.WildPID, x) != core.WildPID {
			return fmt.Errorf("deref selection: tagged base must win")
		}
	}
	classOf := func(p core.PID) string {
		switch {
		case p == 0:
			return "zero"
		case p == core.WildPID:
			return "wild"
		default:
			return "pos"
		}
	}
	attrOf := func(p, a, b core.PID) string {
		switch {
		case p == a:
			return "src1"
		case p == b:
			return "src2"
		default:
			return classOf(p)
		}
	}
	classReps := map[string][]core.PID{"zero": {0}, "wild": {core.WildPID}, "pos": {11, 23}}
	classes := []string{"zero", "wild", "pos"}
	for _, r := range ck.db.Rules() {
		if r.Propagate == nil {
			continue
		}
		for _, ca := range classes {
			for _, cb := range classes {
				var want string
				first := true
				for _, a := range classReps[ca] {
					for _, b := range classReps[cb] {
						if ca == cb && ca == "pos" && a == b {
							continue // distinct operands exercise selection
						}
						got := attrOf(r.Propagate(a, b), a, b)
						if first {
							want, first = got, false
						} else if got != want {
							return fmt.Errorf("rule %q propagation is not class-deterministic (%s,%s)", r.Name, ca, cb)
						}
					}
				}
			}
		}
	}
	return nil
}

// recoverRegions rebuilds region metadata — sizes, writability, static
// initializers, initializer coverage — from the program image.
func (ck *checker) recoverRegions() {
	region := func(name string) *regionMeta {
		m, ok := ck.regions[name]
		if !ok {
			m = &regionMeta{init: botF}
			ck.regions[name] = m
		}
		return m
	}
	for i := range ck.globals {
		g := &ck.globals[i]
		m := region(g.Name)
		m.size = g.Size
		m.readOnly = g.ReadOnly
		m.isGlobal = true
	}
	for _, r := range ck.prog.Relocs {
		ck.relocSlot[r.Slot] = r.Target
	}
	covered := map[string]map[uint64]bool{}
	slot := func(g *asm.Global, addr uint64, v fact) {
		m := region(g.Name)
		m.init = joinFact(m.init, v)
		if covered[g.Name] == nil {
			covered[g.Name] = map[uint64]bool{}
		}
		covered[g.Name][addr&^7] = true
	}
	for _, d := range ck.prog.Data {
		if g := ck.globalAt(d.Addr); g != nil {
			slot(g, d.Addr, numF(ptrflow.Const(int64(d.Val))))
		}
	}
	for _, rl := range ck.prog.Relocs {
		if g := ck.globalAt(rl.Slot); g != nil {
			slot(g, rl.Slot, ptrF(rl.Target, ptrflow.Const(0)))
		}
	}
	for i := range ck.globals {
		g := &ck.globals[i]
		words := (g.Size + 7) / 8
		region(g.Name).covered = uint64(len(covered[g.Name])) >= words && words > 0
	}
}

func (ck *checker) globalAt(addr uint64) *asm.Global {
	i := sort.Search(len(ck.globals), func(i int) bool {
		return ck.globals[i].Addr+ck.globals[i].Size > addr
	})
	if i < len(ck.globals) && ck.globals[i].Addr <= addr {
		return &ck.globals[i]
	}
	return nil
}

func (ck *checker) regionNameAt(addr uint64) string {
	if g := ck.globalAt(addr); g != nil {
		return g.Name
	}
	return "@unmapped"
}

func factFrom(pf ptrflow.Fact) fact {
	return fact{tag: pf.Tag, region: pf.Region, rng: pf.Rng}
}

// decodeClaims converts the bundle's serialized claims into checker
// structures. Invariants are routed by claimed context: the ⊤ layer
// ("any", or an absent context for pre-context bundles) into invs, the
// per-context layer into ctxInvs keyed by the re-parsed call string.
// Context strings are verified well-formed here — structurally via
// ParseCallCtx, and semantically against the program: every site on a
// call string must be the address of an internal direct CALL, since
// those are the only events the runtime fold pushes.
func (ck *checker) decodeClaims() error {
	ck.poison = factFrom(ck.bundle.Poison)
	for _, rc := range ck.bundle.Regions {
		ck.claims[rc.Name] = factFrom(rc.Stores)
	}
	for i := range ck.bundle.Invariants {
		bi := &ck.bundle.Invariants[i]
		if len(bi.Regs) != int(isa.NumRegs) {
			continue // malformed claim: block treated as invariant-less
		}
		inv := &invariant{rspOK: bi.RSPOK, rsp: bi.RSP, frameOK: bi.FrameOK, free: bi.Free}
		for r := range inv.regs {
			inv.regs[r] = factFrom(bi.Regs[r])
		}
		if bi.FrameOK {
			inv.frame = make(map[int64]fact, len(bi.Frame))
			for _, sf := range bi.Frame {
				inv.frame[sf.Off] = factFrom(sf.Fact)
			}
		}
		if bi.Ctx == "" || bi.Ctx == pipeline.CtxAny.String() {
			ck.invs[bi.Block] = inv
			continue
		}
		ctx, err := pipeline.ParseCallCtx(bi.Ctx)
		if err != nil {
			return fmt.Errorf("invariant for block %d: %v", bi.Block, err)
		}
		if err := ck.validateCtx(ctx); err != nil {
			return fmt.Errorf("invariant for block %d: %v", bi.Block, err)
		}
		key := ctxInvKey{block: bi.Block, ctx: ctx}
		if _, dup := ck.ctxInvs[key]; dup {
			return fmt.Errorf("duplicate invariant claim for block %d context %s", bi.Block, bi.Ctx)
		}
		ck.ctxInvs[key] = inv
		ck.ctxOrder = append(ck.ctxOrder, key)
	}
	if len(ck.ctxOrder) > 0 && (ck.bundle.CtxK < 1 || ck.bundle.CtxK > 2) {
		return fmt.Errorf("per-context invariants claimed at unsupported k=%d", ck.bundle.CtxK)
	}
	return nil
}

// ctxInvKey identifies one claimed (block, call-string context)
// invariant.
type ctxInvKey struct {
	block int
	ctx   pipeline.CallCtx
}

// validateCtx checks a parsed call string against the program: every
// site must be an internal direct CALL instruction whose target is
// inside the program text — the only control transfers the runtime
// fold pushes, and therefore the only strings a live context can take.
func (ck *checker) validateCtx(ctx pipeline.CallCtx) error {
	for _, site := range [2]uint64{ctx.S0, ctx.S1} {
		if site == 0 {
			continue
		}
		in := ck.prog.At(site)
		if in == nil || in.Op != isa.CALL || in.Dst.Kind == isa.OpReg ||
			ck.prog.At(in.Target) == nil {
			return fmt.Errorf("call-string site %#x is not an internal CALL", site)
		}
	}
	return nil
}

func (ck *checker) claimedStores(name string) fact {
	if f, ok := ck.claims[name]; ok {
		return f
	}
	return botF
}

// verifyStore checks one dynamic store's contribution against the
// bundle's claimed summaries (region store claim, or the poison claim
// for unbounded addresses). The first failure rejects the bundle.
func (ck *checker) checkStoreClaim(target string, sv fact) {
	if ck.storeErr != nil {
		return
	}
	claim := ck.poison
	what := "poison"
	if target != "" {
		claim = ck.claimedStores(target)
		what = "region " + target
	}
	if !factLE(sv, claim) {
		ck.storeErr = fmt.Errorf("a store exceeds the claimed %s summary", what)
	}
}

// ---------------------------------------------------------------------------
// Transfer

// ruleFact abstracts one register rule by sampling its Propagate closure
// with class representatives — the checker's own implementation of the
// abstraction the class-determinism validation licenses.
func (ck *checker) ruleFact(u *isa.Uop, v1, v2 fact) fact {
	r := ck.db.Match(u)
	if r == nil || r.Propagate == nil {
		return notPtrF
	}
	reps := func(tag string, pos core.PID) []core.PID {
		switch tag {
		case ptrflow.FactBot, ptrflow.FactNotPtr:
			return []core.PID{0}
		case ptrflow.FactPtr:
			return []core.PID{pos}
		case ptrflow.FactWild:
			return []core.PID{core.WildPID}
		default:
			return []core.PID{0, pos, core.WildPID}
		}
	}
	out := botF
	for _, a := range reps(v1.tag, 11) {
		for _, b := range reps(v2.tag, 23) {
			pid := r.Propagate(a, b)
			f := fact{rng: ptrflow.FullRange()}
			switch {
			case pid == 0:
				f.tag = ptrflow.FactNotPtr
			case pid == core.WildPID:
				f.tag = ptrflow.FactWild
			default:
				f.tag = ptrflow.FactPtr
				switch pid {
				case a:
					f.region = v1.region
				case b:
					f.region = v2.region
				}
			}
			out = joinFact(out, f)
		}
	}
	return out
}

// derefFact abstracts the dereference-capability selection (validated
// against tracker.DerefSelect at init): the base register's fact, with
// index fallback when the base is untagged.
func derefFact(st *cstate, m isa.MemRef) fact {
	b := st.reg(m.Base)
	ix := st.reg(m.Index)
	switch b.tag {
	case ptrflow.FactNotPtr:
		return ix
	case ptrflow.FactPtr, ptrflow.FactWild:
		return b
	case ptrflow.FactBot:
		return botF
	default:
		return joinFact(b, ix)
	}
}

// eaPtrFact selects the pointer an effective address is formed through.
func eaPtrFact(st *cstate, m isa.MemRef) (fact, bool) {
	b := st.reg(m.Base)
	ix := st.reg(m.Index)
	var p fact
	switch {
	case b.tag == ptrflow.FactPtr:
		p = b
	case b.tag == ptrflow.FactNotPtr && ix.tag == ptrflow.FactPtr:
		p = ix
	default:
		return topF, false
	}
	if p.region == "" {
		return topF, false
	}
	return p, true
}

// eaBounds attributes a memory micro-op's effective address to a region
// and offset interval (the checker's own version of the analyzer's
// eaFact, used to re-derive every proof's bounds from scratch).
func (ck *checker) eaBounds(st *cstate, u *isa.Uop) (region string, off ptrflow.Interval, ok bool) {
	m := u.Mem
	if !m.Base.Valid() && !m.Index.Valid() {
		g := ck.globalAt(uint64(m.Disp))
		if g == nil {
			return "", ptrflow.FullRange(), false
		}
		return g.Name, ptrflow.Const(m.Disp - int64(g.Addr)), true
	}
	scale := int64(m.Scale)
	if scale == 0 {
		scale = 1
	}
	b := st.reg(m.Base)
	ix := st.reg(m.Index)
	switch {
	case m.Base.Valid() && b.tag == ptrflow.FactPtr && b.region != "" &&
		(!m.Index.Valid() || ix.tag != ptrflow.FactPtr):
		off = b.rng
		if m.Index.Valid() {
			off = off.Add(numRngF(ix).Scale(scale))
		}
		return b.region, off.AddConst(m.Disp), true
	case m.Index.Valid() && ix.tag == ptrflow.FactPtr && ix.region != "" && scale == 1 &&
		(!m.Base.Valid() || b.tag == ptrflow.FactNotPtr):
		off = ix.rng
		if m.Base.Valid() {
			off = off.Add(numRngF(b))
		}
		return ix.region, off.AddConst(m.Disp), true
	}
	return "", ptrflow.FullRange(), false
}

// readRegionF is the abstract alias-table content for addresses in a
// region: the checker's own initializer fact joined with the *claimed*
// store summary and poison (both verified inductively elsewhere).
func (ck *checker) readRegionF(name string) fact {
	m, ok := ck.regions[name]
	if !ok {
		m = &regionMeta{init: botF}
	}
	v := joinFact(m.init, ck.claimedStores(name))
	v = joinFact(v, ck.poison)
	if v.tag == ptrflow.FactBot {
		return zeroF
	}
	if !m.covered && v.meaningful() {
		v.rng = v.rng.Join(ptrflow.Const(0))
	}
	return v
}

func (ck *checker) relocReadF(slotAddr uint64) fact {
	v := ptrF(ck.relocSlot[slotAddr], ptrflow.Const(0))
	if cont := ck.claimedStores(ck.regionNameAt(slotAddr)); cont.tag != ptrflow.FactBot {
		v = joinFact(v, cont)
	}
	if ck.poison.tag != ptrflow.FactBot {
		v = joinFact(v, ck.poison)
	}
	return v
}

func (ck *checker) loadFact(st *cstate, u *isa.Uop) fact {
	m := u.Mem
	if !m.Base.Valid() && !m.Index.Valid() {
		addr := uint64(m.Disp)
		if _, ok := ck.relocSlot[addr]; ok {
			return ck.relocReadF(addr)
		}
		return ck.readRegionF(ck.regionNameAt(addr))
	}
	if m.Base == isa.RSP && !m.Index.Valid() {
		if st.rspOK && st.frame != nil {
			if v, ok := st.frame[st.rsp+m.Disp]; ok {
				return v
			}
		}
		return topF
	}
	p, ok := eaPtrFact(st, m)
	if !ok {
		return topF
	}
	return ck.readRegionF(p.region)
}

// memFact abstracts a store's alias-table-visible value: only genuine
// capabilities survive; wild and untagged stores behave as clears.
func memFact(v fact) fact {
	switch v.tag {
	case ptrflow.FactBot:
		return botF
	case ptrflow.FactPtr:
		return v
	case ptrflow.FactNotPtr, ptrflow.FactWild:
		return fact{tag: ptrflow.FactNotPtr, rng: v.rng}
	default:
		return topF
	}
}

func subWordRangeF(size uint32) ptrflow.Interval {
	if size >= 8 || size == 0 {
		return ptrflow.FullRange()
	}
	return ptrflow.Interval{Lo: 0, Hi: int64(1)<<(8*uint(size)) - 1}
}

func orCeilF(a, b int64) int64 {
	m := a | b
	for m&(m+1) != 0 {
		m |= m >> 1
	}
	return m
}

// rngOf is the checker's structural interval transfer for a
// register-writing micro-op (res carries the already-derived tag).
func rngOf(u *isa.Uop, res, v1, v2 fact) ptrflow.Interval {
	full := ptrflow.FullRange()
	imm := func() ptrflow.Interval { return ptrflow.Const(u.Imm) }
	rhs := func() ptrflow.Interval {
		if u.HasImm {
			return imm()
		}
		return numRngF(v2)
	}
	switch u.Type {
	case isa.ULimm:
		return imm()
	case isa.UMov:
		return v1.rng
	case isa.ULea:
		return leaRngF(res, v1, v2, u.Mem)
	case isa.UAlu:
		switch u.Alu {
		case isa.AluAdd:
			return addRngF(res, v1, v2, u.HasImm, imm())
		case isa.AluSub:
			if res.tag == ptrflow.FactPtr && res.region != "" &&
				v1.tag == ptrflow.FactPtr && v1.region == res.region {
				return v1.rng.Sub(rhs())
			}
			return numRngF(v1).Sub(rhs())
		case isa.AluAnd:
			if u.HasImm {
				return numRngF(v1).AndMask(u.Imm)
			}
			n1, n2 := numRngF(v1), numRngF(v2)
			if !n1.Empty() && !n2.Empty() && n1.Lo >= 0 && n2.Lo >= 0 {
				hi := n1.Hi
				if n2.Hi < hi {
					hi = n2.Hi
				}
				return ptrflow.Interval{Lo: 0, Hi: hi}
			}
			return full
		case isa.AluShl:
			if u.HasImm {
				return numRngF(v1).ShlBy(u.Imm)
			}
			return full
		case isa.AluShr:
			if u.HasImm {
				return numRngF(v1).ShrBy(u.Imm)
			}
			return full
		case isa.AluMul:
			return numRngF(v1).Mul(rhs())
		case isa.AluXor:
			if !u.HasImm && u.Src1 == u.Src2 && u.Src1.Valid() {
				return ptrflow.Const(0)
			}
			return full
		case isa.AluOr:
			n1, n2 := numRngF(v1), numRngF(v2)
			if u.HasImm {
				n2 = imm()
			}
			if !n1.Empty() && !n2.Empty() && n1.Lo >= 0 && n2.Lo >= 0 &&
				n1.Hi != cPosInf && n2.Hi != cPosInf {
				lo := n1.Lo
				if n2.Lo > lo {
					lo = n2.Lo
				}
				return ptrflow.Interval{Lo: lo, Hi: orCeilF(n1.Hi, n2.Hi)}
			}
			return full
		}
		return full
	}
	return full
}

func addRngF(res, v1, v2 fact, hasImm bool, imm ptrflow.Interval) ptrflow.Interval {
	rhs := imm
	if !hasImm {
		rhs = numRngF(v2)
	}
	if res.tag == ptrflow.FactPtr && res.region != "" {
		switch {
		case v1.tag == ptrflow.FactPtr && v1.region == res.region &&
			(hasImm || v2.tag != ptrflow.FactPtr):
			return v1.rng.Add(rhs)
		case !hasImm && v2.tag == ptrflow.FactPtr && v2.region == res.region &&
			v1.tag != ptrflow.FactPtr:
			return v2.rng.Add(numRngF(v1))
		}
		return ptrflow.FullRange()
	}
	return numRngF(v1).Add(rhs)
}

func leaRngF(res, base, index fact, m isa.MemRef) ptrflow.Interval {
	scale := int64(m.Scale)
	if scale == 0 {
		scale = 1
	}
	ix := ptrflow.Const(0)
	if m.Index.Valid() {
		ix = numRngF(index).Scale(scale)
	}
	if res.tag == ptrflow.FactPtr && res.region != "" {
		switch {
		case m.Base.Valid() && base.tag == ptrflow.FactPtr && base.region == res.region &&
			(!m.Index.Valid() || index.tag != ptrflow.FactPtr):
			return base.rng.Add(ix).AddConst(m.Disp)
		case m.Index.Valid() && index.tag == ptrflow.FactPtr && index.region == res.region &&
			scale == 1 && (!m.Base.Valid() || base.tag != ptrflow.FactPtr):
			b := ptrflow.Const(0)
			if m.Base.Valid() {
				b = numRngF(base)
			}
			return index.rng.Add(b).AddConst(m.Disp)
		}
		return ptrflow.FullRange()
	}
	b := ptrflow.Const(0)
	if m.Base.Valid() {
		b = numRngF(base)
	}
	return b.Add(ix).AddConst(m.Disp)
}

func trackRSPF(st *cstate, u *isa.Uop) {
	if u.Dst != isa.RSP {
		return
	}
	if u.Type == isa.UAlu && u.HasImm && u.Src1 == isa.RSP &&
		(u.Alu == isa.AluAdd || u.Alu == isa.AluSub) {
		if st.rspOK {
			if u.Alu == isa.AluAdd {
				st.rsp += u.Imm
			} else {
				st.rsp -= u.Imm
			}
		}
		return
	}
	st.rspOK = false
	st.frame = nil
}

// transferUop applies one micro-op to the checker state.
func (ck *checker) transferUop(st *cstate, u *isa.Uop, cmp *cmpRec) {
	switch u.Type {
	case isa.ULoad:
		cmp.invalidateOnWrite(u.Dst)
		v := ck.loadFact(st, u)
		if u.AccessSize() < 8 {
			if u.Dst.Valid() && u.Dst != isa.FLAGS {
				d := st.regs[u.Dst]
				if numericTag(d.tag) {
					d.rng = subWordRangeF(u.AccessSize())
				} else {
					d.rng = ptrflow.FullRange()
				}
				st.regs[u.Dst] = d
			}
			return
		}
		if u.Dst.Valid() {
			st.regs[u.Dst] = v
		}

	case isa.UStore:
		sv := memFact(st.reg(u.Src1))
		if u.AccessSize() < 8 {
			sv = fact{tag: ptrflow.FactNotPtr, rng: ptrflow.FullRange()}
		}
		ck.storeEffectF(st, u, sv)

	case isa.UJump, isa.UBranch, isa.UNop:
		// no register effect

	default: // UMov, ULimm, UAlu, ULea
		v1 := st.reg(u.Src1)
		v2 := notPtrF
		if !u.HasImm && u.Src2.Valid() {
			v2 = st.reg(u.Src2)
		}
		if u.Type == isa.ULea {
			v1 = st.reg(u.Mem.Base)
			v2 = st.reg(u.Mem.Index)
		}
		if u.Type == isa.UAlu {
			cmp.ok = false
			if u.Alu == isa.AluCmp {
				*cmp = cmpRec{ok: true, r1: u.Src1, r2: isa.RNone, imm: u.Imm, hasImm: u.HasImm}
				if !u.HasImm {
					cmp.r2 = u.Src2
				}
			}
		}
		cmp.invalidateOnWrite(u.Dst)
		trackRSPF(st, u)
		if !u.Dst.Valid() || u.Dst == isa.FLAGS {
			return
		}
		res := ck.ruleFact(u, v1, v2)
		res.rng = rngOf(u, res, v1, v2)
		if !res.meaningful() {
			res.rng = ptrflow.FullRange()
		}
		st.regs[u.Dst] = res
	}
}

func (ck *checker) storeEffectF(st *cstate, u *isa.Uop, sv fact) {
	m := u.Mem
	if !m.Base.Valid() && !m.Index.Valid() {
		ck.checkStoreClaim(ck.regionNameAt(uint64(m.Disp)), sv)
		return
	}
	if m.Base == isa.RSP && !m.Index.Valid() {
		if st.rspOK && st.frame != nil {
			st.frame[st.rsp+m.Disp] = sv
		} else {
			st.frame = nil
		}
		return
	}
	if p, ok := eaPtrFact(st, m); ok {
		ck.checkStoreClaim(p.region, sv)
		return
	}
	ck.checkStoreClaim("", sv)
}

// externalCallF mirrors the OS/microcode allocator interception and
// collects the checker's own allocation-size and release facts.
func (ck *checker) externalCallF(st *cstate, target uint64) {
	retPop := func() {
		if st.rspOK && st.frame != nil {
			if v, ok := st.frame[st.rsp]; ok {
				st.regs[isa.T0] = v
			} else {
				st.regs[isa.T0] = topF
			}
		} else {
			st.regs[isa.T0] = topF
		}
		if st.rspOK {
			st.rsp += 8
		}
	}
	switch target {
	case heap.MallocEntry, heap.CallocEntry, heap.ReallocEntry:
		rdi := numRngF(st.reg(isa.RDI))
		if rdi.Bounded() && rdi.Lo > 0 {
			if ck.heapMin < 0 || rdi.Lo < ck.heapMin {
				ck.heapMin = rdi.Lo
			}
		} else {
			ck.heapUnknown = true
		}
		if target == heap.ReallocEntry {
			st.free = true
		}
		retPop()
		st.regs[isa.RAX] = ptrF(ptrflow.HeapRegion, ptrflow.Const(0))
	case heap.FreeEntry:
		st.free = true
		retPop()
	default:
		for i := range st.regs {
			st.regs[i] = topF
		}
		st.rspOK = false
		st.frame = nil
		st.free = true
		ck.checkStoreClaim("", topF)
	}
	if target != heap.MallocEntry && target != heap.CallocEntry {
		ck.anyFree = true
	}
}

// siteVisit observes a memory micro-op before its effect is applied.
type siteVisit func(in *isa.Inst, u *isa.Uop, st *cstate)

// transferBlockF interprets one block from st, returning the trailing
// compare fact for edge refinement.
func (ck *checker) transferBlockF(b *ptrflow.Block, st *cstate, visit siteVisit) cmpRec {
	prog := ck.prog
	var cmp cmpRec
	for idx := b.Start; idx < b.End; idx++ {
		in := &prog.Insts[idx]
		uops := ck.dec.Native(in, ck.uopBuf[:0])
		ck.uopBuf = uops
		for i := range uops {
			u := &uops[i]
			if visit != nil && u.Type.IsMem() {
				visit(in, u, st)
			}
			ck.transferUop(st, u, &cmp)
		}
		if in.Op == isa.CALL && in.Dst.Kind != isa.OpReg && prog.At(in.Target) == nil {
			ck.externalCallF(st, in.Target)
		}
	}
	return cmp
}

// refineF narrows numeric ranges along a conditional edge (the checker's
// own mirror of edge-sensitive refinement).
func refineF(st *cstate, cmp cmpRec, cond isa.Cond, taken bool) {
	if !cmp.ok || !cmp.r1.Valid() {
		return
	}
	if !taken {
		cond = negCondF(cond)
		if cond == isa.CondNone {
			return
		}
	}
	lhs := st.reg(cmp.r1)
	rhs := numF(ptrflow.Const(cmp.imm))
	if !cmp.hasImm {
		if !cmp.r2.Valid() {
			return
		}
		rhs = st.reg(cmp.r2)
	}
	apply := func(r isa.Reg, v fact, bound ptrflow.Interval) {
		if !r.Valid() || !numericTag(v.tag) {
			return
		}
		m := v.rng.Meet(bound)
		if m.Empty() {
			return
		}
		v.rng = m
		st.regs[r] = v
	}
	lb, rb := numRngF(lhs), numRngF(rhs)
	unsignedOK := !lb.Empty() && !rb.Empty() && lb.Lo >= 0 && rb.Lo >= 0
	// Saturating ±1 on a single bound, with the sentinel stickiness of the
	// shared interval library.
	bump := func(v, d int64) int64 { return ptrflow.Const(v).AddConst(d).Lo }
	switch cond {
	case isa.CondE:
		apply(cmp.r1, lhs, rb)
		if !cmp.hasImm {
			apply(cmp.r2, rhs, lb)
		}
	case isa.CondB, isa.CondBE, isa.CondA, isa.CondAE:
		// Unsigned orders coincide with signed ones only when both sides
		// are known non-negative.
		if !unsignedOK {
			return
		}
		fallthrough
	case isa.CondL, isa.CondLE, isa.CondG, isa.CondGE:
		lt := cond == isa.CondL || cond == isa.CondB
		le := cond == isa.CondLE || cond == isa.CondBE
		gt := cond == isa.CondG || cond == isa.CondA
		ge := cond == isa.CondGE || cond == isa.CondAE
		switch {
		case lt: // r1 < rhs
			apply(cmp.r1, lhs, ptrflow.Interval{Lo: cNegInf, Hi: bump(rb.Hi, -1)})
			if !cmp.hasImm {
				apply(cmp.r2, rhs, ptrflow.Interval{Lo: bump(lb.Lo, 1), Hi: cPosInf})
			}
		case le:
			apply(cmp.r1, lhs, ptrflow.Interval{Lo: cNegInf, Hi: rb.Hi})
			if !cmp.hasImm {
				apply(cmp.r2, rhs, ptrflow.Interval{Lo: lb.Lo, Hi: cPosInf})
			}
		case gt:
			apply(cmp.r1, lhs, ptrflow.Interval{Lo: bump(rb.Lo, 1), Hi: cPosInf})
			if !cmp.hasImm {
				apply(cmp.r2, rhs, ptrflow.Interval{Lo: cNegInf, Hi: bump(lb.Hi, -1)})
			}
		case ge:
			apply(cmp.r1, lhs, ptrflow.Interval{Lo: rb.Lo, Hi: cPosInf})
			if !cmp.hasImm {
				apply(cmp.r2, rhs, ptrflow.Interval{Lo: cNegInf, Hi: lb.Hi})
			}
		}
	case isa.CondS:
		apply(cmp.r1, lhs, ptrflow.Interval{Lo: cNegInf, Hi: -1})
	case isa.CondNS:
		apply(cmp.r1, lhs, ptrflow.Interval{Lo: 0, Hi: cPosInf})
	}
}

func negCondF(c isa.Cond) isa.Cond {
	switch c {
	case isa.CondE:
		return isa.CondNE
	case isa.CondNE:
		return isa.CondE
	case isa.CondL:
		return isa.CondGE
	case isa.CondGE:
		return isa.CondL
	case isa.CondLE:
		return isa.CondG
	case isa.CondG:
		return isa.CondLE
	case isa.CondB:
		return isa.CondAE
	case isa.CondAE:
		return isa.CondB
	case isa.CondBE:
		return isa.CondA
	case isa.CondA:
		return isa.CondBE
	case isa.CondS:
		return isa.CondNS
	case isa.CondNS:
		return isa.CondS
	}
	return isa.CondNone
}

// ---------------------------------------------------------------------------
// Induction and proof verification

// verifyInduction checks that the bundle's invariants are inductive:
// every entry state is contained in its entry block's invariant, and
// every invariant block's edge-out states are contained in the successor
// invariants. Along the way the checker accumulates its own allocation
// and release facts and verifies every store against the claimed
// summaries.
func (ck *checker) verifyInduction() error {
	g := ck.cfg
	for _, e := range g.Entries {
		inv, ok := ck.invs[e]
		if !ok {
			return fmt.Errorf("entry block %d has no invariant", e)
		}
		es := newEntryCState()
		if err := stateLE(es, inv); err != nil {
			return fmt.Errorf("entry block %d: %v", e, err)
		}
	}
	for bi := range g.Blocks {
		inv, ok := ck.invs[bi]
		if !ok {
			continue // unreached per the bundle; nothing flows out of it
		}
		b := &g.Blocks[bi]
		st := stateFromInv(inv)
		cmp := ck.transferBlockF(b, st, nil)
		for _, succ := range b.Succs {
			sinv, ok := ck.invs[succ]
			if !ok {
				return fmt.Errorf("block %d flows into block %d which has no invariant", bi, succ)
			}
			es := st
			if cmp.ok && b.TakenSucc >= 0 && b.TakenSucc != b.FallSucc &&
				(succ == b.TakenSucc || succ == b.FallSucc) {
				es = st.clone()
				refineF(es, cmp, b.Cond, succ == b.TakenSucc)
			}
			if err := stateLE(es, sinv); err != nil {
				return fmt.Errorf("block %d -> %d not inductive: %v", bi, succ, err)
			}
		}
	}
	if err := ck.verifyCtxInduction(); err != nil {
		return err
	}
	if ck.storeErr != nil {
		return ck.storeErr
	}
	return nil
}

func stateFromInv(inv *invariant) *cstate {
	st := &cstate{rsp: inv.rsp, rspOK: inv.rspOK, free: inv.free}
	st.regs = inv.regs
	if inv.frameOK {
		st.frame = make(map[int64]fact, len(inv.frame))
		for k, v := range inv.frame {
			st.frame[k] = v
		}
	}
	return st
}

// heapChunkMin returns the checker's own lower bound on heap chunk
// sizes, or 0 when unknown.
func (ck *checker) heapChunkMin() uint64 {
	if ck.heapUnknown || ck.heapMin <= 0 {
		return 0
	}
	return uint64(ck.heapMin)
}

// verifyProof re-derives one proof's site facts from the (already
// verified) invariant of its block and checks the full safety
// condition. A ⊤ ("any") proof starts from the block's ⊤-layer
// invariant; a context-qualified proof starts from the claimed
// (block, context) invariant, which the per-context induction has
// verified over the valid-path call/return edges.
func (ck *checker) verifyProof(p *ptrflow.Proof) error {
	b := ck.cfg.BlockAt(p.Addr)
	if b == nil {
		return fmt.Errorf("site %#x.%d: no containing block", p.Addr, p.MacroIdx)
	}
	var (
		inv *invariant
		ok  bool
	)
	if p.Ctx == "" || p.Ctx == pipeline.CtxAny.String() {
		inv, ok = ck.invs[b.ID]
		if !ok {
			return fmt.Errorf("site %#x.%d: block %d has no invariant", p.Addr, p.MacroIdx, b.ID)
		}
	} else {
		ctx, err := pipeline.ParseCallCtx(p.Ctx)
		if err != nil {
			return fmt.Errorf("site %#x.%d: %v", p.Addr, p.MacroIdx, err)
		}
		inv, ok = ck.ctxInvs[ctxInvKey{block: b.ID, ctx: ctx}]
		if !ok {
			return fmt.Errorf("site %#x.%d: block %d has no invariant for context %s",
				p.Addr, p.MacroIdx, b.ID, p.Ctx)
		}
	}
	var siteErr error
	found := false
	st := stateFromInv(inv)
	ck.transferBlockF(b, st, func(in *isa.Inst, u *isa.Uop, cur *cstate) {
		if found || in.Addr != p.Addr || u.MacroIdx != p.MacroIdx {
			return
		}
		found = true
		siteErr = ck.checkSite(p, u, cur)
	})
	if !found {
		return fmt.Errorf("site %#x.%d: no such memory micro-op", p.Addr, p.MacroIdx)
	}
	return siteErr
}

func (ck *checker) checkSite(p *ptrflow.Proof, u *isa.Uop, st *cstate) error {
	store := u.Type == isa.UStore
	if store != p.Store {
		return fmt.Errorf("access kind mismatch")
	}
	d := derefFact(st, u.Mem)
	if d.tag != ptrflow.FactPtr || d.region == "" || d.region != p.Region {
		return fmt.Errorf("deref tag %q(%s) does not establish ptr(%s)", d.tag, d.region, p.Region)
	}
	region, off, ok := ck.eaBounds(st, u)
	if !ok || region != p.Region {
		return fmt.Errorf("effective address not attributable to %s", p.Region)
	}
	if !off.Bounded() || off.Lo < 0 {
		return fmt.Errorf("offset %s not provably non-negative and finite", off)
	}
	size := u.AccessSize()
	var span uint64
	if region == ptrflow.HeapRegion {
		span = ck.heapChunkMin()
		if span == 0 {
			return fmt.Errorf("no heap chunk-size lower bound")
		}
		if st.free {
			return fmt.Errorf("a heap release may precede the site")
		}
		if ck.harts > 1 && ck.anyFree {
			return fmt.Errorf("concurrent harts with reachable release")
		}
	} else {
		m := ck.regions[region]
		if m == nil || !m.isGlobal || m.size == 0 {
			return fmt.Errorf("region %s has no recoverable extent", region)
		}
		span = m.size
		if store && m.readOnly {
			return fmt.Errorf("store into read-only region %s", region)
		}
	}
	end := off.Hi + int64(size)
	if end < off.Hi || end < 0 || uint64(end) > span {
		return fmt.Errorf("bounds %s+%d exceed region span %d", off, size, span)
	}
	return nil
}
