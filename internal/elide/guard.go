package elide

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/bits"

	"chex86/internal/isa"
	"chex86/internal/pipeline"
	"chex86/internal/ptrflow"
)

// This file re-verifies the analyzer's hoisted-guard claims fail-closed
// from the serialized certificates alone. The obligations, each derived
// with the checker's own machinery, never the analyzer's:
//
//  1. dominance — the guard's anchor block dominates every covered
//     site's block, recomputed here with an iterative bitset dataflow
//     (Dom(b) = {b} ∪ ⋂ Dom(preds)) deliberately different from the
//     analyzer's Cooper-Harvey-Kennedy tree, and the claimed chain must
//     match this computation's immediate-dominator steps exactly;
//  2. subsumption — every covered site's access interval, re-derived
//     from the verified block invariant by the checker's own transfer,
//     fits inside the guard's fused [Lo, End) (and inside the claimed
//     per-site interval, so a narrowed certificate cannot hide a wide
//     dereference);
//  3. safety — the full per-site condition of checkSite (tag, region
//     extent, writability, temporal liveness) holds under the guard's
//     context;
//  4. containment — every covered site is in the independently verified
//     elision map, so guard hoisting attributes suppressed checks but
//     never suppresses one the per-site proofs did not already license.
//
// Any single failure rejects the entire guard set (empty map, Verified
// false); elision decisions are unaffected.

// GuardDecision is the per-guard outcome: hoist (every obligation
// re-verified) or reject.
type GuardDecision struct {
	Block   int    `json:"block"`
	Addr    uint64 `json:"addr"`
	Ctx     string `json:"ctx"`
	Region  string `json:"region,omitempty"`
	Store   bool   `json:"store,omitempty"`
	Lo      int64  `json:"lo"`
	End     int64  `json:"end"`
	Covered int    `json:"covered"`
	Status  string `json:"status"` // "hoist" | "reject"
	Reason  string `json:"reason,omitempty"`
}

// GuardStats summarizes guard checking.
type GuardStats struct {
	Guards   int `json:"guards"`   // claims the analyzer emitted
	Covered  int `json:"covered"`  // covered sites across verified guards
	Rejected int `json:"rejected"` // claims refused (all, when any fails)
}

// GuardReport is the verified hoisted-guard set for one program. Like
// the elision Report it is byte-stable JSON plus an out-of-band Map for
// the pipeline, and its Digest folds in the elision digest so a campaign
// cache key pins the exact (elision, guard) pair in effect.
type GuardReport struct {
	Verified  bool            `json:"verified"`
	Reason    string          `json:"reason,omitempty"`
	Stats     GuardStats      `json:"stats"`
	Decisions []GuardDecision `json:"decisions"`
	Digest    string          `json:"digest"`

	// Map is the pipeline-consumable guard map (empty unless every
	// claim verified).
	Map pipeline.GuardMap `json:"-"`
}

// verifyGuards checks every guard claim in the bundle against rep's
// verified elision map. ckErr is the bundle-level checker error (nil
// when induction verified); any claim failure rejects the whole set.
func verifyGuards(ck *checker, ckErr error, b *ptrflow.Bundle, rep *Report) GuardReport {
	gr := GuardReport{Map: pipeline.GuardMap{}}
	gr.Stats.Guards = len(b.Guards)

	reject := func(reason string) GuardReport {
		gr.Verified = false
		gr.Reason = reason
		gr.Stats.Covered = 0
		gr.Stats.Rejected = len(b.Guards)
		for i := range gr.Decisions {
			gr.Decisions[i].Status = "reject"
			if gr.Decisions[i].Reason == "" {
				gr.Decisions[i].Reason = "guard set rejected: " + reason
			}
		}
		gr.Map = pipeline.GuardMap{}
		gr.Digest = guardDigest(&gr, rep.Digest)
		return gr
	}

	for i := range b.Guards {
		g := &b.Guards[i]
		gr.Decisions = append(gr.Decisions, GuardDecision{
			Block: g.Block, Addr: g.Addr, Ctx: g.Ctx, Region: g.Region,
			Store: g.Store, Lo: g.Lo, End: g.End, Covered: len(g.Covered),
			Status: "hoist",
		})
	}

	if ckErr != nil {
		return reject("bundle rejected: " + ckErr.Error())
	}
	if len(b.Guards) == 0 {
		gr.Verified = true
		gr.Digest = guardDigest(&gr, rep.Digest)
		return gr
	}

	dom := newBitsetDoms(ck.cfg)
	gr.Map.Guards = map[pipeline.GuardKey]int{}
	gr.Map.Covered = map[pipeline.ElideKey]bool{}

	for i := range b.Guards {
		g := &b.Guards[i]
		if err := ck.verifyGuard(g, dom, rep.Map, &gr.Map); err != nil {
			gr.Decisions[i].Reason = err.Error()
			return reject(fmt.Sprintf("guard %d (block %d, ctx %s): %v", i, g.Block, g.Ctx, err))
		}
		gr.Stats.Covered += len(g.Covered)
	}
	gr.Verified = true
	gr.Digest = guardDigest(&gr, rep.Digest)
	return gr
}

// verifyGuard re-verifies one claim's obligations and, on success, adds
// its anchor and covered keys to the pipeline map.
func (ck *checker) verifyGuard(g *ptrflow.GuardClaim, dom *bitsetDoms,
	elision pipeline.ElisionMap, out *pipeline.GuardMap) error {
	if g.Block < 0 || g.Block >= len(ck.cfg.Blocks) || !dom.reach[g.Block] {
		return fmt.Errorf("anchor block %d out of range or unreachable", g.Block)
	}
	if lead := ck.prog.Insts[ck.cfg.Blocks[g.Block].Start].Addr; lead != g.Addr {
		return fmt.Errorf("anchor %#x is not block %d's leader (%#x)", g.Addr, g.Block, lead)
	}
	ctx, err := pipeline.ParseCallCtx(g.Ctx)
	if err != nil {
		return err
	}
	if !ctx.IsAny() {
		if err := ck.validateCtx(ctx); err != nil {
			return err
		}
	}
	if g.Region == "" || g.End <= g.Lo {
		return fmt.Errorf("degenerate fused claim %s+[%d,%d)", g.Region, g.Lo, g.End)
	}
	if len(g.Covered) == 0 {
		return fmt.Errorf("guard covers no sites")
	}
	for i := range g.Covered {
		gs := &g.Covered[i]
		sb := ck.cfg.BlockAt(gs.Addr)
		if sb == nil || sb.ID != gs.Block {
			return fmt.Errorf("site %#x.%d: block claim %d does not match the checker's CFG", gs.Addr, gs.MacroIdx, gs.Block)
		}
		if err := dom.verifyChain(gs.Chain, sb.ID, g.Block); err != nil {
			return fmt.Errorf("site %#x.%d: %v", gs.Addr, gs.MacroIdx, err)
		}
		if gs.Lo > gs.Hi || gs.Lo < g.Lo || satEnd(gs.Hi, gs.Size) > g.End {
			return fmt.Errorf("site %#x.%d: claimed span [%d,%d+%d) escapes fused [%d,%d)",
				gs.Addr, gs.MacroIdx, gs.Lo, gs.Hi, gs.Size, g.Lo, g.End)
		}
		if !elision[pipeline.ElideKey{Addr: gs.Addr, MacroIdx: gs.MacroIdx, Ctx: ctx}] &&
			!elision[pipeline.ElideKey{Addr: gs.Addr, MacroIdx: gs.MacroIdx, Ctx: pipeline.CtxAny}] {
			return fmt.Errorf("site %#x.%d is not in the verified elision map", gs.Addr, gs.MacroIdx)
		}
		if err := ck.checkGuardSite(g, gs, ctx); err != nil {
			return fmt.Errorf("site %#x.%d: %v", gs.Addr, gs.MacroIdx, err)
		}
	}
	out.Guards[pipeline.GuardKey{Addr: g.Addr, Ctx: ctx}] += len(g.Covered)
	for i := range g.Covered {
		gs := &g.Covered[i]
		key := pipeline.ElideKey{Addr: gs.Addr, MacroIdx: gs.MacroIdx, Ctx: ctx}
		if !elision[key] {
			key.Ctx = pipeline.CtxAny
		}
		out.Covered[key] = true
	}
	return nil
}

// checkGuardSite re-derives one covered site's facts from the verified
// invariant of its block under the guard's context and checks the full
// safety condition plus interval subsumption against the checker's own
// derivation (never the claim's numbers alone).
func (ck *checker) checkGuardSite(g *ptrflow.GuardClaim, gs *ptrflow.GuardSite, ctx pipeline.CallCtx) error {
	b := ck.cfg.BlockAt(gs.Addr)
	var (
		inv *invariant
		ok  bool
	)
	if ctx.IsAny() {
		inv, ok = ck.invs[b.ID]
	} else {
		inv, ok = ck.ctxInvs[ctxInvKey{block: b.ID, ctx: ctx}]
	}
	if !ok {
		return fmt.Errorf("block %d has no invariant for context %s", b.ID, ctx)
	}
	var siteErr error
	found := false
	st := stateFromInv(inv)
	ck.transferBlockF(b, st, func(in *isa.Inst, u *isa.Uop, cur *cstate) {
		if found || in.Addr != gs.Addr || u.MacroIdx != gs.MacroIdx {
			return
		}
		found = true
		siteErr = ck.checkGuardUop(g, gs, u, cur)
	})
	if !found {
		return fmt.Errorf("no such memory micro-op")
	}
	return siteErr
}

func (ck *checker) checkGuardUop(g *ptrflow.GuardClaim, gs *ptrflow.GuardSite, u *isa.Uop, st *cstate) error {
	store := u.Type == isa.UStore
	if store != gs.Store {
		return fmt.Errorf("access kind mismatch")
	}
	if store && !g.Store {
		return fmt.Errorf("store covered by a load-only guard")
	}
	if u.AccessSize() != gs.Size {
		return fmt.Errorf("access width %d does not match claim %d", u.AccessSize(), gs.Size)
	}
	d := derefFact(st, u.Mem)
	if d.tag != ptrflow.FactPtr || d.region == "" || d.region != g.Region {
		return fmt.Errorf("deref tag %q(%s) does not establish ptr(%s)", d.tag, d.region, g.Region)
	}
	region, off, ok := ck.eaBounds(st, u)
	if !ok || region != g.Region {
		return fmt.Errorf("effective address not attributable to %s", g.Region)
	}
	if !off.Bounded() || off.Lo < 0 {
		return fmt.Errorf("offset %s not provably non-negative and finite", off)
	}
	// The claimed per-site interval must contain the derivation: a
	// certificate narrower than the access would make the fused-interval
	// check above vacuous.
	if off.Lo < gs.Lo || off.Hi > gs.Hi {
		return fmt.Errorf("derived offsets %s escape the claimed [%d,%d]", off, gs.Lo, gs.Hi)
	}
	size := u.AccessSize()
	var span uint64
	if region == ptrflow.HeapRegion {
		span = ck.heapChunkMin()
		if span == 0 {
			return fmt.Errorf("no heap chunk-size lower bound")
		}
		if st.free {
			return fmt.Errorf("a heap release may precede the site")
		}
		if ck.harts > 1 && ck.anyFree {
			return fmt.Errorf("concurrent harts with reachable release")
		}
	} else {
		m := ck.regions[region]
		if m == nil || !m.isGlobal || m.size == 0 {
			return fmt.Errorf("region %s has no recoverable extent", region)
		}
		span = m.size
		if store && m.readOnly {
			return fmt.Errorf("store into read-only region %s", region)
		}
	}
	end := off.Hi + int64(size)
	if end < off.Hi || end < 0 || uint64(end) > span {
		return fmt.Errorf("bounds %s+%d exceed region span %d", off, size, span)
	}
	// Fused subsumption on the *derived* interval: the guard's one check
	// of [Lo, End) must cover every address this site can touch.
	if off.Lo < g.Lo || end > g.End {
		return fmt.Errorf("derived span [%d,%d) escapes fused [%d,%d)", off.Lo, end, g.Lo, g.End)
	}
	if uint64(g.End) > span {
		return fmt.Errorf("fused end %d exceeds region span %d", g.End, span)
	}
	return nil
}

func satEnd(hi int64, size uint32) int64 {
	e := hi + int64(size)
	if e < hi {
		return int64(^uint64(0) >> 1)
	}
	return e
}

// bitsetDoms is the checker's independent dominance computation: the
// classic iterative bitset dataflow over the CFG's merged successor
// graph, Dom(b) = {b} ∪ ⋂ over predecessors, entries pinned to {b}.
type bitsetDoms struct {
	n     int
	words int
	dom   [][]uint64
	reach []bool
	preds [][]int
	entry []bool
}

func newBitsetDoms(cfg *ptrflow.CFG) *bitsetDoms {
	n := len(cfg.Blocks)
	d := &bitsetDoms{n: n, words: (n + 63) / 64,
		dom: make([][]uint64, n), reach: make([]bool, n),
		preds: make([][]int, n), entry: make([]bool, n)}
	var queue []int
	for _, e := range cfg.Entries {
		if e >= 0 && e < n && !d.reach[e] {
			d.reach[e] = true
			d.entry[e] = true
			queue = append(queue, e)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, s := range cfg.Blocks[b].Succs {
			if s >= 0 && s < n {
				d.preds[s] = append(d.preds[s], b)
				if !d.reach[s] {
					d.reach[s] = true
					queue = append(queue, s)
				}
			}
		}
	}
	for b := 0; b < n; b++ {
		if !d.reach[b] {
			continue
		}
		d.dom[b] = make([]uint64, d.words)
		if d.entry[b] {
			d.dom[b][b/64] = 1 << (b % 64)
			continue
		}
		for w := range d.dom[b] {
			d.dom[b][w] = ^uint64(0)
		}
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < n; b++ {
			if !d.reach[b] || d.entry[b] {
				continue
			}
			nw := make([]uint64, d.words)
			for w := range nw {
				nw[w] = ^uint64(0)
			}
			for _, p := range d.preds[b] {
				if !d.reach[p] {
					continue
				}
				for w := range nw {
					nw[w] &= d.dom[p][w]
				}
			}
			nw[b/64] |= 1 << (b % 64)
			for w := range nw {
				if nw[w] != d.dom[b][w] {
					d.dom[b] = nw
					changed = true
					break
				}
			}
		}
	}
	return d
}

func (d *bitsetDoms) dominates(a, b int) bool {
	if a < 0 || b < 0 || a >= d.n || b >= d.n || !d.reach[a] || !d.reach[b] {
		return false
	}
	return d.dom[b][a/64]&(1<<(a%64)) != 0
}

// idom extracts b's immediate dominator from the dominator sets: the
// strict dominator with the most dominators of its own (the deepest),
// or -1 for entries.
func (d *bitsetDoms) idom(b int) int {
	if b < 0 || b >= d.n || !d.reach[b] {
		return -1
	}
	best, bestDepth := -1, -1
	for w, bitsW := range d.dom[b] {
		for bitsW != 0 {
			i := w*64 + bits.TrailingZeros64(bitsW)
			bitsW &= bitsW - 1
			if i == b || i >= d.n {
				continue
			}
			depth := 0
			for _, dw := range d.dom[i] {
				depth += bits.OnesCount64(dw)
			}
			if depth > bestDepth {
				best, bestDepth = i, depth
			}
		}
	}
	return best
}

// verifyChain validates a dominance certificate: it must start at the
// site's block, end at the anchor, follow this computation's immediate
// dominators step for step, and the anchor must be in the site block's
// dominator set.
func (d *bitsetDoms) verifyChain(chain []int, site, anchor int) error {
	if len(chain) == 0 || chain[0] != site || chain[len(chain)-1] != anchor {
		return fmt.Errorf("dominance chain %v does not connect block %d to anchor %d", chain, site, anchor)
	}
	for i := 0; i+1 < len(chain); i++ {
		if id := d.idom(chain[i]); id != chain[i+1] {
			return fmt.Errorf("dominance chain step %d -> %d is not the immediate dominator (%d)",
				chain[i], chain[i+1], id)
		}
	}
	if !d.dominates(anchor, site) {
		return fmt.Errorf("anchor block %d does not dominate block %d", anchor, site)
	}
	return nil
}

// guardDigest content-addresses the guard decision set chained onto the
// elision digest, so one string pins the exact (elision, guard) pair.
func guardDigest(gr *GuardReport, elisionDigest string) string {
	h := sha256.New()
	h.Write([]byte(elisionDigest))
	dec, err := json.Marshal(gr.Decisions)
	if err != nil {
		panic(fmt.Sprintf("elide: guard decisions marshal: %v", err))
	}
	h.Write(dec)
	return hex.EncodeToString(h.Sum(nil))
}
