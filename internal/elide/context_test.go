package elide

import (
	"testing"

	"chex86/internal/asm"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
	"chex86/internal/ptrflow"
)

// twoCallerProgram: a helper called from two sites whose callers hold
// pointers to different regions in R9. Context-insensitive return
// merging loses both regions at the return sites; valid-path matching
// recovers them, so the two caller-side dereferences are provable only
// with per-context proofs.
func twoCallerProgram(b *asm.Builder) {
	b.Global("g1", 0x601000, 64)
	b.Global("g2", 0x601100, 64)
	for i := uint64(0); i < 8; i++ {
		b.DataU64(0x601000+8*i, 1)
		b.DataU64(0x601100+8*i, 1)
	}
	b.Global("p1", 0x600000, 8)
	b.Reloc(0x600000, "g1")
	b.Global("p2", 0x600008, 8)
	b.Reloc(0x600008, "g2")

	b.Mov(isa.RegOp(isa.R9), isa.MemOp(isa.RNone, 0x600000))
	b.Call("helper")
	b.Label("deref1")
	b.Load(isa.RAX, isa.R9, 0)
	b.Mov(isa.RegOp(isa.R9), isa.MemOp(isa.RNone, 0x600008))
	b.Call("helper")
	b.Label("deref2")
	b.Load(isa.RAX, isa.R9, 8)
	b.Hlt()

	b.Label("helper")
	b.Push(isa.RBX)
	b.AddRI(isa.RBX, 1)
	b.Pop(isa.RBX)
	b.Ret()
}

func TestContextElisionEndToEnd(t *testing.T) {
	p := buildProg(t, twoCallerProgram)

	insens, err := ForProgram(p, Options{ContextK: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := ForProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !insens.Verified || !ctx.Verified {
		t.Fatalf("bundle rejected: insens=%q ctx=%q", insens.Reason, ctx.Reason)
	}
	if ctx.Stats.Elided <= insens.Stats.Elided {
		t.Fatalf("context-sensitive proofs (%d) must exceed insensitive (%d) on the two-caller shape",
			ctx.Stats.Elided, insens.Stats.Elided)
	}
	for _, label := range []string{"deref1", "deref2"} {
		addr := p.MustLookup(label)
		key := pipeline.ElideKey{Addr: addr, MacroIdx: 0, Ctx: pipeline.CtxRoot}
		if !ctx.Map[key] {
			t.Errorf("%s: elision map missing context-qualified entry %v", label, key)
		}
		if insens.Map[pipeline.ElideKey{Addr: addr, MacroIdx: 0, Ctx: pipeline.CtxAny}] {
			t.Errorf("%s: insensitive map elides the merged-return site — the merge was supposed to lose it", label)
		}
	}
	// The map digest is part of the campaign cache key: the two
	// configurations must not collide.
	if ctx.Digest == insens.Digest {
		t.Fatal("context-sensitive and insensitive reports share a digest")
	}
}

// ctxBundle analyzes the two-caller program at k=2 and returns its
// bundle, which carries per-context invariants and proofs.
func ctxBundle(t *testing.T) (*asm.Program, *ptrflow.Bundle) {
	t.Helper()
	p := buildProg(t, twoCallerProgram)
	an, err := ptrflow.Analyze(p, ptrflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := an.ProofBundle()
	hasCtx := false
	for i := range b.Invariants {
		if b.Invariants[i].Ctx != "any" {
			hasCtx = true
		}
	}
	if !hasCtx {
		t.Fatal("bundle carries no per-context invariants")
	}
	return p, b
}

func TestCtxInvariantBadSiteRejected(t *testing.T) {
	p, b := ctxBundle(t)
	for i := range b.Invariants {
		if b.Invariants[i].Ctx != "any" && b.Invariants[i].Ctx != "root" {
			// Structurally valid context string, but the site is not an
			// internal CALL instruction.
			b.Invariants[i].Ctx = "0x2"
			break
		}
	}
	if _, err := newChecker(p, b, 1, nil); err == nil {
		t.Fatal("call-string site that is not an internal CALL was accepted")
	}
}

func TestCtxInvariantDuplicateRejected(t *testing.T) {
	p, b := ctxBundle(t)
	for i := range b.Invariants {
		if b.Invariants[i].Ctx != "any" {
			b.Invariants = append(b.Invariants, b.Invariants[i])
			break
		}
	}
	if _, err := newChecker(p, b, 1, nil); err == nil {
		t.Fatal("duplicate (block, context) claim was accepted")
	}
}

func TestCtxKOutOfRangeRejected(t *testing.T) {
	p, b := ctxBundle(t)
	b.CtxK = 3
	if _, err := newChecker(p, b, 1, nil); err == nil {
		t.Fatal("per-context claims at unsupported k were accepted")
	}
}

// TestTamperedCtxInvariantRejectsBundle flips the context-qualified R9
// claims to not-pointer: the tampered claims contradict the ⊤ layer
// (context-join subsumption) and are not inductive over the valid-path
// edges, so the bundle must be rejected.
func TestTamperedCtxInvariantRejectsBundle(t *testing.T) {
	p, b := ctxBundle(t)
	tampered := 0
	for i := range b.Invariants {
		if b.Invariants[i].Ctx == "any" {
			continue
		}
		f := &b.Invariants[i].Regs[isa.R9]
		if f.Tag == ptrflow.FactPtr {
			*f = ptrflow.Fact{Tag: ptrflow.FactNotPtr, Rng: ptrflow.Const(0)}
			tampered++
		}
	}
	if tampered == 0 {
		t.Fatal("no context-qualified pointer claim to tamper")
	}
	ck, err := newChecker(p, b, 1, nil)
	if err != nil {
		t.Fatalf("precondition reject (want induction reject): %v", err)
	}
	if err := ck.verifyInduction(); err == nil {
		t.Fatal("tampered per-context invariant passed the induction check")
	}
}

// TestForgedCtxProofRejected forges a proof claiming a (site, context)
// pair the invariants never claimed: the helper's stack push is only
// reachable under the two call-site contexts, so a root-context proof
// for it has no invariant to stand on.
func TestForgedCtxProofRejected(t *testing.T) {
	p, b := ctxBundle(t)
	ck, err := newChecker(p, b, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.verifyInduction(); err != nil {
		t.Fatalf("honest bundle must be inductive: %v", err)
	}
	forged := &ptrflow.Proof{
		Addr: p.MustLookup("helper"), MacroIdx: 0, Ctx: "root",
		Region: "g1", Lo: 0, Hi: 0, Size: 8,
	}
	if err := ck.verifyProof(forged); err == nil {
		t.Fatal("proof for an unclaimed (site, context) pair verified")
	}
}
