// Package elide turns the static analyzer's safety proofs into a
// capability-check elision map — but only after verifying every proof
// with a small independent checker. The trust argument is
// proof-carrying: the analyzer (internal/ptrflow, with its fixpoint
// engine, widening and region-restart machinery) produces a bundle of
// claims, and this package re-derives the facts those claims rest on
// with its own code. A bug in the analyzer yields a non-inductive
// bundle, which rejects every proof; it can never silently elide an
// unsafe check. The pipeline consumes the resulting map only behind the
// Config.ElideChecks knob, so the whole mechanism is fail-closed at
// every layer.
package elide

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"chex86/internal/asm"
	"chex86/internal/pipeline"
	"chex86/internal/ptrflow"
	"chex86/internal/tracker"
)

// Options configures proof generation and checking.
type Options struct {
	// Harts is the number of hardware threads the program runs with
	// (temporal safety conditions are stricter when concurrent frees are
	// possible). Zero means one.
	Harts int

	// IndirectTargets optionally maps indirect-branch addresses to their
	// possible targets. Note that any indirect branch — resolved or not —
	// rejects all proofs; the hints only serve CFG construction for the
	// keep-side diagnostics.
	IndirectTargets map[uint64][]uint64

	// ContextK selects the call-string depth of the analyzer's
	// context-sensitive layer: 0 means the default (k = 2), -1 disables
	// the layer entirely (context-insensitive proofs only).
	ContextK int
}

// SiteDecision is the per-dereference outcome: elide (independently
// verified proven-safe) or keep (no proof, or proof rejected).
type SiteDecision struct {
	Addr     uint64 `json:"addr"`
	MacroIdx uint8  `json:"macroIdx"`
	// Ctx is the calling context the decision applies in: "any" for the
	// context-insensitive layer (one row per site), or a call-string
	// form for a context-qualified proof row (emitted only when the
	// "any" row keeps the check).
	Ctx           string   `json:"ctx"`
	Store         bool     `json:"store,omitempty"`
	Status        string   `json:"status"` // "elide" | "keep"
	Region        string   `json:"region,omitempty"`
	Lo            int64    `json:"lo,omitempty"`
	Hi            int64    `json:"hi,omitempty"`
	Size          uint32   `json:"size,omitempty"`
	Reason        string   `json:"reason,omitempty"` // why kept
	Justification []string `json:"justification,omitempty"`
}

// Stats summarizes a checking run.
type Stats struct {
	Sites    int `json:"sites"`    // memory access sites analyzed
	Proofs   int `json:"proofs"`   // proofs the analyzer emitted
	Elided   int `json:"elided"`   // proofs the checker verified
	Rejected int `json:"rejected"` // proofs the checker refused
}

// Report is the verified elision decision set for one program. Its JSON
// form is byte-stable: decisions follow the analyzer's sorted site
// order, and every field is plain data.
type Report struct {
	Harts int `json:"harts"`
	// CtxK is the call-string depth of the bundle's context-sensitive
	// layer (-1 = none). The pipeline configuration must carry it
	// (Config.ElisionCtxK) so the runtime truncates its live fold to the
	// depth the map's keys were built at.
	CtxK         int            `json:"ctxK"`
	Verified     bool           `json:"verified"`
	Reason       string         `json:"reason,omitempty"` // bundle-level rejection
	HeapMinChunk uint64         `json:"heapMinChunk,omitempty"`
	Stats        Stats          `json:"stats"`
	Decisions    []SiteDecision `json:"decisions"`

	// Digest is the content address of the decision set (plus the
	// tracker rule semantics the proofs were validated against). The
	// pipeline configuration carries it (Config.ElisionDigest) so the
	// campaign result cache keys on the exact map in effect.
	Digest string `json:"digest"`

	// Map is the pipeline-consumable elision map (true at proven-safe
	// sites only).
	Map pipeline.ElisionMap `json:"-"`

	// Guards is the verified hoisted-guard set (guard.go): the bundle's
	// dominator-anchored fused claims re-verified fail-closed against
	// this report's elision map.
	Guards GuardReport `json:"guards"`
}

// ForProgram analyzes prog, has the analyzer emit a proof bundle, and
// independently verifies it into an elision report. The error covers
// analysis failure only; rejected proofs surface as keep decisions.
func ForProgram(prog *asm.Program, opt Options) (*Report, error) {
	an, err := ptrflow.Analyze(prog, ptrflow.Options{
		Harts:           opt.Harts,
		IndirectTargets: opt.IndirectTargets,
		ContextK:        opt.ContextK,
	})
	if err != nil {
		return nil, fmt.Errorf("elide: %w", err)
	}
	return FromAnalysis(prog, an, opt), nil
}

// FromAnalysis verifies an existing analysis' proof bundle.
func FromAnalysis(prog *asm.Program, an *ptrflow.Analysis, opt Options) *Report {
	harts := opt.Harts
	if harts <= 0 {
		harts = 1
	}
	bundle := an.ProofBundle()
	rep := &Report{Harts: harts, CtxK: bundle.CtxK, Map: pipeline.ElisionMap{}}

	type key struct {
		addr uint64
		idx  uint8
	}
	ctxAny := pipeline.CtxAny.String()
	anyProofs := map[key]*ptrflow.Proof{}
	ctxProofs := map[key][]*ptrflow.Proof{}
	for i := range bundle.Proofs {
		p := &bundle.Proofs[i]
		k := key{p.Addr, p.MacroIdx}
		if p.Ctx == "" || p.Ctx == ctxAny {
			anyProofs[k] = p
		} else {
			ctxProofs[k] = append(ctxProofs[k], p)
		}
	}
	rep.Stats.Proofs = len(bundle.Proofs)

	ck, err := newChecker(prog, bundle, harts, opt.IndirectTargets)
	if err == nil {
		err = ck.verifyInduction()
	}
	if err != nil {
		rep.Reason = err.Error()
	} else {
		rep.Verified = true
		rep.HeapMinChunk = ck.heapChunkMin()
	}

	sites := an.SortedSites()
	for _, s := range sites {
		k := key{s.Addr, s.MacroIdx}
		d := SiteDecision{Addr: s.Addr, MacroIdx: s.MacroIdx, Ctx: ctxAny, Store: s.Store, Status: "keep"}
		p, hasProof := anyProofs[k]
		switch {
		case !hasProof:
			d.Reason = fmt.Sprintf("no proof (analyzer verdict: %s)", s.Verdict)
		case err != nil:
			d.Reason = "bundle rejected: " + err.Error()
			rep.Stats.Rejected++
		default:
			if perr := ck.verifyProof(p); perr != nil {
				d.Reason = "proof rejected: " + perr.Error()
				rep.Stats.Rejected++
			} else {
				elideInto(&d, p)
				rep.Map[pipeline.ElideKey{Addr: p.Addr, MacroIdx: p.MacroIdx, Ctx: pipeline.CtxAny}] = true
				rep.Stats.Elided++
			}
		}
		rep.Decisions = append(rep.Decisions, d)
		if d.Status == "elide" {
			continue // a ⊤ elision already covers every calling context
		}
		// Context-qualified proofs for a site the ⊤ layer keeps: one
		// decision row per claimed context, in the bundle's canonical
		// context order.
		for _, cp := range ctxProofs[k] {
			cd := SiteDecision{Addr: s.Addr, MacroIdx: s.MacroIdx, Ctx: cp.Ctx, Store: s.Store, Status: "keep"}
			ctx, cerr := pipeline.ParseCallCtx(cp.Ctx)
			switch {
			case err != nil:
				cd.Reason = "bundle rejected: " + err.Error()
				rep.Stats.Rejected++
			case cerr != nil:
				cd.Reason = "proof rejected: " + cerr.Error()
				rep.Stats.Rejected++
			default:
				if perr := ck.verifyProof(cp); perr != nil {
					cd.Reason = "proof rejected: " + perr.Error()
					rep.Stats.Rejected++
				} else {
					elideInto(&cd, cp)
					rep.Map[pipeline.ElideKey{Addr: cp.Addr, MacroIdx: cp.MacroIdx, Ctx: ctx}] = true
					rep.Stats.Elided++
				}
			}
			rep.Decisions = append(rep.Decisions, cd)
		}
	}
	rep.Stats.Sites = len(sites)
	rep.Digest = digest(rep)
	rep.Guards = verifyGuards(ck, err, bundle, rep)
	return rep
}

func elideInto(d *SiteDecision, p *ptrflow.Proof) {
	d.Status = "elide"
	d.Region = p.Region
	d.Lo, d.Hi, d.Size = p.Lo, p.Hi, p.Size
	d.Justification = append(append([]string{}, p.Justification...),
		"checker: block invariants verified inductive, site conditions re-derived independently")
}

// digest content-addresses the decision set together with the tracker
// rule semantics it was validated against and the hart count the
// temporal conditions assumed.
func digest(rep *Report) string {
	h := sha256.New()
	var harts [8]byte
	binary.LittleEndian.PutUint64(harts[:], uint64(rep.Harts))
	h.Write(harts[:])
	dec, err := json.Marshal(rep.Decisions)
	if err != nil {
		panic(fmt.Sprintf("elide: decisions marshal: %v", err))
	}
	h.Write(dec)
	rules, err := json.Marshal(tracker.NewRuleDB().Export())
	if err != nil {
		panic(fmt.Sprintf("elide: rule export marshal: %v", err))
	}
	h.Write(rules)
	return hex.EncodeToString(h.Sum(nil))
}
