package elide

import (
	"strings"
	"testing"

	"chex86/internal/pipeline"
	"chex86/internal/ptrflow"
)

// --- Verified guards on the happy path -------------------------------

func TestGuardsVerifyInductionLoop(t *testing.T) {
	p := buildProg(t, inductionLoop(4))
	rep, err := ForProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Guards.Verified {
		t.Fatalf("guard set rejected: %s", rep.Guards.Reason)
	}
	if rep.Guards.Stats.Guards == 0 || rep.Guards.Stats.Covered == 0 {
		t.Fatalf("guard stats %+v, want verified guards with covered sites", rep.Guards.Stats)
	}
	if len(rep.Guards.Map.Guards) == 0 || len(rep.Guards.Map.Covered) == 0 {
		t.Fatal("verified guard report must populate the pipeline guard map")
	}
	if rep.Guards.Digest == "" {
		t.Fatal("verified guard report must carry a digest")
	}
	// Every covered key the guard map attributes must be an elision-map
	// key: subsumption never admits a check the elision layer keeps.
	for k := range rep.Guards.Map.Covered {
		if !rep.Map[k] {
			t.Errorf("covered key %+v is not in the verified elision map", k)
		}
	}
}

func TestGuardsRejectedWithBundle(t *testing.T) {
	// An out-of-bounds loop rejects the proof bundle; the guard set must
	// reject with it rather than survive on stale claims.
	p := buildProg(t, inductionLoop(8))
	rep, err := ForProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Elided != 0 {
		t.Fatalf("out-of-bounds loop must not elide, stats %+v", rep.Stats)
	}
	if len(rep.Guards.Map.Guards) != 0 || len(rep.Guards.Map.Covered) != 0 {
		t.Fatal("no guard may survive when nothing is verifiably elidable")
	}
}

// --- Tamper cases ----------------------------------------------------

// TestGuardTamperRejectsWholeSet forges one field of one guard claim per
// case and requires the checker to reject the entire guard set
// fail-closed: Verified false, every decision "reject", an empty
// pipeline map — while the elision decisions stay untouched.
func TestGuardTamperRejectsWholeSet(t *testing.T) {
	cases := []struct {
		name string
		// tamper mutates the bundle's guard claims; it returns a fragment
		// the rejection reason must mention.
		tamper func(t *testing.T, b *ptrflow.Bundle) string
	}{
		{
			// The dominance certificate is reversed: the chain no longer
			// runs site -> anchor along immediate dominators.
			name: "forged dominance certificate",
			tamper: func(t *testing.T, b *ptrflow.Bundle) string {
				gs := firstChainedSite(t, b)
				for i, j := 0, len(gs.Chain)-1; i < j; i, j = i+1, j-1 {
					gs.Chain[i], gs.Chain[j] = gs.Chain[j], gs.Chain[i]
				}
				return "chain"
			},
		},
		{
			// The covered site claims membership in a block it is not in
			// (off the anchor's dominated set).
			name: "covered site off dominated set",
			tamper: func(t *testing.T, b *ptrflow.Bundle) string {
				gs := firstChainedSite(t, b)
				gs.Block++
				gs.Chain[0] = gs.Block
				return "does not match the checker's CFG"
			},
		},
		{
			// The fused interval is narrowed below a covered dereference's
			// span: the guard would under-check the site it claims.
			name: "fused interval narrower than covered deref",
			tamper: func(t *testing.T, b *ptrflow.Bundle) string {
				g := &b.Guards[0]
				g.End = g.Lo + 1
				return "escapes fused"
			},
		},
		{
			// The per-site certificate is narrowed below the checker's own
			// derivation: the claim under-states what the loop touches.
			name: "site interval narrower than derivation",
			tamper: func(t *testing.T, b *ptrflow.Bundle) string {
				gs := firstChainedSite(t, b)
				gs.Hi -= int64(gs.Size)
				return ""
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := buildProg(t, inductionLoop(4))
			an, err := ptrflow.Analyze(p, ptrflow.Options{Harts: 1})
			if err != nil {
				t.Fatal(err)
			}
			rep := FromAnalysis(p, an, Options{})
			if !rep.Guards.Verified {
				t.Fatalf("baseline guard set rejected: %s", rep.Guards.Reason)
			}
			baseElided := rep.Stats.Elided

			b := an.ProofBundle()
			if len(b.Guards) == 0 {
				t.Fatal("no guards to tamper with")
			}
			ck, err := newChecker(p, b, 1, nil)
			if err == nil {
				err = ck.verifyInduction()
			}
			if err != nil {
				t.Fatalf("baseline bundle rejected: %v", err)
			}

			want := tc.tamper(t, b)
			gr := verifyGuards(ck, nil, b, rep)

			if gr.Verified {
				t.Fatal("tampered guard set verified; want fail-closed rejection")
			}
			if gr.Reason == "" || !strings.Contains(gr.Reason, want) {
				t.Errorf("reason %q does not mention %q", gr.Reason, want)
			}
			if len(gr.Map.Guards) != 0 || len(gr.Map.Covered) != 0 {
				t.Error("rejected guard set must yield an empty pipeline map")
			}
			if gr.Stats.Rejected != len(b.Guards) || gr.Stats.Covered != 0 {
				t.Errorf("stats %+v: one bad claim must reject the whole set", gr.Stats)
			}
			for i := range gr.Decisions {
				if gr.Decisions[i].Status != "reject" {
					t.Errorf("decision %d status %q, want reject", i, gr.Decisions[i].Status)
				}
			}
			// The elision layer is independent: tampered guards never
			// disturb the verified per-site decisions.
			if rep.Stats.Elided != baseElided || !rep.Verified {
				t.Error("guard rejection must leave elision decisions untouched")
			}
		})
	}
}

// firstChainedSite returns a covered site whose dominance chain has at
// least two blocks (so chain tampering is observable).
func firstChainedSite(t *testing.T, b *ptrflow.Bundle) *ptrflow.GuardSite {
	t.Helper()
	for i := range b.Guards {
		for j := range b.Guards[i].Covered {
			if len(b.Guards[i].Covered[j].Chain) >= 2 {
				return &b.Guards[i].Covered[j]
			}
		}
	}
	t.Fatal("no covered site with a multi-block dominance chain")
	return nil
}

// TestGuardDigestCoversDecisions pins the digest chain: the guard digest
// must change when the elision digest changes (it is chained), and a
// verified report's digest must differ from a rejected one's.
func TestGuardDigestCoversDecisions(t *testing.T) {
	p := buildProg(t, inductionLoop(4))
	rep, err := ForProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gr := rep.Guards
	if gr.Digest == rep.Digest {
		t.Fatal("guard digest must not equal the elision digest")
	}
	other := GuardReport{Map: pipeline.GuardMap{}}
	if d := guardDigest(&other, rep.Digest); d == gr.Digest {
		t.Fatal("digest must cover the guard decisions, not just the elision chain")
	}
}
