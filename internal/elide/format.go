package elide

import (
	"fmt"
	"strings"
)

// Format renders the report as a human-readable proof table: one line
// per memory-access site with the verified bounds for elided sites and
// the keep reason otherwise, followed by each proof's justification
// chain.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  proof check: verified=%v sites=%d proofs=%d elided=%d rejected=%d",
		r.Verified, r.Stats.Sites, r.Stats.Proofs, r.Stats.Elided, r.Stats.Rejected)
	if r.HeapMinChunk > 0 {
		fmt.Fprintf(&b, " heap-min=%dB", r.HeapMinChunk)
	}
	b.WriteByte('\n')
	if r.Reason != "" {
		fmt.Fprintf(&b, "  bundle rejected: %s\n", r.Reason)
	}
	for _, d := range r.Decisions {
		kind := "load"
		if d.Store {
			kind = "store"
		}
		ctx := ""
		if d.Ctx != "" && d.Ctx != "any" {
			ctx = "  ctx=" + d.Ctx
		}
		if d.Status == "elide" {
			fmt.Fprintf(&b, "  %#08x.%d %-5s elide  %s+[%d,%d] width %d%s\n",
				d.Addr, d.MacroIdx, kind, d.Region, d.Lo, d.Hi, d.Size, ctx)
			for _, j := range d.Justification {
				fmt.Fprintf(&b, "      · %s\n", j)
			}
		} else {
			fmt.Fprintf(&b, "  %#08x.%d %-5s keep  %s %s\n", d.Addr, d.MacroIdx, kind, ctx, d.Reason)
		}
	}
	fmt.Fprintf(&b, "  guard check: verified=%v guards=%d covered=%d rejected=%d",
		r.Guards.Verified, r.Guards.Stats.Guards, r.Guards.Stats.Covered, r.Guards.Stats.Rejected)
	if r.Guards.Reason != "" {
		fmt.Fprintf(&b, "  (%s)", r.Guards.Reason)
	}
	b.WriteByte('\n')
	for _, g := range r.Guards.Decisions {
		if g.Status == "hoist" {
			fmt.Fprintf(&b, "  guard %#08x block %d ctx=%s %s+[%d,%d) covers %d\n",
				g.Addr, g.Block, g.Ctx, g.Region, g.Lo, g.End, g.Covered)
		} else {
			fmt.Fprintf(&b, "  guard %#08x block %d ctx=%s reject  %s\n", g.Addr, g.Block, g.Ctx, g.Reason)
		}
	}
	fmt.Fprintf(&b, "  digest: %s\n", r.Digest)
	return b.String()
}
