package elide

import (
	"strings"
	"testing"

	"chex86/internal/asm"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
	"chex86/internal/ptrflow"
)

func buildProg(t *testing.T, f func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	f(b)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// inductionLoop builds `for i = 0; i < trip; i++ { tab[i] }` over a
// 32-byte table behind a relocation-seeded pointer, with the loop guard
// as the only bound on the index. trip=4 stays in bounds; trip=8 walks
// 32 bytes past the end on its last four iterations.
func inductionLoop(trip int64) func(b *asm.Builder) {
	return func(b *asm.Builder) {
		b.Global("tab", 0x601000, 32)
		for i := uint64(0); i < 4; i++ {
			b.DataU64(0x601000+8*i, 1)
		}
		b.Global("tabp", 0x600000, 8)
		b.Reloc(0x600000, "tab")
		b.Global("zero", 0x600008, 8)
		b.DataU64(0x600008, 0)
		b.Mov(isa.RegOp(isa.RBX), isa.MemOp(isa.RNone, 0x600000))
		b.Mov(isa.RegOp(isa.R9), isa.MemOp(isa.RNone, 0x600008))
		b.Label("loop")
		b.LoadIdx(isa.R8, isa.RBX, isa.R9, 8, 0)
		b.AddRI(isa.R9, 1)
		b.CmpRI(isa.R9, trip)
		b.Jcc(isa.CondL, "loop")
		b.Hlt()
	}
}

func TestElideInductionLoop(t *testing.T) {
	p := buildProg(t, inductionLoop(4))
	rep, err := ForProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Fatalf("bundle rejected: %s", rep.Reason)
	}
	if rep.Stats.Elided == 0 || rep.Stats.Rejected != 0 {
		t.Fatalf("stats %+v, want verified elisions and no rejections\n%s", rep.Stats, rep.Format())
	}
	addr := p.MustLookup("loop")
	var d *SiteDecision
	for i := range rep.Decisions {
		if rep.Decisions[i].Addr == addr {
			d = &rep.Decisions[i]
		}
	}
	if d == nil || d.Status != "elide" {
		t.Fatalf("loop site not elided:\n%s", rep.Format())
	}
	if d.Region != "tab" || d.Lo != 0 || d.Hi != 24 || d.Size != 8 {
		t.Fatalf("decision bounds %s+[%d,%d] width %d, want tab+[0,24] width 8",
			d.Region, d.Lo, d.Hi, d.Size)
	}
	if !rep.Map[pipeline.ElideKey{Addr: addr, MacroIdx: d.MacroIdx, Ctx: pipeline.CtxAny}] {
		t.Fatal("elision map is missing the proven site")
	}

	// The digest is a content address: identical inputs, identical digest.
	rep2, err := ForProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Digest == "" || rep.Digest != rep2.Digest {
		t.Fatalf("digest not stable: %q vs %q", rep.Digest, rep2.Digest)
	}
}

// TestTamperedInvariantRejectsBundle mounts the attack the independent
// checker exists to stop: the OOB-trip-count loop is unprovable, so an
// "analyzer" (here: us, tampering the bundle) claims a tighter loop
// invariant — the counter never exceeds 3 — and forges a proof that the
// access stays inside the table. The claim is not inductive (the back
// edge carries counter values up to 7), so the checker must reject the
// whole bundle.
func TestTamperedInvariantRejectsBundle(t *testing.T) {
	p := buildProg(t, inductionLoop(8))
	an, err := ptrflow.Analyze(p, ptrflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := an.ProofBundle()
	if len(b.Proofs) != 0 {
		t.Fatalf("OOB loop should carry no proofs, got %d", len(b.Proofs))
	}
	tampered := 0
	for i := range b.Invariants {
		f := &b.Invariants[i].Regs[isa.R9]
		if f.Tag == ptrflow.FactNotPtr && !f.Rng.Full() {
			f.Rng = f.Rng.Meet(ptrflow.Interval{Lo: 0, Hi: 3})
			tampered++
		}
	}
	if tampered == 0 {
		t.Fatal("no counter invariant found to tamper")
	}
	b.Proofs = append(b.Proofs, ptrflow.Proof{
		Addr: p.MustLookup("loop"), MacroIdx: 0, Region: "tab", Lo: 0, Hi: 24, Size: 8,
	})
	ck, err := newChecker(p, b, 1, nil)
	if err != nil {
		t.Fatalf("precondition reject (want induction reject): %v", err)
	}
	if err := ck.verifyInduction(); err == nil {
		t.Fatal("tampered (non-inductive) invariant passed the induction check")
	}
}

// TestForgedProofRejected keeps the bundle honest but forges only the
// proof: induction holds, yet the checker's own bounds for the OOB site
// ([0,56] of a 32-byte table) exceed the region span, so the site check
// must refuse it.
func TestForgedProofRejected(t *testing.T) {
	p := buildProg(t, inductionLoop(8))
	an, err := ptrflow.Analyze(p, ptrflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := an.ProofBundle()
	ck, err := newChecker(p, b, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.verifyInduction(); err != nil {
		t.Fatalf("honest bundle must be inductive: %v", err)
	}
	forged := &ptrflow.Proof{
		Addr: p.MustLookup("loop"), MacroIdx: 0, Region: "tab", Lo: 0, Hi: 24, Size: 8,
	}
	if err := ck.verifyProof(forged); err == nil {
		t.Fatal("forged proof for an out-of-bounds site verified")
	}
}

// TestTamperedStoreClaimRejectsBundle narrows a region's claimed store
// summary below what the program actually stores: the store-subsumption
// check must fail and reject the bundle.
func TestTamperedStoreClaimRejectsBundle(t *testing.T) {
	p := buildProg(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 64)
		b.CallAddr(heap.MallocEntry)
		b.MovRI(isa.RCX, 7)
		b.Store(isa.RAX, 0, isa.RCX) // stores 7 into the chunk
		b.Hlt()
	})
	an, err := ptrflow.Analyze(p, ptrflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := an.ProofBundle()
	tampered := false
	for i := range b.Regions {
		r := &b.Regions[i]
		if r.Name == ptrflow.HeapRegion {
			// Claim the heap only ever holds zero.
			r.Stores = ptrflow.Fact{Tag: ptrflow.FactNotPtr, Rng: ptrflow.Const(0)}
			tampered = true
		}
	}
	if !tampered {
		t.Fatal("no heap region claim to tamper")
	}
	ck, err := newChecker(p, b, 1, nil)
	if err != nil {
		t.Fatalf("precondition reject (want induction reject): %v", err)
	}
	err = ck.verifyInduction()
	if err == nil {
		t.Fatal("store wider than the tampered claim passed the induction check")
	}
	if !strings.Contains(err.Error(), "store") {
		t.Fatalf("rejection should name the store subsumption failure, got: %v", err)
	}
}
