package elide

import (
	"fmt"

	"chex86/internal/isa"
	"chex86/internal/pipeline"
)

// This file is the checker side of the context-sensitive layer
// (DESIGN.md §14). The analyzer claims one invariant per reachable
// (block, k-limited call string) node; the checker re-derives the edge
// relation those claims must be inductive over — context pushes at
// internal calls, valid-path returns matched through a caller registry
// it rebuilds itself from the claimed key set — and verifies:
//
//  1. entry coverage: every hart entry block is claimed at the root
//     context, containing the checker's entry state;
//  2. induction: every claimed node's transferred-out state is contained
//     in the claimed invariant of every context-aware edge target, and
//     every such target is itself claimed (fail-closed closure: an edge
//     into an unclaimed node rejects the bundle rather than assuming
//     anything about it);
//  3. context-join subsumption: every per-context invariant is contained
//     in the same block's ⊤-layer invariant, so a context-qualified
//     claim is never weaker than the joined claim the CtxAny fallback
//     elides against.
//
// The ⊤ layer's own induction over the merged Succs graph is verified
// separately (verifyInduction) and is untouched by any of this: a
// merged-graph induction would be unsound for per-context states (a
// return site only receives its matched callers' RET states, not the
// join over all callers), which is exactly why the two layers carry
// separate obligations.

// verifyCtxInduction verifies the bundle's context-sensitive layer. A
// bundle with no per-context claims (CtxK < 1) passes trivially.
func (ck *checker) verifyCtxInduction() error {
	if len(ck.ctxOrder) == 0 {
		return nil
	}
	g := ck.cfg
	k := ck.bundle.CtxK // decodeClaims validated 1 <= k <= 2

	// Entry coverage at the root context.
	for _, e := range g.Entries {
		inv, ok := ck.ctxInvs[ctxInvKey{block: e, ctx: pipeline.CtxRoot}]
		if !ok {
			return fmt.Errorf("entry block %d has no root-context invariant", e)
		}
		if err := stateLE(newEntryCState(), inv); err != nil {
			return fmt.Errorf("entry block %d at root context: %v", e, err)
		}
	}

	// Context-join subsumption against the ⊤ layer.
	for _, key := range ck.ctxOrder {
		anyInv, ok := ck.invs[key.block]
		if !ok {
			return fmt.Errorf("block %d claimed at context %s but has no ⊤ invariant",
				key.block, key.ctx)
		}
		if err := stateLE(stateFromInv(ck.ctxInvs[key]), anyInv); err != nil {
			return fmt.Errorf("block %d context %s not subsumed by ⊤ invariant: %v",
				key.block, key.ctx, err)
		}
	}

	// Caller registry, rebuilt from the claimed key set: a claimed call
	// block (b, c) with a return site registers (b, c) as a caller of
	// every callee under the pushed context c·site. RET states under a
	// callee context propagate only to these matched return sites — the
	// valid-path edges.
	type retMatch struct {
		fn  uint64
		ctx pipeline.CallCtx
	}
	callers := map[retMatch][]ctxInvKey{}
	for _, key := range ck.ctxOrder {
		b := &g.Blocks[key.block]
		if len(b.Callees) == 0 || b.CallFall < 0 {
			continue
		}
		calleeCtx := key.ctx.PushK(b.CallSite, k)
		for _, ce := range b.Callees {
			fn := g.Prog.Insts[g.Blocks[ce].Start].Addr
			callers[retMatch{fn: fn, ctx: calleeCtx}] =
				append(callers[retMatch{fn: fn, ctx: calleeCtx}], key)
		}
	}

	require := func(key ctxInvKey, from ctxInvKey) (*invariant, error) {
		inv, ok := ck.ctxInvs[key]
		if !ok {
			return nil, fmt.Errorf("block %d context %s flows into block %d context %s which has no invariant",
				from.block, from.ctx, key.block, key.ctx)
		}
		return inv, nil
	}
	flow := func(st *cstate, key ctxInvKey, from ctxInvKey) error {
		inv, err := require(key, from)
		if err != nil {
			return err
		}
		if err := stateLE(st, inv); err != nil {
			return fmt.Errorf("block %d -> %d (context %s -> %s) not inductive: %v",
				from.block, key.block, from.ctx, key.ctx, err)
		}
		return nil
	}

	for _, key := range ck.ctxOrder {
		b := &g.Blocks[key.block]
		st := stateFromInv(ck.ctxInvs[key])
		cmp := ck.transferBlockF(b, st, nil)
		last := &g.Prog.Insts[b.End-1]
		switch {
		case len(b.Callees) > 0:
			calleeCtx := key.ctx.PushK(b.CallSite, k)
			for _, ce := range b.Callees {
				if err := flow(st, ctxInvKey{block: ce, ctx: calleeCtx}, key); err != nil {
					return err
				}
			}
		case last.Op == isa.RET:
			for _, fn := range g.RetOwners[key.block] {
				for _, caller := range callers[retMatch{fn: fn, ctx: key.ctx}] {
					fall := g.Blocks[caller.block].CallFall
					if err := flow(st, ctxInvKey{block: fall, ctx: caller.ctx}, key); err != nil {
						return err
					}
				}
			}
		default:
			for _, succ := range b.Succs {
				es := st
				if cmp.ok && b.TakenSucc >= 0 && b.TakenSucc != b.FallSucc &&
					(succ == b.TakenSucc || succ == b.FallSucc) {
					es = st.clone()
					refineF(es, cmp, b.Cond, succ == b.TakenSucc)
				}
				if err := flow(es, ctxInvKey{block: succ, ctx: key.ctx}, key); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
