package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"chex86/internal/asm"
	"chex86/internal/decode"
)

// livelockProg is the canonical hung guest: an unconditional jump to
// itself. The emulator never drains it, so only the watchdog can end the
// simulation.
func livelockProg(t *testing.T) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestWatchdogKillsLivelock: under every protection variant, the
// cycle-budget watchdog converts a jmp-to-self livelock into a structured
// ErrCycleLimit carrying a pipeline snapshot, within the configured bound.
func TestWatchdogKillsLivelock(t *testing.T) {
	prog := livelockProg(t)
	const budget = 200000
	for v := decode.Variant(0); v < decode.NumVariants; v++ {
		cfg := DefaultConfig()
		cfg.Variant = v
		cfg.MaxCycles = budget
		sim, err := NewSim(prog, cfg, 1)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		_, err = sim.Run()
		var se *SimError
		if !errors.As(err, &se) || se.Kind != ErrCycleLimit {
			t.Fatalf("%v: want ErrCycleLimit, got %v", v, err)
		}
		if se.Snapshot == nil || len(se.Snapshot.Harts) != 1 {
			t.Fatalf("%v: watchdog error must carry a per-hart snapshot", v)
		}
		if se.Snapshot.Harts[0].LastRIP == 0 {
			t.Fatalf("%v: snapshot must record the last fetched RIP", v)
		}
		// The watchdog fires between scheduling rounds, so overshoot is
		// bounded by one macro-op's worth of cycles.
		if got := sim.CurrentCycle(); got > 2*budget {
			t.Fatalf("%v: watchdog fired at cycle %d, far past the %d budget", v, got, budget)
		}
	}
}

// TestStallWatchdog: a front-end that runs away from the commit point
// (no commit for StallCycles) is reported as ErrHang. The condition cannot
// arise organically in the trace-driven model, so the gap is staged
// directly.
func TestStallWatchdog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StallCycles = 1000
	sim, err := NewSim(livelockProg(t), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Step(1); err != nil {
		t.Fatal(err)
	}
	c := sim.cores[0]
	c.fetchAt = c.lastCommit + cfg.StallCycles + 1
	err = sim.checkWatchdog()
	var se *SimError
	if !errors.As(err, &se) || se.Kind != ErrHang {
		t.Fatalf("want ErrHang, got %v", err)
	}
	if se.Snapshot == nil {
		t.Fatal("hang error must carry a snapshot")
	}
	// Inside the stall window the watchdog stays quiet.
	c.fetchAt = c.lastCommit + cfg.StallCycles
	if err := sim.checkWatchdog(); err != nil {
		t.Fatalf("within the window: unexpected %v", err)
	}
}

// countedCtx reports cancellation only after Err has been consulted limit
// times, which lets the test count how many scheduling rounds RunContext
// executes after the cancellation point.
type countedCtx struct {
	context.Context
	calls, limit int
}

func (c *countedCtx) Err() error {
	c.calls++
	if c.calls > c.limit {
		return context.Canceled
	}
	return nil
}

// TestRunContextCancelStopsWithinOneRound: once the context reports
// cancellation, RunContext must stop before executing another scheduling
// round.
func TestRunContextCancelStopsWithinOneRound(t *testing.T) {
	cfg := DefaultConfig()
	sim, err := NewSim(livelockProg(t), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &countedCtx{Context: context.Background(), limit: 5}
	res, err := sim.RunContext(ctx)
	var se *SimError
	if !errors.As(err, &se) || se.Kind != ErrCanceled {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res == nil {
		t.Fatal("cancellation must still return the partial result")
	}
	// One macro-op per core per round: with 5 clean Err() checks, at most
	// 5 rounds ran before the cancellation was observed.
	if got := sim.M.TotalInsts(); got > uint64(ctx.limit) {
		t.Fatalf("simulation ran %d macro-ops after a %d-round cancellation window", got, ctx.limit)
	}
}

// TestRunContextDeadline: a livelocked guest under a 100ms wall-clock
// deadline stops promptly with ErrDeadline.
func TestRunContextDeadline(t *testing.T) {
	cfg := DefaultConfig()
	sim, err := NewSim(livelockProg(t), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sim.RunContext(ctx)
	elapsed := time.Since(start)
	var se *SimError
	if !errors.As(err, &se) || se.Kind != ErrDeadline {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrDeadline must unwrap to context.DeadlineExceeded")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline honored only after %v", elapsed)
	}
}

// TestNewSimConfigError: invalid configurations surface as ErrConfig from
// NewSim, and the legacy New wrapper panics on them.
func TestNewSimConfigError(t *testing.T) {
	prog := livelockProg(t)
	cfg := DefaultConfig()
	if _, err := NewSim(prog, cfg, 0); !isConfigErr(err) {
		t.Fatalf("zero harts: want ErrConfig, got %v", err)
	}
	bad := DefaultConfig()
	bad.LineSize = 48 // not a power of two
	if _, err := NewSim(prog, bad, 1); !isConfigErr(err) {
		t.Fatalf("bad line size: want ErrConfig, got %v", err)
	}
	if _, err := NewSim(nil, cfg, 1); !isConfigErr(err) {
		t.Fatalf("nil program: want ErrConfig, got %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on a configuration error")
		}
	}()
	New(prog, cfg, 0)
}

func isConfigErr(err error) bool {
	var se *SimError
	return errors.As(err, &se) && se.Kind == ErrConfig
}
