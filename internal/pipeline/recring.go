package pipeline

import (
	"chex86/internal/emu"
)

// recRing is a growable circular FIFO of committed trace records, used to
// buffer records destined for other cores in Sim.nextRec. Unlike the
// reslicing queue it replaces (q = q[1:] on every pop), a ring reuses its
// backing array forever: memory is bounded by the high-water mark of
// simultaneously buffered records, not by the total number ever queued,
// and steady-state push/pop performs no allocation.
type recRing struct {
	buf  []*emu.Rec
	head int
	n    int
}

// push appends rec at the tail, growing the backing array only when full.
func (r *recRing) push(rec *emu.Rec) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = rec
	r.n++
}

// pop removes and returns the head record, or nil when empty. The vacated
// slot is cleared so the ring never pins a recycled record against GC.
func (r *recRing) pop() *emu.Rec {
	if r.n == 0 {
		return nil
	}
	rec := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return rec
}

// size returns the number of buffered records.
func (r *recRing) size() int { return r.n }

func (r *recRing) grow() {
	newCap := len(r.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]*emu.Rec, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
}
