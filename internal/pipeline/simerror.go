package pipeline

import (
	"fmt"
	"strings"
)

// SimErrorKind classifies structured simulation errors.
type SimErrorKind uint8

const (
	// ErrConfig marks an invalid machine configuration or program rejected
	// at construction time.
	ErrConfig SimErrorKind = iota
	// ErrHang marks a forward-progress watchdog trip: some hart made no
	// commit for the configured stall window while its front-end advanced.
	ErrHang
	// ErrCycleLimit marks the cycle-budget watchdog: the simulation ran
	// past Config.MaxCycles without draining (a livelocked guest).
	ErrCycleLimit
	// ErrCanceled marks a RunContext cancellation.
	ErrCanceled
	// ErrDeadline marks a RunContext deadline expiry.
	ErrDeadline
)

var simErrorNames = [...]string{
	"config", "hang", "cycle-limit", "canceled", "deadline",
}

// String names the error kind.
func (k SimErrorKind) String() string {
	if int(k) < len(simErrorNames) {
		return simErrorNames[k]
	}
	return "sim-error?"
}

// HartSnapshot is one hart's pipeline state at the moment a structured
// error was raised.
type HartSnapshot struct {
	Hart    int    `json:"hart"`
	Cycle   uint64 `json:"cycle"`   // last commit cycle on this hart
	FetchAt uint64 `json:"fetchAt"` // front-end position
	LastRIP uint64 `json:"lastRip"` // last committed macro-op address
	Done    bool   `json:"done"`
	ROB     int    `json:"rob"` // occupancy at the last commit cycle
	IQ      int    `json:"iq"`
	LQ      int    `json:"lq"`
	SQ      int    `json:"sq"`
}

// Snapshot captures the pipeline state carried by hang/cancellation
// errors, so a killed run is diagnosable without re-running it.
type Snapshot struct {
	Cycle      uint64         `json:"cycle"` // latest commit cycle across harts
	TotalInsts uint64         `json:"totalInsts"`
	Harts      []HartSnapshot `json:"harts"`
}

// String renders a one-line snapshot summary.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d insts=%d", s.Cycle, s.TotalInsts)
	for _, h := range s.Harts {
		fmt.Fprintf(&b, " [hart%d rip=%#x cycle=%d rob=%d iq=%d lq=%d sq=%d]",
			h.Hart, h.LastRIP, h.Cycle, h.ROB, h.IQ, h.LQ, h.SQ)
	}
	return b.String()
}

// SimError is a structured simulation error: every internal failure mode
// of the simulator (bad configuration, livelock, cancellation) surfaces as
// one of these instead of a panic or a wall-clock hang.
type SimError struct {
	Kind     SimErrorKind
	Msg      string
	Snapshot *Snapshot // pipeline state at the fault (nil for config errors)
	Err      error     // wrapped cause (nil unless wrapping)
}

// Error implements error.
func (e *SimError) Error() string {
	s := fmt.Sprintf("sim error (%s): %s", e.Kind, e.Msg)
	if e.Snapshot != nil {
		s += " @ " + e.Snapshot.String()
	}
	return s
}

// Unwrap exposes the wrapped cause to errors.Is/As.
func (e *SimError) Unwrap() error { return e.Err }

// snapshot captures the current pipeline state of every hart.
func (s *Sim) snapshot() *Snapshot {
	snap := &Snapshot{Cycle: s.CurrentCycle(), TotalInsts: s.M.TotalInsts()}
	for _, c := range s.cores {
		now := c.lastCommit
		snap.Harts = append(snap.Harts, HartSnapshot{
			Hart:    c.id,
			Cycle:   c.lastCommit,
			FetchAt: c.fetchAt,
			LastRIP: c.lastRIP,
			Done:    c.done,
			ROB:     c.rob.occupied(now),
			IQ:      c.iq.occupied(now),
			LQ:      c.lq.occupied(now),
			SQ:      c.sq.occupied(now),
		})
	}
	return snap
}
