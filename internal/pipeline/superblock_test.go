package pipeline

import (
	"bytes"
	"testing"

	"chex86/internal/decode"
	"chex86/internal/workload"
)

func runWorkloadWithSuperblocks(t *testing.T, p *workload.Profile, v decode.Variant, off bool) (*Sim, *Result) {
	t.Helper()
	prog, err := p.Build(0.1)
	if err != nil {
		t.Fatalf("%s: build: %v", p.Name, err)
	}
	cfg := DefaultConfig()
	cfg.Variant = v
	cfg.WarmupInsts = p.SetupInsts()
	cfg.MaxInsts = 12_000 + cfg.WarmupInsts
	cfg.NoSuperblocks = off
	harts := 1
	if p.Threads > 0 {
		harts = p.Threads
	}
	sim, err := NewSim(prog, cfg, harts)
	if err != nil {
		t.Fatalf("%s/%v: NewSim: %v", p.Name, v, err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("%s/%v: run: %v", p.Name, v, err)
	}
	return sim, res
}

// TestSuperblockDifferential is the tentpole's differential gate
// (DESIGN.md §17): across every catalog workload and every protection
// variant, the simulation Result must be byte-identical with superblock
// replay enabled (the default) and disabled. On the variants where
// superblocks engage, the replay path must actually have served
// macro-ops — a zero-replay pass would make the differential vacuous.
func TestSuperblockDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload×variant sweep")
	}
	for _, p := range workload.Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for v := decode.Variant(0); v < decode.NumVariants; v++ {
				simOn, on := runWorkloadWithSuperblocks(t, p, v, false)
				_, off := runWorkloadWithSuperblocks(t, p, v, true)
				jOn, jOff := marshalResult(t, on), marshalResult(t, off)
				if !bytes.Equal(jOn, jOff) {
					t.Errorf("%s/%v: Result diverges with superblocks on vs off:\non:  %s\noff: %s",
						p.Name, v, jOn, jOff)
				}
				st := simOn.SuperblockStats()
				if simOn.sbEnabled() && st.Replayed == 0 {
					t.Errorf("%s/%v: superblocks never replayed (stats %+v) — the differential is vacuous",
						p.Name, v, st)
				}
				if !simOn.sbEnabled() && st.Built != 0 {
					t.Errorf("%s/%v: superblocks built on an excluded variant (stats %+v)", p.Name, v, st)
				}
			}
		})
	}
}

// TestSuperblockMidStreamMicrocodeUpdate exercises generation-based
// block invalidation: a field update lands in the writable microcode RAM
// mid-stream (after superblocks are already built and chained), later
// removed, and the run must still be byte-identical to a
// superblocks-disabled run with the same update schedule. Rerouted
// macro-ops must fall back to the single-op path fail-closed.
func TestSuperblockMidStreamMicrocodeUpdate(t *testing.T) {
	p := workload.ByName("mcf")
	if p == nil {
		t.Fatal("mcf workload missing from catalog")
	}

	runOne := func(off bool) (*Sim, *Result) {
		prog, err := p.Build(0.1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MaxInsts = 20_000
		cfg.NoSuperblocks = off
		sim, err := NewSim(prog, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		step := func(rounds int) {
			if _, err := sim.Step(rounds); err != nil {
				t.Fatal(err)
			}
		}
		// Phase 1: build and chain superblocks over native translations.
		step(3000)
		// Phase 2: the MSRAM changes — every load is rerouted, so every
		// resident block is stale and must miss on its generation tag.
		sim.Microcode.Install(decode.LoadFence("midstream", func(rip uint64) bool { return true }))
		step(3000)
		// Phase 3: the update is removed; blocks built against the
		// rerouted generation are stale again.
		sim.Microcode.Remove("midstream")
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return sim, sim.Result()
	}

	simOn, on := runOne(false)
	_, off := runOne(true)
	jOn, jOff := marshalResult(t, on), marshalResult(t, off)
	if !bytes.Equal(jOn, jOff) {
		t.Errorf("mid-stream microcode update diverges with superblocks on vs off:\non:  %s\noff: %s", jOn, jOff)
	}
	st := simOn.SuperblockStats()
	if st.Built == 0 || st.Replayed == 0 {
		t.Errorf("mid-stream case never exercised superblock replay: stats %+v", st)
	}
	if on.MSROMMacros == 0 {
		t.Error("field update never rerouted a translation — the invalidation test is vacuous")
	}
}

// TestSuperblockChainBoundDifferential pins that the chain-length bound
// is a pure replay-policy knob: clamping chains to a single followed
// link must not move a byte of the Result relative to the unbounded
// default.
func TestSuperblockChainBoundDifferential(t *testing.T) {
	p := workload.ByName("gcc")
	if p == nil {
		t.Fatal("gcc workload missing from catalog")
	}
	runOne := func(chain int) (*Sim, *Result) {
		prog, err := p.Build(0.1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MaxInsts = 15_000
		cfg.SuperblockChainLen = chain
		sim, err := NewSim(prog, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return sim, res
	}
	simTight, tight := runOne(1)
	_, wide := runOne(0) // 0 = default bound
	jt, jw := marshalResult(t, tight), marshalResult(t, wide)
	if !bytes.Equal(jt, jw) {
		t.Errorf("chain bound changed the Result:\nchain=1: %s\ndefault: %s", jt, jw)
	}
	if st := simTight.SuperblockStats(); st.Chained == 0 {
		t.Errorf("bounded run never followed a chain link (stats %+v) — the bound was not exercised", st)
	}
}

// TestCanonicalJSONIgnoresSuperblockKnobs pins the campaign-cache-key
// contract: superblock replay cannot change result bytes, so neither
// the off switch nor the chain-length bound may change CanonicalJSON —
// otherwise content-addressed campaign cache entries would be spuriously
// invalidated by a host-side replay knob.
func TestCanonicalJSONIgnoresSuperblockKnobs(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.NoSuperblocks = true
	b.SuperblockChainLen = 3
	ja, jb := a.CanonicalJSON(), b.CanonicalJSON()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("superblock knobs leaked into CanonicalJSON:\n%s\n%s", ja, jb)
	}
}
