package pipeline

import (
	"math/rand"
	"testing"

	"chex86/internal/asm"
	"chex86/internal/decode"
	"chex86/internal/heap"
	"chex86/internal/isa"
)

// randomSafeProgram generates a random but memory-safe-by-construction
// guest program: all heap accesses are bounded by construction, frees are
// balanced, and control flow is structured. Used for differential testing
// across protection variants.
func randomSafeProgram(rng *rand.Rand) *asm.Program {
	b := asm.NewBuilder()
	const bufWords = 16

	nBufs := rng.Intn(3) + 1
	ptrRegs := []isa.Reg{isa.R12, isa.R13, isa.R14}[:nBufs]
	for _, r := range ptrRegs {
		b.MovRI(isa.RDI, bufWords*8)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(r, isa.RAX)
	}

	scratch := []isa.Reg{isa.RAX, isa.RBX, isa.RDX, isa.RSI, isa.R8, isa.R9}
	label := 0
	for block := 0; block < rng.Intn(6)+2; block++ {
		switch rng.Intn(5) {
		case 0: // bounded store loop over a random buffer
			p := ptrRegs[rng.Intn(nBufs)]
			label++
			l := "blk" + string(rune('a'+label))
			b.MovRI(isa.RCX, 0)
			b.Label(l)
			b.StoreIdx(p, isa.RCX, 8, 0, isa.RCX)
			b.AddRI(isa.RCX, 1)
			b.CmpRI(isa.RCX, int64(rng.Intn(bufWords)+1))
			b.Jcc(isa.CondL, l)
		case 1: // bounded loads and arithmetic
			p := ptrRegs[rng.Intn(nBufs)]
			off := int64(rng.Intn(bufWords)) * 8
			r := scratch[rng.Intn(len(scratch))]
			b.Load(r, p, off)
			b.AddRI(r, int64(rng.Intn(100)))
		case 2: // register compute
			r1 := scratch[rng.Intn(len(scratch))]
			r2 := scratch[rng.Intn(len(scratch))]
			b.MovRI(r1, int64(rng.Intn(1000)))
			b.Alu(isa.XOR, isa.RegOp(r1), isa.RegOp(r2))
			b.Alu(isa.IMUL, isa.RegOp(r1), isa.ImmOp(int64(rng.Intn(7)+1)))
		case 3: // pointer arithmetic staying in bounds
			p := ptrRegs[rng.Intn(nBufs)]
			b.MovRR(isa.RBX, p)
			b.AddRI(isa.RBX, int64(rng.Intn(bufWords))*8)
			b.Load(isa.RDX, isa.RBX, 0)
			b.SubRI(isa.RBX, 8*2)
			_ = p
		case 4: // spill/reload through the stack
			p := ptrRegs[rng.Intn(nBufs)]
			b.Push(p)
			b.MovRI(isa.R10, 0)
			b.Pop(isa.R10)
			b.Load(isa.RDX, isa.R10, int64(rng.Intn(bufWords))*8)
		}
	}

	// Balanced frees.
	for _, r := range ptrRegs {
		b.MovRR(isa.RDI, r)
		b.CallAddr(heap.FreeEntry)
	}
	b.Hlt()
	return b.MustBuild()
}

// TestDifferentialRandomPrograms: random memory-safe programs must run
// without violations under every tracked variant, produce identical
// architectural results across variants, and produce identical cycle
// counts on repeated runs.
func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	variants := []decode.Variant{
		decode.VariantHardwareOnly,
		decode.VariantBinaryTranslation,
		decode.VariantMicrocodeAlwaysOn,
		decode.VariantMicrocodePrediction,
	}
	for trial := 0; trial < 30; trial++ {
		seed := rng.Int63()
		build := func() *asm.Program { return randomSafeProgram(rand.New(rand.NewSource(seed))) }

		// Reference run: insecure baseline's final architectural state.
		cfg := DefaultConfig()
		cfg.Variant = decode.VariantInsecure
		cfg.StopOnViolation = true
		ref := New(build(), cfg, 1)
		if _, err := ref.Run(); err != nil {
			t.Fatalf("trial %d: baseline error: %v", trial, err)
		}
		refRegs := ref.M.Harts[0].Regs

		for _, v := range variants {
			cfg := DefaultConfig()
			cfg.Variant = v
			cfg.StopOnViolation = true
			sim := New(build(), cfg, 1)
			if _, err := sim.Run(); err != nil {
				t.Fatalf("trial %d (seed %d) variant %v: false positive: %v", trial, seed, v, err)
			}
			// One-word pointer arithmetic aside, architectural state must
			// match the baseline exactly (the protection is transparent).
			if sim.M.Harts[0].Regs != refRegs {
				t.Fatalf("trial %d variant %v: architectural divergence", trial, v)
			}
		}
	}
}

// TestRandomProgramsBoundedOverhead: across random safe programs, the
// prediction-driven variant's slowdown stays within a sane envelope — it
// must never be pathological on arbitrary (if small) code shapes.
func TestRandomProgramsBoundedOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		seed := rng.Int63()
		build := func() *asm.Program { return randomSafeProgram(rand.New(rand.NewSource(seed))) }

		base := DefaultConfig()
		base.Variant = decode.VariantInsecure
		rb, err := New(build(), base, 1).Run()
		if err != nil {
			t.Fatal(err)
		}
		rp, err := New(build(), DefaultConfig(), 1).Run()
		if err != nil {
			t.Fatal(err)
		}
		slow := float64(rp.Cycles) / float64(rb.Cycles)
		if slow > 2.0 {
			t.Errorf("trial %d (seed %d): pathological slowdown %.2fx", trial, seed, slow)
		}
	}
}
