package pipeline

import (
	"fmt"
	"strconv"
	"strings"
)

// CallCtx is a k-limited call-string context (k = 2): the addresses of
// the most recent internal CALL instructions on the path from the hart
// entry, most recent last. The zero value is the root context (no calls
// on the string). The type lives in this package because all three
// layers share it: the static analyzer (internal/ptrflow) keys its
// per-context fixpoint on it, the independent proof checker
// (internal/elide) re-derives call-string well-formedness over it, and
// the pipeline folds the committed call/ret stream into it to select
// the live context for elision lookups.
type CallCtx struct {
	// S0 is the older call site (0 = empty slot), S1 the most recent.
	S0, S1 uint64
}

// CtxRoot is the empty call string: execution at the hart entry's
// procedure level.
var CtxRoot = CallCtx{}

// CtxAny is the ⊤ context sentinel: a claim or elision entry that holds
// in *every* calling context (the join over all contexts — exactly the
// context-insensitive fact). The runtime falls back to it whenever the
// live context cannot be determined (lost call/ret pairing, stack
// deeper than the fold buffer), which is the fail-closed direction:
// ⊤ entries are verified against joined invariants.
var CtxAny = CallCtx{S0: ^uint64(0), S1: ^uint64(0)}

// IsRoot reports whether the context is the empty call string.
func (c CallCtx) IsRoot() bool { return c == CtxRoot }

// IsAny reports whether the context is the ⊤ sentinel.
func (c CallCtx) IsAny() bool { return c == CtxAny }

// Push appends an internal call site to the string under the k = 2
// limit: the oldest element falls off, and a call site equal to the
// current top collapses (direct recursion folds to one context, so the
// context set stays finite without losing the most recent site).
func (c CallCtx) Push(site uint64) CallCtx {
	if c.S1 == site {
		return c
	}
	return CallCtx{S0: c.S1, S1: site}
}

// PushK is Push under an explicit k limit (0, 1 or 2). k = 0 keeps
// every context at root — the context-insensitive analysis; k = 1
// tracks only the most recent call site.
func (c CallCtx) PushK(site uint64, k int) CallCtx {
	switch {
	case k <= 0:
		return CtxRoot
	case k == 1:
		return CallCtx{S1: site}
	default:
		return c.Push(site)
	}
}

// Limit re-truncates a k = 2 context to a smaller k, so a runtime that
// folds the full call stream at k = 2 can probe maps built by a
// shallower analysis: the k = 1 image is the most recent site, the
// k = 0 image is root. The sentinel is its own image at every k.
func (c CallCtx) Limit(k int) CallCtx {
	if c.IsAny() {
		return c
	}
	switch {
	case k <= 0:
		return CtxRoot
	case k == 1:
		return CallCtx{S1: c.S1}
	default:
		return c
	}
}

// Depth returns the number of call sites on the string (0–2).
func (c CallCtx) Depth() int {
	switch {
	case c.S0 != 0:
		return 2
	case c.S1 != 0:
		return 1
	default:
		return 0
	}
}

// Less orders contexts canonically for byte-stable serialization:
// root first, then by (S0, S1), the ⊤ sentinel last.
func (c CallCtx) Less(o CallCtx) bool {
	if c.S0 != o.S0 {
		return c.S0 < o.S0
	}
	return c.S1 < o.S1
}

// String renders the canonical serialized form: "root", "any", or the
// call sites oldest-first joined with '>' ("0x401020>0x401080").
func (c CallCtx) String() string {
	switch {
	case c.IsRoot():
		return "root"
	case c.IsAny():
		return "any"
	case c.S0 == 0:
		return "0x" + strconv.FormatUint(c.S1, 16)
	default:
		return "0x" + strconv.FormatUint(c.S0, 16) + ">0x" + strconv.FormatUint(c.S1, 16)
	}
}

// ParseCallCtx decodes the String form. It rejects anything a Push
// sequence could not have produced structurally (empty elements, a
// zero site, more than two sites); deeper well-formedness — that each
// site is an internal CALL instruction — is the proof checker's job,
// since only it holds the program.
func ParseCallCtx(s string) (CallCtx, error) {
	switch s {
	case "root":
		return CtxRoot, nil
	case "any":
		return CtxAny, nil
	}
	parts := strings.Split(s, ">")
	if len(parts) > 2 {
		return CallCtx{}, fmt.Errorf("call context %q exceeds the k=2 limit", s)
	}
	var sites [2]uint64
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimPrefix(p, "0x"), 16, 64)
		if err != nil || v == 0 {
			return CallCtx{}, fmt.Errorf("call context %q: bad site %q", s, p)
		}
		sites[i] = v
	}
	if len(parts) == 1 {
		return CallCtx{S1: sites[0]}, nil
	}
	return CallCtx{S0: sites[0], S1: sites[1]}, nil
}
