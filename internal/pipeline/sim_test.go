package pipeline

import (
	"testing"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/heap"
	"chex86/internal/isa"
)

// buildHeapProg builds a guest program that mallocs a 64-byte buffer,
// walks it with stores and loads, then runs the epilogue emitted by tail.
func buildHeapProg(t *testing.T, tail func(b *asm.Builder)) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	b.MovRI(isa.RDI, 64)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.R12, isa.RAX) // keep base pointer
	b.MovRR(isa.RBX, isa.RAX) // cursor
	b.MovRI(isa.RCX, 8)
	b.Label("loop")
	b.MovRI(isa.RDX, 42)
	b.Store(isa.RBX, 0, isa.RDX)
	b.Load(isa.RDX, isa.RBX, 0)
	b.AddRI(isa.RBX, 8)
	b.SubRI(isa.RCX, 1)
	b.CmpRI(isa.RCX, 0)
	b.Jcc(isa.CondNE, "loop")
	tail(b)
	b.Hlt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func runProg(t *testing.T, p *asm.Program, variant decode.Variant) (*Result, error) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Variant = variant
	cfg.StopOnViolation = true
	sim := New(p, cfg, 1)
	return sim.Run()
}

func TestCleanRunNoViolations(t *testing.T) {
	p := buildHeapProg(t, func(b *asm.Builder) {
		b.MovRR(isa.RDI, isa.R12)
		b.CallAddr(heap.FreeEntry)
	})
	for v := decode.Variant(0); v < decode.NumVariants; v++ {
		res, err := runProg(t, p, v)
		if err != nil {
			t.Fatalf("%v: unexpected error: %v", v, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("%v: unexpected violations: %v", v, res.Violations[0])
		}
		if res.Cycles == 0 || res.MacroInsts == 0 {
			t.Fatalf("%v: empty result: %+v", v, res)
		}
	}
}

func TestOutOfBoundsDetected(t *testing.T) {
	p := buildHeapProg(t, func(b *asm.Builder) {
		// One-past-the-end write: r12[64].
		b.MovRI(isa.RDX, 7)
		b.Store(isa.R12, 64, isa.RDX)
	})
	_, err := runProg(t, p, decode.VariantMicrocodePrediction)
	v, ok := err.(*core.Violation)
	if !ok {
		t.Fatalf("expected violation, got %v", err)
	}
	if v.Kind != core.VOutOfBounds {
		t.Fatalf("expected out-of-bounds, got %v", v)
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	p := buildHeapProg(t, func(b *asm.Builder) {
		b.MovRR(isa.RDI, isa.R12)
		b.CallAddr(heap.FreeEntry)
		b.Load(isa.RDX, isa.R12, 0) // dangling read
	})
	_, err := runProg(t, p, decode.VariantMicrocodePrediction)
	v, ok := err.(*core.Violation)
	if !ok {
		t.Fatalf("expected violation, got %v", err)
	}
	if v.Kind != core.VUseAfterFree {
		t.Fatalf("expected use-after-free, got %v", v)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	p := buildHeapProg(t, func(b *asm.Builder) {
		b.MovRR(isa.RDI, isa.R12)
		b.CallAddr(heap.FreeEntry)
		b.MovRR(isa.RDI, isa.R12)
		b.CallAddr(heap.FreeEntry)
	})
	_, err := runProg(t, p, decode.VariantMicrocodePrediction)
	v, ok := err.(*core.Violation)
	if !ok {
		t.Fatalf("expected violation, got %v", err)
	}
	if v.Kind != core.VDoubleFree {
		t.Fatalf("expected double-free, got %v", v)
	}
}

func TestSpilledAliasReloadChecked(t *testing.T) {
	// Spill the pointer to the stack, clobber the register, reload it, and
	// dereference out of bounds: the alias machinery must recover the PID.
	b := asm.NewBuilder()
	b.MovRI(isa.RDI, 32)
	b.CallAddr(heap.MallocEntry)
	b.Push(isa.RAX)     // spill pointer alias
	b.MovRI(isa.RAX, 0) // clobber
	b.Pop(isa.RBX)      // reload via alias
	b.MovRI(isa.RDX, 1)
	b.Store(isa.RBX, 40, isa.RDX) // out of bounds through reloaded pointer
	b.Hlt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	_, rerr := runProg(t, p, decode.VariantMicrocodePrediction)
	v, ok := rerr.(*core.Violation)
	if !ok {
		t.Fatalf("expected violation, got %v", rerr)
	}
	if v.Kind != core.VOutOfBounds {
		t.Fatalf("expected out-of-bounds via reloaded alias, got %v", v)
	}
}

func TestInsecureBaselineMissesViolation(t *testing.T) {
	p := buildHeapProg(t, func(b *asm.Builder) {
		b.MovRI(isa.RDX, 7)
		b.Store(isa.R12, 64, isa.RDX)
	})
	res, err := runProg(t, p, decode.VariantInsecure)
	if err != nil {
		t.Fatalf("baseline should not fault: %v", err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("baseline should detect nothing, got %v", res.Violations)
	}
}

func TestUopExpansionOrdering(t *testing.T) {
	p := buildHeapProg(t, func(b *asm.Builder) {
		b.MovRR(isa.RDI, isa.R12)
		b.CallAddr(heap.FreeEntry)
	})
	exp := make(map[decode.Variant]float64)
	for _, v := range []decode.Variant{decode.VariantInsecure, decode.VariantMicrocodePrediction,
		decode.VariantMicrocodeAlwaysOn, decode.VariantASan} {
		res, err := runProg(t, p, v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		exp[v] = res.UopExpansion()
	}
	if !(exp[decode.VariantInsecure] <= exp[decode.VariantMicrocodePrediction]) {
		t.Errorf("prediction-driven expansion %f should exceed baseline %f",
			exp[decode.VariantMicrocodePrediction], exp[decode.VariantInsecure])
	}
	if !(exp[decode.VariantMicrocodePrediction] <= exp[decode.VariantMicrocodeAlwaysOn]) {
		t.Errorf("always-on expansion %f should exceed prediction-driven %f",
			exp[decode.VariantMicrocodeAlwaysOn], exp[decode.VariantMicrocodePrediction])
	}
	if !(exp[decode.VariantMicrocodeAlwaysOn] < exp[decode.VariantASan]) {
		t.Errorf("ASan expansion %f should exceed always-on %f",
			exp[decode.VariantASan], exp[decode.VariantMicrocodeAlwaysOn])
	}
}
