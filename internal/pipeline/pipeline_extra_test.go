package pipeline

import (
	"testing"
	"testing/quick"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/heap"
	"chex86/internal/isa"
)

// TestDeterminism: two identical simulations must produce identical cycle
// counts and statistics — the model has no hidden nondeterminism.
func TestDeterminism(t *testing.T) {
	build := func() *asm.Program {
		p := buildHeapProg(t, func(b *asm.Builder) {
			b.MovRR(isa.RDI, isa.R12)
			b.CallAddr(heap.FreeEntry)
		})
		return p
	}
	cfg := DefaultConfig()
	r1, err1 := New(build(), cfg, 1).Run()
	r2, err2 := New(build(), cfg, 1).Run()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Cycles != r2.Cycles || r1.TotalUops() != r2.TotalUops() ||
		r1.CapCache != r2.CapCache || r1.Redirects != r2.Redirects {
		t.Fatalf("nondeterministic simulation: %+v vs %+v", r1, r2)
	}
}

// TestWarmupExclusion: warmup must subtract the prefix from the reported
// statistics without changing detection behavior.
func TestWarmupExclusion(t *testing.T) {
	build := func() *asm.Program {
		b := asm.NewBuilder()
		b.MovRI(isa.RDI, 64)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(isa.RBX, isa.RAX)
		b.MovRI(isa.RCX, 0)
		b.Label("work")
		b.Store(isa.RBX, 0, isa.RCX)
		b.AddRI(isa.RCX, 1)
		b.CmpRI(isa.RCX, 1000)
		b.Jcc(isa.CondL, "work")
		b.Hlt()
		return b.MustBuild()
	}
	full, err := New(build(), DefaultConfig(), 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WarmupInsts = 1000
	warm, err := New(build(), cfg, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if warm.MacroInsts >= full.MacroInsts {
		t.Fatalf("warmup did not exclude instructions: %d vs %d", warm.MacroInsts, full.MacroInsts)
	}
	if warm.Cycles >= full.Cycles {
		t.Fatalf("warmup did not exclude cycles: %d vs %d", warm.Cycles, full.Cycles)
	}
	if full.MacroInsts-warm.MacroInsts < 900 {
		t.Fatal("exclusion magnitude wrong")
	}
}

// TestContextSensitiveInjection: an empty policy injects nothing; a
// region policy injects only within it; always-on injects the most.
func TestContextSensitiveInjection(t *testing.T) {
	build := func() *asm.Program {
		b := asm.NewBuilder()
		b.MovRI(isa.RDI, 64)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(isa.RBX, isa.RAX)
		b.MovRI(isa.RCX, 0)
		b.Label("crit_begin")
		b.Store(isa.RBX, 0, isa.RCX)
		b.Label("crit_end")
		b.MovRI(isa.RCX, 0)
		b.Label("hot")
		b.Store(isa.RBX, 8, isa.RCX)
		b.AddRI(isa.RCX, 1)
		b.CmpRI(isa.RCX, 100)
		b.Jcc(isa.CondL, "hot")
		b.Hlt()
		return b.MustBuild()
	}
	run := func(policy core.ContextPolicy) *Result {
		cfg := DefaultConfig()
		cfg.Context = policy
		res, err := New(build(), cfg, 1).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	prog := build()
	region := core.Region{Lo: prog.MustLookup("crit_begin"), Hi: prog.MustLookup("crit_end")}

	always := run(core.Always())
	surgical := run(core.Only(region))
	off := run(core.ContextPolicy{})

	// Cap event uops are injected regardless; only checks vary.
	if !(off.InjectedUops < surgical.InjectedUops && surgical.InjectedUops < always.InjectedUops) {
		t.Fatalf("injection ordering wrong: off=%d surgical=%d always=%d",
			off.InjectedUops, surgical.InjectedUops, always.InjectedUops)
	}
}

// TestMulticoreInvalidations: a free on one core must invalidate the other
// cores' capability caches.
func TestMulticoreInvalidations(t *testing.T) {
	b := asm.NewBuilder()
	g := uint64(0x600000)
	b.Global("share", g, 8)
	b.Global("pshare", g+16, 8)
	b.Reloc(g+16, "share")

	// Thread 0 allocates, publishes, spins a little, then frees.
	b.Label("thread0")
	b.MovRI(isa.RDI, 64)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.RBX, isa.RAX)
	b.Load(isa.R8, isa.RNone, int64(g+16))
	b.Store(isa.R8, 0, isa.RBX)
	b.MovRI(isa.RCX, 200)
	b.Label("spin0")
	b.SubRI(isa.RCX, 1)
	b.CmpRI(isa.RCX, 0)
	b.Jcc(isa.CondG, "spin0")
	b.MovRR(isa.RDI, isa.RBX)
	b.CallAddr(heap.FreeEntry)
	b.Hlt()

	// Thread 1 reads through the shared pointer while it is still live.
	b.Label("thread1")
	b.Load(isa.R8, isa.RNone, int64(g+16))
	b.MovRI(isa.RCX, 60)
	b.Label("wait")
	b.Load(isa.RBX, isa.R8, 0)
	b.SubRI(isa.RCX, 1)
	b.CmpRI(isa.RCX, 0)
	b.Jcc(isa.CondG, "wait")
	b.Load(isa.RDX, isa.RBX, 0)
	b.Hlt()

	cfg := DefaultConfig()
	res, err := New(b.MustBuild(), cfg, 2).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalidates == 0 {
		t.Fatal("cross-core invalidation requests must be sent on free")
	}
}

// TestResourceRings exercises the scheduling primitives directly.
func TestResourceRings(t *testing.T) {
	r := newOccupancyRing(2)
	if got := r.allocate(10); got != 10 {
		t.Fatal("empty ring must not delay")
	}
	r.release(100)
	if got := r.allocate(11); got != 11 {
		t.Fatal("second entry fits")
	}
	r.release(200)
	// Third allocation reuses slot 0, free at cycle 100.
	if got := r.allocate(50); got != 100 {
		t.Fatalf("capacity limit must delay to 100, got %d", got)
	}
}

func TestIssueWindowOrderStatistic(t *testing.T) {
	w := newIssueWindow(3)
	if w.bound() != 0 {
		t.Fatal("unfilled window imposes no bound")
	}
	w.add(10)
	w.add(50)
	w.add(30)
	// Bound = 3rd-largest issue = 10.
	if w.bound() != 10 {
		t.Fatalf("bound %d, want 10", w.bound())
	}
	w.add(40) // largest three now {30,40,50}
	if w.bound() != 30 {
		t.Fatalf("bound %d, want 30", w.bound())
	}
	w.add(5) // smaller than all: no change
	if w.bound() != 30 {
		t.Fatal("small issues must not relax the bound")
	}
}

// TestBandwidthProperty: reserve never returns a cycle below the request
// and never overbooks a cycle.
func TestBandwidthProperty(t *testing.T) {
	f := func(reqs []uint16) bool {
		bw := newBandwidth(2)
		counts := map[uint64]int{}
		base := uint64(0)
		for _, r := range reqs {
			want := base + uint64(r%64)
			got := bw.reserve(want)
			if got < want {
				return false
			}
			counts[got]++
			if counts[got] > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestVariantDetectionParity: the tracked variants must detect an OOB the
// baseline misses, on identical programs.
func TestVariantDetectionParity(t *testing.T) {
	build := func() *asm.Program {
		return buildHeapProg(t, func(b *asm.Builder) {
			b.MovRI(isa.RDX, 7)
			b.Store(isa.R12, 64, isa.RDX)
		})
	}
	for v := decode.Variant(0); v < decode.NumVariants; v++ {
		cfg := DefaultConfig()
		cfg.Variant = v
		cfg.StopOnViolation = true
		_, err := New(build(), cfg, 1).Run()
		_, isViolation := err.(*core.Violation)
		if v == decode.VariantInsecure && isViolation {
			t.Errorf("%v: baseline cannot detect", v)
		}
		if v != decode.VariantInsecure && !isViolation {
			t.Errorf("%v: protected variant missed the overflow (err=%v)", v, err)
		}
	}
}

// TestMSROMAccounting: a macro whose instrumented expansion exceeds the
// parallel decoders is counted as an MSROM fetch.
func TestMSROMAccounting(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RDI, 64)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.RBX, isa.RAX)
	// RMW on a tracked pointer: 3 native uops + 2 checks = 5 > 4.
	b.Alu(isa.ADD, isa.MemOp(isa.RBX, 0), isa.ImmOp(1))
	b.Hlt()
	cfg := DefaultConfig()
	res, err := New(b.MustBuild(), cfg, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MSROMMacros == 0 {
		t.Fatal("instrumented RMW must be fetched from the MSROM")
	}
}

// TestXchgSwapsCapabilities: swapping two pointers with XCHG must swap
// their PID tags (through the MOV decomposition), so checks after the swap
// use the right capabilities — including catching an overflow through the
// swapped register.
func TestXchgSwapsCapabilities(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RDI, 64)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.R12, isa.RAX) // small buffer (64 B)
	b.MovRI(isa.RDI, 256)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.R13, isa.RAX) // big buffer (256 B)
	b.Xchg(isa.R12, isa.R13)  // r12 <-> r13
	// r12 now holds the big buffer: offset 128 is fine.
	b.MovRI(isa.RDX, 1)
	b.Store(isa.R12, 128, isa.RDX)
	// r13 now holds the small buffer: offset 128 must be flagged.
	b.Store(isa.R13, 128, isa.RDX)
	b.Hlt()
	cfg := DefaultConfig()
	cfg.StopOnViolation = true
	_, err := New(b.MustBuild(), cfg, 1).Run()
	v, ok := err.(*core.Violation)
	if !ok || v.Kind != core.VOutOfBounds {
		t.Fatalf("overflow through the swapped pointer missed: %v", err)
	}
	// The in-bounds store through the other swapped register must have
	// preceded it (the violation RIP is the second store).
	want := uint64(asm.DefaultTextBase + 9*4)
	if v.RIP != want {
		t.Fatalf("violation at %#x, want the second store at %#x", v.RIP, want)
	}
}

// TestReadOnlyGlobalWriteFlagged: a .rodata object's capability carries no
// write permission, so a stray write is a permission violation while reads
// stay clean.
func TestReadOnlyGlobalWriteFlagged(t *testing.T) {
	b := asm.NewBuilder()
	g := uint64(0x600000)
	b.GlobalRO("consts", g, 32)
	b.Global("pconsts", g+64, 8)
	b.Reloc(g+64, "consts")
	b.Load(isa.RBX, isa.RNone, int64(g+64))
	b.Load(isa.RDX, isa.RBX, 0) // read: fine
	b.MovRI(isa.RDX, 1)
	b.Store(isa.RBX, 8, isa.RDX) // write: flagged
	b.Hlt()
	cfg := DefaultConfig()
	cfg.StopOnViolation = true
	_, err := New(b.MustBuild(), cfg, 1).Run()
	v, ok := err.(*core.Violation)
	if !ok || v.Kind != core.VPermission {
		t.Fatalf("rodata write not flagged as permission violation: %v", err)
	}
}

// TestSpectreGating uses the trace hook to verify the Section III
// structural property: a checked dereference never issues before its
// capability check completes, so a bounds check cannot be bypassed
// speculatively (Spectre-v1's premise).
func TestSpectreGating(t *testing.T) {
	p := buildHeapProg(t, func(b *asm.Builder) {
		b.MovRR(isa.RDI, isa.R12)
		b.CallAddr(heap.FreeEntry)
	})
	cfg := DefaultConfig()
	sim := New(p, cfg, 1)
	var pendingCheckDone uint64
	violations := 0
	sim.TraceUop = func(tr UopTrace) {
		switch {
		case len(tr.Uop) >= 8 && tr.Uop[:8] == "capCheck":
			pendingCheckDone = tr.Done
		case len(tr.Uop) >= 3 && (tr.Uop[:3] == "ldq" || tr.Uop[:3] == "stq"):
			if pendingCheckDone != 0 {
				if tr.Issue < pendingCheckDone {
					violations++
				}
				pendingCheckDone = 0
			}
		}
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Fatalf("%d dereferences issued before their capability checks completed", violations)
	}
}

// TestASanModelDetects: the AddressSanitizer model must catch redzone
// trespasses and quarantined-memory accesses with its own mechanisms
// (tripwires, not capabilities).
func TestASanModelDetects(t *testing.T) {
	overflow := buildHeapProg(t, func(b *asm.Builder) {
		b.MovRI(isa.RDX, 7)
		b.Store(isa.R12, 64, isa.RDX) // lands in the right redzone
	})
	cfg := DefaultConfig()
	cfg.Variant = decode.VariantASan
	cfg.StopOnViolation = true
	_, err := New(overflow, cfg, 1).Run()
	v, ok := err.(*core.Violation)
	if !ok || v.Kind != core.VOutOfBounds {
		t.Fatalf("ASan redzone miss: %v", err)
	}

	uaf := buildHeapProg(t, func(b *asm.Builder) {
		b.MovRR(isa.RDI, isa.R12)
		b.CallAddr(heap.FreeEntry)
		b.Load(isa.RDX, isa.R12, 0) // quarantined memory
	})
	_, err = New(uaf, cfg, 1).Run()
	v, ok = err.(*core.Violation)
	if !ok || v.Kind != core.VUseAfterFree {
		t.Fatalf("ASan quarantine miss: %v", err)
	}

	clean := buildHeapProg(t, func(b *asm.Builder) {
		b.MovRR(isa.RDI, isa.R12)
		b.CallAddr(heap.FreeEntry)
	})
	if _, err := New(clean, cfg, 1).Run(); err != nil {
		t.Fatalf("ASan false positive: %v", err)
	}
}

// TestContextPolicySecurityTradeoff: surgical instrumentation means
// violations inside the covered region are caught and ones outside are
// not — the explicit trade-off of Section VII-D. Allocations are tracked
// globally either way, so widening the region later needs no re-training.
func TestContextPolicySecurityTradeoff(t *testing.T) {
	build := func() *asm.Program {
		b := asm.NewBuilder()
		b.MovRI(isa.RDI, 64)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(isa.RBX, isa.RAX)
		b.Label("covered")
		b.MovRI(isa.RDX, 1)
		b.Store(isa.RBX, 64, isa.RDX) // OOB #1 (in region)
		b.Label("uncovered")
		b.Store(isa.RBX, 72, isa.RDX) // OOB #2 (outside region)
		b.Hlt()
		return b.MustBuild()
	}
	prog := build()
	region := core.Region{Lo: prog.MustLookup("covered"), Hi: prog.MustLookup("uncovered")}

	cfg := DefaultConfig()
	cfg.Context = core.Only(region)
	cfg.StopOnViolation = false
	res, err := New(build(), cfg, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("exactly the in-region violation should be caught, got %d", len(res.Violations))
	}
	if res.Violations[0].RIP != region.Lo+4 {
		t.Fatalf("violation at %#x, want the covered store", res.Violations[0].RIP)
	}
}

// TestMulticoreDeterminism: 4-hart simulations are reproducible.
func TestMulticoreDeterminism(t *testing.T) {
	build := func() *asm.Program {
		b := asm.NewBuilder()
		for tid := 0; tid < 4; tid++ {
			b.Label("thread" + string(rune('0'+tid)))
			b.MovRI(isa.RDI, 128)
			b.CallAddr(heap.MallocEntry)
			b.MovRR(isa.RBX, isa.RAX)
			b.MovRI(isa.RCX, 0)
			b.Label("w" + string(rune('0'+tid)))
			b.StoreIdx(isa.RBX, isa.RCX, 8, 0, isa.RCX)
			b.AddRI(isa.RCX, 1)
			b.CmpRI(isa.RCX, 16)
			b.Jcc(isa.CondL, "w"+string(rune('0'+tid)))
			b.Hlt()
		}
		return b.MustBuild()
	}
	r1, err := New(build(), DefaultConfig(), 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(build(), DefaultConfig(), 4).Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.TotalUops() != r2.TotalUops() || r1.Invalidates != r2.Invalidates {
		t.Fatal("multicore simulation is nondeterministic")
	}
}

// TestByteGranularBounds: capability checks honor the access width — the
// last byte of an allocation is fine, one byte past is not, and a byte
// store over a spilled pointer alias conservatively clears the alias.
func TestByteGranularBounds(t *testing.T) {
	build := func(tail func(b *asm.Builder)) *asm.Program {
		b := asm.NewBuilder()
		b.MovRI(isa.RDI, 64)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(isa.RBX, isa.RAX)
		tail(b)
		b.Hlt()
		return b.MustBuild()
	}
	cfg := DefaultConfig()
	cfg.StopOnViolation = true

	// Last byte: in bounds (an 8-byte access there would be flagged).
	if _, err := New(build(func(b *asm.Builder) {
		b.LoadB(isa.RDX, isa.RBX, 63)
	}), cfg, 1).Run(); err != nil {
		t.Fatalf("last-byte load must be in bounds: %v", err)
	}
	// One byte past: out of bounds.
	_, err := New(build(func(b *asm.Builder) {
		b.MovRI(isa.RDX, 0)
		b.StoreB(isa.RBX, 64, isa.RDX)
	}), cfg, 1).Run()
	v, ok := err.(*core.Violation)
	if !ok || v.Kind != core.VOutOfBounds {
		t.Fatalf("single-byte off-by-one missed: %v", err)
	}
	// Byte store over a spilled alias clears the tracked pointer, so the
	// subsequent reload is untracked (and the corruption detectable at its
	// next tracked use, not silently mis-tracked).
	sim := New(build(func(b *asm.Builder) {
		b.Push(isa.RBX) // spill the pointer
		b.MovRI(isa.RDX, 0x41)
		b.StoreB(isa.RSP, 0, isa.RDX) // corrupt one byte of the alias
		b.Pop(isa.RCX)                // reload the mangled value
	}), DefaultConfig(), 1)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sim.Ali.Entries() != 0 && sim.Ali.Lookup(0) != 0 {
		t.Log("alias table may hold unrelated entries; the corrupted word itself was verified via engine stats")
	}
	if sim.Result().Engine.AliasClears == 0 {
		t.Fatal("byte store over an alias must clear it")
	}
}
