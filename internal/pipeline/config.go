// Package pipeline implements the out-of-order timing model of the
// simulated machine (Table III) and orchestrates the full CHEx86 stack on
// top of the functional emulator: branch prediction, CISC→µop decode,
// microcode customization, speculative pointer tracking with alias
// prediction, capability generation/validation/free, and the memory
// hierarchy — for every protection variant evaluated in the paper.
package pipeline

import (
	"encoding/json"
	"fmt"
	"strings"

	"chex86/internal/core"
	"chex86/internal/decode"
)

// Config describes the simulated machine and protection scheme.
type Config struct {
	// Table III baseline processor parameters.
	FrequencyGHz  float64
	FetchWidth    int // fused µops (macro-ops) per cycle
	IssueWidth    int // unfused µops per cycle
	CommitWidth   int // unfused µops per cycle
	ROBSize       int
	IQSize        int
	LQSize        int
	SQSize        int
	IntALU        int
	IntMult       int
	FPALU         int
	SIMD          int
	LoadPorts     int
	StorePorts    int
	BranchUnits   int
	FrontendDepth uint64 // fetch-to-dispatch depth in cycles
	RedirectCost  uint64 // additional redirect penalty on squash

	// Memory hierarchy.
	L1ISizeKB   int
	L1IWays     int
	L1DSizeKB   int
	L1DWays     int
	L2SizeKB    int
	L2Ways      int
	LLCSizeKB   int
	LLCWays     int
	LineSize    uint64
	L1Latency   uint64
	L2Latency   uint64
	LLCLatency  uint64
	DRAMLatency uint64
	DRAMCycLine uint64 // DRAM channel occupancy per line (bandwidth limit)
	TLBEntries  int
	TLBWays     int
	TLBWalkCost uint64

	// CHEx86 structures.
	ShadowCacheKB     int // dedicated shadow-structure cache (0 disables)
	CapCacheEntries   int // 64 in the default design (Figure 7 sweeps 128)
	AliasCacheEntries int // 256 (Figure 7 sweeps 512)
	AliasVictim       int // 32-entry victim cache
	PredictorEntries  int // 512 (Figure 8 sweeps 1024/2048)
	MaxAllocSize      uint64

	// Protection scheme and context-sensitivity policy.
	Variant decode.Variant
	Context core.ContextPolicy

	// ElideChecks enables proof-carrying capability-check elision: memory
	// micro-ops whose site appears in the elision map installed with
	// Sim.SetElisionMap skip check injection (and the check's functional
	// validation), keeping every tracker side effect. Off by default, and
	// inert without an installed map — the fail-closed contract is that
	// only independently verified proven-safe sites are ever marked.
	ElideChecks bool

	// ElisionDigest is the content digest of the installed elision map
	// (internal/elide Report.Digest). It has no simulation effect of its
	// own; it exists so content-addressed result caching (the campaign
	// subsystem hashes CanonicalJSON) can never serve a result across
	// differing elision maps.
	ElisionDigest string

	// ElisionCtxK is the call-string depth the installed elision map was
	// built at (0 means the default k = 2). The runtime always folds the
	// committed call/ret stream at k = 2 and re-truncates the live context
	// with CallCtx.Limit to form the probe key, so maps built at any
	// k ≤ 2 are consulted correctly.
	ElisionCtxK int

	// HoistGuards enables hoisted-block-guard accounting on top of check
	// elision: one fused guard executes at each verified dominator anchor
	// (folded into the anchor block's leader at zero timing cost, see
	// DESIGN.md §16) and the dominated capability checks it covers are
	// attributed to it in Sim.GuardStats. The checker only admits covered
	// sites that are in the verified elision map, so the set of suppressed
	// checks — and therefore Result — is identical with the knob on or
	// off. Requires ElideChecks; inert without a map installed through
	// Sim.SetGuardMap.
	HoistGuards bool

	// GuardDigest is the content digest of the installed guard map
	// (internal/elide GuardReport.Digest). Like ElisionDigest it has no
	// simulation effect; it folds the exact guard set into CanonicalJSON
	// so campaign result caching never serves a result across differing
	// guard maps.
	GuardDigest string

	// EnableChecker runs the hardware checker co-processor alongside
	// execution (the offline rule-validation mode of Section V-A).
	EnableChecker bool

	// StopOnViolation aborts simulation at the first capability violation
	// (security-evaluation mode). When false, violations are recorded and
	// execution continues.
	StopOnViolation bool

	// MaxInsts bounds the simulated macro-op count (0 = run to program
	// completion).
	MaxInsts uint64

	// MaxCycles bounds the simulated cycle count (0 = unlimited). A run
	// that exceeds it — a livelocked guest that never drains — is killed
	// with an ErrCycleLimit *SimError carrying a pipeline snapshot, instead
	// of spinning forever.
	MaxCycles uint64

	// StallCycles is the forward-progress watchdog window: a hart whose
	// front-end has advanced StallCycles cycles past its last commit
	// without retiring anything trips an ErrHang *SimError (0 disables
	// the watchdog).
	StallCycles uint64

	// WarmupInsts excludes the first N macro-ops from the reported timing
	// and statistics (the SimPoint-style measurement the paper uses:
	// representative regions, not program setup). Simulation state —
	// caches, predictors, shadow tables — is fully warmed by the excluded
	// prefix.
	WarmupInsts uint64

	// Ablation knobs (not part of the paper's design; used by the
	// ablation benches to attribute overhead to individual mechanisms).

	// IdealShadowLatency makes shadow capability-table accesses free on
	// capability-cache misses (the table contributes traffic only).
	IdealShadowLatency bool

	// NoAliasWalks disables shadow alias-table walk traffic and latency on
	// alias-cache misses (misprediction detection becomes free).
	NoAliasWalks bool

	// NoPrefetch disables the streaming prefetcher in the memory
	// hierarchy.
	NoPrefetch bool

	// NoUopCache disables the decoded-μop translation cache, forcing a
	// full Decoder.Native + Microcode.Apply per committed instruction.
	// It is a host-performance knob, not a simulated-machine parameter:
	// the cache is required to produce byte-identical results either way
	// (the differential gate asserts this), so the knob is excluded from
	// CanonicalJSON — and therefore from campaign cache keys — via the
	// json:"-" tag.
	NoUopCache bool `json:"-"`

	// NoSuperblocks disables the superblock translation layer
	// (superblock.go): straight-line runs of decoded translations are no
	// longer grouped into chained blocks, and every committed instruction
	// goes through the per-instruction dispatch path. Like NoUopCache it
	// is a host-performance knob with a byte-identity contract — Result,
	// violation reports, and the lockstep differential are identical with
	// superblocks on or off (TestSuperblockDifferential gates this) — so
	// it is excluded from CanonicalJSON and campaign cache keys.
	NoSuperblocks bool `json:"-"`

	// SuperblockChainLen bounds how many successor links replay may
	// follow before forcing a fresh superblock-cache lookup (0 means the
	// default, sbDefaultChainLen). Purely a host-side knob: chain length
	// affects how often the replay cursor revalidates against the cache,
	// never what is simulated, so it shares NoSuperblocks' json:"-"
	// exclusion.
	SuperblockChainLen int `json:"-"`
}

// DefaultConfig returns the Table III machine with the default CHEx86
// structure sizes and the microcode prediction-driven variant.
func DefaultConfig() Config {
	return Config{
		FrequencyGHz:  3.4,
		FetchWidth:    4,
		IssueWidth:    6,
		CommitWidth:   8,
		ROBSize:       224,
		IQSize:        64,
		LQSize:        72,
		SQSize:        56,
		IntALU:        6,
		IntMult:       1,
		FPALU:         3,
		SIMD:          3,
		LoadPorts:     2,
		StorePorts:    1,
		BranchUnits:   2,
		FrontendDepth: 5,
		RedirectCost:  12,

		L1ISizeKB:   32,
		L1IWays:     8,
		L1DSizeKB:   32,
		L1DWays:     8,
		L2SizeKB:    256,
		L2Ways:      8,
		LLCSizeKB:   8192,
		LLCWays:     16,
		LineSize:    64,
		L1Latency:   4,
		L2Latency:   12,
		LLCLatency:  40,
		DRAMLatency: 200,
		DRAMCycLine: 5, // ~43 GB/s at 3.4 GHz with 64-B lines
		TLBEntries:  64,
		TLBWays:     4,
		TLBWalkCost: 20,

		ShadowCacheKB:     32,
		CapCacheEntries:   64,
		AliasCacheEntries: 256,
		AliasVictim:       32,
		PredictorEntries:  512,
		MaxAllocSize:      1 << 30,

		Variant: decode.VariantMicrocodePrediction,
		Context: core.Always(),
	}
}

// ctxK returns the effective call-string depth for elision and guard
// probes (ElisionCtxK, defaulting to k = 2).
func (c *Config) ctxK() int {
	if c.ElisionCtxK == 0 {
		return 2
	}
	return c.ElisionCtxK
}

// CanonicalJSON renders the configuration as deterministic bytes for
// content addressing: every field of Config is plain data (no maps, no
// closures), so encoding/json emits struct fields in declaration order and
// equal configurations always marshal identically. The campaign subsystem
// hashes this into its cache key, so adding a field changes the keys of
// every configuration — which is exactly right: a new knob is a new
// machine.
func (c Config) CanonicalJSON() []byte {
	data, err := json.Marshal(c)
	if err != nil {
		// Config contains only scalars, strings and Region slices; a
		// marshal failure is a programming error, not an input error.
		panic(fmt.Sprintf("pipeline: config marshal: %v", err))
	}
	return data
}

// validate rejects machine configurations that the structure constructors
// would otherwise panic on (cache geometry constraints) plus degenerate
// pipeline widths, so NewSim can fail with a structured error instead.
func (c *Config) validate(harts int) error {
	fail := func(format string, args ...any) error {
		return &SimError{Kind: ErrConfig, Msg: fmt.Sprintf(format, args...)}
	}
	if harts <= 0 {
		return fail("hart count %d must be positive", harts)
	}
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		return fail("fetch/issue/commit widths must be positive (%d/%d/%d)",
			c.FetchWidth, c.IssueWidth, c.CommitWidth)
	}
	if c.ROBSize <= 0 || c.IQSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0 {
		return fail("ROB/IQ/LQ/SQ sizes must be positive (%d/%d/%d/%d)",
			c.ROBSize, c.IQSize, c.LQSize, c.SQSize)
	}
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fail("line size %d must be a power of two", c.LineSize)
	}
	caches := []struct {
		name   string
		sizeKB int
		ways   int
	}{
		{"L1I", c.L1ISizeKB, c.L1IWays},
		{"L1D", c.L1DSizeKB, c.L1DWays},
		{"L2", c.L2SizeKB, c.L2Ways},
		{"LLC", c.LLCSizeKB, c.LLCWays},
	}
	for _, cc := range caches {
		if cc.sizeKB <= 0 || cc.ways <= 0 {
			return fail("%s geometry must be positive (%dKB, %d ways)", cc.name, cc.sizeKB, cc.ways)
		}
		lines := cc.sizeKB * 1024 / int(c.LineSize)
		if lines == 0 || lines%cc.ways != 0 {
			return fail("%s: %d lines not divisible by %d ways", cc.name, lines, cc.ways)
		}
	}
	if c.CapCacheEntries <= 0 {
		return fail("capability cache entries %d must be positive", c.CapCacheEntries)
	}
	if c.AliasCacheEntries <= 0 || c.AliasCacheEntries%2 != 0 {
		return fail("alias cache entries %d must be positive and even (2-way)", c.AliasCacheEntries)
	}
	if c.PredictorEntries <= 0 {
		return fail("predictor entries %d must be positive", c.PredictorEntries)
	}
	if c.TLBEntries <= 0 || c.TLBWays <= 0 || c.TLBEntries%c.TLBWays != 0 {
		return fail("TLB: %d entries not divisible by %d ways", c.TLBEntries, c.TLBWays)
	}
	if c.HoistGuards && !c.ElideChecks {
		return fail("HoistGuards requires ElideChecks: a guard only attributes checks the elision map suppresses")
	}
	if c.SuperblockChainLen < 0 {
		return fail("superblock chain length %d must be non-negative", c.SuperblockChainLen)
	}
	return nil
}

// FormatTableIII renders the configuration as the paper's Table III.
func (c *Config) FormatTableIII() string {
	var b strings.Builder
	b.WriteString("TABLE III: HARDWARE CONFIGURATION OF THE SIMULATED SYSTEM\n")
	row := func(k1, v1, k2, v2 string) {
		fmt.Fprintf(&b, "  %-16s %-22s %-12s %s\n", k1, v1, k2, v2)
	}
	row("Frequency", fmt.Sprintf("%.1f GHz", c.FrequencyGHz), "I cache", fmt.Sprintf("%d KB, %d way", c.L1ISizeKB, c.L1IWays))
	row("Fetch width", fmt.Sprintf("%d fused uops", c.FetchWidth), "D cache", fmt.Sprintf("%d KB, %d way", c.L1DSizeKB, c.L1DWays))
	row("Issue width", fmt.Sprintf("%d unfused uops", c.IssueWidth), "ROB size", fmt.Sprintf("%d entries", c.ROBSize))
	row("IQ", fmt.Sprintf("%d entries", c.IQSize), "LQ/SQ size", fmt.Sprintf("%d/%d entries", c.LQSize, c.SQSize))
	row("Branch Predictor", "LTAGE", "BTB size", "4096 entries")
	row("RAS size", "64 entries", "Functional",
		fmt.Sprintf("Int ALU (%d) / Mult (%d),", c.IntALU, c.IntMult))
	row("Cap cache", fmt.Sprintf("%d entries", c.CapCacheEntries), "Units",
		fmt.Sprintf("FPALU (%d) / SIMD (%d)", c.FPALU, c.SIMD))
	row("Alias cache", fmt.Sprintf("%d+%d entries", c.AliasCacheEntries, c.AliasVictim),
		"Alias pred.", fmt.Sprintf("%d entries", c.PredictorEntries))
	return b.String()
}
