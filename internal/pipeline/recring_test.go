package pipeline

import (
	"testing"

	"chex86/internal/emu"
)

// TestRecRingFIFO exercises order, wraparound, and growth.
func TestRecRingFIFO(t *testing.T) {
	var r recRing
	recs := make([]*emu.Rec, 40)
	for i := range recs {
		recs[i] = &emu.Rec{Seq: uint64(i)}
	}
	// Interleave pushes and pops so head wraps repeatedly while the ring
	// grows past its initial capacity.
	next := 0
	for i, rec := range recs {
		r.push(rec)
		if i%3 == 2 {
			got := r.pop()
			if got != recs[next] {
				t.Fatalf("pop %d: got seq %d, want %d", next, got.Seq, next)
			}
			next++
		}
	}
	for r.size() > 0 {
		got := r.pop()
		if got != recs[next] {
			t.Fatalf("drain pop %d: got seq %d, want %d", next, got.Seq, next)
		}
		next++
	}
	if next != len(recs) {
		t.Fatalf("drained %d records, want %d", next, len(recs))
	}
	if r.pop() != nil {
		t.Fatal("pop on empty ring must return nil")
	}
}

// TestRecRingBoundedMemory is the regression test for the Sim.nextRec
// queue leak: the reslicing queue it replaces (q = q[1:]) grew its
// backing array with the total number of records ever queued. The ring's
// backing array must instead be bounded by the high-water occupancy — a
// million push/pop cycles with occupancy ≤ 4 must leave capacity at the
// minimal power-of-two ring size, and popped slots must be nil so the
// ring never pins recycled records against the garbage collector.
func TestRecRingBoundedMemory(t *testing.T) {
	var r recRing
	recs := [4]*emu.Rec{{}, {}, {}, {}}
	for i := 0; i < 1_000_000; i++ {
		r.push(recs[i%4])
		if i%2 == 1 { // drain two for every two pushed, lagging by two
			r.pop()
			r.pop()
		}
	}
	for r.size() > 0 {
		r.pop()
	}
	if cap(r.buf) > 8 {
		t.Fatalf("ring capacity grew to %d under occupancy ≤ 4 — memory is not bounded by occupancy", cap(r.buf))
	}
	for i, slot := range r.buf {
		if slot != nil {
			t.Fatalf("slot %d still pins a popped record", i)
		}
	}
}
