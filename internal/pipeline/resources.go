package pipeline

// This file implements the scheduling resources of the one-pass
// out-of-order timing model: per-cycle bandwidth counters (issue width,
// commit width, functional-unit pools) and in-order occupancy rings (ROB,
// IQ, LQ, SQ). The model processes the committed micro-op trace in a
// single pass, computing for every micro-op its fetch, dispatch, issue,
// completion, and commit cycles subject to these resource constraints —
// the standard trace-driven instruction-window timing approach.

// bwWindow is the sliding-window size for bandwidth counters. It must
// exceed the maximum spread between the oldest and newest in-flight cycle,
// which is bounded by ROB occupancy times worst-case memory latency.
const bwWindow = 1 << 16

// bandwidth models a per-cycle issue/commit/FU bandwidth limit using a
// sliding window of per-cycle counters. Counters are a single byte each:
// the schedule loop reserves from several bandwidth instances per μop, so
// the combined window footprint must stay cache-resident (widths are
// pipeline widths and FU pool sizes, single digits in practice).
type bandwidth struct {
	width  uint8
	base   uint64 // first cycle represented by counts[0]
	counts [bwWindow]uint8
}

func newBandwidth(width int) *bandwidth {
	if width < 1 || width > 255 {
		panic("bandwidth width out of range")
	}
	return &bandwidth{width: uint8(width)}
}

// reserve finds the first cycle at or after want with spare bandwidth,
// consumes one slot, and returns that cycle.
func (b *bandwidth) reserve(want uint64) uint64 {
	if want < b.base {
		want = b.base
	}
	// Slide the window forward if want runs past it.
	if want >= b.base+bwWindow {
		shift := want - b.base - bwWindow/2
		b.slide(shift)
	}
	for {
		idx := (want - b.base) % bwWindow
		if want >= b.base+bwWindow {
			b.slide(want - b.base - bwWindow/2)
			idx = (want - b.base) % bwWindow
		}
		if b.counts[idx] < b.width {
			b.counts[idx]++
			return want
		}
		want++
	}
}

// slide advances the window base by shift cycles, discarding old counters.
// The discarded index range [base%W, (base+shift)%W) is cleared as one or
// two contiguous spans so the runtime can use vectorized memclr.
func (b *bandwidth) slide(shift uint64) {
	if shift >= bwWindow {
		clear(b.counts[:])
		b.base += shift
		return
	}
	start := b.base % bwWindow
	end := start + shift
	if end <= bwWindow {
		clear(b.counts[start:end])
	} else {
		clear(b.counts[start:])
		clear(b.counts[:end-bwWindow])
	}
	b.base += shift
}

// occupancyRing models an in-order-allocated, capacity-limited structure
// (ROB, IQ, LQ, SQ): entry i cannot allocate until entry i-capacity has
// released. release cycles are recorded in allocation order. The ring
// position is kept as an incrementally wrapped head index rather than
// count%capacity: allocate/release run multiple times per μop and the
// capacities are not powers of two, so the division is a measurable cost.
type occupancyRing struct {
	capacity int
	releases []uint64 // circular: release cycle of the (i mod cap)-th entry
	count    uint64   // total allocations so far
	head     int      // count % capacity, maintained incrementally
}

func newOccupancyRing(capacity int) *occupancyRing {
	return &occupancyRing{capacity: capacity, releases: make([]uint64, capacity)}
}

// allocate returns the earliest cycle (at or after want) at which a new
// entry can be allocated; the caller must follow with release().
func (r *occupancyRing) allocate(want uint64) uint64 {
	if r.count >= uint64(r.capacity) {
		// The slot reused by this entry frees when its previous occupant
		// released.
		if prev := r.releases[r.head]; prev > want {
			want = prev
		}
	}
	return want
}

// release records the release cycle of the most recently allocated entry.
func (r *occupancyRing) release(cycle uint64) {
	r.releases[r.head] = cycle
	r.count++
	r.head++
	if r.head == r.capacity {
		r.head = 0
	}
}

// occupied counts entries still held at the given cycle (diagnostic use:
// pipeline snapshots on hang/cancellation errors).
func (r *occupancyRing) occupied(now uint64) int {
	n := r.count
	if n > uint64(r.capacity) {
		n = uint64(r.capacity)
	}
	held := 0
	for i := uint64(0); i < n; i++ {
		if r.releases[i] > now {
			held++
		}
	}
	return held
}

// issueWindow models a capacity-limited structure whose entries free
// out-of-order (the instruction queue: entries release at issue). A new
// entry can dispatch once fewer than capacity older entries remain
// unissued — i.e., no earlier than the capacity-th largest issue time seen
// so far. A size-capacity min-heap of the largest issue times yields that
// bound exactly. The heap is 4-ary with a hole-based sift: replacing the
// root usually sifts the full depth, and the 4-ary layout halves that
// depth while keeping each level's children inside one cache line.
type issueWindow struct {
	capacity int
	heap     []uint64 // 4-ary min-heap of the `capacity` largest issue times
}

func newIssueWindow(capacity int) *issueWindow {
	return &issueWindow{capacity: capacity}
}

// occupied counts entries still unissued at the given cycle (diagnostic
// use: pipeline snapshots on hang/cancellation errors).
func (w *issueWindow) occupied(now uint64) int {
	held := 0
	for _, t := range w.heap {
		if t > now {
			held++
		}
	}
	return held
}

// bound returns the earliest cycle at which a new entry may dispatch.
func (w *issueWindow) bound() uint64 {
	if len(w.heap) < w.capacity {
		return 0
	}
	return w.heap[0]
}

// add records an entry's issue time.
func (w *issueWindow) add(issue uint64) {
	h := w.heap
	if len(h) < w.capacity {
		h = append(h, issue)
		w.heap = h
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 4
			if h[p] <= h[i] {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		return
	}
	if issue <= h[0] {
		return
	}
	// Sift the hole left by the evicted root downward, pulling the
	// smaller child up, until issue fits.
	n := len(h)
	i := 0
	for {
		small := i
		min := issue
		c := 4*i + 1
		last := c + 4
		if last > n {
			last = n
		}
		for ; c < last; c++ {
			if h[c] < min {
				small, min = c, h[c]
			}
		}
		if small == i {
			break
		}
		h[i] = min
		i = small
	}
	h[i] = issue
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
