package pipeline

import (
	"testing"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/heap"
	"chex86/internal/isa"
)

// buildWorker returns a process hammering its own heap buffer.
func buildWorker(iters int64) *asm.Program {
	b := asm.NewBuilder()
	b.MovRI(isa.RDI, 512)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RSI, 0)
	b.Label("outer")
	b.MovRI(isa.RCX, 0)
	b.Label("inner")
	b.LoadIdx(isa.RDX, isa.RBX, isa.RCX, 8, 0)
	b.AddRI(isa.RDX, 1)
	b.StoreIdx(isa.RBX, isa.RCX, 8, 0, isa.RDX)
	b.AddRI(isa.RCX, 1)
	b.CmpRI(isa.RCX, 64)
	b.Jcc(isa.CondL, "inner")
	b.AddRI(isa.RSI, 1)
	b.CmpRI(isa.RSI, iters)
	b.Jcc(isa.CondL, "outer")
	b.Hlt()
	return b.MustBuild()
}

func TestTimeShareTwoProcesses(t *testing.T) {
	mk := func() *Sim { return New(buildWorker(30), DefaultConfig(), 1) }

	// Solo runs for reference.
	soloA, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}

	// Time-shared run.
	simA, simB := mk(), mk()
	res, err := TimeShare([]*Sim{simA, simB}, 200, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerProcess) != 2 || res.Switches == 0 {
		t.Fatalf("schedule bookkeeping wrong: %+v", res)
	}
	// Both processes completed the same work as a solo run.
	for i, pr := range res.PerProcess {
		if pr.MacroInsts != soloA.MacroInsts {
			t.Fatalf("process %d executed %d insts, want %d", i, pr.MacroInsts, soloA.MacroInsts)
		}
	}
	// Wall time covers both processes plus switch costs: it must exceed
	// either solo run, and each process's own span must exceed its solo
	// span (cold security structures after each switch-in).
	if res.WallCycles <= soloA.Cycles {
		t.Fatalf("wall %d should exceed a solo run %d", res.WallCycles, soloA.Cycles)
	}
	if res.PerProcess[0].CapCache.Misses <= soloA.CapCache.Misses {
		t.Fatalf("switched-in process should see extra capability-cache misses (%d vs %d)",
			res.PerProcess[0].CapCache.Misses, soloA.CapCache.Misses)
	}
}

// TestTimeShareIsolation: one process's use-after-free must be detected
// even when interleaved with an innocent process, and the innocent process
// must stay clean — the per-process shadow tables do not leak.
func TestTimeShareIsolation(t *testing.T) {
	bad := asm.NewBuilder()
	bad.MovRI(isa.RDI, 64)
	bad.CallAddr(heap.MallocEntry)
	bad.MovRR(isa.RBX, isa.RAX)
	// Busy work so the quantum expires before the exploit fires.
	bad.MovRI(isa.RCX, 0)
	bad.Label("spin")
	bad.Store(isa.RBX, 0, isa.RCX)
	bad.AddRI(isa.RCX, 1)
	bad.CmpRI(isa.RCX, 600)
	bad.Jcc(isa.CondL, "spin")
	bad.MovRR(isa.RDI, isa.RBX)
	bad.CallAddr(heap.FreeEntry)
	bad.Load(isa.RDX, isa.RBX, 0) // UAF after the switches
	bad.Hlt()

	cfgBad := DefaultConfig()
	cfgBad.StopOnViolation = true
	simBad := New(bad.MustBuild(), cfgBad, 1)
	simGood := New(buildWorker(10), DefaultConfig(), 1)

	_, err := TimeShare([]*Sim{simGood, simBad}, 200, 1000)
	v, ok := err.(*core.Violation)
	if !ok || v.Kind != core.VUseAfterFree {
		t.Fatalf("interleaved UAF missed: %v", err)
	}
	if len(simGood.Violations) != 0 {
		t.Fatal("the innocent process must not inherit violations")
	}
}
