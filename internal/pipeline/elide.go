package pipeline

// ElideKey identifies one memory micro-op site for check elision in one
// calling context: the macro-op address, the micro-op's index within
// the *native* expansion (the numbering decode.Native assigns, before
// any variant customization renumbers the stream), and the k-limited
// call-string context the proof holds in. internal/ptrflow keys its
// static sites identically. Context-insensitive proofs — valid in every
// context — use CtxAny; the runtime probes the exact live context
// first, then the ⊤ entry.
type ElideKey struct {
	Addr     uint64
	MacroIdx uint8
	Ctx      CallCtx
}

// ElisionMap marks dereference sites whose capability check is proven
// redundant: every execution of the site in the keyed context is
// statically in bounds of a live, writable-enough region (see
// internal/elide). The decoder suppresses check-injection at marked
// sites — and only there; (site, context) pairs absent from the map
// (the explicit "unknown") always keep their check. Pointer tracking,
// alias prediction and the dereference trace are unaffected: elision
// removes the check micro-op, not the tracker.
type ElisionMap map[ElideKey]bool

// SetElisionMap installs the elision map. It only takes effect when
// Cfg.ElideChecks is also set, so an installed map with the knob off is
// inert — the fail-closed default. Installing a map bumps the superblock
// epoch: any block whose baked elision mask was derived from the old map
// is invalidated before its next replay.
func (s *Sim) SetElisionMap(m ElisionMap) {
	s.elision = m
	s.sbEpoch++
}
