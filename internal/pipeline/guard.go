package pipeline

// GuardKey identifies one hoisted block guard at runtime: the anchor
// address (the leader instruction of the dominating block the guard was
// hoisted to) and the calling context the claim holds in (CtxAny for
// ⊤-layer guards). The runtime probes the exact live context first,
// then the ⊤ entry — the same fail-closed order as elision lookups.
type GuardKey struct {
	Addr uint64
	Ctx  CallCtx
}

// GuardMap is the pipeline-consumable form of a verified guard report
// (internal/elide re-verifies every claim before building one). Guards
// maps each anchor to the number of capability checks its fused claim
// covers; Covered marks the elision keys whose suppressed check is
// attributed to a guard rather than to a standalone per-site proof.
//
// The checker only admits covered sites that are in the verified
// elision map, so guard hoisting never changes which checks execute —
// the guard μop folds into its anchor block's leader with zero timing
// cost, and the map's sole runtime effect is the attribution the
// GuardStats counters report (see DESIGN.md §16).
type GuardMap struct {
	Guards  map[GuardKey]int
	Covered map[ElideKey]bool
}

// GuardStats aggregates the guard-hoisting counters across harts. The
// counters are deliberately not part of Result: Results must stay
// byte-identical with guards on and off (the differential gate), so the
// attribution lives beside the Result, not inside it.
type GuardStats struct {
	// GuardUops counts committed guard-anchor activations: one per
	// commit of an anchor macro-op whose (address, live context) matches
	// a verified guard.
	GuardUops uint64

	// SubsumedChecks counts elided capability checks attributed to a
	// hoisted guard: elision-map hits whose key is in the guard map's
	// covered set.
	SubsumedChecks uint64
}

// SetGuardMap installs the verified guard map. It only takes effect
// when Cfg.HoistGuards is also set (which itself requires ElideChecks),
// so an installed map with the knob off is inert — the fail-closed
// default.
func (s *Sim) SetGuardMap(m GuardMap) { s.guards = m }

// GuardStats returns the guard-hoisting attribution counters summed
// over all harts, windowed past the warmup boundary exactly like the
// Result check counters — so SubsumedChecks is always comparable to
// (and never exceeds) Result.ChecksElided over the same window.
func (s *Sim) GuardStats() GuardStats {
	g := s.rawGuardStats()
	g.GuardUops -= minU64(s.warmGuards.GuardUops, g.GuardUops)
	g.SubsumedChecks -= minU64(s.warmGuards.SubsumedChecks, g.SubsumedChecks)
	return g
}

// rawGuardStats sums the per-hart guard counters over the whole run.
func (s *Sim) rawGuardStats() GuardStats {
	var g GuardStats
	for i := range s.cores {
		g.GuardUops += s.cores[i].guardUops
		g.SubsumedChecks += s.cores[i].subsumedChecks
	}
	return g
}
