package pipeline

// GuardKey identifies one hoisted block guard at runtime: the anchor
// address (the leader instruction of the dominating block the guard was
// hoisted to) and the calling context the claim holds in (CtxAny for
// ⊤-layer guards). The runtime probes the exact live context first,
// then the ⊤ entry — the same fail-closed order as elision lookups.
type GuardKey struct {
	Addr uint64
	Ctx  CallCtx
}

// GuardMap is the pipeline-consumable form of a verified guard report
// (internal/elide re-verifies every claim before building one). Guards
// maps each anchor to the number of capability checks its fused claim
// covers; Covered marks the elision keys whose suppressed check is
// attributed to a guard rather than to a standalone per-site proof.
//
// The checker only admits covered sites that are in the verified
// elision map, so guard hoisting never changes which checks execute.
// With HoistGuards on, each committed anchor materializes one timed
// UGuardCheck μop — the fused interval check standing in for every
// subsumed per-site capability check the elision map already removed
// from the stream — so the hoisting trade (one guard μop per block
// entry against many elided checks) is measured by the timing model,
// not merely accounted (see DESIGN.md §16/§17). The security contract
// is unchanged: the guard μop is functionally inert (the per-site
// functional validation decisions come from the elision map alone), so
// violation reports are byte-identical with guards on or off.
type GuardMap struct {
	Guards  map[GuardKey]int
	Covered map[ElideKey]bool
}

// GuardStats aggregates the guard-hoisting counters across harts. The
// counters live beside Result rather than inside it: they are host-side
// attribution detail, and the guards-on/off differential (TestGuardDiff)
// pins the exact relation — identical violations and check counts, with
// the guard μops the only stream difference.
type GuardStats struct {
	// GuardUops counts committed guard-anchor activations: one per
	// commit of an anchor macro-op whose (address, live context) matches
	// a verified guard.
	GuardUops uint64

	// SubsumedChecks counts elided capability checks attributed to a
	// hoisted guard: elision-map hits whose key is in the guard map's
	// covered set.
	SubsumedChecks uint64
}

// SetGuardMap installs the verified guard map. It only takes effect
// when Cfg.HoistGuards is also set (which itself requires ElideChecks),
// so an installed map with the knob off is inert — the fail-closed
// default. Installing a map bumps the superblock epoch: any block whose
// baked guard-anchor and subsumption masks were derived from the old map
// is invalidated before its next replay.
func (s *Sim) SetGuardMap(m GuardMap) {
	s.guards = m
	s.sbEpoch++
}

// GuardStats returns the guard-hoisting attribution counters summed
// over all harts, windowed past the warmup boundary exactly like the
// Result check counters — so SubsumedChecks is always comparable to
// (and never exceeds) Result.ChecksElided over the same window.
func (s *Sim) GuardStats() GuardStats {
	g := s.rawGuardStats()
	g.GuardUops -= minU64(s.warmGuards.GuardUops, g.GuardUops)
	g.SubsumedChecks -= minU64(s.warmGuards.SubsumedChecks, g.SubsumedChecks)
	return g
}

// rawGuardStats sums the per-hart guard counters over the whole run.
func (s *Sim) rawGuardStats() GuardStats {
	var g GuardStats
	for i := range s.cores {
		g.GuardUops += s.cores[i].guardUops
		g.SubsumedChecks += s.cores[i].subsumedChecks
	}
	return g
}
