package pipeline

import (
	"chex86/internal/branch"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/emu"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/tracker"
)

// uopPlan is a scheduled micro-op with its instrumentation-derived extra
// execute latency (capability-cache misses, shadow-table accesses).
type uopPlan struct {
	u        isa.Uop
	extraLat uint64
	// flush requests a pipeline flush when this uop completes (P0AN alias
	// misprediction recovery), with the added latency of the alias-table
	// walk that detected it.
	flush    bool
	flushLat uint64
}

// processRec runs one committed macro-op through the front-end machinery
// (decode, tracking, microcode customization) and the timing model. It
// returns the first capability violation detected, if any.
func (s *Sim) processRec(c *coreCtx, rec *emu.Rec) *core.Violation {
	in := rec.Inst
	cfg := &s.Cfg
	c.recsRun++
	c.lastRIP = in.Addr

	// --- Superblock replay cursor (fast path; superblock.go). ---
	// When the cursor holds a baked translation for this record, the
	// per-instruction dispatch work below — branch-kind classification,
	// μop-cache probe, and the map lookups inside the instrumentation —
	// is replaced by the block's precomputed facts.
	var sbm *sbMacro
	sbOn := s.sbEnabled()
	if sbOn {
		sbm = s.sbResolve(c, rec)
	}

	// --- Branch prediction (fetch stage). ---
	var brKind branch.Kind
	var predTaken bool
	var predTarget uint64
	var isBranch bool
	if sbm != nil {
		isBranch, brKind = sbm.isBranch, sbm.brKind
	} else {
		isBranch = in.Op.IsBranch()
		if isBranch {
			switch in.Op {
			case isa.JCC:
				brKind = branch.KindCond
			case isa.JMP:
				brKind = branch.KindDirect
				if in.Dst.Kind == isa.OpReg {
					brKind = branch.KindIndirect
				}
			case isa.CALL:
				brKind = branch.KindCall
				if in.Dst.Kind == isa.OpReg {
					brKind = branch.KindIndirectCall
				}
			case isa.RET:
				brKind = branch.KindRet
			}
		}
	}
	if isBranch {
		predTaken, predTarget = c.bu.Predict(brKind, in.Addr, in.NextAddr())
	}

	// --- Decode to native micro-ops. ---
	// The μop translation cache memoizes the static translation
	// (Decoder.Native + Microcode.Apply) and its entries are immutable,
	// so a hit is served zero-copy: per-dynamic state (the effective
	// address, the instrumentation that follows) is read from the
	// committed record at its use sites, never written into the
	// expansion. The statistics the memoized stages would have bumped
	// are replayed on a hit so results are byte-identical with the cache
	// on and off.
	c.microRerouted = false
	var native []isa.Uop
	if sbm != nil {
		c.dec.Stats.MacroOps++
		c.dec.Stats.NativeUops += sbm.nativeUops
		native = sbm.uops
	} else {
		gen := s.Microcode.Gen()
		var nativeUops uint64
		cached := false
		if !cfg.NoUopCache {
			if e := c.uc.lookup(in.Addr, gen); e != nil {
				c.dec.Stats.MacroOps++
				c.dec.Stats.NativeUops += e.nativeUops
				nativeUops = e.nativeUops
				if e.rerouted {
					c.dec.Stats.MSROMMacros++
					s.Microcode.Stats.Rerouted++
					c.microRerouted = true
				}
				native = e.uops
				cached = true
			}
		}
		if !cached {
			buf := c.dec.Native(in, c.uopBuf[:0])
			c.uopBuf = buf[:0]
			nativeUops = uint64(len(buf))
			native = buf
			// Field updates re-route matching translations through the MSRAM.
			if rerouted, hit := s.Microcode.Apply(in, native); hit {
				native = rerouted
				c.dec.Stats.MSROMMacros++
				c.microRerouted = true
			}
			if !cfg.NoUopCache {
				c.uc.insert(in.Addr, gen, native, nativeUops, c.microRerouted)
			}
		}
		if sbOn {
			s.sbFeed(c, rec, native, nativeUops, isBranch, brKind, gen)
		}
	}

	// --- Tracking and instrumentation. ---
	c.firstViolation = nil

	plans := c.planBuf[:0]

	// --- Hoisted block guard (guard.go): one timed UGuardCheck μop per
	// committed verified anchor, leading the macro-op's plan so the
	// fused interval check issues at block entry in place of the per-site
	// capability checks the elision map removed. The probe runs before
	// ctxRetire below, so an anchor CALL counts in its caller's context —
	// matching the static attribution. Same probe order as elision:
	// exact live context, then the ⊤ entry.
	if cfg.HoistGuards && cfg.Variant.UsesTracker() {
		guardHit := false
		if sbm != nil {
			guardHit = sbm.guardAnchor
		} else if len(s.guards.Guards) > 0 {
			gctx := c.liveCtx().Limit(cfg.ctxK())
			if _, ok := s.guards.Guards[GuardKey{Addr: in.Addr, Ctx: gctx}]; ok {
				guardHit = true
			} else if !gctx.IsAny() {
				_, guardHit = s.guards.Guards[GuardKey{Addr: in.Addr, Ctx: CtxAny}]
			}
		}
		if guardHit {
			c.guardUops++
			plans = append(plans, uopPlan{u: isa.Uop{
				Type: isa.UGuardCheck, Dst: isa.RNone, Src1: isa.RNone, Src2: isa.RNone,
				Injected: true,
			}})
			c.dec.Stats.InjectedUops++
		}
	}

	switch {
	case cfg.Variant == decode.VariantWatchdog:
		plans = s.instrumentWatchdog(c, rec, native, plans)

	case cfg.Variant == decode.VariantASan:
		// ASanInstrument derives shadow addresses from the access EAs, so
		// the ASan path materializes the effective addresses on a scratch
		// copy of the (immutable) expansion first.
		buf := append(c.uopBuf[:0], native...)
		c.uopBuf = buf[:0]
		for i := range buf {
			if buf[i].Type.IsMem() {
				buf[i].EA = rec.EA
			}
		}
		instrumented := c.dec.ASanInstrument(buf)
		for i := range instrumented {
			plans = append(plans, uopPlan{u: instrumented[i]})
		}
		if rec.HasEA {
			c.record(in.Addr, s.checkASan(rec))
		}

	case cfg.Variant.UsesTracker():
		plans = s.instrumentTracked(c, rec, native, plans, sbm)

	default: // insecure baseline
		for i := range native {
			p := uopPlan{u: native[i]}
			if p.u.Type.IsMem() {
				p.u.EA = rec.EA
			}
			plans = append(plans, p)
		}
	}

	// --- Allocator entry/exit interception (Section IV-C). ---
	if rec.Event != emu.EvNone && cfg.Variant.UsesTracker() {
		plans = s.capEventUops(c, rec, plans)
	} else if rec.Event == emu.EvAllocExit || rec.Event == emu.EvFreeExit {
		extra := 0
		if cfg.Variant == decode.VariantASan {
			// ASan's allocator poisons/unpoisons the shadow of the whole
			// object and manages redzones and the quarantine.
			extra = int(rec.AllocSize / 32)
			if extra > 256 {
				extra = 256
			}
			extra += heap.CostUops
		}
		plans = c.allocatorBody(plans, extra)
	}
	c.planBuf = plans

	// --- Fetch timing. ---
	macroCost := 1
	switch cfg.Variant {
	case decode.VariantBinaryTranslation, decode.VariantASan:
		// Instrumentation is injected as macro-ops into the fetched stream
		// (translated code / compiled-in checks), consuming fetch slots.
		for i := range plans {
			if plans[i].u.Injected {
				macroCost++
			}
		}
	}
	msrom := len(plans) > 4 && cfg.Variant != decode.VariantBinaryTranslation && cfg.Variant != decode.VariantASan
	if msrom {
		c.dec.Stats.MSROMMacros++
	}
	c.beginMacro(cfg, in.Addr, macroCost, msrom)

	// --- Back-end scheduling. ---
	brDone, flushDone, flushLat := c.schedule(cfg, plans, s.TraceUop, in.Addr)

	// --- Branch resolution and redirect. ---
	if isBranch {
		if c.bu.Resolve(brKind, in.Addr, in.NextAddr(), predTaken, predTarget, rec.Taken, rec.Target) {
			c.redirect(cfg, brDone)
		}
	}
	if flushDone > 0 {
		c.redirect(cfg, flushDone+flushLat)
		c.aliasFlushes++
	}

	// --- Hardware checker co-processor (offline rule validation). ---
	if c.checker != nil {
		c.checker.Validate(rec)
	}

	// Retire tracker state for this macro-op: committed tags become
	// architectural and the store buffer drains into the alias table.
	if cfg.Variant.UsesTracker() {
		c.eng.CommitThrough(rec.Seq)
	}

	// --- Live call-string fold (elision and guard lookups only). ---
	// Updated after the macro-op is fully processed so a CALL's own
	// micro-ops (the return-address push) probe in the caller's context
	// and a RET's in the callee's — matching the static attribution.
	if cfg.ElideChecks {
		c.ctxRetire(s, rec)
	}

	// Advance the superblock cursor past the replayed macro-op. This
	// runs after ctxRetire so a terminal CALL/RET's fold transition is
	// visible to the successor block's context check.
	if sbm != nil {
		s.sbAdvance(c, rec)
	}
	return c.firstViolation
}

// liveCtx returns the k=2 call-string context of the next macro-op, or
// CtxAny when the fold cannot name it (pairing lost, or currently deeper
// than the stack records) — the fail-closed direction, since CtxAny
// elision entries are verified against context-joined invariants.
func (c *coreCtx) liveCtx() CallCtx {
	switch {
	case c.ctxLost || c.ctxDepth > len(c.ctxStack):
		return CtxAny
	case c.ctxDepth == 0:
		return CtxRoot
	default:
		return c.ctxStack[c.ctxDepth-1]
	}
}

// ctxRetire folds one committed macro-op into the live call-string.
// Only CALLs into the program text push (external and intercepted
// allocator calls are summarized by the static analysis, not descended
// into), and only genuine guest RETs pop — the emulator's synthetic
// allocator-exit RET records carry an allocator event and return to the
// same procedure the CALL left.
func (c *coreCtx) ctxRetire(s *Sim, rec *emu.Rec) {
	switch rec.Inst.Op {
	case isa.CALL:
		if rec.Event != emu.EvNone || s.M.Prog.At(rec.Target) == nil {
			return
		}
		if c.ctxDepth < len(c.ctxStack) {
			cur := CtxRoot
			if c.ctxDepth > 0 {
				cur = c.ctxStack[c.ctxDepth-1]
			}
			c.ctxStack[c.ctxDepth] = cur.Push(rec.Inst.Addr)
		}
		c.ctxDepth++
	case isa.RET:
		if rec.Event != emu.EvNone {
			return
		}
		if c.ctxDepth == 0 {
			c.ctxLost = true
			return
		}
		c.ctxDepth--
	}
}

// record notes the first capability violation detected for the current
// macro-op, stamping it with the committing instruction's address. It is
// a method on the core context rather than a per-instruction closure:
// closures handed to the (non-inlined) instrumentation helpers escape to
// the heap, which would put an allocation on every committed instruction.
func (c *coreCtx) record(rip uint64, v *core.Violation) {
	if v != nil && c.firstViolation == nil {
		v.RIP = rip
		c.firstViolation = v
	}
}

// instrumentTracked runs the speculative pointer tracker over the native
// micro-ops and applies the microcode customization unit's check-injection
// decisions for the CHEx86 variants. When sbm is non-nil the macro-op is
// replaying from a superblock: the instrumentation decisions that are
// static per (address, macro index, context) — context-policy coverage
// and the elision/guard-subsumption probes — come from the block's baked
// masks instead of live map lookups; everything dynamic (tracker state,
// alias machinery, effective addresses) is identical either way.
func (s *Sim) instrumentTracked(c *coreCtx, rec *emu.Rec, native []isa.Uop, plans []uopPlan, sbm *sbMacro) []uopPlan {
	cfg := &s.Cfg
	seq := rec.Seq
	rip := rec.Inst.Addr
	ea := rec.EA
	var covered bool
	// Elision probe context: the live fold re-truncated to the depth the
	// installed map was built at (constant per macro-op — the fold only
	// advances at retirement, below).
	var elideCtx CallCtx
	if sbm != nil {
		covered = sbm.covered
	} else {
		covered = cfg.Context.Covers(rip)
		if cfg.ElideChecks {
			elideCtx = c.liveCtx().Limit(cfg.ctxK())
		}
	}

	for i := range native {
		u := &native[i]
		switch u.Type {
		case isa.ULoad, isa.UStore:
			write := u.Type == isa.UStore
			pid := c.eng.DerefPID(u)
			if s.TraceDeref != nil {
				s.TraceDeref(rip, u, pid)
			}

			inject := false
			switch cfg.Variant {
			case decode.VariantMicrocodePrediction:
				inject = covered && pid != 0
			case decode.VariantMicrocodeAlwaysOn, decode.VariantBinaryTranslation:
				inject = covered
			}

			// Functional capability validation (all CHEx86 variants check;
			// the hardware-only variant checks inside the load/store unit).
			checkLat := uint64(0)
			hwOnly := cfg.Variant == decode.VariantHardwareOnly && covered
			doCheck := inject || (hwOnly && pid != 0)

			// Proof-carrying check elision: a site with an independently
			// verified safety proof skips the check it would otherwise run
			// — injection, functional validation, and the dereference's
			// token dependency. Everything else (tag tracking above, alias
			// prediction and spill handling below) proceeds unchanged, so
			// elision alters timing and check counts, never the tracker
			// state later sites depend on. Macro-ops rerouted through the
			// microcode RAM are never elided: their micro-op numbering may
			// not match the native expansion the proof was keyed against.
			// Two probes: the exact live context first, then the ⊤ entry
			// holding in every context (context-insensitive proofs, and
			// the only entries reachable once the fold is lost). On
			// superblock replay the probe results were baked at build
			// time under the block's context (validated at block entry),
			// so the maps are not consulted.
			if doCheck && pid != 0 && cfg.ElideChecks && !c.microRerouted {
				var hit, sub bool
				if sbm != nil {
					hit, sub = sbm.elide[i], sbm.subsume[i]
				} else {
					hitKey := ElideKey{Addr: rip, MacroIdx: u.MacroIdx, Ctx: elideCtx}
					hit = s.elision[hitKey]
					if !hit && !elideCtx.IsAny() {
						hitKey.Ctx = CtxAny
						hit = s.elision[hitKey]
					}
					// Guard attribution: the suppressed check belongs to a
					// verified hoisted guard when its elision key is in the
					// guard map's covered set. Pure accounting — the
					// decision above came from the elision map alone, so
					// the executed check set is identical with guards on
					// or off.
					sub = hit && cfg.HoistGuards && s.guards.Covered[hitKey]
				}
				if hit {
					inject = false
					hwOnly = false
					doCheck = false
					c.elidedChecks++
					if sub {
						c.subsumedChecks++
					}
				}
			}
			if doCheck && pid != 0 {
				c.checksRun++
				if pid > 0 && !c.capCache.Access(uint64(pid)) {
					lat := c.hier.AccessShadowAt(core.ShadowAddr(pid), false, false, c.lastCommit)
					if cfg.IdealShadowLatency {
						lat = 0
					}
					checkLat += lat
					c.capMissLat += lat
				}
				c.record(rip, s.Table.Check(pid, ea, u.AccessSize(), write, rip))
			}

			gated := false
			if inject {
				if cfg.Variant == decode.VariantBinaryTranslation {
					// The translator materializes the effective address for
					// the check instruction with a separate glue macro-op.
					plans = append(plans, uopPlan{u: isa.Uop{
						Type: isa.ULea, Dst: isa.T3, Src1: isa.RNone, Src2: isa.RNone,
						Mem: u.Mem, Injected: true,
					}})
					c.dec.Stats.InjectedUops++
				}
				// The check produces a capability token (T3) the dereference
				// consumes: the access cannot issue before its check
				// completes. This ordering is what blocks Spectre-v1-style
				// bounds-check bypass (Section III).
				chk := isa.Uop{
					Type: isa.UCapCheck, Dst: isa.T3, Src1: u.Mem.Base, Src2: u.Mem.Index,
					Mem: u.Mem, EA: ea, PID: pid, Injected: true,
				}
				c.dec.Stats.InjectedUops++
				plans = append(plans, uopPlan{u: chk, extraLat: checkLat})
				checkLat = 0
				gated = pid != 0
			}

			// Append the dereference's plan first and patch it in place
			// through a pointer: uopPlan embeds the micro-op by value, and
			// building it in a local then appending costs a second
			// struct copy per memory micro-op. The pointer stays valid
			// until the next plans append (PNA0 below re-appends nothing
			// it still reads through plan).
			plans = append(plans, uopPlan{u: *u})
			plan := &plans[len(plans)-1]
			plan.u.EA = ea
			if gated {
				c.gatedMem++
				if u.Type == isa.ULoad {
					plan.u.Src1 = isa.T3
				} else {
					plan.u.Src2 = isa.T3
				}
			}
			if hwOnly {
				// The load/store unit performs the check before initiating
				// every memory access — tagged or not — so the lookup (and
				// any shadow-table miss) is on the access's critical path.
				// This always-on cost is why the prediction-driven microcode
				// variant supersedes the hardware-only scheme on
				// memory-intensive applications (Section VII-D).
				plan.extraLat = 2 + checkLat
			}

			if u.Type == isa.ULoad && u.AccessSize() < 8 {
				// Sub-word loads cannot reload a pointer; no alias work.
				continue
			}

			if u.Type == isa.ULoad {
				// Spilled-pointer alias detection (Section V-C).
				predicted := c.eng.PredictLoad(rip)
				res := c.eng.ResolveLoad(seq, rip, ea, u.Dst, predicted)

				var walkLat uint64
				if s.PT.AliasHosting(ea) {
					if !c.aliasCache.Access(ea&^7) && !cfg.NoAliasWalks {
						// Scratch-buffer walk: touches reuses the core's
						// walk buffer, so steady-state walks don't allocate.
						_, touches := s.Ali.WalkInto(ea, c.walkBuf[:0])
						c.walkBuf = touches[:0]
						if !cfg.IdealShadowLatency {
							for _, t := range touches {
								walkLat += c.hier.AccessShadowAt(t, false, true, c.lastCommit)
							}
						}
						c.walkLat += walkLat
					}
				}
				switch res.Outcome {
				case tracker.OutcomePNA0:
					// The check injected for the predicted reload is marked
					// a zero-idiom and squashed at the IQ (Figure 5c).
					plans = append(plans, uopPlan{u: isa.Uop{
						Type: isa.UCapCheck, Dst: isa.RNone, Src1: u.Dst,
						PID: res.Predicted, Injected: true, ZeroIdiom: true,
					}})
					c.dec.Stats.InjectedUops++
					continue
				case tracker.OutcomeP0AN:
					// Flush and restart at the offending instruction with
					// the right checks injected (Figure 5d).
					plan.flush = true
					plan.flushLat = walkLat
				}
				continue
			}

			// Store: record spilled pointer aliases through the store buffer;
			// they reach the shadow alias table at commit. The update writes
			// the alias-table leaf entry, leaving its line resident. A
			// sub-word store partially overwrites any alias in its word, so
			// it conservatively clears the entry (the word no longer holds
			// the tracked pointer value).
			src := u.Src1
			if u.AccessSize() < 8 {
				src = isa.RNone // force the clear path
			}
			if pidStored, updated := c.eng.StoreAlias(seq, ea, src); updated {
				c.aliasCache.Access(ea &^ 7)
				if leaf := s.Ali.LeafAddr(ea); leaf != 0 && !cfg.NoAliasWalks {
					c.hier.AccessShadowAt(leaf, true, true, c.lastCommit)
				}
				s.invalidateAlias(c, ea&^7)
				_ = pidStored
			}

		default:
			c.eng.ApplyRegRule(seq, u)
			plans = append(plans, uopPlan{u: *u})
		}
	}
	return plans
}

// instrumentWatchdog applies Watchdog-style conservative instrumentation
// (Section VII-C): every 64-bit load/store is checked, and every access
// also loads its pointer-identifier metadata from the 1:1 shadow region —
// alias detection deferred to execute, with no prediction and no alias
// cache, roughly doubling memory references.
func (s *Sim) instrumentWatchdog(c *coreCtx, rec *emu.Rec, native []isa.Uop, plans []uopPlan) []uopPlan {
	seq := rec.Seq
	rip := rec.Inst.Addr
	ea := rec.EA
	for i := range native {
		u := &native[i]
		switch u.Type {
		case isa.ULoad, isa.UStore:
			write := u.Type == isa.UStore
			pid := c.eng.DerefPID(u)
			if s.TraceDeref != nil {
				s.TraceDeref(rip, u, pid)
			}
			c.checksRun++
			if pid != 0 {
				if pid > 0 && !c.capCache.Access(uint64(pid)) {
					lat := c.hier.AccessShadowAt(core.ShadowAddr(pid), false, false, c.lastCommit)
					c.capMissLat += lat
				}
				c.record(rip, s.Table.Check(pid, ea, u.AccessSize(), write, rip))
			}
			// The metadata companion access: a real load into the D-cache
			// hierarchy at the word's 1:1 shadow address.
			meta := isa.Uop{
				Type: isa.ULoad, Dst: isa.T1, Src1: isa.RNone, Src2: isa.RNone,
				EA:       decode.WatchdogShadowBase + (ea &^ 7),
				Mem:      isa.MemRef{Base: u.Mem.Base, Index: u.Mem.Index, Scale: u.Mem.Scale},
				Injected: true,
			}
			c.dec.Stats.InjectedUops++
			plans = append(plans, uopPlan{u: meta})
			// The check gates the dereference, as in the other schemes.
			chk := isa.Uop{
				Type: isa.UCapCheck, Dst: isa.T3, Src1: isa.T1, Src2: isa.RNone,
				EA: ea, PID: pid, Injected: true,
			}
			c.dec.Stats.InjectedUops++
			plans = append(plans, uopPlan{u: chk})
			plan := uopPlan{u: *u}
			plan.u.EA = ea
			if u.Type == isa.ULoad {
				plan.u.Src1 = isa.T3
				// Alias resolution straight from the metadata (no
				// prediction, no alias cache): propagate the actual PID.
				actual, fwd := c.eng.SB.Forward(ea)
				if !fwd {
					actual = c.eng.Aliases.Lookup(ea)
				}
				if u.Dst.Valid() {
					c.eng.Tags.Propagate(seq, u.Dst, actual)
				}
			} else {
				plan.u.Src2 = isa.T3
				c.eng.StoreAlias(seq, ea, u.Src1)
			}
			plans = append(plans, plan)
		default:
			c.eng.ApplyRegRule(seq, u)
			plans = append(plans, uopPlan{u: *u})
		}
	}
	return plans
}

// capEventUops injects the capability generation/free micro-ops for an
// intercepted allocator event and performs their shadow-table semantics.
func (s *Sim) capEventUops(c *coreCtx, rec *emu.Rec, plans []uopPlan) []uopPlan {
	rip := rec.Inst.Addr
	seq := rec.Seq
	switch rec.Event {
	case emu.EvAllocEnter:
		// A realloc releases its old capability first.
		if fn := s.MSRs.AtEntry(rec.Target); fn != nil && fn.Kind == core.FnRealloc && rec.AllocBase != 0 {
			oldPID := c.eng.Tags.Current(isa.RDI)
			c.record(rip, s.Table.FreeBegin(oldPID, rec.AllocBase, rip))
			s.Table.FreeEnd(oldPID)
			s.invalidateCap(c, oldPID)
			plans = append(plans,
				uopPlan{u: isa.Uop{Type: isa.UCapFreeBegin, Dst: isa.RNone, PID: oldPID, Injected: true}},
				uopPlan{u: isa.Uop{Type: isa.UCapFreeEnd, Dst: isa.RNone, PID: oldPID, Injected: true}})
			c.dec.Stats.InjectedUops += 2
		}
		cap, v := s.Table.GenBegin(rec.AllocPID, rec.AllocSize, rip)
		c.record(rip, v)
		c.pendingGen = cap
		if rec.AllocPID > 0 {
			// The capGen micro-ops write the new table entry, leaving its
			// line resident (write-allocate) for the first capCheck. Like
			// other stores, the write drains through buffers off the
			// critical path: traffic is charged, retirement is not.
			c.hier.AccessShadowAt(core.ShadowAddr(rec.AllocPID), true, false, c.lastCommit)
		}
		plans = append(plans, uopPlan{u: isa.Uop{Type: isa.UCapGenBegin, Dst: isa.RNone, PID: rec.AllocPID, Injected: true}})
		c.dec.Stats.InjectedUops++

	case emu.EvAllocExit:
		plans = c.allocatorBody(plans, 0)
		if c.pendingGen != nil {
			s.Table.GenEnd(c.pendingGen, rec.AllocBase)
			c.pendingGen = nil
		}
		// Capability transfer: the return-value register receives the new
		// capability's PID.
		c.eng.SetReg(seq, isa.RAX, rec.AllocPID)
		plans = append(plans, uopPlan{u: isa.Uop{Type: isa.UCapGenEnd, Dst: isa.RNone, PID: rec.AllocPID, Injected: true}})
		c.dec.Stats.InjectedUops++

	case emu.EvFreeEnter:
		if rec.AllocBase == 0 {
			break // free(NULL) is a no-op
		}
		pid := c.eng.Tags.Current(isa.RDI)
		c.record(rip, s.Table.FreeBegin(pid, rec.AllocBase, rip))
		c.pendingFreePID = pid
		plans = append(plans, uopPlan{u: isa.Uop{Type: isa.UCapFreeBegin, Dst: isa.RNone, PID: pid, Injected: true}})
		c.dec.Stats.InjectedUops++

	case emu.EvFreeExit:
		plans = c.allocatorBody(plans, 0)
		if c.pendingFreePID != 0 {
			s.Table.FreeEnd(c.pendingFreePID)
			s.invalidateCap(c, c.pendingFreePID)
			plans = append(plans, uopPlan{u: isa.Uop{Type: isa.UCapFreeEnd, Dst: isa.RNone, PID: c.pendingFreePID, Injected: true}})
			c.dec.Stats.InjectedUops++
			c.pendingFreePID = 0
		}
	}
	return plans
}

// allocatorBody appends the dynamic cost of the natively modeled allocator
// routine (its instructions are real guest work); extra adds
// instrumentation-specific work such as ASan's shadow poisoning.
func (c *coreCtx) allocatorBody(plans []uopPlan, extra int) []uopPlan {
	n := heap.CostUops + extra
	for i := 0; i < n; i++ {
		plans = append(plans, uopPlan{u: isa.Uop{
			Type: isa.UAlu, Alu: isa.AluAdd, Dst: isa.T2, Src1: isa.T2, Imm: 1, HasImm: true,
		}})
	}
	c.allocatorUops += uint64(n)
	c.dec.Stats.NativeUops += uint64(n)
	return plans
}

// invalidateCap broadcasts capability-cache invalidations to all other
// cores when a capability is freed (Section IV-C).
func (s *Sim) invalidateCap(c *coreCtx, pid core.PID) {
	if pid <= 0 {
		return
	}
	for _, o := range s.cores {
		if o != c {
			o.capCache.Invalidate(uint64(pid))
			s.invalidates++
		}
	}
}

// invalidateAlias broadcasts alias-cache invalidations to all other cores
// when a spilled pointer alias is updated (Section V-C).
func (s *Sim) invalidateAlias(c *coreCtx, key uint64) {
	for _, o := range s.cores {
		if o != c {
			o.aliasCache.Invalidate(key)
			s.invalidates++
		}
	}
}

// checkASan models AddressSanitizer's functional detection: accesses to
// redzones or to freed (quarantined) memory are flagged.
func (s *Sim) checkASan(rec *emu.Rec) *core.Violation {
	const pad = 32
	ea := rec.EA
	if span := s.M.Truth.Find(ea); span != nil {
		if !span.Live {
			return &core.Violation{Kind: core.VUseAfterFree, PID: span.PID, EA: ea, RIP: rec.Inst.Addr,
				Msg: "ASan: access to quarantined memory"}
		}
		return nil
	}
	// Right redzone of the preceding allocation.
	if prev := s.M.Truth.Find(ea - pad); prev != nil && ea < prev.Base+prev.Size+pad {
		return &core.Violation{Kind: core.VOutOfBounds, PID: prev.PID, EA: ea, RIP: rec.Inst.Addr,
			Msg: "ASan: redzone access (overflow)"}
	}
	// Left redzone of the following allocation.
	if next := s.M.Truth.Find(ea + pad); next != nil && ea >= next.Base-pad && ea < next.Base {
		return &core.Violation{Kind: core.VOutOfBounds, PID: next.PID, EA: ea, RIP: rec.Inst.Addr,
			Msg: "ASan: redzone access (underflow)"}
	}
	return nil
}
