package pipeline

import (
	"fmt"
	"testing"

	"chex86/internal/asm"
	"chex86/internal/decode"
	"chex86/internal/isa"
)

// TestIPCIndependentALU checks that independent ALU work saturates the
// 4-wide fetch front-end.
func TestIPCIndependentALU(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RCX, 2000)
	b.Label("loop")
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RDX, isa.RSI, isa.R8, isa.R9, isa.R10, isa.R11}
	for i := 0; i < 16; i++ {
		b.AddRI(regs[i%len(regs)], 1)
	}
	b.SubRI(isa.RCX, 1)
	b.CmpRI(isa.RCX, 0)
	b.Jcc(isa.CondG, "loop")
	b.Hlt()
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.Variant = decode.VariantInsecure
	res, err := New(p, cfg, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("independent ALU: IPC=%.2f (insts=%d cycles=%d)\n", res.IPC(), res.MacroInsts, res.Cycles)
	if res.IPC() < 3.0 {
		t.Errorf("independent ALU IPC %.2f, want near fetch width 4", res.IPC())
	}
}

// TestIPCDependentChain checks that a serial dependence chain runs at ~1
// uop/cycle.
func TestIPCDependentChain(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RCX, 2000)
	b.Label("loop")
	for i := 0; i < 16; i++ {
		b.AddRI(isa.RAX, 1) // serial chain
	}
	b.SubRI(isa.RCX, 1)
	b.CmpRI(isa.RCX, 0)
	b.Jcc(isa.CondG, "loop")
	b.Hlt()
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.Variant = decode.VariantInsecure
	res, err := New(p, cfg, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("dependent chain: IPC=%.2f\n", res.IPC())
	if res.IPC() > 1.4 || res.IPC() < 0.7 {
		t.Errorf("dependent chain IPC %.2f, want ~1", res.IPC())
	}
}

// TestIPCStreamLoads checks pipelined L1-hitting loads.
func TestIPCStreamLoads(t *testing.T) {
	b := asm.NewBuilder()
	b.Global("arr", 0x600000, 1<<14)
	b.MovRI(isa.RBX, 0x600000)
	b.MovRI(isa.RCX, 0)
	b.Label("loop")
	b.LoadIdx(isa.RDX, isa.RBX, isa.RCX, 8, 0)
	b.AddRR(isa.RSI, isa.RDX)
	b.LoadIdx(isa.R8, isa.RBX, isa.RCX, 8, 8)
	b.AddRR(isa.R9, isa.R8)
	b.AddRI(isa.RCX, 2)
	b.CmpRI(isa.RCX, 2000)
	b.Jcc(isa.CondL, "loop")
	b.Hlt()
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.Variant = decode.VariantInsecure
	res, err := New(p, cfg, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("stream loads: IPC=%.2f L1Dmiss=%.3f\n", res.IPC(), res.L1D.MissRate())
	if res.IPC() < 2.0 {
		t.Errorf("stream load IPC %.2f too low", res.IPC())
	}
}
