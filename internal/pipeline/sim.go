package pipeline

import (
	"context"
	"fmt"

	"chex86/internal/asm"
	"chex86/internal/branch"
	"chex86/internal/cache"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/emu"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/mem"
	"chex86/internal/tracker"
)

// Result aggregates a simulation run's outcome for the paper's figures.
type Result struct {
	Variant decode.Variant

	// Timing.
	Cycles        uint64
	MacroInsts    uint64
	NativeUops    uint64
	InjectedUops  uint64
	SquashCycles  uint64
	Redirects     uint64
	AliasFlushes  uint64
	MSROMMacros   uint64
	AllocatorUops uint64
	CapMissLat    uint64 // aggregate shadow-table latency on capability checks
	WalkLat       uint64 // aggregate alias-table walk latency
	ChecksRun     uint64 // functional capability checks performed
	ChecksElided  uint64 // checks suppressed at proven-safe sites
	GatedMem      uint64 // memory uops gated on a capability-check token

	// Structures.
	CapCache   cache.Stats
	AliasCache cache.Stats
	Predictor  tracker.PredictorStats
	Engine     tracker.EngineStats
	Branch     branch.Stats
	L1D        cache.Stats
	L1I        cache.Stats
	L2         cache.Stats
	LLC        cache.Stats
	ShadowC    cache.Stats
	TLB        mem.TLBStats

	// Memory system.
	DRAMBytes   uint64
	UserRSS     uint64
	ShadowRSS   uint64
	CapTable    core.TableStats
	CapEntries  int
	AliasEntry  int
	AliasWalks  uint64
	Invalidates uint64

	// Security.
	Violations []*core.Violation

	// Checker (when enabled).
	Checker    tracker.CheckerStats
	Mismatches []tracker.Mismatch

	cfg Config
}

// TotalUops returns native plus injected micro-ops.
func (r *Result) TotalUops() uint64 { return r.NativeUops + r.InjectedUops }

// UopTrace is one scheduled micro-op's pipeline timestamps.
type UopTrace struct {
	Core     int
	RIP      uint64
	Uop      string
	Fetch    uint64
	Dispatch uint64
	Issue    uint64
	Done     uint64
	Commit   uint64
}

// UopExpansion returns dynamic micro-ops per macro-op (Figure 6 bottom).
func (r *Result) UopExpansion() float64 {
	if r.MacroInsts == 0 {
		return 0
	}
	return float64(r.TotalUops()) / float64(r.MacroInsts)
}

// IPC returns committed macro-ops per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.MacroInsts) / float64(r.Cycles)
}

// Seconds converts cycles to simulated wall-clock time.
func (r *Result) Seconds() float64 {
	return float64(r.Cycles) / (r.cfg.FrequencyGHz * 1e9)
}

// BandwidthMBs returns DRAM traffic in MB/s of simulated time (Figure 9
// bottom).
func (r *Result) BandwidthMBs() float64 {
	s := r.Seconds()
	if s == 0 {
		return 0
	}
	return float64(r.DRAMBytes) / 1e6 / s
}

// SquashPct returns the percentage of execution time spent squashing
// (front-end blocked on mispredict recovery; Figure 8 bottom).
func (r *Result) SquashPct() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return 100 * float64(r.SquashCycles) / float64(r.Cycles)
}

// coreCtx is one core's pipeline and CHEx86 front-end state.
type coreCtx struct {
	id  int
	cfg *Config

	dec     decode.Decoder
	bu      *branch.Unit
	eng     *tracker.Engine
	checker *tracker.Checker

	capCache   *cache.KeyCache
	aliasCache *cache.KeyCache
	tlb        *mem.TLB
	hier       cache.Hierarchy

	// Front-end timing state.
	fetchAt      uint64
	macroLeft    int
	uopLeft      int
	blockedUntil uint64
	curLine      uint64

	// Back-end resources.
	issueBW    *bandwidth
	commitBW   *bandwidth
	fuBW       [isa.NumFUClasses]*bandwidth
	rob        *occupancyRing
	iq         *issueWindow
	lq         *occupancyRing
	sq         *occupancyRing
	fetchRing  *occupancyRing
	regReady   [isa.NumRegs]uint64
	lastCommit uint64
	lastRIP    uint64 // last committed macro-op address (hang diagnostics)

	// Stats.
	squashCycles  uint64
	redirects     uint64
	aliasFlushes  uint64
	allocatorUops uint64
	capMissLat    uint64 // total shadow-access latency charged to capChecks
	walkLat       uint64 // total alias-walk latency charged
	checksRun     uint64
	elidedChecks  uint64 // checks suppressed at proven-safe sites
	gatedMem      uint64 // memory uops gated on a capability-check token

	// Guard-hoisting attribution (guard.go); kept out of Result so the
	// guards-on/guards-off differential stays byte-identical.
	guardUops      uint64 // guard-anchor activations committed
	subsumedChecks uint64 // elided checks attributed to a hoisted guard

	// microRerouted marks the current macro-op as translated through the
	// writable microcode RAM: its micro-op numbering may differ from the
	// native expansion the elision proofs were keyed against, so elision
	// is suppressed for it (fail-closed).
	microRerouted bool

	// Live call-string fold (elision lookups only; maintained when
	// Cfg.ElideChecks is set). ctxStack[d-1] holds the k=2 CallCtx after
	// the d-th committed internal CALL; pops restore the caller's fold
	// exactly, which a bare k-limited string could not (the truncated
	// site is gone). Depth keeps counting past the array so deep phases
	// recover once they return below the cap; the stored prefix stays
	// valid. A RET with no matching CALL on the stack means the fold can
	// never be trusted again — ctxLost pins every later lookup to the
	// CtxAny fallback (fail-closed).
	ctxStack [64]CallCtx
	ctxDepth int
	ctxLost  bool

	// Capability event state.
	pendingGen     *core.Capability
	pendingFreePID core.PID

	// firstViolation accumulates the first capability violation detected
	// while processing the current macro-op (see coreCtx.record); reset
	// at the top of processRec.
	firstViolation *core.Violation

	// uc is the decoded-μop translation cache (uopcache.go).
	uc uopCache

	// Superblock translation layer (superblock.go): the per-core block
	// cache, the active replay cursor with its macro index and chain
	// depth, and the block under construction.
	sb      sbCache
	sbCur   *superblock
	sbIdx   int
	sbChain int
	sbBuild sbBuilder

	done    bool
	uopBuf  []isa.Uop
	planBuf []uopPlan
	walkBuf []uint64 // scratch for AliasTable.WalkInto touch lists
	recsRun uint64
}

// Sim runs one guest program on the simulated machine under one protection
// variant.
type Sim struct {
	Cfg   Config
	M     *emu.Machine
	Table *core.Table
	PT    *mem.PageTable
	Ali   *tracker.AliasTable
	MSRs  *core.MSRConfig
	DB    *tracker.RuleDB

	// Microcode is the writable microcode RAM holding field updates;
	// matching macro-ops have their translation re-routed through it
	// (Section I's unobtrusive-field-update mechanism).
	Microcode *decode.Microcode

	// TraceUop, when set, observes every scheduled micro-op with its
	// pipeline timestamps (a debugging probe; adds no simulation cost when
	// nil).
	TraceUop func(t UopTrace)

	// TraceDeref, when set, observes every memory micro-op's dereference
	// tag as computed by the speculative pointer tracker (the PID of the
	// addressing-mode base, with index fallback). It fires for the
	// tracker-based variants only, before any check-injection decision, so
	// the stream reflects the tracker's raw view — the probe the static
	// pointer-flow cross-check (internal/ptrflow) diffs against.
	TraceDeref func(rip uint64, u *isa.Uop, pid core.PID)

	// TraceCommit, when set, observes every committed macro-op record
	// after the pipeline has fully processed it (checks injected,
	// capability events applied, violations recorded) and immediately
	// before the record is recycled. The record must not be retained —
	// copy what you need. This is the probe the lockstep differential
	// harness (internal/lockstep) uses to compare the pipeline's committed
	// architectural stream against a reference emulator running in step.
	TraceCommit func(rec *emu.Rec)

	// elision marks sites with an independently verified safety proof;
	// consulted only when Cfg.ElideChecks is set (see elide.go).
	elision ElisionMap

	// guards attributes elided checks to verified hoisted block guards;
	// consulted only when Cfg.HoistGuards is set (see guard.go).
	guards GuardMap

	// sbEpoch is the elision/guard installation epoch: SetElisionMap and
	// SetGuardMap bump it so superblocks whose baked masks were derived
	// from an older map are invalidated before their next replay
	// (superblock.go).
	sbEpoch uint64

	llc  *cache.LineCache
	dram *mem.DRAM

	cores []*coreCtx
	recQ  []recRing

	Violations  []*core.Violation
	invalidates uint64
	warm        *Result    // snapshot at the warmup boundary
	warmGuards  GuardStats // guard counters at the warmup boundary
}

// New constructs a simulation of prog under cfg with the given number of
// harts (one core per hart). It is a thin wrapper around NewSim that
// panics on construction errors; new code should prefer NewSim.
func New(prog *asm.Program, cfg Config, harts int) *Sim {
	s, err := NewSim(prog, cfg, harts)
	if err != nil {
		panic(err)
	}
	return s
}

// NewSim constructs a simulation of prog under cfg with the given number
// of harts (one core per hart), returning a structured *SimError for
// invalid configurations instead of panicking.
func NewSim(prog *asm.Program, cfg Config, harts int) (*Sim, error) {
	if prog == nil {
		return nil, &SimError{Kind: ErrConfig, Msg: "nil program"}
	}
	if err := cfg.validate(harts); err != nil {
		return nil, err
	}
	opts := emu.Options{Harts: harts, MaxInsts: cfg.MaxInsts}
	if cfg.Variant == decode.VariantASan {
		opts.RedzonePad = 32
		opts.Quarantine = true
	}
	m := emu.New(prog, opts)

	s := &Sim{
		Cfg:       cfg,
		M:         m,
		PT:        mem.NewPageTable(),
		MSRs:      core.NewMSRConfig(0),
		DB:        tracker.NewRuleDB(),
		Microcode: &decode.Microcode{},
		dram:      mem.NewDRAM(cfg.DRAMLatency),
	}
	s.dram.CyclesPerLine = cfg.DRAMCycLine
	s.dram.SetLanes(harts)
	s.Table = core.NewTable(m.Mem)
	s.Table.MaxAllocSize = cfg.MaxAllocSize
	s.Ali = tracker.NewAliasTable(m.Mem, s.PT)
	s.llc = cache.NewLineCache("LLC", cfg.LLCSizeKB*1024, cfg.LLCWays, cfg.LineSize, cfg.LLCLatency)

	// OS kernel configuration: register the heap-management routines'
	// entry/exit points and signatures in the MSRs (Section IV-C).
	regs := []core.RegisteredFn{
		{Kind: core.FnMalloc, Entry: heap.MallocEntry, Exit: heap.MallocExit, ArgReg: isa.RDI, RetReg: isa.RAX},
		{Kind: core.FnCalloc, Entry: heap.CallocEntry, Exit: heap.CallocExit, ArgReg: isa.RDI, RetReg: isa.RAX},
		{Kind: core.FnRealloc, Entry: heap.ReallocEntry, Exit: heap.ReallocExit, ArgReg: isa.RDI, RetReg: isa.RAX},
		{Kind: core.FnFree, Entry: heap.FreeEntry, Exit: heap.FreeExit, ArgReg: isa.RDI},
	}
	for _, r := range regs {
		if err := s.MSRs.Register(r); err != nil {
			return nil, &SimError{Kind: ErrConfig,
				Msg: fmt.Sprintf("registering heap routine %d: %v", r.Kind, err), Err: err}
		}
	}

	// Program load: initialize the shadow capability table from the symbol
	// table and seed the shadow alias table from relocation entries.
	if cfg.Variant.UsesTracker() {
		for _, g := range prog.Globals {
			pid := m.GlobalPIDs[g.Name]
			s.Table.AddGlobal(pid, g.Addr, g.Size, g.ReadOnly)
		}
		for _, r := range prog.Relocs {
			for _, g := range prog.Globals {
				if g.Name == r.Target {
					s.Ali.Set(r.Slot, m.GlobalPIDs[g.Name])
					break
				}
			}
		}
	}

	s.recQ = make([]recRing, harts)
	for i := 0; i < harts; i++ {
		s.cores = append(s.cores, s.newCore(i))
	}
	return s, nil
}

func (s *Sim) newCore(id int) *coreCtx {
	cfg := &s.Cfg
	c := &coreCtx{
		id:         id,
		cfg:        cfg,
		bu:         branch.NewUnit(),
		capCache:   core.NewCapCache(cfg.CapCacheEntries),
		aliasCache: tracker.NewAliasCache(cfg.AliasCacheEntries, cfg.AliasVictim),
		tlb:        mem.NewTLB(cfg.TLBEntries, cfg.TLBWays, s.PT),
		issueBW:    newBandwidth(cfg.IssueWidth),
		commitBW:   newBandwidth(cfg.CommitWidth),
		rob:        newOccupancyRing(cfg.ROBSize),
		fetchRing:  newOccupancyRing(cfg.ROBSize + 64),
		iq:         newIssueWindow(cfg.IQSize),
		lq:         newOccupancyRing(cfg.LQSize),
		sq:         newOccupancyRing(cfg.SQSize),
		macroLeft:  cfg.FetchWidth,
		uopLeft:    cfg.IssueWidth,
	}
	c.eng = tracker.NewEngine(s.DB, s.Ali, tracker.NewAliasPredictor(cfg.PredictorEntries))
	if cfg.EnableChecker {
		c.checker = tracker.NewChecker(s.M.Truth, c.eng.Tags)
	}
	fuCounts := [isa.NumFUClasses]int{
		isa.FUIntALU:     cfg.IntALU,
		isa.FUIntMult:    cfg.IntMult,
		isa.FUFPALU:      cfg.FPALU,
		isa.FUSIMD:       cfg.SIMD,
		isa.FULoad:       cfg.LoadPorts,
		isa.FUStore:      cfg.StorePorts,
		isa.FUBranchUnit: cfg.BranchUnits,
	}
	for f := isa.FUClass(0); f < isa.NumFUClasses; f++ {
		c.fuBW[f] = newBandwidth(fuCounts[f])
	}
	c.hier = cache.Hierarchy{
		Lane: id,
		L1I:  cache.NewLineCache("L1I", cfg.L1ISizeKB*1024, cfg.L1IWays, cfg.LineSize, cfg.L1Latency),
		L1D:  cache.NewLineCache("L1D", cfg.L1DSizeKB*1024, cfg.L1DWays, cfg.LineSize, cfg.L1Latency),
		L2:   cache.NewLineCache("L2", cfg.L2SizeKB*1024, cfg.L2Ways, cfg.LineSize, cfg.L2Latency),
		LLC:  s.llc,
		Ram:  s.dram,
	}
	c.hier.NoPrefetch = cfg.NoPrefetch
	if cfg.ShadowCacheKB > 0 {
		c.hier.Shadow = cache.NewLineCache("shadow", cfg.ShadowCacheKB*1024, 8, cfg.LineSize, 4)
	}
	return c
}

// SetReloadHook installs a pointer-reload observer on every core's tracker
// engine (the Table II pattern-collection probe).
func (s *Sim) SetReloadHook(fn func(pc uint64, pid core.PID)) {
	for _, c := range s.cores {
		c.eng.ReloadHook = fn
	}
}

// nextRec returns the next committed record for the given core, buffering
// records belonging to other cores, or nil when the core's hart is done.
// The per-core buffers are rings: the old reslicing queue (q = q[1:])
// kept the backing array's consumed head reachable, so a long run with
// multi-hart buffering grew memory with the number of records ever
// queued rather than the number simultaneously in flight.
func (s *Sim) nextRec(id int) (*emu.Rec, error) {
	for {
		if rec := s.recQ[id].pop(); rec != nil {
			return rec, nil
		}
		rec, err := s.M.Step()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			return nil, nil
		}
		if rec.Core == id {
			return rec, nil
		}
		s.recQ[rec.Core].push(rec)
	}
}

// Run simulates to completion (or the instruction budget, or the first
// violation in StopOnViolation mode) and returns the aggregated result.
func (s *Sim) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: the context is checked once per
// scheduling round, so a cancellation or deadline expiry stops the
// simulation within one round and surfaces as an ErrCanceled/ErrDeadline
// *SimError carrying a pipeline snapshot. The partial result accumulated
// so far is returned alongside the error.
func (s *Sim) RunContext(ctx context.Context) (*Result, error) {
	for {
		if err := ctx.Err(); err != nil {
			kind := ErrCanceled
			if err == context.DeadlineExceeded {
				kind = ErrDeadline
			}
			return s.result(), &SimError{Kind: kind,
				Msg: "simulation stopped: " + err.Error(), Snapshot: s.snapshot(), Err: err}
		}
		done, err := s.Step(1)
		if err != nil {
			return s.result(), err
		}
		if done {
			return s.result(), nil
		}
	}
}

// checkWatchdog enforces the cycle budget and the per-hart forward-
// progress window, converting livelocks into structured hang errors.
func (s *Sim) checkWatchdog() error {
	cfg := &s.Cfg
	if cfg.MaxCycles > 0 {
		if cur := s.CurrentCycle(); cur > cfg.MaxCycles {
			return &SimError{Kind: ErrCycleLimit,
				Msg:      fmt.Sprintf("simulation exceeded the %d-cycle budget without draining (livelocked guest?)", cfg.MaxCycles),
				Snapshot: s.snapshot()}
		}
	}
	if cfg.StallCycles > 0 {
		for _, c := range s.cores {
			if !c.done && c.fetchAt > c.lastCommit+cfg.StallCycles {
				return &SimError{Kind: ErrHang,
					Msg: fmt.Sprintf("hart %d made no commit for %d cycles (front-end at %d, last commit %d)",
						c.id, c.fetchAt-c.lastCommit, c.fetchAt, c.lastCommit),
					Snapshot: s.snapshot()}
			}
		}
	}
	return nil
}

// Step advances the simulation by up to rounds macro-ops per core,
// returning done=true when every core has drained. With StopOnViolation
// set, the first violation is returned as the error. Step enables
// time-shared execution of multiple processes (see TimeShare).
func (s *Sim) Step(rounds int) (bool, error) {
	for r := 0; r < rounds; r++ {
		progress := false
		for _, c := range s.cores {
			if c.done {
				continue
			}
			rec, err := s.nextRec(c.id)
			if err != nil {
				return false, err
			}
			if rec == nil {
				c.done = true
				continue
			}
			progress = true
			if s.warm == nil && s.Cfg.WarmupInsts > 0 && s.M.TotalInsts() >= s.Cfg.WarmupInsts {
				s.warmGuards = s.rawGuardStats()
				s.warm = s.result()
			}
			v := s.processRec(c, rec)
			if s.TraceCommit != nil {
				s.TraceCommit(rec)
			}
			// processRec fully consumes the record (violations and checker
			// findings copy what they need), so it can go back on the
			// machine's free list for the next Step to reuse.
			s.M.Recycle(rec)
			if v != nil {
				s.Violations = append(s.Violations, v)
				if s.Cfg.StopOnViolation {
					return false, v
				}
			}
		}
		if !progress {
			return true, nil
		}
		if err := s.checkWatchdog(); err != nil {
			return false, err
		}
	}
	return false, nil
}

// Done reports whether every core has drained.
func (s *Sim) Done() bool {
	for _, c := range s.cores {
		if !c.done {
			return false
		}
	}
	return true
}

// CurrentCycle returns the latest commit cycle across cores.
func (s *Sim) CurrentCycle() uint64 {
	var max uint64
	for _, c := range s.cores {
		if c.lastCommit > max {
			max = c.lastCommit
		}
	}
	return max
}

// Result aggregates and returns the statistics so far (callers normally
// use Run's return value; TimeShare needs interim access).
func (s *Sim) Result() *Result { return s.result() }

// AdvanceTo raises every core's timeline floor to cycle (the wall-clock
// position at which the process is rescheduled onto the hardware).
func (s *Sim) AdvanceTo(cycle uint64) {
	for _, c := range s.cores {
		if c.fetchAt < cycle {
			c.fetchAt = cycle
			c.resetSlots()
		}
		if c.lastCommit < cycle {
			c.lastCommit = cycle
		}
	}
}

// OnContextSwitchIn models being scheduled onto the core after another
// process ran: the per-process security structures are cold — the OS
// restored the MSRs (Section IV-C), but the capability cache, alias cache,
// and TLB hold no entries for this address space.
func (s *Sim) OnContextSwitchIn(kernelCost uint64) {
	for _, c := range s.cores {
		c.fetchAt += kernelCost
		c.resetSlots()
		// Cold per-process structures (statistics survive the flush).
		c.capCache.Flush()
		c.aliasCache.Flush()
		c.tlb.Flush()
	}
}

func (s *Sim) result() *Result {
	r := &Result{Variant: s.Cfg.Variant, cfg: s.Cfg, Violations: s.Violations}
	for _, c := range s.cores {
		if c.lastCommit > r.Cycles {
			r.Cycles = c.lastCommit
		}
		r.MacroInsts += c.dec.Stats.MacroOps
		r.NativeUops += c.dec.Stats.NativeUops
		r.InjectedUops += c.dec.Stats.InjectedUops
		r.MSROMMacros += c.dec.Stats.MSROMMacros
		r.SquashCycles += c.squashCycles
		r.Redirects += c.redirects
		r.AliasFlushes += c.aliasFlushes
		r.AllocatorUops += c.allocatorUops
		r.CapMissLat += c.capMissLat
		r.WalkLat += c.walkLat
		r.ChecksRun += c.checksRun
		r.ChecksElided += c.elidedChecks
		r.GatedMem += c.gatedMem

		addStats(&r.CapCache, &c.capCache.Stats)
		addStats(&r.AliasCache, &c.aliasCache.Stats)
		addPred(&r.Predictor, &c.eng.Pred.Stats)
		addEng(&r.Engine, &c.eng.Stats)
		addBranch(&r.Branch, &c.bu.Dir.Stats)
		addStats(&r.L1D, &c.hier.L1D.Stats)
		addStats(&r.L1I, &c.hier.L1I.Stats)
		addStats(&r.L2, &c.hier.L2.Stats)
		if c.hier.Shadow != nil {
			addStats(&r.ShadowC, &c.hier.Shadow.Stats)
		}
		addTLB(&r.TLB, &c.tlb.Stats)
		if c.checker != nil {
			addChecker(&r.Checker, &c.checker.Stats)
			r.Mismatches = append(r.Mismatches, c.checker.Log...)
		}
	}
	// With multiple cores the squash percentage is relative to aggregate
	// core-cycles.
	if n := uint64(len(s.cores)); n > 1 {
		r.SquashCycles /= n
	}
	r.LLC = s.llc.Stats
	r.DRAMBytes = s.dram.TotalBytes()
	r.UserRSS = s.M.Mem.UserRSS()
	r.ShadowRSS = s.M.Mem.ShadowRSS()
	r.CapTable = s.Table.Stats
	r.CapEntries = s.Table.Len()
	r.AliasEntry = s.Ali.Entries()
	r.AliasWalks = s.Ali.Walks
	r.Invalidates = s.invalidates
	if s.warm != nil {
		subtractWarm(r, s.warm)
	}
	return r
}

// subtractWarm removes the warmup prefix's counters from the totals.
// End-of-run state metrics (RSS, table sizes, violations) stay absolute.
//
// Checker counters intentionally stay absolute too: the hardware checker
// co-processor validates the whole run offline against ground truth, and
// its mismatch log is a correctness artifact — windowing it to the
// post-warmup suffix would hide mismatches that occurred during warmup.
func subtractWarm(r, w *Result) {
	r.Cycles -= minU64(w.Cycles, r.Cycles)
	r.MacroInsts -= w.MacroInsts
	r.NativeUops -= w.NativeUops
	r.InjectedUops -= w.InjectedUops
	r.SquashCycles -= minU64(w.SquashCycles, r.SquashCycles)
	r.Redirects -= w.Redirects
	r.AliasFlushes -= w.AliasFlushes
	r.MSROMMacros -= w.MSROMMacros
	r.AllocatorUops -= w.AllocatorUops
	r.CapMissLat -= w.CapMissLat
	r.WalkLat -= w.WalkLat
	r.ChecksRun -= w.ChecksRun
	r.ChecksElided -= w.ChecksElided
	r.GatedMem -= w.GatedMem
	r.DRAMBytes -= w.DRAMBytes
	r.AliasWalks -= w.AliasWalks
	subStats(&r.CapCache, &w.CapCache)
	subStats(&r.AliasCache, &w.AliasCache)
	subStats(&r.L1D, &w.L1D)
	subStats(&r.L1I, &w.L1I)
	subStats(&r.L2, &w.L2)
	subStats(&r.LLC, &w.LLC)
	subStats(&r.ShadowC, &w.ShadowC)
	subTLB(&r.TLB, &w.TLB)
	subPred(&r.Predictor, &w.Predictor)
	subBranch(&r.Branch, &w.Branch)
	subEng(&r.Engine, &w.Engine)
}

func subStats(dst, w *cache.Stats) {
	dst.Hits -= w.Hits
	dst.Misses -= w.Misses
	dst.Evictions -= w.Evictions
	dst.Writebacks -= w.Writebacks
	dst.Invals -= w.Invals
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func addStats(dst *cache.Stats, src *cache.Stats) {
	dst.Hits += src.Hits
	dst.Misses += src.Misses
	dst.Evictions += src.Evictions
	dst.Writebacks += src.Writebacks
	dst.Invals += src.Invals
}

func addPred(dst *tracker.PredictorStats, src *tracker.PredictorStats) {
	dst.Lookups += src.Lookups
	dst.Predictions += src.Predictions
	dst.Correct += src.Correct
	dst.PNA0 += src.PNA0
	dst.P0AN += src.P0AN
	dst.PMAN += src.PMAN
	dst.Blacklisted += src.Blacklisted
}

func subPred(dst *tracker.PredictorStats, w *tracker.PredictorStats) {
	dst.Lookups -= w.Lookups
	dst.Predictions -= w.Predictions
	dst.Correct -= w.Correct
	dst.PNA0 -= w.PNA0
	dst.P0AN -= w.P0AN
	dst.PMAN -= w.PMAN
	dst.Blacklisted -= w.Blacklisted
}

func addEng(dst *tracker.EngineStats, src *tracker.EngineStats) {
	dst.UopsSeen += src.UopsSeen
	dst.RulesApplied += src.RulesApplied
	dst.SpilledAliases += src.SpilledAliases
	dst.AliasClears += src.AliasClears
	dst.PointerReloads += src.PointerReloads
}

func subEng(dst *tracker.EngineStats, w *tracker.EngineStats) {
	dst.UopsSeen -= w.UopsSeen
	dst.RulesApplied -= w.RulesApplied
	dst.SpilledAliases -= w.SpilledAliases
	dst.AliasClears -= w.AliasClears
	dst.PointerReloads -= w.PointerReloads
}

// addBranch/subBranch and addTLB/subTLB keep result() and subtractWarm
// structurally symmetric: both sides go through the same helper pair, so
// adding a counter to branch.Stats or mem.TLBStats forces the change in
// exactly one aggregation and one subtraction site instead of drifting.
func addBranch(dst *branch.Stats, src *branch.Stats) {
	dst.Lookups += src.Lookups
	dst.DirMispred += src.DirMispred
	dst.TargMispred += src.TargMispred
}

func subBranch(dst *branch.Stats, w *branch.Stats) {
	dst.Lookups -= w.Lookups
	dst.DirMispred -= w.DirMispred
	dst.TargMispred -= w.TargMispred
}

func addTLB(dst *mem.TLBStats, src *mem.TLBStats) {
	dst.Hits += src.Hits
	dst.Misses += src.Misses
}

func subTLB(dst *mem.TLBStats, w *mem.TLBStats) {
	dst.Hits -= w.Hits
	dst.Misses -= w.Misses
}

func addChecker(dst *tracker.CheckerStats, src *tracker.CheckerStats) {
	dst.Validations += src.Validations
	dst.Matches += src.Matches
	dst.Mismatches += src.Mismatches
}
