package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"chex86/internal/decode"
	"chex86/internal/isa"
	"chex86/internal/workload"
)

// marshalResult renders a Result for byte-level comparison. json.Marshal
// of a struct is field-declaration-ordered and deterministic, so two
// byte-identical encodings mean every exported counter, cache statistic,
// and violation matches exactly.
func marshalResult(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

func runWorkloadWithCache(t *testing.T, p *workload.Profile, v decode.Variant, noCache bool) (*Sim, *Result) {
	t.Helper()
	prog, err := p.Build(0.1)
	if err != nil {
		t.Fatalf("%s: build: %v", p.Name, err)
	}
	cfg := DefaultConfig()
	cfg.Variant = v
	cfg.WarmupInsts = p.SetupInsts()
	cfg.MaxInsts = 12_000 + cfg.WarmupInsts
	cfg.NoUopCache = noCache
	harts := 1
	if p.Threads > 0 {
		harts = p.Threads
	}
	sim, err := NewSim(prog, cfg, harts)
	if err != nil {
		t.Fatalf("%s/%v: NewSim: %v", p.Name, v, err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("%s/%v: run: %v", p.Name, v, err)
	}
	return sim, res
}

// TestUopCacheDifferentialAllWorkloads is the tentpole's differential
// gate: across every catalog workload and every protection variant, the
// simulation Result must be byte-identical with the μop translation cache
// enabled (the default) and disabled.
func TestUopCacheDifferentialAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload×variant sweep")
	}
	for _, p := range workload.Catalog() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for v := decode.Variant(0); v < decode.NumVariants; v++ {
				simOn, on := runWorkloadWithCache(t, p, v, false)
				_, off := runWorkloadWithCache(t, p, v, true)
				jOn, jOff := marshalResult(t, on), marshalResult(t, off)
				if !bytes.Equal(jOn, jOff) {
					t.Errorf("%s/%v: Result diverges with μop cache on vs off:\non:  %s\noff: %s",
						p.Name, v, jOn, jOff)
				}
				if st := simOn.UopCacheStats(); st.Hits == 0 {
					t.Errorf("%s/%v: μop cache never hit (stats %+v) — the differential is vacuous", p.Name, v, st)
				}
			}
		})
	}
}

// TestUopCacheMidStreamMicrocodeUpdate exercises generation-based
// invalidation: a field update is installed into the writable microcode
// RAM mid-stream (after translations are already cached), later removed,
// and the run must still be byte-identical to a cache-disabled run with
// the same update schedule.
func TestUopCacheMidStreamMicrocodeUpdate(t *testing.T) {
	p := workload.ByName("mcf")
	if p == nil {
		t.Fatal("mcf workload missing from catalog")
	}

	runOne := func(noCache bool) (*Sim, *Result) {
		prog, err := p.Build(0.1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MaxInsts = 20_000
		cfg.NoUopCache = noCache
		sim, err := NewSim(prog, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		step := func(rounds int) {
			if _, err := sim.Step(rounds); err != nil {
				t.Fatal(err)
			}
		}
		// Phase 1: populate the cache with native translations.
		step(3000)
		// Phase 2: the MSRAM changes — every load translation is now
		// rerouted, so cached native translations must be invalidated.
		sim.Microcode.Install(decode.LoadFence("midstream", func(rip uint64) bool { return true }))
		step(3000)
		// Phase 3: the update is removed; rerouted cached translations
		// must be invalidated back to native ones.
		sim.Microcode.Remove("midstream")
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return sim, sim.Result()
	}

	simOn, on := runOne(false)
	_, off := runOne(true)
	jOn, jOff := marshalResult(t, on), marshalResult(t, off)
	if !bytes.Equal(jOn, jOff) {
		t.Errorf("mid-stream microcode update diverges with μop cache on vs off:\non:  %s\noff: %s", jOn, jOff)
	}
	st := simOn.UopCacheStats()
	if st.Hits == 0 || st.Invalidations == 0 {
		t.Errorf("mid-stream case did not exercise the cache: stats %+v", st)
	}
	if on.MSROMMacros == 0 {
		t.Error("field update never rerouted a translation — the invalidation test is vacuous")
	}
}

// TestUopCacheGenerationInvalidation checks the cache primitive directly:
// a generation change must miss and evict, and a conflict-mapped address
// must evict the previous occupant.
func TestUopCacheGenerationInvalidation(t *testing.T) {
	var uc uopCache
	uops := []isa.Uop{{Type: isa.UNop}}
	uc.insert(0x400000, 1, uops, 1, false)
	if e := uc.lookup(0x400000, 1); e == nil {
		t.Fatal("expected hit at installed generation")
	}
	if e := uc.lookup(0x400000, 2); e != nil {
		t.Fatal("expected miss after generation bump")
	}
	if uc.invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", uc.invalidations)
	}
	// Same slot, different address (conflict): the tag check must reject.
	conflict := uint64(0x400000) + uopCacheSlots*4
	uc.insert(conflict, 2, uops, 1, false)
	if e := uc.lookup(0x400000, 2); e != nil {
		t.Fatal("conflict-evicted address must miss")
	}
	if e := uc.lookup(conflict, 2); e == nil {
		t.Fatal("conflicting occupant must hit")
	}
}

// TestUopCacheInsertCopies pins the immutability contract: mutating the
// caller's slice after insert must not alter the cached translation.
func TestUopCacheInsertCopies(t *testing.T) {
	var uc uopCache
	scratch := []isa.Uop{{Type: isa.ULoad, EA: 1}}
	uc.insert(0x400000, 0, scratch, 1, false)
	scratch[0].EA = 0xDEAD
	e := uc.lookup(0x400000, 0)
	if e == nil {
		t.Fatal("expected hit")
	}
	if e.uops[0].EA != 1 {
		t.Fatalf("cached translation aliased the caller's scratch: EA = %#x", e.uops[0].EA)
	}
}

// TestCanonicalJSONIgnoresNoUopCache pins the campaign-cache-key
// contract: the μop cache cannot change result bytes, so toggling it must
// not change CanonicalJSON — otherwise every content-addressed campaign
// cache entry would be spuriously invalidated.
func TestCanonicalJSONIgnoresNoUopCache(t *testing.T) {
	a := DefaultConfig()
	b := DefaultConfig()
	b.NoUopCache = true
	ja, jb := a.CanonicalJSON(), b.CanonicalJSON()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("NoUopCache leaked into CanonicalJSON:\n%s\n%s", ja, jb)
	}
}

// TestElideDiffWithUopCache runs a tracked-variant simulation with both
// elision and the μop cache enabled, ensuring the two mechanisms compose
// (rerouted macro-ops stay non-elided even when replayed from the cache).
func TestElideDiffWithUopCache(t *testing.T) {
	p := workload.ByName("mcf")
	if p == nil {
		t.Fatal("mcf workload missing from catalog")
	}
	for _, noCache := range []bool{false, true} {
		prog, err := p.Build(0.1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MaxInsts = 12_000
		cfg.ElideChecks = true
		cfg.NoUopCache = noCache
		sim, err := NewSim(prog, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		sim.SetElisionMap(ElisionMap{})
		if _, err := sim.Run(); err != nil {
			t.Fatalf("noCache=%v: %v", noCache, err)
		}
	}
}

func ExampleSim_UopCacheStats() {
	p := workload.ByName("mcf")
	prog, _ := p.Build(0.1)
	cfg := DefaultConfig()
	cfg.MaxInsts = 5000
	// Superblock replay bypasses per-instruction μop-cache probes; turn it
	// off so the hit rate reflects the cache this example demonstrates.
	cfg.NoSuperblocks = true
	sim, _ := NewSim(prog, cfg, 1)
	_, _ = sim.Run()
	st := sim.UopCacheStats()
	fmt.Println(st.Hits > 0 && st.HitRate() > 0.9)
	// Output: true
}
