package pipeline

import (
	"testing"

	"chex86/internal/asm"
	"chex86/internal/decode"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/workload"
)

// steadyLoopProgram builds a non-terminating, allocation-quiet guest: one
// heap buffer allocated up front, then an infinite loop of bounded loads,
// stores, and ALU work over it. After warmup nothing in the simulator
// should allocate while running it — the steady-state contract the
// AllocsPerRun tests below assert.
func steadyLoopProgram() *asm.Program {
	b := asm.NewBuilder()
	const words = 64
	b.MovRI(isa.RDI, words*8)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.R12, isa.RAX)
	b.MovRI(isa.RCX, 0)
	b.Label("loop")
	b.StoreIdx(isa.R12, isa.RCX, 8, 0, isa.RCX)
	b.LoadIdx(isa.RBX, isa.R12, isa.RCX, 8, 0)
	b.AddRR(isa.RBX, isa.RCX)
	b.AddRI(isa.RCX, 1)
	b.Alu(isa.AND, isa.RegOp(isa.RCX), isa.ImmOp(words-1))
	b.Jmp("loop")
	return b.MustBuild()
}

func steadySim(tb testing.TB, v decode.Variant) *Sim {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.Variant = v
	sim, err := NewSim(steadyLoopProgram(), cfg, 1)
	if err != nil {
		tb.Fatal(err)
	}
	// Warm up past allocator interception, first-touch page materialization,
	// and structure growth so only the steady state is measured.
	if _, err := sim.Step(5000); err != nil {
		tb.Fatal(err)
	}
	return sim
}

// TestProcessRecSteadyStateAllocs asserts the tentpole's zero-allocation
// contract on the insecure baseline: one full Sim.Step — emulator step,
// record pooling, decode (μop cache hit), instrumentation, and timing —
// must not allocate in steady state.
func TestProcessRecSteadyStateAllocs(t *testing.T) {
	sim := steadySim(t, decode.VariantInsecure)
	n := testing.AllocsPerRun(2000, func() {
		if _, err := sim.Step(1); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("insecure steady-state Sim.Step allocates %.3f objects/instruction, want 0", n)
	}
}

// TestProcessRecTrackedSteadyStateAllocs bounds the tracked
// (MicrocodePrediction) variant. Its hot path shares the same pooled
// machinery; the tracker's own structures may still grow occasionally
// (map rehashing amortizes), so the bound is near-zero rather than zero.
func TestProcessRecTrackedSteadyStateAllocs(t *testing.T) {
	sim := steadySim(t, decode.VariantMicrocodePrediction)
	n := testing.AllocsPerRun(2000, func() {
		if _, err := sim.Step(1); err != nil {
			t.Fatal(err)
		}
	})
	if n > 0.05 {
		t.Fatalf("tracked steady-state Sim.Step allocates %.3f objects/instruction, want ~0", n)
	}
}

// BenchmarkHotLoop measures host throughput of the committed-instruction
// hot path per protection variant on a catalog workload, with allocation
// accounting. The committed baseline for these numbers lives in
// bench_baseline.json; cmd/chexperf gates CI on it.
func BenchmarkHotLoop(b *testing.B) {
	p := workload.ByName("mcf")
	if p == nil {
		b.Fatal("mcf workload missing from catalog")
	}
	prog, err := p.Build(0.25)
	if err != nil {
		b.Fatal(err)
	}
	const insts = 100_000
	for v := decode.Variant(0); v < decode.NumVariants; v++ {
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Variant = v
				cfg.MaxInsts = insts
				sim, err := NewSim(prog, cfg, 1)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.MacroInsts)*float64(b.N)/b.Elapsed().Seconds()/1e3, "Kinst/s")
			}
		})
	}
}

// BenchmarkHotLoopNoCache is the cache-off control for BenchmarkHotLoop's
// default variant: the difference between the two is the μop translation
// cache's contribution.
func BenchmarkHotLoopNoCache(b *testing.B) {
	p := workload.ByName("mcf")
	if p == nil {
		b.Fatal("mcf workload missing from catalog")
	}
	prog, err := p.Build(0.25)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.MaxInsts = 100_000
		cfg.NoUopCache = true
		sim, err := NewSim(prog, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
