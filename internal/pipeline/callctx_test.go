package pipeline

import (
	"fmt"
	"testing"

	"chex86/internal/asm"
	"chex86/internal/emu"
	"chex86/internal/isa"
)

func TestCallCtxPushCollapse(t *testing.T) {
	c := CtxRoot.Push(0x100).Push(0x200)
	if c != (CallCtx{S0: 0x100, S1: 0x200}) {
		t.Fatalf("push sequence = %v", c)
	}
	// Direct recursion: pushing the top site again is the identity.
	if got := c.Push(0x200); got != c {
		t.Fatalf("recursive push changed the context: %v", got)
	}
	// A third distinct site drops the oldest.
	if got := c.Push(0x300); got != (CallCtx{S0: 0x200, S1: 0x300}) {
		t.Fatalf("k-limit shift = %v", got)
	}
}

func TestCallCtxPushKAndLimitAgree(t *testing.T) {
	// Folding at full depth then truncating must equal folding at the
	// shallower k directly — the runtime relies on this to probe maps
	// built by a shallower analysis.
	sites := []uint64{0x10, 0x20, 0x20, 0x30, 0x10}
	for _, k := range []int{0, 1, 2} {
		full, atK := CtxRoot, CtxRoot
		for _, s := range sites {
			full = full.Push(s)
			atK = atK.PushK(s, k)
			if got := full.Limit(k); got != atK {
				t.Fatalf("k=%d: Limit(%v) = %v, PushK chain = %v", k, full, got, atK)
			}
		}
	}
	if got := CtxAny.Limit(1); !got.IsAny() {
		t.Fatalf("the sentinel must be its own image at every k, got %v", got)
	}
}

func TestCallCtxStringParseRoundTrip(t *testing.T) {
	cases := []CallCtx{
		CtxRoot,
		CtxAny,
		{S1: 0x401020},
		{S0: 0x401020, S1: 0x401080},
	}
	for _, c := range cases {
		got, err := ParseCallCtx(c.String())
		if err != nil || got != c {
			t.Fatalf("round trip %v -> %q -> %v, err=%v", c, c.String(), got, err)
		}
	}
	for _, bad := range []string{"", "0x0", "0x1>0x2>0x3", "0x1>", "nonsense", "0xzz"} {
		if c, err := ParseCallCtx(bad); err == nil {
			t.Fatalf("ParseCallCtx(%q) = %v, want error", bad, c)
		}
	}
}

func TestCallCtxLessOrdersRootFirstAnyLast(t *testing.T) {
	ordered := []CallCtx{
		CtxRoot,
		{S1: 0x10},
		{S1: 0x20},
		{S0: 0x10, S1: 0x20},
		{S0: 0x20, S1: 0x10},
		CtxAny,
	}
	for i := range ordered {
		for j := range ordered {
			if got := ordered[i].Less(ordered[j]); got != (i < j) {
				t.Fatalf("Less(%v, %v) = %v, want %v", ordered[i], ordered[j], got, i < j)
			}
		}
	}
}

// ctxFoldSim builds a minimal simulator whose program has one internal
// callee, for driving ctxRetire by hand.
func ctxFoldSim(t *testing.T) (*Sim, uint64) {
	t.Helper()
	b := asm.NewBuilder()
	b.Call("fn")
	b.Hlt()
	b.Label("fn")
	b.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(prog, DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return sim, prog.MustLookup("fn")
}

func TestCtxRetireFold(t *testing.T) {
	s, fn := ctxFoldSim(t)
	c := &coreCtx{}
	call := func(site uint64, target uint64, ev emu.EventKind) {
		c.ctxRetire(s, &emu.Rec{Inst: &isa.Inst{Op: isa.CALL, Addr: site}, Target: target, Event: ev})
	}
	ret := func(ev emu.EventKind) {
		c.ctxRetire(s, &emu.Rec{Inst: &isa.Inst{Op: isa.RET}, Event: ev})
	}

	if got := c.liveCtx(); !got.IsRoot() {
		t.Fatalf("initial context = %v, want root", got)
	}
	// Internal call pushes.
	call(0x100, fn, emu.EvNone)
	if got := c.liveCtx(); got != (CallCtx{S1: 0x100}) {
		t.Fatalf("after internal call: %v", got)
	}
	// External call (target outside text) is summarized, not descended.
	call(0x104, 0xdead0000, emu.EvNone)
	if got := c.liveCtx(); got != (CallCtx{S1: 0x100}) {
		t.Fatalf("external call must not push: %v", got)
	}
	// Intercepted allocator call carries an event: no push, and the
	// emulator's synthetic allocator-exit RET carries one too: no pop.
	call(0x108, fn, emu.EvAllocEnter)
	ret(emu.EvAllocExit)
	if got := c.liveCtx(); got != (CallCtx{S1: 0x100}) {
		t.Fatalf("allocator call/ret must not move the fold: %v", got)
	}
	// Genuine RET pops back to root.
	ret(emu.EvNone)
	if got := c.liveCtx(); !got.IsRoot() {
		t.Fatalf("after matched ret: %v", got)
	}
	// Popping an empty stack loses the pairing permanently.
	ret(emu.EvNone)
	if got := c.liveCtx(); !got.IsAny() {
		t.Fatalf("unmatched ret must poison the fold: %v", got)
	}
	call(0x100, fn, emu.EvNone)
	if got := c.liveCtx(); !got.IsAny() {
		t.Fatalf("the fold must stay lost after poisoning: %v", got)
	}
}

func TestCtxRetireDeepStackFallsBackToAny(t *testing.T) {
	s, fn := ctxFoldSim(t)
	c := &coreCtx{}
	depth := len(c.ctxStack) + 3
	for i := 0; i < depth; i++ {
		c.ctxRetire(s, &emu.Rec{Inst: &isa.Inst{Op: isa.CALL, Addr: 0x1000 + uint64(4*i)}, Target: fn})
	}
	if got := c.liveCtx(); !got.IsAny() {
		t.Fatalf("beyond the fold buffer the context must be ⊤, got %v", got)
	}
	// Returning back inside the recorded window re-names the context —
	// the overflow is depth-bounded, not permanent.
	for i := 0; i < 3; i++ {
		c.ctxRetire(s, &emu.Rec{Inst: &isa.Inst{Op: isa.RET}})
	}
	want := CallCtx{S0: 0x1000 + 4*uint64(len(c.ctxStack)-2), S1: 0x1000 + 4*uint64(len(c.ctxStack)-1)}
	if got := c.liveCtx(); got != want {
		t.Fatalf("after unwinding into the window: %v, want %v", got, want)
	}
}

func ExampleCallCtx_String() {
	fmt.Println(CtxRoot)
	fmt.Println(CallCtx{S1: 0x401020})
	fmt.Println(CallCtx{S0: 0x401020, S1: 0x401080})
	fmt.Println(CtxAny)
	// Output:
	// root
	// 0x401020
	// 0x401020>0x401080
	// any
}
