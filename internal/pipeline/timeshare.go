package pipeline

// TimeShareResult reports a time-shared run of multiple processes on the
// same simulated hardware.
type TimeShareResult struct {
	PerProcess []*Result
	// Switches is the number of context switches performed.
	Switches uint64
	// WallCycles is the wall-clock span of the whole schedule.
	WallCycles uint64
}

// TimeShare runs the given processes round-robin on the simulated core,
// sliceRecs committed macro-ops per quantum, charging kernelCost cycles
// per context switch and flushing the per-process security structures
// (capability cache, alias cache, TLB) on every switch-in — the paper's
// Section IV-C context-switch semantics: the MSRs are saved and restored
// by the OS, the shadow tables are per-process, and the in-processor
// caches hold no other process's metadata.
func TimeShare(sims []*Sim, sliceRecs int, kernelCost uint64) (*TimeShareResult, error) {
	out := &TimeShareResult{}
	var clock uint64
	remaining := len(sims)
	// The first process starts warm (it was loaded, not switched to).
	first := true
	for remaining > 0 {
		for _, s := range sims {
			if s.Done() {
				continue
			}
			s.AdvanceTo(clock)
			if !first {
				s.OnContextSwitchIn(kernelCost)
				out.Switches++
			}
			first = false
			done, err := s.Step(sliceRecs)
			if err != nil {
				return out, err
			}
			if c := s.CurrentCycle(); c > clock {
				clock = c
			}
			if done {
				remaining--
			}
		}
	}
	out.WallCycles = clock
	for _, s := range sims {
		out.PerProcess = append(out.PerProcess, s.Result())
	}
	return out, nil
}
