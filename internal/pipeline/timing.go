package pipeline

import (
	"chex86/internal/isa"
)

// resetSlots restores full fetch bandwidth for the current fetch cycle.
func (c *coreCtx) resetSlots() {
	c.macroLeft = c.cfg.FetchWidth
	c.uopLeft = c.cfg.IssueWidth
}

// advanceFetch moves the front-end to the next fetch cycle.
func (c *coreCtx) advanceFetch() {
	c.fetchAt++
	c.resetSlots()
}

// beginMacro charges fetch timing for one macro-op: pending redirect
// stalls, I-cache line transitions, and fetch-slot consumption (macroCost
// slots; MSROM-sourced expansions consume the whole fetch cycle).
func (c *coreCtx) beginMacro(cfg *Config, addr uint64, macroCost int, msrom bool) {
	if c.blockedUntil > c.fetchAt {
		c.fetchAt = c.blockedUntil
		c.resetSlots()
	}
	line := addr &^ (cfg.LineSize - 1)
	if line != c.curLine {
		lat := c.hier.AccessInstAt(addr, c.fetchAt)
		c.curLine = line
		if lat > cfg.L1Latency {
			c.fetchAt += lat - cfg.L1Latency
			c.resetSlots()
		}
	}
	if c.macroLeft < macroCost || c.uopLeft <= 0 {
		c.advanceFetch()
	}
	c.macroLeft -= macroCost
	if c.macroLeft < 0 || msrom {
		c.macroLeft = 0
	}
}

// redirect schedules a front-end redirect (branch misprediction or P0AN
// alias-misprediction flush): fetch resumes after the resolving micro-op
// completes plus the pipeline refill penalty.
func (c *coreCtx) redirect(cfg *Config, resolveCycle uint64) {
	target := resolveCycle + cfg.RedirectCost
	if target > c.blockedUntil {
		// Squash accounting (Figure 8 bottom): count the pipeline-refill
		// window. Wrong-path fetch that overlaps backend-bound stalls (the
		// front-end would have been idle anyway) is not counted, so the
		// metric tracks recovery work as the paper's does.
		start := c.fetchAt
		if resolveCycle > cfg.FrontendDepth && resolveCycle-cfg.FrontendDepth > start {
			start = resolveCycle - cfg.FrontendDepth
		}
		if target > start {
			c.squashCycles += target - start
		}
		c.blockedUntil = target
	}
	c.redirects++
}

// schedule runs one macro-op's planned micro-ops through the one-pass
// out-of-order timing model, returning the completion cycle of the
// macro-op's branch micro-op (0 if none) and of any flush-requesting load
// (with its extra walk latency).
func (c *coreCtx) schedule(cfg *Config, plans []uopPlan, trace func(UopTrace), rip uint64) (brDone, flushDone, flushLat uint64) {
	for i := range plans {
		p := &plans[i]
		u := &p.u

		// Fetch slot for this micro-op.
		if c.uopLeft <= 0 {
			c.advanceFetch()
		}
		want := c.fetchAt
		if gated := c.fetchRing.allocate(want); gated > want {
			// The fetch buffer is full: fetch stalls until older micro-ops
			// drain (bounded front-end/back-end decoupling).
			c.fetchAt = gated
			c.resetSlots()
		}
		fetch := c.fetchAt
		c.uopLeft--

		// Dispatch into the ROB (and IQ / LQ / SQ).
		dispatch := fetch + cfg.FrontendDepth
		dispatch = c.rob.allocate(dispatch)

		var done uint64
		if u.ZeroIdiom {
			// Squashed at the instruction queue before dispatch to the
			// reservation stations: never issues.
			done = dispatch
		} else {
			if b := c.iq.bound(); b > dispatch {
				dispatch = b
			}
			isLoad := u.Type == isa.ULoad
			isStore := u.Type == isa.UStore
			if isLoad {
				dispatch = c.lq.allocate(dispatch)
			}
			if isStore {
				dispatch = c.sq.allocate(dispatch)
			}

			// Wakeup: all register sources ready.
			ready := dispatch + 1
			for _, r := range [4]isa.Reg{u.Src1, u.Src2, u.Mem.Base, u.Mem.Index} {
				if r.Valid() && r < isa.NumRegs && c.regReady[r] > ready {
					ready = c.regReady[r]
				}
			}

			issue := c.issueBW.reserve(ready)
			issue = c.fuBW[u.FU()].reserve(issue)
			c.iq.add(issue)

			switch {
			case isLoad:
				lat := uint64(0)
				if _, hit := c.tlb.Lookup(u.EA); !hit {
					lat += cfg.TLBWalkCost
				}
				lat += c.hier.AccessDataAt(u.EA, false, issue)
				done = issue + lat + p.extraLat
			case isStore:
				done = issue + 1 + p.extraLat
			default:
				done = issue + uint64(u.Latency()) + p.extraLat
			}

			if u.WritesReg() && u.Dst < isa.NumRegs {
				c.regReady[u.Dst] = done
			}
			switch u.Type {
			case isa.UBranch, isa.UJump:
				brDone = done
			}
			if p.flush {
				flushDone = done
				flushLat = p.flushLat
			}

			// In-order commit.
			commit := maxU64(done+1, c.lastCommit)
			commit = c.commitBW.reserve(commit)
			c.lastCommit = commit
			c.rob.release(commit)
			c.fetchRing.release(commit)
			if isLoad {
				c.lq.release(commit)
			}
			if isStore {
				c.sq.release(commit)
				// The store drains to the D-cache from the store queue at
				// commit (write-buffer; does not stall retirement).
				c.tlb.Lookup(u.EA)
				c.hier.AccessDataAt(u.EA, true, commit)
			}
			if trace != nil {
				trace(UopTrace{Core: c.id, RIP: rip, Uop: u.String(),
					Fetch: fetch, Dispatch: dispatch, Issue: issue, Done: done, Commit: commit})
			}
			continue
		}

		// Zero-idiom commit path.
		commit := maxU64(done+1, c.lastCommit)
		commit = c.commitBW.reserve(commit)
		c.lastCommit = commit
		c.rob.release(commit)
		c.fetchRing.release(commit)
		if trace != nil {
			trace(UopTrace{Core: c.id, RIP: rip, Uop: u.String() + " (zero-idiom)",
				Fetch: fetch, Dispatch: dispatch, Done: done, Commit: commit})
		}
	}
	return brDone, flushDone, flushLat
}
