package pipeline

// This file is the pipeline's fault-injection surface: deterministic
// accessors internal/faultinject uses to perturb the per-core security
// structures mid-run. The shadow capability table and alias table are
// reachable directly through the exported Sim fields; the per-core
// capability cache, alias cache, and pointer-reload predictor are private
// to the core, so campaigns go through these hooks.

// Harts returns the number of simulated harts (cores).
func (s *Sim) Harts() int { return len(s.cores) }

// InjectCapCacheDrop drops the n-th live line of the given core's
// capability cache (performance-only: the shadow table remains
// authoritative). It returns the dropped PID key and whether a live line
// existed.
func (s *Sim) InjectCapCacheDrop(core, n int) (uint64, bool) {
	if core < 0 || core >= len(s.cores) {
		return 0, false
	}
	return s.cores[core].capCache.DropNth(n)
}

// InjectAliasCacheDrop drops the n-th live line of the given core's alias
// cache (performance-only: the shadow alias table remains authoritative).
func (s *Sim) InjectAliasCacheDrop(core, n int) (uint64, bool) {
	if core < 0 || core >= len(s.cores) {
		return 0, false
	}
	return s.cores[core].aliasCache.DropNth(n)
}

// InjectPredictorCorrupt corrupts the n-th trained entry of the given
// core's pointer-reload predictor (performance-only: predictions are
// advisory; execute-time resolution always propagates the actual PID).
func (s *Sim) InjectPredictorCorrupt(core, n int) (int, bool) {
	if core < 0 || core >= len(s.cores) {
		return 0, false
	}
	return s.cores[core].eng.Pred.CorruptNth(n)
}
