package pipeline

import (
	"chex86/internal/branch"
	"chex86/internal/decode"
	"chex86/internal/emu"
	"chex86/internal/isa"
)

// This file implements the superblock translation layer on top of the
// per-core decoded-μop cache (uopcache.go): straight-line runs of
// committed macro-ops ending at a branch are grouped into superblocks —
// the simulator's analogue of QEMU's chained translation blocks — and
// replayed through the timing model without the per-instruction dispatch
// work (translation-cache probes, branch-kind classification, context
// policy and elision/guard map lookups) that the single-op path performs
// for every committed record.
//
// A superblock is keyed by its entry address and validated against the
// microcode-RAM generation, the elision/guard installation epoch, and —
// when check elision is live — the call-string context it was built
// under. The per-uop instrumentation decisions that are static for a
// fixed (address, macro index, context) triple are derived once at build
// time and baked into the block: the context-policy coverage bit, the
// elision-map hit mask, the guard-subsumption mask, and the hoisted
// guard-anchor bit. Replay consumes the baked facts; everything dynamic
// (pointer-tracker state, alias prediction, effective addresses, branch
// outcomes) still comes from the committed record, so a replayed
// instruction takes exactly the code path the single-op path takes with
// the map probes' results precomputed. Byte-identity of Result JSON and
// violation reports with superblocks on vs off is the contract
// (TestSuperblockDifferential), mirroring the μop-cache discipline.
//
// Fail-closed fallback: any record that breaks a replay assumption — an
// allocator event, a microcode generation or map-epoch bump (MSRAM
// install/remove mid-stream), a context-fold transition changing the
// live elision key, or an address mismatch — drops the cursor and takes
// the single-op path for that record. Blocks never contain MSRAM-
// rerouted macro-ops (their μop numbering may differ from what proofs
// and masks were keyed against), and only the tracker-free and
// microcode-injection variants engage replay: the software-
// instrumentation variants (binary translation, ASan) derive their
// fetched stream per dynamic instance, and Watchdog's shadow loads are
// rebuilt per record, so baking buys them nothing.

// sbSlots is the per-core superblock-cache capacity (direct-mapped).
const sbSlots = 1 << 10

// sbMaxMacros bounds a block's length so pathological straight-line runs
// cannot grow unbounded fused streams; a run longer than the cap is
// split into consecutive blocks that chain through the cache.
const sbMaxMacros = 32

// sbDefaultChainLen is the default bound on consecutive successor-link
// follows before replay forces a fresh cache lookup.
const sbDefaultChainLen = 16

// sbMacro is one macro-op's baked translation inside a superblock.
type sbMacro struct {
	addr uint64

	// uops is the macro-op's expansion, a sub-slice of the block's fused
	// stream (immutable after install, like μop-cache entries).
	uops []isa.Uop

	// nativeUops replays Decoder.Stats.NativeUops on each visit, exactly
	// as a μop-cache hit would.
	nativeUops uint64

	// Precomputed branch classification (the per-record switch in the
	// single-op path).
	isBranch bool
	brKind   branch.Kind

	// covered bakes cfg.Context.Covers(addr).
	covered bool

	// elide/subsume bake the elision-map and guard-coverage probes per
	// μop index under the block's build context (nil when ElideChecks is
	// off). elide[i] is the probe result for uops[i] if it is a memory
	// μop; subsume[i] additionally marks the hit as guard-attributed.
	elide   []bool
	subsume []bool

	// guardAnchor bakes the hoisted-guard probe for this macro-op's
	// address under the block's build context.
	guardAnchor bool
}

// superblock is a chained translation block: a straight-line run of
// baked macro translations over one fused μop stream, ended by a branch
// (or by a chain-terminating macro: an MSRAM reroute, an allocator
// event, or the length cap).
type superblock struct {
	entry uint64
	valid bool

	// gen/epoch pin the derivation inputs: the microcode-RAM generation
	// and the Sim-wide elision/guard installation epoch at build time.
	gen   uint64
	epoch uint64

	// ctx is the live call-string fold (k-limited) the elision and guard
	// masks were baked under; only checked when ElideChecks is on.
	ctx CallCtx

	uops   []isa.Uop // fused stream owned by the block
	macros []sbMacro

	// Direct-branch successor links, patched on first resolution of the
	// terminal branch. Links are hints: they are revalidated (validity,
	// entry address, generation, epoch, context) before being followed.
	taken *superblock
	fall  *superblock
}

// sbStats counts per-core superblock activity. Like UopCacheStats this
// is host telemetry, reported out of band — never in Result.
type sbStats struct {
	built     uint64 // blocks installed
	replayed  uint64 // macro-ops served from a block cursor
	engages   uint64 // cursor activations via cache lookup
	chains    uint64 // successor links patched
	chained   uint64 // cursor activations via a followed link
	fallbacks uint64 // mid-block exits to the single-op path
}

// sbCache is the per-core superblock cache, direct-mapped by entry
// address like the μop cache underneath it.
type sbCache struct {
	slots []*superblock
	stats sbStats
}

func sbSlot(addr uint64) uint64 { return (addr >> 2) & (sbSlots - 1) }

// lookup returns the valid block with the given entry address, or nil.
// A generation or epoch mismatch invalidates the block in place so the
// builder can rebuild it (RV-CURE's discipline: derive once, reuse
// safely, invalidate on generation bump).
func (sc *sbCache) lookup(addr, gen, epoch uint64) *superblock {
	if sc.slots == nil {
		return nil
	}
	b := sc.slots[sbSlot(addr)]
	if b == nil || !b.valid || b.entry != addr {
		return nil
	}
	if b.gen != gen || b.epoch != epoch {
		b.valid = false
		return nil
	}
	return b
}

// peek returns the block at addr's slot if it matches, without the
// generation/epoch validation (link patching revalidates on follow).
func (sc *sbCache) peek(addr uint64) *superblock {
	if sc.slots == nil {
		return nil
	}
	b := sc.slots[sbSlot(addr)]
	if b == nil || !b.valid || b.entry != addr {
		return nil
	}
	return b
}

// install places a built block into its slot, invalidating any previous
// occupant (links holding the evicted block revalidate and drop it).
func (sc *sbCache) install(b *superblock) {
	if sc.slots == nil {
		sc.slots = make([]*superblock, sbSlots)
	}
	slot := sbSlot(b.entry)
	if old := sc.slots[slot]; old != nil {
		old.valid = false
	}
	sc.slots[slot] = b
	sc.stats.built++
}

// sbBuilder accumulates one superblock from the single-op path's
// committed stream. It is per-core scratch: at most one block is under
// construction per core at a time.
type sbBuilder struct {
	active bool
	gen    uint64
	epoch  uint64
	ctx    CallCtx
	next   uint64 // expected address of the next fed record

	uops   []isa.Uop
	macros []sbMacro
}

func (b *sbBuilder) reset() {
	b.active = false
	b.uops = b.uops[:0]
	b.macros = b.macros[:0]
}

// sbEnabled reports whether the configuration engages the superblock
// layer at all (see the file comment for why the software-instrumented
// and Watchdog variants are excluded).
func (s *Sim) sbEnabled() bool {
	if s.Cfg.NoSuperblocks {
		return false
	}
	switch s.Cfg.Variant {
	case decode.VariantInsecure, decode.VariantHardwareOnly,
		decode.VariantMicrocodeAlwaysOn, decode.VariantMicrocodePrediction:
		return true
	}
	return false
}

// sbLiveCtx returns the k-limited live fold used for block validation
// (the same key elision and guard probes use).
func (c *coreCtx) sbLiveCtx(cfg *Config) CallCtx {
	return c.liveCtx().Limit(cfg.ctxK())
}

// sbResolve returns the baked macro the active cursor holds for this
// record, engaging a cached block when the cursor is idle. A record that
// breaks a replay assumption drops the cursor (fail-closed) and returns
// nil: the caller runs the single-op path.
func (s *Sim) sbResolve(c *coreCtx, rec *emu.Rec) *sbMacro {
	gen := s.Microcode.Gen()
	if sb := c.sbCur; sb != nil {
		m := &sb.macros[c.sbIdx]
		if m.addr == rec.Inst.Addr && rec.Event == emu.EvNone &&
			sb.valid && sb.gen == gen && sb.epoch == s.sbEpoch {
			c.sb.stats.replayed++
			return m
		}
		c.sbCur = nil
		c.sb.stats.fallbacks++
	}
	if rec.Event != emu.EvNone {
		return nil
	}
	sb := c.sb.lookup(rec.Inst.Addr, gen, s.sbEpoch)
	if sb == nil {
		return nil
	}
	if s.Cfg.ElideChecks && sb.ctx != c.sbLiveCtx(&s.Cfg) {
		// Built under a different call-string fold: the baked elision and
		// guard masks do not apply. Evict so the builder rebuilds under
		// the live context.
		sb.valid = false
		return nil
	}
	c.sbCur = sb
	c.sbIdx = 0
	c.sbChain = 0
	c.sbBuild.reset()
	c.sb.stats.engages++
	c.sb.stats.replayed++
	return &sb.macros[0]
}

// sbChainable reports whether a terminal branch kind supports successor
// links: direct branches only — indirect targets and returns change per
// dynamic instance, so their blocks end the chain.
func sbChainable(k branch.Kind) bool {
	switch k {
	case branch.KindCond, branch.KindDirect, branch.KindCall:
		return true
	}
	return false
}

// sbAdvance moves the cursor past a replayed macro, following a
// successor link at the terminal branch when the chain bound allows and
// the linked block revalidates. It runs after ctxRetire so a terminal
// CALL/RET's fold transition is visible to the next block's context
// check.
func (s *Sim) sbAdvance(c *coreCtx, rec *emu.Rec) {
	sb := c.sbCur
	if sb == nil {
		return
	}
	c.sbIdx++
	if c.sbIdx < len(sb.macros) {
		return
	}
	c.sbCur = nil
	m := &sb.macros[len(sb.macros)-1]
	if !m.isBranch || !sbChainable(m.brKind) {
		return
	}
	linkp := &sb.fall
	if rec.Taken {
		linkp = &sb.taken
	}
	nb := *linkp
	if nb == nil || !nb.valid || nb.entry != rec.Target {
		nb = c.sb.peek(rec.Target)
		if nb == nil {
			return
		}
		*linkp = nb
		c.sb.stats.chains++
	}
	chainLen := s.Cfg.SuperblockChainLen
	if chainLen == 0 {
		chainLen = sbDefaultChainLen
	}
	if c.sbChain >= chainLen {
		return // force a fresh lookup on the next record
	}
	if nb.gen != s.Microcode.Gen() || nb.epoch != s.sbEpoch {
		nb.valid = false
		return
	}
	if s.Cfg.ElideChecks && nb.ctx != c.sbLiveCtx(&s.Cfg) {
		return
	}
	c.sbChain++
	c.sbCur = nb
	c.sbIdx = 0
	c.sbBuild.reset()
	c.sb.stats.chained++
	c.sb.stats.replayed++
}

// sbFeed grows the block under construction with one committed record
// processed by the single-op path. Branches terminate and install the
// block; MSRAM-rerouted macros and allocator events terminate it without
// being included (replaying them would always fall back); a generation
// bump or a non-sequential address aborts the partial block.
func (s *Sim) sbFeed(c *coreCtx, rec *emu.Rec, native []isa.Uop, nativeUops uint64,
	isBranch bool, brKind branch.Kind, gen uint64) {
	b := &c.sbBuild
	addr := rec.Inst.Addr
	if b.active && (addr != b.next || gen != b.gen || b.epoch != s.sbEpoch) {
		b.reset()
	}
	if !b.active {
		if c.sb.peek(addr) != nil {
			return // already translated; replay engages on next visit
		}
		b.active = true
		b.gen = gen
		b.epoch = s.sbEpoch
		b.ctx = c.sbLiveCtx(&s.Cfg)
	}
	if c.microRerouted || rec.Event != emu.EvNone {
		s.sbInstall(c)
		return
	}
	lo := len(b.uops)
	b.uops = append(b.uops, native...)
	b.macros = append(b.macros, sbMacro{
		addr:       addr,
		uops:       b.uops[lo : lo+len(native) : lo+len(native)],
		nativeUops: nativeUops,
		isBranch:   isBranch,
		brKind:     brKind,
	})
	if isBranch || len(b.macros) >= sbMaxMacros {
		s.sbInstall(c)
		return
	}
	b.next = rec.Inst.NextAddr()
}

// sbInstall bakes the accumulated per-macro facts and publishes the
// block. Appending to b.uops may have reallocated the fused stream, so
// each macro's sub-slice is re-derived from the final backing array.
func (s *Sim) sbInstall(c *coreCtx) {
	b := &c.sbBuild
	if !b.active || len(b.macros) == 0 {
		b.reset()
		return
	}
	cfg := &s.Cfg
	sb := &superblock{
		entry: b.macros[0].addr,
		valid: true,
		gen:   b.gen,
		epoch: b.epoch,
		ctx:   b.ctx,
		uops:  append([]isa.Uop(nil), b.uops...),
	}
	sb.macros = append([]sbMacro(nil), b.macros...)
	lo := 0
	for i := range sb.macros {
		m := &sb.macros[i]
		n := len(m.uops)
		m.uops = sb.uops[lo : lo+n : lo+n]
		lo += n
		m.covered = cfg.Context.Covers(m.addr)
		if cfg.HoistGuards && len(s.guards.Guards) > 0 {
			if _, ok := s.guards.Guards[GuardKey{Addr: m.addr, Ctx: b.ctx}]; ok {
				m.guardAnchor = true
			} else if !b.ctx.IsAny() {
				_, m.guardAnchor = s.guards.Guards[GuardKey{Addr: m.addr, Ctx: CtxAny}]
			}
		}
		if cfg.ElideChecks {
			m.elide = make([]bool, n)
			m.subsume = make([]bool, n)
			for j := range m.uops {
				u := &m.uops[j]
				if !u.Type.IsMem() {
					continue
				}
				hitKey := ElideKey{Addr: m.addr, MacroIdx: u.MacroIdx, Ctx: b.ctx}
				hit := s.elision[hitKey]
				if !hit && !b.ctx.IsAny() {
					hitKey.Ctx = CtxAny
					hit = s.elision[hitKey]
				}
				m.elide[j] = hit
				m.subsume[j] = hit && cfg.HoistGuards && s.guards.Covered[hitKey]
			}
		}
	}
	c.sb.install(sb)
	b.reset()
}

// SuperblockStats reports superblock-layer activity. Like UopCacheStats
// it is host telemetry surfaced out of band: Result must be
// byte-identical with superblocks on and off, so none of these counters
// may live there.
type SuperblockStats struct {
	Built         uint64 // blocks installed
	Replayed      uint64 // macro-ops served from block cursors
	Engages       uint64 // cursor activations via cache lookup
	ChainsPatched uint64 // successor links patched on first resolution
	Chained       uint64 // cursor activations via a followed link
	Fallbacks     uint64 // mid-block exits to the single-op path
	Entries       int    // valid blocks resident across cores
}

// ReplayRate returns the fraction of committed macro-ops served from a
// superblock cursor.
func (st SuperblockStats) ReplayRate(macroOps uint64) float64 {
	if macroOps == 0 {
		return 0
	}
	return float64(st.Replayed) / float64(macroOps)
}

// SuperblockStats aggregates superblock activity across cores.
func (s *Sim) SuperblockStats() SuperblockStats {
	var st SuperblockStats
	for _, c := range s.cores {
		st.Built += c.sb.stats.built
		st.Replayed += c.sb.stats.replayed
		st.Engages += c.sb.stats.engages
		st.ChainsPatched += c.sb.stats.chains
		st.Chained += c.sb.stats.chained
		st.Fallbacks += c.sb.stats.fallbacks
		for _, b := range c.sb.slots {
			if b != nil && b.valid {
				st.Entries++
			}
		}
	}
	return st
}
