package pipeline

import (
	"chex86/internal/isa"
)

// uopEntry is one memoized static translation: the micro-op expansion a
// macro-op decodes to before any per-dynamic-instance state (effective
// addresses, tracker-dependent check injection, token rewiring) is
// applied. Entries are immutable after insertion — consumers copy the
// expansion into a per-core scratch buffer and mutate only the copy.
type uopEntry struct {
	// addr tags the slot with the instruction address it memoizes (the
	// cache is direct-mapped; a tag mismatch is a conflict miss).
	addr  uint64
	valid bool

	uops []isa.Uop

	// nativeUops is the pre-reroute native expansion length, replayed
	// into Decoder.Stats.NativeUops on every hit so results are
	// byte-identical with the cache on and off.
	nativeUops uint64

	// rerouted records that the translation was served from the writable
	// microcode RAM (a field update matched), replayed as
	// MSROMMacros/Rerouted statistics on hits.
	rerouted bool

	// gen is the microcode-RAM generation the translation was derived
	// under. A lookup under a different generation misses (the MSRAM
	// contents changed, so the memoized Microcode.Apply result is stale).
	gen uint64
}

// uopCacheSlots is the per-core capacity. Static guest footprints are far
// smaller, so in practice every static instruction gets its own slot; the
// direct-mapped organization keeps the lookup to a shift, a mask, and two
// compares — this sits on the per-committed-instruction critical path.
const uopCacheSlots = 1 << 12

// uopCache is the per-core decoded-μop translation cache: the simulator's
// analogue of a decoded-stream buffer. It memoizes Decoder.Native +
// Microcode.Apply keyed by instruction address, direct-mapped over
// uopCacheSlots slots. The variant is part of the key implicitly — the
// cache lives inside one core of one Sim, whose variant is fixed — and
// the microcode-RAM generation is checked on every lookup, so installing
// or removing a field update invalidates exactly the translations that
// could have consulted the old MSRAM contents.
//
// Caching is sound because guest programs are static (no self-modifying
// code: the instruction at an address never changes) and both memoized
// stages are pure functions of the instruction and the MSRAM contents.
// The cache must not change a single result byte; decode-path statistics
// the memoized stages would have bumped are replayed on each hit, and the
// cache's own counters are reported out of band (UopCacheStats), never in
// Result.
type uopCache struct {
	slots []uopEntry

	hits          uint64
	misses        uint64
	invalidations uint64 // hits rejected because the MSRAM generation moved
}

func uopSlot(addr uint64) uint64 {
	// Instruction addresses are 4-byte aligned in this ISA; drop the
	// always-zero low bits so consecutive instructions map to
	// consecutive slots.
	return (addr >> 2) & (uopCacheSlots - 1)
}

// lookup returns the memoized translation for the instruction at addr
// under the given microcode generation. A generation mismatch counts as
// an invalidation and reports a miss (the slot is overwritten by the
// subsequent insert).
func (uc *uopCache) lookup(addr, gen uint64) *uopEntry {
	if uc.slots == nil {
		uc.misses++
		return nil
	}
	e := &uc.slots[uopSlot(addr)]
	if e.valid && e.addr == addr {
		if e.gen == gen {
			uc.hits++
			return e
		}
		uc.invalidations++
		e.valid = false
	}
	uc.misses++
	return nil
}

// insert memoizes a freshly derived translation. The expansion is copied:
// the caller's slice is scratch that the EA-fill and instrumentation
// stages mutate per dynamic instance, while the cached copy stays
// immutable for the entry's lifetime.
func (uc *uopCache) insert(addr, gen uint64, uops []isa.Uop, nativeUops uint64, rerouted bool) {
	if uc.slots == nil {
		uc.slots = make([]uopEntry, uopCacheSlots)
	}
	e := &uc.slots[uopSlot(addr)]
	cp := e.uops[:0] // a conflict-evicted slot's backing array is reusable
	if cap(cp) < len(uops) {
		cp = make([]isa.Uop, 0, len(uops))
	}
	cp = append(cp, uops...)
	*e = uopEntry{addr: addr, valid: true, uops: cp, nativeUops: nativeUops, rerouted: rerouted, gen: gen}
}

// UopCacheStats reports μop-translation-cache activity. It is surfaced
// separately from Result on purpose: Result must be byte-identical with
// the cache on and off, so host-side cache telemetry cannot live there.
type UopCacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Entries       int
}

// HitRate returns hits over all lookups (0 when no lookups happened).
func (s UopCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// UopCacheStats aggregates μop-cache activity across cores.
func (s *Sim) UopCacheStats() UopCacheStats {
	var st UopCacheStats
	for _, c := range s.cores {
		st.Hits += c.uc.hits
		st.Misses += c.uc.misses
		st.Invalidations += c.uc.invalidations
		for i := range c.uc.slots {
			if c.uc.slots[i].valid {
				st.Entries++
			}
		}
	}
	return st
}
