// Package patterns implements the temporal pointer access pattern analysis
// of Section V-B (Table II): classification of the per-instruction-address
// PID sequences observed at pointer reloads into the eight pattern kinds
// the paper identifies, with stride extraction. These patterns — keyed by
// instruction address rather than effective address — are what make the
// stride-based pointer-reload predictor effective.
package patterns

import (
	"fmt"
	"sort"
	"strings"
)

// Kind is one of the temporal pointer access patterns of Table II.
type Kind uint8

const (
	Constant Kind = iota
	Stride
	BatchStride
	BatchNoStride
	RepeatStride
	RepeatNoStride
	RandomStride
	RandomNoStride
	NumKinds
)

var kindNames = [NumKinds]string{
	"Constant",
	"Stride",
	"Batch + Stride",
	"Batch + No Stride",
	"Repeat + Stride",
	"Repeat + No Stride",
	"Random + Stride",
	"Random + No Stride",
}

// String names the pattern as in Table II.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "pattern?"
}

// Predictable reports whether a stride predictor with a short warm-up
// captures the pattern.
func (k Kind) Predictable() bool {
	switch k {
	case Constant, Stride, BatchStride, RepeatStride:
		return true
	}
	return false
}

// Classification is the result of analyzing one PID sequence.
type Classification struct {
	Kind   Kind
	Stride int64 // meaningful for the *Stride kinds
	Batch  int   // batch length for Batch kinds, period for Repeat kinds
}

// String renders the classification.
func (c Classification) String() string {
	switch c.Kind {
	case Stride, BatchStride, RepeatStride:
		return fmt.Sprintf("%s (stride %d)", c.Kind, c.Stride)
	}
	return c.Kind.String()
}

// dedupeBatches collapses immediate repetitions, returning the collapsed
// sequence and the (min) batch length.
func dedupeBatches(seq []int64) (heads []int64, batch int) {
	if len(seq) == 0 {
		return nil, 0
	}
	batch = len(seq)
	run := 1
	heads = append(heads, seq[0])
	for i := 1; i < len(seq); i++ {
		if seq[i] == seq[i-1] {
			run++
			continue
		}
		if run < batch {
			batch = run
		}
		run = 1
		heads = append(heads, seq[i])
	}
	if run < batch {
		batch = run
	}
	return heads, batch
}

// constantStride returns the common difference of seq, or (0, false).
func constantStride(seq []int64) (int64, bool) {
	if len(seq) < 2 {
		return 0, false
	}
	d := seq[1] - seq[0]
	for i := 2; i < len(seq); i++ {
		if seq[i]-seq[i-1] != d {
			return 0, false
		}
	}
	return d, true
}

// repeatPeriod returns the smallest period p (2..maxP) such that seq is a
// repetition of its first p elements, or 0.
func repeatPeriod(seq []int64, maxP int) int {
	for p := 2; p <= maxP && p*2 <= len(seq); p++ {
		ok := true
		for i := p; i < len(seq); i++ {
			if seq[i] != seq[i%p] {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return 0
}

// strideDominant reports whether the majority of successive differences
// share one value, returning that stride.
func strideDominant(seq []int64) (int64, bool) {
	if len(seq) < 3 {
		return 0, false
	}
	counts := make(map[int64]int)
	for i := 1; i < len(seq); i++ {
		counts[seq[i]-seq[i-1]]++
	}
	var best int64
	bestN := 0
	for d, n := range counts {
		if n > bestN {
			best, bestN = d, n
		}
	}
	if bestN*2 >= len(seq)-1 && best != 0 {
		return best, true
	}
	return 0, false
}

// Classify analyzes the temporal PID sequence observed at one load
// instruction and assigns it a Table II pattern kind.
func Classify(seq []int64) Classification {
	if len(seq) == 0 {
		return Classification{Kind: RandomNoStride}
	}
	allSame := true
	for _, v := range seq {
		if v != seq[0] {
			allSame = false
			break
		}
	}
	if allSame {
		return Classification{Kind: Constant, Stride: 0}
	}

	heads, batch := dedupeBatches(seq)

	if d, ok := constantStride(heads); ok {
		if batch > 1 {
			return Classification{Kind: BatchStride, Stride: d, Batch: batch}
		}
		return Classification{Kind: Stride, Stride: d}
	}

	if p := repeatPeriod(heads, 8); p > 0 {
		if d, ok := constantStride(heads[:p]); ok {
			return Classification{Kind: RepeatStride, Stride: d, Batch: p}
		}
		return Classification{Kind: RepeatNoStride, Batch: p}
	}

	if batch > 1 {
		// A dominant (if not perfectly constant) stride between batch
		// heads still counts as Batch + Stride: allocation churn replaces
		// individual identifiers without destroying the striding shape.
		if d, ok := strideDominant(heads); ok {
			return Classification{Kind: BatchStride, Stride: d, Batch: batch}
		}
		return Classification{Kind: BatchNoStride, Batch: batch}
	}

	if d, ok := strideDominant(heads); ok {
		return Classification{Kind: RandomStride, Stride: d}
	}
	return Classification{Kind: RandomNoStride}
}

// Collector accumulates per-instruction-address PID sequences (the
// Table II measurement probe). Sequences are capped to bound memory.
type Collector struct {
	MaxPerPC int
	seqs     map[uint64][]int64
}

// NewCollector returns a collector capping each PC's recorded sequence at
// maxPerPC observations (0 means 4096).
func NewCollector(maxPerPC int) *Collector {
	if maxPerPC <= 0 {
		maxPerPC = 4096
	}
	return &Collector{MaxPerPC: maxPerPC, seqs: make(map[uint64][]int64)}
}

// Observe records one pointer reload.
func (c *Collector) Observe(pc uint64, pid int64) {
	s := c.seqs[pc]
	if len(s) >= c.MaxPerPC {
		return
	}
	c.seqs[pc] = append(s, pid)
}

// PCs returns the instruction addresses observed, sorted.
func (c *Collector) PCs() []uint64 {
	pcs := make([]uint64, 0, len(c.seqs))
	for pc := range c.seqs {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

// Seq returns the PID sequence observed at pc.
func (c *Collector) Seq(pc uint64) []int64 { return c.seqs[pc] }

// Summary tallies classifications over all observed PCs, weighting each PC
// by its observation count.
func (c *Collector) Summary() map[Kind]int {
	out := make(map[Kind]int)
	for _, s := range c.seqs {
		if len(s) < 4 {
			continue
		}
		out[Classify(s).Kind]++
	}
	return out
}

// Format renders the summary as a Table II-style report.
func (c *Collector) Format() string {
	sum := c.Summary()
	total := 0
	for _, n := range sum {
		total += n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %8s\n", "Pattern", "PCs", "Share")
	for k := Kind(0); k < NumKinds; k++ {
		n := sum[k]
		share := 0.0
		if total > 0 {
			share = 100 * float64(n) / float64(total)
		}
		fmt.Fprintf(&b, "%-20s %8d %7.1f%%\n", k, n, share)
	}
	return b.String()
}
