package patterns

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seqOf(kind Kind, n int, rng *rand.Rand) []int64 {
	out := make([]int64, 0, n)
	switch kind {
	case Constant:
		for i := 0; i < n; i++ {
			out = append(out, 31)
		}
	case Stride:
		for i := 0; i < n; i++ {
			out = append(out, 13+int64(i)*3)
		}
	case BatchStride:
		for i := 0; i < n; i++ {
			out = append(out, 11+int64(i/4)*4)
		}
	case BatchNoStride:
		cur := int64(0)
		for i := 0; i < n; i++ {
			if i%4 == 0 {
				cur = rng.Int63n(1000) + 1
			}
			out = append(out, cur)
		}
	case RepeatStride:
		base := []int64{26, 27, 28}
		for i := 0; i < n; i++ {
			out = append(out, base[i%3])
		}
	case RepeatNoStride:
		base := []int64{26, 57, 5}
		for i := 0; i < n; i++ {
			out = append(out, base[i%3])
		}
	case RandomStride:
		cur := int64(100)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.8 {
				cur += 2
			} else {
				cur = rng.Int63n(1000) + 1
			}
			out = append(out, cur)
		}
	default: // RandomNoStride
		for i := 0; i < n; i++ {
			out = append(out, rng.Int63n(1_000_000)+1)
		}
	}
	return out
}

// TestClassifyTableII generates the exact example shapes of Table II and
// checks the classification.
func TestClassifyTableII(t *testing.T) {
	cases := []struct {
		seq  []int64
		want Kind
	}{
		{[]int64{31, 31, 31, 31, 31, 31, 31}, Constant},
		{[]int64{13, 16, 19, 22, 25, 28, 31}, Stride},
		{[]int64{11, 11, 11, 15, 15, 15, 15, 19, 19, 19, 19}, BatchStride},
		{[]int64{26, 27, 28, 26, 27, 28, 26, 27, 28}, RepeatStride},
		{[]int64{26, 57, 5, 26, 57, 5, 26, 57, 5}, RepeatNoStride},
	}
	for _, c := range cases {
		if got := Classify(c.seq).Kind; got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestClassifyGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, kind := range []Kind{Constant, Stride, BatchStride, RepeatStride, RepeatNoStride} {
		seq := seqOf(kind, 60, rng)
		if got := Classify(seq).Kind; got != kind {
			t.Errorf("generated %v classified as %v", kind, got)
		}
	}
	// Random sequences must not be classified as predictable.
	seq := seqOf(RandomNoStride, 60, rng)
	if got := Classify(seq).Kind; got.Predictable() {
		t.Errorf("random sequence classified as predictable %v", got)
	}
}

func TestStrideExtraction(t *testing.T) {
	c := Classify([]int64{13, 16, 19, 22, 25})
	if c.Kind != Stride || c.Stride != 3 {
		t.Fatalf("stride classification %+v", c)
	}
	c = Classify([]int64{11, 11, 11, 11, 15, 15, 15, 15})
	if c.Kind != BatchStride || c.Stride != 4 || c.Batch != 4 {
		t.Fatalf("batch classification %+v", c)
	}
}

// TestPredictableClosedUnderPrefix: dropping the tail of a predictable
// sequence never turns it into a *worse-than-random* classification panic;
// Classify is total.
func TestClassifyTotal(t *testing.T) {
	f := func(raw []int16) bool {
		seq := make([]int64, len(raw))
		for i, v := range raw {
			seq[i] = int64(v)
		}
		_ = Classify(seq) // must not panic for any input
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector(8)
	for i := 0; i < 20; i++ {
		c.Observe(0x100, 7)
		c.Observe(0x200, int64(i+1))
	}
	if len(c.Seq(0x100)) != 8 {
		t.Fatal("per-PC cap not enforced")
	}
	if len(c.PCs()) != 2 {
		t.Fatal("PC enumeration wrong")
	}
	sum := c.Summary()
	if sum[Constant] != 1 || sum[Stride] != 1 {
		t.Fatalf("summary %v", sum)
	}
	if s := c.Format(); len(s) == 0 {
		t.Fatal("empty format")
	}
}

func TestEmptyAndShortSequences(t *testing.T) {
	if Classify(nil).Kind != RandomNoStride {
		t.Fatal("empty sequence defaults to random")
	}
	if Classify([]int64{5}).Kind != Constant {
		t.Fatal("singleton is constant")
	}
	col := NewCollector(0)
	col.Observe(1, 2)
	if n := len(col.Summary()); n != 0 {
		t.Fatal("sequences shorter than 4 are not classified")
	}
}
