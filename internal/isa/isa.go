// Package isa defines the simulated instruction set architecture used
// throughout the CHEx86 reproduction: a representative x86-64 subset of
// register-memory macro-operations, the RISC-style micro-operations they
// decode into, architectural registers, condition codes, and flags.
//
// The subset is chosen so that every micro-op pattern in the paper's
// pointer-tracking rule database (Table I) — MOV, AND, LEA, ADD, SUB,
// LD, ST, MOVI — arises naturally from decoding, and so that every
// register-memory addressing mode ([base + index*scale + disp]) that the
// binary-translation and microcode variants must instrument is present.
package isa

import "fmt"

// Reg names an architectural register. The first 16 values follow x86-64
// encoding order. Temporaries T0..T3 are micro-architectural registers
// used only by decoded micro-ops (the paper's t1 in Figure 5f). FLAGS is
// modeled as a register for dependency tracking.
type Reg uint8

const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	T0 // micro-op temporaries
	T1
	T2
	T3
	FLAGS
	RIPReg
	NumRegs

	// RNone marks an absent register operand.
	RNone Reg = 0xFF
)

// NumArchRegs is the number of architectural (program-visible) integer
// registers.
const NumArchRegs = 16

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
	"t0", "t1", "t2", "t3", "flags", "rip",
}

// String returns the conventional AT&T-style name of the register.
func (r Reg) String() string {
	if r == RNone {
		return "-"
	}
	if int(r) < len(regNames) {
		return "%" + regNames[r]
	}
	return fmt.Sprintf("%%r?%d", uint8(r))
}

// Valid reports whether r names a real register (not RNone).
func (r Reg) Valid() bool { return r != RNone && r < NumRegs }

// Arch reports whether r is an architectural register visible to guest code.
func (r Reg) Arch() bool { return r < NumArchRegs }

// Flags holds the condition flags produced by arithmetic macro-ops.
type Flags uint8

const (
	FlagZ Flags = 1 << iota // zero
	FlagS                   // sign
	FlagC                   // carry
	FlagO                   // overflow
)

// Cond is a branch condition code.
type Cond uint8

const (
	CondNone Cond = iota
	CondE         // equal (ZF)
	CondNE        // not equal
	CondL         // less (signed)
	CondLE
	CondG
	CondGE
	CondB // below (unsigned)
	CondBE
	CondA
	CondAE
	CondS // sign
	CondNS
)

var condNames = [...]string{"", "e", "ne", "l", "le", "g", "ge", "b", "be", "a", "ae", "s", "ns"}

// String returns the x86 condition suffix ("e", "ne", ...).
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return "?"
}

// Eval evaluates the condition against a flag word.
func (c Cond) Eval(f Flags) bool {
	zf := f&FlagZ != 0
	sf := f&FlagS != 0
	cf := f&FlagC != 0
	of := f&FlagO != 0
	switch c {
	case CondE:
		return zf
	case CondNE:
		return !zf
	case CondL:
		return sf != of
	case CondLE:
		return zf || sf != of
	case CondG:
		return !zf && sf == of
	case CondGE:
		return sf == of
	case CondB:
		return cf
	case CondBE:
		return cf || zf
	case CondA:
		return !cf && !zf
	case CondAE:
		return !cf
	case CondS:
		return sf
	case CondNS:
		return !sf
	}
	return false
}

// MacroOpcode identifies a macro-operation (a native x86-style instruction).
type MacroOpcode uint8

const (
	NOP  MacroOpcode = iota
	MOV              // mov dst, src (any of reg/imm/mem combinations)
	MOVB             // byte-sized mov: loads zero-extend, stores write the low byte
	LEA              // lea reg, mem
	ADD
	SUB
	AND
	OR
	XOR
	IMUL
	SHL
	SHR
	CMP  // sets flags only
	TEST // sets flags only
	INC  // dst += 1 (CF preserved, as in x86)
	DEC  // dst -= 1 (CF preserved)
	NEG  // dst = -dst
	NOT  // dst = ^dst (no flags)
	XCHG // swap dst and src (register or memory forms)
	PUSH
	POP
	CALL // direct or indirect through register
	RET
	JMP // direct or indirect
	JCC // conditional branch; condition in Inst.Cond
	FADD
	FMUL
	FDIV
	HLT // stop execution of the current hart
	numMacroOpcodes
)

var macroNames = [numMacroOpcodes]string{
	"nop", "mov", "movb", "lea", "add", "sub", "and", "or", "xor", "imul",
	"shl", "shr", "cmp", "test", "inc", "dec", "neg", "not", "xchg",
	"push", "pop", "call", "ret", "jmp", "j", "fadd", "fmul", "fdiv", "hlt",
}

// String returns the mnemonic of the macro-opcode.
func (op MacroOpcode) String() string {
	if op < numMacroOpcodes {
		return macroNames[op]
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// IsBranch reports whether the opcode redirects control flow.
func (op MacroOpcode) IsBranch() bool {
	switch op {
	case CALL, RET, JMP, JCC:
		return true
	}
	return false
}

// WritesFlags reports whether the opcode updates the FLAGS register.
func (op MacroOpcode) WritesFlags() bool {
	switch op {
	case ADD, SUB, AND, OR, XOR, IMUL, SHL, SHR, CMP, TEST, INC, DEC, NEG:
		return true
	}
	return false
}

// OperandKind discriminates the Operand union.
type OperandKind uint8

const (
	OpNone OperandKind = iota
	OpReg
	OpImm
	OpMem
)

// MemRef is an x86-style effective-address computation
// [Base + Index*Scale + Disp].
type MemRef struct {
	Base  Reg
	Index Reg
	Scale uint8 // 1, 2, 4 or 8; 0 treated as 1
	Disp  int64
}

// String renders the memory reference in AT&T syntax.
func (m MemRef) String() string {
	s := ""
	if m.Disp != 0 {
		s = fmt.Sprintf("%#x", m.Disp)
	}
	inner := ""
	if m.Base.Valid() {
		inner = m.Base.String()
	}
	if m.Index.Valid() {
		sc := m.Scale
		if sc == 0 {
			sc = 1
		}
		inner += fmt.Sprintf(",%s,%d", m.Index, sc)
	}
	if inner != "" {
		s += "(" + inner + ")"
	}
	if s == "" {
		s = "(0)"
	}
	return s
}

// Operand is a macro-op operand: nothing, a register, an immediate, or a
// memory reference.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  int64
	Mem  MemRef
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: OpReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: OpImm, Imm: v} }

// MemOp returns a memory operand with the given effective-address parts.
func MemOp(base Reg, disp int64) Operand {
	return Operand{Kind: OpMem, Mem: MemRef{Base: base, Index: RNone, Scale: 1, Disp: disp}}
}

// MemOpIdx returns a memory operand with base, index, scale and displacement.
func MemOpIdx(base, index Reg, scale uint8, disp int64) Operand {
	return Operand{Kind: OpMem, Mem: MemRef{Base: base, Index: index, Scale: scale, Disp: disp}}
}

// String renders the operand in AT&T-ish syntax.
func (o Operand) String() string {
	switch o.Kind {
	case OpNone:
		return ""
	case OpReg:
		return o.Reg.String()
	case OpImm:
		return fmt.Sprintf("$%#x", o.Imm)
	case OpMem:
		return o.Mem.String()
	}
	return "?"
}

// Inst is a single macro-operation. Addr and EncLen are assigned by the
// assembler; Target holds the resolved destination of direct branches.
type Inst struct {
	Op     MacroOpcode
	Cond   Cond
	Dst    Operand
	Src    Operand
	Target uint64 // resolved direct branch/call target
	Addr   uint64 // virtual address of this instruction (RIP)
	EncLen uint8  // encoded length in bytes (for I-cache modeling)
}

// String renders the instruction for diagnostics.
func (in *Inst) String() string {
	switch in.Op {
	case JCC:
		return fmt.Sprintf("j%s %#x", in.Cond, in.Target)
	case JMP, CALL:
		if in.Dst.Kind == OpReg {
			return fmt.Sprintf("%s *%s", in.Op, in.Dst.Reg)
		}
		return fmt.Sprintf("%s %#x", in.Op, in.Target)
	case RET, NOP, HLT:
		return in.Op.String()
	case PUSH, POP:
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	}
	if in.Src.Kind == OpNone {
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	}
	return fmt.Sprintf("%s %s, %s", in.Op, in.Src, in.Dst)
}

// HasMemOperand reports whether the instruction references memory through a
// register-memory addressing mode (the instrumentation targets of the
// binary-translation and always-on microcode variants), including implicit
// stack accesses of PUSH/POP/CALL/RET.
func (in *Inst) HasMemOperand() bool {
	if in.Dst.Kind == OpMem || in.Src.Kind == OpMem {
		return true
	}
	switch in.Op {
	case PUSH, POP, CALL, RET:
		return true
	}
	return false
}

// NextAddr returns the address of the sequentially following instruction.
func (in *Inst) NextAddr() uint64 { return in.Addr + uint64(in.EncLen) }
