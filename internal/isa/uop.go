package isa

import "fmt"

// UopType identifies a micro-operation class. Micro-ops are the RISC-style
// operations produced by the CISC→RISC decoder (Figure 2) and, for the
// CHEx86 variants, injected by the microcode customization unit.
type UopType uint8

const (
	UNop    UopType = iota
	UMov            // reg <- reg
	ULimm           // reg <- imm (the paper's MOVI / load-immediate rule)
	UAlu            // reg <- reg op reg/imm
	ULea            // reg <- effective address
	ULoad           // reg <- mem[EA]
	UStore          // mem[EA] <- reg
	UBranch         // conditional redirect
	UJump           // unconditional/indirect redirect

	// Capability micro-ops injected by the microcode customization unit
	// (Section IV-C). They never appear in native decode output.
	UCapGenBegin  // instantiate capability, set busy, bounds <- %rdi
	UCapGenEnd    // base <- %rax, clear busy, set valid
	UCapFreeBegin // set busy on the capability being freed
	UCapFreeEnd   // clear valid and busy
	UCapCheck     // validate a dereference against the shadow capability table
	UGuardCheck   // fused hoisted-block guard: one interval check at a dominator anchor

	numUopTypes
)

var uopNames = [numUopTypes]string{
	"nop", "mov", "limm", "alu", "lea", "ld", "st", "br", "jmp",
	"capGen.Begin", "capGen.End", "capFree.Begin", "capFree.End", "capCheck",
	"guardCheck",
}

// String returns the micro-op mnemonic.
func (t UopType) String() string {
	if t < numUopTypes {
		return uopNames[t]
	}
	return fmt.Sprintf("uop?%d", uint8(t))
}

// IsCap reports whether the micro-op is one of the injected capability
// micro-ops.
func (t UopType) IsCap() bool { return t >= UCapGenBegin && t <= UGuardCheck }

// IsMem reports whether the micro-op accesses program-visible memory.
func (t UopType) IsMem() bool { return t == ULoad || t == UStore }

// AluOp names the operation performed by a UAlu micro-op.
type AluOp uint8

const (
	AluAdd AluOp = iota
	AluSub
	AluAnd
	AluOr
	AluXor
	AluMul
	AluShl
	AluShr
	AluCmp  // subtract, flags only
	AluTest // and, flags only
	AluFAdd
	AluFMul
	AluFDiv
)

var aluNames = [...]string{
	"add", "sub", "and", "or", "xor", "mul", "shl", "shr",
	"cmp", "test", "fadd", "fmul", "fdiv",
}

// String returns the ALU operation mnemonic.
func (a AluOp) String() string {
	if int(a) < len(aluNames) {
		return aluNames[a]
	}
	return "?"
}

// FUClass identifies the functional-unit pool a micro-op issues to
// (Table III: Int ALU(6)/Mult(1), FPALU(3), SIMD(3); plus memory ports).
type FUClass uint8

const (
	FUIntALU FUClass = iota
	FUIntMult
	FUFPALU
	FUSIMD
	FULoad
	FUStore
	FUBranchUnit
	NumFUClasses
)

var fuNames = [NumFUClasses]string{"intALU", "intMult", "fpALU", "simd", "ldPort", "stPort", "brUnit"}

// String names the functional-unit class.
func (f FUClass) String() string {
	if f < NumFUClasses {
		return fuNames[f]
	}
	return "fu?"
}

// Uop is a single micro-operation. Register fields refer to architectural
// and temporary registers; renaming happens in the timing model.
type Uop struct {
	Type UopType
	Alu  AluOp
	Dst  Reg // RNone if no register result
	Src1 Reg
	Src2 Reg
	Imm  int64
	Cond Cond

	// HasImm marks Imm as a live second source for ALU ops (reg-imm forms,
	// the paper's addi/subi/andi rules).
	HasImm bool

	// MemRef holds the addressing-mode registers for loads/stores so the
	// rule-based pointer tracker can identify the base register being
	// dereferenced. EA is filled from the functional trace when the uop is
	// produced for a committed instruction.
	Mem MemRef
	EA  uint64

	// Injected marks micro-ops inserted by the microcode customization
	// unit (or, in the ASan/BT variants, by software instrumentation)
	// rather than produced by native decode.
	Injected bool

	// ZeroIdiom marks a uop squashed at the instruction queue before
	// dispatch (the PNA0 recovery path in Figure 5c): it occupies front-end
	// slots but never issues to a functional unit.
	ZeroIdiom bool

	// PID carries the capability identifier this capability uop operates
	// on, assigned by the speculative pointer tracker.
	PID int64

	// MacroIdx is the index of the uop within its macro-op's expansion.
	MacroIdx uint8

	// Size is the access width in bytes for memory micro-ops (0 means the
	// default 8-byte word).
	Size uint8
}

// AccessSize returns the memory micro-op's width in bytes.
func (u *Uop) AccessSize() uint32 {
	if u.Size == 0 {
		return 8
	}
	return uint32(u.Size)
}

// String renders the micro-op for diagnostics.
func (u *Uop) String() string {
	switch u.Type {
	case UAlu:
		if u.HasImm {
			return fmt.Sprintf("%si %s, %s, $%#x", u.Alu, u.Dst, u.Src1, u.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", u.Alu, u.Dst, u.Src1, u.Src2)
	case ULimm:
		return fmt.Sprintf("limm %s, $%#x", u.Dst, u.Imm)
	case UMov:
		return fmt.Sprintf("mov %s, %s", u.Dst, u.Src1)
	case ULea:
		return fmt.Sprintf("lea %s, %s", u.Dst, u.Mem)
	case ULoad:
		return fmt.Sprintf("ldq %s, %s", u.Dst, u.Mem)
	case UStore:
		return fmt.Sprintf("stq %s, %s", u.Src1, u.Mem)
	case UBranch:
		return fmt.Sprintf("br.%s $%#x", u.Cond, u.Imm)
	case UJump:
		if u.Src1.Valid() {
			return fmt.Sprintf("jmp *%s", u.Src1)
		}
		return fmt.Sprintf("jmp $%#x", u.Imm)
	case UCapCheck:
		return fmt.Sprintf("capCheck pid=%d ea=%#x", u.PID, u.EA)
	case UCapGenBegin, UCapGenEnd, UCapFreeBegin, UCapFreeEnd:
		return fmt.Sprintf("%s pid=%d", u.Type, u.PID)
	}
	return u.Type.String()
}

// FU returns the functional-unit class the micro-op issues to.
func (u *Uop) FU() FUClass {
	switch u.Type {
	case ULoad:
		return FULoad
	case UStore:
		return FUStore
	case UBranch, UJump:
		return FUBranchUnit
	case UAlu:
		switch u.Alu {
		case AluMul:
			return FUIntMult
		case AluFAdd, AluFMul, AluFDiv:
			return FUFPALU
		}
		return FUIntALU
	case UCapCheck, UCapGenBegin, UCapGenEnd, UCapFreeBegin, UCapFreeEnd, UGuardCheck:
		// Capability uops execute on integer ALUs with their own
		// capability-cache port; they are not on the load critical path.
		return FUIntALU
	}
	return FUIntALU
}

// Latency returns the execute latency in cycles, exclusive of any memory
// hierarchy time charged separately for memory uops.
func (u *Uop) Latency() uint8 {
	switch u.Type {
	case UAlu:
		switch u.Alu {
		case AluMul:
			return 3
		case AluFAdd:
			return 4
		case AluFMul:
			return 5
		case AluFDiv:
			return 12
		}
		return 1
	case ULea:
		return 1
	case ULoad, UStore:
		return 1 // address generation; hierarchy latency added by the cache model
	case UCapCheck, UGuardCheck:
		return 2 // capability-cache hit check latency (off the load path)
	case UCapGenBegin, UCapGenEnd, UCapFreeBegin, UCapFreeEnd:
		return 2
	}
	return 1
}

// WritesReg reports whether the micro-op produces a register result.
func (u *Uop) WritesReg() bool { return u.Dst.Valid() }
