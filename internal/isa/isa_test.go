package isa

import (
	"testing"
	"testing/quick"
)

func TestCondEval(t *testing.T) {
	cases := []struct {
		cond  Cond
		flags Flags
		want  bool
	}{
		{CondE, FlagZ, true},
		{CondE, 0, false},
		{CondNE, 0, true},
		{CondNE, FlagZ, false},
		{CondL, FlagS, true},          // SF != OF
		{CondL, FlagS | FlagO, false}, // SF == OF
		{CondLE, FlagZ, true},         // equal
		{CondLE, FlagS, true},         // less
		{CondG, 0, true},              // not zero, SF==OF
		{CondG, FlagZ, false},         //
		{CondGE, FlagS | FlagO, true}, //
		{CondGE, FlagS, false},        //
		{CondB, FlagC, true},          //
		{CondB, 0, false},             //
		{CondBE, FlagZ, true},         //
		{CondBE, FlagC, true},         //
		{CondA, 0, true},              //
		{CondA, FlagC, false},         //
		{CondAE, 0, true},             //
		{CondAE, FlagC, false},        //
		{CondS, FlagS, true},          //
		{CondNS, FlagS, false},        //
		{CondNone, FlagZ | FlagC, false} /* no condition never taken */}
	for _, c := range cases {
		if got := c.cond.Eval(c.flags); got != c.want {
			t.Errorf("Cond %v flags %04b: got %v want %v", c.cond, c.flags, got, c.want)
		}
	}
}

// TestCondComplement checks that complementary condition pairs always
// disagree, for every flag combination.
func TestCondComplement(t *testing.T) {
	pairs := [][2]Cond{{CondE, CondNE}, {CondL, CondGE}, {CondLE, CondG},
		{CondB, CondAE}, {CondBE, CondA}, {CondS, CondNS}}
	for f := Flags(0); f < 16; f++ {
		for _, p := range pairs {
			if p[0].Eval(f) == p[1].Eval(f) {
				t.Errorf("conditions %v/%v agree under flags %04b", p[0], p[1], f)
			}
		}
	}
}

func TestRegProperties(t *testing.T) {
	if NumArchRegs != 16 {
		t.Fatalf("x86-64 has 16 architectural integer registers, got %d", NumArchRegs)
	}
	for r := Reg(0); r < NumRegs; r++ {
		if !r.Valid() {
			t.Errorf("register %d should be valid", r)
		}
	}
	if RNone.Valid() {
		t.Error("RNone must not be valid")
	}
	if !RAX.Arch() || T0.Arch() || FLAGS.Arch() {
		t.Error("architectural classification wrong")
	}
	if RAX.String() != "%rax" || R15.String() != "%r15" || RNone.String() != "-" {
		t.Errorf("register names wrong: %s %s %s", RAX, R15, RNone)
	}
}

func TestOperandAndMemRefStrings(t *testing.T) {
	m := MemRef{Base: RBX, Index: RCX, Scale: 8, Disp: 16}
	if got := m.String(); got != "0x10(%rbx,%rcx,8)" {
		t.Errorf("MemRef string: %q", got)
	}
	if got := RegOp(RDI).String(); got != "%rdi" {
		t.Errorf("RegOp string: %q", got)
	}
	if got := ImmOp(255).String(); got != "$0xff" {
		t.Errorf("ImmOp string: %q", got)
	}
}

func TestInstClassification(t *testing.T) {
	ld := Inst{Op: MOV, Dst: RegOp(RAX), Src: MemOp(RBX, 0)}
	if !ld.HasMemOperand() {
		t.Error("reg<-mem mov must have a memory operand")
	}
	rr := Inst{Op: ADD, Dst: RegOp(RAX), Src: RegOp(RBX)}
	if rr.HasMemOperand() {
		t.Error("reg-reg add has no memory operand")
	}
	for _, op := range []MacroOpcode{PUSH, POP, CALL, RET} {
		in := Inst{Op: op, Dst: RegOp(RAX)}
		if !in.HasMemOperand() {
			t.Errorf("%v implicitly accesses the stack", op)
		}
	}
	for _, op := range []MacroOpcode{CALL, RET, JMP, JCC} {
		if !op.IsBranch() {
			t.Errorf("%v is a branch", op)
		}
	}
	if MOV.IsBranch() || MOV.WritesFlags() {
		t.Error("mov neither branches nor writes flags")
	}
	if !ADD.WritesFlags() || !CMP.WritesFlags() {
		t.Error("arithmetic must write flags")
	}
}

func TestUopFunctionalUnits(t *testing.T) {
	cases := []struct {
		u  Uop
		fu FUClass
	}{
		{Uop{Type: ULoad}, FULoad},
		{Uop{Type: UStore}, FUStore},
		{Uop{Type: UBranch}, FUBranchUnit},
		{Uop{Type: UJump}, FUBranchUnit},
		{Uop{Type: UAlu, Alu: AluAdd}, FUIntALU},
		{Uop{Type: UAlu, Alu: AluMul}, FUIntMult},
		{Uop{Type: UAlu, Alu: AluFAdd}, FUFPALU},
		{Uop{Type: UAlu, Alu: AluFDiv}, FUFPALU},
		{Uop{Type: UCapCheck}, FUIntALU},
	}
	for _, c := range cases {
		if got := c.u.FU(); got != c.fu {
			t.Errorf("%v: FU %v, want %v", c.u.Type, got, c.fu)
		}
	}
}

func TestUopLatencies(t *testing.T) {
	if (&Uop{Type: UAlu, Alu: AluAdd}).Latency() != 1 {
		t.Error("simple ALU latency should be 1")
	}
	if (&Uop{Type: UAlu, Alu: AluFDiv}).Latency() <= (&Uop{Type: UAlu, Alu: AluFMul}).Latency() {
		t.Error("division must be slower than multiplication")
	}
	if (&Uop{Type: UCapCheck}).Latency() == 0 {
		t.Error("capCheck has a capability-cache access latency")
	}
}

// TestCondEvalTotal uses quick to confirm Eval never panics and CondNone
// never predicts taken for arbitrary flag words.
func TestCondEvalTotal(t *testing.T) {
	f := func(c uint8, fl uint8) bool {
		cond := Cond(c % 13)
		taken := cond.Eval(Flags(fl))
		if cond == CondNone && taken {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWritesReg(t *testing.T) {
	if (&Uop{Type: UStore, Dst: RNone}).WritesReg() {
		t.Error("stores produce no register result")
	}
	if !(&Uop{Type: ULoad, Dst: RAX}).WritesReg() {
		t.Error("loads produce a register result")
	}
}
