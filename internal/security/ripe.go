package security

import (
	"fmt"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/mem"
)

// RIPE-style dimensions (Wilander et al., ACSAC 2011). The original suite
// sweeps buffer location, target code pointer, overflow technique, attack
// code, and abused libc function on real Linux processes; this generator
// sweeps the equivalent dimensions that exist inside the simulated process
// at CHEx86's protection granularity (heap and global data section,
// object-level bounds).
type ripeDims struct {
	Location  string // "heap" | "global"
	Technique string // "direct" | "indirect"
	Target    string // "funcptr" | "chunkmeta" | "adjacent"
	Access    string // "write" | "read"
	Width     string // "word" | "byte"
	Distance  int64  // bytes past the end of the buffer
}

func (d ripeDims) name() string {
	return fmt.Sprintf("%s-%s-%s-%s-%s-%d", d.Location, d.Technique, d.Target, d.Access, d.Width, d.Distance)
}

// RIPE returns the generated spatial-violation sweep. Every case must be
// flagged as an out-of-bounds access regardless of how the attacker
// reaches past the allocation (Section VII-A).
func RIPE() []*Exploit {
	var out []*Exploit
	for _, loc := range []string{"heap", "global"} {
		for _, tech := range []string{"direct", "indirect"} {
			for _, tgt := range []string{"funcptr", "chunkmeta", "adjacent"} {
				if loc == "global" && tgt == "chunkmeta" {
					continue // no chunk metadata behind globals
				}
				for _, acc := range []string{"write", "read"} {
					for _, width := range []string{"word", "byte"} {
						for _, dist := range []int64{8, 64, 512} {
							if width == "byte" && tech == "direct" {
								continue // the byte cases exercise the single stray access
							}
							d := ripeDims{loc, tech, tgt, acc, width, dist}
							out = append(out, &Exploit{
								Name:   d.name(),
								Suite:  SuiteRIPE,
								Desc:   "RIPE-style spatial violation sweep case",
								Build:  ripeBuilder(d),
								Expect: core.VOutOfBounds,
							})
						}
					}
				}
			}
		}
	}
	return out
}

const ripeBufBytes = 64

// ripeBuilder assembles one sweep case. The buffer is a 64-byte object; a
// victim object (the stand-in for the target code pointer / adjacent
// structure) sits immediately after it; the attack reaches dist bytes past
// the buffer's end.
func ripeBuilder(d ripeDims) func() (*asm.Program, error) {
	return func() (*asm.Program, error) {
		b := asm.NewBuilder()

		switch d.Location {
		case "heap":
			// buffer, then the victim allocation right behind it.
			b.MovRI(isa.RDI, ripeBufBytes)
			b.CallAddr(heap.MallocEntry)
			b.MovRR(isa.RBX, isa.RAX) // buffer
			b.MovRI(isa.RDI, 64)
			b.CallAddr(heap.MallocEntry)
			b.MovRR(isa.R12, isa.RAX) // victim (function-pointer table / struct)
		case "global":
			bufAddr := uint64(mem.GlobalBase)
			victim := bufAddr + ripeBufBytes
			pool := victim + 128
			b.Global("buf", bufAddr, ripeBufBytes)
			b.Global("victim", victim, 64)
			b.Global("pbuf", pool, 8)
			b.Reloc(pool, "buf")
			b.Load(isa.RBX, isa.RNone, int64(pool)) // rbx <- &buf via constant pool
		}

		// Benign warm-up: initialize the buffer in bounds.
		b.MovRI(isa.RCX, 0)
		b.Label("init")
		b.StoreIdx(isa.RBX, isa.RCX, 8, 0, isa.RCX)
		b.AddRI(isa.RCX, 1)
		b.CmpRI(isa.RCX, ripeBufBytes/8)
		b.Jcc(isa.CondL, "init")

		off := ripeBufBytes + d.Distance - 8 // the out-of-bounds word
		switch d.Technique {
		case "direct":
			// Sequential overflow: keep writing/reading past the end, the
			// way an unchecked copy loop trespasses.
			b.MovRI(isa.RCX, 0)
			b.Label("smash")
			if d.Access == "write" {
				b.StoreIdx(isa.RBX, isa.RCX, 8, 0, isa.RCX)
			} else {
				b.LoadIdx(isa.RDX, isa.RBX, isa.RCX, 8, 0)
			}
			b.AddRI(isa.RCX, 1)
			b.CmpRI(isa.RCX, (ripeBufBytes+d.Distance)/8)
			b.Jcc(isa.CondL, "smash")
		case "indirect":
			// Attacker-controlled index: a single stray access at the
			// computed offset (word- or byte-granular).
			if d.Width == "byte" {
				if d.Access == "write" {
					b.MovRI(isa.RDX, 0x41)
					b.StoreB(isa.RBX, off, isa.RDX)
				} else {
					b.LoadB(isa.RDX, isa.RBX, off)
				}
				break
			}
			b.MovRI(isa.RCX, off)
			if d.Access == "write" {
				b.MovRI(isa.RDX, 0x41414141)
				b.StoreIdx(isa.RBX, isa.RCX, 1, 0, isa.RDX)
			} else {
				b.LoadIdx(isa.RDX, isa.RBX, isa.RCX, 1, 0)
			}
		}
		b.Hlt()
		return b.Build()
	}
}
