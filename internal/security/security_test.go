package security

import (
	"testing"

	"chex86/internal/core"
	"chex86/internal/decode"
)

// TestAllSuitesDetected reproduces the paper's headline security result:
// CHEx86 thwarts every exploit from the RIPE-style sweep, the ASan-style
// unit suite, and the How2Heap-style collection, with the expected
// violation class, while the benign and false-positive probes behave as
// Section VII-B describes.
func TestAllSuitesDetected(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Suite+"/"+e.Name, func(t *testing.T) {
			out := Run(e, decode.VariantMicrocodePrediction)
			if out.Err != nil && out.Violation == nil {
				t.Fatalf("run error: %v", out.Err)
			}
			if !out.Correct() {
				t.Fatalf("%s", out)
			}
		})
	}
}

// TestSuiteSizes pins the suite composition: RIPE's sweep, the ASan unit
// cases, and the 18 How2Heap techniques.
func TestSuiteSizes(t *testing.T) {
	counts := map[string]int{}
	for _, e := range All() {
		counts[e.Suite]++
	}
	if counts[SuiteHow2Heap] != 18 {
		t.Errorf("How2Heap should carry 18 exploits, got %d", counts[SuiteHow2Heap])
	}
	if counts[SuiteRIPE] < 50 {
		t.Errorf("RIPE sweep too small: %d", counts[SuiteRIPE])
	}
	if counts[SuiteASan] < 12 {
		t.Errorf("ASan suite too small: %d", counts[SuiteASan])
	}
}

// TestInsecureBaselineDetectsNothing verifies the baseline provides no
// protection: the same exploits run to completion (or crash) without any
// capability violation being raised.
func TestInsecureBaselineDetectsNothing(t *testing.T) {
	for _, e := range All() {
		if e.Expect == core.VNone {
			continue
		}
		out := Run(e, decode.VariantInsecure)
		if out.Detected {
			t.Errorf("%s/%s: baseline should not detect anything, got %v",
				e.Suite, e.Name, out.Violation)
		}
	}
}

// TestAllVariantsDetect verifies every protected CHEx86 variant catches a
// representative exploit from each class.
func TestAllVariantsDetect(t *testing.T) {
	reps := map[string]bool{
		"heap-buffer-overflow-write": true,
		"heap-use-after-free-read":   true,
		"double-free":                true,
		"tcache-poisoning":           true,
	}
	variants := []decode.Variant{
		decode.VariantHardwareOnly,
		decode.VariantBinaryTranslation,
		decode.VariantMicrocodeAlwaysOn,
		decode.VariantMicrocodePrediction,
	}
	for _, e := range All() {
		if !reps[e.Name] {
			continue
		}
		for _, v := range variants {
			out := Run(e, v)
			if !out.Correct() {
				t.Errorf("variant %v: %s", v, out)
			}
		}
	}
}

// TestSummarize checks the aggregate bookkeeping.
func TestSummarize(t *testing.T) {
	outs := RunSuite(SuiteHow2Heap)
	s := Summarize(outs)
	if s.Total != 18 || s.Correct != 18 {
		t.Fatalf("How2Heap summary: %d/%d correct; failures: %v", s.Correct, s.Total, s.Failures)
	}
	if s.ByClass[core.VDoubleFree] == 0 || s.ByClass[core.VUseAfterFree] == 0 || s.ByClass[core.VOutOfBounds] == 0 {
		t.Errorf("expected a mix of violation classes, got %v", s.ByClass)
	}
}
