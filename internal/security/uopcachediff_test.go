package security

import "testing"

// TestUopCacheDiffIdentical is the security half of the μop-translation-
// cache differential gate: detection behavior must be byte-identical with
// the cache enabled and disabled across the full exploit and
// false-positive evaluation.
func TestUopCacheDiffIdentical(t *testing.T) {
	rep := RunUopCacheDiff()
	if !rep.Identical() {
		t.Fatalf("μop cache changed security behavior:\n%s", FormatUopCacheDiff(rep))
	}
}
