// Package security implements the paper's security evaluation (Section
// VII-A): three exploit suites — a RIPE-style spatial-violation sweep, an
// AddressSanitizer-test-style unit suite, and a How2Heap-style collection
// of heap-metadata-corruption exploits — plus the false-positive probes of
// Section VII-B. Every exploit is a real guest program whose violation
// CHEx86 must detect under the hood; benign probes must run clean.
package security

import (
	"fmt"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/pipeline"
)

// Suite labels.
const (
	SuiteRIPE     = "RIPE"
	SuiteASan     = "ASan tests"
	SuiteHow2Heap = "How2Heap"
	SuiteFP       = "False positives"
)

// Exploit is one security-evaluation case.
type Exploit struct {
	Name  string
	Suite string
	Desc  string

	// Build assembles the guest program carrying the exploit.
	Build func() (*asm.Program, error)

	// Expect is the violation class CHEx86 must report; VNone means the
	// program is benign and must run without any violation.
	Expect core.ViolationKind
}

// Outcome is the result of running one exploit.
type Outcome struct {
	Exploit   *Exploit
	Detected  bool
	Violation *core.Violation
	Err       error
}

// Correct reports whether the outcome matches the exploit's expectation.
func (o *Outcome) Correct() bool {
	if o.Err != nil && o.Violation == nil {
		return false
	}
	if o.Exploit.Expect == core.VNone {
		return !o.Detected
	}
	return o.Detected && o.Violation.Kind == o.Exploit.Expect
}

// String renders the outcome.
func (o *Outcome) String() string {
	status := "MISSED"
	if o.Correct() {
		status = "ok"
	}
	got := "none"
	if o.Violation != nil {
		got = o.Violation.Kind.String()
	}
	return fmt.Sprintf("[%s] %-10s %-34s expect=%-20s got=%s",
		status, o.Exploit.Suite, o.Exploit.Name, o.Exploit.Expect, got)
}

// Run executes the exploit on the given protection variant and reports the
// outcome.
func Run(e *Exploit, variant decode.Variant) *Outcome {
	out := &Outcome{Exploit: e}
	prog, err := e.Build()
	if err != nil {
		out.Err = err
		return out
	}
	cfg := pipeline.DefaultConfig()
	cfg.Variant = variant
	cfg.StopOnViolation = true
	cfg.MaxInsts = 2_000_000
	sim, err := pipeline.NewSim(prog, cfg, 1)
	if err != nil {
		out.Err = err
		return out
	}
	_, rerr := sim.Run()
	if v, ok := rerr.(*core.Violation); ok {
		out.Detected = true
		out.Violation = v
	} else if rerr != nil {
		out.Err = rerr
	} else if len(sim.Violations) > 0 {
		out.Detected = true
		out.Violation = sim.Violations[0]
	}
	return out
}

// All returns every exploit across the three suites plus the
// false-positive probes.
func All() []*Exploit {
	var out []*Exploit
	out = append(out, RIPE()...)
	out = append(out, ASanSuite()...)
	out = append(out, How2Heap()...)
	out = append(out, FalsePositiveProbes()...)
	return out
}

// RunSuite runs every exploit in the named suite under the default
// prediction-driven variant and returns the outcomes.
func RunSuite(suite string) []*Outcome {
	var outs []*Outcome
	for _, e := range All() {
		if e.Suite != suite {
			continue
		}
		outs = append(outs, Run(e, decode.VariantMicrocodePrediction))
	}
	return outs
}

// Summary tallies outcomes: total, correctly handled, and detected by
// violation class.
type Summary struct {
	Total    int
	Correct  int
	ByClass  map[core.ViolationKind]int
	Failures []*Outcome
}

// Summarize aggregates outcomes.
func Summarize(outs []*Outcome) Summary {
	s := Summary{ByClass: make(map[core.ViolationKind]int)}
	for _, o := range outs {
		s.Total++
		if o.Correct() {
			s.Correct++
		} else {
			s.Failures = append(s.Failures, o)
		}
		if o.Violation != nil {
			s.ByClass[o.Violation.Kind]++
		}
	}
	return s
}
