package security

import (
	"fmt"
	"math/rand"
	"testing"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
)

// The randomized differential property of Section VI: CHEx86 is transparent
// to memory-safe programs (no false positives, whatever the pointer flow)
// and flags any single injected mutation — spatial (out-of-bounds) or
// temporal (use-after-free, double free) — with the right violation class.
//
// randomSafeProgram emits a program that allocates a handful of buffers and
// then performs a random walk of pointer copies, arithmetic within bounds,
// spills, reloads, and in-bounds word/byte accesses — the register-level
// pointer flows Table I must follow. With fuzz=true one access is made out
// of bounds.

type fuzzedAccess struct {
	buf  int   // which allocation
	off  int64 // byte offset, 8-aligned for word accesses
	byte bool
	oob  bool
}

const (
	fuzzBufs     = 4
	fuzzBufBytes = 128
	fuzzSteps    = 40
)

// pointerRegs is the pool the generator shuffles allocations through.
var pointerRegs = []isa.Reg{isa.RBX, isa.R12, isa.R13, isa.R14}

// Mutation classes the fuzzer can inject into an otherwise safe program.
const (
	mutNone       = ""
	mutOOB        = "oob"
	mutUAF        = "uaf"
	mutDoubleFree = "double-free"
)

func buildFuzzProgram(rng *rand.Rand, mutation string) (*asm.Program, error) {
	b := asm.NewBuilder()

	// Allocate the buffers; each pointer lands in its home register.
	for i := 0; i < fuzzBufs; i++ {
		b.MovRI(isa.RDI, fuzzBufBytes)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(pointerRegs[i], isa.RAX)
	}

	// home[i] = register currently holding buffer i.
	home := make([]isa.Reg, fuzzBufs)
	copy(home, pointerRegs)
	// spilled[i] = stack slot holding buffer i's pointer, or 0.
	spilled := make([]int64, fuzzBufs)

	// freeReg returns a pointer register no buffer currently lives in.
	freeReg := func() isa.Reg {
		for _, r := range pointerRegs {
			used := false
			for j := range home {
				if home[j] == r {
					used = true
					break
				}
			}
			if !used {
				return r
			}
		}
		return isa.RNone
	}
	// ensureHome reloads buffer i's pointer from its spill slot if it lost
	// its register; reports whether the pointer is usable afterwards.
	ensureHome := func(i int) bool {
		if home[i] != isa.RNone {
			return true
		}
		r := freeReg()
		if r == isa.RNone || spilled[i] == 0 {
			return false
		}
		b.Load(r, isa.RSP, spilled[i])
		home[i] = r
		return true
	}

	freed := make([]bool, fuzzBufs)
	// emitTemporal injects the chosen temporal mutation on buffer i.
	emitTemporal := func(i int) {
		b.MovRR(isa.RDI, home[i])
		b.CallAddr(heap.FreeEntry)
		freed[i] = true
		switch mutation {
		case mutUAF:
			b.Load(isa.RDX, home[i], 0) // read through the dangling pointer
		case mutDoubleFree:
			b.MovRR(isa.RDI, home[i])
			b.CallAddr(heap.FreeEntry)
		}
	}

	mutStep := -1
	if mutation != mutNone {
		mutStep = rng.Intn(fuzzSteps)
	}

	for step := 0; step < fuzzSteps; step++ {
		i := rng.Intn(fuzzBufs)
		if freed[i] {
			continue
		}
		if !ensureHome(i) {
			continue
		}
		if step == mutStep && (mutation == mutUAF || mutation == mutDoubleFree) {
			emitTemporal(i)
			mutStep = -2
			continue
		}
		switch op := rng.Intn(6); op {
		case 0: // copy the pointer to another register (MOV rule)
			dst := pointerRegs[rng.Intn(len(pointerRegs))]
			if dst == home[i] {
				break
			}
			// Only evict a buffer that can be reloaded from its spill slot.
			ok := true
			for j := range home {
				if home[j] == dst && spilled[j] == 0 {
					ok = false
				}
			}
			if !ok {
				break
			}
			for j := range home {
				if home[j] == dst {
					home[j] = isa.RNone
				}
			}
			b.MovRR(dst, home[i])
			home[i] = dst
		case 1: // spill the pointer to the stack (ST rule: alias record)
			slot := int64(-64 - 16*i)
			b.Store(isa.RSP, slot, home[i])
			spilled[i] = slot
		case 2: // reload the pointer from its spill slot (LD rule)
			if spilled[i] == 0 {
				break
			}
			b.Load(home[i], isa.RSP, spilled[i])
		case 3, 4: // in-bounds access through the tracked pointer
			acc := fuzzedAccess{
				buf:  i,
				off:  8 * rng.Int63n(fuzzBufBytes/8),
				byte: rng.Intn(4) == 0,
				oob:  step == mutStep && mutation == mutOOB,
			}
			emitAccess(b, home[i], acc, rng)
			if acc.oob {
				mutStep = -2 // emitted
			}
		case 5: // pointer arithmetic that stays in bounds (ADD/SUB rules)
			adv := 8 * rng.Int63n(4)
			b.AddRI(home[i], adv)
			b.MovRI(isa.RDX, 1)
			b.Store(home[i], 0, isa.RDX) // still inside the buffer
			b.SubRI(home[i], adv)
		}
	}
	lastUsable := -1
	for i := range home {
		if !freed[i] && ensureHome(i) {
			lastUsable = i
		}
	}
	if mutStep >= 0 && lastUsable >= 0 {
		// The chosen step never fired; force the mutation at the end.
		if mutation == mutOOB {
			emitAccess(b, home[lastUsable], fuzzedAccess{off: 0, oob: true}, rng)
		} else {
			emitTemporal(lastUsable)
		}
	}
	for i := 0; i < fuzzBufs; i++ {
		if freed[i] || !ensureHome(i) {
			continue // already freed by the mutation, or pointer lost
		}
		b.MovRR(isa.RDI, home[i])
		b.CallAddr(heap.FreeEntry)
	}
	b.Hlt()
	return b.Build()
}

func emitAccess(b *asm.Builder, ptr isa.Reg, a fuzzedAccess, rng *rand.Rand) {
	off := a.off
	if a.oob {
		off = fuzzBufBytes + 8*rng.Int63n(4) // past the end
	}
	switch {
	case a.byte && rng.Intn(2) == 0:
		b.LoadB(isa.RDX, ptr, off)
	case a.byte:
		b.MovRI(isa.RDX, 0x5A)
		b.StoreB(ptr, off, isa.RDX)
	case rng.Intn(2) == 0:
		b.Load(isa.RDX, ptr, off)
	default:
		b.MovRI(isa.RDX, int64(off))
		b.Store(ptr, off, isa.RDX)
	}
}

func runFuzz(t *testing.T, prog *asm.Program) []*core.Violation {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Variant = decode.VariantMicrocodePrediction
	cfg.MaxInsts = 500_000
	sim := pipeline.New(prog, cfg, 1)
	if _, err := sim.Run(); err != nil {
		if v, ok := err.(*core.Violation); ok {
			return []*core.Violation{v}
		}
		t.Fatalf("run: %v", err)
	}
	return sim.Violations
}

// TestFuzzNoFalsePositives: 50 random memory-safe pointer-flow programs,
// zero violations allowed.
func TestFuzzNoFalsePositives(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			prog, err := buildFuzzProgram(rand.New(rand.NewSource(seed)), mutNone)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if vs := runFuzz(t, prog); len(vs) > 0 {
				t.Fatalf("false positive on safe random program: %v", vs[0])
			}
		})
	}
}

// TestFuzzDetectsMutation: the same generator with one injected mutation
// must always be flagged, with the mutation's violation class.
func TestFuzzDetectsMutation(t *testing.T) {
	cases := []struct {
		mutation string
		want     core.ViolationKind
	}{
		{mutOOB, core.VOutOfBounds},
		{mutUAF, core.VUseAfterFree},
		{mutDoubleFree, core.VDoubleFree},
	}
	for _, tc := range cases {
		t.Run(tc.mutation, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				prog, err := buildFuzzProgram(rand.New(rand.NewSource(seed)), tc.mutation)
				if err != nil {
					t.Fatalf("seed %d: build: %v", seed, err)
				}
				vs := runFuzz(t, prog)
				if len(vs) == 0 {
					t.Fatalf("seed %d: %s mutation escaped detection", seed, tc.mutation)
				}
				if vs[0].Kind != tc.want {
					t.Fatalf("seed %d: %s mutation flagged as %v, want %v",
						seed, tc.mutation, vs[0].Kind, tc.want)
				}
			}
		})
	}
}
