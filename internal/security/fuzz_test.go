package security

import (
	"fmt"
	"testing"

	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/lockstep/progen"
	"chex86/internal/pipeline"
)

// The randomized differential property of Section VI: CHEx86 is transparent
// to memory-safe programs (no false positives, whatever the pointer flow)
// and flags any single injected mutation — spatial (out-of-bounds) or
// temporal (use-after-free, double free, dangling spill) — with the right
// violation class.
//
// The program generator lives in internal/lockstep/progen (it also feeds
// the lockstep differential-fuzzing harness): seeded random walks of
// pointer copies, bounded arithmetic, spills, reloads, in-bounds word/byte
// accesses, alloc/free churn, and call trees, with an optional labeled
// violation.

func runFuzz(t *testing.T, g *progen.Genome) []*core.Violation {
	t.Helper()
	prog, err := g.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.Variant = decode.VariantMicrocodePrediction
	cfg.MaxInsts = 500_000
	sim := pipeline.New(prog, cfg, 1)
	if _, err := sim.Run(); err != nil {
		if v, ok := err.(*core.Violation); ok {
			return []*core.Violation{v}
		}
		t.Fatalf("run: %v", err)
	}
	return sim.Violations
}

// TestFuzzNoFalsePositives: 50 random memory-safe pointer-flow programs,
// zero violations allowed.
func TestFuzzNoFalsePositives(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := progen.Generate(seed, progen.Options{})
			if vs := runFuzz(t, g); len(vs) > 0 {
				t.Fatalf("false positive on safe random program: %v", vs[0])
			}
		})
	}
}

// TestFuzzDetectsMutation: the same generator with one injected mutation
// must always be flagged, with the mutation's violation class.
func TestFuzzDetectsMutation(t *testing.T) {
	for _, mut := range progen.Mutations() {
		mut := mut
		t.Run(string(mut), func(t *testing.T) {
			for seed := uint64(0); seed < 40; seed++ {
				g := progen.Generate(seed, progen.Options{Mutation: mut})
				vs := runFuzz(t, g)
				if len(vs) == 0 {
					t.Fatalf("seed %d: %s mutation escaped detection", seed, mut)
				}
				if vs[0].Kind != mut.Expect() {
					t.Fatalf("seed %d: %s mutation flagged as %v, want %v",
						seed, mut, vs[0].Kind, mut.Expect())
				}
			}
		})
	}
}
