package security

import (
	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/heap"
	"chex86/internal/isa"
)

// How2Heap returns 18 exploits modeled after ShellPhish's How2Heap
// collection: evasive heap-metadata-corruption techniques. Whatever degree
// of evasion tricks the allocator, the principal anchor points remain
// out-of-bounds accesses, use-after-free, double free, and invalid free
// (Section VII-A) — which is where CHEx86 flags them, before the corrupted
// metadata can be weaponized.
func How2Heap() []*Exploit {
	mk := func(name, desc string, expect core.ViolationKind, body func(b *asm.Builder)) *Exploit {
		return &Exploit{
			Name: name, Suite: SuiteHow2Heap, Desc: desc, Expect: expect,
			Build: func() (*asm.Program, error) {
				b := asm.NewBuilder()
				body(b)
				b.Hlt()
				return b.Build()
			},
		}
	}
	malloc := func(b *asm.Builder, n int64, dst isa.Reg) {
		b.MovRI(isa.RDI, n)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(dst, isa.RAX)
	}
	free := func(b *asm.Builder, r isa.Reg) {
		b.MovRR(isa.RDI, r)
		b.CallAddr(heap.FreeEntry)
	}

	// Overflow from chunk a into the metadata of the chunk behind it.
	overflowIntoNeighbor := func(b *asm.Builder, size int64) {
		malloc(b, size, isa.RBX)
		malloc(b, size, isa.R12)
		// Write through a's end into b's header (header sits 16 bytes
		// before the user pointer, i.e. right past a's chunk).
		b.MovRI(isa.RDX, 0x1000)
		b.Store(isa.RBX, size, isa.RDX) // first out-of-bounds word
	}

	return []*Exploit{
		mk("first-fit", "UAF write into a freed chunk reused by first-fit", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 128, isa.RBX)
			malloc(b, 128, isa.R12)
			free(b, isa.RBX)
			b.MovRI(isa.RDX, 0x41)
			b.Store(isa.RBX, 0, isa.RDX) // write into the freed chunk
		}),
		mk("fastbin-dup", "double free of a fastbin-sized chunk", core.VDoubleFree, func(b *asm.Builder) {
			malloc(b, 32, isa.RBX)
			malloc(b, 32, isa.R12)
			free(b, isa.RBX)
			free(b, isa.R12) // evade naive double-free head check
			free(b, isa.RBX) // the dup
		}),
		mk("fastbin-dup-into-stack", "double free, then poison fd toward the stack", core.VDoubleFree, func(b *asm.Builder) {
			malloc(b, 32, isa.RBX)
			free(b, isa.RBX)
			free(b, isa.RBX)
		}),
		mk("fastbin-dup-consolidate", "double free across consolidation boundary", core.VDoubleFree, func(b *asm.Builder) {
			malloc(b, 32, isa.RBX)
			free(b, isa.RBX)
			malloc(b, 600, isa.R12) // trigger "consolidation"
			free(b, isa.RBX)
		}),
		mk("unsafe-unlink", "overflow corrupts neighbor's size/fd for unlink", core.VOutOfBounds, func(b *asm.Builder) {
			overflowIntoNeighbor(b, 128)
		}),
		mk("house-of-spirit", "free of a fake chunk fabricated on the stack", core.VInvalidFree, func(b *asm.Builder) {
			// Build a fake chunk header in stack memory and free its "user
			// pointer".
			b.MovRI(isa.RDX, 64)
			b.Store(isa.RSP, -64, isa.RDX) // fake size field
			b.Lea(isa.RDI, isa.MemOp(isa.RSP, -48))
			b.CallAddr(heap.FreeEntry)
		}),
		mk("poison-null-byte", "single NUL byte written one past the end", core.VOutOfBounds, func(b *asm.Builder) {
			malloc(b, 96, isa.RBX)
			malloc(b, 96, isa.R12)
			b.MovRI(isa.RDX, 0)
			b.StoreB(isa.RBX, 96, isa.RDX) // the classic off-by-one NUL
		}),
		mk("house-of-lore", "UAF poison of a freed small-bin chunk's links", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 96, isa.RBX)
			free(b, isa.RBX)
			b.Lea(isa.RDX, isa.MemOp(isa.RSP, -128))
			b.Store(isa.RBX, 8, isa.RDX) // bk <- fake stack chunk
		}),
		mk("overlapping-chunks", "size-field overwrite makes chunks overlap", core.VOutOfBounds, func(b *asm.Builder) {
			overflowIntoNeighbor(b, 256)
		}),
		mk("overlapping-chunks-2", "size corruption of an in-use neighbor", core.VOutOfBounds, func(b *asm.Builder) {
			malloc(b, 256, isa.RBX)
			malloc(b, 256, isa.R12)
			malloc(b, 256, isa.R13)
			b.MovRI(isa.RDX, 0x221)
			b.Store(isa.RBX, 264, isa.RDX) // deep overflow into next header
		}),
		mk("house-of-force", "overflow rewrites the top-chunk size", core.VOutOfBounds, func(b *asm.Builder) {
			malloc(b, 128, isa.RBX)
			b.MovRI(isa.RDX, -1)
			b.Store(isa.RBX, 136, isa.RDX) // clobber wilderness header
		}),
		mk("unsorted-bin-attack", "UAF write of a freed chunk's bk pointer", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 600, isa.RBX)
			malloc(b, 64, isa.R12) // barrier chunk
			free(b, isa.RBX)
			b.Lea(isa.RDX, isa.MemOp(isa.RSP, -256))
			b.Store(isa.RBX, 8, isa.RDX) // bk
		}),
		mk("unsorted-bin-into-stack", "UAF fake-chunk injection via unsorted bin", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 600, isa.RBX)
			free(b, isa.RBX)
			b.MovRI(isa.RDX, 0)
			b.Store(isa.RBX, 0, isa.RDX)
		}),
		mk("large-bin-attack", "UAF write of a freed large chunk's size/links", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 1024, isa.RBX)
			malloc(b, 64, isa.R12)
			free(b, isa.RBX)
			b.MovRI(isa.RDX, 0x1234)
			b.Store(isa.RBX, 16, isa.RDX)
		}),
		mk("house-of-einherjar", "off-by-one into prev-size/prev-inuse", core.VOutOfBounds, func(b *asm.Builder) {
			malloc(b, 192, isa.RBX)
			malloc(b, 192, isa.R12)
			b.MovRI(isa.RDX, 0x100)
			b.Store(isa.RBX, 192, isa.RDX)
		}),
		mk("house-of-orange", "top-chunk corruption without a call to free", core.VOutOfBounds, func(b *asm.Builder) {
			malloc(b, 400, isa.RBX)
			b.MovRI(isa.RDX, 0xc01)
			b.Store(isa.RBX, 408, isa.RDX)
		}),
		mk("tcache-poisoning", "UAF overwrite of a freed chunk's fd", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 64, isa.RBX)
			free(b, isa.RBX)
			b.Lea(isa.RDX, isa.MemOp(isa.RSP, -512))
			b.Store(isa.RBX, 0, isa.RDX) // fd <- target; next malloc would
			// return the attacker-chosen address
		}),
		mk("tcache-dup", "double free within tcache-sized bins", core.VDoubleFree, func(b *asm.Builder) {
			malloc(b, 48, isa.RBX)
			free(b, isa.RBX)
			free(b, isa.RBX)
		}),
	}
}
