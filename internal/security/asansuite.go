package security

import (
	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/mem"
)

// ASanSuite returns unit cases modeled after LLVM AddressSanitizer's test
// suite: one case per classic violation the sanitizer must flag, plus the
// two resource-exhaustion anchors ("allocator returns NULL" and "sizes")
// that CHEx86 catches at capability generation via the pre-configured
// maximum allocation size (Section VII-A).
func ASanSuite() []*Exploit {
	mk := func(name, desc string, expect core.ViolationKind, body func(b *asm.Builder)) *Exploit {
		return &Exploit{
			Name: name, Suite: SuiteASan, Desc: desc, Expect: expect,
			Build: func() (*asm.Program, error) {
				b := asm.NewBuilder()
				body(b)
				b.Hlt()
				return b.Build()
			},
		}
	}

	// allocate n bytes into dst.
	malloc := func(b *asm.Builder, n int64, dst isa.Reg) {
		b.MovRI(isa.RDI, n)
		b.CallAddr(heap.MallocEntry)
		b.MovRR(dst, isa.RAX)
	}
	free := func(b *asm.Builder, r isa.Reg) {
		b.MovRR(isa.RDI, r)
		b.CallAddr(heap.FreeEntry)
	}

	return []*Exploit{
		mk("heap-buffer-overflow-write", "store one past the end", core.VOutOfBounds, func(b *asm.Builder) {
			malloc(b, 40, isa.RBX)
			b.MovRI(isa.RDX, 1)
			b.Store(isa.RBX, 40, isa.RDX)
		}),
		mk("heap-buffer-overflow-read", "load one past the end", core.VOutOfBounds, func(b *asm.Builder) {
			malloc(b, 40, isa.RBX)
			b.Load(isa.RDX, isa.RBX, 40)
		}),
		mk("heap-buffer-underflow", "store before the start", core.VOutOfBounds, func(b *asm.Builder) {
			malloc(b, 40, isa.RBX)
			b.MovRI(isa.RDX, 1)
			b.Store(isa.RBX, -8, isa.RDX)
		}),
		mk("heap-use-after-free-read", "load through a dangling pointer", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 40, isa.RBX)
			free(b, isa.RBX)
			b.Load(isa.RDX, isa.RBX, 0)
		}),
		mk("heap-use-after-free-write", "store through a dangling pointer", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 40, isa.RBX)
			free(b, isa.RBX)
			b.MovRI(isa.RDX, 7)
			b.Store(isa.RBX, 8, isa.RDX)
		}),
		mk("tail-magic", "UAF touching the last word of a freed chunk", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 48, isa.RBX)
			free(b, isa.RBX)
			b.Load(isa.RDX, isa.RBX, 40)
		}),
		mk("uaf-with-rb-distance", "UAF after many intervening allocations", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 48, isa.RBX)
			free(b, isa.RBX)
			b.MovRI(isa.RCX, 32)
			b.Label("churn")
			b.Push(isa.RCX)
			malloc(b, 96, isa.RDX)
			b.Pop(isa.RCX)
			b.SubRI(isa.RCX, 1)
			b.CmpRI(isa.RCX, 0)
			b.Jcc(isa.CondG, "churn")
			b.Load(isa.RDX, isa.RBX, 0) // dangling
		}),
		mk("double-free", "free the same chunk twice", core.VDoubleFree, func(b *asm.Builder) {
			malloc(b, 40, isa.RBX)
			free(b, isa.RBX)
			free(b, isa.RBX)
		}),
		mk("invalid-free-middle", "free a pointer into the middle of a chunk", core.VInvalidFree, func(b *asm.Builder) {
			malloc(b, 64, isa.RBX)
			b.MovRR(isa.RDI, isa.RBX)
			b.AddRI(isa.RDI, 16) // mid-chunk: same PID but not the base; the
			// allocator would corrupt its lists — CHEx86 flags the free of a
			// pointer whose capability base does not match.
			b.CallAddr(heap.FreeEntry)
			// The capability is freed under pid; the dangling base deref trips.
			b.Load(isa.RDX, isa.RBX, 0)
		}),
		mk("invalid-free-untracked", "free a stack address", core.VInvalidFree, func(b *asm.Builder) {
			b.Lea(isa.RDI, isa.MemOp(isa.RSP, -64))
			b.CallAddr(heap.FreeEntry)
		}),
		mk("allocator-returns-null", "resource-exhaustion: huge malloc", core.VResourceExhaustion, func(b *asm.Builder) {
			b.MovRI(isa.RDI, 2<<30) // 2 GB > the 1 GB pre-configured limit
			b.CallAddr(heap.MallocEntry)
		}),
		mk("sizes", "resource-exhaustion: absurd calloc", core.VResourceExhaustion, func(b *asm.Builder) {
			b.MovRI(isa.RDI, 1<<20)
			b.MovRI(isa.RSI, 1<<12) // 4 GB total
			b.CallAddr(heap.CallocEntry)
		}),
		mk("global-buffer-overflow", "store past a global object", core.VOutOfBounds, func(b *asm.Builder) {
			g := uint64(mem.GlobalBase)
			b.Global("gbuf", g, 32)
			b.Global("pg", g+64, 8)
			b.Reloc(g+64, "gbuf")
			b.Load(isa.RBX, isa.RNone, int64(g+64))
			b.MovRI(isa.RDX, 5)
			b.Store(isa.RBX, 32, isa.RDX)
		}),
		mk("use-after-realloc", "use the stale pointer after realloc moved the block", core.VUseAfterFree, func(b *asm.Builder) {
			malloc(b, 40, isa.RBX)
			b.MovRR(isa.RDI, isa.RBX)
			b.MovRI(isa.RSI, 4096) // forces a move to a new chunk
			b.CallAddr(heap.ReallocEntry)
			b.MovRR(isa.R12, isa.RAX)
			b.Load(isa.RDX, isa.RBX, 0) // stale pointer
		}),
		mk("benign-in-bounds", "clean allocate/use/free must not be flagged", core.VNone, func(b *asm.Builder) {
			malloc(b, 64, isa.RBX)
			b.MovRI(isa.RCX, 0)
			b.Label("w")
			b.StoreIdx(isa.RBX, isa.RCX, 8, 0, isa.RCX)
			b.AddRI(isa.RCX, 1)
			b.CmpRI(isa.RCX, 8)
			b.Jcc(isa.CondL, "w")
			free(b, isa.RBX)
		}),
		mk("benign-last-byte", "access to the final word is in bounds", core.VNone, func(b *asm.Builder) {
			malloc(b, 64, isa.RBX)
			b.Load(isa.RDX, isa.RBX, 56)
			free(b, isa.RBX)
		}),
	}
}
