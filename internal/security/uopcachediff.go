package security

import (
	"fmt"
	"strings"

	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/pipeline"
)

// This file is the security half of the μop-translation-cache
// differential gate (DESIGN.md §12): every exploit and benign probe of
// the full security evaluation replays twice — translation cache enabled
// (the default) and disabled — and the two violation reports must be
// byte-identical. The cache memoizes only the static decode stage, so a
// report that appears, disappears, or changes class under it means
// per-dynamic state leaked into a cached translation; the gate fails the
// build on the first such case.

// UopCacheDiffCase is one exploit's paired outcome.
type UopCacheDiffCase struct {
	Name    string `json:"name"`
	Suite   string `json:"suite"`
	On      string `json:"on"`  // violation report with the μop cache (default)
	Off     string `json:"off"` // violation report with NoUopCache set
	Matches bool   `json:"matches"`
}

// UopCacheDiffReport is the whole differential run.
type UopCacheDiffReport struct {
	Cases      []UopCacheDiffCase `json:"cases"`
	Mismatches int                `json:"mismatches"`
}

// Identical reports whether every case matched byte-for-byte.
func (r *UopCacheDiffReport) Identical() bool { return r.Mismatches == 0 }

// runNoUopCache mirrors Run with the μop translation cache disabled.
func runNoUopCache(e *Exploit, variant decode.Variant) *Outcome {
	out := &Outcome{Exploit: e}
	prog, err := e.Build()
	if err != nil {
		out.Err = err
		return out
	}
	cfg := pipeline.DefaultConfig()
	cfg.Variant = variant
	cfg.StopOnViolation = true
	cfg.MaxInsts = 2_000_000
	cfg.NoUopCache = true
	sim, err := pipeline.NewSim(prog, cfg, 1)
	if err != nil {
		out.Err = err
		return out
	}
	_, rerr := sim.Run()
	if v, ok := rerr.(*core.Violation); ok {
		out.Detected = true
		out.Violation = v
	} else if rerr != nil {
		out.Err = rerr
	} else if len(sim.Violations) > 0 {
		out.Detected = true
		out.Violation = sim.Violations[0]
	}
	return out
}

// RunUopCacheDiff replays every security case (all three exploit suites
// and the false-positive probes) with the μop translation cache on and
// off, comparing violation reports.
func RunUopCacheDiff() *UopCacheDiffReport {
	rep := &UopCacheDiffReport{}
	for _, e := range All() {
		on := Run(e, decode.VariantMicrocodePrediction)
		off := runNoUopCache(e, decode.VariantMicrocodePrediction)
		c := UopCacheDiffCase{
			Name:  e.Name,
			Suite: e.Suite,
			On:    outcomeReport(on),
			Off:   outcomeReport(off),
		}
		c.Matches = c.On == c.Off
		if !c.Matches {
			rep.Mismatches++
		}
		rep.Cases = append(rep.Cases, c)
	}
	return rep
}

// FormatUopCacheDiff renders the differential table; the verdict line is
// the CI contract.
func FormatUopCacheDiff(r *UopCacheDiffReport) string {
	var b strings.Builder
	b.WriteString("μop-cache differential gate: violation reports, cache on vs off\n")
	for _, c := range r.Cases {
		status := "ok"
		if !c.Matches {
			status = "MISMATCH"
		}
		fmt.Fprintf(&b, "[%-8s] %-16s %-34s %s\n", status, c.Suite, c.Name, c.On)
		if !c.Matches {
			fmt.Fprintf(&b, "%47s off: %s\n", "", c.Off)
		}
	}
	verdict := "IDENTICAL"
	if !r.Identical() {
		verdict = "DIVERGED"
	}
	fmt.Fprintf(&b, "uopcache-diff: %s (%d cases, %d mismatches)\n",
		verdict, len(r.Cases), r.Mismatches)
	return b.String()
}
