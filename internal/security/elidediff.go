package security

import (
	"fmt"
	"strings"

	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/elide"
	"chex86/internal/pipeline"
)

// This file is the fail-closed differential gate for proof-carrying
// check elision (DESIGN.md §11): every exploit and benign probe of the
// full security evaluation replays twice — elision off and elision on,
// with the independently verified elision map installed — and the two
// violation reports must be byte-identical. Elision may only ever
// suppress checks the proofs show can never fire; a single report that
// appears, disappears, or changes class is a soundness bug, and the gate
// (run in CI) fails the build. Reports deliberately exclude timing:
// suppressing micro-ops legitimately changes cycle counts.

// ElideDiffCase is one exploit's paired outcome.
type ElideDiffCase struct {
	Name    string `json:"name"`
	Suite   string `json:"suite"`
	Off     string `json:"off"`    // violation report without elision
	On      string `json:"on"`     // violation report with verified elision
	Elided  int    `json:"elided"` // proofs verified for this program
	Matches bool   `json:"matches"`
}

// ElideDiffReport is the whole differential run.
type ElideDiffReport struct {
	Cases      []ElideDiffCase `json:"cases"`
	Mismatches int             `json:"mismatches"`
	Elided     int             `json:"elided"` // total verified proofs across programs
}

// Identical reports whether every case matched byte-for-byte.
func (r *ElideDiffReport) Identical() bool { return r.Mismatches == 0 }

// outcomeReport renders an outcome's security-relevant content: the
// violation (class, PID, address, RIP, message) or its absence, and any
// simulation error. No cycle or timing fields.
func outcomeReport(o *Outcome) string {
	switch {
	case o.Err != nil:
		return "error: " + o.Err.Error()
	case o.Violation != nil:
		return o.Violation.Error()
	default:
		return "none"
	}
}

// runElided mirrors Run with the verified elision map installed.
func runElided(e *Exploit, variant decode.Variant) (*Outcome, int) {
	out := &Outcome{Exploit: e}
	prog, err := e.Build()
	if err != nil {
		out.Err = err
		return out, 0
	}
	rep, err := elide.ForProgram(prog, elide.Options{Harts: 1})
	if err != nil {
		out.Err = err
		return out, 0
	}
	cfg := pipeline.DefaultConfig()
	cfg.Variant = variant
	cfg.StopOnViolation = true
	cfg.MaxInsts = 2_000_000
	cfg.ElideChecks = true
	cfg.ElisionDigest = rep.Digest
	sim, err := pipeline.NewSim(prog, cfg, 1)
	if err != nil {
		out.Err = err
		return out, rep.Stats.Elided
	}
	sim.SetElisionMap(rep.Map)
	_, rerr := sim.Run()
	if v, ok := rerr.(*core.Violation); ok {
		out.Detected = true
		out.Violation = v
	} else if rerr != nil {
		out.Err = rerr
	} else if len(sim.Violations) > 0 {
		out.Detected = true
		out.Violation = sim.Violations[0]
	}
	return out, rep.Stats.Elided
}

// RunElideDiff replays every security case (all three exploit suites and
// the false-positive probes) with elision off and on, comparing reports.
func RunElideDiff() *ElideDiffReport {
	rep := &ElideDiffReport{}
	for _, e := range All() {
		off := Run(e, decode.VariantMicrocodePrediction)
		on, elided := runElided(e, decode.VariantMicrocodePrediction)
		c := ElideDiffCase{
			Name:   e.Name,
			Suite:  e.Suite,
			Off:    outcomeReport(off),
			On:     outcomeReport(on),
			Elided: elided,
		}
		c.Matches = c.Off == c.On
		if !c.Matches {
			rep.Mismatches++
		}
		rep.Elided += elided
		rep.Cases = append(rep.Cases, c)
	}
	return rep
}

// FormatElideDiff renders the differential table; the verdict line is
// the CI contract.
func FormatElideDiff(r *ElideDiffReport) string {
	var b strings.Builder
	b.WriteString("Elision differential gate: violation reports, elision off vs on\n")
	for _, c := range r.Cases {
		status := "ok"
		if !c.Matches {
			status = "MISMATCH"
		}
		fmt.Fprintf(&b, "[%-8s] %-16s %-34s proofs=%-3d %s\n",
			status, c.Suite, c.Name, c.Elided, c.Off)
		if !c.Matches {
			fmt.Fprintf(&b, "%47s on:  %s\n", "", c.On)
		}
	}
	verdict := "IDENTICAL"
	if !r.Identical() {
		verdict = "DIVERGED"
	}
	fmt.Fprintf(&b, "elide-diff: %s (%d cases, %d mismatches, %d proofs verified)\n",
		verdict, len(r.Cases), r.Mismatches, r.Elided)
	return b.String()
}
