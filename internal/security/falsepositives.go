package security

import (
	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/mem"
)

// FalsePositiveProbes returns the Section VII-B cases:
//
//   - Intentional constant dereferencing. The common pattern — a global's
//     address retrieved from a constant pool with a PC-relative load —
//     must be tracked correctly and run clean. The rare pattern the paper
//     observed once (leela statically linked against libstdc++): an
//     integer-constant address moved directly into a register and then
//     dereferenced, which the MOVI rule deliberately flags as a wild
//     dereference (the documented false positive).
//
//   - Non-local control transfers. A setjmp/longjmp-style context restore
//     reloads spilled pointer aliases from the jump buffer; the alias
//     machinery must recover the PIDs, so neither false positives nor
//     false negatives occur.
func FalsePositiveProbes() []*Exploit {
	return []*Exploit{
		{
			Name:  "constant-pool-global",
			Suite: SuiteFP,
			Desc:  "PC-relative constant-pool load of a global's address runs clean",
			Build: func() (*asm.Program, error) {
				b := asm.NewBuilder()
				g := uint64(mem.GlobalBase)
				b.Global("table", g, 64)
				b.Global("ptable", g+64, 8)
				b.Reloc(g+64, "table")
				b.Load(isa.RBX, isa.RNone, int64(g+64))
				b.MovRI(isa.RCX, 0)
				b.Label("w")
				b.StoreIdx(isa.RBX, isa.RCX, 8, 0, isa.RCX)
				b.AddRI(isa.RCX, 1)
				b.CmpRI(isa.RCX, 8)
				b.Jcc(isa.CondL, "w")
				b.Hlt()
				return b.Build()
			},
			Expect: core.VNone,
		},
		{
			Name:  "leela-libstdc++-constant-deref",
			Suite: SuiteFP,
			Desc:  "integer-constant address moved into a register and dereferenced: the documented wild-dereference false positive",
			Build: func() (*asm.Program, error) {
				b := asm.NewBuilder()
				g := uint64(mem.GlobalBase)
				b.Global("table", g, 64)
				// The statically-linked-libstdc++ pattern: the literal
				// address as an immediate, then a dereference.
				b.MovRI(isa.RAX, int64(g))
				b.Load(isa.RDX, isa.RAX, 0)
				b.Hlt()
				return b.Build()
			},
			Expect: core.VWildDereference,
		},
		{
			Name:  "setjmp-longjmp-restore",
			Suite: SuiteFP,
			Desc:  "pointer spilled to a jump buffer and restored by a non-local transfer stays tracked",
			Build: func() (*asm.Program, error) {
				b := asm.NewBuilder()
				g := uint64(mem.GlobalBase)
				b.Global("jmpbuf", g, 64)
				b.Global("pjmpbuf", g+64, 8)
				b.Reloc(g+64, "jmpbuf")

				b.MovRI(isa.RDI, 64)
				b.CallAddr(heap.MallocEntry)
				b.MovRR(isa.RBX, isa.RAX)
				// setjmp: spill the live pointer into the jump buffer.
				b.Load(isa.R8, isa.RNone, int64(g+64))
				b.Store(isa.R8, 0, isa.RBX)
				// Do work, clobber the register.
				b.MovRI(isa.RBX, 0)
				// longjmp: restore the context from the jump buffer and use
				// the pointer; heap-allocated buffers are not cleaned up.
				b.Load(isa.RBX, isa.R8, 0)
				b.MovRI(isa.RDX, 9)
				b.Store(isa.RBX, 32, isa.RDX) // in bounds: no false positive
				b.Load(isa.RDX, isa.RBX, 56)  // last word: still fine
				b.Hlt()
				return b.Build()
			},
			Expect: core.VNone,
		},
		{
			Name:  "exception-unwind-restore",
			Suite: SuiteFP,
			Desc:  "stack unwinding restores spilled callee-saved pointers; subsequent use runs clean",
			Build: func() (*asm.Program, error) {
				b := asm.NewBuilder()
				b.MovRI(isa.RDI, 64)
				b.CallAddr(heap.MallocEntry)
				b.MovRR(isa.RBX, isa.RAX)
				b.Call("frame1")
				b.MovRI(isa.RDX, 3)
				b.Store(isa.RBX, 0, isa.RDX) // rbx restored by the unwind path
				b.Hlt()
				// frame1 spills rbx (callee-saved), "throws", and the
				// unwind epilogue restores it before returning.
				b.Label("frame1")
				b.Push(isa.RBX)
				b.MovRI(isa.RBX, 0xdead) // clobber inside the frame
				b.Pop(isa.RBX)           // unwind restores the spilled alias
				b.Ret()
				return b.Build()
			},
			Expect: core.VNone,
		},
	}
}
