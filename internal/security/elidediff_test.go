package security

import "testing"

// TestElideDiffIdentical is the fail-closed contract of proof-carrying
// elision: across every exploit suite and the benign probes, the
// violation report with verified elision enabled must be byte-identical
// to the report without it.
func TestElideDiffIdentical(t *testing.T) {
	rep := RunElideDiff()
	if !rep.Identical() {
		t.Fatalf("elision changed security behavior:\n%s", FormatElideDiff(rep))
	}
	if rep.Elided == 0 {
		t.Log("note: no proofs verified on any security program (gate vacuous)")
	}
}
