package emu

import (
	"testing"

	"chex86/internal/asm"
	"chex86/internal/heap"
	"chex86/internal/isa"
)

// TestStepRecycleZeroAllocs asserts the record free list does its job: a
// warmed-up Step/Recycle cycle — the emulator's entire per-instruction
// path — must not allocate. This is the foundation of the pipeline's
// steady-state zero-allocation contract.
func TestStepRecycleZeroAllocs(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RDI, 256)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.R12, isa.RAX)
	b.MovRI(isa.RCX, 0)
	b.Label("loop")
	b.StoreIdx(isa.R12, isa.RCX, 8, 0, isa.RCX)
	b.LoadIdx(isa.RBX, isa.R12, isa.RCX, 8, 0)
	b.AddRI(isa.RCX, 1)
	b.Alu(isa.AND, isa.RegOp(isa.RCX), isa.ImmOp(31))
	b.Jmp("loop")
	m := New(b.MustBuild(), Options{})

	// Warm past the allocator call, first-touch page materialization, and
	// free-list priming.
	for i := 0; i < 2000; i++ {
		rec, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		m.Recycle(rec)
	}

	n := testing.AllocsPerRun(2000, func() {
		rec, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		m.Recycle(rec)
	})
	if n != 0 {
		t.Fatalf("steady-state Step+Recycle allocates %.3f objects/instruction, want 0", n)
	}
}

// TestRecycleZeroesRec pins the pooling contract: a record that comes
// back from the free list must carry no state from its previous life.
func TestRecycleZeroesRec(t *testing.T) {
	m := New(asm.NewBuilder().MovRI(isa.RAX, 1).Hlt().MustBuild(), Options{})
	rec := m.newRec()
	rec.Seq = 99
	rec.Event = EvAllocExit
	rec.EA = 0xDEAD
	rec.AllocPID = 7
	m.Recycle(rec)
	got := m.newRec()
	if got != rec {
		t.Fatal("free list did not reuse the recycled record")
	}
	if got.Seq != 0 || got.Event != 0 || got.EA != 0 || got.AllocPID != 0 {
		t.Fatalf("recycled record not zeroed: %+v", got)
	}
}
