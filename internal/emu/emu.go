// Package emu implements the functional emulator: it executes guest
// programs macro-op by macro-op in program order, maintains architectural
// state and guest memory, intercepts heap-management routine entry/exit
// points, and emits a committed-instruction trace. The trace drives both
// the CHEx86 front-end machinery (decode, speculative pointer tracking,
// microcode customization) and the out-of-order timing model.
//
// The emulator also maintains the ground-truth allocation map used by the
// hardware checker co-processor (Section V-A) to validate the pointer-
// tracking rule database, and by the security harness to label exploits.
package emu

import (
	"fmt"

	"chex86/internal/asm"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/mem"
)

// EventKind labels trace records that correspond to intercepted events.
type EventKind uint8

const (
	EvNone EventKind = iota
	EvAllocEnter
	EvAllocExit
	EvFreeEnter
	EvFreeExit
	EvHalt
)

var eventNames = [...]string{"", "allocEnter", "allocExit", "freeEnter", "freeExit", "halt"}

// String names the event kind.
func (e EventKind) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "ev?"
}

// Rec is one committed-instruction trace record.
type Rec struct {
	Seq  uint64
	Core int
	Inst *isa.Inst

	// Effective address of the instruction's memory access, if any
	// (explicit operand or implicit stack access).
	EA    uint64
	HasEA bool

	// Val is the instruction's register result (the destination register
	// value after execution) when it has one; the checker co-processor
	// searches the ground-truth map for this value.
	Val    uint64
	HasVal bool

	// StoreVal is the value written by a store.
	StoreVal uint64

	// Branch outcome.
	Taken  bool
	Target uint64 // next RIP after this instruction

	Event     EventKind
	AllocPID  int64  // ground-truth PID for alloc/free events
	AllocBase uint64 // for EvAllocExit: returned pointer
	AllocSize uint64 // for EvAllocEnter/Exit: requested size; for EvFreeEnter: freed ptr in AllocBase
}

// FaultKind classifies a functional execution fault so consumers (the
// lockstep differ in particular) can compare faults structurally instead
// of string-matching Msg.
type FaultKind uint8

const (
	// FaultNone is the zero value; a real *Fault never carries it.
	FaultNone FaultKind = iota
	// FaultShadowLoad is a guest load from the privileged shadow space.
	FaultShadowLoad
	// FaultShadowStore is a guest store to the privileged shadow space.
	FaultShadowStore
	// FaultBadRIP means control flow left the program text.
	FaultBadRIP
	// FaultBadOpcode is an unimplemented opcode or unsupported operand
	// form reaching execution.
	FaultBadOpcode
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultShadowLoad:
		return "shadow-load"
	case FaultShadowStore:
		return "shadow-store"
	case FaultBadRIP:
		return "bad-rip"
	case FaultBadOpcode:
		return "bad-opcode"
	}
	return "unknown"
}

// Fault is a functional execution fault (the insecure baseline's equivalent
// of a crash).
type Fault struct {
	Kind FaultKind
	Core int
	Addr uint64
	RIP  uint64
	Msg  string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("fault on core %d at rip=%#x addr=%#x: %s [%s]", f.Core, f.RIP, f.Addr, f.Msg, f.Kind)
}

// Span is a ground-truth allocation record.
type Span struct {
	PID  int64
	Base uint64
	Size uint64
	Live bool // false after free (tracked for use-after-free ground truth)
}

// Contains reports whether addr falls inside the span.
func (s *Span) Contains(addr uint64) bool {
	return addr >= s.Base && addr < s.Base+s.Size
}

// Truth is the ground-truth allocation map: every allocation the process
// has made (live and freed), searchable by address. This is the oracle the
// hardware checker co-processor consults.
type Truth struct {
	spans  []*Span // sorted by Base
	byPID  map[int64]*Span
	nextID int64
}

// NewTruth returns an empty ground-truth map.
func NewTruth() *Truth {
	return &Truth{byPID: make(map[int64]*Span), nextID: 1}
}

// Add records a new allocation and returns its assigned PID. Any stale
// spans overlapping the new range (freed chunks whose memory was reused)
// are dropped first.
func (t *Truth) Add(base, size uint64) int64 {
	if size == 0 {
		size = 1
	}
	t.removeOverlap(base, size)
	pid := t.nextID
	t.nextID++
	s := &Span{PID: pid, Base: base, Size: size, Live: true}
	i := t.search(base)
	t.spans = append(t.spans, nil)
	copy(t.spans[i+1:], t.spans[i:])
	t.spans[i] = s
	t.byPID[pid] = s
	return pid
}

// search returns the insertion index for base.
func (t *Truth) search(base uint64) int {
	lo, hi := 0, len(t.spans)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.spans[mid].Base < base {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (t *Truth) removeOverlap(base, size uint64) {
	end := base + size
	out := t.spans[:0]
	for _, s := range t.spans {
		if s.Base < end && base < s.Base+s.Size {
			delete(t.byPID, s.PID)
			continue
		}
		out = append(out, s)
	}
	t.spans = out
}

// Free marks the span with the given base as dead, returning its PID, or 0
// if no live span starts at base.
func (t *Truth) Free(base uint64) int64 {
	i := t.search(base)
	if i < len(t.spans) && t.spans[i].Base == base && t.spans[i].Live {
		t.spans[i].Live = false
		return t.spans[i].PID
	}
	return 0
}

// Find returns the span containing addr (live or freed), or nil.
func (t *Truth) Find(addr uint64) *Span {
	i := t.search(addr)
	// The span starting at or before addr may contain it.
	if i < len(t.spans) && t.spans[i].Base == addr {
		return t.spans[i]
	}
	if i > 0 && t.spans[i-1].Contains(addr) {
		return t.spans[i-1]
	}
	return nil
}

// ByPID returns the span with the given PID, or nil.
func (t *Truth) ByPID(pid int64) *Span { return t.byPID[pid] }

// Spans returns the current span list (live and freed), sorted by base.
func (t *Truth) Spans() []*Span { return t.spans }

// LiveCount returns the number of live spans.
func (t *Truth) LiveCount() int {
	n := 0
	for _, s := range t.spans {
		if s.Live {
			n++
		}
	}
	return n
}

// Options configures a Machine.
type Options struct {
	// Harts is the number of hardware threads executing the program; each
	// hart starts at its own entry label "thread<i>" if present, otherwise
	// all harts start at the program's first instruction. Defaults to 1.
	Harts int

	// RedzonePad, when nonzero, pads every allocation with a redzone of
	// this many bytes on each side (the ASan allocation policy).
	RedzonePad uint64

	// Quarantine, when true, delays reuse of freed chunks (the ASan
	// quarantine), increasing footprint.
	Quarantine bool

	// MaxInsts bounds total executed macro-ops across all harts
	// (0 = unlimited).
	MaxInsts uint64
}

// Hart is one hardware thread's architectural state.
type Hart struct {
	ID     int
	Regs   [isa.NumArchRegs]uint64
	Flags  isa.Flags
	RIP    uint64
	Halted bool

	// pendingExit holds the synthetic allocator exit to emit on the next
	// step for this hart.
	pendingExit *Rec
}

// Machine is the functional emulator for one simulated process.
type Machine struct {
	Prog  *asm.Program
	Mem   *mem.Memory
	Alloc *heap.Allocator
	Truth *Truth

	Harts []*Hart
	opts  Options

	seq        uint64
	totalInsts uint64
	rr         int // round-robin hart cursor

	quarantine []uint64

	// freeRecs is the trace-record free list: consumers that are done with
	// a record hand it back through Recycle, and Step reuses it instead of
	// allocating. Callers that never recycle (tests, one-shot probes) simply
	// get a fresh record per step, as before.
	freeRecs []*Rec

	// GlobalPIDs maps global symbol names to their ground-truth PIDs.
	GlobalPIDs map[string]int64

	// exitInsts are synthetic RET instructions at the allocator exit
	// addresses.
	exitInsts map[uint64]*isa.Inst
}

// New constructs a Machine for the program with the given options, loads
// the symbol table into the ground-truth map, and initializes hart state.
func New(p *asm.Program, opts Options) *Machine {
	if opts.Harts <= 0 {
		opts.Harts = 1
	}
	m := &Machine{
		Prog:       p,
		Mem:        mem.New(),
		Truth:      NewTruth(),
		opts:       opts,
		GlobalPIDs: make(map[string]int64),
		exitInsts:  make(map[uint64]*isa.Inst),
	}
	m.Alloc = heap.New(m.Mem)
	for _, ex := range []uint64{heap.MallocExit, heap.FreeExit, heap.CallocExit, heap.ReallocExit} {
		m.exitInsts[ex] = &isa.Inst{Op: isa.RET, Addr: ex, EncLen: 4}
	}
	for _, g := range p.Globals {
		pid := m.Truth.Add(g.Addr, g.Size)
		m.GlobalPIDs[g.Name] = pid
		m.Mem.TouchRange(g.Addr, g.Size)
	}
	for _, d := range p.Data {
		m.Mem.WriteU64(d.Addr, d.Val)
	}
	for _, r := range p.Relocs {
		for _, g := range p.Globals {
			if g.Name == r.Target {
				m.Mem.WriteU64(r.Slot, g.Addr)
				break
			}
		}
	}
	for i := 0; i < opts.Harts; i++ {
		h := &Hart{ID: i}
		h.Regs[isa.RSP] = mem.StackTop - uint64(i)*(8<<20)
		h.RIP = p.TextBase
		if a, ok := p.Lookup(fmt.Sprintf("thread%d", i)); ok {
			h.RIP = a
		}
		m.Harts = append(m.Harts, h)
	}
	return m
}

// Done reports whether all harts have halted.
func (m *Machine) Done() bool {
	for _, h := range m.Harts {
		if !h.Halted {
			return false
		}
	}
	return true
}

// TotalInsts returns the number of macro-ops executed so far.
func (m *Machine) TotalInsts() uint64 { return m.totalInsts }

// newRec returns a zeroed trace record, reusing one from the free list
// when available.
func (m *Machine) newRec() *Rec {
	if n := len(m.freeRecs); n > 0 {
		rec := m.freeRecs[n-1]
		m.freeRecs = m.freeRecs[:n-1]
		*rec = Rec{}
		return rec
	}
	return &Rec{}
}

// Recycle returns a record obtained from Step to the machine's free list.
// The caller must not retain any pointer to rec afterwards: the next Step
// may reuse and overwrite it. Recycling is optional — a caller that keeps
// records simply leaves the free list empty.
func (m *Machine) Recycle(rec *Rec) {
	if rec == nil {
		return
	}
	m.freeRecs = append(m.freeRecs, rec)
}

// Step executes one macro-op on the next runnable hart (round-robin) and
// returns its trace record. It returns (nil, nil) when all harts have
// halted or the instruction budget is exhausted, and a *Fault error on a
// functional memory fault.
func (m *Machine) Step() (*Rec, error) {
	if m.opts.MaxInsts > 0 && m.totalInsts >= m.opts.MaxInsts {
		return nil, nil
	}
	for tries := 0; tries < len(m.Harts); tries++ {
		h := m.Harts[m.rr]
		m.rr = (m.rr + 1) % len(m.Harts)
		if h.Halted {
			continue
		}
		return m.stepHart(h)
	}
	return nil, nil
}

func (m *Machine) readMem(h *Hart, addr uint64) (uint64, error) {
	if mem.IsShadow(addr) {
		return 0, &Fault{Kind: FaultShadowLoad, Core: h.ID, Addr: addr, RIP: h.RIP, Msg: "load from privileged shadow space"}
	}
	return m.Mem.ReadU64(addr), nil
}

func (m *Machine) writeMem(h *Hart, addr, v uint64) error {
	if mem.IsShadow(addr) {
		return &Fault{Kind: FaultShadowStore, Core: h.ID, Addr: addr, RIP: h.RIP, Msg: "store to privileged shadow space"}
	}
	m.Mem.WriteU64(addr, v)
	return nil
}

func (h *Hart) ea(ref isa.MemRef) uint64 {
	var a uint64
	if ref.Base.Valid() && ref.Base.Arch() {
		a = h.Regs[ref.Base]
	}
	if ref.Index.Valid() && ref.Index.Arch() {
		sc := uint64(ref.Scale)
		if sc == 0 {
			sc = 1
		}
		a += h.Regs[ref.Index] * sc
	}
	return a + uint64(ref.Disp)
}

func (h *Hart) operandVal(m *Machine, o isa.Operand) (uint64, uint64, bool, error) {
	switch o.Kind {
	case isa.OpReg:
		return h.Regs[o.Reg], 0, false, nil
	case isa.OpImm:
		return uint64(o.Imm), 0, false, nil
	case isa.OpMem:
		a := h.ea(o.Mem)
		v, err := m.readMem(h, a)
		return v, a, true, err
	}
	return 0, 0, false, nil
}

func setFlagsLogic(result uint64) isa.Flags {
	var f isa.Flags
	if result == 0 {
		f |= isa.FlagZ
	}
	if int64(result) < 0 {
		f |= isa.FlagS
	}
	return f
}

func setFlagsAdd(a, b, r uint64) isa.Flags {
	f := setFlagsLogic(r)
	if r < a {
		f |= isa.FlagC
	}
	if (a^r)&(b^r)&(1<<63) != 0 {
		f |= isa.FlagO
	}
	return f
}

func setFlagsSub(a, b, r uint64) isa.Flags {
	f := setFlagsLogic(r)
	if a < b {
		f |= isa.FlagC
	}
	if (a^b)&(a^r)&(1<<63) != 0 {
		f |= isa.FlagO
	}
	return f
}

func (m *Machine) stepHart(h *Hart) (*Rec, error) {
	// Emit a pending synthetic allocator-exit record first.
	if h.pendingExit != nil {
		rec := h.pendingExit
		h.pendingExit = nil
		m.seq++
		m.totalInsts++
		rec.Seq = m.seq
		return rec, nil
	}

	in := m.Prog.At(h.RIP)
	if in == nil {
		if ex, ok := m.exitInsts[h.RIP]; ok {
			in = ex
		} else {
			return nil, &Fault{Kind: FaultBadRIP, Core: h.ID, Addr: h.RIP, RIP: h.RIP, Msg: "rip outside program text"}
		}
	}
	m.seq++
	m.totalInsts++
	rec := m.newRec()
	rec.Seq, rec.Core, rec.Inst, rec.Target = m.seq, h.ID, in, in.NextAddr()

	adv := func() { h.RIP = in.NextAddr(); rec.Target = h.RIP }

	switch in.Op {
	case isa.NOP:
		adv()

	case isa.HLT:
		h.Halted = true
		rec.Event = EvHalt
		adv()

	case isa.MOV:
		val, srcEA, srcMem, err := h.operandVal(m, in.Src)
		if err != nil {
			return nil, err
		}
		switch in.Dst.Kind {
		case isa.OpReg:
			h.Regs[in.Dst.Reg] = val
			rec.Val, rec.HasVal = val, true
			if srcMem {
				rec.EA, rec.HasEA = srcEA, true
			}
		case isa.OpMem:
			a := h.ea(in.Dst.Mem)
			if err := m.writeMem(h, a, val); err != nil {
				return nil, err
			}
			rec.EA, rec.HasEA = a, true
			rec.StoreVal = val
		}
		adv()

	case isa.MOVB:
		switch {
		case in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpMem:
			a := h.ea(in.Src.Mem)
			if mem.IsShadow(a) {
				return nil, &Fault{Kind: FaultShadowLoad, Core: h.ID, Addr: a, RIP: h.RIP, Msg: "byte load from privileged shadow space"}
			}
			v := uint64(m.Mem.ReadU8(a))
			h.Regs[in.Dst.Reg] = v
			rec.EA, rec.HasEA = a, true
			rec.Val, rec.HasVal = v, true
		case in.Dst.Kind == isa.OpMem && in.Src.Kind == isa.OpReg:
			a := h.ea(in.Dst.Mem)
			if mem.IsShadow(a) {
				return nil, &Fault{Kind: FaultShadowStore, Core: h.ID, Addr: a, RIP: h.RIP, Msg: "byte store to privileged shadow space"}
			}
			m.Mem.WriteU8(a, byte(h.Regs[in.Src.Reg]))
			rec.EA, rec.HasEA = a, true
			rec.StoreVal = h.Regs[in.Src.Reg] & 0xFF
		default:
			return nil, &Fault{Kind: FaultBadOpcode, Core: h.ID, Addr: h.RIP, RIP: h.RIP, Msg: "unsupported movb form"}
		}
		adv()

	case isa.LEA:
		a := h.ea(in.Src.Mem)
		h.Regs[in.Dst.Reg] = a
		rec.Val, rec.HasVal = a, true
		adv()

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.IMUL, isa.SHL, isa.SHR,
		isa.CMP, isa.TEST, isa.FADD, isa.FMUL, isa.FDIV:
		if err := m.execALU(h, in, rec); err != nil {
			return nil, err
		}
		adv()

	case isa.INC, isa.DEC, isa.NEG, isa.NOT:
		v := h.Regs[in.Dst.Reg]
		var r uint64
		switch in.Op {
		case isa.INC:
			r = v + 1
		case isa.DEC:
			r = v - 1
		case isa.NEG:
			r = -v
		case isa.NOT:
			r = ^v
		}
		h.Regs[in.Dst.Reg] = r
		if in.Op.WritesFlags() {
			// INC/DEC preserve CF, like x86.
			cf := h.Flags & isa.FlagC
			f := setFlagsLogic(r)
			if in.Op == isa.NEG && v != 0 {
				cf = isa.FlagC
			}
			h.Flags = f | cf
		}
		rec.Val, rec.HasVal = r, true
		adv()

	case isa.XCHG:
		switch {
		case in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpReg:
			a, b := in.Dst.Reg, in.Src.Reg
			h.Regs[a], h.Regs[b] = h.Regs[b], h.Regs[a]
			rec.Val, rec.HasVal = h.Regs[a], true
		case in.Dst.Kind == isa.OpMem && in.Src.Kind == isa.OpReg:
			a := h.ea(in.Dst.Mem)
			old, err := m.readMem(h, a)
			if err != nil {
				return nil, err
			}
			if err := m.writeMem(h, a, h.Regs[in.Src.Reg]); err != nil {
				return nil, err
			}
			rec.StoreVal = h.Regs[in.Src.Reg]
			h.Regs[in.Src.Reg] = old
			rec.EA, rec.HasEA = a, true
			rec.Val, rec.HasVal = old, true
		default:
			return nil, &Fault{Kind: FaultBadOpcode, Core: h.ID, Addr: h.RIP, RIP: h.RIP, Msg: "unsupported xchg form"}
		}
		adv()

	case isa.PUSH:
		h.Regs[isa.RSP] -= 8
		a := h.Regs[isa.RSP]
		v := h.Regs[in.Dst.Reg]
		if err := m.writeMem(h, a, v); err != nil {
			return nil, err
		}
		rec.EA, rec.HasEA = a, true
		rec.StoreVal = v
		adv()

	case isa.POP:
		a := h.Regs[isa.RSP]
		v, err := m.readMem(h, a)
		if err != nil {
			return nil, err
		}
		h.Regs[in.Dst.Reg] = v
		h.Regs[isa.RSP] += 8
		rec.EA, rec.HasEA = a, true
		rec.Val, rec.HasVal = v, true
		adv()

	case isa.CALL:
		target := in.Target
		if in.Dst.Kind == isa.OpReg {
			target = h.Regs[in.Dst.Reg]
		}
		h.Regs[isa.RSP] -= 8
		ra := in.NextAddr()
		if err := m.writeMem(h, h.Regs[isa.RSP], ra); err != nil {
			return nil, err
		}
		rec.EA, rec.HasEA = h.Regs[isa.RSP], true
		rec.StoreVal = ra
		rec.Taken = true
		rec.Target = target
		h.RIP = target
		m.interceptAlloc(h, rec, target)

	case isa.RET:
		a := h.Regs[isa.RSP]
		ra, err := m.readMem(h, a)
		if err != nil {
			return nil, err
		}
		h.Regs[isa.RSP] += 8
		rec.EA, rec.HasEA = a, true
		rec.Val, rec.HasVal = ra, true
		rec.Taken = true
		rec.Target = ra
		h.RIP = ra

	case isa.JMP:
		target := in.Target
		if in.Dst.Kind == isa.OpReg {
			target = h.Regs[in.Dst.Reg]
		}
		rec.Taken = true
		rec.Target = target
		h.RIP = target

	case isa.JCC:
		if in.Cond.Eval(h.Flags) {
			rec.Taken = true
			rec.Target = in.Target
			h.RIP = in.Target
		} else {
			adv()
		}

	default:
		return nil, &Fault{Kind: FaultBadOpcode, Core: h.ID, Addr: h.RIP, RIP: h.RIP, Msg: "unimplemented opcode " + in.Op.String()}
	}
	return rec, nil
}

func (m *Machine) execALU(h *Hart, in *isa.Inst, rec *Rec) error {
	src, srcEA, srcMem, err := h.operandVal(m, in.Src)
	if err != nil {
		return err
	}
	var dst uint64
	var dstEA uint64
	dstMem := false
	switch in.Dst.Kind {
	case isa.OpReg:
		dst = h.Regs[in.Dst.Reg]
	case isa.OpMem:
		dstEA = h.ea(in.Dst.Mem)
		dstMem = true
		dst, err = m.readMem(h, dstEA)
		if err != nil {
			return err
		}
	}

	var r uint64
	var f isa.Flags
	switch in.Op {
	case isa.ADD, isa.FADD:
		r = dst + src
		f = setFlagsAdd(dst, src, r)
	case isa.SUB:
		r = dst - src
		f = setFlagsSub(dst, src, r)
	case isa.AND, isa.TEST:
		r = dst & src
		f = setFlagsLogic(r)
	case isa.OR:
		r = dst | src
		f = setFlagsLogic(r)
	case isa.XOR:
		r = dst ^ src
		f = setFlagsLogic(r)
	case isa.IMUL, isa.FMUL:
		r = dst * src
		f = setFlagsLogic(r)
	case isa.FDIV:
		if src == 0 {
			r = ^uint64(0)
		} else {
			r = dst / src
		}
		f = setFlagsLogic(r)
	case isa.SHL:
		r = dst << (src & 63)
		f = setFlagsLogic(r)
	case isa.SHR:
		r = dst >> (src & 63)
		f = setFlagsLogic(r)
	case isa.CMP:
		r = dst - src
		f = setFlagsSub(dst, src, r)
	}
	if in.Op.WritesFlags() {
		h.Flags = f
	}

	switch in.Op {
	case isa.CMP, isa.TEST:
		// Flags only; report the source memory access if any.
		if srcMem {
			rec.EA, rec.HasEA = srcEA, true
		} else if dstMem {
			rec.EA, rec.HasEA = dstEA, true
		}
		return nil
	}

	if dstMem {
		if err := m.writeMem(h, dstEA, r); err != nil {
			return err
		}
		rec.EA, rec.HasEA = dstEA, true
		rec.StoreVal = r
	} else {
		h.Regs[in.Dst.Reg] = r
		rec.Val, rec.HasVal = r, true
		if srcMem {
			rec.EA, rec.HasEA = srcEA, true
		}
	}
	return nil
}

// interceptAlloc handles CALLs whose target is a registered heap-management
// entry point: it runs the allocator natively, annotates the CALL record as
// the entry interception, and queues a synthetic exit record.
func (m *Machine) interceptAlloc(h *Hart, rec *Rec, target uint64) {
	switch target {
	case heap.MallocEntry, heap.CallocEntry, heap.ReallocEntry:
		var size, ptr uint64
		var exitAddr uint64
		switch target {
		case heap.MallocEntry:
			size = h.Regs[isa.RDI]
			ptr = m.mallocPolicy(size)
			exitAddr = heap.MallocExit
		case heap.CallocEntry:
			size = h.Regs[isa.RDI] * h.Regs[isa.RSI]
			ptr = m.callocPolicy(h.Regs[isa.RDI], h.Regs[isa.RSI])
			exitAddr = heap.CallocExit
		case heap.ReallocEntry:
			size = h.Regs[isa.RSI]
			old := h.Regs[isa.RDI]
			rec.AllocBase = old // the pointer being released
			if old != 0 {
				m.Truth.Free(old)
			}
			ptr = m.Alloc.Realloc(old, size)
			exitAddr = heap.ReallocExit
		}
		rec.Event = EvAllocEnter
		rec.AllocSize = size

		var pid int64
		if ptr != 0 {
			pid = m.Truth.Add(ptr, size)
		}
		rec.AllocPID = pid
		h.Regs[isa.RAX] = ptr
		exit := m.newRec()
		exit.Core, exit.Inst = h.ID, m.exitInsts[exitAddr]
		exit.Event, exit.AllocPID, exit.AllocBase, exit.AllocSize = EvAllocExit, pid, ptr, size
		exit.Val, exit.HasVal = ptr, true
		exit.EA, exit.HasEA = h.Regs[isa.RSP], true
		exit.Taken = true
		h.pendingExit = exit
		// The synthetic exit RET pops the return address pushed by CALL.
		ra := m.Mem.ReadU64(h.Regs[isa.RSP])
		h.pendingExit.Target = ra
		h.Regs[isa.RSP] += 8
		h.RIP = ra

	case heap.FreeEntry:
		ptr := h.Regs[isa.RDI]
		rec.Event = EvFreeEnter
		rec.AllocBase = ptr
		pid := m.Truth.Free(ptr)
		rec.AllocPID = pid
		m.freePolicy(ptr)
		exit := m.newRec()
		exit.Core, exit.Inst = h.ID, m.exitInsts[heap.FreeExit]
		exit.Event, exit.AllocPID, exit.AllocBase = EvFreeExit, pid, ptr
		exit.EA, exit.HasEA = h.Regs[isa.RSP], true
		exit.Taken = true
		h.pendingExit = exit
		ra := m.Mem.ReadU64(h.Regs[isa.RSP])
		h.pendingExit.Target = ra
		h.Regs[isa.RSP] += 8
		h.RIP = ra
	}
}

func (m *Machine) mallocPolicy(size uint64) uint64 {
	if m.opts.RedzonePad > 0 {
		p := m.Alloc.Malloc(size + 2*m.opts.RedzonePad)
		if p == 0 {
			return 0
		}
		// Touch redzones so they contribute to RSS like poisoned shadow.
		m.Mem.TouchRange(p, m.opts.RedzonePad)
		m.Mem.TouchRange(p+m.opts.RedzonePad+size, m.opts.RedzonePad)
		return p + m.opts.RedzonePad
	}
	return m.Alloc.Malloc(size)
}

func (m *Machine) callocPolicy(count, size uint64) uint64 {
	if m.opts.RedzonePad > 0 {
		top := m.Alloc.Top()
		p := m.mallocPolicy(count * size)
		if p == 0 || p >= top {
			return p // fresh wilderness is already zero
		}
		for off := uint64(0); off < count*size; off += 8 {
			m.Mem.WriteU64(p+off, 0)
		}
		return p
	}
	return m.Alloc.Calloc(count, size)
}

func (m *Machine) freePolicy(ptr uint64) {
	if ptr == 0 {
		return
	}
	real := ptr
	if m.opts.RedzonePad > 0 {
		real = ptr - m.opts.RedzonePad
	}
	if m.opts.Quarantine {
		m.quarantine = append(m.quarantine, real)
		if len(m.quarantine) > 256 {
			m.Alloc.Free(m.quarantine[0])
			m.quarantine = m.quarantine[1:]
		}
		return
	}
	m.Alloc.Free(real)
}
