package emu

import (
	"testing"
	"testing/quick"

	"chex86/internal/asm"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/mem"
)

// runToHalt executes the program and returns the machine plus all records.
func runToHalt(t *testing.T, p *asm.Program) (*Machine, []*Rec) {
	t.Helper()
	m := New(p, Options{MaxInsts: 100_000})
	var recs []*Rec
	for {
		rec, err := m.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if rec == nil {
			return m, recs
		}
		recs = append(recs, rec)
	}
}

func TestALUSemantics(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RAX, 10)
	b.MovRI(isa.RBX, 3)
	b.AddRR(isa.RAX, isa.RBX)                           // 13
	b.SubRI(isa.RAX, 1)                                 // 12
	b.Alu(isa.IMUL, isa.RegOp(isa.RAX), isa.ImmOp(5))   // 60
	b.Alu(isa.SHL, isa.RegOp(isa.RAX), isa.ImmOp(2))    // 240
	b.Alu(isa.SHR, isa.RegOp(isa.RAX), isa.ImmOp(1))    // 120
	b.Alu(isa.XOR, isa.RegOp(isa.RAX), isa.ImmOp(7))    // 127
	b.Alu(isa.AND, isa.RegOp(isa.RAX), isa.ImmOp(0xf0)) // 112
	b.Alu(isa.OR, isa.RegOp(isa.RAX), isa.ImmOp(1))     // 113
	b.Hlt()
	m, _ := runToHalt(t, b.MustBuild())
	if got := m.Harts[0].Regs[isa.RAX]; got != 113 {
		t.Fatalf("ALU chain produced %d, want 113", got)
	}
}

func TestFlagsAndBranches(t *testing.T) {
	// Count down from 5; the loop must execute exactly 5 times.
	b := asm.NewBuilder()
	b.MovRI(isa.RCX, 5)
	b.MovRI(isa.RAX, 0)
	b.Label("loop")
	b.AddRI(isa.RAX, 1)
	b.SubRI(isa.RCX, 1)
	b.CmpRI(isa.RCX, 0)
	b.Jcc(isa.CondG, "loop")
	b.Hlt()
	m, _ := runToHalt(t, b.MustBuild())
	if m.Harts[0].Regs[isa.RAX] != 5 {
		t.Fatalf("loop ran %d times", m.Harts[0].Regs[isa.RAX])
	}
}

func TestSignedUnsignedComparisons(t *testing.T) {
	// -1 < 1 signed, but 0xffff... > 1 unsigned.
	b := asm.NewBuilder()
	b.MovRI(isa.RAX, -1)
	b.CmpRI(isa.RAX, 1)
	b.MovRI(isa.RBX, 0)
	b.Jcc(isa.CondL, "signedLess")
	b.Hlt()
	b.Label("signedLess")
	b.MovRI(isa.RBX, 1)
	b.CmpRI(isa.RAX, 1)
	b.Jcc(isa.CondA, "unsignedAbove")
	b.Hlt()
	b.Label("unsignedAbove")
	b.AddRI(isa.RBX, 1)
	b.Hlt()
	m, _ := runToHalt(t, b.MustBuild())
	if m.Harts[0].Regs[isa.RBX] != 2 {
		t.Fatalf("comparison semantics wrong: rbx=%d", m.Harts[0].Regs[isa.RBX])
	}
}

func TestStackOpsAndCalls(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RAX, 42)
	b.Push(isa.RAX)
	b.MovRI(isa.RAX, 0)
	b.Pop(isa.RBX)
	b.Call("fn")
	b.Hlt()
	b.Label("fn")
	b.AddRI(isa.RBX, 1)
	b.Ret()
	m, _ := runToHalt(t, b.MustBuild())
	h := m.Harts[0]
	if h.Regs[isa.RBX] != 43 {
		t.Fatalf("push/pop/call/ret chain: rbx=%d", h.Regs[isa.RBX])
	}
	if h.Regs[isa.RSP] != mem.StackTop {
		t.Fatalf("stack pointer must balance, rsp=%#x", h.Regs[isa.RSP])
	}
}

func TestIndirectControlFlow(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RAX, 0)
	b.Lea(isa.RBX, isa.MemOp(isa.RNone, 0)) // placeholder; replaced below via label math
	b.Nop()
	b.Hlt()
	b.Label("target")
	b.MovRI(isa.RAX, 7)
	b.Hlt()
	p := b.MustBuild()
	// Patch the LEA displacement with the resolved label (an address
	// materialized through address arithmetic, like a jump table would).
	p.Insts[1].Src.Mem.Disp = int64(p.MustLookup("target"))
	p.Insts[2] = isa.Inst{Op: isa.JMP, Dst: isa.RegOp(isa.RBX),
		Addr: p.Insts[2].Addr, EncLen: p.Insts[2].EncLen}
	m, _ := runToHalt(t, p)
	if m.Harts[0].Regs[isa.RAX] != 7 {
		t.Fatal("indirect jump did not reach the target")
	}
}

func TestAllocatorInterception(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RDI, 64)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RDX, 123)
	b.Store(isa.RBX, 0, isa.RDX)
	b.MovRR(isa.RDI, isa.RBX)
	b.CallAddr(heap.FreeEntry)
	b.Hlt()
	m, recs := runToHalt(t, b.MustBuild())

	var enter, exit, fenter, fexit int
	var pid int64
	for _, r := range recs {
		switch r.Event {
		case EvAllocEnter:
			enter++
			pid = r.AllocPID
			if r.AllocSize != 64 {
				t.Errorf("alloc size %d", r.AllocSize)
			}
		case EvAllocExit:
			exit++
			if r.AllocBase == 0 || r.AllocPID != pid {
				t.Error("alloc exit record inconsistent")
			}
		case EvFreeEnter:
			fenter++
			if r.AllocPID != pid {
				t.Errorf("free of pid %d, want %d", r.AllocPID, pid)
			}
		case EvFreeExit:
			fexit++
		}
	}
	if enter != 1 || exit != 1 || fenter != 1 || fexit != 1 {
		t.Fatalf("event counts: %d %d %d %d", enter, exit, fenter, fexit)
	}
	if span := m.Truth.ByPID(pid); span == nil || span.Live {
		t.Fatal("truth map must retain the freed span as dead")
	}
	if m.Mem.ReadU64(m.Truth.ByPID(pid).Base) == 123 {
		// The free pushed an fd link over the first word; either way the
		// memory belongs to the allocator now. Just ensure the store
		// happened at some point by checking the record stream.
		_ = m
	}
}

func TestShadowHalfFaults(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RAX, -1) // 0xffffffffffffffff: deep in the shadow half
	b.Load(isa.RBX, isa.RAX, 0)
	b.Hlt()
	m := New(b.MustBuild(), Options{})
	for {
		rec, err := m.Step()
		if err != nil {
			if _, ok := err.(*Fault); !ok {
				t.Fatalf("expected a Fault, got %T", err)
			}
			return
		}
		if rec == nil {
			t.Fatal("guest read the privileged shadow half without faulting")
		}
	}
}

func TestLoaderAppliesDataAndRelocs(t *testing.T) {
	b := asm.NewBuilder()
	g := uint64(mem.GlobalBase)
	b.Global("obj", g, 32)
	b.Global("slot", g+64, 8)
	b.Reloc(g+64, "obj")
	b.DataU64(g+8, 777)
	b.Hlt()
	m, _ := runToHalt(t, b.MustBuild())
	if m.Mem.ReadU64(g+64) != g {
		t.Fatal("relocation not applied")
	}
	if m.Mem.ReadU64(g+8) != 777 {
		t.Fatal("data initializer not applied")
	}
	if m.GlobalPIDs["obj"] == 0 {
		t.Fatal("global did not receive a ground-truth PID")
	}
}

func TestMultiHartRoundRobin(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("thread0")
	b.MovRI(isa.RAX, 1)
	b.Hlt()
	b.Label("thread1")
	b.MovRI(isa.RAX, 2)
	b.Nop()
	b.Hlt()
	m := New(b.MustBuild(), Options{Harts: 2})
	cores := map[int]int{}
	for {
		rec, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		cores[rec.Core]++
	}
	if cores[0] != 2 || cores[1] != 3 {
		t.Fatalf("per-hart instruction counts: %v", cores)
	}
	if m.Harts[0].Regs[isa.RAX] != 1 || m.Harts[1].Regs[isa.RAX] != 2 {
		t.Fatal("harts must have private register state")
	}
	if !m.Done() {
		t.Fatal("all harts halted, machine should be done")
	}
}

// TestTruthMapProperty: for arbitrary allocation layouts, Find resolves
// every in-span address to the right PID and misses gaps.
func TestTruthMapProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		tr := NewTruth()
		base := uint64(0x1000)
		type s struct {
			pid  int64
			base uint64
			size uint64
		}
		var spans []s
		for _, raw := range sizes {
			size := uint64(raw)%120 + 8
			pid := tr.Add(base, size)
			spans = append(spans, s{pid, base, size})
			base += size + 16 // leave a gap
		}
		for _, sp := range spans {
			if got := tr.Find(sp.base); got == nil || got.PID != sp.pid {
				return false
			}
			if got := tr.Find(sp.base + sp.size - 1); got == nil || got.PID != sp.pid {
				return false
			}
			if tr.Find(sp.base+sp.size) != nil && tr.Find(sp.base+sp.size).PID == sp.pid {
				return false // one past the end must not match this span
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTruthOverlapRemoval(t *testing.T) {
	tr := NewTruth()
	p1 := tr.Add(0x1000, 64)
	tr.Free(0x1000)
	p2 := tr.Add(0x1000, 32) // reuse: must displace the dead span
	if tr.ByPID(p1) != nil {
		t.Fatal("overlapped dead span must be dropped")
	}
	if got := tr.Find(0x1000); got == nil || got.PID != p2 {
		t.Fatal("new span must win")
	}
}

func TestMaxInstsBudget(t *testing.T) {
	b := asm.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	m := New(b.MustBuild(), Options{MaxInsts: 100})
	n := 0
	for {
		rec, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("budget of 100 executed %d", n)
	}
}

func TestIncDecNegNot(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RAX, 10)
	b.Inc(isa.RAX) // 11
	b.Inc(isa.RAX) // 12
	b.Dec(isa.RAX) // 11
	b.MovRI(isa.RBX, 5)
	b.Neg(isa.RBX) // -5
	b.MovRI(isa.RCX, 0)
	b.Not(isa.RCX) // ^0
	b.Hlt()
	m, _ := runToHalt(t, b.MustBuild())
	h := m.Harts[0]
	if h.Regs[isa.RAX] != 11 {
		t.Fatalf("inc/dec chain: %d", h.Regs[isa.RAX])
	}
	if int64(h.Regs[isa.RBX]) != -5 {
		t.Fatalf("neg: %d", int64(h.Regs[isa.RBX]))
	}
	if h.Regs[isa.RCX] != ^uint64(0) {
		t.Fatalf("not: %#x", h.Regs[isa.RCX])
	}
}

// TestIncPreservesCarry pins the x86 nuance INC/DEC do not touch CF.
func TestIncPreservesCarry(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RAX, -1)
	b.AddRI(isa.RAX, 2) // wraps: CF set
	b.Inc(isa.RBX)      // must preserve CF
	b.Jcc(isa.CondB, "carried")
	b.MovRI(isa.RDX, 0)
	b.Hlt()
	b.Label("carried")
	b.MovRI(isa.RDX, 1)
	b.Hlt()
	m, _ := runToHalt(t, b.MustBuild())
	if m.Harts[0].Regs[isa.RDX] != 1 {
		t.Fatal("inc clobbered the carry flag")
	}
}

func TestXchgForms(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RAX, 1)
	b.MovRI(isa.RBX, 2)
	b.Xchg(isa.RAX, isa.RBX)
	// Memory form: swap rax with a word on the stack.
	b.MovRI(isa.RDX, 99)
	b.Push(isa.RDX)
	b.XchgMem(isa.RSP, 0, isa.RAX)
	b.Pop(isa.RCX)
	b.Hlt()
	m, _ := runToHalt(t, b.MustBuild())
	h := m.Harts[0]
	if h.Regs[isa.RAX] != 99 || h.Regs[isa.RBX] != 1 || h.Regs[isa.RCX] != 2 {
		t.Fatalf("xchg results: rax=%d rbx=%d rcx=%d", h.Regs[isa.RAX], h.Regs[isa.RBX], h.Regs[isa.RCX])
	}
}

// TestAddSubFlagsProperty checks ADD/SUB flag semantics against direct
// evaluation over arbitrary operand pairs, via guest comparisons.
func TestAddSubFlagsProperty(t *testing.T) {
	f := func(a, bv int64) bool {
		b := asm.NewBuilder()
		b.MovRI(isa.RAX, a)
		b.CmpRI(isa.RAX, bv)
		// Collect all signed/unsigned relations via branches.
		b.MovRI(isa.RDX, 0)
		b.Jcc(isa.CondL, "sl")
		b.Jmp("ck2")
		b.Label("sl")
		b.Alu(isa.OR, isa.RegOp(isa.RDX), isa.ImmOp(1))
		b.Label("ck2")
		b.CmpRI(isa.RAX, bv)
		b.Jcc(isa.CondB, "ub")
		b.Jmp("ck3")
		b.Label("ub")
		b.Alu(isa.OR, isa.RegOp(isa.RDX), isa.ImmOp(2))
		b.Label("ck3")
		b.CmpRI(isa.RAX, bv)
		b.Jcc(isa.CondE, "eq")
		b.Jmp("done")
		b.Label("eq")
		b.Alu(isa.OR, isa.RegOp(isa.RDX), isa.ImmOp(4))
		b.Label("done")
		b.Hlt()
		m, _ := runToHalt(t, b.MustBuild())
		got := m.Harts[0].Regs[isa.RDX]
		var want uint64
		if a < bv {
			want |= 1
		}
		if uint64(a) < uint64(bv) {
			want |= 2
		}
		if a == bv {
			want |= 4
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestByteAccessSemantics: a byte store modifies exactly one byte of the
// containing word, and a byte load zero-extends into the full register.
func TestByteAccessSemantics(t *testing.T) {
	b := asm.NewBuilder()
	addr := uint64(mem.GlobalBase)
	b.Global("word", addr, 8)
	b.MovRI(isa.RBX, int64(addr))
	b.MovRI(isa.RDX, 0x1122334455667788)
	b.Store(isa.RBX, 0, isa.RDX)
	b.MovRI(isa.RDX, 0x1FF) // only the low byte (0xFF) must land
	b.StoreB(isa.RBX, 2, isa.RDX)
	b.Load(isa.RAX, isa.RBX, 0)  // whole word back
	b.LoadB(isa.RCX, isa.RBX, 7) // top byte, zero-extended
	b.LoadB(isa.RSI, isa.RBX, 2) // the byte just written
	b.Hlt()
	m, _ := runToHalt(t, b.MustBuild())
	h := m.Harts[0]
	if got, want := h.Regs[isa.RAX], uint64(0x11223344_55FF7788); got != want {
		t.Errorf("word after byte store = %#x, want %#x", got, want)
	}
	if got := h.Regs[isa.RCX]; got != 0x11 {
		t.Errorf("byte load of top byte = %#x, want 0x11 (zero-extended)", got)
	}
	if got := h.Regs[isa.RSI]; got != 0xFF {
		t.Errorf("byte load of stored byte = %#x, want 0xFF", got)
	}
}

// TestByteAccessRecords: MOVB records carry Size=1 so the timing model can
// apply width-aware capability checks.
func TestByteAccessRecords(t *testing.T) {
	b := asm.NewBuilder()
	addr := uint64(mem.GlobalBase)
	b.Global("g", addr, 8)
	b.MovRI(isa.RBX, int64(addr))
	b.MovRI(isa.RDX, 7)
	b.StoreB(isa.RBX, 1, isa.RDX)
	b.LoadB(isa.RAX, isa.RBX, 1)
	b.Hlt()
	_, recs := runToHalt(t, b.MustBuild())
	var sawLoad, sawStore bool
	for _, r := range recs {
		if r.Inst.Op != isa.MOVB {
			continue
		}
		if r.Inst.Dst.Kind == isa.OpMem {
			sawStore = true
		} else {
			sawLoad = true
		}
		if r.EA != addr+1 {
			t.Errorf("MOVB EA = %#x, want %#x", r.EA, addr+1)
		}
	}
	if !sawLoad || !sawStore {
		t.Fatalf("expected both MOVB load and store records (load=%v store=%v)", sawLoad, sawStore)
	}
}
