package emu

import (
	"fmt"
	"strings"

	"chex86/internal/isa"
)

// HartState is a plain-data copy of one hart's architectural state.
type HartState struct {
	ID     int
	Regs   [isa.NumArchRegs]uint64
	Flags  isa.Flags
	RIP    uint64
	Halted bool
}

// SpanState is a plain-data copy of one ground-truth allocation span.
type SpanState struct {
	PID  int64
	Base uint64
	Size uint64
	Live bool
}

// Snapshot is a plain-data copy of the machine's architecturally visible
// state: register files, the allocator frontier, and the ground-truth
// allocation map. It contains no pointers into the machine, so two
// snapshots from independently running machines can be compared field by
// field — the lockstep differential harness does exactly that at commit
// strides, with no reflection.
type Snapshot struct {
	Seq        uint64
	TotalInsts uint64
	HeapTop    uint64
	Harts      []HartState
	Spans      []SpanState
}

// Snapshot captures the machine's current architectural state.
func (m *Machine) Snapshot() Snapshot {
	s := Snapshot{
		Seq:        m.seq,
		TotalInsts: m.totalInsts,
		HeapTop:    m.Alloc.Top(),
		Harts:      make([]HartState, len(m.Harts)),
		Spans:      make([]SpanState, len(m.Truth.Spans())),
	}
	for i, h := range m.Harts {
		s.Harts[i] = HartState{ID: h.ID, Regs: h.Regs, Flags: h.Flags, RIP: h.RIP, Halted: h.Halted}
	}
	for i, sp := range m.Truth.Spans() {
		s.Spans[i] = SpanState{PID: sp.PID, Base: sp.Base, Size: sp.Size, Live: sp.Live}
	}
	return s
}

// Diff compares two snapshots and returns a human-readable description of
// every mismatching field, or nil when the snapshots are architecturally
// identical. Seq and TotalInsts are compared too: lockstepped machines
// must agree on how many instructions produced the state.
func (s Snapshot) Diff(o Snapshot) []string {
	var out []string
	add := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	if s.Seq != o.Seq {
		add("seq %d != %d", s.Seq, o.Seq)
	}
	if s.TotalInsts != o.TotalInsts {
		add("totalInsts %d != %d", s.TotalInsts, o.TotalInsts)
	}
	if s.HeapTop != o.HeapTop {
		add("heapTop %#x != %#x", s.HeapTop, o.HeapTop)
	}
	if len(s.Harts) != len(o.Harts) {
		add("hart count %d != %d", len(s.Harts), len(o.Harts))
	} else {
		for i := range s.Harts {
			a, b := s.Harts[i], o.Harts[i]
			if a.RIP != b.RIP {
				add("hart %d rip %#x != %#x", i, a.RIP, b.RIP)
			}
			if a.Flags != b.Flags {
				add("hart %d flags %v != %v", i, a.Flags, b.Flags)
			}
			if a.Halted != b.Halted {
				add("hart %d halted %v != %v", i, a.Halted, b.Halted)
			}
			for r := 0; r < isa.NumArchRegs; r++ {
				if a.Regs[r] != b.Regs[r] {
					add("hart %d %s %#x != %#x", i, isa.Reg(r), a.Regs[r], b.Regs[r])
				}
			}
		}
	}
	if len(s.Spans) != len(o.Spans) {
		add("span count %d != %d", len(s.Spans), len(o.Spans))
	} else {
		for i := range s.Spans {
			if s.Spans[i] != o.Spans[i] {
				add("span %d %+v != %+v", i, s.Spans[i], o.Spans[i])
			}
		}
	}
	return out
}

// Summary renders a one-line digest of the snapshot for divergence
// reports.
func (s Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seq=%d insts=%d heapTop=%#x", s.Seq, s.TotalInsts, s.HeapTop)
	live := 0
	for _, sp := range s.Spans {
		if sp.Live {
			live++
		}
	}
	fmt.Fprintf(&b, " spans=%d live=%d", len(s.Spans), live)
	for _, h := range s.Harts {
		fmt.Fprintf(&b, " h%d[rip=%#x halted=%v]", h.ID, h.RIP, h.Halted)
	}
	return b.String()
}
