package decode

import (
	"testing"

	"chex86/internal/core"
	"chex86/internal/isa"
)

func expand(t *testing.T, in isa.Inst) []isa.Uop {
	t.Helper()
	var d Decoder
	return d.Native(&in, nil)
}

func TestNativeExpansions(t *testing.T) {
	cases := []struct {
		name  string
		in    isa.Inst
		types []isa.UopType
	}{
		{"mov r,r", isa.Inst{Op: isa.MOV, Dst: isa.RegOp(isa.RAX), Src: isa.RegOp(isa.RBX)},
			[]isa.UopType{isa.UMov}},
		{"mov r,imm", isa.Inst{Op: isa.MOV, Dst: isa.RegOp(isa.RAX), Src: isa.ImmOp(5)},
			[]isa.UopType{isa.ULimm}},
		{"mov r,m", isa.Inst{Op: isa.MOV, Dst: isa.RegOp(isa.RAX), Src: isa.MemOp(isa.RBX, 0)},
			[]isa.UopType{isa.ULoad}},
		{"mov m,r", isa.Inst{Op: isa.MOV, Dst: isa.MemOp(isa.RBX, 0), Src: isa.RegOp(isa.RAX)},
			[]isa.UopType{isa.UStore}},
		{"mov m,imm", isa.Inst{Op: isa.MOV, Dst: isa.MemOp(isa.RBX, 0), Src: isa.ImmOp(5)},
			[]isa.UopType{isa.ULimm, isa.UStore}},
		{"lea", isa.Inst{Op: isa.LEA, Dst: isa.RegOp(isa.RAX), Src: isa.MemOp(isa.RBX, 8)},
			[]isa.UopType{isa.ULea}},
		{"add r,r", isa.Inst{Op: isa.ADD, Dst: isa.RegOp(isa.RAX), Src: isa.RegOp(isa.RBX)},
			[]isa.UopType{isa.UAlu}},
		{"add r,m (load-op)", isa.Inst{Op: isa.ADD, Dst: isa.RegOp(isa.RAX), Src: isa.MemOp(isa.RBX, 0)},
			[]isa.UopType{isa.ULoad, isa.UAlu}},
		{"add m,r (rmw)", isa.Inst{Op: isa.ADD, Dst: isa.MemOp(isa.RBX, 0), Src: isa.RegOp(isa.RAX)},
			[]isa.UopType{isa.ULoad, isa.UAlu, isa.UStore}},
		{"cmp r,m", isa.Inst{Op: isa.CMP, Dst: isa.RegOp(isa.RAX), Src: isa.MemOp(isa.RBX, 0)},
			[]isa.UopType{isa.ULoad, isa.UAlu}},
		{"cmp m,imm (no store)", isa.Inst{Op: isa.CMP, Dst: isa.MemOp(isa.RBX, 0), Src: isa.ImmOp(1)},
			[]isa.UopType{isa.ULoad, isa.UAlu}},
		{"push", isa.Inst{Op: isa.PUSH, Dst: isa.RegOp(isa.RAX)},
			[]isa.UopType{isa.UStore, isa.UAlu}},
		{"pop", isa.Inst{Op: isa.POP, Dst: isa.RegOp(isa.RAX)},
			[]isa.UopType{isa.ULoad, isa.UAlu}},
		{"call", isa.Inst{Op: isa.CALL, Target: 0x1000},
			[]isa.UopType{isa.UStore, isa.UAlu, isa.UJump}},
		{"ret", isa.Inst{Op: isa.RET},
			[]isa.UopType{isa.ULoad, isa.UAlu, isa.UJump}},
		{"jcc", isa.Inst{Op: isa.JCC, Cond: isa.CondE, Target: 0x1000},
			[]isa.UopType{isa.UBranch}},
		{"jmp indirect", isa.Inst{Op: isa.JMP, Dst: isa.RegOp(isa.RAX)},
			[]isa.UopType{isa.UJump}},
	}
	for _, c := range cases {
		uops := expand(t, c.in)
		if len(uops) != len(c.types) {
			t.Errorf("%s: %d uops, want %d", c.name, len(uops), len(c.types))
			continue
		}
		for i := range uops {
			if uops[i].Type != c.types[i] {
				t.Errorf("%s uop %d: %v, want %v", c.name, i, uops[i].Type, c.types[i])
			}
		}
	}
}

// TestNormalizeNoPhantomRAX guards against the zero-value-Reg pitfall: no
// decoded micro-op may reference RAX unless the macro-op actually does.
func TestNormalizeNoPhantomRAX(t *testing.T) {
	ins := []isa.Inst{
		{Op: isa.JCC, Cond: isa.CondE, Target: 0x1000},
		{Op: isa.RET},
		{Op: isa.PUSH, Dst: isa.RegOp(isa.RBX)},
		{Op: isa.MOV, Dst: isa.MemOp(isa.RBX, 0), Src: isa.RegOp(isa.RCX)},
		{Op: isa.NOP},
	}
	for _, in := range ins {
		for _, u := range expand(t, in) {
			for _, r := range []isa.Reg{u.Dst, u.Src1, u.Src2} {
				if r == isa.RAX {
					t.Errorf("%v decodes to %v touching phantom RAX", in.Op, u.String())
				}
			}
		}
	}
}

func TestDecoderStats(t *testing.T) {
	var d Decoder
	in := isa.Inst{Op: isa.ADD, Dst: isa.MemOp(isa.RBX, 0), Src: isa.RegOp(isa.RAX)}
	d.Native(&in, nil)
	if d.Stats.MacroOps != 1 || d.Stats.NativeUops != 3 {
		t.Fatalf("stats %+v", d.Stats)
	}
	if d.Stats.Expansion() != 3 {
		t.Fatalf("expansion %f", d.Stats.Expansion())
	}
}

func TestCustomizeInjectsChecks(t *testing.T) {
	var d Decoder
	in := isa.Inst{Op: isa.MOV, Dst: isa.RegOp(isa.RAX), Src: isa.MemOp(isa.RBX, 0)}
	native := d.Native(&in, nil)
	out, msrom := d.Customize(native, func(u *isa.Uop) CheckDecision {
		return CheckDecision{Inject: true, PID: 7}
	})
	if len(out) != 2 || out[0].Type != isa.UCapCheck || out[1].Type != isa.ULoad {
		t.Fatalf("capCheck must precede the load: %v", out)
	}
	if out[0].PID != 7 || !out[0].Injected {
		t.Fatal("check uop lost its PID/injected mark")
	}
	if msrom {
		t.Fatal("2-uop expansion fits the parallel decoders")
	}
	if d.Stats.InjectedUops != 1 {
		t.Fatal("injection must be counted")
	}

	// A 3-uop RMW with two checks crosses the MSROM threshold.
	in = isa.Inst{Op: isa.ADD, Dst: isa.MemOp(isa.RBX, 0), Src: isa.RegOp(isa.RAX)}
	native = d.Native(&in, nil)
	_, msrom = d.Customize(native, func(u *isa.Uop) CheckDecision {
		return CheckDecision{Inject: true, PID: 7}
	})
	if !msrom {
		t.Fatal("5-uop expansion must come from the MSROM")
	}
}

func TestASanInstrument(t *testing.T) {
	var d Decoder
	in := isa.Inst{Op: isa.MOV, Dst: isa.RegOp(isa.RAX), Src: isa.MemOp(isa.RBX, 0)}
	native := d.Native(&in, nil)
	native[0].EA = 0x10000
	out := d.ASanInstrument(native)
	if len(out) != 6 {
		t.Fatalf("ASan adds 5 check uops around the access, got %d total", len(out))
	}
	var shadowLoad *isa.Uop
	for i := range out {
		if out[i].Type == isa.ULoad && out[i].Injected {
			shadowLoad = &out[i]
		}
	}
	if shadowLoad == nil {
		t.Fatal("shadow byte load missing")
	}
	if shadowLoad.EA != (0x10000>>3)+ASanShadowBase {
		t.Fatalf("shadow EA %#x", shadowLoad.EA)
	}
}

func TestVariantClassification(t *testing.T) {
	if VariantInsecure.Protected() {
		t.Error("baseline is unprotected")
	}
	for _, v := range []Variant{VariantHardwareOnly, VariantBinaryTranslation,
		VariantMicrocodeAlwaysOn, VariantMicrocodePrediction} {
		if !v.Protected() || !v.UsesTracker() {
			t.Errorf("%v must be protected and use the tracker", v)
		}
	}
	if VariantASan.UsesTracker() {
		t.Error("ASan does not use the pointer tracker")
	}
	if VariantHardwareOnly.InjectsChecks() {
		t.Error("hardware-only checks in the LSU, no injection")
	}
	if !VariantMicrocodePrediction.InjectsChecks() {
		t.Error("microcode variants inject checks")
	}
	_ = core.Always() // keep the core import meaningful: policies pair with decisions
}

func TestMicrocodeFieldUpdates(t *testing.T) {
	var m Microcode
	var d Decoder
	in := isa.Inst{Op: isa.MOV, Dst: isa.RegOp(isa.RAX), Src: isa.MemOp(isa.RBX, 0), Addr: 0x1000}
	native := d.Native(&in, nil)

	// Empty MSRAM: translation unchanged.
	out, hit := m.Apply(&in, native)
	if hit || len(out) != len(native) {
		t.Fatal("empty MSRAM must not re-route")
	}

	m.Install(LoadFence("zero-day-1", func(rip uint64) bool { return rip >= 0x1000 && rip < 0x2000 }))
	out, hit = m.Apply(&in, native)
	if !hit || len(out) != 2 {
		t.Fatalf("fenced load must expand to 2 uops, got %d (hit=%v)", len(out), hit)
	}
	if out[1].Type != isa.UAlu || !out[1].Injected || out[1].Src1 != isa.RAX {
		t.Fatalf("fence uop malformed: %v", out[1].String())
	}
	if m.Stats.Rerouted != 1 {
		t.Fatal("re-route must be counted")
	}

	// Outside the covered region: untouched.
	far := isa.Inst{Op: isa.MOV, Dst: isa.RegOp(isa.RAX), Src: isa.MemOp(isa.RBX, 0), Addr: 0x9000}
	if _, hit := m.Apply(&far, d.Native(&far, nil)); hit {
		t.Fatal("update must respect its region predicate")
	}

	// Removal restores native translation.
	m.Remove("zero-day-1")
	if m.Len() != 0 {
		t.Fatal("removal failed")
	}
	if _, hit := m.Apply(&in, native); hit {
		t.Fatal("removed update still applied")
	}
}

func TestMicrocodeFirstMatchWins(t *testing.T) {
	var m Microcode
	mk := func(name string, n int) Update {
		return Update{
			Name:  name,
			Match: func(in *isa.Inst) bool { return in.Op == isa.NOP },
			Expand: func(in *isa.Inst, native []isa.Uop) []isa.Uop {
				out := make([]isa.Uop, n)
				for i := range out {
					out[i] = isa.Uop{Type: isa.UNop, Dst: isa.RNone, Src1: isa.RNone, Src2: isa.RNone}
				}
				return out
			},
		}
	}
	m.Install(mk("a", 2))
	m.Install(mk("b", 5))
	in := isa.Inst{Op: isa.NOP}
	out, _ := m.Apply(&in, nil)
	if len(out) != 2 {
		t.Fatalf("installation order must decide precedence, got %d uops", len(out))
	}
}
