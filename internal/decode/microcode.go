package decode

import (
	"chex86/internal/isa"
)

// Update is one field-deployed microcode patch: a predicate selecting the
// macro-ops whose translation is re-routed to the microcode RAM, and the
// custom expansion served from there. This is the mechanism the paper
// highlights for deploying unobtrusive mitigations in response to zero-day
// attacks without software patching: vendors ship a signed microcode
// update, and the decoder serves the patched translation for matching
// macro-ops from the MSRAM.
type Update struct {
	// Name identifies the update (for diagnostics and removal).
	Name string

	// Match selects the macro-ops whose translation is re-routed.
	Match func(in *isa.Inst) bool

	// Expand produces the custom micro-op sequence, given the native
	// expansion. It may return the native slice unchanged, augment it, or
	// replace it entirely. Returned micro-ops are marked as
	// MSRAM-sourced by the decoder.
	Expand func(in *isa.Inst, native []isa.Uop) []isa.Uop
}

// MicrocodeStats aggregates MSRAM activity.
type MicrocodeStats struct {
	Rerouted uint64 // macro-ops served from the microcode RAM
}

// Microcode models the writable microcode RAM holding field updates. The
// zero value is an empty MSRAM.
type Microcode struct {
	updates []Update
	gen     uint64
	Stats   MicrocodeStats
}

// Install loads an update into the MSRAM. Updates apply in installation
// order; the first matching update's expansion is used.
func (m *Microcode) Install(u Update) {
	m.updates = append(m.updates, u)
	m.gen++
}

// Remove unloads the named update.
func (m *Microcode) Remove(name string) {
	out := m.updates[:0]
	for _, u := range m.updates {
		if u.Name != name {
			out = append(out, u)
		}
	}
	m.updates = out
	m.gen++
}

// Gen returns the MSRAM content generation: it advances on every Install
// or Remove, so any memoization of translations that consulted the MSRAM
// (the pipeline's μop translation cache) can be invalidated exactly when
// the writable microcode RAM changes.
func (m *Microcode) Gen() uint64 {
	if m == nil {
		return 0
	}
	return m.gen
}

// Len returns the number of installed updates.
func (m *Microcode) Len() int { return len(m.updates) }

// Apply re-routes the macro-op's translation through the MSRAM when an
// installed update matches, returning the (possibly customized) expansion
// and whether a re-route happened.
func (m *Microcode) Apply(in *isa.Inst, native []isa.Uop) ([]isa.Uop, bool) {
	if m == nil || len(m.updates) == 0 {
		return native, false
	}
	for i := range m.updates {
		u := &m.updates[i]
		if u.Match != nil && u.Match(in) {
			m.Stats.Rerouted++
			out := u.Expand(in, native)
			for j := range out {
				out[j].MacroIdx = uint8(j)
			}
			return out, true
		}
	}
	return native, false
}

// LoadFence returns a canned field update in the spirit of
// context-sensitive fencing (the paper's citation [75]): every load inside
// the given RIP range gains a serializing micro-op that later operations
// of the same macro-op depend on, blunting speculative-execution gadgets
// in a security-critical region. covers decides which instruction
// addresses are fenced.
func LoadFence(name string, covers func(rip uint64) bool) Update {
	return Update{
		Name: name,
		Match: func(in *isa.Inst) bool {
			return covers(in.Addr) && in.Src.Kind == isa.OpMem
		},
		Expand: func(in *isa.Inst, native []isa.Uop) []isa.Uop {
			out := make([]isa.Uop, 0, len(native)+1)
			for i := range native {
				out = append(out, native[i])
				if native[i].Type == isa.ULoad {
					// The fence consumes the load's result and produces a
					// token; because it follows the load in the expansion,
					// every dependent consumer serializes behind it.
					out = append(out, isa.Uop{
						Type: isa.UAlu, Alu: isa.AluAnd,
						Dst: native[i].Dst, Src1: native[i].Dst, Src2: native[i].Dst,
						Injected: true,
					})
				}
			}
			return out
		},
	}
}
