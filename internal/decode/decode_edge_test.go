package decode

import (
	"testing"

	"chex86/internal/isa"
)

// Edge-case expansions the static pointer-flow analyzer (internal/ptrflow)
// leans on: indirect control transfers, return sequences, and the
// MacroIdx positions that key its site identities.

func TestIndirectCallExpansion(t *testing.T) {
	in := isa.Inst{Op: isa.CALL, Dst: isa.RegOp(isa.R11), Addr: 0x400100, EncLen: 4}
	uops := expand(t, in)
	if len(uops) != 3 {
		t.Fatalf("indirect call: %d uops, want 3", len(uops))
	}
	st := uops[0]
	if st.Type != isa.UStore || st.Mem.Base != isa.RSP || st.Mem.Disp != -8 {
		t.Errorf("uop0 must push the return address at -8(%%rsp): %+v", st)
	}
	if !st.HasImm || uint64(st.Imm) != in.NextAddr() {
		t.Errorf("return address must be the next instruction (%#x), got %#x", in.NextAddr(), st.Imm)
	}
	if st.Src1 != isa.RNone {
		t.Errorf("return-address store must not read a source register, got %v", st.Src1)
	}
	adj := uops[1]
	if adj.Type != isa.UAlu || adj.Alu != isa.AluSub || adj.Dst != isa.RSP || !adj.HasImm || adj.Imm != 8 {
		t.Errorf("uop1 must be sub %%rsp, 8: %+v", adj)
	}
	j := uops[2]
	if j.Type != isa.UJump || j.Src1 != isa.R11 || j.HasImm {
		t.Errorf("uop2 must jump through %%r11 with no immediate target: %+v", j)
	}
}

func TestDirectCallExpansion(t *testing.T) {
	in := isa.Inst{Op: isa.CALL, Target: 0x400800, Addr: 0x400100, EncLen: 4}
	uops := expand(t, in)
	if len(uops) != 3 {
		t.Fatalf("direct call: %d uops, want 3", len(uops))
	}
	j := uops[2]
	if j.Type != isa.UJump || !j.HasImm || uint64(j.Imm) != 0x400800 || j.Src1.Valid() {
		t.Errorf("direct call jump must carry the target immediate: %+v", j)
	}
}

func TestIndirectJmpExpansion(t *testing.T) {
	uops := expand(t, isa.Inst{Op: isa.JMP, Dst: isa.RegOp(isa.RAX)})
	if len(uops) != 1 {
		t.Fatalf("indirect jmp: %d uops, want 1", len(uops))
	}
	j := uops[0]
	if j.Type != isa.UJump || j.Src1 != isa.RAX || j.HasImm {
		t.Errorf("indirect jmp must read the target register only: %+v", j)
	}
}

func TestRetExpansion(t *testing.T) {
	uops := expand(t, isa.Inst{Op: isa.RET})
	if len(uops) != 3 {
		t.Fatalf("ret: %d uops, want 3", len(uops))
	}
	ld := uops[0]
	if ld.Type != isa.ULoad || ld.Dst != isa.T0 || ld.Mem.Base != isa.RSP || ld.Mem.Disp != 0 {
		t.Errorf("uop0 must load the return address from (%%rsp) into T0: %+v", ld)
	}
	adj := uops[1]
	if adj.Type != isa.UAlu || adj.Alu != isa.AluAdd || adj.Dst != isa.RSP || !adj.HasImm || adj.Imm != 8 {
		t.Errorf("uop1 must be add %%rsp, 8: %+v", adj)
	}
	j := uops[2]
	if j.Type != isa.UJump || j.Src1 != isa.T0 || j.HasImm {
		t.Errorf("uop2 must jump through T0: %+v", j)
	}
}

// TestMacroIdxPositions pins the MacroIdx numbering of multi-uop
// expansions: the pipeline keys capability-check decisions and the
// ptrflow cross-check keys its site identities on (rip, MacroIdx), so
// renumbering is a silent diff-breaking change.
func TestMacroIdxPositions(t *testing.T) {
	cases := []struct {
		name string
		in   isa.Inst
		n    int
	}{
		{"rmw add", isa.Inst{Op: isa.ADD, Dst: isa.MemOp(isa.RBX, 0), Src: isa.RegOp(isa.RAX)}, 3},
		{"call", isa.Inst{Op: isa.CALL, Target: 0x1000}, 3},
		{"ret", isa.Inst{Op: isa.RET}, 3},
		{"push", isa.Inst{Op: isa.PUSH, Dst: isa.RegOp(isa.RAX)}, 2},
		{"mov m,imm", isa.Inst{Op: isa.MOV, Dst: isa.MemOp(isa.RBX, 0), Src: isa.ImmOp(5)}, 2},
	}
	for _, c := range cases {
		uops := expand(t, c.in)
		if len(uops) != c.n {
			t.Errorf("%s: %d uops, want %d", c.name, len(uops), c.n)
			continue
		}
		for i, u := range uops {
			if int(u.MacroIdx) != i {
				t.Errorf("%s: uop %d has MacroIdx %d", c.name, i, u.MacroIdx)
			}
		}
	}
}

// TestBufferReuseKeepsExpansion guards the decode-buffer reuse pattern
// the analyzer and pipeline share: decoding into a recycled buffer must
// not corrupt a previously returned slice's contents when the caller
// hands back buf[:0] of the same backing array.
func TestBufferReuseKeepsExpansion(t *testing.T) {
	var d Decoder
	in1 := isa.Inst{Op: isa.RET}
	in2 := isa.Inst{Op: isa.PUSH, Dst: isa.RegOp(isa.RAX)}
	buf := d.Native(&in1, nil)
	if buf[0].Type != isa.ULoad {
		t.Fatalf("ret uop0 = %v", buf[0].Type)
	}
	buf = d.Native(&in2, buf[:0])
	if buf[0].Type != isa.UStore || len(buf) != 2 {
		t.Fatalf("push expansion after reuse: %+v", buf)
	}
}
