// Package decode implements the CISC→RISC micro-op translation interface
// of the simulated front-end (Figure 2): the 1:1 and 1:4 decoders that
// expand macro-ops into micro-ops, the MSROM path for long expansions, and
// the microcode customization unit that re-routes relevant macro-op
// translations to instrument the micro-op stream with capability micro-ops
// on demand.
package decode

import (
	"chex86/internal/core"
	"chex86/internal/isa"
)

// Stats aggregates decoder activity for the Figure 6 (bottom) micro-op
// expansion comparison.
type Stats struct {
	MacroOps     uint64
	NativeUops   uint64
	InjectedUops uint64 // capability (or software-check) uops added
	MSROMMacros  uint64 // macro-ops whose expansion came from the MSROM
}

// TotalUops returns all micro-ops emitted.
func (s *Stats) TotalUops() uint64 { return s.NativeUops + s.InjectedUops }

// Expansion returns dynamic micro-ops per macro-op.
func (s *Stats) Expansion() float64 {
	if s.MacroOps == 0 {
		return 0
	}
	return float64(s.TotalUops()) / float64(s.MacroOps)
}

// msromThreshold is the widest expansion the parallel 1:4 decoder can
// produce; longer expansions are fetched from the MSROM, which restricts
// fetch to one macro-op that cycle.
const msromThreshold = 4

// Decoder translates macro-ops to micro-ops.
type Decoder struct {
	Stats Stats
}

// Native appends the native (uninstrumented) micro-op expansion of in to
// buf and returns it. Effective addresses are left to the caller, which
// fills them from the functional trace.
func (d *Decoder) Native(in *isa.Inst, buf []isa.Uop) []isa.Uop {
	start := len(buf)
	switch in.Op {
	case isa.NOP, isa.HLT:
		buf = append(buf, isa.Uop{Type: isa.UNop})

	case isa.MOV:
		switch {
		case in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpReg:
			buf = append(buf, isa.Uop{Type: isa.UMov, Dst: in.Dst.Reg, Src1: in.Src.Reg})
		case in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpImm:
			buf = append(buf, isa.Uop{Type: isa.ULimm, Dst: in.Dst.Reg, Imm: in.Src.Imm, HasImm: true})
		case in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpMem:
			buf = append(buf, isa.Uop{Type: isa.ULoad, Dst: in.Dst.Reg, Mem: in.Src.Mem})
		case in.Dst.Kind == isa.OpMem && in.Src.Kind == isa.OpReg:
			buf = append(buf, isa.Uop{Type: isa.UStore, Src1: in.Src.Reg, Mem: in.Dst.Mem})
		case in.Dst.Kind == isa.OpMem && in.Src.Kind == isa.OpImm:
			buf = append(buf,
				isa.Uop{Type: isa.ULimm, Dst: isa.T0, Imm: in.Src.Imm, HasImm: true},
				isa.Uop{Type: isa.UStore, Src1: isa.T0, Mem: in.Dst.Mem})
		}

	case isa.MOVB:
		if in.Dst.Kind == isa.OpReg {
			buf = append(buf, isa.Uop{Type: isa.ULoad, Dst: in.Dst.Reg, Mem: in.Src.Mem, Size: 1})
		} else {
			buf = append(buf, isa.Uop{Type: isa.UStore, Src1: in.Src.Reg, Mem: in.Dst.Mem, Size: 1})
		}

	case isa.LEA:
		buf = append(buf, isa.Uop{Type: isa.ULea, Dst: in.Dst.Reg, Mem: in.Src.Mem})

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.IMUL, isa.SHL, isa.SHR,
		isa.CMP, isa.TEST, isa.FADD, isa.FMUL, isa.FDIV:
		buf = d.decodeALU(in, buf)

	case isa.INC:
		buf = append(buf, isa.Uop{Type: isa.UAlu, Alu: isa.AluAdd, Dst: in.Dst.Reg,
			Src1: in.Dst.Reg, Imm: 1, HasImm: true})
	case isa.DEC:
		buf = append(buf, isa.Uop{Type: isa.UAlu, Alu: isa.AluSub, Dst: in.Dst.Reg,
			Src1: in.Dst.Reg, Imm: 1, HasImm: true})
	case isa.NEG:
		// 0 - dst: a two-µop sequence through a temporary.
		buf = append(buf,
			isa.Uop{Type: isa.ULimm, Dst: isa.T0, Imm: 0, HasImm: true},
			isa.Uop{Type: isa.UAlu, Alu: isa.AluSub, Dst: in.Dst.Reg, Src1: isa.T0, Src2: in.Dst.Reg})
	case isa.NOT:
		buf = append(buf, isa.Uop{Type: isa.UAlu, Alu: isa.AluXor, Dst: in.Dst.Reg,
			Src1: in.Dst.Reg, Imm: -1, HasImm: true})
	case isa.XCHG:
		if in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpReg {
			// The classic three-mov decomposition; PID tags swap with the
			// values through the MOV rule, no dedicated rule needed.
			buf = append(buf,
				isa.Uop{Type: isa.UMov, Dst: isa.T0, Src1: in.Dst.Reg},
				isa.Uop{Type: isa.UMov, Dst: in.Dst.Reg, Src1: in.Src.Reg},
				isa.Uop{Type: isa.UMov, Dst: in.Src.Reg, Src1: isa.T0})
		} else {
			// xchg mem, reg: load the old value, store the register,
			// move the old value into the register.
			buf = append(buf,
				isa.Uop{Type: isa.ULoad, Dst: isa.T0, Mem: in.Dst.Mem},
				isa.Uop{Type: isa.UStore, Src1: in.Src.Reg, Mem: in.Dst.Mem},
				isa.Uop{Type: isa.UMov, Dst: in.Src.Reg, Src1: isa.T0})
		}

	case isa.PUSH:
		buf = append(buf,
			isa.Uop{Type: isa.UStore, Src1: in.Dst.Reg, Mem: isa.MemRef{Base: isa.RSP, Index: isa.RNone, Disp: -8}},
			isa.Uop{Type: isa.UAlu, Alu: isa.AluSub, Dst: isa.RSP, Src1: isa.RSP, Imm: 8, HasImm: true})

	case isa.POP:
		buf = append(buf,
			isa.Uop{Type: isa.ULoad, Dst: in.Dst.Reg, Mem: isa.MemRef{Base: isa.RSP, Index: isa.RNone}},
			isa.Uop{Type: isa.UAlu, Alu: isa.AluAdd, Dst: isa.RSP, Src1: isa.RSP, Imm: 8, HasImm: true})

	case isa.CALL:
		jump := isa.Uop{Type: isa.UJump, Imm: int64(in.Target), HasImm: true, Src1: isa.RNone}
		if in.Dst.Kind == isa.OpReg {
			jump = isa.Uop{Type: isa.UJump, Src1: in.Dst.Reg}
		}
		buf = append(buf,
			isa.Uop{Type: isa.UStore, Src1: isa.RNone, Imm: int64(in.NextAddr()), HasImm: true,
				Mem: isa.MemRef{Base: isa.RSP, Index: isa.RNone, Disp: -8}},
			isa.Uop{Type: isa.UAlu, Alu: isa.AluSub, Dst: isa.RSP, Src1: isa.RSP, Imm: 8, HasImm: true},
			jump)

	case isa.RET:
		buf = append(buf,
			isa.Uop{Type: isa.ULoad, Dst: isa.T0, Mem: isa.MemRef{Base: isa.RSP, Index: isa.RNone}},
			isa.Uop{Type: isa.UAlu, Alu: isa.AluAdd, Dst: isa.RSP, Src1: isa.RSP, Imm: 8, HasImm: true},
			isa.Uop{Type: isa.UJump, Src1: isa.T0})

	case isa.JMP:
		if in.Dst.Kind == isa.OpReg {
			buf = append(buf, isa.Uop{Type: isa.UJump, Src1: in.Dst.Reg})
		} else {
			buf = append(buf, isa.Uop{Type: isa.UJump, Imm: int64(in.Target), HasImm: true, Src1: isa.RNone})
		}

	case isa.JCC:
		buf = append(buf, isa.Uop{Type: isa.UBranch, Cond: in.Cond, Imm: int64(in.Target),
			HasImm: true, Src1: isa.FLAGS})
	}

	for i := start; i < len(buf); i++ {
		buf[i].MacroIdx = uint8(i - start)
		normalize(&buf[i])
	}
	d.Stats.MacroOps++
	d.Stats.NativeUops += uint64(len(buf) - start)
	return buf
}

func aluOpFor(op isa.MacroOpcode) isa.AluOp {
	switch op {
	case isa.ADD:
		return isa.AluAdd
	case isa.SUB:
		return isa.AluSub
	case isa.AND:
		return isa.AluAnd
	case isa.OR:
		return isa.AluOr
	case isa.XOR:
		return isa.AluXor
	case isa.IMUL:
		return isa.AluMul
	case isa.SHL:
		return isa.AluShl
	case isa.SHR:
		return isa.AluShr
	case isa.CMP:
		return isa.AluCmp
	case isa.TEST:
		return isa.AluTest
	case isa.FADD:
		return isa.AluFAdd
	case isa.FMUL:
		return isa.AluFMul
	case isa.FDIV:
		return isa.AluFDiv
	}
	return isa.AluAdd
}

func (d *Decoder) decodeALU(in *isa.Inst, buf []isa.Uop) []isa.Uop {
	alu := aluOpFor(in.Op)
	flagsOnly := in.Op == isa.CMP || in.Op == isa.TEST

	dstReg := isa.FLAGS
	if !flagsOnly && in.Dst.Kind == isa.OpReg {
		dstReg = in.Dst.Reg
	}

	switch {
	case in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpReg:
		buf = append(buf, isa.Uop{Type: isa.UAlu, Alu: alu, Dst: dstReg, Src1: in.Dst.Reg, Src2: in.Src.Reg})
	case in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpImm:
		buf = append(buf, isa.Uop{Type: isa.UAlu, Alu: alu, Dst: dstReg, Src1: in.Dst.Reg,
			Imm: in.Src.Imm, HasImm: true})
	case in.Dst.Kind == isa.OpReg && in.Src.Kind == isa.OpMem:
		buf = append(buf,
			isa.Uop{Type: isa.ULoad, Dst: isa.T0, Mem: in.Src.Mem},
			isa.Uop{Type: isa.UAlu, Alu: alu, Dst: dstReg, Src1: in.Dst.Reg, Src2: isa.T0})
	case in.Dst.Kind == isa.OpMem && (in.Src.Kind == isa.OpReg || in.Src.Kind == isa.OpImm):
		ld := isa.Uop{Type: isa.ULoad, Dst: isa.T0, Mem: in.Dst.Mem}
		var op isa.Uop
		if in.Src.Kind == isa.OpReg {
			op = isa.Uop{Type: isa.UAlu, Alu: alu, Dst: isa.T0, Src1: isa.T0, Src2: in.Src.Reg}
		} else {
			op = isa.Uop{Type: isa.UAlu, Alu: alu, Dst: isa.T0, Src1: isa.T0, Imm: in.Src.Imm, HasImm: true}
		}
		if flagsOnly {
			op.Dst = isa.FLAGS
			buf = append(buf, ld, op)
		} else {
			buf = append(buf, ld, op, isa.Uop{Type: isa.UStore, Src1: isa.T0, Mem: in.Dst.Mem})
		}
	}
	return buf
}

// normalize clears unused register fields to RNone so the zero value of
// Reg (which is a real register) cannot create phantom dependencies or
// phantom tag propagations.
func normalize(u *isa.Uop) {
	switch u.Type {
	case isa.UNop:
		u.Dst, u.Src1, u.Src2 = isa.RNone, isa.RNone, isa.RNone
	case isa.UMov:
		u.Src2 = isa.RNone
	case isa.ULimm, isa.ULea, isa.ULoad:
		u.Src1, u.Src2 = isa.RNone, isa.RNone
	case isa.UStore:
		u.Dst, u.Src2 = isa.RNone, isa.RNone
	case isa.UBranch, isa.UJump:
		u.Dst, u.Src2 = isa.RNone, isa.RNone
	case isa.UAlu:
		if u.HasImm {
			u.Src2 = isa.RNone
		}
	case isa.UCapGenBegin, isa.UCapGenEnd, isa.UCapFreeBegin, isa.UCapFreeEnd, isa.UCapCheck:
		u.Dst = isa.RNone
	}
}

// Variant selects the protection scheme whose instrumentation the
// customization unit applies (Section I's three design points, plus the
// software comparisons).
type Variant uint8

const (
	// VariantInsecure is the unprotected baseline.
	VariantInsecure Variant = iota
	// VariantHardwareOnly performs capability checks inside the load/store
	// unit with no code instrumentation.
	VariantHardwareOnly
	// VariantBinaryTranslation instruments every register-memory macro-op
	// with check instructions from secure ISA extensions, consuming
	// front-end macro-op fetch slots.
	VariantBinaryTranslation
	// VariantMicrocodeAlwaysOn injects capCheck micro-ops for every
	// load/store regardless of pointer-tracking state.
	VariantMicrocodeAlwaysOn
	// VariantMicrocodePrediction is the default CHEx86 design: capCheck
	// micro-ops are injected only for dereferences the speculative pointer
	// tracker tags with a non-zero PID.
	VariantMicrocodePrediction
	// VariantASan models LLVM AddressSanitizer: software shadow-memory
	// checks compiled around every memory access.
	VariantASan
	// VariantWatchdog models Watchdog's conservative micro-op
	// instrumentation (Section VII-C): every 64-bit load/store is
	// instrumented, and every access also reads its pointer-identifier
	// metadata from shadow memory — deferring alias detection to the
	// execute stage and roughly doubling memory references.
	VariantWatchdog
	// NumVariants counts the variants.
	NumVariants
)

var variantNames = [NumVariants]string{
	"Insecure BaseLine",
	"CHEx86: Hardware Only",
	"CHEx86: Binary Translation",
	"CHEx86: Micro-code Level - Always On",
	"CHEx86: Micro-code Prediction Driven",
	"ASan",
	"Watchdog-style (conservative uop instrumentation)",
}

// String names the variant as in Figure 6's legend.
func (v Variant) String() string {
	if v < NumVariants {
		return variantNames[v]
	}
	return "variant?"
}

// Protected reports whether the variant provides memory-safety protection.
func (v Variant) Protected() bool { return v != VariantInsecure }

// UsesTracker reports whether the variant needs the speculative pointer
// tracker (all CHEx86 variants track pointers to know which capability a
// dereference uses; ASan and the insecure baseline do not).
func (v Variant) UsesTracker() bool {
	switch v {
	case VariantHardwareOnly, VariantBinaryTranslation, VariantMicrocodeAlwaysOn,
		VariantMicrocodePrediction, VariantWatchdog:
		return true
	}
	return false
}

// InjectsChecks reports whether the variant adds check micro-ops into the
// stream (as opposed to checking inside the load/store unit or not at all).
func (v Variant) InjectsChecks() bool {
	switch v {
	case VariantBinaryTranslation, VariantMicrocodeAlwaysOn, VariantMicrocodePrediction,
		VariantASan, VariantWatchdog:
		return true
	}
	return false
}

// CheckDecision tells the customization unit what to do with one memory
// micro-op.
type CheckDecision struct {
	Inject    bool
	PID       core.PID
	ZeroIdiom bool // inject but squash at the IQ (the PNA0 recovery path)
}

// Customize applies the microcode customization unit to a macro-op's
// native expansion: for each memory micro-op, the decision function is
// consulted and a capCheck micro-op is injected ahead of it when
// requested. The returned slice also reports whether the expansion widened
// past the parallel decoders into the MSROM.
func (d *Decoder) Customize(native []isa.Uop, decide func(memUop *isa.Uop) CheckDecision) ([]isa.Uop, bool) {
	out := make([]isa.Uop, 0, len(native)+2)
	for i := range native {
		u := &native[i]
		if u.Type.IsMem() {
			dec := decide(u)
			if dec.Inject {
				chk := isa.Uop{
					Type: isa.UCapCheck, Dst: isa.RNone, Src1: u.Mem.Base, Src2: u.Mem.Index,
					Mem: u.Mem, EA: u.EA, PID: dec.PID, Injected: true, ZeroIdiom: dec.ZeroIdiom,
				}
				out = append(out, chk)
				d.Stats.InjectedUops++
			}
		}
		out = append(out, *u)
	}
	msrom := len(out) > msromThreshold
	if msrom {
		d.Stats.MSROMMacros++
	}
	for i := range out {
		out[i].MacroIdx = uint8(i)
	}
	return out, msrom
}

// CapEventUops returns the capability micro-ops injected for an
// intercepted allocator entry/exit event (Section IV-C).
func (d *Decoder) CapEventUops(t isa.UopType, pid core.PID) []isa.Uop {
	d.Stats.InjectedUops++
	return []isa.Uop{{Type: t, Dst: isa.RNone, Src1: isa.RNone, PID: pid, Injected: true}}
}

// ASanShadowBase is the base of the modeled AddressSanitizer shadow region
// (shadow byte address = (addr >> 3) + base).
const ASanShadowBase = 0x0000_1000_0000_0000

// WatchdogShadowBase is the base of the modeled Watchdog metadata region:
// one 64-bit pointer-identifier word per 64-bit program word (the 1:1
// shadow mapping whose storage and bandwidth CHEx86's allocation- and
// reference-scaled tables improve on).
const WatchdogShadowBase = 0x0000_2000_0000_0000

// ASanInstrument wraps a macro-op's native expansion with AddressSanitizer-
// style software checks: for every memory micro-op, compute the shadow
// address (1 ALU op), load the shadow byte (1 load), and test-and-branch on
// it (2 ops). The shadow load's EA is derived from the access EA so the
// checks exert real cache pressure.
func (d *Decoder) ASanInstrument(native []isa.Uop) []isa.Uop {
	out := make([]isa.Uop, 0, len(native)*4)
	for i := range native {
		u := &native[i]
		if u.Type.IsMem() {
			shadowEA := (u.EA >> 3) + ASanShadowBase
			out = append(out,
				isa.Uop{Type: isa.ULea, Dst: isa.T1, Src1: isa.RNone, Src2: isa.RNone, Mem: u.Mem, Injected: true},
				isa.Uop{Type: isa.UAlu, Alu: isa.AluShr, Dst: isa.T1, Src1: isa.T1, Src2: isa.RNone, Imm: 3, HasImm: true, Injected: true},
				isa.Uop{Type: isa.ULoad, Dst: isa.T1, Src1: isa.RNone, Src2: isa.RNone, EA: shadowEA, Injected: true,
					Mem: isa.MemRef{Base: isa.T1, Index: isa.RNone, Disp: ASanShadowBase}},
				isa.Uop{Type: isa.UAlu, Alu: isa.AluTest, Dst: isa.FLAGS, Src1: isa.T1, Src2: isa.T1, Injected: true},
				isa.Uop{Type: isa.UBranch, Cond: isa.CondNE, Dst: isa.RNone, Src1: isa.FLAGS, Src2: isa.RNone, Injected: true},
			)
			d.Stats.InjectedUops += 5
		}
		out = append(out, *u)
	}
	for i := range out {
		out[i].MacroIdx = uint8(i)
	}
	return out
}
