package bintrans

import (
	"fmt"
	"testing"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/emu"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
)

// buildSample returns a program with memory operands, branches across the
// instrumentation points, and allocator calls.
func buildSample() *asm.Program {
	b := asm.NewBuilder()
	b.MovRI(isa.RDI, 64)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RCX, 0)
	b.Label("loop")
	b.StoreIdx(isa.RBX, isa.RCX, 8, 0, isa.RCX) // instrumented
	b.AddRI(isa.RCX, 1)                         // not instrumented
	b.CmpRI(isa.RCX, 8)
	b.Jcc(isa.CondL, "loop") // target must be remapped
	b.Load(isa.RDX, isa.RBX, 0)
	b.Hlt()
	return b.MustBuild()
}

func run(t *testing.T, p *asm.Program) *emu.Machine {
	t.Helper()
	m := emu.New(p, emu.Options{MaxInsts: 100_000})
	for {
		rec, err := m.Step()
		if err != nil {
			t.Fatalf("translated program faulted: %v", err)
		}
		if rec == nil {
			return m
		}
	}
}

// TestTranslationPreservesSemantics: the instrumented program computes the
// same architectural state as the original.
func TestTranslationPreservesSemantics(t *testing.T) {
	orig := buildSample()
	var tr Translator
	xl, err := tr.Translate(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	m1 := run(t, orig)
	m2 := run(t, xl)
	for r := isa.Reg(0); r < isa.NumArchRegs; r++ {
		if m1.Harts[0].Regs[r] != m2.Harts[0].Regs[r] {
			t.Fatalf("register %v diverged: %#x vs %#x", r, m1.Harts[0].Regs[r], m2.Harts[0].Regs[r])
		}
	}
	if m1.TotalInsts() >= m2.TotalInsts() {
		t.Fatal("translated program must execute more instructions (the checks)")
	}
}

func TestInstrumentationCoverage(t *testing.T) {
	var tr Translator
	xl, err := tr.Translate(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	// 2 memory-operand instructions inside the loop body/tail.
	if tr.Stats.Instrumented != 2 {
		t.Fatalf("expected 2 instrumented instructions, got %d", tr.Stats.Instrumented)
	}
	if tr.Stats.CodeExpansion() <= 1.0 {
		t.Fatal("translation must grow the code")
	}
	// Every original instruction must still be present, in order.
	nonNops := 0
	for i := range xl.Insts {
		if xl.Insts[i].Op != isa.NOP {
			nonNops++
		}
	}
	if nonNops != tr.Stats.Insts {
		t.Fatalf("lost instructions: %d of %d", nonNops, tr.Stats.Insts)
	}
}

func TestBranchTargetRemapping(t *testing.T) {
	var tr Translator
	xl, err := tr.Translate(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	// The loop back-edge must land exactly on the remapped label.
	loop, ok := xl.Lookup("loop")
	if !ok {
		t.Fatal("label lost in translation")
	}
	var backEdge *isa.Inst
	for i := range xl.Insts {
		if xl.Insts[i].Op == isa.JCC {
			backEdge = &xl.Insts[i]
		}
	}
	if backEdge == nil || backEdge.Target != loop {
		t.Fatalf("back edge %#x, want %#x", backEdge.Target, loop)
	}
	if xl.At(loop) == nil {
		t.Fatal("remapped target is not an instruction boundary")
	}
}

func TestAllocatorCallsSurvive(t *testing.T) {
	var tr Translator
	xl, err := tr.Translate(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range xl.Insts {
		if xl.Insts[i].Op == isa.CALL && xl.Insts[i].Target == heap.MallocEntry {
			found = true
		}
	}
	if !found {
		t.Fatal("external allocator entry point must not be remapped")
	}
}

func TestIndirectBranchesRejected(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RAX, 0x400000)
	b.JmpReg(isa.RAX)
	p := b.MustBuild()
	var tr Translator
	_, err := tr.Translate(p)
	if err == nil {
		t.Fatal("static translation cannot remap indirect targets; must be rejected")
	}
	// The rejection must name both address spaces: the original site and
	// the address the layout pass assigned it. The JMP is the second
	// instruction (the MOV before it is not check-instrumented, so the
	// remapped address equals original + one slot).
	jmp := p.Insts[1]
	want := fmt.Sprintf("bintrans: indirect jmp at %#x (remapped %#x) requires runtime target translation",
		jmp.Addr, jmp.Addr)
	if err.Error() != want {
		t.Fatalf("rejection message:\ngot  %q\nwant %q", err, want)
	}
}

func TestStackOpInstrumentation(t *testing.T) {
	b := asm.NewBuilder()
	b.Push(isa.RAX)
	b.Pop(isa.RBX)
	b.Hlt()
	tr := Translator{InstrumentStackOps: true}
	if _, err := tr.Translate(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Instrumented != 2 {
		t.Fatalf("always-on policy must instrument stack ops, got %d", tr.Stats.Instrumented)
	}
}

// TestTranslatedProgramCostsFetchSlots validates the design-point
// trade-off against the timing model: the translated binary executes more
// macro-instructions through the front-end than the original, so under an
// identical machine it takes more cycles — the structural disadvantage the
// paper's microcode variant avoids by injecting past the decoders.
func TestTranslatedProgramCostsFetchSlots(t *testing.T) {
	var tr Translator
	xl, err := tr.Translate(buildSample())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.Variant = decode.VariantInsecure
	orig, err := pipeline.New(buildSample(), cfg, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	xled, err := pipeline.New(xl, cfg, 1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if xled.MacroInsts <= orig.MacroInsts {
		t.Fatal("translated stream must carry more macro-instructions")
	}
	if xled.Cycles <= orig.Cycles {
		t.Fatalf("translated program must cost cycles: %d vs %d", xled.Cycles, orig.Cycles)
	}
}

// TestTranslatedProgramStillProtectable: the translated binary remains a
// valid CHEx86 target — the capability machinery catches violations in it.
func TestTranslatedProgramStillProtectable(t *testing.T) {
	b := asm.NewBuilder()
	b.MovRI(isa.RDI, 64)
	b.CallAddr(heap.MallocEntry)
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RDX, 1)
	b.Store(isa.RBX, 64, isa.RDX) // out of bounds
	b.Hlt()
	var tr Translator
	xl, err := tr.Translate(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.StopOnViolation = true
	_, rerr := pipeline.New(xl, cfg, 1).Run()
	if _, ok := rerr.(*core.Violation); !ok {
		t.Fatalf("violation in translated binary missed: %v", rerr)
	}
}
