// Package bintrans implements the binary-translation-driven design point
// of Section I as a real program-rewriting component: it statically
// rewrites a guest program, instrumenting every macro-instruction that
// employs a register-memory addressing mode with check instructions from
// the secure ISA extensions (modeled as explicit check macro-ops in the
// translated stream). This is the translator whose *cost* the timing
// model's VariantBinaryTranslation reproduces; the package exists so the
// design point is a working artifact, with the translation pass, address
// remapping, and branch-target fix-up a production translator needs.
//
// The translated program is a valid guest program: it executes
// functionally identically to the original (the check macro-ops are
// encoded as NOPs at the functional level, since enforcement happens in
// the capability hardware), but every instrumented dereference is
// preceded by an explicit check instruction occupying a fetch slot — the
// structural reason the paper's microcode variant beats this scheme by
// moving injection past the decoders.
package bintrans

import (
	"fmt"

	"chex86/internal/asm"
	"chex86/internal/isa"
)

// Stats aggregates a translation pass.
type Stats struct {
	Insts        int // original macro-instructions
	Instrumented int // instructions that received a check
	Emitted      int // translated macro-instructions
}

// CodeExpansion returns translated instructions per original instruction.
func (s *Stats) CodeExpansion() float64 {
	if s.Insts == 0 {
		return 0
	}
	return float64(s.Emitted) / float64(s.Insts)
}

// Translator rewrites guest programs.
type Translator struct {
	// InstrumentStackOps includes PUSH/POP/CALL/RET's implicit stack
	// accesses (the always-on policy); off by default because stack
	// accesses are outside CHEx86's protection granularity.
	InstrumentStackOps bool

	Stats Stats
}

// checkOp is the secure-ISA-extension check instruction the translator
// emits. It is encoded as a NOP macro-op: enforcement is performed by the
// capability hardware against the shadow table, so the translated binary
// stays functionally identical; the instruction exists to occupy the
// front-end and to carry the addressing mode to the checker.
func checkOp() isa.Inst { return isa.Inst{Op: isa.NOP} }

// needsCheck reports whether the instruction is an instrumentation target.
func (t *Translator) needsCheck(in *isa.Inst) bool {
	if in.Dst.Kind == isa.OpMem || in.Src.Kind == isa.OpMem {
		return true
	}
	if !t.InstrumentStackOps {
		return false
	}
	switch in.Op {
	case isa.PUSH, isa.POP, isa.CALL, isa.RET:
		return true
	}
	return false
}

// Translate rewrites p, returning the instrumented program. Direct branch
// and call targets are remapped to the translated addresses; programs
// using indirect branches whose targets cannot be remapped statically are
// rejected (a real translator would fall back to a runtime map — the
// limitation is intrinsic to static translation and one of the deployment
// costs the paper's microcode variant avoids).
func (t *Translator) Translate(p *asm.Program) (*asm.Program, error) {
	// First pass: layout. Compute the translated address of every original
	// instruction.
	const encLen = 4
	newAddr := make(map[uint64]uint64, len(p.Insts))
	addr := p.TextBase
	for i := range p.Insts {
		in := &p.Insts[i]
		newAddr[in.Addr] = addr
		if t.needsCheck(in) {
			addr += encLen // the check instruction
		}
		addr += encLen
	}
	end := addr
	newAddr[p.End()] = end

	// Guard: indirect control flow cannot be statically remapped. Indirect
	// jumps/calls through registers would need a runtime translation map.
	// The error names both the original address and where the layout pass
	// would have placed the instruction, so a rejection can be traced to
	// its site in either address space.
	for i := range p.Insts {
		in := &p.Insts[i]
		if (in.Op == isa.JMP || in.Op == isa.CALL) && in.Dst.Kind == isa.OpReg {
			return nil, fmt.Errorf("bintrans: indirect %s at %#x (remapped %#x) requires runtime target translation",
				in.Op, in.Addr, newAddr[in.Addr])
		}
	}

	// Second pass: emit.
	out := &asm.Program{
		TextBase: p.TextBase,
		Labels:   make(map[string]uint64, len(p.Labels)),
		Globals:  p.Globals,
		Relocs:   p.Relocs,
		Data:     p.Data,
	}
	t.Stats.Insts += len(p.Insts)
	for i := range p.Insts {
		in := p.Insts[i] // copy
		if t.needsCheck(&in) {
			chk := checkOp()
			out.Insts = append(out.Insts, chk)
			t.Stats.Instrumented++
		}
		// Remap direct control-flow targets that point into this program.
		if in.Op == isa.CALL || in.Op == isa.JMP || in.Op == isa.JCC {
			if na, ok := newAddr[in.Target]; ok {
				in.Target = na
			}
			// Targets outside the program (allocator entry points) stay.
		}
		out.Insts = append(out.Insts, in)
	}
	t.Stats.Emitted += len(out.Insts)

	// Assign addresses and rebuild the address index.
	if err := finalize(out, encLen); err != nil {
		return nil, err
	}
	// Remap labels.
	for name, a := range p.Labels {
		if na, ok := newAddr[a]; ok {
			out.Labels[name] = na
		}
	}
	return out, nil
}

// finalize lays the instruction stream out at consecutive addresses and
// rebuilds the lookup index, mirroring what asm.Builder.Build does.
func finalize(p *asm.Program, encLen uint64) error {
	addr := p.TextBase
	idx := make(map[uint64]int, len(p.Insts))
	for i := range p.Insts {
		p.Insts[i].Addr = addr
		p.Insts[i].EncLen = uint8(encLen)
		idx[addr] = i
		addr += encLen
	}
	return asm.Reindex(p, idx)
}
