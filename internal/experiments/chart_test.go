package experiments

import (
	"strings"
	"testing"

	"chex86/internal/decode"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

func TestBarChartScaling(t *testing.T) {
	out := barChart("title", []string{"a", "b"}, []float64{1, 2}, "%")
	if !strings.Contains(out, "title") || !strings.Contains(out, "a") {
		t.Fatal("labels missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines", len(lines))
	}
	// The larger value must render the longer bar.
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Fatal("bars not proportional")
	}
}

func TestBarChartZeroSeries(t *testing.T) {
	out := barChart("t", []string{"x"}, []float64{0}, "")
	if strings.Contains(out, "#") {
		t.Fatal("zero value must render an empty bar")
	}
}

func TestChartsRender(t *testing.T) {
	rows := []Fig6Row{fabricate("bench", workload.SuiteSPEC,
		[decode.NumVariants]uint64{100, 110, 130, 120, 115, 200},
		[decode.NumVariants]uint64{100, 100, 120, 120, 110, 200})}
	if s := ChartFig6(rows); !strings.Contains(s, "bench") {
		t.Fatal("Fig6 chart missing benchmark row")
	}
	f7 := []Fig7Row{{Bench: "bench", CapMiss64: 0.05}}
	if s := ChartFig7(f7); !strings.Contains(s, "5.00%") {
		t.Fatalf("Fig7 chart value missing: %q", ChartFig7(f7))
	}
	f8 := []Fig8Row{{Bench: "bench", Mispred1024: 0.25}}
	if s := ChartFig8(f8); !strings.Contains(s, "25.00%") {
		t.Fatal("Fig8 chart value missing")
	}
}

func TestWriteJSON(t *testing.T) {
	dir := t.TempDir()
	rows := []Fig7Row{{Bench: "x", CapMiss64: 0.1}}
	if err := WriteJSON(dir, "fig7", rows); err != nil {
		t.Fatal(err)
	}
	var _ = pipeline.Result{} // rows carrying Results must also marshal
}
