package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"chex86/internal/elide"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// TestGuardDiff is the guard-hoisting differential gate (DESIGN.md
// §16/§17): across every catalog workload at smoke conditions, turning
// HoistGuards on may change timing — each committed anchor now
// materializes one timed UGuardCheck μop — but nothing functional. The
// pinned relation: violation reports byte-identical, the functional
// stream (macro-ops, native μops, checks run, checks elided, gated
// memory μops) identical counter for counter, and the injected-μop
// count higher by exactly GuardUops — the guard μops are the only
// stream difference. The checker admits a covered site only when it is
// already in the verified elision map, so the executed check set cannot
// move. The smoke half of the contract asserts the machinery is live: a
// nonzero subsumed count on most workloads, never a silent all-zero
// pass.
func TestGuardDiff(t *testing.T) {
	o := Options{Scale: 0.1, MaxInsts: 50_000}
	ctx := context.Background()

	hoisting := 0
	all := workload.Catalog()
	for _, p := range all {
		prog, err := p.Build(o.Scale)
		if err != nil {
			t.Fatalf("%s: build: %v", p.Name, err)
		}
		rep, err := elide.ForProgram(prog, elide.Options{Harts: harts(p)})
		if err != nil {
			t.Fatalf("%s: elide: %v", p.Name, err)
		}
		if !rep.Guards.Verified {
			t.Fatalf("%s: guard set rejected: %s", p.Name, rep.Guards.Reason)
		}

		base := pipeline.DefaultConfig()
		base.ElideChecks = true
		base.ElisionDigest = rep.Digest
		base.ElisionCtxK = rep.CtxK

		off, _, err := runWithGuards(ctx, p, base, &o, rep)
		if err != nil {
			t.Fatalf("%s: guards-off run: %v", p.Name, err)
		}

		on := base
		on.HoistGuards = true
		on.GuardDigest = rep.Guards.Digest
		onRes, gs, err := runWithGuards(ctx, p, on, &o, rep)
		if err != nil {
			t.Fatalf("%s: guards-on run: %v", p.Name, err)
		}

		offViol, _ := json.Marshal(off.Violations)
		onViol, _ := json.Marshal(onRes.Violations)
		if string(offViol) != string(onViol) {
			t.Errorf("%s: violation report diverged with guards on\noff: %s\non:  %s", p.Name, offViol, onViol)
		}
		if off.MacroInsts != onRes.MacroInsts || off.NativeUops != onRes.NativeUops {
			t.Errorf("%s: macro/native stream moved with guards on: off %d/%d, on %d/%d",
				p.Name, off.MacroInsts, off.NativeUops, onRes.MacroInsts, onRes.NativeUops)
		}
		if off.ChecksRun != onRes.ChecksRun || off.ChecksElided != onRes.ChecksElided ||
			off.GatedMem != onRes.GatedMem {
			t.Errorf("%s: check set moved with guards on: off run=%d elided=%d gated=%d, on run=%d elided=%d gated=%d",
				p.Name, off.ChecksRun, off.ChecksElided, off.GatedMem,
				onRes.ChecksRun, onRes.ChecksElided, onRes.GatedMem)
		}
		if onRes.InjectedUops != off.InjectedUops+gs.GuardUops {
			t.Errorf("%s: guard μops are not the only injected-stream difference: off %d + guards %d != on %d",
				p.Name, off.InjectedUops, gs.GuardUops, onRes.InjectedUops)
		}

		total := onRes.ChecksRun + onRes.ChecksElided
		if gs.SubsumedChecks > onRes.ChecksElided {
			t.Errorf("%s: subsumed %d exceeds elided %d — attribution overcounts",
				p.Name, gs.SubsumedChecks, onRes.ChecksElided)
		}
		if total > 0 && gs.SubsumedChecks > 0 {
			hoisting++
		}
	}

	// Smoke: the hoist rate must be nonzero on at least 10 of the 14
	// catalog workloads (matching the elision coverage PR 4 established).
	if want := 10; hoisting < want {
		t.Fatalf("only %d/%d workloads subsumed any checks into guards, want >= %d",
			hoisting, len(all), want)
	}
}
