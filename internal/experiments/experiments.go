// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII): Figure 1 (CVE data), Figure 3 (allocation
// behavior), Table I (rule database validation), Table II (temporal
// pointer patterns), Table III (machine configuration), Table IV
// (comparison with prior techniques), Figure 6 (normalized performance and
// micro-op expansion across protection variants), Figure 7 (capability and
// alias cache miss rates), Figure 8 (alias misprediction rate and squash
// time), and Figure 9 (memory storage overhead and bandwidth).
//
// Absolute numbers depend on the synthetic workload substrate (see
// DESIGN.md §2); the harness exists to reproduce the paper's shapes:
// orderings, ratios, and outliers.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/patterns"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// Options scales the harness.
type Options struct {
	// Scale multiplies workload round counts (1 = full harness runs).
	Scale float64
	// MaxInsts bounds per-run macro-ops (0 = run to completion).
	MaxInsts uint64
	// Benches restricts the benchmark set (nil = full catalog).
	Benches []string
	// MaxCycles bounds each run in simulated cycles; exceeding it is a
	// structured livelock error (0 = unbounded).
	MaxCycles uint64
	// Timeout bounds each run in wall-clock time (0 = unbounded).
	Timeout time.Duration
	// ContextK is the call-string depth for elision experiments
	// (0 = the default k = 2, -1 = context-insensitive proofs only).
	ContextK int
	// NoSuperblocks disables superblock replay (chexbench
	// -superblocks=off) — the escape hatch for the byte-identity
	// contract: results cannot change, only host throughput.
	NoSuperblocks bool
}

// runSim executes one configured simulation under the harness's
// cancellation policy: the caller's context layered with Options.Timeout.
func (o *Options) runSim(ctx context.Context, sim *pipeline.Sim) (*pipeline.Result, error) {
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	return sim.RunContext(ctx)
}

// DefaultOptions returns full-scale harness options.
func DefaultOptions() Options { return Options{Scale: 1} }

func (o *Options) profiles() []*workload.Profile {
	if len(o.Benches) == 0 {
		return workload.Catalog()
	}
	var out []*workload.Profile
	for _, n := range o.Benches {
		if p := workload.ByName(n); p != nil {
			out = append(out, p)
		}
	}
	return out
}

func harts(p *workload.Profile) int {
	if p.Threads > 0 {
		return p.Threads
	}
	return 1
}

// run executes one benchmark under one config, excluding the program's
// setup phase from measurement (SimPoint-style warmup).
func run(p *workload.Profile, cfg pipeline.Config, o *Options) (*pipeline.Result, error) {
	return RunOne(context.Background(), p, cfg, o)
}

// RunOne executes one benchmark under one config with the harness's
// measurement policy (setup excluded via SimPoint-style warmup, instruction
// and cycle budgets applied). It is the single-run primitive shared by the
// figure runners above and the campaign subsystem's bench jobs; ctx cancels
// the run (campaign workers thread their pool context through here).
func RunOne(ctx context.Context, p *workload.Profile, cfg pipeline.Config, o *Options) (*pipeline.Result, error) {
	prog, err := p.Build(o.Scale)
	if err != nil {
		return nil, err
	}
	cfg.WarmupInsts = p.SetupInsts()
	cfg.MaxInsts = o.MaxInsts
	if cfg.MaxInsts > 0 {
		cfg.MaxInsts += cfg.WarmupInsts
	}
	cfg.MaxCycles = o.MaxCycles
	if o.NoSuperblocks {
		cfg.NoSuperblocks = true
	}
	sim, err := pipeline.NewSim(prog, cfg, harts(p))
	if err != nil {
		return nil, err
	}
	return o.runSim(ctx, sim)
}

// ---------------------------------------------------------------------
// Figure 6: performance and micro-op expansion across variants.
// ---------------------------------------------------------------------

// Fig6Row holds one benchmark's results across all protection variants.
type Fig6Row struct {
	Bench   string
	Suite   string
	Results [decode.NumVariants]*pipeline.Result
}

// Norm returns variant v's performance normalized to the insecure baseline
// (1.0 = baseline speed; lower is slower), Figure 6 top.
func (r *Fig6Row) Norm(v decode.Variant) float64 {
	base := r.Results[decode.VariantInsecure]
	res := r.Results[v]
	if base == nil || res == nil || res.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(res.Cycles)
}

// NormExpansion returns variant v's dynamic micro-op expansion normalized
// to the baseline, Figure 6 bottom.
func (r *Fig6Row) NormExpansion(v decode.Variant) float64 {
	base := r.Results[decode.VariantInsecure]
	res := r.Results[v]
	if base == nil || res == nil || base.UopExpansion() == 0 {
		return 0
	}
	return res.UopExpansion() / base.UopExpansion()
}

// fig6Variants are the six configurations of the paper's Figure 6 (the
// Watchdog-style variant is the separate Section VII-C comparison).
var fig6Variants = []decode.Variant{
	decode.VariantInsecure,
	decode.VariantHardwareOnly,
	decode.VariantBinaryTranslation,
	decode.VariantMicrocodeAlwaysOn,
	decode.VariantMicrocodePrediction,
	decode.VariantASan,
}

// RunFig6 runs every benchmark under all six protection variants.
func RunFig6(o Options) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, p := range o.profiles() {
		row := Fig6Row{Bench: p.Name, Suite: p.Suite}
		for _, v := range fig6Variants {
			cfg := pipeline.DefaultConfig()
			cfg.Variant = v
			res, err := run(p, cfg, &o)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", p.Name, v, err)
			}
			row.Results[v] = res
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Summary aggregates Figure 6 into the paper's headline numbers.
type Summary struct {
	SPECSlowdownPct    float64 // prediction-driven vs baseline
	PARSECSlowdownPct  float64
	SpeedupVsASanSPEC  float64 // prediction-driven speedup over ASan (1.59x in the paper)
	SpeedupVsASanPARSC float64
	BTSpeedupPct       float64 // microcode vs binary translation (12% in the paper)
}

// Summarize computes suite-level geometric means from Figure 6 rows.
func Summarize(rows []Fig6Row) Summary {
	geo := func(suite string, f func(*Fig6Row) float64) float64 {
		prod, n := 1.0, 0
		for i := range rows {
			if suite != "" && rows[i].Suite != suite {
				continue
			}
			v := f(&rows[i])
			if v <= 0 {
				continue
			}
			prod *= v
			n++
		}
		if n == 0 {
			return 0
		}
		return pow(prod, 1/float64(n))
	}
	pred := decode.VariantMicrocodePrediction
	slowdown := func(suite string) float64 {
		g := geo(suite, func(r *Fig6Row) float64 { return r.Norm(pred) })
		if g == 0 {
			return 0 // no benchmarks from this suite in the run
		}
		return 100 * (1/g - 1)
	}
	var s Summary
	s.SPECSlowdownPct = slowdown(workload.SuiteSPEC)
	s.PARSECSlowdownPct = slowdown(workload.SuitePARSEC)
	s.SpeedupVsASanSPEC = geo(workload.SuiteSPEC, func(r *Fig6Row) float64 {
		return float64(r.Results[decode.VariantASan].Cycles) / float64(r.Results[pred].Cycles)
	})
	s.SpeedupVsASanPARSC = geo(workload.SuitePARSEC, func(r *Fig6Row) float64 {
		return float64(r.Results[decode.VariantASan].Cycles) / float64(r.Results[pred].Cycles)
	})
	s.BTSpeedupPct = 100 * (geo("", func(r *Fig6Row) float64 {
		return float64(r.Results[decode.VariantBinaryTranslation].Cycles) / float64(r.Results[pred].Cycles)
	}) - 1)
	return s
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// FormatFig6 renders Figure 6 (top and bottom) as text tables.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6 (top): Normalized Performance (1.0 = insecure baseline; higher is better)\n")
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for _, v := range fig6Variants {
		fmt.Fprintf(&b, "%10s", shortVariant(v))
	}
	b.WriteByte('\n')
	for i := range rows {
		fmt.Fprintf(&b, "%-14s", rows[i].Bench)
		for _, v := range fig6Variants {
			fmt.Fprintf(&b, "%10.3f", rows[i].Norm(v))
		}
		b.WriteByte('\n')
	}
	b.WriteString("\nFigure 6 (bottom): Normalized uop Expansion (1.0 = baseline)\n")
	fmt.Fprintf(&b, "%-14s%10s%10s\n", "benchmark", "CHEx86", "ASan")
	for i := range rows {
		fmt.Fprintf(&b, "%-14s%10.2f%10.2f\n", rows[i].Bench,
			rows[i].NormExpansion(decode.VariantMicrocodePrediction),
			rows[i].NormExpansion(decode.VariantASan))
	}
	s := Summarize(rows)
	fmt.Fprintf(&b, "\nSummary: SPEC slowdown %.1f%% | PARSEC slowdown %.1f%% | vs ASan: %.2fx (SPEC) %.2fx (PARSEC) | vs BT: +%.1f%%\n",
		s.SPECSlowdownPct, s.PARSECSlowdownPct, s.SpeedupVsASanSPEC, s.SpeedupVsASanPARSC, s.BTSpeedupPct)
	return b.String()
}

func shortVariant(v decode.Variant) string {
	switch v {
	case decode.VariantInsecure:
		return "base"
	case decode.VariantHardwareOnly:
		return "hw-only"
	case decode.VariantBinaryTranslation:
		return "bintrans"
	case decode.VariantMicrocodeAlwaysOn:
		return "ucode-all"
	case decode.VariantMicrocodePrediction:
		return "ucode-prd"
	case decode.VariantASan:
		return "asan"
	}
	return "?"
}

// ---------------------------------------------------------------------
// Figure 7: capability cache and alias cache miss rates.
// ---------------------------------------------------------------------

// Fig7Row holds one benchmark's cache sensitivity results.
type Fig7Row struct {
	Bench        string
	CapMiss64    float64
	CapMiss128   float64
	AliasMiss256 float64
	AliasMiss512 float64
}

// RunFig7 sweeps the capability cache (64 vs 128 entries) and alias cache
// (256 vs 512 entries) under the prediction-driven variant.
func RunFig7(o Options) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, p := range o.profiles() {
		row := Fig7Row{Bench: p.Name}
		base := pipeline.DefaultConfig()
		res, err := run(p, base, &o)
		if err != nil {
			return nil, err
		}
		row.CapMiss64 = res.CapCache.MissRate()
		row.AliasMiss256 = res.AliasCache.MissRate()

		big := base
		big.CapCacheEntries = 128
		if res, err = run(p, big, &o); err != nil {
			return nil, err
		}
		row.CapMiss128 = res.CapCache.MissRate()

		big = base
		big.AliasCacheEntries = 512
		if res, err = run(p, big, &o); err != nil {
			return nil, err
		}
		row.AliasMiss512 = res.AliasCache.MissRate()
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig7 renders Figure 7 as a text table.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Figure 7: Capability (top) and Alias (bottom) Cache Miss Rates\n")
	fmt.Fprintf(&b, "%-14s%12s%12s%14s%14s\n", "benchmark", "cap 64e", "cap 128e", "alias 256e", "alias 512e")
	var s64, s128, a256, a512 float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s%11.1f%%%11.1f%%%13.1f%%%13.1f%%\n", r.Bench,
			100*r.CapMiss64, 100*r.CapMiss128, 100*r.AliasMiss256, 100*r.AliasMiss512)
		s64 += r.CapMiss64
		s128 += r.CapMiss128
		a256 += r.AliasMiss256
		a512 += r.AliasMiss512
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&b, "%-14s%11.1f%%%11.1f%%%13.1f%%%13.1f%%\n", "average",
			100*s64/n, 100*s128/n, 100*a256/n, 100*a512/n)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 8: alias misprediction rate and squash time.
// ---------------------------------------------------------------------

// Fig8Row holds one benchmark's misprediction and squash results.
type Fig8Row struct {
	Bench         string
	Mispred1024   float64
	Mispred2048   float64
	SquashBasePct float64
	SquashCHExPct float64
	PNA0,
	P0AN,
	PMAN uint64
}

// RunFig8 sweeps the pointer-reload predictor (1024 vs 2048 entries) and
// compares squash time against the insecure baseline.
func RunFig8(o Options) ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, p := range o.profiles() {
		row := Fig8Row{Bench: p.Name}

		cfg := pipeline.DefaultConfig()
		cfg.PredictorEntries = 1024
		res, err := run(p, cfg, &o)
		if err != nil {
			return nil, err
		}
		row.Mispred1024 = res.Predictor.MispredictionRate()
		row.SquashCHExPct = res.SquashPct()
		row.PNA0, row.P0AN, row.PMAN = res.Predictor.PNA0, res.Predictor.P0AN, res.Predictor.PMAN

		cfg.PredictorEntries = 2048
		if res, err = run(p, cfg, &o); err != nil {
			return nil, err
		}
		row.Mispred2048 = res.Predictor.MispredictionRate()

		base := pipeline.DefaultConfig()
		base.Variant = decode.VariantInsecure
		if res, err = run(p, base, &o); err != nil {
			return nil, err
		}
		row.SquashBasePct = res.SquashPct()
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig8 renders Figure 8 as a text table.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString("Figure 8: Pointer Alias Misprediction Rate (top) and % Time Squashing (bottom)\n")
	fmt.Fprintf(&b, "%-14s%12s%12s%14s%14s\n", "benchmark", "mis 1024e", "mis 2048e", "squash base", "squash CHEx")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s%11.1f%%%11.1f%%%13.2f%%%13.2f%%\n", r.Bench,
			100*r.Mispred1024, 100*r.Mispred2048, r.SquashBasePct, r.SquashCHExPct)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 9: memory storage overhead and bandwidth.
// ---------------------------------------------------------------------

// Fig9Row holds one benchmark's memory-system results.
type Fig9Row struct {
	Bench       string
	BaseRSS     uint64
	ASanRSS     uint64
	CHExRSS     uint64
	BaseBWMBs   float64
	CHExBWMBs   float64
	ShadowBytes uint64
}

// RunFig9 measures resident-set and bandwidth impact.
func RunFig9(o Options) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, p := range o.profiles() {
		row := Fig9Row{Bench: p.Name}
		base := pipeline.DefaultConfig()
		base.Variant = decode.VariantInsecure
		res, err := run(p, base, &o)
		if err != nil {
			return nil, err
		}
		row.BaseRSS = res.UserRSS
		row.BaseBWMBs = res.BandwidthMBs()

		chex := pipeline.DefaultConfig()
		if res, err = run(p, chex, &o); err != nil {
			return nil, err
		}
		row.CHExRSS = res.UserRSS + res.ShadowRSS
		row.ShadowBytes = res.ShadowRSS
		row.CHExBWMBs = res.BandwidthMBs()

		asan := pipeline.DefaultConfig()
		asan.Variant = decode.VariantASan
		if res, err = run(p, asan, &o); err != nil {
			return nil, err
		}
		// ASan's shadow is 1/8th of addressable user memory it touches,
		// plus redzones and quarantine already reflected in user RSS.
		row.ASanRSS = res.UserRSS + res.UserRSS/8
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFig9 renders Figure 9 as a text table.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString("Figure 9: Memory Storage Overhead (top) and Memory Bandwidth (bottom)\n")
	fmt.Fprintf(&b, "%-14s%12s%12s%12s%14s%14s\n",
		"benchmark", "base RSS", "ASan RSS", "CHEx RSS", "base MB/s", "CHEx MB/s")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s%12s%12s%12s%14.1f%14.1f\n", r.Bench,
			fmtBytes(r.BaseRSS), fmtBytes(r.ASanRSS), fmtBytes(r.CHExRSS),
			r.BaseBWMBs, r.CHExBWMBs)
	}
	return b.String()
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// ---------------------------------------------------------------------
// Table II: temporal pointer access patterns.
// ---------------------------------------------------------------------

// Table2Result holds the per-benchmark pattern classification summary.
type Table2Result struct {
	Bench   string
	Summary map[patterns.Kind]int
}

// RunTable2 collects per-PC pointer-reload PID sequences from a
// prediction-driven run and classifies them into the Table II patterns.
func RunTable2(o Options) ([]Table2Result, error) {
	var out []Table2Result
	for _, p := range o.profiles() {
		prog, err := p.Build(o.Scale)
		if err != nil {
			return nil, err
		}
		cfg := pipeline.DefaultConfig()
		cfg.MaxInsts = o.MaxInsts
		cfg.MaxCycles = o.MaxCycles
		sim, err := pipeline.NewSim(prog, cfg, harts(p))
		if err != nil {
			return nil, err
		}
		col := patterns.NewCollector(0)
		sim.SetReloadHook(func(pc uint64, pid core.PID) { col.Observe(pc, pid) })
		if _, err := o.runSim(context.Background(), sim); err != nil {
			return nil, err
		}
		out = append(out, Table2Result{Bench: p.Name, Summary: col.Summary()})
	}
	return out, nil
}

// FormatTable2 renders the aggregate pattern distribution.
func FormatTable2(results []Table2Result) string {
	var b strings.Builder
	b.WriteString("Table II: Temporal Pointer Access Patterns (pointer-reload PCs by pattern)\n")
	fmt.Fprintf(&b, "%-14s", "benchmark")
	for k := patterns.Kind(0); k < patterns.NumKinds; k++ {
		fmt.Fprintf(&b, "%20s", k)
	}
	b.WriteByte('\n')
	totals := make(map[patterns.Kind]int)
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s", r.Bench)
		for k := patterns.Kind(0); k < patterns.NumKinds; k++ {
			fmt.Fprintf(&b, "%20d", r.Summary[k])
			totals[k] += r.Summary[k]
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-14s", "total")
	for k := patterns.Kind(0); k < patterns.NumKinds; k++ {
		fmt.Fprintf(&b, "%20d", totals[k])
	}
	b.WriteByte('\n')
	return b.String()
}
