package experiments

import (
	"fmt"
	"testing"
)

func TestWatchdogComparison(t *testing.T) {
	o := quickOpts()
	o.Benches = []string{"perlbench", "xalancbmk", "lbm"}
	rows, err := RunWatchdog(o)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatWatchdog(rows))
	for _, r := range rows {
		if r.WatchdogSlowdownPct < r.CHExSlowdownPct {
			t.Errorf("%s: conservative instrumentation (%.1f%%) must cost more than prediction-driven (%.1f%%)",
				r.Bench, r.WatchdogSlowdownPct, r.CHExSlowdownPct)
		}
		if r.MemRefRatio < 1.4 {
			t.Errorf("%s: Watchdog should roughly double memory references, got %.2fx", r.Bench, r.MemRefRatio)
		}
	}
}
