package experiments

import (
	"context"
	"fmt"
	"strings"

	"chex86/internal/elide"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// ElisionRow is one benchmark's proof-carrying check-elision measurement:
// the static proof/verification counts, and the dynamic effect of
// replaying the workload with the verified elision map installed
// (DESIGN.md §11).
type ElisionRow struct {
	Bench string `json:"bench"`

	Verified bool `json:"verified"` // the proof bundle passed the checker

	Sites    int `json:"sites"`    // static memory access sites
	Proofs   int `json:"proofs"`   // proofs emitted by the analyzer
	Elided   int `json:"elided"`   // proofs verified by the checker
	CtxElide int `json:"ctxElide"` // verified proofs qualified to a calling context
	Rejected int `json:"rejected"` // proofs the checker refused

	// Dynamic counts from the elision run.
	ChecksRun    uint64 `json:"checks_run"`
	ChecksElided uint64 `json:"checks_elided"`

	BaseCycles  uint64 `json:"base_cycles"`
	ElideCycles uint64 `json:"elide_cycles"`
}

// ElisionRate is the fraction of would-be capability checks suppressed
// by verified proofs.
func (r *ElisionRow) ElisionRate() float64 {
	total := r.ChecksRun + r.ChecksElided
	if total == 0 {
		return 0
	}
	return float64(r.ChecksElided) / float64(total)
}

// Speedup is baseline cycles over elision cycles (>1 = elision helps).
func (r *ElisionRow) Speedup() float64 {
	if r.ElideCycles == 0 {
		return 0
	}
	return float64(r.BaseCycles) / float64(r.ElideCycles)
}

// runWithElision executes one benchmark under cfg with an elision map
// installed (RunOne's measurement policy otherwise).
func runWithElision(ctx context.Context, p *workload.Profile, cfg pipeline.Config,
	o *Options, m pipeline.ElisionMap) (*pipeline.Result, error) {
	prog, err := p.Build(o.Scale)
	if err != nil {
		return nil, err
	}
	cfg.WarmupInsts = p.SetupInsts()
	cfg.MaxInsts = o.MaxInsts
	if cfg.MaxInsts > 0 {
		cfg.MaxInsts += cfg.WarmupInsts
	}
	cfg.MaxCycles = o.MaxCycles
	sim, err := pipeline.NewSim(prog, cfg, harts(p))
	if err != nil {
		return nil, err
	}
	sim.SetElisionMap(m)
	return o.runSim(ctx, sim)
}

// RunElision measures proof-carrying check elision across the selected
// benchmarks under the prediction-driven variant: analyze, verify,
// replay with and without the verified map.
func RunElision(o Options) ([]ElisionRow, error) {
	var out []ElisionRow
	for _, p := range o.profiles() {
		prog, err := p.Build(o.Scale)
		if err != nil {
			return nil, err
		}
		rep, err := elide.ForProgram(prog, elide.Options{Harts: harts(p), ContextK: o.ContextK})
		if err != nil {
			return nil, fmt.Errorf("elision %s: %w", p.Name, err)
		}
		row := ElisionRow{
			Bench:    p.Name,
			Verified: rep.Verified,
			Sites:    rep.Stats.Sites,
			Proofs:   rep.Stats.Proofs,
			Elided:   rep.Stats.Elided,
			Rejected: rep.Stats.Rejected,
		}
		for i := range rep.Decisions {
			d := &rep.Decisions[i]
			if d.Status == "elide" && d.Ctx != "any" {
				row.CtxElide++
			}
		}

		ctx := context.Background()
		base, err := run(p, pipeline.DefaultConfig(), &o)
		if err != nil {
			return nil, fmt.Errorf("elision %s (baseline): %w", p.Name, err)
		}
		row.BaseCycles = base.Cycles

		cfg := pipeline.DefaultConfig()
		cfg.ElideChecks = true
		cfg.ElisionDigest = rep.Digest
		cfg.ElisionCtxK = rep.CtxK
		res, err := runWithElision(ctx, p, cfg, &o, rep.Map)
		if err != nil {
			return nil, fmt.Errorf("elision %s (elide): %w", p.Name, err)
		}
		row.ElideCycles = res.Cycles
		row.ChecksRun = res.ChecksRun
		row.ChecksElided = res.ChecksElided
		out = append(out, row)
	}
	return out, nil
}

// FormatElision renders the elision table. The trailing total line is
// the CI smoke contract: a nonzero elided count proves the proof chain
// end to end.
func FormatElision(rows []ElisionRow) string {
	var b strings.Builder
	b.WriteString("Proof-carrying check elision (prediction-driven variant, verified proofs only)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s %8s %12s %12s %8s %8s\n",
		"benchmark", "sites", "proofs", "elided", "ctx", "reject", "checks", "suppressed", "rate", "speedup")
	var checks, suppressed uint64
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(&b, "%-14s %8d %8d %8d %8d %8d %12d %12d %7.2f%% %7.3fx\n",
			r.Bench, r.Sites, r.Proofs, r.Elided, r.CtxElide, r.Rejected,
			r.ChecksRun, r.ChecksElided, 100*r.ElisionRate(), r.Speedup())
		checks += r.ChecksRun
		suppressed += r.ChecksElided
	}
	rate := 0.0
	if checks+suppressed > 0 {
		rate = float64(suppressed) / float64(checks+suppressed)
	}
	fmt.Fprintf(&b, "total: checks=%d elided=%d (rate %.2f%%)\n", checks, suppressed, 100*rate)
	return b.String()
}
