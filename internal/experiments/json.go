package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// WriteJSON serializes an experiment's rows to dir/name.json for
// machine-readable post-processing (plotting, regression tracking).
func WriteJSON(dir, name string, v any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal %s: %w", name, err)
	}
	path := filepath.Join(dir, name+".json")
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
