package experiments

import (
	"fmt"
	"strings"

	"chex86/internal/decode"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// WatchdogRow holds one benchmark's Section VII-C comparison: CHEx86's
// prediction-driven instrumentation against Watchdog-style conservative
// instrumentation of every 64-bit load/store with shadow metadata reads.
type WatchdogRow struct {
	Bench string

	WatchdogSlowdownPct float64
	CHExSlowdownPct     float64

	// MemRefRatio is Watchdog's memory references relative to the
	// baseline (the paper: "increasing the number of memory references by
	// as much as 2X").
	MemRefRatio float64

	// Shadow storage: Watchdog scales with the words of memory touched;
	// CHEx86 scales with allocations (capability table) and references
	// (alias table).
	WatchdogShadowBytes uint64
	CHExShadowBytes     uint64
}

// RunWatchdog performs the Section VII-C comparison over the SPEC subset.
func RunWatchdog(o Options) ([]WatchdogRow, error) {
	if len(o.Benches) == 0 {
		for _, p := range workload.Catalog() {
			if p.Suite == workload.SuiteSPEC {
				o.Benches = append(o.Benches, p.Name)
			}
		}
	}
	var rows []WatchdogRow
	for _, p := range o.profiles() {
		base := pipeline.DefaultConfig()
		base.Variant = decode.VariantInsecure
		rb, err := run(p, base, &o)
		if err != nil {
			return nil, err
		}
		wd := pipeline.DefaultConfig()
		wd.Variant = decode.VariantWatchdog
		rw, err := run(p, wd, &o)
		if err != nil {
			return nil, err
		}
		rc, err := run(p, pipeline.DefaultConfig(), &o)
		if err != nil {
			return nil, err
		}
		row := WatchdogRow{Bench: p.Name}
		row.WatchdogSlowdownPct = 100 * (float64(rw.Cycles)/float64(rb.Cycles) - 1)
		row.CHExSlowdownPct = 100 * (float64(rc.Cycles)/float64(rb.Cycles) - 1)
		if rb.L1D.Accesses() > 0 {
			row.MemRefRatio = float64(rw.L1D.Accesses()) / float64(rb.L1D.Accesses())
		}
		// Watchdog's metadata is word-for-word with touched memory.
		row.WatchdogShadowBytes = rw.UserRSS
		row.CHExShadowBytes = rc.ShadowRSS
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatWatchdog renders the comparison.
func FormatWatchdog(rows []WatchdogRow) string {
	var b strings.Builder
	b.WriteString("Section VII-C: Watchdog-style conservative instrumentation vs CHEx86\n")
	fmt.Fprintf(&b, "%-14s%16s%14s%12s%16s%14s\n",
		"benchmark", "watchdog slow", "CHEx86 slow", "memrefs", "watchdog shdw", "CHEx86 shdw")
	var wSum, cSum, mSum float64
	var wShadow, cShadow uint64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s%15.1f%%%13.1f%%%11.2fx%16s%14s\n", r.Bench,
			r.WatchdogSlowdownPct, r.CHExSlowdownPct, r.MemRefRatio,
			fmtBytes(r.WatchdogShadowBytes), fmtBytes(r.CHExShadowBytes))
		wSum += r.WatchdogSlowdownPct
		cSum += r.CHExSlowdownPct
		mSum += r.MemRefRatio
		wShadow += r.WatchdogShadowBytes
		cShadow += r.CHExShadowBytes
	}
	n := float64(len(rows))
	if n > 0 {
		reduction := 0.0
		if wShadow > 0 {
			reduction = 100 * (1 - float64(cShadow)/float64(wShadow))
		}
		fmt.Fprintf(&b, "%-14s%15.1f%%%13.1f%%%11.2fx   shadow memory reduction: %.0f%%\n",
			"average", wSum/n, cSum/n, mSum/n, reduction)
	}
	return b.String()
}
