package experiments

import "testing"

// TestCapCacheSweepMonotone: growing the capability cache must not raise
// its miss rate, and the curve must flatten by the design point (the
// §VII-B knee justifying 64 entries).
func TestCapCacheSweepMonotone(t *testing.T) {
	o := Options{Scale: 0.2, MaxInsts: 120_000}
	rows, err := RunSweep("xalancbmk", SweepCapCache, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("want 5 sweep points, got %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].MissPct > rows[i-1].MissPct+0.5 {
			t.Errorf("miss rate rose with size: %d entries %.2f%% -> %d entries %.2f%%",
				rows[i-1].Entries, rows[i-1].MissPct, rows[i].Entries, rows[i].MissPct)
		}
	}
	// The largest point should be near the knee's floor: no worse than
	// half the smallest point's miss rate (the structure is cacheable).
	if first, last := rows[0].MissPct, rows[len(rows)-1].MissPct; first > 1 && last > first/2 {
		t.Errorf("no knee: %.2f%% at %d entries vs %.2f%% at %d",
			first, rows[0].Entries, last, rows[len(rows)-1].Entries)
	}
}

// TestSweepKindsRun: every sweep kind produces a well-formed table on a
// small run (smoke coverage for the alias-cache and predictor sweeps).
func TestSweepKindsRun(t *testing.T) {
	o := Options{Scale: 0.1, MaxInsts: 60_000}
	for _, k := range []SweepKind{SweepAliasCache, SweepPredictor} {
		rows, err := RunSweep("mcf", k, o)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(rows) != 5 {
			t.Fatalf("%v: want 5 points, got %d", k, len(rows))
		}
		if s := FormatSweep("mcf", k, rows); s == "" {
			t.Fatalf("%v: empty table", k)
		}
	}
}

func TestSweepUnknownBench(t *testing.T) {
	if _, err := RunSweep("nope", SweepCapCache, DefaultOptions()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
