package experiments

import (
	"fmt"
	"testing"

	"chex86/internal/decode"
	"chex86/internal/patterns"
)

func quickOpts() Options {
	return Options{Scale: 0.25, MaxInsts: 250_000}
}

// TestFig6Shape verifies the paper's headline orderings on a scaled run:
// ASan is the slowest protected configuration everywhere, CHEx86's
// prediction-driven variant beats binary translation on average, and the
// insecure baseline is fastest.
func TestFig6Shape(t *testing.T) {
	rows, err := RunFig6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("expected 14 benchmarks, got %d", len(rows))
	}
	fmt.Println(FormatFig6(rows))
	for i := range rows {
		r := &rows[i]
		pred := r.Norm(decode.VariantMicrocodePrediction)
		asan := r.Norm(decode.VariantASan)
		if pred <= 0 || asan <= 0 {
			t.Fatalf("%s: missing results", r.Bench)
		}
		if asan > pred*1.02 {
			t.Errorf("%s: ASan (%.3f) should not beat prediction-driven (%.3f)", r.Bench, asan, pred)
		}
		if r.Norm(decode.VariantInsecure) != 1.0 {
			t.Errorf("%s: baseline must normalize to 1.0", r.Bench)
		}
		if exp := r.NormExpansion(decode.VariantASan); exp < 1.5 {
			t.Errorf("%s: ASan uop expansion %.2f should be well above baseline", r.Bench, exp)
		}
		if exp := r.NormExpansion(decode.VariantMicrocodePrediction); exp < 1.0 || exp > 1.6 {
			t.Errorf("%s: CHEx86 uop expansion %.2f out of expected band", r.Bench, exp)
		}
	}
	s := Summarize(rows)
	if s.SpeedupVsASanSPEC < 1.2 {
		t.Errorf("CHEx86 should clearly outperform ASan on SPEC; got %.2fx", s.SpeedupVsASanSPEC)
	}
	if s.BTSpeedupPct < 0 {
		t.Errorf("microcode variant should not lose to binary translation on average; got %+.1f%%", s.BTSpeedupPct)
	}
}

func TestFig7Shape(t *testing.T) {
	o := quickOpts()
	o.Benches = []string{"perlbench", "mcf", "lbm", "xalancbmk"}
	rows, err := RunFig7(o)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatFig7(rows))
	for _, r := range rows {
		if r.CapMiss128 > r.CapMiss64*1.1+0.01 {
			t.Errorf("%s: 128-entry capability cache should not miss more than 64-entry (%.3f vs %.3f)",
				r.Bench, r.CapMiss128, r.CapMiss64)
		}
		if r.AliasMiss512 > r.AliasMiss256*1.1+0.01 {
			t.Errorf("%s: 512-entry alias cache should not miss more than 256-entry", r.Bench)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	o := quickOpts()
	o.Benches = []string{"perlbench", "lbm", "canneal"}
	rows, err := RunFig8(o)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatFig8(rows))
	for _, r := range rows {
		if r.Mispred2048 > r.Mispred1024*1.15+0.01 {
			t.Errorf("%s: larger predictor should not mispredict more", r.Bench)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	o := quickOpts()
	o.Benches = []string{"perlbench", "xalancbmk", "lbm"}
	rows, err := RunFig9(o)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatFig9(rows))
	for _, r := range rows {
		if r.CHExRSS < r.BaseRSS {
			t.Errorf("%s: CHEx86 RSS below baseline", r.Bench)
		}
		if r.CHExRSS > r.ASanRSS*3/2 {
			t.Errorf("%s: CHEx86 should not allocate much more shadow memory than ASan (%d vs %d)",
				r.Bench, r.CHExRSS, r.ASanRSS)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	rows, err := RunFig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatFig3(rows))
	for _, r := range rows {
		if r.Stats.TotalAllocs == 0 {
			t.Errorf("%s: no allocations", r.Bench)
		}
		if r.Stats.MaxLive > r.Stats.TotalAllocs {
			t.Errorf("%s: max live exceeds total", r.Bench)
		}
		// Churn within an interval lets distinct-touched exceed peak-live
		// slightly; it must stay the smallest of the three metrics overall.
		if r.Stats.AvgInUse > 2*float64(r.Stats.MaxLive) {
			t.Errorf("%s: in-use (%.0f) far exceeds live (%d)", r.Bench, r.Stats.AvgInUse, r.Stats.MaxLive)
		}
	}
}

func TestTable1RuleValidation(t *testing.T) {
	o := quickOpts()
	o.Benches = []string{"perlbench", "mcf", "canneal"}
	results, err := RunTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatTable1(results))
	for _, r := range results {
		if r.Validations == 0 {
			t.Errorf("%s: checker validated nothing", r.Bench)
		}
		if r.Validations > 0 && float64(r.Mismatches)/float64(r.Validations) > 0.01 {
			t.Errorf("%s: rule mismatch rate too high: %d/%d", r.Bench, r.Mismatches, r.Validations)
		}
	}
}

func TestTable2Patterns(t *testing.T) {
	o := quickOpts()
	o.Benches = []string{"perlbench", "lbm", "canneal"}
	results, err := RunTable2(o)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatTable2(results))
	// perlbench must exhibit Batch+Stride behavior (the paper singles it
	// out); lbm must be dominated by Constant.
	for _, r := range results {
		switch r.Bench {
		case "perlbench":
			if r.Summary[patterns.BatchStride] == 0 {
				t.Error("perlbench should show Batch + Stride reload PCs")
			}
		case "lbm":
			if r.Summary[patterns.Constant] == 0 {
				t.Error("lbm should show Constant reload PCs")
			}
		}
	}
}

func TestTable4(t *testing.T) {
	o := quickOpts()
	o.Benches = []string{"perlbench", "lbm"}
	rows, err := RunTable4(o)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatTable4(rows))
	last := rows[len(rows)-1]
	if last.Proposal != "CHEx86" || !last.IsMeasured {
		t.Fatal("CHEx86 measured row missing")
	}
	if !last.Temporal || !last.Spatial || last.BinCompat != "Yes" {
		t.Error("CHEx86 row should claim temporal+spatial safety with binary compatibility")
	}
}
