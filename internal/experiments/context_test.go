package experiments

import (
	"fmt"
	"testing"
)

// TestContextSweepMonotone: overhead and injected-check counts grow with
// the covered fraction; at 0% coverage the scheme costs only allocation
// tracking.
func TestContextSweepMonotone(t *testing.T) {
	rows, err := RunContextSweep("xalancbmk", quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(FormatContextSweep("xalancbmk", rows))
	if len(rows) != 5 {
		t.Fatalf("expected 5 sweep points, got %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Checks < rows[i-1].Checks {
			t.Errorf("checks must grow with coverage: %d -> %d at %f%%",
				rows[i-1].Checks, rows[i].Checks, rows[i].CoveredPct)
		}
	}
	if rows[0].Checks != 0 {
		t.Errorf("zero coverage must inject zero checks, got %d", rows[0].Checks)
	}
	full := rows[len(rows)-1]
	if full.SlowdownPct <= rows[0].SlowdownPct {
		t.Errorf("full coverage (%f%%) should cost more than zero coverage (%f%%)",
			full.SlowdownPct, rows[0].SlowdownPct)
	}
}
