package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"chex86/internal/elide"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// TestSuperblockGuardDifferential is the hard half of the superblock
// byte-identity contract (DESIGN.md §17): with elision AND hoisted
// guards live, every per-site decision a superblock bakes at install
// time — context-policy coverage, elision-hit masks, guard-subsumption
// masks, guard anchors — must reproduce the single-op path's map probes
// exactly. Across every catalog workload, the full Result and the guard
// counters must be byte-identical with superblock replay on and off.
func TestSuperblockGuardDifferential(t *testing.T) {
	o := Options{Scale: 0.1, MaxInsts: 50_000}
	ctx := context.Background()

	for _, p := range workload.Catalog() {
		prog, err := p.Build(o.Scale)
		if err != nil {
			t.Fatalf("%s: build: %v", p.Name, err)
		}
		rep, err := elide.ForProgram(prog, elide.Options{Harts: harts(p)})
		if err != nil {
			t.Fatalf("%s: elide: %v", p.Name, err)
		}

		cfg := pipeline.DefaultConfig()
		cfg.ElideChecks = true
		cfg.ElisionDigest = rep.Digest
		cfg.ElisionCtxK = rep.CtxK
		cfg.HoistGuards = true
		cfg.GuardDigest = rep.Guards.Digest

		on, gsOn, err := runWithGuards(ctx, p, cfg, &o, rep)
		if err != nil {
			t.Fatalf("%s: superblocks-on run: %v", p.Name, err)
		}
		cfgOff := cfg
		cfgOff.NoSuperblocks = true
		off, gsOff, err := runWithGuards(ctx, p, cfgOff, &o, rep)
		if err != nil {
			t.Fatalf("%s: superblocks-off run: %v", p.Name, err)
		}

		onJSON, _ := json.Marshal(on)
		offJSON, _ := json.Marshal(off)
		if string(onJSON) != string(offJSON) {
			t.Errorf("%s: Result diverged with superblocks on vs off\non:  %s\noff: %s",
				p.Name, onJSON, offJSON)
		}
		if gsOn != gsOff {
			t.Errorf("%s: guard counters diverged with superblocks on vs off: on %+v, off %+v",
				p.Name, gsOn, gsOff)
		}
	}
}
