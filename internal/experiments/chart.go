package experiments

import (
	"fmt"
	"strings"

	"chex86/internal/decode"
)

// barChart renders a horizontal ASCII bar chart: one row per label, bars
// scaled to maxWidth columns against the series maximum.
func barChart(title string, labels []string, values []float64, unit string) string {
	const maxWidth = 48
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, l := range labels {
		n := int(values[i] / maxV * maxWidth)
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-14s %-*s %.2f%s\n", l, maxWidth, strings.Repeat("#", n), values[i], unit)
	}
	return b.String()
}

// ChartFig6 renders Figure 6 (top) as grouped ASCII bars of the
// prediction-driven and ASan slowdowns per benchmark.
func ChartFig6(rows []Fig6Row) string {
	labels := make([]string, 0, len(rows))
	pred := make([]float64, 0, len(rows))
	asan := make([]float64, 0, len(rows))
	for i := range rows {
		labels = append(labels, rows[i].Bench)
		pred = append(pred, rows[i].Norm(decode.VariantMicrocodePrediction))
		asan = append(asan, rows[i].Norm(decode.VariantASan))
	}
	return barChart("Normalized performance — CHEx86 prediction-driven (1.0 = baseline)", labels, pred, "") +
		"\n" + barChart("Normalized performance — AddressSanitizer", labels, asan, "")
}

// ChartFig7 renders the capability-cache miss-rate series.
func ChartFig7(rows []Fig7Row) string {
	labels := make([]string, 0, len(rows))
	miss := make([]float64, 0, len(rows))
	for _, r := range rows {
		labels = append(labels, r.Bench)
		miss = append(miss, 100*r.CapMiss64)
	}
	return barChart("Capability cache miss rate, 64 entries", labels, miss, "%")
}

// ChartFig8 renders the alias misprediction series.
func ChartFig8(rows []Fig8Row) string {
	labels := make([]string, 0, len(rows))
	mis := make([]float64, 0, len(rows))
	for _, r := range rows {
		labels = append(labels, r.Bench)
		mis = append(mis, 100*r.Mispred1024)
	}
	return barChart("Pointer alias misprediction rate, 1024-entry predictor", labels, mis, "%")
}
