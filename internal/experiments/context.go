package experiments

import (
	"fmt"
	"strings"

	"chex86/internal/core"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// ContextRow holds one point of the context-sensitivity sweep: the
// overhead of the prediction-driven variant when only the given fraction
// of program text is designated security-critical. Allocations are
// tracked globally at every point; only capCheck injection is surgical
// (Section VII-D).
type ContextRow struct {
	CoveredPct   float64
	SlowdownPct  float64
	InjectedUops uint64
	Checks       uint64
}

// RunContextSweep measures overhead as a function of covered-text
// fraction for one benchmark — the quantified version of the paper's
// "greatly reducing the micro-op bloat" claim.
func RunContextSweep(bench string, o Options) ([]ContextRow, error) {
	p := workload.ByName(bench)
	if p == nil {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}
	prog, err := p.Build(o.Scale)
	if err != nil {
		return nil, err
	}
	textLo, textHi := prog.TextBase, prog.End()

	base := pipeline.DefaultConfig()
	base.Variant = 0 // insecure baseline
	rb, err := run(p, base, &o)
	if err != nil {
		return nil, err
	}

	var rows []ContextRow
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		cfg := pipeline.DefaultConfig()
		if frac >= 1.0 {
			cfg.Context = core.Always()
		} else {
			hi := textLo + uint64(float64(textHi-textLo)*frac)
			cfg.Context = core.Only(core.Region{Lo: textLo, Hi: hi})
		}
		res, err := run(p, cfg, &o)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ContextRow{
			CoveredPct:   100 * frac,
			SlowdownPct:  100 * (float64(res.Cycles)/float64(rb.Cycles) - 1),
			InjectedUops: res.InjectedUops,
			Checks:       res.ChecksRun,
		})
	}
	return rows, nil
}

// FormatContextSweep renders the sweep.
func FormatContextSweep(bench string, rows []ContextRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Context-sensitivity sweep (%s): overhead vs covered-text fraction\n", bench)
	fmt.Fprintf(&b, "%12s%14s%16s%12s\n", "covered", "slowdown", "injected uops", "checks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%11.0f%%%13.1f%%%16d%12d\n", r.CoveredPct, r.SlowdownPct, r.InjectedUops, r.Checks)
	}
	return b.String()
}
