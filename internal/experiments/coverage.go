package experiments

import (
	"context"
	"fmt"
	"strings"

	"chex86/internal/ptrflow"
)

// CoverageRow is one benchmark's tracker-coverage measurement: the static
// pointer-flow analysis cross-checked against the dynamic tracker's tag
// stream (DESIGN.md §9).
type CoverageRow struct {
	Bench string `json:"bench"`

	MemSites     int `json:"mem_sites"`
	PointerSites int `json:"pointer_sites"`
	UnknownSites int `json:"unknown_sites"`
	AssumedSites int `json:"assumed_sites"`

	DerefExecs  uint64 `json:"deref_execs"`
	TaggedExecs uint64 `json:"tagged_execs"`

	// Coverage is the fraction of dynamic dereferences at statically
	// proven pointer sites that the tracker tagged (1.0 = the tracker
	// never missed a pointer the analysis can prove).
	Coverage float64 `json:"coverage"`

	FalseNegatives        int `json:"false_negatives"`
	TriagedFalseNegatives int `json:"triaged_false_negatives"`
	OverTagged            int `json:"over_tagged"`
}

// RunCoverage cross-checks every selected benchmark under the
// prediction-driven variant and returns the per-benchmark tracker
// coverage. Unlike the figure harnesses, the replay includes the setup
// phase: the cross-check wants the whole tag stream, not the
// steady-state window.
func RunCoverage(o Options) ([]CoverageRow, error) {
	var out []CoverageRow
	for _, p := range o.profiles() {
		prog, err := p.Build(o.Scale)
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		if o.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, o.Timeout)
			defer cancel()
		}
		maxInsts := o.MaxInsts
		if maxInsts > 0 {
			maxInsts += p.SetupInsts()
		}
		rep, err := ptrflow.Crosscheck(ctx, prog, ptrflow.CheckOptions{
			Harts:     harts(p),
			MaxInsts:  maxInsts,
			MaxCycles: o.MaxCycles,
		})
		if err != nil {
			return nil, fmt.Errorf("coverage %s: %w", p.Name, err)
		}
		out = append(out, CoverageRow{
			Bench:                 p.Name,
			MemSites:              rep.MemSites,
			PointerSites:          rep.PointerSites,
			UnknownSites:          rep.UnknownSites,
			AssumedSites:          rep.AssumedSites,
			DerefExecs:            rep.DerefExecs,
			TaggedExecs:           rep.TaggedExecs,
			Coverage:              rep.Coverage,
			FalseNegatives:        rep.FalseNegatives,
			TriagedFalseNegatives: rep.TriagedFalseNegatives,
			OverTagged:            rep.OverTaggedSites,
		})
	}
	return out, nil
}

// FormatCoverage renders the coverage table.
func FormatCoverage(rows []CoverageRow) string {
	var b strings.Builder
	b.WriteString("Tracker coverage (static pointer-flow cross-check, prediction-driven variant)\n")
	fmt.Fprintf(&b, "%-14s %9s %9s %9s %12s %12s %9s %6s %8s %6s\n",
		"benchmark", "sites", "ptr", "unknown", "derefs", "tagged", "coverage", "FN", "triaged", "over")
	var execs, tagged uint64
	fns := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %9d %9d %9d %12d %12d %9.4f %6d %8d %6d\n",
			r.Bench, r.MemSites, r.PointerSites, r.UnknownSites,
			r.DerefExecs, r.TaggedExecs, r.Coverage,
			r.FalseNegatives, r.TriagedFalseNegatives, r.OverTagged)
		execs += r.DerefExecs
		tagged += r.TaggedExecs
		fns += r.FalseNegatives
	}
	fmt.Fprintf(&b, "%-14s %9s %9s %9s %12d %12d %9s %6d\n",
		"total", "", "", "", execs, tagged, "", fns)
	return b.String()
}
