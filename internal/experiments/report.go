package experiments

import (
	"fmt"
	"io"

	"chex86/internal/cvedata"
)

// Report runs the complete harness and writes a self-contained markdown
// report — the regenerated counterpart of EXPERIMENTS.md — to w. The
// stamp names the run (callers pass a timestamp or build identifier).
func Report(w io.Writer, o Options, stamp string) error {
	fmt.Fprintf(w, "# CHEx86 reproduction report\n\n")
	fmt.Fprintf(w, "Run: %s — scale %.2f, per-run budget %d macro-instructions\n\n", stamp, o.Scale, o.MaxInsts)

	section := func(title string) { fmt.Fprintf(w, "## %s\n\n```\n", title) }
	endSection := func() { fmt.Fprint(w, "```\n\n") }

	section("Figure 1 — CVE root causes")
	fmt.Fprint(w, cvedata.Format())
	endSection()

	t1, err := RunTable1(o)
	if err != nil {
		return err
	}
	section("Table I — rule database and checker validation")
	fmt.Fprint(w, FormatTable1(t1))
	endSection()

	t2, err := RunTable2(o)
	if err != nil {
		return err
	}
	section("Table II — temporal pointer access patterns")
	fmt.Fprint(w, FormatTable2(t2))
	endSection()

	section("Table III — machine configuration")
	fmt.Fprint(w, FormatTable3())
	endSection()

	f3, err := RunFig3(o)
	if err != nil {
		return err
	}
	section("Figure 3 — allocation behavior")
	fmt.Fprint(w, FormatFig3(f3))
	endSection()

	t4, err := RunTable4(o)
	if err != nil {
		return err
	}
	section("Table IV — comparison with prior techniques")
	fmt.Fprint(w, FormatTable4(t4))
	endSection()

	f6, err := RunFig6(o)
	if err != nil {
		return err
	}
	section("Figure 6 — normalized performance and µop expansion")
	fmt.Fprint(w, FormatFig6(f6))
	fmt.Fprintln(w)
	fmt.Fprint(w, ChartFig6(f6))
	endSection()

	f7, err := RunFig7(o)
	if err != nil {
		return err
	}
	section("Figure 7 — capability and alias cache miss rates")
	fmt.Fprint(w, FormatFig7(f7))
	endSection()

	f8, err := RunFig8(o)
	if err != nil {
		return err
	}
	section("Figure 8 — alias misprediction and squash time")
	fmt.Fprint(w, FormatFig8(f8))
	endSection()

	wd, err := RunWatchdog(o)
	if err != nil {
		return err
	}
	section("Section VII-C — Watchdog comparison")
	fmt.Fprint(w, FormatWatchdog(wd))
	endSection()

	f9, err := RunFig9(o)
	if err != nil {
		return err
	}
	section("Figure 9 — memory storage and bandwidth")
	fmt.Fprint(w, FormatFig9(f9))
	endSection()

	cov, err := RunCoverage(o)
	if err != nil {
		return err
	}
	section("Tracker coverage — static pointer-flow cross-check")
	fmt.Fprint(w, FormatCoverage(cov))
	endSection()

	s := Summarize(f6)
	fmt.Fprintf(w, "## Headline summary\n\n")
	fmt.Fprintf(w, "| Metric | Paper | This run |\n|---|---|---|\n")
	fmt.Fprintf(w, "| SPEC slowdown | 14%% | %.1f%% |\n", s.SPECSlowdownPct)
	fmt.Fprintf(w, "| PARSEC slowdown | 9%% | %.1f%% |\n", s.PARSECSlowdownPct)
	fmt.Fprintf(w, "| Speedup vs ASan (SPEC) | 1.59x | %.2fx |\n", s.SpeedupVsASanSPEC)
	fmt.Fprintf(w, "| Speedup vs ASan (PARSEC) | 2.2x | %.2fx |\n", s.SpeedupVsASanPARSC)
	fmt.Fprintf(w, "| Microcode vs binary translation | +12%% | %+.1f%% |\n", s.BTSpeedupPct)
	return nil
}
