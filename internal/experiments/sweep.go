package experiments

import (
	"fmt"
	"strings"

	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// Structure-sizing sweeps. Figure 7 reports two sizes for the capability
// and alias caches; §VII-B's discussion hinges on where the miss-rate knee
// sits. These sweeps trace the full curve so the sizing choice (64-entry
// capability cache, 256+32-entry alias cache) can be audited rather than
// taken on faith.

// SweepRow is one point of a structure-sizing sweep.
type SweepRow struct {
	Entries     int
	MissPct     float64 // the swept structure's miss (or mispredict) rate
	SlowdownPct float64 // slowdown vs the insecure baseline
}

// SweepKind selects which structure a sweep resizes.
type SweepKind int

const (
	SweepCapCache SweepKind = iota
	SweepAliasCache
	SweepPredictor
)

// String names the swept structure.
func (k SweepKind) String() string {
	switch k {
	case SweepCapCache:
		return "capability cache"
	case SweepAliasCache:
		return "alias cache"
	case SweepPredictor:
		return "reload predictor"
	}
	return fmt.Sprintf("SweepKind(%d)", int(k))
}

// sizesFor returns the sweep points, bracketing the paper's design size.
func sizesFor(k SweepKind) []int {
	switch k {
	case SweepCapCache:
		return []int{16, 32, 64, 128, 256}
	case SweepAliasCache:
		return []int{64, 128, 256, 512, 1024}
	default:
		return []int{128, 256, 512, 1024, 2048}
	}
}

// RunSweep measures one benchmark's miss rate and slowdown as the chosen
// structure is resized, holding everything else at the Table III design.
func RunSweep(bench string, k SweepKind, o Options) ([]SweepRow, error) {
	p := workload.ByName(bench)
	if p == nil {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", bench)
	}

	base := pipeline.DefaultConfig()
	base.Variant = 0 // insecure baseline
	rb, err := run(p, base, &o)
	if err != nil {
		return nil, err
	}

	var rows []SweepRow
	for _, n := range sizesFor(k) {
		cfg := pipeline.DefaultConfig()
		switch k {
		case SweepCapCache:
			cfg.CapCacheEntries = n
		case SweepAliasCache:
			cfg.AliasCacheEntries = n
		case SweepPredictor:
			cfg.PredictorEntries = n
		}
		res, err := run(p, cfg, &o)
		if err != nil {
			return nil, err
		}
		var miss float64
		switch k {
		case SweepCapCache:
			miss = res.CapCache.MissRate()
		case SweepAliasCache:
			miss = res.AliasCache.MissRate()
		case SweepPredictor:
			miss = res.Predictor.MispredictionRate()
		}
		rows = append(rows, SweepRow{
			Entries:     n,
			MissPct:     100 * miss,
			SlowdownPct: 100 * (float64(res.Cycles)/float64(rb.Cycles) - 1),
		})
	}
	return rows, nil
}

// FormatSweep renders one sweep as a table.
func FormatSweep(bench string, k SweepKind, rows []SweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s sizing sweep (%s):\n", k, bench)
	fmt.Fprintf(&b, "%10s%12s%12s\n", "entries", "miss", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d%11.2f%%%11.1f%%\n", r.Entries, r.MissPct, r.SlowdownPct)
	}
	return b.String()
}
