package experiments

import (
	"context"
	"fmt"
	"strings"

	"chex86/internal/decode"
	"chex86/internal/memprof"
	"chex86/internal/pipeline"
	"chex86/internal/tracker"
	"chex86/internal/workload"
)

// ---------------------------------------------------------------------
// Figure 3: benchmark memory allocation behavior.
// ---------------------------------------------------------------------

// Fig3Row holds one benchmark's allocation profile.
type Fig3Row struct {
	Bench string
	Stats *memprof.Stats
}

// RunFig3 profiles allocation behavior for every benchmark. The interval
// is scaled down with the workloads (the paper uses 100M instructions at
// full benchmark scale).
func RunFig3(o Options) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, p := range o.profiles() {
		prog, err := p.Build(o.Scale)
		if err != nil {
			return nil, err
		}
		st, err := memprof.Profile(prog, harts(p), 50_000, o.MaxInsts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3Row{Bench: p.Name, Stats: st})
	}
	return rows, nil
}

// FormatFig3 renders Figure 3 as a text table.
func FormatFig3(rows []Fig3Row) string {
	var b strings.Builder
	b.WriteString("Figure 3: Benchmark Memory Allocation Behavior (scaled; ratios preserved)\n")
	fmt.Fprintf(&b, "%-14s%14s%16s%22s\n", "benchmark", "total allocs", "max live", "in-use / interval")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s%14d%16d%22.0f\n", r.Bench,
			r.Stats.TotalAllocs, r.Stats.MaxLive, r.Stats.AvgInUse)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table I: rule database, validated by the hardware checker.
// ---------------------------------------------------------------------

// Table1Result reports the checker's validation of the rule database over
// one benchmark.
type Table1Result struct {
	Bench       string
	Validations uint64
	Mismatches  uint64
	Mismatch    []tracker.Mismatch
}

// RunTable1 executes every benchmark with the hardware checker
// co-processor enabled, validating the tracker's PID predictions against
// the exhaustive ground-truth search (the rule-database construction loop
// of Section V-A).
func RunTable1(o Options) ([]Table1Result, error) {
	var out []Table1Result
	for _, p := range o.profiles() {
		prog, err := p.Build(o.Scale)
		if err != nil {
			return nil, err
		}
		cfg := pipeline.DefaultConfig()
		cfg.EnableChecker = true
		cfg.MaxInsts = o.MaxInsts
		cfg.MaxCycles = o.MaxCycles
		sim, err := pipeline.NewSim(prog, cfg, harts(p))
		if err != nil {
			return nil, err
		}
		res, err := o.runSim(context.Background(), sim)
		if err != nil {
			return nil, err
		}
		out = append(out, Table1Result{
			Bench:       p.Name,
			Validations: res.Checker.Validations,
			Mismatches:  res.Checker.Mismatches,
			Mismatch:    res.Mismatches,
		})
	}
	return out, nil
}

// FormatTable1 renders the rule database and its validation summary.
func FormatTable1(results []Table1Result) string {
	var b strings.Builder
	b.WriteString("Table I: Pointer Tracking Rule Database\n\n")
	b.WriteString(tracker.NewRuleDB().Format())
	b.WriteString("\nHardware-checker validation (PID predicted by rules vs exhaustive ground-truth search):\n")
	fmt.Fprintf(&b, "%-14s%14s%12s%12s\n", "benchmark", "validations", "mismatches", "agreement")
	for _, r := range results {
		agree := 100.0
		if r.Validations > 0 {
			agree = 100 * float64(r.Validations-r.Mismatches) / float64(r.Validations)
		}
		fmt.Fprintf(&b, "%-14s%14d%12d%11.2f%%\n", r.Bench, r.Validations, r.Mismatches, agree)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table III: hardware configuration.
// ---------------------------------------------------------------------

// FormatTable3 renders Table III.
func FormatTable3() string {
	cfg := pipeline.DefaultConfig()
	return cfg.FormatTableIII()
}

// ---------------------------------------------------------------------
// Table IV: comparison with prior memory safety techniques.
// ---------------------------------------------------------------------

// Table4Row is one comparison row. Literature rows carry the numbers the
// paper quotes; the CHEx86 row is filled from measurement.
type Table4Row struct {
	Proposal   string
	Temporal   bool
	Spatial    bool
	Metadata   string
	BinCompat  string
	PerfNote   string
	StoreNote  string
	HWChanges  string
	IsMeasured bool
}

// Table4Literature returns the prior-technique rows as the paper reports
// them.
func Table4Literature() []Table4Row {
	return []Table4Row{
		{Proposal: "Hardbound", Spatial: true, Metadata: "Shadow", BinCompat: "Partial",
			PerfNote: "5% (Olden)", StoreNote: "55% (Olden)", HWChanges: "Tag metadata cache + TLB, uop injection logic"},
		{Proposal: "Watchdog", Temporal: true, Spatial: true, Metadata: "Shadow", BinCompat: "Partial",
			PerfNote: "24% (SPEC2000)", StoreNote: "56% (SPEC2000)", HWChanges: "Renaming logic, uop injection, lock location cache"},
		{Proposal: "Intel MPX", Spatial: true, Metadata: "Inline", BinCompat: "No",
			PerfNote: "80% (SPEC2006)", StoreNote: "150% (SPEC2006)", HWChanges: "N/A"},
		{Proposal: "BOGO", Temporal: true, Spatial: true, Metadata: "Inline", BinCompat: "No",
			PerfNote: "60% (SPEC2006)", StoreNote: "36% (SPEC2006)", HWChanges: "N/A"},
		{Proposal: "CHERI", Spatial: true, Metadata: "Inline", BinCompat: "No",
			PerfNote: "18% (Olden)", StoreNote: "90% (Olden)", HWChanges: "Capability coprocessor, tag cache, capability unit"},
		{Proposal: "CHERIvoke", Temporal: true, Metadata: "Inline", BinCompat: "No",
			PerfNote: "4.7% (SPEC2006)", StoreNote: "12.5% (SPEC2006)", HWChanges: "Capability co-processor, tag cache/controller"},
		{Proposal: "REST", Temporal: true, Spatial: true, Metadata: "Shadow", BinCompat: "No",
			PerfNote: "23% (SPEC2006)", StoreNote: "N/A", HWChanges: "1-8b per L1D line, 1 comparator"},
		{Proposal: "Califorms", Temporal: true, Spatial: true, Metadata: "Shadow", BinCompat: "No",
			PerfNote: "16% (SPEC2006)", StoreNote: "N/A", HWChanges: "8b per L1D line, 1b per L2/L3 line"},
	}
}

// RunTable4 measures the CHEx86 row (SPEC performance and storage
// overhead) and appends it to the literature rows.
func RunTable4(o Options) ([]Table4Row, error) {
	rows := Table4Literature()
	specOnly := o
	if len(specOnly.Benches) == 0 {
		var names []string
		for _, p := range workload.Catalog() {
			if p.Suite == workload.SuiteSPEC {
				names = append(names, p.Name)
			}
		}
		specOnly.Benches = names
	}
	var slowProd float64 = 1
	var storProd float64 = 1
	n := 0
	for _, p := range specOnly.profiles() {
		base := pipeline.DefaultConfig()
		base.Variant = decode.VariantInsecure
		bres, err := run(p, base, &specOnly)
		if err != nil {
			return nil, err
		}
		chex := pipeline.DefaultConfig()
		cres, err := run(p, chex, &specOnly)
		if err != nil {
			return nil, err
		}
		slowProd *= float64(cres.Cycles) / float64(bres.Cycles)
		if bres.UserRSS > 0 {
			storProd *= float64(cres.UserRSS+cres.ShadowRSS) / float64(bres.UserRSS)
		}
		n++
	}
	perf := 100 * (pow(slowProd, 1/float64(n)) - 1)
	stor := 100 * (pow(storProd, 1/float64(n)) - 1)
	rows = append(rows, Table4Row{
		Proposal: "CHEx86", Temporal: true, Spatial: true, Metadata: "Shadow", BinCompat: "Yes",
		PerfNote:   fmt.Sprintf("%.0f%% (SPEC2017, measured)", perf),
		StoreNote:  fmt.Sprintf("%.0f%% (SPEC2017, measured)", stor),
		HWChanges:  "uop injection logic, Capability$, Alias$, speculative pointer tracker",
		IsMeasured: true,
	})
	return rows, nil
}

// FormatTable4 renders the comparison table.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table IV: Comparison with Prior Memory Safety Techniques\n")
	fmt.Fprintf(&b, "%-12s%6s%6s%9s%8s%-26s%-26s%s\n",
		"proposal", "temp", "spat", "metadata", "compat", "  performance", "  storage", "hardware modifications")
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s%6s%6s%9s%8s  %-24s  %-24s%s\n",
			r.Proposal, yn(r.Temporal), yn(r.Spatial), r.Metadata, r.BinCompat,
			r.PerfNote, r.StoreNote, r.HWChanges)
	}
	return b.String()
}
