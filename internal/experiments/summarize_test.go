package experiments

import (
	"math"
	"testing"

	"chex86/internal/decode"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// fabricate builds a Fig6Row with the given cycle counts per variant.
func fabricate(bench, suite string, cycles [decode.NumVariants]uint64, uops [decode.NumVariants]uint64) Fig6Row {
	row := Fig6Row{Bench: bench, Suite: suite}
	for v := decode.Variant(0); v < decode.NumVariants; v++ {
		row.Results[v] = &pipeline.Result{
			Variant:    v,
			Cycles:     cycles[v],
			MacroInsts: 1000,
			NativeUops: uops[v],
		}
	}
	return row
}

func TestNormAndExpansionMath(t *testing.T) {
	row := fabricate("x", workload.SuiteSPEC,
		[decode.NumVariants]uint64{1000, 1100, 1250, 1200, 1150, 2000},
		[decode.NumVariants]uint64{1300, 1300, 1600, 1600, 1500, 2600})
	if got := row.Norm(decode.VariantInsecure); got != 1.0 {
		t.Fatalf("baseline norm %f", got)
	}
	if got := row.Norm(decode.VariantMicrocodePrediction); math.Abs(got-1000.0/1150) > 1e-9 {
		t.Fatalf("prediction norm %f", got)
	}
	if got := row.NormExpansion(decode.VariantASan); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("ASan expansion %f", got)
	}
}

func TestSummarizeMath(t *testing.T) {
	rows := []Fig6Row{
		fabricate("a", workload.SuiteSPEC,
			[decode.NumVariants]uint64{1000, 1100, 1300, 1200, 1100, 1600},
			[decode.NumVariants]uint64{1000, 1000, 1200, 1200, 1100, 2000}),
		fabricate("b", workload.SuitePARSEC,
			[decode.NumVariants]uint64{2000, 2100, 2600, 2300, 2200, 4400},
			[decode.NumVariants]uint64{2000, 2000, 2400, 2400, 2200, 4000}),
	}
	s := Summarize(rows)
	if math.Abs(s.SPECSlowdownPct-10) > 1e-6 {
		t.Errorf("SPEC slowdown %f, want 10", s.SPECSlowdownPct)
	}
	if math.Abs(s.PARSECSlowdownPct-10) > 1e-6 {
		t.Errorf("PARSEC slowdown %f, want 10", s.PARSECSlowdownPct)
	}
	if math.Abs(s.SpeedupVsASanSPEC-1600.0/1100) > 1e-6 {
		t.Errorf("vs ASan SPEC %f", s.SpeedupVsASanSPEC)
	}
	if math.Abs(s.SpeedupVsASanPARSC-2.0) > 1e-6 {
		t.Errorf("vs ASan PARSEC %f", s.SpeedupVsASanPARSC)
	}
	// Geomean of 1300/1100 and 2600/2200 = 13/11.
	if math.Abs(s.BTSpeedupPct-100*(13.0/11-1)) > 1e-6 {
		t.Errorf("vs BT %f", s.BTSpeedupPct)
	}
}

func TestOptionsProfileSelection(t *testing.T) {
	o := Options{Benches: []string{"mcf", "nonexistent", "lbm"}}
	ps := o.profiles()
	if len(ps) != 2 || ps[0].Name != "mcf" || ps[1].Name != "lbm" {
		t.Fatalf("selection wrong: %v", ps)
	}
	all := (&Options{}).profiles()
	if len(all) != 14 {
		t.Fatalf("default selection must be the full catalog, got %d", len(all))
	}
}

func TestTable4LiteratureRows(t *testing.T) {
	rows := Table4Literature()
	if len(rows) != 8 {
		t.Fatalf("the paper compares against 8 prior techniques, got %d", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Proposal] = r
	}
	if w := byName["Watchdog"]; !w.Temporal || !w.Spatial || w.Metadata != "Shadow" {
		t.Error("Watchdog row wrong")
	}
	if c := byName["CHERI"]; c.Temporal || !c.Spatial || c.BinCompat != "No" {
		t.Error("CHERI row wrong")
	}
	if m := byName["Intel MPX"]; m.Temporal {
		t.Error("MPX is spatial-only")
	}
}
