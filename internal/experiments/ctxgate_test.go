package experiments

import "testing"

// elisionTotals sums the dynamic check counts of one RunElision sweep.
func elisionTotals(rows []ElisionRow) (checks, elided uint64) {
	for i := range rows {
		checks += rows[i].ChecksRun
		elided += rows[i].ChecksElided
	}
	return
}

// TestContextElisionGate is the CI gate for the context-sensitive layer:
// on mcf and leela the context-sensitive (k = 2) total elision rate must
// be at least the context-insensitive rate. The per-context layer only
// ever adds verified proofs on top of the ⊤ layer's, so a regression
// here means the two-layer split broke the baseline proofs.
func TestContextElisionGate(t *testing.T) {
	base := Options{Scale: 0.1, MaxInsts: 50_000, Benches: []string{"mcf", "leela"}}

	insens := base
	insens.ContextK = -1
	insRows, err := RunElision(insens)
	if err != nil {
		t.Fatalf("context-insensitive sweep: %v", err)
	}
	insChecks, insElided := elisionTotals(insRows)

	ctx := base
	ctx.ContextK = 2
	ctxRows, err := RunElision(ctx)
	if err != nil {
		t.Fatalf("context-sensitive sweep: %v", err)
	}
	ctxChecks, ctxElided := elisionTotals(ctxRows)

	if insChecks+insElided == 0 || ctxChecks+ctxElided == 0 {
		t.Fatal("no capability checks ran: the elision replay is broken")
	}
	insRate := float64(insElided) / float64(insChecks+insElided)
	ctxRate := float64(ctxElided) / float64(ctxChecks+ctxElided)
	if ctxRate < insRate {
		t.Fatalf("context-sensitive elision rate %.4f fell below the context-insensitive rate %.4f",
			ctxRate, insRate)
	}

	// Per-benchmark, every verified insensitive elision must survive:
	// the k=2 bundle still carries the ⊤ proofs.
	for i := range insRows {
		if ctxRows[i].Elided < insRows[i].Elided {
			t.Errorf("%s: k=2 verified %d proofs, context-insensitive verified %d — ⊤ proofs lost",
				insRows[i].Bench, ctxRows[i].Elided, insRows[i].Elided)
		}
	}
}
