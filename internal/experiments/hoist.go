package experiments

import (
	"context"
	"fmt"
	"strings"

	"chex86/internal/elide"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// HoistRow is one benchmark's hoisted-guard measurement: the verified
// guard set the checker admitted (DESIGN.md §16) and the dynamic
// attribution of suppressed capability checks to those guards. The
// executed check set is identical with guards on or off — the
// differential gate (TestGuardDiff) holds Result JSON and violation
// reports byte-identical — so the row reports attribution, not timing.
type HoistRow struct {
	Bench string `json:"bench"`

	Verified bool `json:"verified"` // the guard set passed the checker

	Guards  int `json:"guards"`  // verified hoisted guards (static)
	Covered int `json:"covered"` // covered sites across those guards (static)

	// Dynamic counts from the guards-on run.
	ChecksRun    uint64 `json:"checks_run"`
	ChecksElided uint64 `json:"checks_elided"`
	GuardUops    uint64 `json:"guard_uops"`
	Subsumed     uint64 `json:"subsumed"`
}

// HoistRate is the fraction of would-be capability checks subsumed into
// hoisted guards.
func (r *HoistRow) HoistRate() float64 {
	total := r.ChecksRun + r.ChecksElided
	if total == 0 {
		return 0
	}
	return float64(r.Subsumed) / float64(total)
}

// runWithGuards executes one benchmark with the verified elision and
// guard maps installed, returning the result plus the guard counters.
func runWithGuards(ctx context.Context, p *workload.Profile, cfg pipeline.Config,
	o *Options, rep *elide.Report) (*pipeline.Result, pipeline.GuardStats, error) {
	prog, err := p.Build(o.Scale)
	if err != nil {
		return nil, pipeline.GuardStats{}, err
	}
	cfg.WarmupInsts = p.SetupInsts()
	cfg.MaxInsts = o.MaxInsts
	if cfg.MaxInsts > 0 {
		cfg.MaxInsts += cfg.WarmupInsts
	}
	cfg.MaxCycles = o.MaxCycles
	if o.NoSuperblocks {
		cfg.NoSuperblocks = true
	}
	sim, err := pipeline.NewSim(prog, cfg, harts(p))
	if err != nil {
		return nil, pipeline.GuardStats{}, err
	}
	sim.SetElisionMap(rep.Map)
	if cfg.HoistGuards {
		sim.SetGuardMap(rep.Guards.Map)
	}
	res, err := o.runSim(ctx, sim)
	if err != nil {
		return nil, pipeline.GuardStats{}, err
	}
	return res, sim.GuardStats(), nil
}

// RunHoist measures dominator-based check subsumption across the
// selected benchmarks: analyze, verify the guard claims fail-closed,
// replay with the verified guard map installed, and report how many
// suppressed checks fold into hoisted block guards.
func RunHoist(o Options) ([]HoistRow, error) {
	ctx := context.Background()
	var out []HoistRow
	for _, p := range o.profiles() {
		prog, err := p.Build(o.Scale)
		if err != nil {
			return nil, err
		}
		rep, err := elide.ForProgram(prog, elide.Options{Harts: harts(p), ContextK: o.ContextK})
		if err != nil {
			return nil, fmt.Errorf("hoist %s: %w", p.Name, err)
		}
		row := HoistRow{Bench: p.Name, Verified: rep.Guards.Verified}
		for i := range rep.Guards.Decisions {
			if rep.Guards.Decisions[i].Status == "hoist" {
				row.Guards++
			}
		}
		row.Covered = rep.Guards.Stats.Covered

		cfg := pipeline.DefaultConfig()
		cfg.ElideChecks = true
		cfg.ElisionDigest = rep.Digest
		cfg.ElisionCtxK = rep.CtxK
		cfg.HoistGuards = true
		cfg.GuardDigest = rep.Guards.Digest
		res, gs, err := runWithGuards(ctx, p, cfg, &o, rep)
		if err != nil {
			return nil, fmt.Errorf("hoist %s (run): %w", p.Name, err)
		}
		row.ChecksRun = res.ChecksRun
		row.ChecksElided = res.ChecksElided
		row.GuardUops = gs.GuardUops
		row.Subsumed = gs.SubsumedChecks
		out = append(out, row)
	}
	return out, nil
}

// FormatHoist renders the hoisting table. The trailing total line is
// the CI smoke contract: a nonzero subsumed count proves the
// dominator/guard chain end to end.
func FormatHoist(rows []HoistRow) string {
	var b strings.Builder
	b.WriteString("Dominator-based check subsumption (hoisted block guards, verified claims only)\n")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %12s %12s %12s %12s %8s\n",
		"benchmark", "ok", "guards", "covered", "checks", "suppressed", "guarduops", "subsumed", "rate")
	var checks, suppressed, subsumed uint64
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(&b, "%-14s %8v %8d %8d %12d %12d %12d %12d %7.2f%%\n",
			r.Bench, r.Verified, r.Guards, r.Covered,
			r.ChecksRun, r.ChecksElided, r.GuardUops, r.Subsumed, 100*r.HoistRate())
		checks += r.ChecksRun
		suppressed += r.ChecksElided
		subsumed += r.Subsumed
	}
	rate := 0.0
	if checks+suppressed > 0 {
		rate = float64(subsumed) / float64(checks+suppressed)
	}
	fmt.Fprintf(&b, "total: checks=%d elided=%d subsumed=%d (hoist rate %.2f%%)\n",
		checks, suppressed, subsumed, 100*rate)
	return b.String()
}
