package heap

import (
	"testing"
	"testing/quick"

	"chex86/internal/mem"
)

func TestMallocAlignmentAndHeaders(t *testing.T) {
	m := mem.New()
	a := New(m)
	p1 := a.Malloc(24)
	p2 := a.Malloc(100)
	for _, p := range []uint64{p1, p2} {
		if p%16 != 0 {
			t.Fatalf("allocation %#x not 16-byte aligned", p)
		}
		if !a.InUse(p) {
			t.Fatalf("fresh chunk %#x not marked in use", p)
		}
	}
	if a.ChunkSize(p1) != 32 {
		t.Fatalf("24-byte request should carry a 32-byte chunk, got %d", a.ChunkSize(p1))
	}
	if p2 <= p1 {
		t.Fatal("wilderness must grow upward")
	}
}

func TestFreeAndBinReuse(t *testing.T) {
	m := mem.New()
	a := New(m)
	p := a.Malloc(64)
	a.Free(p)
	if a.InUse(p) {
		t.Fatal("freed chunk still marked in use")
	}
	q := a.Malloc(64)
	if q != p {
		t.Fatalf("same-size allocation should reuse the freed chunk: %#x vs %#x", q, p)
	}
}

func TestLargeFirstFit(t *testing.T) {
	m := mem.New()
	a := New(m)
	big := a.Malloc(4096)
	a.Malloc(64) // barrier so the wilderness pointer moved
	a.Free(big)
	q := a.Malloc(2048) // fits in the freed 4 KB chunk
	if q != big {
		t.Fatalf("first-fit should reuse the freed large chunk: %#x vs %#x", q, big)
	}
}

func TestCallocZeroesRecycledMemory(t *testing.T) {
	m := mem.New()
	a := New(m)
	p := a.Malloc(64)
	m.WriteU64(p, 0xdeadbeef)
	a.Free(p)
	// Freeing wrote an fd link over the first word; calloc of the recycled
	// chunk must scrub everything.
	q := a.Calloc(8, 8)
	if q != p {
		t.Fatal("expected chunk reuse")
	}
	for off := uint64(0); off < 64; off += 8 {
		if v := m.ReadU64(q + off); v != 0 {
			t.Fatalf("calloc left %#x at offset %d", v, off)
		}
	}
}

func TestReallocCopies(t *testing.T) {
	m := mem.New()
	a := New(m)
	p := a.Malloc(32)
	m.WriteU64(p, 111)
	m.WriteU64(p+8, 222)
	q := a.Realloc(p, 4096)
	if q == p {
		t.Fatal("growing realloc should move to a new chunk")
	}
	if m.ReadU64(q) != 111 || m.ReadU64(q+8) != 222 {
		t.Fatal("realloc lost the old contents")
	}
}

// TestExploitableFdPoisoning verifies the deliberate tcache-poisoning
// behavior the How2Heap suite depends on: overwriting a freed chunk's fd
// makes the allocator hand out an attacker-chosen address.
func TestExploitableFdPoisoning(t *testing.T) {
	m := mem.New()
	a := New(m)
	p := a.Malloc(64)
	a.Free(p)
	const target = 0x41414140
	m.WriteU64(p, target) // UAF write poisons the fd
	if q := a.Malloc(64); q != p {
		t.Fatal("first pop should return the poisoned chunk itself")
	}
	if q := a.Malloc(64); q != target {
		t.Fatalf("second pop should return the attacker address, got %#x", q)
	}
}

// TestExploitableDoubleFree verifies that a double free yields the same
// chunk twice (the fastbin-dup primitive).
func TestExploitableDoubleFree(t *testing.T) {
	m := mem.New()
	a := New(m)
	p := a.Malloc(48)
	a.Free(p)
	a.Free(p)
	q1 := a.Malloc(48)
	q2 := a.Malloc(48)
	if q1 != p || q2 != p {
		t.Fatalf("double free should dup the chunk: %#x %#x vs %#x", q1, q2, p)
	}
}

// TestLiveChunksNeverOverlap is a property test: any interleaving of
// well-formed mallocs and frees yields pairwise-disjoint live chunks.
func TestLiveChunksNeverOverlap(t *testing.T) {
	f := func(ops []uint16) bool {
		m := mem.New()
		a := New(m)
		type span struct{ base, size uint64 }
		var live []span
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				a.Free(live[i].base)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := uint64(op%512) + 1
			p := a.Malloc(size)
			if p == 0 {
				return false
			}
			live = append(live, span{p, alignUp(size)})
		}
		for i := range live {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.base < b.base+b.size && b.base < a.base+a.size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAccounting(t *testing.T) {
	m := mem.New()
	a := New(m)
	p := a.Malloc(100)
	if a.LiveChunks != 1 || a.LiveBytes != 112 {
		t.Fatalf("accounting after malloc: %d chunks %d bytes", a.LiveChunks, a.LiveBytes)
	}
	a.Free(p)
	if a.LiveChunks != 0 || a.LiveBytes != 0 {
		t.Fatalf("accounting after free: %d chunks %d bytes", a.LiveChunks, a.LiveBytes)
	}
	if a.TotalAllocs != 1 || a.TotalFrees != 1 {
		t.Fatal("op counters wrong")
	}
	if a.PeakLive != 112 {
		t.Fatalf("peak live %d", a.PeakLive)
	}
	if a.HeapExtent() == 0 {
		t.Fatal("heap extent must reflect the carved arena")
	}
}

func TestZeroAndNullEdgeCases(t *testing.T) {
	m := mem.New()
	a := New(m)
	if p := a.Malloc(0); p == 0 {
		t.Fatal("malloc(0) returns a unique pointer like glibc")
	}
	a.Free(0) // must be a no-op
	if a.TotalFrees != 0 {
		t.Fatal("free(NULL) must not count")
	}
	if p := a.Realloc(0, 64); p == 0 {
		t.Fatal("realloc(NULL, n) behaves like malloc")
	}
	p := a.Malloc(64)
	if q := a.Realloc(p, 0); q != 0 {
		t.Fatal("realloc(p, 0) behaves like free")
	}
}

// TestReallocPreservesPrefixProperty: realloc always preserves
// min(old, new) bytes of contents.
func TestReallocPreservesPrefixProperty(t *testing.T) {
	f := func(oldWords, newWords uint8, seed uint64) bool {
		m := mem.New()
		a := New(m)
		ow := uint64(oldWords%32) + 1
		nw := uint64(newWords%64) + 1
		p := a.Malloc(ow * 8)
		for i := uint64(0); i < ow; i++ {
			m.WriteU64(p+i*8, seed+i)
		}
		q := a.Realloc(p, nw*8)
		if q == 0 {
			return false
		}
		keep := ow
		if nw < keep {
			keep = nw
		}
		for i := uint64(0); i < keep; i++ {
			if m.ReadU64(q+i*8) != seed+i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
