// Package heap implements the simulated process's heap allocator. Its
// metadata — chunk headers and free-list links — lives in guest memory,
// exactly like a real dlmalloc/tcache-style allocator, which makes it
// corruptible by guest stores: use-after-free writes can poison free-list
// forward pointers, double frees create bin cycles, and overflows can
// rewrite the next chunk's header. This deliberate exploitability is what
// lets the How2Heap-style suite (internal/security) exercise the same heap
// metadata-corruption anchor points the paper evaluates, while CHEx86's
// capability layer detects the underlying violations.
//
// The allocator body runs natively (we do not hand-write it in guest
// assembly) but is invoked through guest CALLs to registered entry
// addresses, so the CHEx86 machinery sees exactly the entry/exit
// interception events of Section IV-C, with the argument in %rdi at entry
// and the result in %rax at exit.
package heap

import (
	"chex86/internal/mem"
)

// Well-known virtual addresses of the heap-management routines. The OS
// kernel registers these entry/exit pairs (and their register signatures)
// in CHEx86's model-specific registers at process scheduling time.
const (
	MallocEntry  = 0x0000_0000_0050_0000
	MallocExit   = MallocEntry + 4
	FreeEntry    = 0x0000_0000_0050_0100
	FreeExit     = FreeEntry + 4
	CallocEntry  = 0x0000_0000_0050_0200
	CallocExit   = CallocEntry + 4
	ReallocEntry = 0x0000_0000_0050_0300
	ReallocExit  = ReallocEntry + 4
)

const (
	headerSize = 16
	align      = 16

	// maxBinSize is the largest chunk size served from the LIFO bins
	// (tcache-like); larger chunks use a first-fit free list.
	maxBinSize = 512
	numBins    = maxBinSize / align

	flagInUse = 1
)

// CostUops is the dynamic micro-op cost charged by the timing model for one
// allocator call. A fast-path tcache/dlmalloc operation runs a few dozen
// instructions; because the synthetic workloads are scaled down (they
// allocate more frequently per instruction than the real benchmarks), the
// charged cost is kept at the low end so the allocator's share of dynamic
// micro-ops stays realistic.
const CostUops = 12

// Allocator is the guest heap. The zero value is not usable; call New.
type Allocator struct {
	m *mem.Memory

	top       uint64 // wilderness pointer
	arenaEnd  uint64
	bins      [numBins]uint64 // guest address of bin head chunk (0 = empty)
	largeHead uint64          // first-fit list of large freed chunks

	// Stats
	TotalAllocs uint64
	TotalFrees  uint64
	LiveBytes   uint64
	LiveChunks  uint64
	PeakLive    uint64
}

// New returns an allocator managing the guest heap arena.
func New(m *mem.Memory) *Allocator {
	return &Allocator{
		m:        m,
		top:      mem.HeapBase,
		arenaEnd: mem.HeapBase + (1 << 40),
	}
}

func alignUp(n uint64) uint64 {
	if n < align {
		n = align
	}
	return (n + align - 1) &^ (align - 1)
}

func binIndex(size uint64) int {
	if size > maxBinSize {
		return -1
	}
	return int(size/align) - 1
}

// header reads a chunk's (size, flags) pair from guest memory.
func (a *Allocator) header(ptr uint64) (size, flags uint64) {
	return a.m.ReadU64(ptr - headerSize), a.m.ReadU64(ptr - headerSize + 8)
}

func (a *Allocator) setHeader(ptr, size, flags uint64) {
	a.m.WriteU64(ptr-headerSize, size)
	a.m.WriteU64(ptr-headerSize+8, flags)
}

// ChunkSize returns the recorded size of the chunk at ptr (trusting the
// in-memory header, which an exploit may have corrupted).
func (a *Allocator) ChunkSize(ptr uint64) uint64 {
	s, _ := a.header(ptr)
	return s
}

// Malloc allocates size bytes and returns the user pointer, or 0 on
// failure. No defensive validation is performed — by design.
func (a *Allocator) Malloc(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	csize := alignUp(size)
	a.TotalAllocs++

	// Bin fast path: pop the head and follow its fd link. If an exploit
	// overwrote the freed chunk's fd, this hands out an attacker-chosen
	// address — the tcache-poisoning behavior How2Heap relies on.
	if bi := binIndex(csize); bi >= 0 && a.bins[bi] != 0 {
		ptr := a.bins[bi]
		a.bins[bi] = a.m.ReadU64(ptr) // fd
		sz, fl := a.header(ptr)
		if sz == 0 {
			sz = csize
		}
		a.setHeader(ptr, sz, fl|flagInUse)
		a.account(csize, +1)
		return ptr
	}

	// Large first-fit path.
	if csize > maxBinSize {
		prev := uint64(0)
		cur := a.largeHead
		for cur != 0 {
			sz, fl := a.header(cur)
			if sz >= csize {
				fd := a.m.ReadU64(cur)
				if prev == 0 {
					a.largeHead = fd
				} else {
					a.m.WriteU64(prev, fd)
				}
				a.setHeader(cur, sz, fl|flagInUse)
				a.account(csize, +1)
				return cur
			}
			prev = cur
			cur = a.m.ReadU64(cur)
		}
	}

	// Carve from the wilderness.
	if a.top+headerSize+csize > a.arenaEnd {
		return 0
	}
	ptr := a.top + headerSize
	a.top += headerSize + csize
	a.setHeader(ptr, csize, flagInUse)
	a.account(csize, +1)
	return ptr
}

// Free releases the chunk at ptr. Like a fast-path production allocator,
// it does not validate the pointer: freeing a non-chunk or freeing twice
// silently corrupts the free lists (the exploit anchor points).
func (a *Allocator) Free(ptr uint64) {
	if ptr == 0 {
		return
	}
	a.TotalFrees++
	size, flags := a.header(ptr)
	a.setHeader(ptr, size, flags&^flagInUse)
	if bi := binIndex(alignUp(size)); bi >= 0 && size != 0 {
		a.m.WriteU64(ptr, a.bins[bi]) // fd <- old head
		a.bins[bi] = ptr
	} else {
		a.m.WriteU64(ptr, a.largeHead)
		a.largeHead = ptr
	}
	a.account(alignUp(size), -1)
}

// Calloc allocates count*size zeroed bytes. Chunks carved fresh from the
// wilderness are untouched memory (which reads as zero); only recycled
// chunks need explicit clearing.
func (a *Allocator) Calloc(count, size uint64) uint64 {
	total := count * size
	topBefore := a.top
	ptr := a.Malloc(total)
	if ptr == 0 {
		return 0
	}
	if ptr >= topBefore {
		return ptr // fresh wilderness: already zero
	}
	for off := uint64(0); off < alignUp(total); off += 8 {
		a.m.WriteU64(ptr+off, 0)
	}
	return ptr
}

// Realloc resizes the allocation at ptr to size, copying min(old,new) bytes.
func (a *Allocator) Realloc(ptr, size uint64) uint64 {
	if ptr == 0 {
		return a.Malloc(size)
	}
	if size == 0 {
		a.Free(ptr)
		return 0
	}
	oldSize, _ := a.header(ptr)
	np := a.Malloc(size)
	if np == 0 {
		return 0
	}
	n := oldSize
	if size < n {
		n = size
	}
	for off := uint64(0); off < n; off += 8 {
		a.m.WriteU64(np+off, a.m.ReadU64(ptr+off))
	}
	a.Free(ptr)
	return np
}

func (a *Allocator) account(csize uint64, delta int64) {
	if delta > 0 {
		a.LiveBytes += csize
		a.LiveChunks++
		if a.LiveBytes > a.PeakLive {
			a.PeakLive = a.LiveBytes
		}
	} else {
		if a.LiveBytes >= csize {
			a.LiveBytes -= csize
		}
		if a.LiveChunks > 0 {
			a.LiveChunks--
		}
	}
}

// Top returns the current wilderness pointer (for footprint accounting).
func (a *Allocator) Top() uint64 { return a.top }

// HeapExtent returns the total bytes carved from the arena so far.
func (a *Allocator) HeapExtent() uint64 { return a.top - mem.HeapBase }

// InUse reports whether the chunk header at ptr currently has the in-use
// bit set (trusting guest memory).
func (a *Allocator) InUse(ptr uint64) bool {
	_, flags := a.header(ptr)
	return flags&flagInUse != 0
}
