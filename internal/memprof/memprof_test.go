package memprof

import (
	"testing"

	"chex86/internal/asm"
	"chex86/internal/heap"
	"chex86/internal/isa"
)

// buildChurn allocates n buffers, touches them, frees half, and halts.
func buildChurn(n int64) *asm.Program {
	b := asm.NewBuilder()
	g := uint64(0x600000)
	b.Global("tab", g, uint64(n)*8)
	b.Global("ptab", g+uint64(n)*8+8, 8)
	b.Reloc(g+uint64(n)*8+8, "tab")
	b.Load(isa.R8, isa.RNone, int64(g+uint64(n)*8+8))

	b.MovRI(isa.R15, 0)
	b.Label("alloc")
	b.MovRI(isa.RDI, 64)
	b.CallAddr(heap.MallocEntry)
	b.StoreIdx(isa.R8, isa.R15, 8, 0, isa.RAX)
	b.Store(isa.RAX, 0, isa.R15) // touch
	b.AddRI(isa.R15, 1)
	b.CmpRI(isa.R15, n)
	b.Jcc(isa.CondL, "alloc")

	b.MovRI(isa.R15, 0)
	b.Label("free")
	b.LoadIdx(isa.RDI, isa.R8, isa.R15, 8, 0)
	b.CallAddr(heap.FreeEntry)
	b.AddRI(isa.R15, 2) // free every other buffer
	b.CmpRI(isa.R15, n)
	b.Jcc(isa.CondL, "free")
	b.Hlt()
	return b.MustBuild()
}

func TestProfileMetrics(t *testing.T) {
	const n = 20
	st, err := Profile(buildChurn(n), 1, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalAllocs != n {
		t.Fatalf("total allocs %d, want %d", st.TotalAllocs, n)
	}
	if st.MaxLive != n {
		t.Fatalf("max live %d, want %d (frees happen after the last alloc)", st.MaxLive, n)
	}
	if st.AvgInUse <= 0 || st.AvgInUse > float64(n) {
		t.Fatalf("avg in-use %f out of range", st.AvgInUse)
	}
	if st.Intervals == 0 || st.Insts == 0 {
		t.Fatal("interval accounting empty")
	}
}

func TestFigure3Ordering(t *testing.T) {
	// The paper's shape: total >= max-live, and the in-use average stays
	// below the peak of distinct live allocations per interval.
	st, err := Profile(buildChurn(32), 1, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxLive > st.TotalAllocs {
		t.Fatal("max live cannot exceed total allocations")
	}
	if st.PeakInUse < uint64(st.AvgInUse) {
		t.Fatal("peak in-use below the average")
	}
}

func TestInstructionBudget(t *testing.T) {
	st, err := Profile(buildChurn(32), 1, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Insts > 100 {
		t.Fatalf("budget ignored: %d insts", st.Insts)
	}
}
