// Package memprof implements the allocation-behavior profiling of
// Figure 3: for a guest program it measures (1) the total number of
// allocations made over the run, (2) the maximum number of live
// allocations at any point, and (3) the average number of distinct
// allocations actually in use during any given measurement interval —
// the observation (total ≫ max-live ≫ in-use) that motivates the small
// in-processor capability cache. The paper collected these statistics
// with valgrind; here the functional emulator plays that role.
package memprof

import (
	"chex86/internal/asm"
	"chex86/internal/emu"
)

// Stats holds one program's allocation-behavior profile.
type Stats struct {
	TotalAllocs   uint64
	MaxLive       uint64
	AvgInUse      float64 // average distinct allocations accessed per interval
	PeakInUse     uint64
	Intervals     uint64
	IntervalInsts uint64
	Insts         uint64
}

// Profile executes the program functionally and collects Figure 3's three
// metrics, using measurement intervals of intervalInsts macro-ops (the
// paper uses 100M-instruction intervals at full benchmark scale).
func Profile(prog *asm.Program, harts int, intervalInsts, maxInsts uint64) (*Stats, error) {
	if intervalInsts == 0 {
		intervalInsts = 100_000
	}
	m := emu.New(prog, emu.Options{Harts: harts, MaxInsts: maxInsts})
	st := &Stats{IntervalInsts: intervalInsts}

	live := uint64(0)
	dynamic := make(map[int64]struct{})
	inUse := make(map[int64]struct{})
	var sumInUse uint64
	nextBoundary := intervalInsts

	flush := func() {
		st.Intervals++
		n := uint64(len(inUse))
		sumInUse += n
		if n > st.PeakInUse {
			st.PeakInUse = n
		}
		for k := range inUse {
			delete(inUse, k)
		}
	}

	for {
		rec, err := m.Step()
		if err != nil {
			return st, err
		}
		if rec == nil {
			break
		}
		st.Insts++
		switch rec.Event {
		case emu.EvAllocEnter:
			if rec.AllocPID != 0 {
				st.TotalAllocs++
				dynamic[rec.AllocPID] = struct{}{}
				live++
				if live > st.MaxLive {
					st.MaxLive = live
				}
			}
		case emu.EvFreeEnter:
			if rec.AllocPID != 0 && live > 0 {
				live--
			}
		}
		if rec.HasEA {
			// Only dynamic allocations count toward "allocations in use"
			// (globals are not allocations in the Figure 3 sense).
			if span := m.Truth.Find(rec.EA); span != nil && span.Live {
				if _, dyn := dynamic[span.PID]; dyn {
					inUse[span.PID] = struct{}{}
				}
			}
		}
		if st.Insts >= nextBoundary {
			flush()
			nextBoundary += intervalInsts
		}
	}
	if len(inUse) > 0 || st.Intervals == 0 {
		flush()
	}
	st.AvgInUse = float64(sumInUse) / float64(st.Intervals)
	return st, nil
}
