// Package mem implements the simulated guest memory system: a sparse paged
// address space, page tables carrying the CHEx86 alias-hosting bit, a TLB
// model, and a DRAM model with bandwidth accounting.
//
// The address space follows the conventional x86-64 canonical split. The
// upper (kernel) half hosts the privileged shadow structures — the shadow
// capability table and the hierarchical shadow alias table — which guest
// code can never address: the functional emulator refuses guest accesses to
// the shadow half, matching the paper's threat model (shadow tables are
// only accessible to dynamically generated micro-ops).
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the virtual memory page size.
const PageSize = 4096

// Canonical address-space layout for simulated processes.
const (
	TextBase   = 0x0000_0000_0040_0000 // program text
	GlobalBase = 0x0000_0000_0060_0000 // global data section (symbol table objects)
	HeapBase   = 0x0000_0000_1000_0000 // heap arena
	StackTop   = 0x0000_7FFF_FFFF_F000 // initial stack pointer (grows down)

	// UserTop is the first non-canonical user address; everything at or
	// above ShadowBase is the privileged shadow half.
	UserTop    = 0x0000_8000_0000_0000
	ShadowBase = 0xFFFF_8000_0000_0000 // shadow capability table arena
	AliasBase  = 0xFFFF_9000_0000_0000 // hierarchical shadow alias table arena
)

// IsShadow reports whether addr lies in the privileged shadow half.
func IsShadow(addr uint64) bool { return addr >= ShadowBase }

// IsUser reports whether addr is a canonical user-half address.
func IsUser(addr uint64) bool { return addr < UserTop }

// PageBase returns the base address of the page containing addr.
func PageBase(addr uint64) uint64 { return addr &^ (PageSize - 1) }

type page struct {
	data [PageSize]byte
}

// Memory is a sparse simulated physical memory indexed by virtual address
// (translation is identity; the page table exists for metadata such as the
// alias-hosting bit).
type Memory struct {
	pages map[uint64]*page

	// lastBase/lastPage cache the most recently resolved page: guest
	// access streams have strong page locality, and this lookup is on the
	// emulator's per-instruction path. Pages are never unmapped, so the
	// cached pointer cannot go stale.
	lastBase uint64
	lastPage *page

	// userPages and shadowPages count resident pages in each half, for the
	// Figure 9 storage-overhead accounting.
	userPages   uint64
	shadowPages uint64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	base := PageBase(addr)
	if p := m.lastPage; p != nil && base == m.lastBase {
		return p
	}
	p := m.pages[base]
	if p == nil && create {
		p = &page{}
		m.pages[base] = p
		if IsShadow(addr) {
			m.shadowPages++
		} else {
			m.userPages++
		}
	}
	if p != nil {
		m.lastBase, m.lastPage = base, p
	}
	return p
}

// ReadU64 reads a little-endian 64-bit word. Unmapped memory reads as zero.
func (m *Memory) ReadU64(addr uint64) uint64 {
	if off := addr & (PageSize - 1); off <= PageSize-8 {
		p := m.pageFor(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p.data[off:])
	}
	// Page-crossing access: assemble byte by byte.
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.ReadU8(addr+i)) << (8 * i)
	}
	return v
}

// WriteU64 writes a little-endian 64-bit word.
func (m *Memory) WriteU64(addr, v uint64) {
	if off := addr & (PageSize - 1); off <= PageSize-8 {
		p := m.pageFor(addr, true)
		binary.LittleEndian.PutUint64(p.data[off:], v)
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.WriteU8(addr+i, byte(v>>(8*i)))
	}
}

// ReadU8 reads one byte. Unmapped memory reads as zero.
func (m *Memory) ReadU8(addr uint64) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p.data[addr&(PageSize-1)]
}

// WriteU8 writes one byte, allocating the backing page on demand.
func (m *Memory) WriteU8(addr uint64, v byte) {
	p := m.pageFor(addr, true)
	p.data[addr&(PageSize-1)] = v
}

// Touch ensures the page containing addr is resident (for RSS accounting of
// zero-initialized allocations).
func (m *Memory) Touch(addr uint64) { m.pageFor(addr, true) }

// TouchRange ensures every page overlapping [addr, addr+size) is resident.
func (m *Memory) TouchRange(addr, size uint64) {
	if size == 0 {
		return
	}
	for a := PageBase(addr); a < addr+size; a += PageSize {
		m.pageFor(a, true)
	}
}

// UserRSS returns the resident set size of the user half in bytes.
func (m *Memory) UserRSS() uint64 { return m.userPages * PageSize }

// ShadowRSS returns the resident set size of the shadow half in bytes.
func (m *Memory) ShadowRSS() uint64 { return m.shadowPages * PageSize }

// RSS returns the total resident set size in bytes.
func (m *Memory) RSS() uint64 { return (m.userPages + m.shadowPages) * PageSize }

// PTE is a page-table entry. Only metadata is modeled; translation is
// identity.
type PTE struct {
	Present bool

	// AliasHosting is the CHEx86 extension bit (Section V-C): set when the
	// page contains at least one spilled pointer alias, letting the
	// pipeline skip shadow-alias-table lookups for loads from pages that
	// host no aliases.
	AliasHosting bool
}

// PageTable maps page base addresses to PTEs.
type PageTable struct {
	entries map[uint64]PTE
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{entries: make(map[uint64]PTE)}
}

// Lookup returns the PTE for the page containing addr.
func (pt *PageTable) Lookup(addr uint64) PTE {
	return pt.entries[PageBase(addr)]
}

// MarkPresent records the page containing addr as mapped.
func (pt *PageTable) MarkPresent(addr uint64) {
	base := PageBase(addr)
	e := pt.entries[base]
	e.Present = true
	pt.entries[base] = e
}

// SetAliasHosting sets or clears the alias-hosting bit on the page
// containing addr.
func (pt *PageTable) SetAliasHosting(addr uint64, hosting bool) {
	base := PageBase(addr)
	e := pt.entries[base]
	e.Present = true
	e.AliasHosting = hosting
	pt.entries[base] = e
}

// AliasHosting reports the alias-hosting bit of the page containing addr.
func (pt *PageTable) AliasHosting(addr uint64) bool {
	return pt.entries[PageBase(addr)].AliasHosting
}

// TLBStats aggregates TLB behavior.
type TLBStats struct {
	Hits   uint64
	Misses uint64
}

// TLB is a small set-associative translation lookaside buffer caching PTE
// metadata (including the alias-hosting bit). A miss costs a page-table
// walk, charged by the caller.
type TLB struct {
	sets  int
	ways  int
	pt    *PageTable
	tags  [][]uint64 // page base per way; 0 = invalid (page 0 never cached)
	lru   [][]uint64
	ptes  [][]PTE
	clock uint64
	Stats TLBStats
}

// NewTLB returns a TLB with the given geometry backed by pt.
func NewTLB(entries, ways int, pt *PageTable) *TLB {
	if entries%ways != 0 {
		panic(fmt.Sprintf("mem: TLB entries %d not divisible by ways %d", entries, ways))
	}
	sets := entries / ways
	t := &TLB{sets: sets, ways: ways, pt: pt}
	t.tags = make([][]uint64, sets)
	t.lru = make([][]uint64, sets)
	t.ptes = make([][]PTE, sets)
	for i := 0; i < sets; i++ {
		t.tags[i] = make([]uint64, ways)
		t.lru[i] = make([]uint64, ways)
		t.ptes[i] = make([]PTE, ways)
	}
	return t
}

// Lookup translates addr, returning its PTE and whether the TLB hit.
func (t *TLB) Lookup(addr uint64) (PTE, bool) {
	base := PageBase(addr)
	set := int((base / PageSize) % uint64(t.sets))
	t.clock++
	for w := 0; w < t.ways; w++ {
		if t.tags[set][w] == base && base != 0 {
			t.lru[set][w] = t.clock
			t.Stats.Hits++
			return t.ptes[set][w], true
		}
	}
	t.Stats.Misses++
	pte := t.pt.Lookup(base)
	// Fill, evicting the LRU way.
	victim := 0
	for w := 1; w < t.ways; w++ {
		if t.lru[set][w] < t.lru[set][victim] {
			victim = w
		}
	}
	t.tags[set][victim] = base
	t.ptes[set][victim] = pte
	t.lru[set][victim] = t.clock
	return pte, false
}

// Flush invalidates the whole TLB (a context switch), preserving stats.
func (t *TLB) Flush() {
	for s := range t.tags {
		for w := range t.tags[s] {
			t.tags[s][w] = 0
		}
	}
}

// Invalidate drops any cached entry for the page containing addr (used when
// the alias-hosting bit changes).
func (t *TLB) Invalidate(addr uint64) {
	base := PageBase(addr)
	set := int((base / PageSize) % uint64(t.sets))
	for w := 0; w < t.ways; w++ {
		if t.tags[set][w] == base {
			t.tags[set][w] = 0
		}
	}
}

// DRAM models main memory: a fixed access latency, a channel-occupancy
// bandwidth limit, and traffic accounting for the Figure 9 bandwidth
// comparison. The channel is shared between cores, so instrumentation
// traffic (shadow tables, ASan shadow, redzones) contends with demand
// traffic — the effect behind the paper's Figure 9 (bottom).
type DRAM struct {
	Latency uint64 // cycles per access

	// CyclesPerLine is the channel occupancy of one line transfer; 0
	// disables the bandwidth limit.
	CyclesPerLine uint64

	// Lanes is the number of requestors sharing the channel (cores). Each
	// lane is modeled with its own queue at 1/Lanes of the channel
	// bandwidth — a fair-share approximation that avoids coupling the
	// requestors' independent clocks.
	lanes []uint64

	busyUntil uint64

	BytesRead    uint64
	BytesWritten uint64
	Accesses     uint64
	QueueCycles  uint64 // total queueing delay due to channel contention
}

// SetLanes configures the number of requestors sharing the channel.
func (d *DRAM) SetLanes(n int) {
	if n < 1 {
		n = 1
	}
	d.lanes = make([]uint64, n)
}

// NewDRAM returns a DRAM model with the given access latency in cycles.
func NewDRAM(latency uint64) *DRAM { return &DRAM{Latency: latency} }

// Access charges one line transfer of the given size; write selects the
// direction. It returns the access latency (without queueing; use AccessAt
// when the current cycle is known).
func (d *DRAM) Access(bytes uint64, write bool) uint64 {
	return d.AccessAt(bytes, write, 0)
}

// AccessAt charges one line transfer starting no earlier than cycle now,
// modeling channel occupancy. It returns the total latency including any
// queueing delay.
func (d *DRAM) AccessAt(bytes uint64, write bool, now uint64) uint64 {
	return d.AccessLane(bytes, write, now, 0)
}

// AccessSideband charges a transfer's traffic without occupying a request
// lane (for low-volume metadata traffic whose bandwidth share is
// negligible and whose requests are issued by dedicated engines).
func (d *DRAM) AccessSideband(bytes uint64, write bool) uint64 {
	d.Accesses++
	if write {
		d.BytesWritten += bytes
	} else {
		d.BytesRead += bytes
	}
	return d.Latency
}

// AccessLane is AccessAt on the given requestor lane.
func (d *DRAM) AccessLane(bytes uint64, write bool, now uint64, lane int) uint64 {
	d.Accesses++
	if write {
		d.BytesWritten += bytes
	} else {
		d.BytesRead += bytes
	}
	lat := d.Latency
	if d.CyclesPerLine == 0 {
		return lat
	}
	occupancy := d.CyclesPerLine
	busy := &d.busyUntil
	if len(d.lanes) > 0 {
		busy = &d.lanes[lane%len(d.lanes)]
		occupancy *= uint64(len(d.lanes))
	}
	start := now
	if *busy > start {
		start = *busy
	}
	*busy = start + occupancy
	queue := start - now
	d.QueueCycles += queue
	return lat + queue
}

// TotalBytes returns total traffic in both directions.
func (d *DRAM) TotalBytes() uint64 { return d.BytesRead + d.BytesWritten }
