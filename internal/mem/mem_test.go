package mem

import (
	"testing"
	"testing/quick"
)

// TestReadWriteRoundTrip is a property test: any 64-bit value written at
// any (possibly page-straddling) user address reads back identically.
func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64) bool {
		addr %= UserTop - 8
		m.WriteU64(addr, v)
		return m.ReadU64(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageStraddlingWrite(t *testing.T) {
	m := New()
	addr := uint64(2*PageSize - 3) // straddles a page boundary
	m.WriteU64(addr, 0x0123456789abcdef)
	if got := m.ReadU64(addr); got != 0x0123456789abcdef {
		t.Fatalf("straddling read back %#x", got)
	}
}

func TestUnmappedReadsZero(t *testing.T) {
	m := New()
	if m.ReadU64(0x12345678) != 0 {
		t.Error("unmapped memory must read as zero")
	}
	if m.RSS() != 0 {
		t.Error("reads must not materialize pages")
	}
}

func TestRSSAccounting(t *testing.T) {
	m := New()
	m.WriteU8(HeapBase, 1)
	m.WriteU8(HeapBase+1, 2) // same page
	if m.UserRSS() != PageSize {
		t.Fatalf("one page expected, RSS %d", m.UserRSS())
	}
	m.WriteU8(ShadowBase, 1)
	if m.ShadowRSS() != PageSize || m.UserRSS() != PageSize {
		t.Fatal("shadow/user RSS split wrong")
	}
	m.TouchRange(HeapBase+PageSize, 3*PageSize)
	if m.UserRSS() != 4*PageSize {
		t.Fatalf("TouchRange should have added 3 pages, RSS %d", m.UserRSS())
	}
	if m.RSS() != m.UserRSS()+m.ShadowRSS() {
		t.Error("total RSS must be the sum of both halves")
	}
}

func TestAddressSpacePredicates(t *testing.T) {
	if !IsUser(HeapBase) || !IsUser(StackTop) || IsUser(ShadowBase) {
		t.Error("user-half classification wrong")
	}
	if !IsShadow(ShadowBase) || !IsShadow(AliasBase) || IsShadow(HeapBase) {
		t.Error("shadow-half classification wrong")
	}
	if PageBase(PageSize+123) != PageSize {
		t.Error("PageBase wrong")
	}
}

func TestPageTableAliasBit(t *testing.T) {
	pt := NewPageTable()
	if pt.AliasHosting(HeapBase) {
		t.Error("fresh page must not host aliases")
	}
	pt.SetAliasHosting(HeapBase+100, true)
	if !pt.AliasHosting(HeapBase) || !pt.AliasHosting(HeapBase+PageSize-1) {
		t.Error("alias-hosting bit is per page")
	}
	if pt.AliasHosting(HeapBase + PageSize) {
		t.Error("bit must not leak to the next page")
	}
	pt.SetAliasHosting(HeapBase, false)
	if pt.AliasHosting(HeapBase) {
		t.Error("clearing the bit failed")
	}
}

func TestTLBBehavior(t *testing.T) {
	pt := NewPageTable()
	pt.SetAliasHosting(HeapBase, true)
	tlb := NewTLB(16, 4, pt)

	pte, hit := tlb.Lookup(HeapBase)
	if hit {
		t.Error("first lookup must miss")
	}
	if !pte.AliasHosting {
		t.Error("PTE metadata lost on fill")
	}
	if _, hit = tlb.Lookup(HeapBase + 8); !hit {
		t.Error("same-page lookup must hit")
	}

	// The cached copy goes stale when the page table changes...
	pt.SetAliasHosting(HeapBase, false)
	pte, _ = tlb.Lookup(HeapBase)
	if !pte.AliasHosting {
		t.Error("TLB should still serve the stale entry before invalidation")
	}
	// ...until invalidated.
	tlb.Invalidate(HeapBase)
	pte, hit = tlb.Lookup(HeapBase)
	if hit || pte.AliasHosting {
		t.Error("invalidation must force a fresh walk")
	}
}

func TestTLBEviction(t *testing.T) {
	pt := NewPageTable()
	tlb := NewTLB(4, 4, pt) // single set
	for i := uint64(0); i < 5; i++ {
		tlb.Lookup(HeapBase + i*PageSize)
	}
	// The LRU entry (page 0) was evicted by the fifth fill.
	if _, hit := tlb.Lookup(HeapBase); hit {
		t.Error("LRU entry should have been evicted")
	}
	if tlb.Stats.Misses != 6 {
		t.Errorf("expected 6 misses, got %d", tlb.Stats.Misses)
	}
}

func TestDRAMTrafficAndLanes(t *testing.T) {
	d := NewDRAM(100)
	if lat := d.Access(64, false); lat != 100 {
		t.Fatalf("latency %d, want 100 with no bandwidth limit", lat)
	}
	d.CyclesPerLine = 10
	d.SetLanes(2)

	// Two back-to-back accesses on the same lane: the second queues.
	lat1 := d.AccessLane(64, false, 1000, 0)
	lat2 := d.AccessLane(64, false, 1000, 0)
	if lat1 != 100 {
		t.Errorf("first access should see no queue, got %d", lat1)
	}
	if lat2 <= lat1 {
		t.Errorf("second same-cycle access must queue (got %d)", lat2)
	}
	// The other lane is independent.
	if lat := d.AccessLane(64, false, 1000, 1); lat != 100 {
		t.Errorf("other lane must not see lane 0's queue, got %d", lat)
	}
	if d.BytesRead != 4*64 {
		t.Errorf("traffic accounting wrong: %d", d.BytesRead)
	}
	d.AccessSideband(64, true)
	if d.BytesWritten != 64 {
		t.Error("sideband traffic must be counted")
	}
	if d.TotalBytes() != d.BytesRead+d.BytesWritten {
		t.Error("TotalBytes mismatch")
	}
}
