// Package faultinject is a seeded, deterministic fault-injection framework
// for the CHEx86 security substrate. A campaign runs workload × variant
// combinations and, mid-simulation, injects faults into the structures the
// enforcement path depends on:
//
//   - shadow capability table entries (base/bounds/permission bit flips and
//     forced evictions),
//   - capability-cache and alias-cache line drops,
//   - pointer-reload-predictor entry corruption,
//   - DIFT taint-tag flips, and
//   - forced context-switch state loss (cold cap/alias/TLB structures).
//
// Every outcome is classified against the fail-closed contract: corrupted
// capability metadata must surface as a Violation ("detected") or as an
// explicitly accounted enforcement-capacity loss ("degraded"); faults in
// advisory structures must cost performance only ("perf-only"). A fault
// that produces neither — or a panic — fails the campaign.
//
// Campaigns are reproducible: the same seed yields a byte-identical JSON
// report (no timestamps, deterministic enumeration orders, per-run RNGs
// derived from seed ⊕ FNV(workload|variant|site)).
package faultinject

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"chex86/internal/asm"
	"chex86/internal/core"
	"chex86/internal/decode"
	"chex86/internal/dift"
	"chex86/internal/isa"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// Site names one fault-injection target in the security substrate.
type Site string

// The five fault families of the campaign's fault model (the two in-core
// metadata caches are separate sites of the same cache-drop family).
const (
	SiteCapTable   Site = "cap-table"   // shadow capability table bit flips / evictions
	SiteCapCache   Site = "cap-cache"   // capability-cache line drops
	SiteAliasCache Site = "alias-cache" // alias-cache line drops
	SitePredictor  Site = "predictor"   // pointer-reload predictor entry corruption
	SiteDIFT       Site = "dift-tag"    // DIFT taint-tag flips
	SiteCtxSwitch  Site = "ctx-switch"  // forced context-switch state loss
)

// AllSites returns every injection site in report order.
func AllSites() []Site {
	return []Site{SiteCapTable, SiteCapCache, SiteAliasCache, SitePredictor, SiteDIFT, SiteCtxSwitch}
}

// The fabric fault families: injection sites of the distributed campaign
// fabric (internal/fabric) rather than the simulated microarchitecture.
// They are targeted by the fabric chaos harness, which injects them
// through a wrapped Transport instead of through Run — so they are
// deliberately NOT part of AllSites (campaign cell enumeration and cache
// keys must not change).
const (
	SiteWorkerKill  Site = "worker-kill"  // worker dies mid-cell (lease must expire and reassign)
	SiteMsgDrop     Site = "msg-drop"     // coordinator RPC lost in transit
	SiteMsgDelay    Site = "msg-delay"    // coordinator RPC delayed past its usefulness
	SiteMsgDup      Site = "msg-dup"      // coordinator RPC delivered twice (idempotency probe)
	SitePeerCorrupt Site = "peer-corrupt" // peer cache response corrupted (validation must reject)
)

// FabricSites returns every fabric-chaos site in report order.
func FabricSites() []Site {
	return []Site{SiteWorkerKill, SiteMsgDrop, SiteMsgDelay, SiteMsgDup, SitePeerCorrupt}
}

// Class is the fail-closed outcome classification of one campaign run.
type Class string

const (
	// ClassDetected: at least one injected fault surfaced as a Violation.
	ClassDetected Class = "detected"
	// ClassDegraded: every fault was absorbed with explicit accounting
	// (quarantine/eviction counters, injected-tag-fault counters) but no
	// violation fired.
	ClassDegraded Class = "degraded"
	// ClassPerfOnly: the faults hit advisory/perf-only state; execution
	// finished with unchanged enforcement behavior.
	ClassPerfOnly Class = "perf-only"
	// ClassSilent: a fault was neither detected nor accounted — the
	// fail-closed contract is broken and the campaign fails.
	ClassSilent Class = "silent"
	// ClassPanic: the run panicked. Always a campaign failure.
	ClassPanic Class = "panic"
)

// VariantByName resolves the CLI protection-variant names shared by
// chexsim/chexbench/chexfault.
func VariantByName(name string) (decode.Variant, bool) {
	switch strings.ToLower(name) {
	case "baseline", "insecure":
		return decode.VariantInsecure, true
	case "hardware":
		return decode.VariantHardwareOnly, true
	case "bintrans":
		return decode.VariantBinaryTranslation, true
	case "always-on":
		return decode.VariantMicrocodeAlwaysOn, true
	case "prediction":
		return decode.VariantMicrocodePrediction, true
	case "asan":
		return decode.VariantASan, true
	case "watchdog":
		return decode.VariantWatchdog, true
	}
	return 0, false
}

// Config parameterizes a campaign. Zero values take the defaults noted on
// each field.
type Config struct {
	Seed      uint64   // campaign seed (default 1)
	Workloads []string // benchmark names (default mcf, xalancbmk)
	Variants  []string // protection variants (default always-on, prediction)
	Sites     []Site   // injection sites (default AllSites)

	FaultsPerRun int     // injection quota per run (default 15)
	Scale        float64 // workload scale factor (default 1.0)
	MaxInsts     uint64  // post-warmup instruction budget per run (default 40000)
	MaxCycles    uint64  // watchdog cycle budget per run (default 5000000)
}

func (c *Config) setDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"mcf", "xalancbmk"}
	}
	if len(c.Variants) == 0 {
		c.Variants = []string{"always-on", "prediction"}
	}
	if len(c.Sites) == 0 {
		c.Sites = AllSites()
	}
	if c.FaultsPerRun <= 0 {
		c.FaultsPerRun = 15
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.MaxInsts == 0 {
		c.MaxInsts = 40000
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 5000000
	}
}

// Normalized returns the configuration with every defaulted field made
// explicit. Two configurations that normalize identically run identical
// campaigns, so content-addressed caching (internal/campaign) hashes the
// normalized form: `Scale: 0` and `Scale: 1.0` are the same campaign and
// must share a cache key.
func (c Config) Normalized() Config {
	c.setDefaults()
	return c
}

// Cells splits the campaign into its independent workload × variant × site
// runs, one single-run Config per cell, in the same order Run executes
// them. Each cell keeps the campaign Seed: per-run RNG streams are derived
// from (Seed, workload, variant, site) and never from execution order, so
// running cells concurrently — or out of order, or from a cache — and
// merging the reports reproduces the sequential campaign byte for byte.
func (c Config) Cells() []Config {
	c.setDefaults()
	var cells []Config
	for _, w := range c.Workloads {
		for _, v := range c.Variants {
			for _, site := range c.Sites {
				cell := c
				cell.Workloads = []string{w}
				cell.Variants = []string{v}
				cell.Sites = []Site{site}
				cells = append(cells, cell)
			}
		}
	}
	return cells
}

// Merge reassembles per-cell reports (in Cells order) into the campaign
// report that Run(cfg) would have produced sequentially: header fields
// come from the campaign configuration, runs are concatenated in cell
// order, and totals and the pass verdict are recomputed.
func Merge(cfg Config, cells []*Report) *Report {
	cfg.setDefaults()
	rep := &Report{
		Schema:    "chexfault-report/v1",
		Seed:      cfg.Seed,
		Workloads: cfg.Workloads,
		Variants:  cfg.Variants,
		Sites:     cfg.Sites,
	}
	for _, cell := range cells {
		for _, rr := range cell.Runs {
			rep.add(rr)
		}
	}
	rep.Pass = rep.Totals.Silent == 0 && rep.Totals.Panics == 0 && rep.Totals.Errors == 0
	return rep
}

// add appends one run and folds it into the totals.
func (r *Report) add(rr RunReport) {
	r.Runs = append(r.Runs, rr)
	r.Totals.Runs++
	r.Totals.Faults += rr.FaultsInjected
	switch rr.Class {
	case ClassDetected:
		r.Totals.Detected++
	case ClassDegraded:
		r.Totals.Degraded++
	case ClassPerfOnly:
		r.Totals.PerfOnly++
	case ClassSilent:
		r.Totals.Silent++
	case ClassPanic:
		r.Totals.Panics++
	}
	if rr.Error != "" {
		r.Totals.Errors++
	}
}

// RunReport records one workload × variant × site run.
type RunReport struct {
	Workload string `json:"workload"`
	Variant  string `json:"variant"`
	Site     Site   `json:"site"`
	Seed     uint64 `json:"seed"` // the derived per-run RNG seed

	FaultsInjected int    `json:"faults_injected"`
	Violations     int    `json:"violations"` // violations surfaced during the run
	Accounted      uint64 `json:"accounted"`  // explicit degradation accounting (quarantines, evictions, tag faults)
	Cycles         uint64 `json:"cycles"`
	Insts          uint64 `json:"insts"`

	Class Class  `json:"class"`
	Error string `json:"error,omitempty"` // structured simulator error, if the run ended in one
}

// Totals aggregates a campaign.
type Totals struct {
	Runs     int `json:"runs"`
	Faults   int `json:"faults"`
	Detected int `json:"detected"`
	Degraded int `json:"degraded"`
	PerfOnly int `json:"perf_only"`
	Silent   int `json:"silent"`
	Panics   int `json:"panics"`
	Errors   int `json:"errors"`
}

// Report is the campaign's resilience report. It contains no timestamps
// and only deterministically ordered data, so equal seeds marshal to
// byte-identical JSON.
type Report struct {
	Schema    string   `json:"schema"`
	Seed      uint64   `json:"seed"`
	Workloads []string `json:"workloads"`
	Variants  []string `json:"variants"`
	Sites     []Site   `json:"sites"`

	Runs   []RunReport `json:"runs"`
	Totals Totals      `json:"totals"`
	Pass   bool        `json:"pass"`
}

// JSON marshals the report with stable indentation and a trailing newline.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DeriveSeed mixes a campaign seed with run coordinates so every run gets
// an independent but reproducible RNG stream. Exported for the fabric
// chaos harness (internal/fabric), which derives its per-worker fault
// streams the same way this package derives per-cell streams.
func DeriveSeed(seed uint64, parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return seed ^ h.Sum64()
}

// deriveSeed is the internal spelling, kept for the call sites predating
// the export.
func deriveSeed(seed uint64, parts ...string) uint64 {
	return DeriveSeed(seed, parts...)
}

// Run executes the campaign and returns its report. Configuration errors
// (unknown workload/variant) are returned as errors; faults, panics, and
// simulator errors inside runs are captured in the report instead.
func Run(cfg Config) (*Report, error) {
	cfg.setDefaults()

	for _, w := range cfg.Workloads {
		if workload.ByName(w) == nil {
			return nil, fmt.Errorf("faultinject: unknown workload %q", w)
		}
	}
	for _, v := range cfg.Variants {
		if _, ok := VariantByName(v); !ok {
			return nil, fmt.Errorf("faultinject: unknown variant %q", v)
		}
	}
	known := make(map[Site]bool)
	for _, s := range AllSites() {
		known[s] = true
	}
	for _, s := range cfg.Sites {
		if !known[s] {
			return nil, fmt.Errorf("faultinject: unknown site %q", s)
		}
	}

	rep := &Report{
		Schema:    "chexfault-report/v1",
		Seed:      cfg.Seed,
		Workloads: cfg.Workloads,
		Variants:  cfg.Variants,
		Sites:     cfg.Sites,
	}
	for _, w := range cfg.Workloads {
		for _, v := range cfg.Variants {
			for _, site := range cfg.Sites {
				rep.add(runOne(&cfg, w, v, site))
			}
		}
	}
	rep.Pass = rep.Totals.Silent == 0 && rep.Totals.Panics == 0 && rep.Totals.Errors == 0
	return rep, nil
}

// runOne executes a single workload × variant × site run with a panic
// guard: a panic anywhere inside the simulator is itself a fail-closed
// contract breach and is classified, not propagated.
func runOne(cfg *Config, w, v string, site Site) (rr RunReport) {
	rr = RunReport{Workload: w, Variant: v, Site: site,
		Seed: deriveSeed(cfg.Seed, w, v, string(site))}
	defer func() {
		if p := recover(); p != nil {
			rr.Class = ClassPanic
			rr.Error = fmt.Sprintf("panic: %v", p)
		}
	}()

	rng := rand.New(rand.NewSource(int64(rr.Seed)))
	prof := workload.ByName(w)
	prog, err := prof.Build(cfg.Scale)
	if err != nil {
		rr.Class = ClassSilent
		rr.Error = err.Error()
		return rr
	}

	if site == SiteDIFT {
		runDIFT(cfg, rng, prog, &rr)
		return rr
	}

	variant, _ := VariantByName(v)
	pcfg := pipeline.DefaultConfig()
	pcfg.Variant = variant
	pcfg.WarmupInsts = prof.SetupInsts()
	pcfg.MaxInsts = cfg.MaxInsts + pcfg.WarmupInsts
	pcfg.MaxCycles = cfg.MaxCycles
	harts := 1
	if prof.Threads > 0 {
		harts = prof.Threads
	}
	sim, err := pipeline.NewSim(prog, pcfg, harts)
	if err != nil {
		rr.Class = ClassSilent
		rr.Error = err.Error()
		return rr
	}

	// Injection loop: one fault attempt per batch of scheduling rounds
	// once the warmup region is past, until the quota is met or the run
	// drains. All randomness comes from the per-run RNG, so the schedule
	// is a pure function of the seed.
	const roundsPerBatch = 200
	flipped := make(map[core.PID]bool)
	var simErr error
	for {
		done, err := sim.Step(roundsPerBatch)
		if err != nil {
			simErr = err
			break
		}
		if rr.FaultsInjected < cfg.FaultsPerRun && sim.M.TotalInsts() >= pcfg.WarmupInsts {
			rr.FaultsInjected += inject(sim, site, rng, harts, flipped)
		}
		if done {
			break
		}
	}

	// End-of-run audit sweep: latent capability corruption that no check
	// reached is quarantined (and accounted) here rather than lingering.
	sim.Table.Audit()

	rr.Violations = len(sim.Violations)
	res := sim.Result()
	rr.Cycles = res.Cycles
	rr.Insts = sim.M.TotalInsts()
	if simErr != nil {
		rr.Error = simErr.Error()
	}

	switch site {
	case SiteCapTable:
		// Every injected table fault must be accounted as a quarantine or
		// eviction (flips target distinct PIDs, so counts line up 1:1).
		rr.Accounted = sim.Table.Stats.Degraded
		switch {
		case rr.Accounted < uint64(rr.FaultsInjected):
			rr.Class = ClassSilent
		case rr.Violations > 0:
			rr.Class = ClassDetected
		case rr.FaultsInjected > 0:
			rr.Class = ClassDegraded
		default:
			rr.Class = ClassPerfOnly
		}
	default:
		// Cache drops, predictor corruption, and context-switch loss hit
		// performance-only state: the shadow tables stay authoritative and
		// predictions are advisory. Any violation here would be a spurious
		// enforcement action — a contract breach.
		if rr.Violations == 0 {
			rr.Class = ClassPerfOnly
		} else {
			rr.Class = ClassSilent
		}
	}
	return rr
}

// inject applies one fault of the given site family, returning how many
// faults were actually placed (0 when the target structure is empty).
func inject(sim *pipeline.Sim, site Site, rng *rand.Rand, harts int, flipped map[core.PID]bool) int {
	switch site {
	case SiteCapTable:
		// Pick a PID not faulted before: two flips in one entry could
		// cancel in the parity fold and evade the integrity check, which
		// would be an artifact of the campaign rather than of the design.
		var fresh []core.PID
		for _, pid := range sim.Table.PIDs() {
			if !flipped[pid] {
				fresh = append(fresh, pid)
			}
		}
		if len(fresh) == 0 {
			return 0
		}
		pid := fresh[rng.Intn(len(fresh))]
		flipped[pid] = true
		if rng.Intn(4) == 0 {
			if sim.Table.Evict(pid) {
				return 1
			}
			return 0
		}
		if sim.Table.FlipBit(pid, uint(rng.Intn(128))) {
			return 1
		}
		return 0
	case SiteCapCache:
		if _, ok := sim.InjectCapCacheDrop(rng.Intn(harts), rng.Intn(1<<16)); ok {
			return 1
		}
		return 0
	case SiteAliasCache:
		if _, ok := sim.InjectAliasCacheDrop(rng.Intn(harts), rng.Intn(1<<16)); ok {
			return 1
		}
		return 0
	case SitePredictor:
		if _, ok := sim.InjectPredictorCorrupt(rng.Intn(harts), rng.Intn(1<<16)); ok {
			return 1
		}
		return 0
	case SiteCtxSwitch:
		sim.OnContextSwitchIn(uint64(500 + rng.Intn(1500)))
		return 1
	}
	return 0
}

// runDIFT exercises the taint-tag fault site: the workload runs under the
// DIFT engine with no configured untrusted sources, so the only taint in
// the system is what the campaign injects — register and memory tag flips
// at a deterministic instruction stride. Flips are always accounted
// (InjectedTagFaults), so the outcome is degraded-by-construction; if a
// flipped tag reaches a policy check (tainted pointer or jump target), the
// engine detects it, which is the fail-closed upgrade path.
func runDIFT(cfg *Config, rng *rand.Rand, prog *asm.Program, rr *RunReport) {
	eng := dift.NewEngine(dift.DefaultPolicy())
	var regions []asm.Global
	for _, g := range prog.Globals {
		if !g.ReadOnly && g.Size >= 8 {
			regions = append(regions, g)
		}
	}

	quota := cfg.FaultsPerRun
	stride := cfg.MaxInsts / uint64(quota+1)
	if stride == 0 {
		stride = 1
	}
	injected := 0
	eng.OnInst = func(n uint64) {
		if injected >= quota || n%stride != 0 {
			return
		}
		if len(regions) > 0 && rng.Intn(2) == 0 {
			g := regions[rng.Intn(len(regions))]
			eng.FlipMem(g.Addr + uint64(rng.Intn(int(g.Size/8)))*8)
			injected++
			return
		}
		// Architectural register tags only; FLAGS and temporaries are
		// rejected by FlipReg, so retry within this fault slot.
		for tries := 0; tries < 8; tries++ {
			if eng.FlipReg(isa.Reg(1 + rng.Intn(int(isa.NumRegs)-1))) {
				injected++
				return
			}
		}
	}

	v, err := eng.Run(prog, cfg.MaxInsts)
	rr.FaultsInjected = int(eng.Stats.InjectedTagFaults)
	rr.Accounted = eng.Stats.InjectedTagFaults
	rr.Insts = eng.Insts
	if err != nil {
		rr.Class = ClassSilent
		rr.Error = err.Error()
		return
	}
	switch {
	case v != nil:
		rr.Violations = 1
		rr.Class = ClassDetected
	case rr.FaultsInjected > 0:
		rr.Class = ClassDegraded
	default:
		rr.Class = ClassPerfOnly
	}
}
