package faultinject

import (
	"bytes"
	"testing"
)

// small returns a quick campaign configuration for determinism checks.
func small(seed uint64) Config {
	return Config{
		Seed:         seed,
		Workloads:    []string{"mcf"},
		Variants:     []string{"prediction"},
		FaultsPerRun: 5,
		MaxInsts:     4000,
	}
}

// TestCampaignDeterminism: equal seeds produce byte-identical JSON
// reports; different seeds produce different ones.
func TestCampaignDeterminism(t *testing.T) {
	j := func(seed uint64) []byte {
		rep, err := Run(small(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b, c := j(3), j(3), j(4)
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed campaigns must marshal to byte-identical reports")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds must produce different reports")
	}
}

// TestCampaignContract runs the default campaign (2 workloads × 2 variants
// × all sites) and checks the resilience acceptance criteria: at least 200
// faults across every site family, and not a single silent outcome or
// panic.
func TestCampaignContract(t *testing.T) {
	rep, err := Run(Config{Seed: 1, FaultsPerRun: 10, MaxInsts: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * len(AllSites()); rep.Totals.Runs != want {
		t.Fatalf("runs = %d, want %d", rep.Totals.Runs, want)
	}
	if rep.Totals.Faults < 200 {
		t.Fatalf("campaign injected %d faults, want >= 200", rep.Totals.Faults)
	}
	if rep.Totals.Silent != 0 || rep.Totals.Panics != 0 || rep.Totals.Errors != 0 {
		t.Fatalf("fail-closed contract broken: %+v", rep.Totals)
	}
	if !rep.Pass {
		t.Fatal("campaign must pass")
	}
	perSite := make(map[Site]int)
	for _, rr := range rep.Runs {
		perSite[rr.Site] += rr.FaultsInjected
		switch rr.Class {
		case ClassDetected, ClassDegraded, ClassPerfOnly:
		default:
			t.Fatalf("%s/%s/%s: unexpected class %s", rr.Workload, rr.Variant, rr.Site, rr.Class)
		}
	}
	for _, s := range AllSites() {
		if perSite[s] == 0 {
			t.Fatalf("site %s never injected a fault", s)
		}
	}
}

// TestCapTableFaultsAccounted: every run against the capability table must
// account each fault as a quarantine or eviction (Degraded) — that is the
// fail-closed invariant the ECC metadata exists to uphold.
func TestCapTableFaultsAccounted(t *testing.T) {
	cfg := small(9)
	cfg.Sites = []Site{SiteCapTable}
	cfg.FaultsPerRun = 8
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Runs {
		if rr.FaultsInjected == 0 {
			t.Fatalf("%s/%s: no faults reached the capability table", rr.Workload, rr.Variant)
		}
		if rr.Accounted < uint64(rr.FaultsInjected) {
			t.Fatalf("%s/%s: %d faults but only %d accounted", rr.Workload, rr.Variant,
				rr.FaultsInjected, rr.Accounted)
		}
	}
}

// TestConfigValidation: unknown workloads and variants are campaign
// configuration errors, not silent no-ops.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Workloads: []string{"nope"}}); err == nil {
		t.Fatal("unknown workload must be rejected")
	}
	if _, err := Run(Config{Variants: []string{"nope"}}); err == nil {
		t.Fatal("unknown variant must be rejected")
	}
}
