package fabric

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Metrics counts fabric activity. All counters are monotonic and safe for
// concurrent update; Snapshot gives a consistent-enough read for the
// chexd /metrics endpoint.
type Metrics struct {
	WorkersRegistered atomic.Int64 // registrations accepted (re-registrations count again)
	WorkersExpired    atomic.Int64 // workers reaped for missing heartbeats
	WorkersLeft       atomic.Int64 // graceful deregistrations

	CampaignsSubmitted atomic.Int64 // campaigns accepted by Submit
	CampaignsRejected  atomic.Int64 // campaigns refused by admission control (queue full)
	CampaignsDone      atomic.Int64 // campaigns finished with every cell done
	CampaignsFailed    atomic.Int64 // campaigns finished with at least one failed cell

	CellsQueued    atomic.Int64 // cells enqueued for distribution
	CellsFromCache atomic.Int64 // cells satisfied from the result store at admission
	CellsLocal     atomic.Int64 // cells executed on the coordinator's local pool (degraded mode)

	LeasesGranted  atomic.Int64 // leases handed to workers
	LeasesExpired  atomic.Int64 // leases reaped past their deadline (cell requeued)
	Completions    atomic.Int64 // first terminal record per cell
	DupCompletions atomic.Int64 // idempotently ignored repeat completions
	LateCompletes  atomic.Int64 // completions whose lease had already expired (still recorded if first)
}

// MetricsSnapshot is a point-in-time copy of the counters.
type MetricsSnapshot struct {
	WorkersRegistered  int64 `json:"workersRegistered"`
	WorkersExpired     int64 `json:"workersExpired"`
	WorkersLeft        int64 `json:"workersLeft"`
	CampaignsSubmitted int64 `json:"campaignsSubmitted"`
	CampaignsRejected  int64 `json:"campaignsRejected"`
	CampaignsDone      int64 `json:"campaignsDone"`
	CampaignsFailed    int64 `json:"campaignsFailed"`
	CellsQueued        int64 `json:"cellsQueued"`
	CellsFromCache     int64 `json:"cellsFromCache"`
	CellsLocal         int64 `json:"cellsLocal"`
	LeasesGranted      int64 `json:"leasesGranted"`
	LeasesExpired      int64 `json:"leasesExpired"`
	Completions        int64 `json:"completions"`
	DupCompletions     int64 `json:"dupCompletions"`
	LateCompletes      int64 `json:"lateCompletes"`
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		WorkersRegistered:  m.WorkersRegistered.Load(),
		WorkersExpired:     m.WorkersExpired.Load(),
		WorkersLeft:        m.WorkersLeft.Load(),
		CampaignsSubmitted: m.CampaignsSubmitted.Load(),
		CampaignsRejected:  m.CampaignsRejected.Load(),
		CampaignsDone:      m.CampaignsDone.Load(),
		CampaignsFailed:    m.CampaignsFailed.Load(),
		CellsQueued:        m.CellsQueued.Load(),
		CellsFromCache:     m.CellsFromCache.Load(),
		CellsLocal:         m.CellsLocal.Load(),
		LeasesGranted:      m.LeasesGranted.Load(),
		LeasesExpired:      m.LeasesExpired.Load(),
		Completions:        m.Completions.Load(),
		DupCompletions:     m.DupCompletions.Load(),
		LateCompletes:      m.LateCompletes.Load(),
	}
}

// Render writes the counters in the text exposition format scrapers
// expect: one `name value` line per counter, in fixed order.
func (s MetricsSnapshot) Render() string {
	var b strings.Builder
	row := func(name string, v int64) {
		fmt.Fprintf(&b, "fabric_%s %d\n", name, v)
	}
	row("workers_registered", s.WorkersRegistered)
	row("workers_expired", s.WorkersExpired)
	row("workers_left", s.WorkersLeft)
	row("campaigns_submitted", s.CampaignsSubmitted)
	row("campaigns_rejected", s.CampaignsRejected)
	row("campaigns_done", s.CampaignsDone)
	row("campaigns_failed", s.CampaignsFailed)
	row("cells_queued", s.CellsQueued)
	row("cells_from_cache", s.CellsFromCache)
	row("cells_local", s.CellsLocal)
	row("leases_granted", s.LeasesGranted)
	row("leases_expired", s.LeasesExpired)
	row("completions", s.Completions)
	row("completions_duplicate", s.DupCompletions)
	row("completions_late", s.LateCompletes)
	return b.String()
}

// CacheMetrics counts two-tier cache activity (TieredCache).
type CacheMetrics struct {
	LocalHits   atomic.Int64 // served from the local disk tier
	PeerHits    atomic.Int64 // served from the peer tier (and written through)
	PeerMisses  atomic.Int64 // peer answered "no such key"
	PeerErrors  atomic.Int64 // peer unreachable or timed out (fell back to recompute)
	PeerCorrupt atomic.Int64 // peer response failed validation (fell back to recompute)
	Misses      atomic.Int64 // full misses (recompute)
}

// CacheMetricsSnapshot is a point-in-time copy of the counters.
type CacheMetricsSnapshot struct {
	LocalHits   int64 `json:"localHits"`
	PeerHits    int64 `json:"peerHits"`
	PeerMisses  int64 `json:"peerMisses"`
	PeerErrors  int64 `json:"peerErrors"`
	PeerCorrupt int64 `json:"peerCorrupt"`
	Misses      int64 `json:"misses"`
}

// Snapshot copies the counters.
func (m *CacheMetrics) Snapshot() CacheMetricsSnapshot {
	return CacheMetricsSnapshot{
		LocalHits:   m.LocalHits.Load(),
		PeerHits:    m.PeerHits.Load(),
		PeerMisses:  m.PeerMisses.Load(),
		PeerErrors:  m.PeerErrors.Load(),
		PeerCorrupt: m.PeerCorrupt.Load(),
		Misses:      m.Misses.Load(),
	}
}

// Render writes the counters in the text exposition format.
func (s CacheMetricsSnapshot) Render() string {
	var b strings.Builder
	row := func(name string, v int64) {
		fmt.Fprintf(&b, "fabric_cache_%s %d\n", name, v)
	}
	row("local_hits", s.LocalHits)
	row("peer_hits", s.PeerHits)
	row("peer_misses", s.PeerMisses)
	row("peer_errors", s.PeerErrors)
	row("peer_corrupt", s.PeerCorrupt)
	row("misses", s.Misses)
	return b.String()
}
