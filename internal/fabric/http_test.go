package fabric

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"chex86/internal/campaign"
)

// newHTTPFabric serves a coordinator over a real HTTP listener and
// returns a Client transport pointed at it.
func newHTTPFabric(t *testing.T, opts CoordinatorOptions) (*Coordinator, *Client) {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = NewLogicalClock(0)
	}
	c := NewCoordinator(opts)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, NewClient(srv.URL+"/", srv.Client()) // trailing slash must be tolerated
}

// TestHTTPTransportRoundTrip drives the full worker wire protocol over
// HTTP: register, heartbeat, lease, complete, peer cache fetch — with
// sentinel errors surviving the wire.
func TestHTTPTransportRoundTrip(t *testing.T) {
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, client := newHTTPFabric(t, CoordinatorOptions{Cache: cache})
	ctx := context.Background()

	// Sentinels must survive the HTTP hop.
	if err := client.Heartbeat(ctx, "ghost"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat for unregistered worker = %v, want ErrUnknownWorker", err)
	}

	reply, err := client.Register(ctx, WorkerInfo{ID: "w1", Addr: "here", Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reply.WorkerID != "w1" || reply.LeaseTTLMS <= 0 {
		t.Fatalf("register reply = %+v", reply)
	}
	if err := client.Heartbeat(ctx, "w1"); err != nil {
		t.Fatal(err)
	}

	// Empty queue leases nil, not an error.
	if l, err := client.Lease(ctx, "w1"); err != nil || l != nil {
		t.Fatalf("lease on empty queue = %+v, %v, want nil, nil", l, err)
	}

	cells := benchCells(t, 1)
	camp, err := c.Submit(cells, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := client.Lease(ctx, "w1")
	if err != nil || l == nil {
		t.Fatalf("lease = %+v, %v, want the queued cell", l, err)
	}
	if l.Spec.Workload != cells[0].Workload {
		t.Fatalf("leased spec = %+v, want %q", l.Spec, cells[0].Workload)
	}

	// Peer cache miss is (nil, nil); after completion the result is
	// fetchable by content address.
	key, err := cells[0].Key()
	if err != nil {
		t.Fatal(err)
	}
	if res, err := client.FetchResult(ctx, key); err != nil || res != nil {
		t.Fatalf("fetch before completion = %+v, %v, want nil, nil", res, err)
	}
	if err := client.Complete(ctx, CompleteRequest{
		WorkerID: "w1", LeaseID: l.ID, CampaignID: l.CampaignID, CellIndex: l.CellIndex,
		Result: fakeCellResult(&cells[0]),
	}); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := camp.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	res, err := client.FetchResult(ctx, key)
	if err != nil || res == nil {
		t.Fatalf("fetch after completion = %+v, %v, want the stored result", res, err)
	}
	if res.Schema != campaign.ResultSchema {
		t.Fatalf("fetched schema = %q", res.Schema)
	}

	if err := client.Deregister(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	if ws := c.Workers(); len(ws) != 0 {
		t.Fatalf("workers after deregister = %+v", ws)
	}
}

// TestHTTPWorkerEndToEnd runs a real Worker against a coordinator over
// HTTP: the worker registers, leases, executes on its pool, completes.
func TestHTTPWorkerEndToEnd(t *testing.T) {
	c, client := newHTTPFabric(t, CoordinatorOptions{})
	ctx := context.Background()

	pool := campaign.NewPool(campaign.Options{Workers: 1, Exec: fakeExec})
	defer pool.Close()
	w, err := NewWorker(WorkerOptions{ID: "w1", Transport: client, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Register(ctx); err != nil {
		t.Fatal(err)
	}

	camp, err := c.Submit(benchCells(t, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		worked, err := w.PollOnce(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !worked {
			break
		}
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := camp.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	if st := camp.Status(false); st.State != CampaignDone {
		t.Fatalf("campaign = %+v, want done", st)
	}
}

// TestWorkerReRegistersWhenForgotten: a coordinator that lost the worker
// (restart, heartbeat expiry) answers ErrUnknownWorker; the worker must
// recover by re-registering inside the same poll.
func TestWorkerReRegistersWhenForgotten(t *testing.T) {
	ctx := context.Background()
	clock := NewLogicalClock(0)
	c := NewCoordinator(CoordinatorOptions{Clock: clock, HeartbeatTTL: 10 * time.Second})
	pool := campaign.NewPool(campaign.Options{Workers: 1, Exec: fakeExec})
	defer pool.Close()
	w, err := NewWorker(WorkerOptions{ID: "w1", Transport: c, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Register(ctx); err != nil {
		t.Fatal(err)
	}

	// The coordinator forgets the worker while a cell is waiting.
	clock.Advance(11 * time.Second)
	c.Tick()
	camp, err := c.Submit(benchCells(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	worked, err := w.PollOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !worked {
		t.Fatal("poll after expiry did not recover via re-registration")
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := camp.Wait(wctx); err != nil {
		t.Fatal(err)
	}
}
