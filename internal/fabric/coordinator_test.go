package fabric

import (
	"context"
	"errors"
	"testing"
	"time"

	"chex86/internal/campaign"
	"chex86/internal/pipeline"
	"chex86/internal/workload"
)

// benchCells returns n cheap-but-real bench specs with distinct keys.
func benchCells(t *testing.T, n int) []campaign.Spec {
	t.Helper()
	names := workload.Names()
	if n > len(names) {
		t.Fatalf("want %d cells but the catalog has %d workloads", n, len(names))
	}
	var cells []campaign.Spec
	for _, name := range names[:n] {
		cells = append(cells, campaign.BenchSpec(name, pipeline.DefaultConfig(), 0.1, 1000, 0))
	}
	return cells
}

// fakeExec is a pool executor that returns a synthetic result without
// simulating, so scheduling tests stay fast.
func fakeExec(_ context.Context, spec *campaign.Spec) (*campaign.Result, error) {
	return fakeCellResult(spec), nil
}

func fakeCellResult(spec *campaign.Spec) *campaign.Result {
	return &campaign.Result{
		Schema:   campaign.ResultSchema,
		Mode:     spec.Mode,
		Workload: spec.Workload,
		Bench:    &campaign.BenchResult{Cycles: 42, Insts: 7},
	}
}

func TestWorkerLifecycle(t *testing.T) {
	ctx := context.Background()
	clock := NewLogicalClock(0)
	c := NewCoordinator(CoordinatorOptions{Clock: clock, HeartbeatTTL: 10 * time.Second})

	if _, err := c.Register(ctx, WorkerInfo{ID: "w1", Concurrency: 2}); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Register(ctx, WorkerInfo{ID: "w1", Concurrency: 2}) // refresh is allowed
	if err != nil {
		t.Fatal(err)
	}
	if reply.HeartbeatTTLMS != 10_000 {
		t.Fatalf("heartbeat TTL = %dms, want 10000", reply.HeartbeatTTLMS)
	}
	if ws := c.Workers(); len(ws) != 1 || ws[0].ID != "w1" {
		t.Fatalf("workers = %+v, want [w1]", ws)
	}

	// Heartbeats inside the TTL keep the worker alive.
	clock.Advance(8 * time.Second)
	if err := c.Heartbeat(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(8 * time.Second)
	c.Tick()
	if ws := c.Workers(); len(ws) != 1 {
		t.Fatalf("worker reaped despite fresh heartbeat: %+v", ws)
	}

	// Silence past the TTL deregisters.
	clock.Advance(11 * time.Second)
	c.Tick()
	if ws := c.Workers(); len(ws) != 0 {
		t.Fatalf("silent worker survived the TTL: %+v", ws)
	}
	if err := c.Heartbeat(ctx, "w1"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat after expiry = %v, want ErrUnknownWorker", err)
	}
	if got := c.Metrics().WorkersExpired.Load(); got != 1 {
		t.Fatalf("WorkersExpired = %d, want 1", got)
	}

	// Deregistration is idempotent — even for a worker already reaped.
	if err := c.Deregister(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseExpiryReassigns(t *testing.T) {
	ctx := context.Background()
	clock := NewLogicalClock(0)
	c := NewCoordinator(CoordinatorOptions{
		Clock:        clock,
		LeaseTTL:     10 * time.Second,
		HeartbeatTTL: time.Hour,
	})
	for _, id := range []string{"w1", "w2"} {
		if _, err := c.Register(ctx, WorkerInfo{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	cells := benchCells(t, 1)
	camp, err := c.Submit(cells, 0)
	if err != nil {
		t.Fatal(err)
	}

	l1, err := c.Lease(ctx, "w1")
	if err != nil || l1 == nil {
		t.Fatalf("lease = %v, %v, want a cell", l1, err)
	}
	if l2, _ := c.Lease(ctx, "w2"); l2 != nil {
		t.Fatalf("second lease got the only cell: %+v", l2)
	}

	// The lease expires: the cell returns to the queue for w2.
	clock.Advance(11 * time.Second)
	c.Tick()
	if got := c.Metrics().LeasesExpired.Load(); got != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", got)
	}
	l2, err := c.Lease(ctx, "w2")
	if err != nil || l2 == nil {
		t.Fatalf("reassigned lease = %v, %v, want the requeued cell", l2, err)
	}
	if l2.CellIndex != l1.CellIndex || l2.CampaignID != l1.CampaignID {
		t.Fatalf("reassigned lease is a different cell: %+v vs %+v", l2, l1)
	}

	// w2 completes first; the original worker's late completion must be
	// acknowledged and discarded, not double-counted.
	res := fakeCellResult(&cells[0])
	if err := c.Complete(ctx, CompleteRequest{WorkerID: "w2", LeaseID: l2.ID, CampaignID: l2.CampaignID, CellIndex: l2.CellIndex, Result: res}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(ctx, CompleteRequest{WorkerID: "w1", LeaseID: l1.ID, CampaignID: l1.CampaignID, CellIndex: l1.CellIndex, Result: res}); err != nil {
		t.Fatal(err)
	}

	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := camp.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics().Snapshot()
	if m.Completions != 1 || m.DupCompletions != 1 {
		t.Fatalf("completions=%d dup=%d, want 1/1", m.Completions, m.DupCompletions)
	}
	st := camp.Status(true)
	if st.State != CampaignDone || st.Done != 1 {
		t.Fatalf("campaign status = %+v, want done", st)
	}
	if st.Detail[0].By != "w2" {
		t.Fatalf("cell credited to %q, want the first completer w2", st.Detail[0].By)
	}
}

func TestDuplicateCompletionIsIdempotent(t *testing.T) {
	ctx := context.Background()
	c := NewCoordinator(CoordinatorOptions{Clock: NewLogicalClock(0)})
	if _, err := c.Register(ctx, WorkerInfo{ID: "w1"}); err != nil {
		t.Fatal(err)
	}
	cells := benchCells(t, 1)
	camp, err := c.Submit(cells, 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := c.Lease(ctx, "w1")
	if err != nil || l == nil {
		t.Fatal("no lease")
	}
	req := CompleteRequest{WorkerID: "w1", LeaseID: l.ID, CampaignID: l.CampaignID, CellIndex: l.CellIndex, Result: fakeCellResult(&cells[0])}
	for i := 0; i < 3; i++ { // original + two duplicated deliveries
		if err := c.Complete(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	m := c.Metrics().Snapshot()
	if m.Completions != 1 || m.DupCompletions != 2 {
		t.Fatalf("completions=%d dup=%d, want 1/2", m.Completions, m.DupCompletions)
	}
	if st := camp.Status(false); st.State != CampaignDone {
		t.Fatalf("state = %s, want done", st.State)
	}
}

func TestAdmissionControl(t *testing.T) {
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCoordinator(CoordinatorOptions{Clock: NewLogicalClock(0), MaxQueue: 2, Cache: cache})

	cells := benchCells(t, 3)
	if _, err := c.Submit(cells, 0); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("3 cells into a 2-slot queue = %v, want ErrQueueFull", err)
	}
	if got := c.Metrics().CampaignsRejected.Load(); got != 1 {
		t.Fatalf("CampaignsRejected = %d, want 1", got)
	}

	// Cached cells never occupy queue capacity: with two of three cells
	// already in the result store, the same campaign is admitted.
	for i := 0; i < 2; i++ {
		key, err := cells[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		if err := cache.Put(key, cells[i], fakeCellResult(&cells[i])); err != nil {
			t.Fatal(err)
		}
	}
	camp, err := c.Submit(cells, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics().Snapshot()
	if m.CellsFromCache != 2 || m.CellsQueued != 1 {
		t.Fatalf("fromCache=%d queued=%d, want 2/1", m.CellsFromCache, m.CellsQueued)
	}
	st := camp.Status(true)
	if st.Done != 2 || st.Queued != 1 {
		t.Fatalf("status = %+v, want 2 done (cache) + 1 queued", st)
	}
	for _, cell := range st.Detail[:2] {
		if cell.By != "cache" {
			t.Fatalf("cell %d credited to %q, want cache", cell.Index, cell.By)
		}
	}
}

func TestLocalFallbackWithZeroWorkers(t *testing.T) {
	pool := campaign.NewPool(campaign.Options{Workers: 2, Exec: fakeExec})
	defer pool.Close()
	c := NewCoordinator(CoordinatorOptions{Clock: NewLogicalClock(0), Local: pool})

	camp, err := c.Submit(benchCells(t, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := camp.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := camp.Status(false)
	if st.State != CampaignDone || !st.Local {
		t.Fatalf("status = %+v, want done via local degradation", st)
	}
	if got := c.Metrics().CellsLocal.Load(); got != 3 {
		t.Fatalf("CellsLocal = %d, want 3", got)
	}
	for i, r := range camp.Results() {
		if r == nil {
			t.Fatalf("cell %d has no result", i)
		}
	}
}

func TestDegradesToLocalWhenWorkersLeave(t *testing.T) {
	ctx := context.Background()
	pool := campaign.NewPool(campaign.Options{Workers: 2, Exec: fakeExec})
	defer pool.Close()
	clock := NewLogicalClock(0)
	c := NewCoordinator(CoordinatorOptions{Clock: clock, Local: pool, HeartbeatTTL: time.Hour})

	if _, err := c.Register(ctx, WorkerInfo{ID: "w1"}); err != nil {
		t.Fatal(err)
	}
	camp, err := c.Submit(benchCells(t, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	// With a live worker the queue waits for leases — nothing runs locally.
	if got := c.Metrics().CellsLocal.Load(); got != 0 {
		t.Fatalf("CellsLocal = %d before any worker left, want 0", got)
	}
	if l, err := c.Lease(ctx, "w1"); err != nil || l == nil {
		t.Fatalf("lease = %v, %v", l, err)
	}

	// The only worker leaves mid-campaign: its leased cell is requeued and
	// the whole queue drains onto the coordinator's local pool.
	if err := c.Deregister(ctx, "w1"); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := camp.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	st := camp.Status(false)
	if st.State != CampaignDone || !st.Local {
		t.Fatalf("status = %+v, want done via local degradation", st)
	}
	if got := c.Metrics().CellsLocal.Load(); got != 3 {
		t.Fatalf("CellsLocal = %d, want all 3", got)
	}
	if got := c.Metrics().LeasesExpired.Load(); got != 1 {
		t.Fatalf("LeasesExpired = %d, want the departed worker's lease", got)
	}
}

func TestPriorityAndDeterministicOrder(t *testing.T) {
	ctx := context.Background()
	c := NewCoordinator(CoordinatorOptions{Clock: NewLogicalClock(0)})
	if _, err := c.Register(ctx, WorkerInfo{ID: "w1"}); err != nil {
		t.Fatal(err)
	}
	low, err := c.Submit(benchCells(t, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	high, err := c.Submit(benchCells(t, 2)[:1], 5)
	if err != nil {
		t.Fatal(err)
	}
	// Highest priority first; within a priority, campaign ID then cell
	// index ascending — a total order, so the schedule is reproducible.
	want := []struct{ camp, cell int }{
		{high.ID(), 0},
		{low.ID(), 0},
		{low.ID(), 1},
	}
	for i, w := range want {
		l, err := c.Lease(ctx, "w1")
		if err != nil || l == nil {
			t.Fatalf("lease %d: %v, %v", i, l, err)
		}
		if l.CampaignID != w.camp || l.CellIndex != w.cell {
			t.Fatalf("lease %d = campaign %d cell %d, want %d/%d", i, l.CampaignID, l.CellIndex, w.camp, w.cell)
		}
	}
}

func TestCompleteValidation(t *testing.T) {
	ctx := context.Background()
	c := NewCoordinator(CoordinatorOptions{Clock: NewLogicalClock(0)})
	if err := c.Complete(ctx, CompleteRequest{CampaignID: 7, CellIndex: 0, Error: "x"}); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("complete for unknown campaign = %v, want ErrUnknownCampaign", err)
	}
	camp, err := c.Submit(benchCells(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(ctx, CompleteRequest{CampaignID: camp.ID(), CellIndex: 9}); err == nil {
		t.Fatal("out-of-range cell index accepted")
	}
	if err := c.Complete(ctx, CompleteRequest{CampaignID: camp.ID(), CellIndex: 0}); err == nil {
		t.Fatal("completion with neither result nor error accepted")
	}
}

func TestFailedCellFailsCampaign(t *testing.T) {
	ctx := context.Background()
	c := NewCoordinator(CoordinatorOptions{Clock: NewLogicalClock(0)})
	if _, err := c.Register(ctx, WorkerInfo{ID: "w1"}); err != nil {
		t.Fatal(err)
	}
	camp, err := c.Submit(benchCells(t, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := c.Lease(ctx, "w1")
	if err != nil || l == nil {
		t.Fatal("no lease")
	}
	if err := c.Complete(ctx, CompleteRequest{WorkerID: "w1", LeaseID: l.ID, CampaignID: l.CampaignID, CellIndex: l.CellIndex, Error: "simulator exploded"}); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := camp.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	st := camp.Status(true)
	if st.State != CampaignFailed || st.Failed != 1 {
		t.Fatalf("status = %+v, want failed", st)
	}
	if st.Detail[0].Error != "simulator exploded" {
		t.Fatalf("cell error = %q", st.Detail[0].Error)
	}
	if got := c.Metrics().CampaignsFailed.Load(); got != 1 {
		t.Fatalf("CampaignsFailed = %d, want 1", got)
	}
}

func TestLogicalClockAfter(t *testing.T) {
	clock := NewLogicalClock(100)
	ch := clock.After(10 * time.Nanosecond)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	clock.Advance(9 * time.Nanosecond)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	clock.Advance(1 * time.Nanosecond)
	select {
	case <-ch:
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	if clock.Now() != 110 {
		t.Fatalf("Now = %d, want 110", clock.Now())
	}
	// d <= 0 fires immediately.
	select {
	case <-clock.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}
