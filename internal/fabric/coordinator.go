package fabric

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"chex86/internal/campaign"
	"chex86/internal/faultinject"
)

// CoordinatorOptions configures a Coordinator. The zero value is usable
// for in-process tests with a frozen clock; production wires a wall clock
// and a cache.
type CoordinatorOptions struct {
	// Clock drives lease deadlines and heartbeat expiry. nil = a frozen
	// clock at 0 (leases and heartbeats never expire on their own —
	// fine for tests that drive expiry explicitly).
	Clock Clock

	// LeaseTTL bounds how long a worker may hold a cell before the
	// coordinator assumes it dead and reassigns (default 60s).
	LeaseTTL time.Duration

	// HeartbeatTTL bounds how long a worker may go silent before it is
	// deregistered and its leases reaped (default 15s).
	HeartbeatTTL time.Duration

	// MaxQueue caps pending (queued, not yet leased) cells; submissions
	// that would exceed it fail with ErrQueueFull (default 4096).
	MaxQueue int

	// Cache is the coordinator's content-addressed result store: consulted
	// at admission (cached cells never queue), written on completion, and
	// served to workers as the peer tier (FetchResult). nil = none.
	Cache *campaign.Cache

	// Local executes cells on the coordinator itself when zero workers are
	// registered — the bottom rung of the degradation ladder. nil disables
	// local fallback (cells wait for a worker).
	Local *campaign.Pool
}

func (o *CoordinatorOptions) setDefaults() {
	if o.Clock == nil {
		o.Clock = frozenClock{}
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 60 * time.Second
	}
	if o.HeartbeatTTL <= 0 {
		o.HeartbeatTTL = 15 * time.Second
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4096
	}
}

// frozenClock is the zero-value clock: time never passes.
type frozenClock struct{}

func (frozenClock) Now() int64                           { return 0 }
func (frozenClock) After(time.Duration) <-chan time.Time { return make(chan time.Time) }

// CampaignState is a campaign's lifecycle position.
type CampaignState string

const (
	CampaignRunning CampaignState = "running"
	CampaignDone    CampaignState = "done"
	CampaignFailed  CampaignState = "failed"
)

// CellState is one cell's lifecycle position.
type CellState string

const (
	CellQueued CellState = "queued"
	CellLeased CellState = "leased"
	CellDone   CellState = "done"
	CellFailed CellState = "failed"
)

// Campaign is one sharded submission: an ordered list of cell specs, each
// executed exactly-once-effectively (idempotent completion), merged in
// cell order so the result is byte-identical to a sequential run.
type Campaign struct {
	id       int
	mode     campaign.Mode
	faultCfg *faultinject.Config // set for fault-mode campaigns (drives Merge)
	priority int

	done chan struct{}

	mu        sync.Mutex
	state     CampaignState
	cells     []campaign.Spec
	keys      []string
	cellState []CellState
	cellBy    []string // completing executor per cell: worker ID, "cache", or "local"
	cellErr   []string
	results   []*campaign.Result
	remaining int
	failed    int
	local     bool // at least one cell ran on the coordinator's local pool
	report    *faultinject.Report
}

// ID returns the campaign's coordinator-assigned ID.
func (cp *Campaign) ID() int { return cp.id }

// Done is closed when every cell is terminal.
func (cp *Campaign) Done() <-chan struct{} { return cp.done }

// Wait blocks until the campaign completes or ctx is cancelled.
func (cp *Campaign) Wait(ctx context.Context) error {
	select {
	case <-cp.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CellStatus is a point-in-time view of one cell.
type CellStatus struct {
	Index int       `json:"index"`
	State CellState `json:"state"`
	By    string    `json:"by,omitempty"` // worker ID, "cache", or "local"
	Error string    `json:"error,omitempty"`
}

// CampaignStatus is a point-in-time, JSON-ready view of a campaign.
type CampaignStatus struct {
	ID       int           `json:"id"`
	Mode     campaign.Mode `json:"mode"`
	State    CampaignState `json:"state"`
	Priority int           `json:"priority"`
	Cells    int           `json:"cells"`
	Queued   int           `json:"queued"`
	Leased   int           `json:"leased"`
	Done     int           `json:"done"`
	Failed   int           `json:"failed"`
	Local    bool          `json:"local"` // degraded to coordinator-local execution
	Detail   []CellStatus  `json:"detail,omitempty"`
}

// Status snapshots the campaign (with per-cell detail when detail=true).
func (cp *Campaign) Status(detail bool) CampaignStatus {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	st := CampaignStatus{
		ID:       cp.id,
		Mode:     cp.mode,
		State:    cp.state,
		Priority: cp.priority,
		Cells:    len(cp.cells),
		Local:    cp.local,
	}
	for i, cs := range cp.cellState {
		switch cs {
		case CellQueued:
			st.Queued++
		case CellLeased:
			st.Leased++
		case CellDone:
			st.Done++
		case CellFailed:
			st.Failed++
		}
		if detail {
			st.Detail = append(st.Detail, CellStatus{Index: i, State: cs, By: cp.cellBy[i], Error: cp.cellErr[i]})
		}
	}
	return st
}

// Results returns the per-cell results in cell order once the campaign is
// done (nil before then, or for failed campaigns partial with nil holes).
func (cp *Campaign) Results() []*campaign.Result {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	out := make([]*campaign.Result, len(cp.results))
	copy(out, cp.results)
	return out
}

// Report returns the merged fault-injection report of a completed
// fault-mode campaign (nil otherwise). The merge runs in cell order over
// deterministic per-cell reports, so these bytes equal a single-node
// sequential faultinject.Run of the same configuration.
func (cp *Campaign) Report() *faultinject.Report {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.report
}

// workerState is the coordinator's registration record for one worker.
type workerState struct {
	info       WorkerInfo
	lastBeatNS int64
	completed  int64
	leases     int
}

// WorkerStatus is a JSON-ready view of one registered worker.
type WorkerStatus struct {
	ID           string `json:"id"`
	Addr         string `json:"addr,omitempty"`
	Concurrency  int    `json:"concurrency,omitempty"`
	ActiveLeases int    `json:"activeLeases"`
	Completed    int64  `json:"completed"`
	SilentForMS  int64  `json:"silentForMS"` // time since last heartbeat, coordinator clock
}

// lease tracks one granted cell.
type lease struct {
	id         int64
	workerID   string
	camp       *Campaign
	cell       int
	deadlineNS int64
}

// queuedCell is one heap entry.
type queuedCell struct {
	camp *Campaign
	cell int
}

// cellHeap orders pending cells by (priority desc, campaign ID asc, cell
// index asc) — a total order, so scheduling is deterministic regardless of
// requeue interleaving.
type cellHeap []queuedCell

func (h cellHeap) Len() int { return len(h) }
func (h cellHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.camp.priority != b.camp.priority {
		return a.camp.priority > b.camp.priority
	}
	if a.camp.id != b.camp.id {
		return a.camp.id < b.camp.id
	}
	return a.cell < b.cell
}
func (h cellHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x any)   { *h = append(*h, x.(queuedCell)) }
func (h *cellHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Coordinator owns the fabric's scheduling state: worker registry, cell
// queue, leases, and campaigns. All methods are safe for concurrent use.
// It implements Transport, so a worker can run against it in-process.
type Coordinator struct {
	opts    CoordinatorOptions
	metrics Metrics

	mu        sync.Mutex
	workers   map[string]*workerState
	leases    map[int64]*lease
	queue     cellHeap
	campaigns []*Campaign
	nextLease int64
}

var _ Transport = (*Coordinator)(nil)

// NewCoordinator builds a coordinator.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	opts.setDefaults()
	return &Coordinator{
		opts:    opts,
		workers: make(map[string]*workerState),
		leases:  make(map[int64]*lease),
	}
}

// Metrics exposes the coordinator's counters.
func (c *Coordinator) Metrics() *Metrics { return &c.metrics }

// LeaseTTL returns the configured lease TTL.
func (c *Coordinator) LeaseTTL() time.Duration { return c.opts.LeaseTTL }

// HeartbeatTTL returns the configured heartbeat TTL.
func (c *Coordinator) HeartbeatTTL() time.Duration { return c.opts.HeartbeatTTL }

// Tick reaps expired workers and leases and re-dispatches; production
// calls it periodically, tests call it after advancing the clock.
func (c *Coordinator) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
}

// Register adds (or refreshes) a worker.
func (c *Coordinator) Register(_ context.Context, info WorkerInfo) (*RegisterReply, error) {
	if info.ID == "" {
		return nil, fmt.Errorf("fabric: register: empty worker ID")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	w := c.workers[info.ID]
	if w == nil {
		w = &workerState{info: info}
		c.workers[info.ID] = w
	}
	w.info = info
	w.lastBeatNS = c.opts.Clock.Now()
	c.metrics.WorkersRegistered.Add(1)
	return &RegisterReply{
		WorkerID:       info.ID,
		LeaseTTLMS:     c.opts.LeaseTTL.Milliseconds(),
		HeartbeatTTLMS: c.opts.HeartbeatTTL.Milliseconds(),
	}, nil
}

// Heartbeat refreshes a worker's liveness.
func (c *Coordinator) Heartbeat(_ context.Context, workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	w := c.workers[workerID]
	if w == nil {
		return fmt.Errorf("%w: %s", ErrUnknownWorker, workerID)
	}
	w.lastBeatNS = c.opts.Clock.Now()
	return nil
}

// Deregister removes a worker gracefully; its leased cells are requeued
// immediately.
func (c *Coordinator) Deregister(_ context.Context, workerID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[workerID]; !ok {
		return nil // already gone — deregistration is idempotent
	}
	delete(c.workers, workerID)
	c.metrics.WorkersLeft.Add(1)
	c.expireWorkerLeasesLocked(workerID)
	c.reapLocked()
	return nil
}

// Lease hands the worker the highest-priority pending cell, or nil when
// the queue is empty.
func (c *Coordinator) Lease(_ context.Context, workerID string) (*Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	w := c.workers[workerID]
	if w == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownWorker, workerID)
	}
	if c.queue.Len() == 0 {
		return nil, nil
	}
	qc := heap.Pop(&c.queue).(queuedCell)
	now := c.opts.Clock.Now()
	c.nextLease++
	l := &lease{
		id:         c.nextLease,
		workerID:   workerID,
		camp:       qc.camp,
		cell:       qc.cell,
		deadlineNS: now + int64(c.opts.LeaseTTL),
	}
	c.leases[l.id] = l
	w.leases++
	qc.camp.mu.Lock()
	qc.camp.cellState[qc.cell] = CellLeased
	qc.camp.cellBy[qc.cell] = workerID
	spec := qc.camp.cells[qc.cell]
	qc.camp.mu.Unlock()
	c.metrics.LeasesGranted.Add(1)
	return &Lease{
		ID:         l.id,
		CampaignID: qc.camp.id,
		CellIndex:  qc.cell,
		Spec:       spec,
		DeadlineNS: l.deadlineNS,
		TTLMS:      c.opts.LeaseTTL.Milliseconds(),
	}, nil
}

// Complete records a cell's terminal outcome, idempotently: the first
// terminal record for a cell wins and every later one — a duplicated
// message, a slow worker racing its reassignment — is acknowledged and
// discarded. Completions from expired leases are still recorded when they
// are first (the cell result is deterministic and content-addressed, so
// whichever copy arrives first is correct).
func (c *Coordinator) Complete(_ context.Context, req CompleteRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()

	if l := c.leases[req.LeaseID]; l != nil && l.camp.id == req.CampaignID && l.cell == req.CellIndex {
		c.dropLeaseLocked(l)
	} else {
		c.metrics.LateCompletes.Add(1)
	}

	camp := c.campaignByIDLocked(req.CampaignID)
	if camp == nil {
		return fmt.Errorf("%w: %d", ErrUnknownCampaign, req.CampaignID)
	}
	if req.CellIndex < 0 || req.CellIndex >= len(camp.cells) {
		return fmt.Errorf("fabric: campaign %d has no cell %d", req.CampaignID, req.CellIndex)
	}
	if req.Result == nil && req.Error == "" {
		return fmt.Errorf("fabric: complete needs a result or an error")
	}
	by := req.WorkerID
	if by == "" {
		by = "unknown"
	}
	if w := c.workers[req.WorkerID]; w != nil && req.Error == "" {
		w.completed++
	}
	c.recordCellLocked(camp, req.CellIndex, by, req.Result, req.Error)
	return nil
}

// FetchResult serves the peer cache tier: a result by content address.
// A miss is (nil, nil) — the cache is an accelerator, never an error.
func (c *Coordinator) FetchResult(_ context.Context, key string) (*campaign.Result, error) {
	if c.opts.Cache == nil {
		return nil, nil
	}
	res, ok := c.opts.Cache.Get(key)
	if !ok {
		return nil, nil
	}
	return res, nil
}

// Workers snapshots the registry, sorted by worker ID.
func (c *Coordinator) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	now := c.opts.Clock.Now()
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]WorkerStatus, 0, len(ids))
	for _, id := range ids {
		w := c.workers[id]
		out = append(out, WorkerStatus{
			ID:           id,
			Addr:         w.info.Addr,
			Concurrency:  w.info.Concurrency,
			ActiveLeases: w.leases,
			Completed:    w.completed,
			SilentForMS:  (now - w.lastBeatNS) / 1e6,
		})
	}
	return out
}

// Campaign returns the campaign with the given ID, or nil.
func (c *Coordinator) Campaign(id int) *Campaign {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.campaignByIDLocked(id)
}

// Campaigns snapshots every campaign in submission order.
func (c *Coordinator) Campaigns() []*Campaign {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Campaign, len(c.campaigns))
	copy(out, c.campaigns)
	return out
}

// SubmitFault shards a fault-injection campaign into its workload ×
// variant × site cells and schedules them; the completed campaign's
// Report() is byte-identical to a sequential faultinject.Run(cfg).
func (c *Coordinator) SubmitFault(cfg faultinject.Config, priority int) (*Campaign, error) {
	norm := cfg.Normalized()
	var cells []campaign.Spec
	for _, cell := range norm.Cells() {
		cells = append(cells, campaign.FaultSpec(cell))
	}
	return c.submit(cells, campaign.ModeFault, &norm, priority)
}

// Submit schedules an arbitrary list of cell specs (e.g. one bench spec
// per workload) as one campaign. Results() returns per-cell results in
// submission order.
func (c *Coordinator) Submit(cells []campaign.Spec, priority int) (*Campaign, error) {
	mode := campaign.ModeBench
	if len(cells) > 0 {
		mode = cells[0].Mode
	}
	return c.submit(cells, mode, nil, priority)
}

func (c *Coordinator) submit(cells []campaign.Spec, mode campaign.Mode, faultCfg *faultinject.Config, priority int) (*Campaign, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("fabric: empty campaign")
	}
	// Keys validate the specs and drive both admission-time cache hits and
	// completion-time stores. Compute them before taking the lock.
	keys := make([]string, len(cells))
	for i := range cells {
		k, err := cells[i].Key()
		if err != nil {
			return nil, fmt.Errorf("fabric: cell %d: %w", i, err)
		}
		keys[i] = k
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()

	// Admission: consult the result store first — cached cells never
	// occupy queue capacity.
	hits := make([]*campaign.Result, len(cells))
	misses := 0
	for i, k := range keys {
		if c.opts.Cache != nil {
			if res, ok := c.opts.Cache.Get(k); ok {
				hits[i] = res
				continue
			}
		}
		misses++
	}
	if c.queue.Len()+misses > c.opts.MaxQueue {
		c.metrics.CampaignsRejected.Add(1)
		return nil, fmt.Errorf("%w: %d pending + %d new > %d", ErrQueueFull, c.queue.Len(), misses, c.opts.MaxQueue)
	}

	camp := &Campaign{
		id:        len(c.campaigns) + 1,
		mode:      mode,
		faultCfg:  faultCfg,
		priority:  priority,
		done:      make(chan struct{}),
		state:     CampaignRunning,
		cells:     cells,
		keys:      keys,
		cellState: make([]CellState, len(cells)),
		cellBy:    make([]string, len(cells)),
		cellErr:   make([]string, len(cells)),
		results:   make([]*campaign.Result, len(cells)),
		remaining: len(cells),
	}
	for i := range camp.cellState {
		camp.cellState[i] = CellQueued
	}
	c.campaigns = append(c.campaigns, camp)
	c.metrics.CampaignsSubmitted.Add(1)

	for i := range cells {
		if hits[i] != nil {
			c.metrics.CellsFromCache.Add(1)
			c.recordCellLocked(camp, i, "cache", hits[i], "")
			continue
		}
		heap.Push(&c.queue, queuedCell{camp: camp, cell: i})
		c.metrics.CellsQueued.Add(1)
	}
	c.drainLocalLocked()
	return camp, nil
}

// campaignByIDLocked resolves an ID (IDs are 1-based slice positions).
func (c *Coordinator) campaignByIDLocked(id int) *Campaign {
	if id < 1 || id > len(c.campaigns) {
		return nil
	}
	return c.campaigns[id-1]
}

// reapLocked expires silent workers and overdue leases, requeues their
// cells, and falls back to local execution when no workers remain. It is
// called at every entry point, so the fabric makes progress on whatever
// traffic arrives — plus the periodic Tick for quiet periods.
func (c *Coordinator) reapLocked() {
	now := c.opts.Clock.Now()

	var deadWorkers []string
	for id, w := range c.workers {
		if now-w.lastBeatNS > int64(c.opts.HeartbeatTTL) {
			deadWorkers = append(deadWorkers, id)
		}
	}
	sort.Strings(deadWorkers)
	for _, id := range deadWorkers {
		delete(c.workers, id)
		c.metrics.WorkersExpired.Add(1)
		c.expireWorkerLeasesLocked(id)
	}

	var overdue []int64
	for id, l := range c.leases {
		if l.deadlineNS <= now {
			overdue = append(overdue, id)
		}
	}
	sort.Slice(overdue, func(i, j int) bool { return overdue[i] < overdue[j] })
	for _, id := range overdue {
		c.expireLeaseLocked(c.leases[id])
	}

	c.drainLocalLocked()
}

// expireWorkerLeasesLocked requeues every cell a (dead) worker held.
func (c *Coordinator) expireWorkerLeasesLocked(workerID string) {
	var held []int64
	for id, l := range c.leases {
		if l.workerID == workerID {
			held = append(held, id)
		}
	}
	sort.Slice(held, func(i, j int) bool { return held[i] < held[j] })
	for _, id := range held {
		c.expireLeaseLocked(c.leases[id])
	}
}

// expireLeaseLocked drops a lease and requeues its cell if still leased.
func (c *Coordinator) expireLeaseLocked(l *lease) {
	c.dropLeaseLocked(l)
	c.metrics.LeasesExpired.Add(1)
	l.camp.mu.Lock()
	requeue := l.camp.cellState[l.cell] == CellLeased
	if requeue {
		l.camp.cellState[l.cell] = CellQueued
		l.camp.cellBy[l.cell] = ""
	}
	l.camp.mu.Unlock()
	if requeue {
		heap.Push(&c.queue, queuedCell{camp: l.camp, cell: l.cell})
	}
}

// dropLeaseLocked removes a lease from the books.
func (c *Coordinator) dropLeaseLocked(l *lease) {
	if _, ok := c.leases[l.id]; !ok {
		return
	}
	delete(c.leases, l.id)
	if w := c.workers[l.workerID]; w != nil && w.leases > 0 {
		w.leases--
	}
}

// recordCellLocked applies the first terminal record for a cell and
// finalizes the campaign when every cell is terminal. Callers hold c.mu.
func (c *Coordinator) recordCellLocked(camp *Campaign, idx int, by string, res *campaign.Result, errMsg string) {
	camp.mu.Lock()
	if camp.cellState[idx] == CellDone || camp.cellState[idx] == CellFailed {
		camp.mu.Unlock()
		c.metrics.DupCompletions.Add(1)
		return
	}
	if errMsg != "" {
		camp.cellState[idx] = CellFailed
		camp.cellErr[idx] = errMsg
		camp.failed++
	} else {
		camp.cellState[idx] = CellDone
		camp.results[idx] = res
	}
	camp.cellBy[idx] = by
	if by == "local" {
		camp.local = true
	}
	camp.remaining--
	finalize := camp.remaining == 0
	camp.mu.Unlock()
	c.metrics.Completions.Add(1)

	if res != nil && c.opts.Cache != nil && by != "cache" {
		// Store failures only degrade future lookups; the completion
		// stands either way.
		_ = c.opts.Cache.Put(camp.keys[idx], camp.cells[idx], res)
	}
	if finalize {
		c.finalizeLocked(camp)
	}
}

// finalizeLocked merges and closes a campaign whose cells are all
// terminal.
func (c *Coordinator) finalizeLocked(camp *Campaign) {
	camp.mu.Lock()
	defer camp.mu.Unlock()
	if camp.failed > 0 {
		camp.state = CampaignFailed
		c.metrics.CampaignsFailed.Add(1)
	} else {
		camp.state = CampaignDone
		c.metrics.CampaignsDone.Add(1)
		if camp.mode == campaign.ModeFault && camp.faultCfg != nil {
			cells := make([]*faultinject.Report, 0, len(camp.results))
			ok := true
			for _, r := range camp.results {
				if r == nil || r.Fault == nil {
					ok = false
					break
				}
				cells = append(cells, r.Fault)
			}
			if ok {
				camp.report = faultinject.Merge(*camp.faultCfg, cells)
			}
		}
	}
	close(camp.done)
}

// drainLocalLocked moves every queued cell onto the coordinator's local
// pool when zero workers are registered — the fabric keeps serving as a
// single-process chexd rather than stalling. Each drained cell completes
// through the same idempotent path as a remote one.
func (c *Coordinator) drainLocalLocked() {
	if c.opts.Local == nil || len(c.workers) > 0 {
		return
	}
	for c.queue.Len() > 0 {
		qc := heap.Pop(&c.queue).(queuedCell)
		qc.camp.mu.Lock()
		qc.camp.cellState[qc.cell] = CellLeased
		qc.camp.cellBy[qc.cell] = "local"
		spec := qc.camp.cells[qc.cell]
		qc.camp.mu.Unlock()
		c.metrics.CellsLocal.Add(1)

		job, err := c.opts.Local.Submit(spec)
		if err != nil {
			c.recordCellLocked(qc.camp, qc.cell, "local", nil, err.Error())
			continue
		}
		go c.completeLocal(qc.camp, qc.cell, job)
	}
}

// completeLocal waits for a locally executed cell and records it.
func (c *Coordinator) completeLocal(camp *Campaign, idx int, job *campaign.Job) {
	res, err := job.Wait(context.Background())
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.recordCellLocked(camp, idx, "local", nil, err.Error())
		return
	}
	c.recordCellLocked(camp, idx, "local", res, "")
}
