package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"chex86/internal/campaign"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// ID is the worker's registration identity (required).
	ID string
	// Addr is informational (coordinator status listings).
	Addr string
	// Transport reaches the coordinator (required).
	Transport Transport
	// Pool executes leased cells. Its cache is typically a TieredCache so
	// cells hit local disk, then the coordinator's store, before
	// simulating (required).
	Pool *campaign.Pool
	// Clock drives poll and heartbeat sleeps. nil = frozen clock (only
	// usable with explicit PollOnce driving, as the chaos tests do).
	Clock Clock
	// PollInterval is the idle sleep between lease attempts (default
	// 500ms).
	PollInterval time.Duration
	// HeartbeatInterval is the beat period; 0 derives a third of the
	// coordinator's heartbeat TTL from the registration reply.
	HeartbeatInterval time.Duration
	// Concurrency is how many cells Run works in parallel (default 1).
	// Each slot leases, executes, and completes independently.
	Concurrency int
	// Logf, when set, receives worker lifecycle messages.
	Logf func(format string, args ...any)
}

func (o *WorkerOptions) setDefaults() error {
	if o.ID == "" {
		return fmt.Errorf("fabric: worker needs an ID")
	}
	if o.Transport == nil {
		return fmt.Errorf("fabric: worker needs a transport")
	}
	if o.Pool == nil {
		return fmt.Errorf("fabric: worker needs a pool")
	}
	if o.Clock == nil {
		o.Clock = frozenClock{}
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 500 * time.Millisecond
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 1
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// Worker is one fabric execution node: it registers with the coordinator,
// heartbeats, leases cells, executes them on its pool (through the
// two-tier cache), and reports completions. Safe for concurrent use.
type Worker struct {
	opts WorkerOptions

	mu         sync.Mutex
	registered bool
	hbInterval time.Duration
}

// NewWorker builds a worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	return &Worker{opts: opts, hbInterval: opts.HeartbeatInterval}, nil
}

// ID returns the worker's identity.
func (w *Worker) ID() string { return w.opts.ID }

// Register announces the worker to the coordinator and adopts the
// coordinator's heartbeat budget when no interval was configured.
func (w *Worker) Register(ctx context.Context) error {
	reply, err := w.opts.Transport.Register(ctx, WorkerInfo{
		ID:          w.opts.ID,
		Addr:        w.opts.Addr,
		Concurrency: w.opts.Concurrency,
	})
	if err != nil {
		return err
	}
	w.mu.Lock()
	w.registered = true
	if w.opts.HeartbeatInterval <= 0 && reply.HeartbeatTTLMS > 0 {
		w.hbInterval = time.Duration(reply.HeartbeatTTLMS) * time.Millisecond / 3
	}
	if w.hbInterval <= 0 {
		w.hbInterval = 5 * time.Second
	}
	w.mu.Unlock()
	w.opts.Logf("fabric worker %s: registered (heartbeat every %v)", w.opts.ID, w.hbInterval)
	return nil
}

// Heartbeat sends one liveness beat, re-registering if the coordinator
// has forgotten this worker (expiry, coordinator restart).
func (w *Worker) Heartbeat(ctx context.Context) error {
	err := w.opts.Transport.Heartbeat(ctx, w.opts.ID)
	if isUnknownWorker(err) {
		w.opts.Logf("fabric worker %s: coordinator lost us, re-registering", w.opts.ID)
		return w.Register(ctx)
	}
	return err
}

// PollOnce leases at most one cell, executes it, and completes it.
// It returns whether a cell was worked. A completion that cannot be
// delivered is not retried here: the lease expires and the coordinator
// reassigns the cell, which is the fabric's single recovery path for
// lost messages.
func (w *Worker) PollOnce(ctx context.Context) (bool, error) {
	l, err := w.opts.Transport.Lease(ctx, w.opts.ID)
	if err != nil {
		if isUnknownWorker(err) {
			if rerr := w.Register(ctx); rerr != nil {
				return false, rerr
			}
			l, err = w.opts.Transport.Lease(ctx, w.opts.ID)
		}
		if err != nil {
			return false, err
		}
	}
	if l == nil {
		return false, nil
	}

	req := CompleteRequest{
		WorkerID:   w.opts.ID,
		LeaseID:    l.ID,
		CampaignID: l.CampaignID,
		CellIndex:  l.CellIndex,
	}
	res, runErr := w.runCell(ctx, l.Spec)
	if runErr != nil {
		req.Error = runErr.Error()
	} else {
		req.Result = res
	}
	if err := w.opts.Transport.Complete(ctx, req); err != nil {
		return true, fmt.Errorf("fabric: complete lease %d: %w", l.ID, err)
	}
	return true, nil
}

// runCell executes one cell through the worker's pool: singleflight,
// two-tier cache, retries, and panic isolation all come with it.
func (w *Worker) runCell(ctx context.Context, spec campaign.Spec) (*campaign.Result, error) {
	job, err := w.opts.Pool.Submit(spec)
	if err != nil {
		return nil, err
	}
	return job.Wait(ctx)
}

// Run operates the worker until ctx is cancelled: register (retrying
// until the coordinator is reachable), heartbeat on the agreed interval,
// and Concurrency poll loops. On shutdown it deregisters so the
// coordinator requeues immediately instead of waiting out the TTL.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := w.Register(ctx); err == nil {
			break
		} else {
			w.opts.Logf("fabric worker %s: register: %v (retrying)", w.opts.ID, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-w.opts.Clock.After(w.opts.PollInterval):
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(ctx)
	}()
	for i := 0; i < w.opts.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.pollLoop(ctx)
		}()
	}
	<-ctx.Done()
	wg.Wait()

	// Best-effort graceful exit on a fresh context (ours is cancelled).
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = w.opts.Transport.Deregister(dctx, w.opts.ID)
	w.opts.Logf("fabric worker %s: deregistered", w.opts.ID)
	return ctx.Err()
}

func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		interval := w.hbInterval
		w.mu.Unlock()
		if interval <= 0 {
			interval = 5 * time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-w.opts.Clock.After(interval):
		}
		if err := w.Heartbeat(ctx); err != nil && ctx.Err() == nil {
			w.opts.Logf("fabric worker %s: heartbeat: %v", w.opts.ID, err)
		}
	}
}

func (w *Worker) pollLoop(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		worked, err := w.PollOnce(ctx)
		if err != nil && ctx.Err() == nil {
			w.opts.Logf("fabric worker %s: poll: %v", w.opts.ID, err)
		}
		if worked && err == nil {
			continue // queue may have more — lease again immediately
		}
		select {
		case <-ctx.Done():
			return
		case <-w.opts.Clock.After(w.opts.PollInterval):
		}
	}
}

// isUnknownWorker matches ErrUnknownWorker across transports.
func isUnknownWorker(err error) bool {
	return errors.Is(err, ErrUnknownWorker)
}
