package fabric

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"chex86/internal/campaign"
	"chex86/internal/faultinject"
)

// diffConfig is the campaign used by the differential gates: small enough
// to run in test time, wide enough to shard into six cells.
func diffConfig() faultinject.Config {
	return faultinject.Config{
		Seed:         11,
		Workloads:    []string{"mcf"},
		Variants:     []string{"always-on", "prediction"},
		FaultsPerRun: 5,
		MaxInsts:     4000,
		Sites: []faultinject.Site{
			faultinject.SiteCapTable,
			faultinject.SiteDIFT,
			faultinject.SiteCtxSwitch,
		},
	}
}

// sequentialJSON runs the campaign single-node, sequentially — the bytes
// every fabric execution must reproduce.
func sequentialJSON(t *testing.T) []byte {
	t.Helper()
	rep, err := faultinject.Run(diffConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// driveFabric round-robins the workers (one heartbeat + one poll each per
// round), advancing the logical clock between rounds so leases and
// heartbeats can expire, until the campaign completes.
func driveFabric(t *testing.T, c *Coordinator, clock *LogicalClock, camp *Campaign, workers []*Worker, step time.Duration) {
	t.Helper()
	ctx := context.Background()
	for round := 0; ; round++ {
		select {
		case <-camp.Done():
			return
		default:
		}
		if round > 300 {
			t.Fatalf("campaign not done after %d rounds: %+v", round, camp.Status(true))
		}
		for _, w := range workers {
			_ = w.Heartbeat(ctx)   // chaos may drop or kill these —
			_, _ = w.PollOnce(ctx) // recovery is the fabric's job
		}
		clock.Advance(step)
		c.Tick()
	}
}

// TestFabricDifferential: a clean three-worker fabric produces a merged
// report byte-identical to the single-node sequential run.
func TestFabricDifferential(t *testing.T) {
	want := sequentialJSON(t)

	clock := NewLogicalClock(0)
	c := NewCoordinator(CoordinatorOptions{Clock: clock, LeaseTTL: 30 * time.Second, HeartbeatTTL: 10 * time.Minute})
	ctx := context.Background()

	var workers []*Worker
	for _, id := range []string{"w1", "w2", "w3"} {
		pool := campaign.NewPool(campaign.Options{Workers: 1})
		defer pool.Close()
		w, err := NewWorker(WorkerOptions{ID: id, Transport: c, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Register(ctx); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}

	camp, err := c.SubmitFault(diffConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	driveFabric(t, c, clock, camp, workers, 5*time.Second)

	if st := camp.Status(false); st.State != CampaignDone {
		t.Fatalf("campaign state = %s: %+v", st.State, st)
	}
	rep := camp.Report()
	if rep == nil {
		t.Fatal("no merged report")
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fabric-merged report differs from the sequential run")
	}
}

// TestFabricChaosDifferential is the fabric's acceptance gate: three
// workers, one killed mid-cell (its completion never arrives), one with a
// 20% message-drop fault, one with a 30% message-duplication fault and a
// peer cache that corrupts every response — and the merged report must
// still be byte-identical to the sequential run, with no cell lost and no
// cell double-counted.
func TestFabricChaosDifferential(t *testing.T) {
	want := sequentialJSON(t)

	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clock := NewLogicalClock(0)
	c := NewCoordinator(CoordinatorOptions{
		Clock:        clock,
		LeaseTTL:     30 * time.Second,
		HeartbeatTTL: 10 * time.Minute,
		Cache:        cache,
	})
	ctx := context.Background()

	// w1: duplicated messages, plus a peer cache tier that corrupts every
	// response (validation must reject it and recompute).
	// w2: killed after its first lease is granted but before the
	// completion is delivered — the lease must expire and reassign.
	// w3: 20% of its messages are dropped in transit.
	chaos1 := NewChaosTransport(c, ChaosOptions{Seed: 42, Name: "w1", DupPct: 30})
	chaos2 := NewChaosTransport(c, ChaosOptions{Seed: 42, Name: "w2", KillAfter: 3})
	chaos3 := NewChaosTransport(c, ChaosOptions{Seed: 42, Name: "w3", DropPct: 20})

	corruptPeer := NewChaosTransport(c, ChaosOptions{Seed: 42, Name: "w1-peer", CorruptPct: 100})
	tiered := NewTieredCache(nil, corruptPeer, clock, time.Second)

	var workers []*Worker
	for _, wc := range []struct {
		id        string
		transport Transport
		cache     campaign.ResultCache
	}{
		{"w1", chaos1, tiered},
		{"w2", chaos2, nil},
		{"w3", chaos3, nil},
	} {
		opts := campaign.Options{Workers: 1}
		if wc.cache != nil {
			opts.Cache = wc.cache
		}
		pool := campaign.NewPool(opts)
		defer pool.Close()
		w, err := NewWorker(WorkerOptions{ID: wc.id, Transport: wc.transport, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Register(ctx); err != nil { // w2's register is chaos op 1
			t.Fatal(err)
		}
		workers = append(workers, w)
	}

	camp, err := c.SubmitFault(diffConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	driveFabric(t, c, clock, camp, workers, 5*time.Second)

	if !chaos2.Dead() {
		t.Fatal("kill budget never tripped: the chaos schedule no longer covers worker death")
	}
	m := c.Metrics().Snapshot()
	if m.LeasesExpired < 1 {
		t.Fatalf("LeasesExpired = %d, want >= 1 (the killed worker held a lease)", m.LeasesExpired)
	}
	st := camp.Status(true)
	if st.State != CampaignDone {
		t.Fatalf("campaign state = %s: %+v", st.State, st)
	}
	if st.Done != st.Cells {
		t.Fatalf("%d of %d cells done — a cell was lost", st.Done, st.Cells)
	}
	if m.Completions != int64(st.Cells) {
		t.Fatalf("Completions = %d for %d cells — a cell was double-counted", m.Completions, st.Cells)
	}

	rep := camp.Report()
	if rep == nil {
		t.Fatal("no merged report")
	}
	got, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("chaos-fabric merged report differs from the sequential run")
	}
}

// nullTransport accepts everything; it exists to observe chaos schedules.
type nullTransport struct{}

func (nullTransport) Register(context.Context, WorkerInfo) (*RegisterReply, error) {
	return &RegisterReply{}, nil
}
func (nullTransport) Heartbeat(context.Context, string) error  { return nil }
func (nullTransport) Deregister(context.Context, string) error { return nil }
func (nullTransport) Lease(context.Context, string) (*Lease, error) {
	return nil, nil
}
func (nullTransport) Complete(context.Context, CompleteRequest) error { return nil }
func (nullTransport) FetchResult(context.Context, string) (*campaign.Result, error) {
	return nil, nil
}

// chaosSchedule records which of n heartbeats a transport drops.
func chaosSchedule(seed uint64, name string, n int) []bool {
	ct := NewChaosTransport(nullTransport{}, ChaosOptions{Seed: seed, Name: name, DropPct: 30})
	out := make([]bool, n)
	for i := range out {
		out[i] = errors.Is(ct.Heartbeat(context.Background(), "w"), ErrChaosDropped)
	}
	return out
}

// TestChaosDeterminism: equal (seed, name) replays the exact fault
// schedule; different names fault independently.
func TestChaosDeterminism(t *testing.T) {
	a := chaosSchedule(9, "w1", 200)
	b := chaosSchedule(9, "w1", 200)
	other := chaosSchedule(9, "w2", 200)
	same, diff, dropped := true, false, 0
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != other[i] {
			diff = true
		}
		if a[i] {
			dropped++
		}
	}
	if !same {
		t.Fatal("same (seed, name) produced different chaos schedules")
	}
	if !diff {
		t.Fatal("different names produced identical chaos schedules")
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("drop schedule degenerate: %d of %d dropped", dropped, len(a))
	}
}

// TestChaosKillBudget: after KillAfter calls every operation fails with
// ErrChaosKilled, permanently.
func TestChaosKillBudget(t *testing.T) {
	ct := NewChaosTransport(nullTransport{}, ChaosOptions{KillAfter: 2})
	ctx := context.Background()
	if err := ct.Heartbeat(ctx, "w"); err != nil {
		t.Fatalf("op 1 failed: %v", err)
	}
	if err := ct.Heartbeat(ctx, "w"); err != nil {
		t.Fatalf("op 2 failed: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := ct.Heartbeat(ctx, "w"); !errors.Is(err, ErrChaosKilled) {
			t.Fatalf("op after kill budget = %v, want ErrChaosKilled", err)
		}
	}
	if !ct.Dead() {
		t.Fatal("Dead() = false after the kill budget tripped")
	}
}

// TestChaosDelay: a delayed message is withheld until the injected clock
// advances past the delay.
func TestChaosDelay(t *testing.T) {
	clock := NewLogicalClock(0)
	ct := NewChaosTransport(nullTransport{}, ChaosOptions{
		Clock:    clock,
		DelayPct: 100,
		Delay:    50 * time.Millisecond,
	})
	done := make(chan error, 1)
	go func() { done <- ct.Heartbeat(context.Background(), "w") }()
	select {
	case err := <-done:
		t.Fatalf("delayed call returned before the clock advanced: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	clock.Advance(50 * time.Millisecond)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed call never completed after Advance")
	}
}
