package fabric

import (
	"context"
	"errors"
	"testing"
	"time"

	"chex86/internal/campaign"
)

// fetchFunc adapts a function to ResultFetcher.
type fetchFunc func(ctx context.Context, key string) (*campaign.Result, error)

func (f fetchFunc) FetchResult(ctx context.Context, key string) (*campaign.Result, error) {
	return f(ctx, key)
}

// firedClock's After channels have already fired — every timeout elapses
// instantly.
type firedClock struct{}

func (firedClock) Now() int64 { return 0 }
func (firedClock) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

// cacheFixture returns a spec, its content address, and its fake result.
func cacheFixture(t *testing.T) (campaign.Spec, string, *campaign.Result) {
	t.Helper()
	spec := benchCells(t, 1)[0]
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	return spec, key, fakeCellResult(&spec)
}

func TestTieredCacheLocalHit(t *testing.T) {
	local, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, key, res := cacheFixture(t)
	if err := local.Put(key, spec, res); err != nil {
		t.Fatal(err)
	}
	peerCalled := false
	tc := NewTieredCache(local, fetchFunc(func(context.Context, string) (*campaign.Result, error) {
		peerCalled = true
		return nil, nil
	}), nil, 0)

	got, ok := tc.Lookup(spec, key)
	if !ok || got.Bench.Cycles != res.Bench.Cycles {
		t.Fatalf("lookup = %+v, %v, want the local entry", got, ok)
	}
	if peerCalled {
		t.Fatal("local hit still consulted the peer")
	}
	if m := tc.Metrics().Snapshot(); m.LocalHits != 1 {
		t.Fatalf("metrics = %+v, want one local hit", m)
	}
}

func TestTieredCachePeerHitWritesThrough(t *testing.T) {
	local, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, key, res := cacheFixture(t)
	tc := NewTieredCache(local, fetchFunc(func(_ context.Context, k string) (*campaign.Result, error) {
		if k != key {
			return nil, nil
		}
		return res, nil
	}), nil, 0)

	got, ok := tc.Lookup(spec, key)
	if !ok || got.Bench.Cycles != res.Bench.Cycles {
		t.Fatalf("lookup = %+v, %v, want the peer entry", got, ok)
	}
	if m := tc.Metrics().Snapshot(); m.PeerHits != 1 {
		t.Fatalf("metrics = %+v, want one peer hit", m)
	}
	// The peer hit was written through: the local tier now serves it even
	// if the peer vanishes.
	if _, ok := local.Get(key); !ok {
		t.Fatal("peer hit was not written through to the local tier")
	}
}

func TestTieredCachePeerFailureModes(t *testing.T) {
	spec, key, res := cacheFixture(t)
	cases := []struct {
		name  string
		peer  fetchFunc
		clock Clock
		check func(t *testing.T, m CacheMetricsSnapshot)
	}{
		{
			name: "miss",
			peer: func(context.Context, string) (*campaign.Result, error) { return nil, nil },
			check: func(t *testing.T, m CacheMetricsSnapshot) {
				if m.PeerMisses != 1 {
					t.Fatalf("metrics = %+v, want one peer miss", m)
				}
			},
		},
		{
			name: "error",
			peer: func(context.Context, string) (*campaign.Result, error) {
				return nil, errors.New("peer unreachable")
			},
			check: func(t *testing.T, m CacheMetricsSnapshot) {
				if m.PeerErrors != 1 {
					t.Fatalf("metrics = %+v, want one peer error", m)
				}
			},
		},
		{
			name: "corrupt",
			peer: func(context.Context, string) (*campaign.Result, error) {
				bad := *res
				bad.Schema = "garbage/v0"
				return &bad, nil
			},
			check: func(t *testing.T, m CacheMetricsSnapshot) {
				if m.PeerCorrupt != 1 {
					t.Fatalf("metrics = %+v, want one corrupt rejection", m)
				}
			},
		},
		{
			name: "timeout",
			peer: func(ctx context.Context, _ string) (*campaign.Result, error) {
				<-ctx.Done() // never answers on its own
				return nil, ctx.Err()
			},
			clock: firedClock{},
			check: func(t *testing.T, m CacheMetricsSnapshot) {
				if m.PeerErrors != 1 {
					t.Fatalf("metrics = %+v, want the timeout counted as a peer error", m)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cache := NewTieredCache(nil, tc.peer, tc.clock, time.Second)
			if _, ok := cache.Lookup(spec, key); ok {
				t.Fatalf("peer %s reported a hit", tc.name)
			}
			m := cache.Metrics().Snapshot()
			if m.Misses != 1 {
				t.Fatalf("metrics = %+v, want the lookup counted as a miss", m)
			}
			tc.check(t, m)
		})
	}
}

func TestTieredCacheStoreIsLocalOnly(t *testing.T) {
	local, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec, key, res := cacheFixture(t)
	pushed := false
	tc := NewTieredCache(local, fetchFunc(func(context.Context, string) (*campaign.Result, error) {
		pushed = true
		return nil, nil
	}), nil, 0)
	if err := tc.Store(spec, key, res); err != nil {
		t.Fatal(err)
	}
	if pushed {
		t.Fatal("Store reached the peer; workers must not push")
	}
	if _, ok := local.Get(key); !ok {
		t.Fatal("Store did not reach the local tier")
	}

	// Both tiers absent: Store is a no-op, Lookup a miss.
	empty := NewTieredCache(nil, nil, nil, 0)
	if err := empty.Store(spec, key, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := empty.Lookup(spec, key); ok {
		t.Fatal("tierless cache reported a hit")
	}
}
