package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"chex86/internal/campaign"
	"chex86/internal/faultinject"
)

// Chaos errors: how injected transport faults surface to the worker.
var (
	// ErrChaosDropped: the message was lost in transit (faultinject
	// SiteMsgDrop). The caller sees an ordinary transport failure.
	ErrChaosDropped = errors.New("fabric: chaos: message dropped")
	// ErrChaosKilled: the worker is dead (faultinject SiteWorkerKill);
	// every call fails from now on, including completions for cells it
	// already executed.
	ErrChaosKilled = errors.New("fabric: chaos: worker killed")
)

// ChaosOptions parameterizes a ChaosTransport. Percentages are per-call
// probabilities in [0, 100]; the streams are deterministic xorshift64
// sequences derived with faultinject.DeriveSeed, so a chaos campaign with
// the same seed replays the same fault schedule.
type ChaosOptions struct {
	// Seed derives this transport's fault stream (0 = 1).
	Seed uint64
	// Name tags the stream (typically the worker ID) so two transports
	// with the same seed still fault independently.
	Name string
	// Clock drives injected delays. nil = frozen clock (only valid with
	// DelayPct 0).
	Clock Clock

	// DropPct drops a call before it reaches the coordinator
	// (faultinject.SiteMsgDrop).
	DropPct int
	// DupPct delivers an idempotent mutation (Register, Heartbeat,
	// Complete, Deregister) twice (faultinject.SiteMsgDup).
	DupPct int
	// DelayPct stalls a call for Delay before delivery
	// (faultinject.SiteMsgDelay).
	DelayPct int
	// Delay is the injected stall (default 50ms of the injected clock).
	Delay time.Duration
	// CorruptPct mangles FetchResult responses so cache validation must
	// reject them (faultinject.SitePeerCorrupt).
	CorruptPct int
	// KillAfter kills the worker after that many transport calls
	// (faultinject.SiteWorkerKill); 0 = immortal.
	KillAfter int
}

// ChaosTransport wraps a Transport with seeded, deterministic fault
// injection over the fabric's message layer — the distributed counterpart
// of faultinject's microarchitectural campaign. It extends the same
// fail-closed discipline to the serving infrastructure: under any
// schedule of drops, duplicates, delays, kills, and corrupt cache
// responses, the fabric must lose no cell, double-count no cell, and
// merge byte-identically (the chaos differential gate asserts exactly
// that).
type ChaosTransport struct {
	inner Transport
	opts  ChaosOptions

	mu   sync.Mutex
	rng  uint64
	ops  int
	dead bool
}

var _ Transport = (*ChaosTransport)(nil)

// NewChaosTransport wraps inner with injected faults.
func NewChaosTransport(inner Transport, opts ChaosOptions) *ChaosTransport {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Clock == nil {
		opts.Clock = frozenClock{}
	}
	if opts.Delay <= 0 {
		opts.Delay = 50 * time.Millisecond
	}
	seed := faultinject.DeriveSeed(opts.Seed, "fabric-chaos", opts.Name)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &ChaosTransport{inner: inner, opts: opts, rng: seed}
}

// Dead reports whether the kill switch has tripped.
func (c *ChaosTransport) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Kill kills the worker immediately (tests that script the failure).
func (c *ChaosTransport) Kill() {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
}

// roll advances the xorshift stream and tests a percentage. Callers hold
// c.mu.
func (c *ChaosTransport) roll(pct int) bool {
	if pct <= 0 {
		return false
	}
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return int(c.rng%100) < pct
}

// before applies the pre-delivery faults shared by every call: kill
// budget, drop, delay.
func (c *ChaosTransport) before(op string) error {
	c.mu.Lock()
	c.ops++
	if c.opts.KillAfter > 0 && c.ops > c.opts.KillAfter {
		c.dead = true
	}
	if c.dead {
		c.mu.Unlock()
		return fmt.Errorf("%w (%s)", ErrChaosKilled, op)
	}
	if c.roll(c.opts.DropPct) {
		c.mu.Unlock()
		return fmt.Errorf("%w (%s)", ErrChaosDropped, op)
	}
	delay := c.roll(c.opts.DelayPct)
	c.mu.Unlock()
	if delay {
		<-c.opts.Clock.After(c.opts.Delay)
	}
	return nil
}

// dup decides whether to deliver an idempotent mutation twice.
func (c *ChaosTransport) dup() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.dead && c.roll(c.opts.DupPct)
}

func (c *ChaosTransport) Register(ctx context.Context, info WorkerInfo) (*RegisterReply, error) {
	if err := c.before("register"); err != nil {
		return nil, err
	}
	reply, err := c.inner.Register(ctx, info)
	if err == nil && c.dup() {
		_, _ = c.inner.Register(ctx, info)
	}
	return reply, err
}

func (c *ChaosTransport) Heartbeat(ctx context.Context, workerID string) error {
	if err := c.before("heartbeat"); err != nil {
		return err
	}
	err := c.inner.Heartbeat(ctx, workerID)
	if err == nil && c.dup() {
		_ = c.inner.Heartbeat(ctx, workerID)
	}
	return err
}

func (c *ChaosTransport) Deregister(ctx context.Context, workerID string) error {
	if err := c.before("deregister"); err != nil {
		return err
	}
	err := c.inner.Deregister(ctx, workerID)
	if err == nil && c.dup() {
		_ = c.inner.Deregister(ctx, workerID)
	}
	return err
}

func (c *ChaosTransport) Lease(ctx context.Context, workerID string) (*Lease, error) {
	if err := c.before("lease"); err != nil {
		return nil, err
	}
	// Leases are not duplicated: a second lease would grab a second cell,
	// which models a different fault (worker overload) than message
	// duplication. The dup probe targets the idempotent mutations.
	return c.inner.Lease(ctx, workerID)
}

func (c *ChaosTransport) Complete(ctx context.Context, req CompleteRequest) error {
	if err := c.before("complete"); err != nil {
		return err
	}
	err := c.inner.Complete(ctx, req)
	if err == nil && c.dup() {
		_ = c.inner.Complete(ctx, req)
	}
	return err
}

func (c *ChaosTransport) FetchResult(ctx context.Context, key string) (*campaign.Result, error) {
	if err := c.before("fetch"); err != nil {
		return nil, err
	}
	res, err := c.inner.FetchResult(ctx, key)
	if err != nil || res == nil {
		return res, err
	}
	corrupt := func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.roll(c.opts.CorruptPct)
	}()
	if corrupt {
		// Mangle the payload the way a truncated or bit-flipped wire
		// message would: the schema no longer matches, so the two-tier
		// cache must treat it as a miss and recompute.
		bad := *res
		bad.Schema = "chaos-corrupt/v0"
		return &bad, nil
	}
	return res, nil
}
