package fabric

import (
	"context"
	"time"

	"chex86/internal/campaign"
)

// ResultFetcher is the peer tier of the two-tier cache: a lookup by
// content address on another node. A miss is (nil, nil).
type ResultFetcher interface {
	FetchResult(ctx context.Context, key string) (*campaign.Result, error)
}

// TieredCache is the fabric's two-tier result cache: local disk first,
// then a peer fetch by SHA-256 content address — safe precisely because
// keys are content addresses, so a peer can only ever return the same
// bytes a local run would have produced (anything else fails validation
// and is treated as a miss). Every peer failure mode — unreachable,
// timeout, corrupt payload — degrades to the next rung down: local tier,
// then recompute.
//
// TieredCache implements campaign.ResultCache, so it slots directly into
// a campaign.Pool as its memoization layer.
type TieredCache struct {
	local   *campaign.Cache
	peer    ResultFetcher
	clock   Clock
	timeout time.Duration
	metrics CacheMetrics
}

var _ campaign.ResultCache = (*TieredCache)(nil)

// NewTieredCache builds a two-tier cache. local may be nil (peer-only),
// peer may be nil (local-only); timeout bounds each peer fetch (default
// 2s); clock nil = peer fetches never time out on their own.
func NewTieredCache(local *campaign.Cache, peer ResultFetcher, clock Clock, timeout time.Duration) *TieredCache {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	if clock == nil {
		clock = frozenClock{}
	}
	return &TieredCache{local: local, peer: peer, clock: clock, timeout: timeout}
}

// Metrics exposes the cache's counters.
func (t *TieredCache) Metrics() *CacheMetrics { return &t.metrics }

// Lookup reads through the tiers: local disk, then peer (bounded by the
// fetch timeout, validated, and written through to the local tier on a
// hit). Every failure is a miss — the caller recomputes.
func (t *TieredCache) Lookup(spec campaign.Spec, key string) (*campaign.Result, bool) {
	if t.local != nil {
		if res, ok := t.local.Get(key); ok {
			t.metrics.LocalHits.Add(1)
			return res, true
		}
	}
	if t.peer == nil {
		t.metrics.Misses.Add(1)
		return nil, false
	}
	res, ok := t.fetchPeer(key)
	if !ok {
		t.metrics.Misses.Add(1)
		return nil, false
	}
	t.metrics.PeerHits.Add(1)
	if t.local != nil {
		// Write through so the next lookup stays local even if the peer
		// vanishes. A write failure only costs a future re-fetch.
		_ = t.local.Put(key, spec, res)
	}
	return res, true
}

// Store writes to the local tier (the peer tier is populated by the
// coordinator on completion, not by workers pushing).
func (t *TieredCache) Store(spec campaign.Spec, key string, r *campaign.Result) error {
	if t.local == nil {
		return nil
	}
	return t.local.Put(key, spec, r)
}

// fetchPeer runs one bounded peer lookup and validates the response.
func (t *TieredCache) fetchPeer(key string) (*campaign.Result, bool) {
	type reply struct {
		res *campaign.Result
		err error
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := make(chan reply, 1)
	go func() {
		res, err := t.peer.FetchResult(ctx, key)
		ch <- reply{res, err}
	}()
	var r reply
	select {
	case r = <-ch:
	case <-t.clock.After(t.timeout):
		t.metrics.PeerErrors.Add(1)
		return nil, false
	}
	if r.err != nil {
		t.metrics.PeerErrors.Add(1)
		return nil, false
	}
	if r.res == nil {
		t.metrics.PeerMisses.Add(1)
		return nil, false
	}
	// Validation: a peer response that does not look like a campaign
	// result (corrupted in transit, wrong schema, tampered) is a miss —
	// the simulation can always be re-run locally.
	if r.res.Schema != campaign.ResultSchema {
		t.metrics.PeerCorrupt.Add(1)
		return nil, false
	}
	return r.res, true
}
