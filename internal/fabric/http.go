package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"chex86/internal/campaign"
)

// Error codes carried in HTTP error bodies so sentinel errors survive the
// wire (the client re-wraps them).
const (
	codeUnknownWorker   = "unknown-worker"
	codeQueueFull       = "queue-full"
	codeUnknownCampaign = "unknown-campaign"
)

// httpError is every non-2xx fabric response body.
type httpError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// errorCode maps sentinel errors to wire codes.
func errorCode(err error) string {
	switch {
	case errors.Is(err, ErrUnknownWorker):
		return codeUnknownWorker
	case errors.Is(err, ErrQueueFull):
		return codeQueueFull
	case errors.Is(err, ErrUnknownCampaign):
		return codeUnknownCampaign
	}
	return ""
}

// codeError maps wire codes back to sentinel-wrapped errors.
func codeError(code, msg string) error {
	switch code {
	case codeUnknownWorker:
		return fmt.Errorf("%w: %s", ErrUnknownWorker, msg)
	case codeQueueFull:
		return fmt.Errorf("%w: %s", ErrQueueFull, msg)
	case codeUnknownCampaign:
		return fmt.Errorf("%w: %s", ErrUnknownCampaign, msg)
	}
	return errors.New(msg)
}

func writeFabricJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

func writeFabricError(w http.ResponseWriter, status int, err error) {
	writeFabricJSON(w, status, httpError{Error: err.Error(), Code: errorCode(err)})
}

// Handler serves the coordinator's worker-facing wire protocol under
// /fabric/v1/. Mount it on the chexd mux (or any mux) with
// mux.Handle("/fabric/v1/", c.Handler()).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fabric/v1/register", func(w http.ResponseWriter, r *http.Request) {
		var info WorkerInfo
		if err := json.NewDecoder(r.Body).Decode(&info); err != nil {
			writeFabricError(w, http.StatusBadRequest, fmt.Errorf("bad register body: %w", err))
			return
		}
		reply, err := c.Register(r.Context(), info)
		if err != nil {
			writeFabricError(w, http.StatusBadRequest, err)
			return
		}
		writeFabricJSON(w, http.StatusOK, reply)
	})
	mux.HandleFunc("POST /fabric/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			WorkerID string `json:"workerId"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeFabricError(w, http.StatusBadRequest, fmt.Errorf("bad heartbeat body: %w", err))
			return
		}
		if err := c.Heartbeat(r.Context(), req.WorkerID); err != nil {
			writeFabricError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /fabric/v1/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			WorkerID string `json:"workerId"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeFabricError(w, http.StatusBadRequest, fmt.Errorf("bad deregister body: %w", err))
			return
		}
		if err := c.Deregister(r.Context(), req.WorkerID); err != nil {
			writeFabricError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /fabric/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			WorkerID string `json:"workerId"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeFabricError(w, http.StatusBadRequest, fmt.Errorf("bad lease body: %w", err))
			return
		}
		l, err := c.Lease(r.Context(), req.WorkerID)
		if err != nil {
			writeFabricError(w, statusFor(err), err)
			return
		}
		if l == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeFabricJSON(w, http.StatusOK, l)
	})
	mux.HandleFunc("POST /fabric/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeFabricError(w, http.StatusBadRequest, fmt.Errorf("bad complete body: %w", err))
			return
		}
		if err := c.Complete(r.Context(), req); err != nil {
			writeFabricError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /fabric/v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		res, err := c.FetchResult(r.Context(), r.PathValue("key"))
		if err != nil {
			writeFabricError(w, http.StatusInternalServerError, err)
			return
		}
		if res == nil {
			writeFabricError(w, http.StatusNotFound, fmt.Errorf("no cached result for %s", r.PathValue("key")))
			return
		}
		writeFabricJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /fabric/v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeFabricJSON(w, http.StatusOK, struct {
			Workers []WorkerStatus `json:"workers"`
		}{c.Workers()})
	})
	return mux
}

// statusFor maps coordinator errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownWorker):
		return http.StatusNotFound
	case errors.Is(err, ErrUnknownCampaign):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	}
	return http.StatusBadRequest
}

// Client is the worker-side HTTP Transport: it speaks the /fabric/v1 wire
// protocol against a coordinator base URL.
type Client struct {
	base string
	hc   *http.Client
}

var _ Transport = (*Client)(nil)

// NewClient builds a transport for a coordinator base URL (e.g.
// "http://127.0.0.1:8086"). hc nil uses a client with a 30s overall
// request timeout.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, hc: hc}
}

// do posts a JSON body and decodes a JSON reply into out (out nil =
// discard). 204 means "no content" and leaves out untouched.
func (cl *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return fmt.Errorf("fabric: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil
	}
	if resp.StatusCode >= 300 {
		var he httpError
		if err := json.NewDecoder(resp.Body).Decode(&he); err != nil || he.Error == "" {
			return fmt.Errorf("fabric: %s %s: HTTP %d", method, path, resp.StatusCode)
		}
		return codeError(he.Code, he.Error)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (cl *Client) Register(ctx context.Context, info WorkerInfo) (*RegisterReply, error) {
	var reply RegisterReply
	if err := cl.do(ctx, http.MethodPost, "/fabric/v1/register", info, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

func (cl *Client) Heartbeat(ctx context.Context, workerID string) error {
	return cl.do(ctx, http.MethodPost, "/fabric/v1/heartbeat", map[string]string{"workerId": workerID}, nil)
}

func (cl *Client) Deregister(ctx context.Context, workerID string) error {
	return cl.do(ctx, http.MethodPost, "/fabric/v1/deregister", map[string]string{"workerId": workerID}, nil)
}

func (cl *Client) Lease(ctx context.Context, workerID string) (*Lease, error) {
	var l Lease
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.base+"/fabric/v1/lease",
		bytes.NewReader([]byte(fmt.Sprintf(`{"workerId":%q}`, workerID))))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fabric: lease: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNoContent:
		return nil, nil
	case resp.StatusCode >= 300:
		var he httpError
		if err := json.NewDecoder(resp.Body).Decode(&he); err != nil || he.Error == "" {
			return nil, fmt.Errorf("fabric: lease: HTTP %d", resp.StatusCode)
		}
		return nil, codeError(he.Code, he.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
		return nil, fmt.Errorf("fabric: lease decode: %w", err)
	}
	return &l, nil
}

func (cl *Client) Complete(ctx context.Context, req CompleteRequest) error {
	return cl.do(ctx, http.MethodPost, "/fabric/v1/complete", req, nil)
}

func (cl *Client) FetchResult(ctx context.Context, key string) (*campaign.Result, error) {
	var res campaign.Result
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.base+"/fabric/v1/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := cl.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fabric: fetch %s: %w", key, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("fabric: fetch %s: HTTP %d", key, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("fabric: fetch decode: %w", err)
	}
	return &res, nil
}
