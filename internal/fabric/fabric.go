// Package fabric is the distributed campaign fabric: a coordinator/worker
// split over the internal/campaign Spec model that shards any submission
// into independent cells (generalizing faultinject.Cells-style sharding),
// hands each cell to a registered worker under a time-bounded lease, and
// merges the per-cell results back into the report a single-node
// sequential run would have produced — byte for byte.
//
// The fabric is built for partial failure. Workers register and heartbeat
// on an injected Clock; a worker that misses its heartbeat TTL is
// deregistered and its leased cells are reassigned. A lease that expires —
// worker crash, network partition, or just a slow run — returns its cell
// to the queue, and completion is idempotent: the first terminal record
// for a cell wins, so a slow worker racing its own reassignment can never
// double-count a cell (and, because cell results are deterministic and
// content-addressed, whichever copy lands first is the correct one).
//
// Degradation ladder (each rung fails toward a slower but correct mode):
//
//  1. full fabric — cells distributed across live workers, results served
//     from the two-tier cache (local disk, then peer fetch by SHA-256
//     content address);
//  2. peer cache unreachable, timed out, or corrupt — fall back to the
//     local tier, then to recomputation;
//  3. worker death mid-cell — lease expiry reassigns the cell to a
//     surviving worker;
//  4. zero registered workers — the coordinator executes cells on its own
//     local pool (single-process mode, exactly PR 3's path);
//  5. queue full — admission control rejects new campaigns with
//     ErrQueueFull, which the HTTP layer surfaces as 429 + Retry-After.
//
// Determinism contract: the package never reads the wall clock (Clock is
// injected; tests drive a LogicalClock), never uses the global math/rand
// stream (the chaos harness derives xorshift streams from
// faultinject.DeriveSeed), and never iterates a map into an output. The
// chexvet determinism gate holds with zero waivers.
package fabric

import (
	"context"
	"errors"
	"sync"
	"time"

	"chex86/internal/campaign"
)

// Sentinel errors, preserved across the HTTP transport by error codes.
var (
	// ErrUnknownWorker: the coordinator has no live registration for the
	// worker (expired heartbeat, coordinator restart). Workers recover by
	// re-registering.
	ErrUnknownWorker = errors.New("fabric: unknown worker")
	// ErrQueueFull: admission control rejected the submission because the
	// pending-cell queue is at capacity. Retry after backoff.
	ErrQueueFull = errors.New("fabric: queue full")
	// ErrUnknownCampaign: no campaign with that ID.
	ErrUnknownCampaign = errors.New("fabric: unknown campaign")
)

// Clock abstracts monotonic time so every scheduling decision — lease
// deadlines, heartbeat expiry, poll sleeps, peer-fetch timeouts — is
// testable with logical time. Production wires a wall clock in the CLIs
// (cmd/chexd, cmd/chexworker); internal/fabric itself never reads the
// wall clock.
type Clock interface {
	// Now is the current time in nanoseconds on an arbitrary epoch.
	Now() int64
	// After fires once d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// LogicalClock is a manually advanced Clock for tests and deterministic
// harnesses: Now returns the logical time, and After-channels fire when
// Advance moves past their deadline.
type LogicalClock struct {
	mu     sync.Mutex
	now    int64
	timers []logicalTimer
}

type logicalTimer struct {
	at int64
	ch chan time.Time
}

// NewLogicalClock starts a logical clock at start nanoseconds.
func NewLogicalClock(start int64) *LogicalClock {
	return &LogicalClock{now: start}
}

// Now returns the logical time.
func (c *LogicalClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires when the logical clock has advanced
// by at least d (immediately for d <= 0).
func (c *LogicalClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- time.Time{}
		return ch
	}
	c.timers = append(c.timers, logicalTimer{at: c.now + int64(d), ch: ch})
	return ch
}

// Advance moves logical time forward and fires every timer whose deadline
// has passed.
func (c *LogicalClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += int64(d)
	kept := c.timers[:0]
	for _, t := range c.timers {
		if t.at <= c.now {
			t.ch <- time.Time{}
		} else {
			kept = append(kept, t)
		}
	}
	c.timers = kept
}

// WorkerInfo identifies a worker at registration.
type WorkerInfo struct {
	ID          string `json:"id"`
	Addr        string `json:"addr,omitempty"` // informational (logs, status)
	Concurrency int    `json:"concurrency,omitempty"`
}

// RegisterReply tells the worker the coordinator's failure-model
// parameters so both sides agree on lease and heartbeat budgets.
type RegisterReply struct {
	WorkerID       string `json:"workerId"`
	LeaseTTLMS     int64  `json:"leaseTTLMS"`
	HeartbeatTTLMS int64  `json:"heartbeatTTLMS"`
}

// Lease grants one cell to one worker until DeadlineNS (coordinator
// clock). A worker that cannot Complete before the deadline must assume
// the cell has been reassigned; completing anyway is safe (idempotent).
type Lease struct {
	ID         int64         `json:"id"`
	CampaignID int           `json:"campaignId"`
	CellIndex  int           `json:"cellIndex"`
	Spec       campaign.Spec `json:"spec"`
	DeadlineNS int64         `json:"deadlineNS"`
	TTLMS      int64         `json:"ttlMS"`
}

// CompleteRequest reports a cell's terminal outcome. Exactly one of
// Result and Error is set.
type CompleteRequest struct {
	WorkerID   string           `json:"workerId"`
	LeaseID    int64            `json:"leaseId"`
	CampaignID int              `json:"campaignId"`
	CellIndex  int              `json:"cellIndex"`
	Result     *campaign.Result `json:"result,omitempty"`
	Error      string           `json:"error,omitempty"`
}

// Transport is the worker's view of the coordinator. The Coordinator
// itself implements it (in-process fabric, tests); Client implements it
// over HTTP; ChaosTransport wraps any Transport with injected faults.
type Transport interface {
	Register(ctx context.Context, info WorkerInfo) (*RegisterReply, error)
	Heartbeat(ctx context.Context, workerID string) error
	Deregister(ctx context.Context, workerID string) error
	// Lease returns the next cell for this worker, or nil when the queue
	// is empty.
	Lease(ctx context.Context, workerID string) (*Lease, error)
	Complete(ctx context.Context, req CompleteRequest) error
	// FetchResult is the peer tier of the result cache: a lookup by
	// content address in the coordinator's store. A miss is (nil, nil).
	FetchResult(ctx context.Context, key string) (*campaign.Result, error)
}
