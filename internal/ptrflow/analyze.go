package ptrflow

import (
	"fmt"
	"sort"

	"chex86/internal/asm"
	"chex86/internal/decode"
	"chex86/internal/heap"
	"chex86/internal/isa"
	"chex86/internal/tracker"
)

// Options parameterizes an analysis run.
type Options struct {
	// Harts is the number of hardware threads the program is run with
	// (selects the thread<i> entry points). Defaults to 1.
	Harts int

	// IndirectTargets maps an indirect JMP/CALL address to its possible
	// target set. Branches absent from the map are recorded as unresolved
	// (use RecoverIndirectTargets for a label-based over-approximation).
	IndirectTargets map[uint64][]uint64

	// MaxTransfers bounds block-transfer applications as a divergence
	// backstop; 0 means an automatic bound derived from program size.
	MaxTransfers int
}

// SiteKey identifies one memory micro-op: the macro-op address plus the
// micro-op's index within the native expansion. The dynamic tracker's
// deref trace uses the same key (see crosscheck.go).
type SiteKey struct {
	Addr     uint64
	MacroIdx uint8
}

// Site is the static classification of one memory micro-op.
type Site struct {
	Addr     uint64
	MacroIdx uint8
	Store    bool
	Inst     string // macro-op disassembly
	Verdict  Verdict
	// Assumed marks verdicts that rest on the init-order assumption
	// (a value read through a region summary before the analysis can
	// prove the region's writes precede it, see DESIGN.md §9); such
	// verdicts cannot prove tracker false negatives.
	Assumed bool
	// Deref is the joined abstract tag of the dereference (diagnostics).
	Deref Value
	// Reached reports whether the dataflow reached the site at all.
	Reached bool
}

// Key returns the site's key.
func (s *Site) Key() SiteKey { return SiteKey{Addr: s.Addr, MacroIdx: s.MacroIdx} }

// Stats aggregates analysis-wide counters for the report.
type Stats struct {
	Blocks              int
	Insts               int
	MemSites            int
	PointerSites        int
	NotPointerSites     int
	UnknownSites        int
	AssumedSites        int
	UnreachedSites      int
	UnknownEAStores     int // stores whose effective address could not be bounded
	UnresolvedIndirects int
	Transfers           int
}

// RegionSummary reports one abstract memory region's fixpoint for the
// JSON report.
type RegionSummary struct {
	Name    string `json:"name"`
	Init    string `json:"init"`    // static-initializer contribution
	Stores  string `json:"stores"`  // dynamic-store contribution
	Covered bool   `json:"covered"` // every word has an explicit initializer
}

// Analysis is the result of a static pointer-flow run.
type Analysis struct {
	CFG   *CFG
	Sites map[SiteKey]*Site
	Stats Stats

	regions    map[string]*region
	relocSlot  map[uint64]string // reloc slot -> target global name
	globals    []asm.Global      // sorted by address
	poison     Value             // accumulated unknown-EA store contribution
	unresolved map[uint64]bool   // indirect branches with no target hints

	onRegionChange func() // fixpoint-restart notification
}

// region is one abstract memory object's summary: what the alias table
// can hold for addresses inside it.
type region struct {
	init    Value // explicit static initializers (Data words, reloc slots)
	stores  Value // join of everything dynamically stored through it
	covered bool  // every 8-byte word has an explicit initializer
}

// unmappedRegion names absolute addresses outside every known global.
const unmappedRegion = "@unmapped"

// state is the dataflow fact at a program point: per-register abstract
// tags, the tracked RSP displacement from hart entry, and the per-frame
// stack-slot lattice (keyed by entry-relative offset, so slots survive
// across calls and the callee's spills resolve exactly).
type state struct {
	regs  [isa.NumRegs]Value
	rsp   int64
	rspOK bool
	frame map[int64]Value
}

func newEntryState() *state {
	s := &state{rspOK: true, frame: map[int64]Value{}}
	for i := range s.regs {
		s.regs[i] = notPtr // all tags start at 0
	}
	return s
}

func (s *state) clone() *state {
	c := *s
	c.frame = make(map[int64]Value, len(s.frame))
	for k, v := range s.frame {
		c.frame[k] = v
	}
	return &c
}

// reg reads a register tag, mirroring Tags.Current: invalid registers
// (RNone) read as tag 0.
func (s *state) reg(r isa.Reg) Value {
	if !r.Valid() {
		return notPtr
	}
	return s.regs[r]
}

// joinInto joins o into s, returning whether s changed. Frames join by
// key intersection (a slot live on only one path is unknown afterwards);
// diverging RSP displacements invalidate slot addressing entirely.
func (s *state) joinInto(o *state) bool {
	changed := false
	for i := range s.regs {
		j := join(s.regs[i], o.regs[i])
		if !j.eq(s.regs[i]) {
			s.regs[i] = j
			changed = true
		}
	}
	if s.rspOK && (!o.rspOK || s.rsp != o.rsp) {
		s.rspOK = false
		changed = true
	}
	if !s.rspOK && s.frame != nil {
		s.frame = nil
		changed = true
	}
	if s.frame != nil {
		for k, v := range s.frame {
			ov, ok := o.frame[k]
			if !ok {
				delete(s.frame, k)
				changed = true
				continue
			}
			j := join(v, ov)
			if !j.eq(v) {
				s.frame[k] = j
				changed = true
			}
		}
	}
	return changed
}

// Analyze runs the static pointer-flow analysis over prog.
func Analyze(prog *asm.Program, opt Options) (*Analysis, error) {
	g := BuildCFG(prog, opt.Harts, opt.IndirectTargets)
	a := &Analysis{
		CFG:        g,
		Sites:      map[SiteKey]*Site{},
		regions:    map[string]*region{},
		relocSlot:  map[uint64]string{},
		globals:    prog.SortedGlobals(),
		poison:     bot,
		unresolved: map[uint64]bool{},
	}
	for _, addr := range g.Unresolved {
		a.unresolved[addr] = true
	}
	a.Stats.Blocks = len(g.Blocks)
	a.Stats.Insts = len(prog.Insts)
	a.Stats.UnresolvedIndirects = len(g.Unresolved)
	a.seedRegions(prog)
	if len(g.Blocks) == 0 {
		return a, nil
	}

	db := tracker.NewRuleDB()
	var dec decode.Decoder
	uopBuf := make([]isa.Uop, 0, 8)

	maxTransfers := opt.MaxTransfers
	if maxTransfers == 0 {
		// Generous: lattice height per fact is small, so fixpoints settle in
		// a handful of sweeps even with region-summary restarts.
		maxTransfers = (len(g.Blocks) + 1) * 4096
	}

	in := make([]*state, len(g.Blocks))
	dirty := make([]bool, len(g.Blocks))
	var work []int
	push := func(id int) {
		if !dirty[id] {
			dirty[id] = true
			work = append(work, id)
		}
	}
	for _, e := range g.Entries {
		in[e] = newEntryState()
		push(e)
	}

	regionsDirty := false
	a.onRegionChange = func() { regionsDirty = true }

	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		dirty[id] = false

		a.Stats.Transfers++
		if a.Stats.Transfers > maxTransfers {
			return nil, fmt.Errorf("ptrflow: fixpoint exceeded %d block transfers (diverging lattice?)", maxTransfers)
		}

		st := in[id].clone()
		a.transferBlock(g, &g.Blocks[id], st, db, &dec, &uopBuf, nil)

		for _, succ := range g.Blocks[id].Succs {
			if in[succ] == nil {
				in[succ] = st.clone()
				push(succ)
			} else if in[succ].joinInto(st) {
				push(succ)
			}
		}
		// A region summary grew: facts read through it anywhere may be
		// stale, so restart the sweep over every reached block.
		if regionsDirty && len(work) == 0 {
			regionsDirty = false
			for id := range in {
				if in[id] != nil {
					push(id)
				}
			}
		}
	}

	// Final pass over the fixpoint: record per-site verdicts.
	for bi := range g.Blocks {
		if in[bi] == nil {
			a.recordUnreached(g, &g.Blocks[bi], &dec, &uopBuf)
			continue
		}
		st := in[bi].clone()
		a.transferBlock(g, &g.Blocks[bi], st, db, &dec, &uopBuf, a.recordSite)
	}
	a.finish()
	return a, nil
}

// seedRegions computes each global's static-initializer contribution and
// coverage from the loader's Data words and relocation entries.
func (a *Analysis) seedRegions(prog *asm.Program) {
	for _, r := range prog.Relocs {
		a.relocSlot[r.Slot] = r.Target
	}
	covered := map[string]map[uint64]bool{}
	slot := func(g *asm.Global, addr uint64, v Value) {
		r := a.region(g.Name)
		r.init = join(r.init, v)
		if covered[g.Name] == nil {
			covered[g.Name] = map[uint64]bool{}
		}
		covered[g.Name][addr&^7] = true
	}
	for _, g := range prog.Globals {
		a.region(g.Name) // materialize, covered computed below
	}
	for _, d := range prog.Data {
		if g := a.globalAt(d.Addr); g != nil {
			slot(g, d.Addr, notPtr)
		}
	}
	for _, rl := range prog.Relocs {
		if g := a.globalAt(rl.Slot); g != nil {
			slot(g, rl.Slot, Value{Tag: TagPtr, Region: rl.Target})
		}
	}
	for i := range a.globals {
		g := &a.globals[i]
		words := (g.Size + 7) / 8
		a.region(g.Name).covered = uint64(len(covered[g.Name])) >= words && words > 0
	}
}

func (a *Analysis) region(name string) *region {
	r, ok := a.regions[name]
	if !ok {
		r = &region{init: bot, stores: bot}
		a.regions[name] = r
	}
	return r
}

// globalAt returns the global containing addr, or nil.
func (a *Analysis) globalAt(addr uint64) *asm.Global {
	i := sort.Search(len(a.globals), func(i int) bool {
		return a.globals[i].Addr+a.globals[i].Size > addr
	})
	if i < len(a.globals) && a.globals[i].Addr <= addr {
		return &a.globals[i]
	}
	return nil
}

func (a *Analysis) regionNameAt(addr uint64) string {
	if g := a.globalAt(addr); g != nil {
		return g.Name
	}
	return unmappedRegion
}

// readRegion returns the abstract alias-table content for any address
// inside the named region: the join of static initializers and dynamic
// stores. Regions that are not fully covered by explicit initializers
// exclude the implicit-zero baseline from the join — instead, reads carry
// the Assumed taint (the init-order assumption).
func (a *Analysis) readRegion(name string) Value {
	r := a.region(name)
	v := join(r.init, r.stores)
	v = join(v, a.poison)
	if v.Tag == TagBot {
		return notPtr // nothing is ever written: implicit zero, sound
	}
	if !r.covered && v.Tag != TagNotPtr {
		v.Assumed = true
	}
	return v
}

// relocRead returns the value loaded from an exact relocation slot: the
// loader seeded its alias with the target global's PID, so the result is
// a sound pointer into the target — joined with any dynamic stores that
// may have overwritten the slot's containing region.
func (a *Analysis) relocRead(slotAddr uint64) Value {
	v := Value{Tag: TagPtr, Region: a.relocSlot[slotAddr]}
	cont := a.region(a.regionNameAt(slotAddr))
	if cont.stores.Tag != TagBot {
		v = join(v, cont.stores)
	}
	if a.poison.Tag != TagBot {
		v = join(v, a.poison)
	}
	return v
}

// joinStore accumulates a dynamic store into a region summary, flagging a
// fixpoint restart when the summary grows.
func (a *Analysis) joinStore(name string, v Value) {
	r := a.region(name)
	j := join(r.stores, v)
	if !j.eq(r.stores) {
		r.stores = j
		if a.onRegionChange != nil {
			a.onRegionChange()
		}
	}
}

// poisonAll records a store whose effective address the analysis cannot
// bound: it may hit any region (and any stack slot), so its value joins
// every summary and the final pass demotes all verdicts to Assumed.
func (a *Analysis) poisonAll(v Value) {
	j := join(a.poison, v)
	if !j.eq(a.poison) {
		a.poison = j
		if a.onRegionChange != nil {
			a.onRegionChange()
		}
	}
	a.Stats.UnknownEAStores++
}

// derefVal mirrors Engine.DerefPID abstractly: the base register's tag,
// falling back to the index register when the base tag is zero.
func derefVal(st *state, m isa.MemRef) Value {
	b := st.reg(m.Base)
	ix := st.reg(m.Index)
	switch b.Tag {
	case TagNotPtr:
		return ix
	case TagPtr, TagWild:
		return b
	case TagBot:
		return bot
	default: // Top: the base may or may not fall back to the index
		return join(b, ix)
	}
}

// eaPointer selects the pointer through which a memory micro-op's
// effective address is formed, for region attribution. The bool is false
// when the EA cannot be bounded (arbitrary integer arithmetic, wild or
// unbounded operands).
func eaPointer(st *state, m isa.MemRef) (Value, bool) {
	b := st.reg(m.Base)
	ix := st.reg(m.Index)
	var p Value
	switch {
	case b.Tag == TagPtr:
		p = b
	case b.Tag == TagNotPtr && ix.Tag == TagPtr:
		p = ix
	default:
		return top, false
	}
	if p.Region == "" {
		return top, false
	}
	return p, true
}

// siteFn observes each memory micro-op's deref value during the final
// fixpoint pass.
type siteFn func(in *isa.Inst, u *isa.Uop, deref Value)

// transferBlock interprets one basic block's macro-ops on st, mirroring
// the engine's per-uop semantics exactly (see internal/tracker/engine.go).
func (a *Analysis) transferBlock(g *CFG, b *Block, st *state, db *tracker.RuleDB, dec *decode.Decoder, buf *[]isa.Uop, site siteFn) {
	prog := g.Prog
	for idx := b.Start; idx < b.End; idx++ {
		in := &prog.Insts[idx]
		uops := dec.Native(in, (*buf)[:0])
		*buf = uops

		for i := range uops {
			u := &uops[i]
			if site != nil && u.Type.IsMem() {
				site(in, u, derefVal(st, u.Mem))
			}
			a.transferUop(st, u, db)
		}
		if in.Op == isa.CALL {
			switch {
			case in.Dst.Kind != isa.OpReg && prog.At(in.Target) == nil:
				a.applyExternalCall(st, in.Target)
			case in.Dst.Kind == isa.OpReg && a.unresolved[in.Addr]:
				// An indirect call with no hint set could reach anything.
				a.applyExternalCall(st, 0)
			}
		}
	}
}

// transferUop applies one micro-op's tracker effect to the abstract state.
func (a *Analysis) transferUop(st *state, u *isa.Uop, db *tracker.RuleDB) {
	switch u.Type {
	case isa.ULoad:
		v := a.loadValue(st, u)
		// Sub-word loads cannot reload a pointer: the pipeline skips
		// ResolveLoad entirely, leaving the destination tag unchanged.
		if u.AccessSize() < 8 {
			return
		}
		// ResolveLoad always propagates the actual alias-table PID to the
		// destination — including zero.
		if u.Dst.Valid() {
			st.regs[u.Dst] = v
		}

	case isa.UStore:
		sv := memVal(st.reg(u.Src1))
		if u.AccessSize() < 8 {
			sv = notPtr // sub-word stores force the alias-clear path
		}
		a.storeEffect(st, u, sv)

	case isa.UJump, isa.UBranch, isa.UNop:
		// No register-tag effect (no destination register).

	default: // UMov, ULimm, UAlu, ULea
		a.trackRSP(st, u)
		a.applyRegRule(st, u, db)
	}
}

// trackRSP maintains the concrete RSP displacement: immediate add/sub on
// RSP adjust it; any other RSP write destroys slot addressing.
func (a *Analysis) trackRSP(st *state, u *isa.Uop) {
	if u.Dst != isa.RSP {
		return
	}
	if u.Type == isa.UAlu && u.HasImm && u.Src1 == isa.RSP &&
		(u.Alu == isa.AluAdd || u.Alu == isa.AluSub) {
		if st.rspOK {
			if u.Alu == isa.AluAdd {
				st.rsp += u.Imm
			} else {
				st.rsp -= u.Imm
			}
		}
		return
	}
	st.rspOK = false
	st.frame = nil
}

// applyRegRule is the abstract mirror of Engine.ApplyRegRule: first
// matching rule, sampled through absPropagate; no match clears the tag.
func (a *Analysis) applyRegRule(st *state, u *isa.Uop, db *tracker.RuleDB) {
	if !u.Dst.Valid() || u.Dst == isa.FLAGS {
		return
	}
	r := db.Match(u)
	if r == nil || r.Propagate == nil {
		st.regs[u.Dst] = notPtr
		return
	}
	v1 := st.reg(u.Src1)
	v2 := notPtr
	if !u.HasImm && u.Src2.Valid() {
		v2 = st.reg(u.Src2)
	}
	if u.Type == isa.ULea {
		v1 = st.reg(u.Mem.Base)
		v2 = st.reg(u.Mem.Index)
	}
	st.regs[u.Dst] = absPropagate(r, v1, v2)
}

// loadValue returns the abstract alias-table content at a load's
// effective address.
func (a *Analysis) loadValue(st *state, u *isa.Uop) Value {
	m := u.Mem
	if !m.Base.Valid() && !m.Index.Valid() {
		addr := uint64(m.Disp)
		if _, ok := a.relocSlot[addr]; ok {
			return a.relocRead(addr)
		}
		return a.readRegion(a.regionNameAt(addr))
	}
	if m.Base == isa.RSP && !m.Index.Valid() {
		if st.rspOK && st.frame != nil {
			if v, ok := st.frame[st.rsp+m.Disp]; ok {
				return v
			}
		}
		return top
	}
	p, ok := eaPointer(st, m)
	if !ok {
		return top
	}
	v := a.readRegion(p.Region)
	if p.Assumed {
		v.Assumed = true
	}
	return v
}

// storeEffect applies a store's alias-table effect: exact stack slots get
// strong updates, region-attributed addresses accumulate weakly, and
// unbounded addresses poison everything.
func (a *Analysis) storeEffect(st *state, u *isa.Uop, sv Value) {
	m := u.Mem
	if !m.Base.Valid() && !m.Index.Valid() {
		a.joinStore(a.regionNameAt(uint64(m.Disp)), sv)
		return
	}
	if m.Base == isa.RSP && !m.Index.Valid() {
		if st.rspOK && st.frame != nil {
			st.frame[st.rsp+m.Disp] = sv
		} else {
			st.frame = nil // somewhere on the stack: every slot is suspect
		}
		return
	}
	if p, ok := eaPointer(st, m); ok {
		a.joinStore(p.Region, sv)
		return
	}
	a.poisonAll(sv)
}

// applyExternalCall models a direct call that leaves program text. The
// allocator routines are intercepted by the OS/microcode (Section IV-C):
// they return to the call site with %rax carrying the fresh capability
// (malloc family) or with registers untouched (free). Unknown externals
// clobber everything.
func (a *Analysis) applyExternalCall(st *state, target uint64) {
	// The callee's synthetic RET pops the return address pushed by the
	// call's own store micro-op (already interpreted by the caller block).
	retPop := func() {
		if st.rspOK && st.frame != nil {
			if v, ok := st.frame[st.rsp]; ok {
				st.regs[isa.T0] = v
			} else {
				st.regs[isa.T0] = top
			}
		} else {
			st.regs[isa.T0] = top
		}
		if st.rspOK {
			st.rsp += 8
		}
	}
	switch target {
	case heap.MallocEntry, heap.CallocEntry, heap.ReallocEntry:
		retPop()
		// Capability transfer at allocator exit: %rax := the new PID.
		st.regs[isa.RAX] = Value{Tag: TagPtr, Region: HeapRegion}
	case heap.FreeEntry:
		retPop()
	default:
		// Unknown external code: nothing can be assumed.
		for i := range st.regs {
			st.regs[i] = top
		}
		st.rspOK = false
		st.frame = nil
		a.poisonAll(top)
	}
}

// recordSite folds one execution point's deref value into its site.
func (a *Analysis) recordSite(in *isa.Inst, u *isa.Uop, deref Value) {
	k := SiteKey{Addr: in.Addr, MacroIdx: u.MacroIdx}
	s, ok := a.Sites[k]
	if !ok {
		s = &Site{Addr: in.Addr, MacroIdx: u.MacroIdx, Store: u.Type == isa.UStore,
			Inst: in.String(), Deref: bot}
		a.Sites[k] = s
	}
	s.Reached = true
	s.Deref = join(s.Deref, deref)
}

// recordUnreached registers sites in blocks the dataflow never reached
// (code behind unresolved indirect branches) so runtime executions there
// are classified, not silently dropped.
func (a *Analysis) recordUnreached(g *CFG, b *Block, dec *decode.Decoder, buf *[]isa.Uop) {
	for idx := b.Start; idx < b.End; idx++ {
		in := &g.Prog.Insts[idx]
		uops := dec.Native(in, (*buf)[:0])
		*buf = uops
		for i := range uops {
			u := &uops[i]
			if !u.Type.IsMem() {
				continue
			}
			k := SiteKey{Addr: in.Addr, MacroIdx: u.MacroIdx}
			if _, ok := a.Sites[k]; !ok {
				a.Sites[k] = &Site{Addr: in.Addr, MacroIdx: u.MacroIdx,
					Store: u.Type == isa.UStore, Inst: in.String(), Deref: bot}
			}
		}
	}
}

// finish derives verdicts and aggregate statistics from the folded sites.
func (a *Analysis) finish() {
	for _, s := range a.Sites {
		a.Stats.MemSites++
		if !s.Reached {
			s.Verdict = VerdictUnknown
			a.Stats.UnreachedSites++
			continue
		}
		s.Verdict = verdictOf(s.Deref)
		s.Assumed = s.Deref.Assumed
		// Any unbounded store makes every proof conditional.
		if a.Stats.UnknownEAStores > 0 {
			s.Assumed = true
		}
		switch s.Verdict {
		case VerdictPointer:
			a.Stats.PointerSites++
		case VerdictNotPointer:
			a.Stats.NotPointerSites++
		default:
			a.Stats.UnknownSites++
		}
		if s.Assumed {
			a.Stats.AssumedSites++
		}
	}
}

// SortedSites returns the sites ordered by (address, micro-op index).
func (a *Analysis) SortedSites() []*Site {
	out := make([]*Site, 0, len(a.Sites))
	for _, s := range a.Sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].MacroIdx < out[j].MacroIdx
	})
	return out
}

// RegionSummaries returns the region fixpoints sorted by name.
func (a *Analysis) RegionSummaries() []RegionSummary {
	names := make([]string, 0, len(a.regions))
	for n := range a.regions {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]RegionSummary, 0, len(names))
	for _, n := range names {
		r := a.regions[n]
		out = append(out, RegionSummary{Name: n, Init: r.init.String(),
			Stores: r.stores.String(), Covered: r.covered})
	}
	return out
}

// Format renders a human-readable verdict listing.
func (a *Analysis) Format() string {
	out := fmt.Sprintf("ptrflow: %d blocks, %d insts, %d mem sites (%d ptr / %d not-ptr / %d unknown, %d assumed)\n",
		a.Stats.Blocks, a.Stats.Insts, a.Stats.MemSites,
		a.Stats.PointerSites, a.Stats.NotPointerSites, a.Stats.UnknownSites, a.Stats.AssumedSites)
	for _, s := range a.SortedSites() {
		kind := "load "
		if s.Store {
			kind = "store"
		}
		flag := ""
		if s.Assumed {
			flag = " (assumed)"
		}
		if !s.Reached {
			flag = " (unreached)"
		}
		out += fmt.Sprintf("  %#08x.%d %s %-11s %-8s%s  ; %s\n",
			s.Addr, s.MacroIdx, kind, s.Deref, s.Verdict, flag, s.Inst)
	}
	return out
}
